package reskit

import (
	"reskit/internal/core"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

// Strategy decides, at each task boundary, whether to continue,
// checkpoint, or drop the rest of the reservation.
type Strategy = strategy.Strategy

// StrategyState is the observable state handed to a Strategy.
type StrategyState = strategy.State

// Action is a strategy decision (ActionContinue, ActionCheckpoint,
// ActionStop).
type Action = strategy.Action

// Strategy decisions.
const (
	ActionContinue   = strategy.Continue
	ActionCheckpoint = strategy.Checkpoint
	ActionStop       = strategy.Stop
)

// StaticStrategy checkpoints after exactly n tasks (use the NOpt of
// Static.Optimize).
func StaticStrategy(n int) Strategy { return strategy.NewStatic(n) }

// DynamicStrategy applies the paper's dynamic rule through a Dynamic
// problem instance.
func DynamicStrategy(d *core.Dynamic) Strategy { return strategy.NewDynamic(d) }

// PessimisticStrategy continues only while a worst-case task plus a
// worst-case checkpoint still fit — the risk-free baseline of the paper.
func PessimisticStrategy(xMax, cMax float64) Strategy { return strategy.NewPessimistic(xMax, cMax) }

// ThresholdStrategy checkpoints once the uncommitted work reaches w
// (e.g. the Intersection point of the dynamic analysis).
func ThresholdStrategy(w float64) Strategy { return strategy.NewWorkThreshold(w) }

// NeverStrategy runs to the end of the reservation without ever
// checkpointing (saves nothing; the comparison floor).
func NeverStrategy() Strategy { return strategy.Never{} }

// SimConfig describes one simulated reservation (see sim.Config).
type SimConfig = sim.Config

// AfterPolicy selects what happens after a successful checkpoint
// (Section 4.4): DropReservation or ContinueExecution.
type AfterPolicy = sim.AfterPolicy

// After-checkpoint policies.
const (
	DropReservation   = sim.DropReservation
	ContinueExecution = sim.ContinueExecution
)

// RunResult reports one simulated reservation.
type RunResult = sim.RunResult

// SimAggregate reports a Monte-Carlo experiment over many reservations.
type SimAggregate = sim.Aggregate

// Simulate runs one reservation with the given generator.
func Simulate(cfg SimConfig, r *RNG) RunResult { return sim.Run(cfg, r) }

// SimulateOracle runs one reservation under the clairvoyant scheduler.
func SimulateOracle(cfg SimConfig, r *RNG) RunResult { return sim.RunOracle(cfg, r) }

// MonteCarlo runs trials independent reservations across parallel
// workers (0 = all CPUs); results are deterministic in (cfg, trials,
// seed) regardless of the worker count.
func MonteCarlo(cfg SimConfig, trials int, seed uint64, workers int) SimAggregate {
	return sim.MonteCarlo(cfg, trials, seed, workers)
}

// MonteCarloOracle is MonteCarlo under the clairvoyant scheduler.
func MonteCarloOracle(cfg SimConfig, trials int, seed uint64, workers int) SimAggregate {
	return sim.MonteCarloOracle(cfg, trials, seed, workers)
}

// PreemptibleAggregate reports a Monte-Carlo experiment for the
// preemptible scenario.
type PreemptibleAggregate = sim.PreemptibleAggregate

// MonteCarloPreemptible estimates E(W(X)) by simulation for a checkpoint
// started x seconds before the end.
func MonteCarloPreemptible(p *Preemptible, x float64, trials int, seed uint64, workers int) PreemptibleAggregate {
	return sim.MonteCarloPreemptible(p, x, trials, seed, workers)
}

// MonteCarloPreemptibleOracle simulates the clairvoyant policy that
// starts the checkpoint exactly when it will finish at the reservation
// end (saving R - C every trial).
func MonteCarloPreemptibleOracle(p *Preemptible, trials int, seed uint64, workers int) PreemptibleAggregate {
	return sim.MonteCarloPreemptibleOracle(p, trials, seed, workers)
}

// CampaignConfig describes a multi-reservation execution of an
// application with a known total work (Sections 1-2).
type CampaignConfig = sim.CampaignConfig

// CampaignResult reports one campaign.
type CampaignResult = sim.CampaignResult

// RunCampaign simulates a whole multi-reservation campaign.
func RunCampaign(cfg CampaignConfig, r *RNG) CampaignResult { return sim.RunCampaign(cfg, r) }

// Workers returns the default Monte-Carlo worker count (all CPUs).
func Workers() int { return sim.Workers() }

// CampaignAggregate averages the headline metrics of a Monte-Carlo
// campaign experiment.
type CampaignAggregate = sim.CampaignAggregate

// MonteCarloCampaign runs trials independent campaigns across workers
// goroutines (all CPUs when workers <= 0). The aggregate is bit-identical
// for any worker count: trials are sharded into fixed blocks, each on its
// own rng substream, and block sums are merged in deterministic order.
func MonteCarloCampaign(cfg CampaignConfig, trials int, seed uint64, workers int) CampaignAggregate {
	return sim.MonteCarloCampaign(cfg, trials, seed, workers)
}

// PeriodicStrategy checkpoints every time the uncommitted work reaches
// the period p — the classical policy for failure-prone execution.
func PeriodicStrategy(p float64) Strategy { return strategy.NewPeriodic(p) }

// YoungDalyStrategy returns the periodic policy with the first-order
// Young/Daly period sqrt(2 * mtbf * meanCkpt) — the baseline the paper's
// related work cites for failure-prone platforms. Combine it with
// SimConfig.FailureRate > 0 (the paper's Section 5 future-work setting).
func YoungDalyStrategy(mtbf, meanCkpt float64) Strategy {
	return strategy.NewYoungDaly(mtbf, meanCkpt)
}
