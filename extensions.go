package reskit

import (
	"context"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/planner"
	"reskit/internal/sched"
)

// Additional distribution families beyond the four laws the paper works
// out explicitly. All of them flow through the generic numerical
// optimizer of the preemptible scenario and through the simulator.

// Triangular returns the triangular law on [a, b] with mode m — the
// natural law when only (min, typical, max) checkpoint estimates exist.
func Triangular(a, m, b float64) dist.Triangular { return dist.NewTriangular(a, m, b) }

// Pareto returns the heavy-tailed Pareto law with scale xm and shape
// alpha; truncate it to model contended-filesystem checkpoint times.
func Pareto(xm, alpha float64) dist.Pareto { return dist.NewPareto(xm, alpha) }

// Mixture returns the weighted mixture of the given laws (weights are
// normalized) — e.g. a bimodal fast/slow checkpoint model.
func Mixture(components []Continuous, weights []float64) *dist.Mixture {
	return dist.NewMixture(components, weights)
}

// Affine returns scale*X + shift for a base law X — the physical
// checkpoint model C = payload*inverseBandwidth + latency.
func Affine(base Continuous, scale, shift float64) dist.Affine {
	return dist.NewAffine(base, scale, shift)
}

// --- General (heterogeneous) instance of Section 4.1 / Section 5 ---

// TaskSpec pairs one task's duration law with the checkpoint law that
// applies at its end.
type TaskSpec = core.TaskSpec

// Heterogeneous is the general instance sketched in the paper's
// conclusion: a finite chain with per-task duration and checkpoint laws,
// solved by the same dynamic rule.
type Heterogeneous = core.Heterogeneous

// ErrChainExhausted is returned by Heterogeneous.ShouldCheckpoint past
// the end of the chain.
var ErrChainExhausted = core.ErrChainExhausted

// NewHeterogeneous builds the general instance for reservation length r.
func NewHeterogeneous(r float64, tasks []TaskSpec) *Heterogeneous {
	return core.NewHeterogeneous(r, tasks)
}

// StaticHeteroHeuristic approximates the (exactly intractable) static
// problem for the general instance with moment-matched Normal partial
// sums; it returns the task count to run before the first checkpoint and
// the approximate expected saved work.
func StaticHeteroHeuristic(h *Heterogeneous) (nOpt int, expWork float64) {
	return core.StaticHeteroHeuristic(h)
}

// --- Exact dynamic-programming reference solver ---

// DP is the discretized full-horizon dynamic program for the workflow
// problem — the exact optimum that upper-bounds the paper's one-step
// lookahead rule.
type DP = core.DP

// DPSolution reports the solved dynamic program (optimal value, policy
// threshold, value function).
type DPSolution = core.DPSolution

// NewDP builds the dynamic program with the given grid resolution
// (steps < 16 selects a 2048-step default).
func NewDP(r float64, task, ckpt Continuous, steps int) *DP {
	return core.NewDP(r, task, ckpt, steps)
}

// --- Reservation-length planning (one level above the paper) ---

// PlannerConfig describes the choose-R problem: which reservation length
// should the user request, given the workload laws and a platform cost
// model?
type PlannerConfig = planner.Config

// PlannerCostModel prices a campaign (per-reservation overhead,
// pay-per-use vs pay-per-reservation billing).
type PlannerCostModel = planner.CostModel

// PlannerOption is one evaluated candidate reservation length.
type PlannerOption = planner.Option

// PlanReservationLength evaluates candidate reservation lengths by
// deterministic Monte-Carlo campaigns under the Section 4.3 dynamic
// strategy and returns the frontier sorted best-first by work per unit
// cost.
func PlanReservationLength(cfg PlannerConfig) ([]PlannerOption, error) {
	return planner.Plan(cfg)
}

// PlanReservationLengthContext is PlanReservationLength with
// cancellation: the trials run through the run engine on a worker pool
// (cfg.Workers; results are bit-identical for any worker count), and
// ctx stops the sweep at the next trial boundary.
func PlanReservationLengthContext(ctx context.Context, cfg PlannerConfig) ([]PlannerOption, error) {
	return planner.PlanContext(ctx, cfg)
}

// --- Queue-aware wall-clock simulation (platform side of Section 1) ---

// WaitModel yields the queue-wait law for a reservation request of
// length r — shorter reservations are easier to place.
type WaitModel = sched.WaitModel

// PowerLawWait models mean waits growing like coeff * R^exponent with a
// Gamma-shaped distribution of the given coefficient of variation.
func PowerLawWait(coeff, exponent, cv float64) WaitModel {
	return sched.NewPowerLawWait(coeff, exponent, cv)
}

// ConstantWait waits by a fixed law regardless of the requested length.
func ConstantWait(law Continuous) WaitModel { return sched.ConstantWait{Law: law} }

// SchedConfig describes an end-to-end campaign including queue waits.
type SchedConfig = sched.Config

// SchedResult extends the campaign result with wall-clock accounting
// (TotalWait, Makespan).
type SchedResult = sched.Result

// RunWithQueue simulates a multi-reservation campaign including the
// scheduler's queue waits.
func RunWithQueue(cfg SchedConfig, r *RNG) SchedResult { return sched.Run(cfg, r) }

// CompareReservationLengths returns the mean wall-clock makespan of the
// campaign for every candidate reservation length under the given wait
// model; mkStrategy builds the per-length checkpoint policy.
func CompareReservationLengths(base SimConfig, totalWork float64, wait WaitModel,
	candidates []float64, mkStrategy func(r float64) Strategy,
	trials int, seed uint64) map[float64]float64 {
	return sched.CompareLengths(base, totalWork, wait, candidates, mkStrategy, trials, seed)
}

// Beta returns the Beta(alpha, beta) law on [0, 1].
func Beta(alpha, beta float64) dist.Beta { return dist.NewBeta(alpha, beta) }

// BetaOn returns Beta(alpha, beta) rescaled to [lo, hi] — a flexible
// bounded-support checkpoint-duration model whose support is already the
// [a, b] of Section 3 (no truncation needed).
func BetaOn(alpha, beta, lo, hi float64) dist.Affine { return dist.NewBetaOn(alpha, beta, lo, hi) }

// MultiDP is the exact (discretized) solver for the Section 4.4
// multi-checkpoint question: when commits may repeat inside one
// reservation, what is the optimal schedule worth?
type MultiDP = core.MultiDP

// MultiDPSolution reports the multi-checkpoint optimum.
type MultiDPSolution = core.MultiDPSolution

// NewMultiDP builds the two-dimensional dynamic program (steps < 16
// selects a 256-step default; cost grows as steps^3).
func NewMultiDP(r float64, task, ckpt Continuous, steps int) *MultiDP {
	return core.NewMultiDP(r, task, ckpt, steps)
}

// MisspecificationLoss returns the fraction of the optimal expected work
// achieved when the checkpoint instant is planned under `assumed` but
// reality follows `truth` (same R) — how accurate a trace-learned D_C
// needs to be.
func MisspecificationLoss(truth, assumed *Preemptible) float64 {
	return core.MisspecificationLoss(truth, assumed)
}
