package reskit

import (
	"io"
	"time"

	"reskit/internal/obs"
	"reskit/internal/optimize"
	"reskit/internal/quad"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

// Observability facade. The instruments of internal/obs follow one
// contract everywhere: a nil instrument (or registry, or observer) is a
// no-op costing one pointer check, and an attached one never consumes
// randomness or alters control flow — simulation aggregates are
// bit-identical with observation on or off, for any worker count.

// ObsRegistry names and owns a set of counters, gauges and histograms.
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time copy of a registry, shaped for JSON.
type ObsSnapshot = obs.Snapshot

// ObsCounter is a lock-free monotonic counter.
type ObsCounter = obs.Counter

// ObsGauge is a lock-free float64 gauge.
type ObsGauge = obs.Gauge

// ObsHist is a lock-free streaming histogram.
type ObsHist = obs.Hist

// NewObsRegistry returns an empty instrument registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// SimObserver streams per-run tallies, sampled trace events, and
// progress ticks from the simulator. Attach one to SimConfig.Obs.
type SimObserver = sim.Observer

// NewSimObserver binds the canonical simulator instrument set on reg
// (nil disables everything), with the saved-work histogram spanning
// [0, savedMax).
func NewSimObserver(reg *ObsRegistry, savedMax float64) *SimObserver {
	return sim.NewObserver(reg, savedMax)
}

// TraceSink receives simulation trace events; implementations must be
// safe for concurrent use.
type TraceSink = obs.TraceSink

// TraceEvent is one timestamped occurrence inside a simulated
// reservation (simulation time, not wall clock).
type TraceEvent = obs.Event

// TraceCollector is a TraceSink retaining every event, for tests and
// small experiments.
type TraceCollector = obs.Collector

// NewJSONLTraceSink wraps w in a buffered sink writing one JSON object
// per event line. Call Flush or Close before reading the output.
func NewJSONLTraceSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// Progress is a live progress reporter for long Monte-Carlo runs.
type Progress = obs.Progress

// NewProgress returns a reporter writing to w every interval (default
// 1s). total <= 0 means unknown.
func NewProgress(w io.Writer, label string, total int64, interval time.Duration) *Progress {
	return obs.NewProgress(w, label, total, interval)
}

// CountedStrategy wraps s so every decision increments a
// continue/checkpoint/stop counter on reg, without altering any
// decision. The wrapped policy is transparent: simulation results are
// bit-identical with or without it.
func CountedStrategy(s Strategy, reg *ObsRegistry) Strategy {
	return strategy.NewCounted(s, reg)
}

// ObserveQuadrature binds the process-global integrand-evaluation
// counter of the quadrature kernels to "quad.evals" on reg; a nil
// registry disables it. Counting never affects numerical results.
func ObserveQuadrature(reg *ObsRegistry) {
	quad.ObserveEvals(reg.Counter("quad.evals"))
}

// ObserveOptimize binds the process-global root-finder resilience
// counters — "optimize.nonfinite_retries" (objective returned NaN/Inf
// and nudged abscissae were probed) and "optimize.bisect_fallbacks"
// (Brent restarted as plain bisection) — on reg; a nil registry
// disables them.
func ObserveOptimize(reg *ObsRegistry) {
	optimize.ObserveNonFiniteRetries(reg.Counter("optimize.nonfinite_retries"))
	optimize.ObserveBisectFallbacks(reg.Counter("optimize.bisect_fallbacks"))
}
