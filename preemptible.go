package reskit

import "reskit/internal/core"

// Preemptible is the Section 3 problem: checkpoint at any instant of a
// reservation of length R, with a stochastic checkpoint duration of
// bounded support [a, b].
type Preemptible = core.Preemptible

// Solution reports an optimal checkpoint instant: start the checkpoint
// X seconds before the end of the reservation.
type Solution = core.Solution

// NewPreemptible builds the Section 3 problem for reservation length r
// and a checkpoint-duration law c with finite support [a, b], 0 < a < b
// (build truncated laws with Truncate). It panics on invalid inputs.
func NewPreemptible(r float64, c Continuous) *Preemptible {
	return core.NewPreemptible(r, c)
}
