package reskit

import (
	"context"

	"reskit/internal/engine"
	"reskit/internal/sim"
	"reskit/internal/stats"
)

// Streaming facade: open-ended runs drained from a lazy job source into
// an ordered sink, stopped by a sequential statistical rule instead of a
// fixed trial count. The engine half (RunEngineStream) generalizes
// RunEngine from "run this slice" to "drain this source"; the campaign
// half (CampaignStream) is the paper's Monte-Carlo as such a stream.

// EngineJobSource is a lazy, possibly unbounded stream of jobs — the
// generalization of EngineSpec.Jobs. The engine pulls jobs from a single
// goroutine in commit-index order, and a source must be deterministic:
// resuming a run replays it from the start.
type EngineJobSource = engine.JobSource

// EngineStreamSink folds committed payloads in strict index order and
// may ask the run to stop at the current frontier.
type EngineStreamSink = engine.StreamSink

// EngineStreamSpec describes a streaming run: source, sink, and the
// same reproducibility, durability and failure-policy knobs as
// EngineSpec, plus the job cap and dispatch window.
type EngineStreamSpec = engine.StreamSpec

// EngineStreamResult reports a streaming run: the commit frontier, how
// much of it was restored from a snapshot, and whether the sink stopped
// the run or the source ran dry.
type EngineStreamResult = engine.StreamResult

// NewEngineSliceSource adapts a fixed job slice to an EngineJobSource —
// the batch grid as a special case of the stream.
func NewEngineSliceSource(jobs []EngineJob) EngineJobSource { return engine.NewSliceSource(jobs) }

// RunEngineStream drains the source into the sink across workers,
// folding results in strict index order and evaluating the sink's stop
// rule after every fold. With checkpointing configured the commit
// frontier and sink state are snapshotted, so a killed run resumes
// bit-identically.
func RunEngineStream(ctx context.Context, spec EngineStreamSpec) (*EngineStreamResult, error) {
	return engine.RunStream(ctx, spec)
}

// StopSpec is a sequential stopping rule: stop when the CI half-width
// of the target mean is small enough (relative or absolute), optionally
// also requiring the tracked quantiles to have stopped moving. The zero
// value never stops.
type StopSpec = stats.StopSpec

// ParseStopSpec parses a compact stopping-rule spec such as
// "rel=0.005,conf=0.99,min=5000,qtol=0.02"; a bare number is shorthand
// for the relative criterion.
func ParseStopSpec(s string) (StopSpec, error) { return stats.ParseStop(s) }

// StatSummary is a running mean/variance accumulator (Welford) with an
// exact binary wire image — the building block of streaming stop rules.
type StatSummary = stats.Summary

// CampaignStream is a streaming campaign Monte-Carlo: a lazy block
// source plus the ordered sink folding blocks and evaluating the
// stopping rule. The aggregate and the stop decision are identical for
// any worker count and across kill-and-resume.
type CampaignStream = sim.CampaignStream

// NewCampaignStream validates cfg and the stopping rule. target selects
// the watched summary: "util" (default), "lost" or "res".
func NewCampaignStream(cfg CampaignConfig, stop StopSpec, target string) (*CampaignStream, error) {
	return sim.NewCampaignStream(cfg, stop, target)
}

// StreamTargets names the metrics a campaign stopping rule may target.
func StreamTargets() []string { return append([]string(nil), sim.StreamTargets...) }

// StreamBlocks converts a trial budget into the streamed-block cap for
// EngineStreamSpec.MaxJobs, rounding up to whole blocks.
func StreamBlocks(trials int) int { return sim.StreamBlocks(trials) }

// StreamBlockTrials is the number of trials in one streamed campaign
// block.
const StreamBlockTrials = sim.StreamBlockTrials
