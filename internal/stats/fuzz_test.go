package stats

import (
	"testing"
)

// FuzzParseStop hammers the stopping-rule parser with arbitrary specs:
// it must never panic, every accepted spec must validate, and the
// canonical String rendering must reparse to the identical spec — the
// round trip streaming fingerprints rely on (equivalent specs must
// render, and therefore hash, identically).
func FuzzParseStop(f *testing.F) {
	f.Add("")
	f.Add("0.01")
	f.Add("rel=0.005")
	f.Add("abs=0.25")
	f.Add("rel=0.005,abs=0.01,conf=0.99,min=5000,qtol=0.02")
	f.Add("rel=-1")
	f.Add("conf=0.95")
	f.Add("rel=0.01,rel=0.02")
	f.Add("min=,")
	f.Add("  qtol=0.02 , rel=1e-9  ")
	f.Add("NaN")
	f.Add("+Inf")

	f.Fuzz(func(t *testing.T, spec string) {
		sp, err := ParseStop(spec)
		if err != nil {
			return
		}
		if sp.Active() {
			if verr := sp.Validate(); verr != nil {
				t.Fatalf("ParseStop(%q) accepted an invalid spec %+v: %v", spec, sp, verr)
			}
		} else if sp != (StopSpec{}) {
			t.Fatalf("ParseStop(%q) returned an inactive non-zero spec %+v", spec, sp)
		}
		rendered := sp.String()
		back, err := ParseStop(rendered)
		if err != nil {
			t.Fatalf("String round trip: ParseStop(%q) = %v", rendered, err)
		}
		if back != sp {
			t.Fatalf("round trip drift: %q -> %+v -> %q -> %+v", spec, sp, rendered, back)
		}
	})
}
