package stats

import (
	"math"
	"strings"
	"testing"

	"reskit/internal/rng"
)

func TestParseStopValid(t *testing.T) {
	cases := []struct {
		in   string
		want StopSpec
	}{
		{"", StopSpec{}},
		{"  ", StopSpec{}},
		{"0.005", StopSpec{Rel: 0.005}},
		{"rel=0.005", StopSpec{Rel: 0.005}},
		{"abs=0.01", StopSpec{Abs: 0.01}},
		{"rel=0.005,abs=0.01,conf=0.99,min=5000,qtol=0.02",
			StopSpec{Rel: 0.005, Abs: 0.01, Confidence: 0.99, MinN: 5000, QuantTol: 0.02}},
		// Order-free keys, embedded whitespace.
		{" qtol=0.02 , rel=0.005 ", StopSpec{Rel: 0.005, QuantTol: 0.02}},
	}
	for _, tc := range cases {
		got, err := ParseStop(tc.in)
		if err != nil {
			t.Errorf("ParseStop(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseStop(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseStopErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"conf=0.95", "needs rel or abs"},
		{"rel=-0.1", "non-negative"},
		{"rel=NaN", "non-negative finite"},
		{"abs=+Inf", "non-negative finite"},
		{"rel=0.01,conf=1", "confidence must be in (0,1)"},
		{"rel=0.01,conf=0", "needs a value"}, // conf=0 parses but renders the spec... no: literal check below
		{"rel=0.01,min=-5", "min must be non-negative"},
		{"rel=0.01,qtol=-1", "qtol must be a non-negative"},
		{"rel=0.01,rel=0.02", `duplicate "rel"`},
		{"speed=11", "unknown key"},
		{"rel", "needs a value"},
		{"rel=0.01,,abs=0.2", "empty field"},
		{"rel=zero", "bad rel"},
		{"min=1e3,rel=0.1", "bad min"},
	}
	for _, tc := range cases {
		if tc.in == "rel=0.01,conf=0" {
			// conf=0 is the "use default" zero value: legal.
			if _, err := ParseStop(tc.in); err != nil {
				t.Errorf("ParseStop(%q): conf=0 should mean the default, got %v", tc.in, err)
			}
			continue
		}
		_, err := ParseStop(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseStop(%q): err = %v, want %q", tc.in, err, tc.want)
		}
	}
}

// TestStopSpecStringRoundTrip: String renders the canonical form
// ParseStop reparses to the identical spec — the property the streaming
// fingerprint relies on (two runs with equivalent specs must hash the
// same way).
func TestStopSpecStringRoundTrip(t *testing.T) {
	specs := []StopSpec{
		{},
		{Rel: 0.005},
		{Abs: 0.25},
		{Rel: 1e-9, Abs: 0.01, Confidence: 0.999, MinN: 12345, QuantTol: 0.025},
	}
	for _, sp := range specs {
		s := sp.String()
		got, err := ParseStop(s)
		if err != nil {
			t.Errorf("ParseStop(String(%+v) = %q): %v", sp, s, err)
			continue
		}
		if got != sp {
			t.Errorf("round trip %+v -> %q -> %+v", sp, s, got)
		}
	}
	if s := (StopSpec{Rel: 0.005, MinN: 100}).String(); s != "rel=0.005,min=100" {
		t.Errorf("canonical form = %q, want fixed field order with zeros omitted", s)
	}
}

func TestStopSpecZ(t *testing.T) {
	if z := (StopSpec{Rel: 1}).Z(); math.Abs(z-1.9599639845) > 1e-6 {
		t.Errorf("default-confidence Z = %g, want 1.96", z)
	}
	if z := (StopSpec{Rel: 1, Confidence: 0.99}).Z(); math.Abs(z-2.5758293035) > 1e-6 {
		t.Errorf("99%% Z = %g, want 2.576", z)
	}
}

// TestStopperCI: the rule must hold off until minN, then fire once the
// half-width criterion is met — and an inactive spec never fires.
func TestStopperCI(t *testing.T) {
	var idle Stopper
	var tgt Summary
	for i := 0; i < 100; i++ {
		tgt.Add(1)
	}
	if idle.Step(tgt, nil) {
		t.Error("zero spec fired")
	}

	// A constant target has zero half-width: the rule fires exactly when
	// n reaches the floor.
	st := Stopper{Spec: StopSpec{Rel: 0.01, MinN: 200}}
	if st.Step(tgt, nil) {
		t.Error("fired below MinN")
	}
	for i := 0; i < 100; i++ {
		tgt.Add(1)
	}
	if !st.Step(tgt, nil) {
		t.Error("did not fire at MinN with a zero-width CI")
	}

	// The absolute criterion: half-width of a noisy mean shrinks as
	// 1/sqrt(n); the rule must stay quiet while hw > Abs and fire after.
	abs := Stopper{Spec: StopSpec{Abs: 0.05, MinN: 10}}
	var noisy Summary
	r := rng.New(5)
	fired := -1
	for i := 0; i < 100000; i++ {
		noisy.Add(r.Normal())
		if abs.Step(noisy, nil) {
			fired = i + 1
			break
		}
	}
	if fired < 0 {
		t.Fatal("absolute criterion never fired")
	}
	if hw := abs.Spec.HalfWidth(noisy); hw > 0.05 {
		t.Errorf("fired at n=%d with half-width %g > abs", fired, hw)
	}
}

// TestStopperQuantileStability: with QuantTol set, the CI being met is
// not enough — the sketch quantiles must also sit still across a
// doubling epoch. A drifting distribution keeps the rule quiet; a
// stationary one releases it.
func TestStopperQuantileStability(t *testing.T) {
	spec := StopSpec{Rel: 0.5, MinN: 100, QuantTol: 0.05}

	// Drifting: each sample doubles the scale of the last — quantiles
	// never settle, so the rule must not fire even with a loose CI.
	drift := Stopper{Spec: spec}
	var dtgt Summary
	dsk := NewQSketch(100)
	firedDrifting := false
	for i := 0; i < 4000; i++ {
		x := float64(i) * float64(i) // strongly drifting upward
		dtgt.Add(1)                  // constant target: CI criterion trivially met
		dsk.Add(x)
		if drift.Step(dtgt, dsk) {
			firedDrifting = true
			break
		}
	}
	if firedDrifting {
		t.Error("rule fired while quantiles were drifting")
	}

	// Stationary: quantiles settle after a few epochs and the rule fires.
	stat := Stopper{Spec: spec}
	var stgt Summary
	ssk := NewQSketch(100)
	r := rng.New(9)
	fired := false
	for i := 0; i < 100000; i++ {
		stgt.Add(1)
		ssk.Add(r.Float64())
		if stat.Step(stgt, ssk) {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("rule never fired on a stationary stream")
	}
}

// TestStopperWireRoundTrip: persisting the stopper mid-stream and
// restoring it must reproduce the uninterrupted decision sequence bit
// for bit — the property frontier snapshots rely on.
func TestStopperWireRoundTrip(t *testing.T) {
	spec := StopSpec{Rel: 0.02, MinN: 500, QuantTol: 0.01}
	mk := func() (*Stopper, *Summary, *QSketch) {
		return &Stopper{Spec: spec}, &Summary{}, NewQSketch(100)
	}

	full, ftgt, fsk := mk()
	part, ptgt, psk := mk()
	r1, r2 := rng.New(21), rng.New(21)
	const cut = 3000
	var fullSeq, partSeq []bool
	for i := 0; i < 8000; i++ {
		x := r1.Normal()
		ftgt.Add(x)
		fsk.Add(x)
		fullSeq = append(fullSeq, full.Step(*ftgt, fsk))

		y := r2.Normal()
		ptgt.Add(y)
		psk.Add(y)
		partSeq = append(partSeq, part.Step(*ptgt, psk))
		if i == cut {
			// Simulate kill-and-resume: round-trip all resumable state.
			img := part.AppendBinary(nil)
			if len(img) != StopperWireSize {
				t.Fatalf("stopper image %d bytes, want %d", len(img), StopperWireSize)
			}
			part = &Stopper{Spec: spec}
			if err := part.UnmarshalBinary(img); err != nil {
				t.Fatal(err)
			}
			simg, _ := ptgt.MarshalBinary()
			ptgt = &Summary{}
			if err := ptgt.UnmarshalBinary(simg); err != nil {
				t.Fatal(err)
			}
			qimg, _ := psk.MarshalBinary()
			psk = NewQSketch(100)
			if err := psk.UnmarshalBinary(qimg); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range fullSeq {
		if fullSeq[i] != partSeq[i] {
			t.Fatalf("decision %d diverged after mid-stream round trip", i)
		}
	}
}

func TestStopperWireErrors(t *testing.T) {
	var st Stopper
	if err := st.UnmarshalBinary(make([]byte, StopperWireSize-1)); err == nil {
		t.Error("short image accepted")
	}
	bad := make([]byte, StopperWireSize)
	for i := 0; i < 8; i++ {
		bad[i] = 0xff // prevN = -1
	}
	if err := st.UnmarshalBinary(bad); err == nil {
		t.Error("negative epoch count accepted")
	}
	bad = make([]byte, StopperWireSize)
	bad[32] = 7 // unknown flags
	if err := st.UnmarshalBinary(bad); err == nil {
		t.Error("unknown flags accepted")
	}
}

func TestRelMove(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{10, 10, 0},
		{10, 11, 1.0 / 11}, // |10-11| scaled by the larger magnitude
		{-4, 4, 2},
		{0, 5, 1},
	}
	for _, tc := range cases {
		if got := relMove(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("relMove(%g, %g) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
	if !math.IsInf(relMove(math.NaN(), 1), 1) {
		t.Error("relMove with NaN should be +Inf (never stable)")
	}
}
