package stats

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"reskit/internal/rng"
)

func TestSummaryWireRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{3.25, -1.5, 0, 1e-300, 7.75, math.Pi} {
		s.Add(x)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != SummaryWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(data), SummaryWireSize)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip changed the summary: got %+v, want %+v", got, s)
	}
}

func TestSummaryWireEmpty(t *testing.T) {
	var s Summary
	data, _ := s.MarshalBinary()
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("empty summary round trip: got %+v", got)
	}
}

func TestSummaryWireMergeBitIdentical(t *testing.T) {
	// The checkpoint contract: merging a decoded partial must give the
	// exact bits of merging the original partial.
	var a, b Summary
	for i := 0; i < 100; i++ {
		a.Add(math.Sqrt(float64(i) + 0.3))
		b.Add(math.Log1p(float64(i) * 1.7))
	}
	data, _ := b.MarshalBinary()
	var b2 Summary
	if err := b2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	m1, m2 := a, a
	m1.Merge(b)
	m2.Merge(b2)
	if m1 != m2 {
		t.Errorf("merge after round trip differs: %+v vs %+v", m1, m2)
	}
}

// TestQSketchWireRoundTrip: a decoded sketch must answer every quantile
// identically and behave bit-identically under further Adds — the
// frontier-snapshot contract for streaming campaigns.
func TestQSketchWireRoundTrip(t *testing.T) {
	s := NewQSketch(100)
	src := rng.New(13)
	for i := 0; i < 5000; i++ {
		s.Add(src.Normal())
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))

	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := new(QSketch)
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Count() != s.Count() || got.NaNs() != s.NaNs() || got.Min() != s.Min() || got.Max() != s.Max() {
		t.Errorf("bookkeeping drifted: count %d/%d nans %d/%d min %g/%g max %g/%g",
			got.Count(), s.Count(), got.NaNs(), s.NaNs(), got.Min(), s.Min(), got.Max(), s.Max())
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.99, 1} {
		if a, b := got.Quantile(q), s.Quantile(q); a != b {
			t.Errorf("Quantile(%g): decoded %g, original %g", q, a, b)
		}
	}
	// Continue both streams: every subsequent sample must leave the two
	// sketches bit-identical (same centroids, same answers).
	cont := rng.New(14)
	for i := 0; i < 2000; i++ {
		x := cont.Normal()
		s.Add(x)
		got.Add(x)
	}
	d1, _ := s.MarshalBinary()
	d2, _ := got.MarshalBinary()
	if !bytes.Equal(d1, d2) {
		t.Error("sketches diverged after post-round-trip Adds")
	}
}

func TestQSketchWireEmpty(t *testing.T) {
	s := NewQSketch(50)
	data, _ := s.MarshalBinary()
	got := new(QSketch)
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 || !math.IsNaN(got.Quantile(0.5)) {
		t.Errorf("empty sketch round trip: count %d", got.Count())
	}
}

// TestQSketchWireErrors: corrupt images must be rejected loudly, never
// decoded into a sketch that would skew quantiles.
func TestQSketchWireErrors(t *testing.T) {
	good := NewQSketch(50)
	for i := 0; i < 32; i++ {
		good.Add(float64(i))
	}
	img, _ := good.MarshalBinary()

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		bad := mutate(append([]byte(nil), img...))
		if err := new(QSketch).UnmarshalBinary(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("truncated header", func(b []byte) []byte { return b[:qsketchWireHeader-1] })
	corrupt("truncated centroids", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0) })
	corrupt("negative count", func(b []byte) []byte {
		for i := 8; i < 16; i++ {
			b[i] = 0xff
		}
		return b
	})
	corrupt("NaN compression", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[0:], math.Float64bits(math.NaN()))
		return b
	})
	corrupt("NaN centroid mean", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[qsketchWireHeader:], math.Float64bits(math.NaN()))
		return b
	})
	corrupt("zero centroid weight", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[qsketchWireHeader+8:], 0)
		return b
	})
	corrupt("centroids out of order", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[qsketchWireHeader:], math.Float64bits(1e9))
		return b
	})
	corrupt("absurd centroid count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[40:], 1<<40)
		return b
	})
}

func TestSummaryWireErrors(t *testing.T) {
	var s Summary
	if err := s.UnmarshalBinary(make([]byte, SummaryWireSize-1)); err == nil {
		t.Error("short image accepted")
	}
	if err := s.UnmarshalBinary(make([]byte, SummaryWireSize+1)); err == nil {
		t.Error("long image accepted")
	}
	bad := make([]byte, SummaryWireSize)
	for i := 0; i < 8; i++ {
		bad[i] = 0xff // n = -1
	}
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("negative count accepted")
	}
}
