package stats

import (
	"math"
	"testing"
)

func TestSummaryWireRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{3.25, -1.5, 0, 1e-300, 7.75, math.Pi} {
		s.Add(x)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != SummaryWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(data), SummaryWireSize)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip changed the summary: got %+v, want %+v", got, s)
	}
}

func TestSummaryWireEmpty(t *testing.T) {
	var s Summary
	data, _ := s.MarshalBinary()
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("empty summary round trip: got %+v", got)
	}
}

func TestSummaryWireMergeBitIdentical(t *testing.T) {
	// The checkpoint contract: merging a decoded partial must give the
	// exact bits of merging the original partial.
	var a, b Summary
	for i := 0; i < 100; i++ {
		a.Add(math.Sqrt(float64(i) + 0.3))
		b.Add(math.Log1p(float64(i) * 1.7))
	}
	data, _ := b.MarshalBinary()
	var b2 Summary
	if err := b2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	m1, m2 := a, a
	m1.Merge(b)
	m2.Merge(b2)
	if m1 != m2 {
		t.Errorf("merge after round trip differs: %+v vs %+v", m1, m2)
	}
}

func TestSummaryWireErrors(t *testing.T) {
	var s Summary
	if err := s.UnmarshalBinary(make([]byte, SummaryWireSize-1)); err == nil {
		t.Error("short image accepted")
	}
	if err := s.UnmarshalBinary(make([]byte, SummaryWireSize+1)); err == nil {
		t.Error("long image accepted")
	}
	bad := make([]byte, SummaryWireSize)
	for i := 0; i < 8; i++ {
		bad[i] = 0xff // n = -1
	}
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("negative count accepted")
	}
}
