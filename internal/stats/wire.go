package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SummaryWireSize is the exact encoded size of a Summary: the
// observation count plus four float64 fields, little-endian.
const SummaryWireSize = 5 * 8

// AppendBinary appends the exact binary image of s to b and returns the
// extended slice. Floats are encoded as their IEEE-754 bit patterns, so
// a decoded Summary is bit-identical to the original — the property the
// checkpoint/resume machinery relies on to make resumed Monte-Carlo
// aggregates indistinguishable from uninterrupted ones.
func (s Summary) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(s.n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.mean))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.m2))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.max))
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s Summary) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, SummaryWireSize)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It requires
// exactly SummaryWireSize bytes and restores every field bit for bit.
func (s *Summary) UnmarshalBinary(data []byte) error {
	if len(data) != SummaryWireSize {
		return fmt.Errorf("stats: summary wire image is %d bytes, want %d", len(data), SummaryWireSize)
	}
	n := int64(binary.LittleEndian.Uint64(data[0:]))
	if n < 0 {
		return fmt.Errorf("stats: summary wire image has negative count %d", n)
	}
	s.n = n
	s.mean = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	s.m2 = math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	s.min = math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	s.max = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	return nil
}

// qsketchWireHeader is the fixed prefix of a QSketch wire image:
// compression, count, nans, min, max, and the centroid count, followed
// by 16 bytes (mean, weight) per centroid.
const qsketchWireHeader = 6 * 8

// AppendBinary appends the exact binary image of the sketch to b and
// returns the extended slice. Pending samples are flushed first, so the
// image is the canonical compressed form; decoding it restores a sketch
// whose every subsequent Add/Merge behaves bit-identically to the
// original — the property frontier snapshots of streaming campaigns
// rely on for kill-and-resume bit-identity.
func (s *QSketch) AppendBinary(b []byte) []byte {
	s.flush()
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.compression))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.count))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.nans))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.max))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.cents)))
	for _, c := range s.cents {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.mean))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.weight))
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *QSketch) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, qsketchWireHeader+16*len(s.cents)+16*len(s.pend))), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It requires the
// exact image length (the sketch is the trailing field of any composite
// encoding) and validates the structural invariants — non-negative
// counts, finite positive weights, centroid means finite and sorted —
// so a corrupt snapshot fails loudly instead of skewing quantiles.
func (s *QSketch) UnmarshalBinary(data []byte) error {
	if len(data) < qsketchWireHeader {
		return fmt.Errorf("stats: qsketch wire image is %d bytes, want at least %d", len(data), qsketchWireHeader)
	}
	ncents := binary.LittleEndian.Uint64(data[40:])
	if ncents > uint64((len(data)-qsketchWireHeader)/16) || len(data) != qsketchWireHeader+16*int(ncents) {
		return fmt.Errorf("stats: qsketch wire image is %d bytes, want %d for %d centroids",
			len(data), qsketchWireHeader+16*int(ncents), ncents)
	}
	count := int64(binary.LittleEndian.Uint64(data[8:]))
	nans := int64(binary.LittleEndian.Uint64(data[16:]))
	if count < 0 || nans < 0 {
		return fmt.Errorf("stats: qsketch wire image has negative counts (%d samples, %d NaNs)", count, nans)
	}
	compression := math.Float64frombits(binary.LittleEndian.Uint64(data[0:]))
	if math.IsNaN(compression) || compression < 0 {
		return fmt.Errorf("stats: qsketch wire image has bad compression %g", compression)
	}
	cents := make([]qcentroid, ncents)
	prev := math.Inf(-1)
	for i := range cents {
		off := qsketchWireHeader + 16*i
		mean := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		weight := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			return fmt.Errorf("stats: qsketch wire image centroid %d has non-finite mean", i)
		}
		if mean < prev {
			return fmt.Errorf("stats: qsketch wire image centroids out of order at %d", i)
		}
		if !(weight > 0) || math.IsInf(weight, 0) {
			return fmt.Errorf("stats: qsketch wire image centroid %d has bad weight %g", i, weight)
		}
		prev = mean
		cents[i] = qcentroid{mean: mean, weight: weight}
	}
	s.compression = compression
	s.count = count
	s.nans = nans
	s.min = math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	s.max = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	s.cents = cents
	s.pend = s.pend[:0]
	return nil
}
