package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SummaryWireSize is the exact encoded size of a Summary: the
// observation count plus four float64 fields, little-endian.
const SummaryWireSize = 5 * 8

// AppendBinary appends the exact binary image of s to b and returns the
// extended slice. Floats are encoded as their IEEE-754 bit patterns, so
// a decoded Summary is bit-identical to the original — the property the
// checkpoint/resume machinery relies on to make resumed Monte-Carlo
// aggregates indistinguishable from uninterrupted ones.
func (s Summary) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(s.n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.mean))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.m2))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.max))
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s Summary) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, SummaryWireSize)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It requires
// exactly SummaryWireSize bytes and restores every field bit for bit.
func (s *Summary) UnmarshalBinary(data []byte) error {
	if len(data) != SummaryWireSize {
		return fmt.Errorf("stats: summary wire image is %d bytes, want %d", len(data), SummaryWireSize)
	}
	n := int64(binary.LittleEndian.Uint64(data[0:]))
	if n < 0 {
		return fmt.Errorf("stats: summary wire image has negative count %d", n)
	}
	s.n = n
	s.mean = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	s.m2 = math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	s.min = math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	s.max = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	return nil
}
