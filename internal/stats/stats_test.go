package stats

import (
	"math"
	"testing"
	"testing/quick"

	"reskit/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean %g", s.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance %g", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema %g %g", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 %g", s.CI95())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 {
		t.Errorf("empty summary moments")
	}
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Errorf("empty summary extrema")
	}
	if !math.IsInf(s.StdErr(), 1) {
		t.Errorf("empty summary stderr")
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormalMS(3, 2)
		}
		var whole Summary
		for _, x := range xs {
			whole.Add(x)
		}
		var a, b Summary
		cut := n / 3
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-10 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-8 &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeWithEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	a.Merge(b) // no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Errorf("merge with empty changed summary")
	}
	b.Merge(a) // adopt
	if b.N() != 2 || b.Mean() != 2 {
		t.Errorf("empty.Merge(full) wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Errorf("quantiles wrong")
	}
	if math.Abs(Quantile(xs, 0.25)-2) > 1e-12 {
		t.Errorf("q25 %g", Quantile(xs, 0.25))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) {
		t.Errorf("invalid inputs")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Errorf("input mutated: %v", ys)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d: %d", i, c)
		}
	}
	h.Add(-1)
	h.Add(11)
	h.Add(10) // boundary goes to last bin
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("outliers %d %d", under, over)
	}
	if h.Counts[9] != 11 {
		t.Errorf("boundary handling: %d", h.Counts[9])
	}
	d := h.Density()
	var integral float64
	for _, v := range d {
		integral += v * 1.0
	}
	if math.Abs(integral-float64(101)/103) > 1e-12 {
		t.Errorf("density integral %g", integral)
	}
}

func TestKSEmptySample(t *testing.T) {
	res := KolmogorovSmirnov(nil, func(float64) float64 { return 0.5 })
	if !math.IsNaN(res.Statistic) {
		t.Errorf("empty sample should give NaN")
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	res := ChiSquare([]int64{5}, []float64{5}, 5)
	if res.DoF != 0 || res.PValue != 1 {
		t.Errorf("single-cell test should be vacuous: %+v", res)
	}
	res = ChiSquare([]int64{1, 2}, []float64{1}, 5)
	if !math.IsNaN(res.Statistic) {
		t.Errorf("mismatched lengths should give NaN")
	}
}

func TestAndersonDarlingEmpty(t *testing.T) {
	res := AndersonDarling(nil, func(float64) float64 { return 0.5 })
	if !math.IsNaN(res.Statistic) {
		t.Errorf("empty sample should give NaN")
	}
}

func TestHistogramBoundaries(t *testing.T) {
	h := NewHistogram(0, 10, 10)

	h.Add(0) // x == Lo: first bin, not an underflow
	if under, _ := h.Outliers(); under != 0 || h.Counts[0] != 1 {
		t.Errorf("Add(Lo): under=%d, Counts[0]=%d, want 0 and 1", under, h.Counts[0])
	}

	h.Add(10) // x == Hi: last bin (closed range), not an overflow
	if _, over := h.Outliers(); over != 0 || h.Counts[9] != 1 {
		t.Errorf("Add(Hi): over=%d, Counts[9]=%d, want 0 and 1", over, h.Counts[9])
	}

	h.Add(math.Nextafter(10, 11)) // just above Hi: overflow
	if _, over := h.Outliers(); over != 1 {
		t.Errorf("Add(Hi+ulp): over=%d, want 1", over)
	}
	h.Add(math.Nextafter(0, -1)) // just below Lo: underflow
	if under, _ := h.Outliers(); under != 1 {
		t.Errorf("Add(Lo-ulp): under=%d, want 1", under)
	}

	h.Add(math.NaN()) // rejected into its own tally, no panic
	if h.NaNs() != 1 {
		t.Errorf("NaNs() = %d, want 1", h.NaNs())
	}
	if under, over := h.Outliers(); under != 1 || over != 1 {
		t.Errorf("NaN leaked into outliers: under=%d over=%d", under, over)
	}
	if h.Total() != 5 {
		t.Errorf("Total() = %d, want 5", h.Total())
	}

	var inBins int64
	for _, c := range h.Counts {
		inBins += c
	}
	if inBins != 2 {
		t.Errorf("binned count = %d, want 2", inBins)
	}
}
