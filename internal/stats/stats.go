// Package stats provides the summary statistics, confidence intervals,
// histograms and goodness-of-fit tests used to aggregate and validate the
// Monte-Carlo experiments of the reservation-checkpointing library.
//
// The two goodness-of-fit tests (Kolmogorov–Smirnov for continuous laws,
// chi-square for discrete laws) are how the test-suite proves that the
// from-scratch samplers of internal/rng really draw from the laws of
// internal/dist.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming first and second moments with Welford's
// algorithm, plus extrema. The zero value is an empty summary ready to
// use.
type Summary struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into s (parallel reduction). The result is
// identical (up to rounding) to having Added all observations into one
// summary.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of observations.
func (s Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.n < 2 {
		return math.Inf(1)
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (NaN when empty).
func (s Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN when empty).
func (s Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// CI95 returns the half-width of the asymptotic 95% confidence interval
// of the mean.
func (s Summary) CI95() float64 { return 1.959963984540054 * s.StdErr() }

// String formats the summary for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g (sd=%.4g, min=%.4g, max=%.4g)",
		s.n, s.Mean(), s.CI95(), s.StdDev(), s.Min(), s.Max())
}

// Quantile returns the q-th sample quantile (linear interpolation between
// order statistics) of xs. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i] + frac*(s[i+1]-s[i])
}

// Histogram bins observations into equal-width cells over the closed
// range [Lo, Hi]: the last bin is closed on both sides, so Add(Hi)
// lands in Counts[len(Counts)-1], not in the overflow tally.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	under  int64
	over   int64
	nan    int64
	total  int64
}

// NewHistogram returns a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(lo < hi) || bins < 1 {
		panic(fmt.Sprintf("stats: invalid histogram [%g, %g] x %d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add bins one observation. x == Hi counts in the last bin (closed
// range); x below Lo or above Hi counts as an outlier; NaN is rejected
// into its own tally (a NaN would otherwise corrupt the bin index) and
// reported by NaNs, not by Outliers.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x):
		h.nan++
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		if x == h.Hi {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations added (including outliers
// and NaNs).
func (h *Histogram) Total() int64 { return h.total }

// Outliers returns the counts strictly below Lo and strictly above Hi.
// The boundary Add(Hi) is in range (last bin), and NaNs are tallied
// separately by NaNs.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }

// NaNs returns the number of NaN observations rejected by Add.
func (h *Histogram) NaNs() int64 { return h.nan }

// Density returns the normalized bin densities (integrating to the
// in-range fraction of the data).
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.total) * w)
	}
	return d
}
