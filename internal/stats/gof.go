package stats

import (
	"math"
	"sort"

	"reskit/internal/specfun"
)

// KSResult is the outcome of a one-sample Kolmogorov–Smirnov test.
type KSResult struct {
	Statistic float64 // sup-norm distance D_n
	PValue    float64 // asymptotic p-value (Kolmogorov distribution)
	N         int     // sample size
}

// KolmogorovSmirnov tests whether sample was drawn from the continuous
// law with the given CDF. The sample slice is not modified.
func KolmogorovSmirnov(sample []float64, cdf func(float64) float64) KSResult {
	n := len(sample)
	if n == 0 {
		return KSResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	s := make([]float64, n)
	copy(s, sample)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		f := cdf(x)
		dPlus := float64(i+1)/float64(n) - f
		dMinus := f - float64(i)/float64(n)
		if dPlus > d {
			d = dPlus
		}
		if dMinus > d {
			d = dMinus
		}
	}
	return KSResult{Statistic: d, PValue: ksPValue(d, n), N: n}
}

// ksPValue returns the asymptotic Kolmogorov p-value
// P(D_n > d) ~ 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 n d^2), with the
// standard finite-n adjustment of the argument.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(k)*float64(k))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	return specfun.Clamp01(2 * sum)
}

// ChiSquareResult is the outcome of a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64 // chi-square statistic
	DoF       int     // degrees of freedom
	PValue    float64 // survival function of the chi-square law
}

// ChiSquare tests observed counts against expected counts. Cells with
// expected count below minExpected (default 5 when <= 0) are pooled into
// their neighbor so the asymptotic chi-square approximation holds.
func ChiSquare(observed []int64, expected []float64, minExpected float64) ChiSquareResult {
	if len(observed) != len(expected) || len(observed) == 0 {
		return ChiSquareResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	if minExpected <= 0 {
		minExpected = 5
	}
	// Pool small-expectation cells left to right.
	var obs []float64
	var exp []float64
	var accO, accE float64
	for i := range observed {
		accO += float64(observed[i])
		accE += expected[i]
		if accE >= minExpected {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 {
		if len(exp) == 0 {
			obs = append(obs, accO)
			exp = append(exp, accE)
		} else {
			obs[len(obs)-1] += accO
			exp[len(exp)-1] += accE
		}
	}
	if len(exp) < 2 {
		return ChiSquareResult{Statistic: 0, DoF: 0, PValue: 1}
	}
	var chi2 float64
	for i := range exp {
		d := obs[i] - exp[i]
		chi2 += d * d / exp[i]
	}
	dof := len(exp) - 1
	// Survival function of chi-square with dof degrees of freedom:
	// Q(dof/2, chi2/2).
	p := specfun.GammaIncQ(float64(dof)/2, chi2/2)
	return ChiSquareResult{Statistic: chi2, DoF: dof, PValue: p}
}

// ADResult is the outcome of a one-sample Anderson–Darling test.
type ADResult struct {
	Statistic float64 // A^2 statistic
	PValue    float64 // approximate p-value (case 0: fully specified law)
	N         int
}

// AndersonDarling tests whether sample was drawn from the continuous law
// with the given CDF. It weighs the tails more heavily than
// Kolmogorov–Smirnov, which matters for checkpoint-duration laws whose
// risk lives in the upper tail. The sample slice is not modified.
func AndersonDarling(sample []float64, cdf func(float64) float64) ADResult {
	n := len(sample)
	if n == 0 {
		return ADResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	s := make([]float64, n)
	copy(s, sample)
	sort.Float64s(s)
	fn := float64(n)
	var sum float64
	for i, x := range s {
		u := cdf(x)
		// Clip to keep the logs finite for samples at the support edge.
		if u < 1e-300 {
			u = 1e-300
		}
		if u > 1-1e-16 {
			u = 1 - 1e-16
		}
		ui := cdf(s[n-1-i])
		if ui < 1e-300 {
			ui = 1e-300
		}
		if ui > 1-1e-16 {
			ui = 1 - 1e-16
		}
		sum += (2*float64(i) + 1) * (math.Log(u) + math.Log(1-ui))
	}
	a2 := -fn - sum/fn
	return ADResult{Statistic: a2, PValue: adPValue(a2), N: n}
}

// adPValue returns the case-0 (fully specified law) Anderson–Darling
// p-value 1 - P(A^2 < z) using the asymptotic-CDF approximation of
// Marsaglia & Marsaglia (2004), accurate to a few 1e-5. (Sanity anchor:
// z = 2.492 gives p = 0.05.)
func adPValue(z float64) float64 {
	switch {
	case math.IsNaN(z):
		return math.NaN()
	case z <= 0:
		return 1
	case z < 2:
		cdf := math.Exp(-1.2337141/z) / math.Sqrt(z) *
			(2.00012 + (0.247105-(0.0649821-(0.0347962-(0.011672-0.00168691*z)*z)*z)*z)*z)
		return specfun.Clamp01(1 - cdf)
	case z < 150:
		cdf := math.Exp(-math.Exp(1.0776 - (2.30695-(0.43424-(0.082433-(0.008056-0.0003146*z)*z)*z)*z)*z))
		return specfun.Clamp01(1 - cdf)
	default:
		return 0
	}
}
