package stats

import (
	"math"
	"testing"

	"reskit/internal/rng"
)

func TestQSketchExactSmall(t *testing.T) {
	var s QSketch
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-3) > 0.5 {
		t.Errorf("median = %g, want ~3", got)
	}
}

func TestQSketchEmpty(t *testing.T) {
	var s QSketch
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sketch should answer NaN")
	}
}

func TestQSketchNaNIsolated(t *testing.T) {
	var s QSketch
	s.Add(math.NaN())
	s.Add(2)
	s.Add(math.NaN())
	if s.NaNs() != 2 || s.Count() != 1 {
		t.Fatalf("nans=%d count=%d", s.NaNs(), s.Count())
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("median = %g, want 2 (NaNs excluded)", got)
	}
}

func TestQSketchUniformAccuracy(t *testing.T) {
	s := NewQSketch(100)
	src := rng.New(7)
	const n = 200000
	for i := 0; i < n; i++ {
		s.Add(src.Float64())
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		if math.Abs(got-q) > 0.01 {
			t.Errorf("uniform q%.3f = %g, want within 0.01", q, got)
		}
	}
	if c := s.Centroids(); c > 2*100+16 {
		t.Errorf("centroids = %d, want bounded by ~2δ", c)
	}
}

func TestQSketchNormalTails(t *testing.T) {
	s := NewQSketch(100)
	src := rng.New(11)
	var exact []float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := src.Normal()
		s.Add(x)
		exact = append(exact, x)
	}
	for _, q := range []float64{0.001, 0.01, 0.5, 0.99, 0.999} {
		got := s.Quantile(q)
		want := Quantile(exact, q)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("normal q%.3f = %g, exact %g", q, got, want)
		}
	}
}

func TestQSketchMonotoneQuantiles(t *testing.T) {
	s := NewQSketch(50)
	src := rng.New(3)
	for i := 0; i < 50000; i++ {
		s.Add(math.Exp(3 * src.Normal())) // heavy-tailed
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%.2f gives %g after %g", q, v, prev)
		}
		prev = v
	}
}
