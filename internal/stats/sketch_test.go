package stats

import (
	"math"
	"testing"

	"reskit/internal/rng"
)

func TestQSketchExactSmall(t *testing.T) {
	var s QSketch
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-3) > 0.5 {
		t.Errorf("median = %g, want ~3", got)
	}
}

func TestQSketchEmpty(t *testing.T) {
	var s QSketch
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sketch should answer NaN")
	}
}

func TestQSketchNaNIsolated(t *testing.T) {
	var s QSketch
	s.Add(math.NaN())
	s.Add(2)
	s.Add(math.NaN())
	if s.NaNs() != 2 || s.Count() != 1 {
		t.Fatalf("nans=%d count=%d", s.NaNs(), s.Count())
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("median = %g, want 2 (NaNs excluded)", got)
	}
}

func TestQSketchUniformAccuracy(t *testing.T) {
	s := NewQSketch(100)
	src := rng.New(7)
	const n = 200000
	for i := 0; i < n; i++ {
		s.Add(src.Float64())
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		if math.Abs(got-q) > 0.01 {
			t.Errorf("uniform q%.3f = %g, want within 0.01", q, got)
		}
	}
	if c := s.Centroids(); c > 2*100+16 {
		t.Errorf("centroids = %d, want bounded by ~2δ", c)
	}
}

func TestQSketchNormalTails(t *testing.T) {
	s := NewQSketch(100)
	src := rng.New(11)
	var exact []float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := src.Normal()
		s.Add(x)
		exact = append(exact, x)
	}
	for _, q := range []float64{0.001, 0.01, 0.5, 0.99, 0.999} {
		got := s.Quantile(q)
		want := Quantile(exact, q)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("normal q%.3f = %g, exact %g", q, got, want)
		}
	}
}

func TestQSketchMonotoneQuantiles(t *testing.T) {
	s := NewQSketch(50)
	src := rng.New(3)
	for i := 0; i < 50000; i++ {
		s.Add(math.Exp(3 * src.Normal())) // heavy-tailed
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%.2f gives %g after %g", q, v, prev)
		}
		prev = v
	}
}

// --- Edge interpolation and merge coverage for Quantile ---

// TestQSketchSingleCentroid: with one sample every quantile must return
// exactly that value — the interpolation has nothing to interpolate.
func TestQSketchSingleCentroid(t *testing.T) {
	s := NewQSketch(50)
	s.Add(42)
	for _, q := range []float64{0, 0.001, 0.25, 0.5, 0.75, 0.999, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42", q, got)
		}
	}
	// Repeated identical samples collapse to one centroid and still pin
	// every quantile to the value.
	for i := 0; i < 100; i++ {
		s.Add(42)
	}
	if got := s.Quantile(0.5); got != 42 {
		t.Errorf("after duplicates: Quantile(0.5) = %g", got)
	}
}

// TestQSketchInfinitiesOnly: a sketch fed nothing but infinities has no
// centroids; quantiles must come from min/max, split at the median, and
// never panic or return NaN.
func TestQSketchInfinitiesOnly(t *testing.T) {
	s := NewQSketch(50)
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	s.Add(math.Inf(1))
	if s.Count() != 3 {
		t.Fatalf("count %d", s.Count())
	}
	if got := s.Quantile(0.1); !math.IsInf(got, -1) {
		t.Errorf("Quantile(0.1) = %g, want -Inf (min)", got)
	}
	if got := s.Quantile(0.9); !math.IsInf(got, 1) {
		t.Errorf("Quantile(0.9) = %g, want +Inf (max)", got)
	}
	if got := s.Quantile(0.5); !math.IsInf(got, 1) {
		t.Errorf("Quantile(0.5) = %g, want max at the q=0.5 boundary", got)
	}
	// One finite sample restores finite interior quantiles.
	s.Add(7)
	if got := s.Quantile(0.5); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("with a finite sample, Quantile(0.5) = %g", got)
	}
}

// TestQSketchQuantileAtCentroidMidpoints places q exactly on the
// cumulative-weight midpoints the interpolation pivots on: with unit
// centroids at 10, 20, 30 the midpoints sit at q = 1/6, 3/6, 5/6 and
// must return the centroid means themselves; the extremes pin to
// min/max.
func TestQSketchQuantileAtCentroidMidpoints(t *testing.T) {
	s := NewQSketch(100)
	for _, x := range []float64{10, 20, 30} {
		s.Add(x)
	}
	if n := s.Centroids(); n != 3 {
		t.Fatalf("setup: %d centroids, want 3", n)
	}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1.0 / 6, 10}, {0.5, 20}, {5.0 / 6, 30}, {1, 30},
		// Between midpoints the estimate interpolates linearly.
		{2.0 / 6, 15}, {4.0 / 6, 25},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestQSketchMergeMonotone merges two disjoint shards and requires the
// combined quantile function to stay monotone in q, bracket the global
// min/max, and carry the bookkeeping over exactly.
func TestQSketchMergeMonotone(t *testing.T) {
	r := rng.NewStream(99, 0)
	a := NewQSketch(100)
	b := NewQSketch(100)
	for i := 0; i < 3000; i++ {
		a.Add(r.Float64() * 10)    // [0, 10)
		b.Add(50 + r.Float64()*10) // [50, 60)
	}
	b.Add(math.NaN())
	a.Merge(b)

	if got, want := a.Count(), int64(6000); got != want {
		t.Fatalf("merged count %d, want %d", got, want)
	}
	if a.NaNs() != 1 {
		t.Errorf("merged NaNs %d, want 1", a.NaNs())
	}
	if a.Min() < 0 || a.Min() >= 10 {
		t.Errorf("merged min %g", a.Min())
	}
	if a.Max() < 50 || a.Max() >= 60 {
		t.Errorf("merged max %g", a.Max())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := a.Quantile(q)
		if cur < prev-1e-9 {
			t.Fatalf("quantiles not monotone: Quantile(%g) = %g after %g", q, cur, prev)
		}
		if cur < a.Min()-1e-9 || cur > a.Max()+1e-9 {
			t.Fatalf("Quantile(%g) = %g escapes [min, max]", q, cur)
		}
		prev = cur
	}
	// The shards are disjoint with equal mass, so the median must fall
	// in the gap's neighborhood and the quartiles inside each shard.
	if q := a.Quantile(0.25); q < 0 || q > 10.5 {
		t.Errorf("Quantile(0.25) = %g, want inside the low shard", q)
	}
	if q := a.Quantile(0.75); q < 49.5 || q > 60 {
		t.Errorf("Quantile(0.75) = %g, want inside the high shard", q)
	}
	// The donor sketch must stay usable.
	if got := b.Quantile(0.5); got < 50 || got >= 60 {
		t.Errorf("donor sketch damaged by merge: Quantile(0.5) = %g", got)
	}
}

// TestQSketchMergeEdgeCases covers the degenerate merge shapes: empty
// into empty, empty into full, full into empty, self-merge, nil.
func TestQSketchMergeEdgeCases(t *testing.T) {
	full := NewQSketch(50)
	for i := 0; i < 100; i++ {
		full.Add(float64(i))
	}
	before := full.Quantile(0.5)

	full.Merge(nil)
	full.Merge(full)
	full.Merge(NewQSketch(50))
	if got := full.Quantile(0.5); got != before || full.Count() != 100 {
		t.Errorf("no-op merges changed the sketch: median %g -> %g, count %d", before, got, full.Count())
	}

	empty := NewQSketch(50)
	empty.Merge(full)
	if empty.Count() != 100 || empty.Min() != 0 || empty.Max() != 99 {
		t.Errorf("merge into empty: count %d min %g max %g", empty.Count(), empty.Min(), empty.Max())
	}
	if got := empty.Quantile(0.5); math.Abs(got-before) > 2 {
		t.Errorf("merge into empty shifted the median: %g vs %g", got, before)
	}

	e1, e2 := NewQSketch(50), NewQSketch(50)
	e1.Merge(e2)
	if e1.Count() != 0 || !math.IsNaN(e1.Quantile(0.5)) {
		t.Error("empty-into-empty merge invented samples")
	}
}

// TestQSketchMergeNaNOnlyOperand: merging a shard that saw nothing but
// NaNs must carry the NaN count over without inventing samples or
// disturbing min/max — the shard has no finite history to contribute.
func TestQSketchMergeNaNOnlyOperand(t *testing.T) {
	full := NewQSketch(50)
	for i := 0; i < 10; i++ {
		full.Add(float64(i))
	}
	nanOnly := NewQSketch(50)
	nanOnly.Add(math.NaN())
	nanOnly.Add(math.NaN())
	if nanOnly.Count() != 0 || nanOnly.NaNs() != 2 {
		t.Fatalf("setup: count %d nans %d", nanOnly.Count(), nanOnly.NaNs())
	}

	full.Merge(nanOnly)
	if full.Count() != 10 || full.NaNs() != 2 {
		t.Errorf("merged count %d nans %d, want 10 and 2", full.Count(), full.NaNs())
	}
	if full.Min() != 0 || full.Max() != 9 {
		t.Errorf("NaN-only merge disturbed min/max: %g/%g", full.Min(), full.Max())
	}
	if got := full.Quantile(0.5); math.IsNaN(got) {
		t.Error("median NaN after NaN-only merge")
	}

	// The other direction: an empty sketch absorbing a NaN-only shard
	// stays empty (no min/max) but remembers the NaNs.
	empty := NewQSketch(50)
	empty.Merge(nanOnly)
	if empty.Count() != 0 || empty.NaNs() != 2 {
		t.Errorf("empty <- NaN-only: count %d nans %d", empty.Count(), empty.NaNs())
	}
	if !math.IsNaN(empty.Min()) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty <- NaN-only: min/quantile should stay NaN")
	}
}

// TestQSketchMergeMatchesCombinedStream: merging shards must agree with
// a single sketch that saw every sample, within the digest's accuracy.
func TestQSketchMergeMatchesCombinedStream(t *testing.T) {
	r := rng.NewStream(7, 3)
	combined := NewQSketch(100)
	shards := []*QSketch{NewQSketch(100), NewQSketch(100), NewQSketch(100)}
	for i := 0; i < 9000; i++ {
		x := r.Normal()
		combined.Add(x)
		shards[i%3].Add(x)
	}
	merged := NewQSketch(100)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		got, want := merged.Quantile(q), combined.Quantile(q)
		if math.Abs(got-want) > 0.15 {
			t.Errorf("Quantile(%g): merged %g vs combined %g", q, got, want)
		}
	}
}
