// Goodness-of-fit tests exercising the real samplers live in an
// external test package: dist transitively imports obs, which imports
// stats for the quantile sketch, so an in-package import of dist would
// be a cycle.
package stats_test

import (
	"math"
	"testing"

	"reskit/internal/dist"
	"reskit/internal/rng"
	"reskit/internal/stats"
)

func TestKSAcceptsCorrectLaw(t *testing.T) {
	laws := []dist.Continuous{
		dist.NewNormal(3, 0.5),
		dist.NewGamma(2, 1),
		dist.NewUniform(1, 7.5),
		dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1)),
		dist.Truncate(dist.NewExponential(0.5), 1, 5),
		dist.NewLogNormal(0.5, 0.3),
		dist.NewWeibull(1.5, 2),
	}
	for i, d := range laws {
		r := rng.New(uint64(1000 + i))
		sample := make([]float64, 5000)
		for j := range sample {
			sample[j] = d.Sample(r)
		}
		res := stats.KolmogorovSmirnov(sample, d.CDF)
		if res.PValue < 0.001 {
			t.Errorf("%v: KS rejected its own sampler (D=%g, p=%g)", d, res.Statistic, res.PValue)
		}
	}
}

func TestKSRejectsWrongLaw(t *testing.T) {
	d := dist.NewNormal(3, 0.5)
	wrong := dist.NewNormal(3.2, 0.5)
	r := rng.New(77)
	sample := make([]float64, 5000)
	for j := range sample {
		sample[j] = d.Sample(r)
	}
	res := stats.KolmogorovSmirnov(sample, wrong.CDF)
	if res.PValue > 0.01 {
		t.Errorf("KS failed to reject shifted law (p=%g)", res.PValue)
	}
}

func TestChiSquarePoissonSampler(t *testing.T) {
	p := dist.NewPoisson(4)
	r := rng.New(42)
	const n = 100000
	const kMax = 20
	observed := make([]int64, kMax+1)
	for i := 0; i < n; i++ {
		k := p.Sample(r)
		if k > kMax {
			k = kMax
		}
		observed[k]++
	}
	expected := make([]float64, kMax+1)
	var tail float64 = 1
	for k := 0; k < kMax; k++ {
		expected[k] = p.PMF(k) * n
		tail -= p.PMF(k)
	}
	expected[kMax] = tail * n
	res := stats.ChiSquare(observed, expected, 5)
	if res.PValue < 0.001 {
		t.Errorf("chi-square rejected Poisson sampler: chi2=%g dof=%d p=%g",
			res.Statistic, res.DoF, res.PValue)
	}
}

func TestChiSquareRejectsWrongLaw(t *testing.T) {
	// Counts from Poisson(4) tested against Poisson(5).
	p := dist.NewPoisson(4)
	q := dist.NewPoisson(5)
	r := rng.New(43)
	const n = 100000
	const kMax = 20
	observed := make([]int64, kMax+1)
	for i := 0; i < n; i++ {
		k := p.Sample(r)
		if k > kMax {
			k = kMax
		}
		observed[k]++
	}
	expected := make([]float64, kMax+1)
	var tail float64 = 1
	for k := 0; k < kMax; k++ {
		expected[k] = q.PMF(k) * n
		tail -= q.PMF(k)
	}
	expected[kMax] = tail * n
	res := stats.ChiSquare(observed, expected, 5)
	if res.PValue > 1e-6 {
		t.Errorf("chi-square failed to reject wrong Poisson (p=%g)", res.PValue)
	}
}

func TestAndersonDarlingAcceptsCorrectLaw(t *testing.T) {
	laws := []dist.Continuous{
		dist.NewNormal(3, 0.5),
		dist.NewGamma(2, 1),
		dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1)),
		dist.NewWeibull(1.5, 2),
	}
	for i, d := range laws {
		r := rng.New(uint64(2000 + i))
		sample := make([]float64, 4000)
		for j := range sample {
			sample[j] = d.Sample(r)
		}
		res := stats.AndersonDarling(sample, d.CDF)
		if res.PValue < 0.001 {
			t.Errorf("%v: AD rejected its own sampler (A2=%g, p=%g)", d, res.Statistic, res.PValue)
		}
	}
}

func TestAndersonDarlingRejectsWrongTail(t *testing.T) {
	// A law with the right center but wrong tail: AD must catch it.
	d := dist.NewGamma(2, 1)                 // mean 2, right-skewed
	wrong := dist.NewNormal(2, math.Sqrt(2)) // same mean/variance, wrong tails
	r := rng.New(88)
	sample := make([]float64, 4000)
	for j := range sample {
		sample[j] = d.Sample(r)
	}
	res := stats.AndersonDarling(sample, wrong.CDF)
	if res.PValue > 0.01 {
		t.Errorf("AD failed to reject wrong-tailed law (p=%g)", res.PValue)
	}
}
