package stats

import (
	"math"
	"sort"
)

// QSketch is a bounded-memory quantile sketch in the t-digest family:
// samples are folded into weighted centroids whose resolution follows
// the k1 scale function k(q) = δ/(2π)·asin(2q−1), so the tails keep
// near-exact resolution while the middle of the distribution is
// compressed. Unlike a fixed-layout Histogram it needs no a-priori
// range: any stream of finite values yields usable quantiles, and the
// memory stays O(δ) however long the stream runs.
//
// The zero value is ready to use with the default compression. QSketch
// is not safe for concurrent use; wrap it (obs.Quantiles does) when
// observing from parallel workers.
type QSketch struct {
	compression float64 // δ; 0 means defaultCompression
	cents       []qcentroid
	pend        []float64 // unsorted samples awaiting a merge pass
	count       int64     // finite samples absorbed (cents + pend)
	nans        int64     // NaN samples, tracked apart from the digest
	min, max    float64
}

// qcentroid is one cluster of nearby samples.
type qcentroid struct {
	mean   float64
	weight float64
}

const defaultCompression = 100

// NewQSketch returns a sketch with the given compression δ (higher is
// more accurate and larger; values below 20 are clamped up to keep the
// tails meaningful).
func NewQSketch(compression float64) *QSketch {
	if compression < 20 {
		compression = 20
	}
	return &QSketch{compression: compression}
}

// Add absorbs one sample. NaN is counted separately and never pollutes
// the digest; ±Inf is clamped into min/max but also excluded from
// centroids, so Quantile always returns finite values once any finite
// sample arrived.
func (s *QSketch) Add(x float64) {
	if math.IsNaN(x) {
		s.nans++
		return
	}
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	if math.IsInf(x, 0) {
		return
	}
	s.pend = append(s.pend, x)
	if len(s.pend) >= 4*int(s.delta()) {
		s.flush()
	}
}

// Count returns the number of samples absorbed (excluding NaNs).
func (s *QSketch) Count() int64 { return s.count }

// NaNs returns the number of NaN samples seen and excluded.
func (s *QSketch) NaNs() int64 { return s.nans }

// Min returns the smallest sample, or NaN when empty.
func (s *QSketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN when empty.
func (s *QSketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Centroids returns the current number of centroids — a capacity probe
// for tests, not part of the estimation API.
func (s *QSketch) Centroids() int {
	s.flush()
	return len(s.cents)
}

// Quantile estimates the q-quantile (q clamped to [0, 1]). It returns
// NaN when the sketch is empty.
func (s *QSketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	s.flush()
	if len(s.cents) == 0 {
		// Only infinities were added; min/max is all we know.
		if q < 0.5 {
			return s.min
		}
		return s.max
	}
	var total float64
	for _, c := range s.cents {
		total += c.weight
	}
	target := q * total

	// Interpolate between centroid midpoints, pinning the extreme
	// centroids to the exact min/max so tail quantiles never overshoot
	// the observed range.
	var cum float64
	prevMid := 0.0
	prevMean := s.min
	for i, c := range s.cents {
		mid := cum + c.weight/2
		if target < mid {
			if mid == prevMid {
				return c.mean
			}
			return lerp(prevMean, c.mean, (target-prevMid)/(mid-prevMid))
		}
		cum += c.weight
		prevMid, prevMean = mid, c.mean
		if i == len(s.cents)-1 && target >= mid {
			if cum == mid {
				return s.max
			}
			return lerp(c.mean, s.max, (target-mid)/(cum-mid))
		}
	}
	return s.max
}

// lerp interpolates between a and b, returning the endpoints exactly at
// t = 0 and t = 1 — the naive a + t*(b-a) turns 0*Inf into NaN when an
// endpoint is infinite (min/max absorb ±Inf samples the centroids
// exclude).
func lerp(a, b, t float64) float64 {
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	return a + t*(b-a)
}

func (s *QSketch) delta() float64 {
	if s.compression == 0 {
		return defaultCompression
	}
	return s.compression
}

// k is the t-digest k1 scale function: centroids may grow only while
// their k-width stays below 1, which bounds their count by ~2δ and
// concentrates resolution at both tails.
func (s *QSketch) k(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return s.delta() / (2 * math.Pi) * math.Asin(2*q-1)
}

// flush folds pending samples into the centroid set and re-compresses.
func (s *QSketch) flush() {
	if len(s.pend) == 0 {
		return
	}
	for _, x := range s.pend {
		s.cents = append(s.cents, qcentroid{mean: x, weight: 1})
	}
	s.pend = s.pend[:0]
	s.compress()
}

// Merge folds every sample absorbed by o into s, in the weighted form
// o's digest holds them; o is flushed but not modified further and
// remains usable. Count, NaN and min/max bookkeeping carry over, so
// merging shards observed in parallel is equivalent (up to the digest's
// usual compression error) to observing one combined stream. Merging a
// sketch into itself is a no-op.
func (s *QSketch) Merge(o *QSketch) {
	if o == nil || o == s {
		return
	}
	s.flush()
	o.flush()
	s.nans += o.nans
	if o.count > 0 {
		if s.count == 0 {
			s.min, s.max = o.min, o.max
		} else {
			if o.min < s.min {
				s.min = o.min
			}
			if o.max > s.max {
				s.max = o.max
			}
		}
	}
	s.count += o.count
	if len(o.cents) == 0 {
		return
	}
	s.cents = append(s.cents, o.cents...)
	s.compress()
}

// compress sorts the centroid set and re-clusters it under the k1 size
// bound, in place.
func (s *QSketch) compress() {
	if len(s.cents) <= 1 {
		return
	}
	sort.Slice(s.cents, func(i, j int) bool { return s.cents[i].mean < s.cents[j].mean })

	var total float64
	for _, c := range s.cents {
		total += c.weight
	}
	out := s.cents[:1]
	wSoFar := 0.0
	kLo := s.k(0)
	for _, c := range s.cents[1:] {
		cur := &out[len(out)-1]
		if s.k((wSoFar+cur.weight+c.weight)/total)-kLo <= 1 {
			// Weighted mean keeps the centroid exact for its members.
			w := cur.weight + c.weight
			cur.mean += (c.mean - cur.mean) * c.weight / w
			cur.weight = w
			continue
		}
		wSoFar += cur.weight
		kLo = s.k(wSoFar / total)
		out = append(out, c)
	}
	s.cents = out
}
