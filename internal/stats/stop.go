package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sequential stopping for streaming Monte-Carlo campaigns: instead of
// guessing a trial count up front, the run drains trial blocks until the
// answer is known — the confidence-interval half-width of the target
// mean is under a threshold and (optionally) the tracked quantiles of a
// QSketch have stopped moving. The decision is evaluated only on the
// ordered prefix of committed blocks, so it is a pure function of the
// block stream: deterministic for any worker count, and resumable when
// the Stopper state rides in the run snapshot.

// StopSpec is a sequential stopping rule. The zero value never stops
// (Active reports false); a usable rule sets at least one of Rel/Abs.
type StopSpec struct {
	// Rel stops when the CI half-width is at most Rel·|mean| of the
	// target (0 disables the relative criterion).
	Rel float64
	// Abs stops when the CI half-width is at most Abs (0 disables the
	// absolute criterion). When both Rel and Abs are set, either
	// suffices.
	Abs float64
	// Confidence is the CI coverage (0 means the 0.95 default).
	Confidence float64
	// MinN is the minimum number of observations before the rule may
	// fire (0 means the DefaultStopMinN guard — early CI estimates are
	// too noisy to trust).
	MinN int64
	// QuantTol, when positive, additionally requires quantile
	// stability: between successive doubling epochs of the observation
	// count, every tracked quantile of the companion QSketch must move
	// relatively less than QuantTol.
	QuantTol float64
}

// DefaultStopMinN is the observation floor applied when MinN is zero: a
// CI estimated from fewer observations is noise, and a rule that fires
// on noise stops at a different trial count every run.
const DefaultStopMinN = 1000

// defaultStopConfidence is the CI coverage applied when Confidence is 0.
const defaultStopConfidence = 0.95

// StopQuantiles are the sketch quantiles the stability criterion
// tracks: the median plus the two upper tails the heavy-tailed task
// laws stress.
var StopQuantiles = [3]float64{0.5, 0.9, 0.99}

// Active reports whether the spec stops at all.
func (s StopSpec) Active() bool { return s.Rel > 0 || s.Abs > 0 }

// Validate rejects nonsensical rules up front.
func (s StopSpec) Validate() error {
	switch {
	case math.IsNaN(s.Rel) || math.IsInf(s.Rel, 0) || s.Rel < 0:
		return fmt.Errorf("stats: stop rel must be a non-negative finite number, got %g", s.Rel)
	case math.IsNaN(s.Abs) || math.IsInf(s.Abs, 0) || s.Abs < 0:
		return fmt.Errorf("stats: stop abs must be a non-negative finite number, got %g", s.Abs)
	case s.Confidence != 0 && !(s.Confidence > 0 && s.Confidence < 1):
		return fmt.Errorf("stats: stop confidence must be in (0,1), got %g", s.Confidence)
	case s.MinN < 0:
		return fmt.Errorf("stats: stop min must be non-negative, got %d", s.MinN)
	case math.IsNaN(s.QuantTol) || math.IsInf(s.QuantTol, 0) || s.QuantTol < 0:
		return fmt.Errorf("stats: stop qtol must be a non-negative finite number, got %g", s.QuantTol)
	case !s.Active():
		// Last: a malformed rel/abs should be diagnosed as such, not as
		// an absent rule.
		return errors.New("stats: stop rule needs rel or abs")
	}
	return nil
}

// confidence returns the effective CI coverage.
func (s StopSpec) confidence() float64 {
	if s.Confidence == 0 {
		return defaultStopConfidence
	}
	return s.Confidence
}

// minN returns the effective observation floor.
func (s StopSpec) minN() int64 {
	if s.MinN == 0 {
		return DefaultStopMinN
	}
	return s.MinN
}

// Z returns the two-sided normal critical value of the spec's
// confidence level (1.96 at the default 0.95).
func (s StopSpec) Z() float64 {
	return math.Sqrt2 * math.Erfinv(s.confidence())
}

// HalfWidth returns the CI half-width of the target mean at the spec's
// confidence level — the number the rule compares against Rel/Abs, and
// the live precision readout shown while a streaming run converges.
// +Inf with fewer than two observations.
func (s StopSpec) HalfWidth(target Summary) float64 {
	return s.Z() * target.StdErr()
}

// ciMet reports whether the CI criterion holds for the target summary.
func (s StopSpec) ciMet(target Summary) bool {
	hw := s.HalfWidth(target)
	if math.IsInf(hw, 0) || math.IsNaN(hw) {
		return false
	}
	if s.Abs > 0 && hw <= s.Abs {
		return true
	}
	return s.Rel > 0 && hw <= s.Rel*math.Abs(target.Mean())
}

// String renders the rule as the canonical spec ParseStop accepts:
// fields in fixed order, zero fields omitted. The zero spec renders
// empty.
func (s StopSpec) String() string {
	var parts []string
	if s.Rel != 0 {
		parts = append(parts, "rel="+formatStopFloat(s.Rel))
	}
	if s.Abs != 0 {
		parts = append(parts, "abs="+formatStopFloat(s.Abs))
	}
	if s.Confidence != 0 {
		parts = append(parts, "conf="+formatStopFloat(s.Confidence))
	}
	if s.MinN != 0 {
		parts = append(parts, "min="+strconv.FormatInt(s.MinN, 10))
	}
	if s.QuantTol != 0 {
		parts = append(parts, "qtol="+formatStopFloat(s.QuantTol))
	}
	return strings.Join(parts, ",")
}

// formatStopFloat renders a float so that parsing it back yields the
// identical bits — the property the canonical round trip needs.
func formatStopFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseStop parses a compact stopping-rule spec — comma-separated
// key=value pairs:
//
//	rel=0.005,abs=0.01,conf=0.99,min=5000,qtol=0.02
//
// Keys may appear in any order but at most once; unknown keys and
// invalid values are errors, and the assembled rule is validated (at
// least one of rel/abs must be set). A bare number is shorthand for the
// relative criterion: "0.005" means "rel=0.005". The empty string
// parses to the zero (inactive) spec.
func ParseStop(s string) (StopSpec, error) {
	var sp StopSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		sp.Rel = v
		if verr := sp.Validate(); verr != nil {
			return StopSpec{}, verr
		}
		return sp, nil
	}
	seen := make(map[string]bool, 5)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return StopSpec{}, errors.New("stats: empty field in stop spec")
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		if !hasVal {
			return StopSpec{}, fmt.Errorf("stats: %s needs a value in stop spec", key)
		}
		if seen[key] {
			return StopSpec{}, fmt.Errorf("stats: duplicate %q in stop spec", key)
		}
		seen[key] = true
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "rel":
			sp.Rel, err = strconv.ParseFloat(val, 64)
		case "abs":
			sp.Abs, err = strconv.ParseFloat(val, 64)
		case "conf":
			sp.Confidence, err = strconv.ParseFloat(val, 64)
		case "min":
			sp.MinN, err = strconv.ParseInt(val, 10, 64)
		case "qtol":
			sp.QuantTol, err = strconv.ParseFloat(val, 64)
		default:
			return StopSpec{}, fmt.Errorf("stats: unknown key %q in stop spec (known: abs, conf, min, qtol, rel)", key)
		}
		if err != nil {
			return StopSpec{}, fmt.Errorf("stats: bad %s in stop spec: %w", key, err)
		}
	}
	if err := sp.Validate(); err != nil {
		return StopSpec{}, err
	}
	return sp, nil
}

// Stopper evaluates a StopSpec over an ordered stream of commits. The
// caller owns the target Summary and the optional QSketch (they are
// part of the resumable aggregate); the Stopper owns only the
// quantile-stability memory between doubling epochs. Step must be
// called at ordered block boundaries — the decision is then a pure
// function of the committed prefix, identical for any worker count and
// across kill-and-resume (persist the state with AppendBinary).
type Stopper struct {
	Spec StopSpec

	prevN   int64      // observation count at the last quantile epoch
	prevQ   [3]float64 // StopQuantiles estimates at that epoch
	qStable bool       // last epoch comparison came out stable
}

// Step evaluates the rule after a block commit. target is the running
// summary of the stop target; sketch may be nil when the spec does not
// require quantile stability. It returns true when the run may stop.
func (st *Stopper) Step(target Summary, sketch *QSketch) bool {
	if !st.Spec.Active() {
		return false
	}
	n := target.N()
	if st.Spec.QuantTol > 0 && sketch != nil {
		st.stepQuantiles(sketch)
	}
	if n < st.Spec.minN() {
		return false
	}
	if !st.Spec.ciMet(target) {
		return false
	}
	if st.Spec.QuantTol > 0 && sketch != nil && !st.qStable {
		return false
	}
	return true
}

// stepQuantiles advances the doubling-epoch quantile-stability check:
// each time the sketch's sample count at least doubles since the last
// epoch, the tracked quantiles are compared against the previous
// epoch's — stable when every relative move is within QuantTol.
func (st *Stopper) stepQuantiles(sketch *QSketch) {
	n := sketch.Count()
	if n == 0 {
		return
	}
	if st.prevN == 0 {
		st.prevN = n
		for i, q := range StopQuantiles {
			st.prevQ[i] = sketch.Quantile(q)
		}
		return
	}
	if n < 2*st.prevN {
		return
	}
	stable := true
	var cur [3]float64
	for i, q := range StopQuantiles {
		cur[i] = sketch.Quantile(q)
		if relMove(st.prevQ[i], cur[i]) > st.Spec.QuantTol {
			stable = false
		}
	}
	st.prevN = n
	st.prevQ = cur
	st.qStable = stable
}

// relMove returns the relative movement between two quantile estimates:
// |a-b| scaled by the larger magnitude, 0 when both are (near) zero.
func relMove(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.Inf(1)
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return d / scale
}

// StopperWireSize is the exact encoded size of a Stopper's mutable
// state: the epoch count, three quantiles, and the stability flag word.
const StopperWireSize = 5 * 8

// AppendBinary appends the exact binary image of the stopper's mutable
// state (the Spec travels separately — it is configuration, not state).
func (st *Stopper) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(st.prevN))
	for _, q := range st.prevQ {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(q))
	}
	var flags uint64
	if st.qStable {
		flags = 1
	}
	return binary.LittleEndian.AppendUint64(b, flags)
}

// UnmarshalBinary restores state written by AppendBinary, bit for bit.
func (st *Stopper) UnmarshalBinary(data []byte) error {
	if len(data) != StopperWireSize {
		return fmt.Errorf("stats: stopper wire image is %d bytes, want %d", len(data), StopperWireSize)
	}
	n := int64(binary.LittleEndian.Uint64(data[0:]))
	if n < 0 {
		return fmt.Errorf("stats: stopper wire image has negative epoch count %d", n)
	}
	flags := binary.LittleEndian.Uint64(data[32:])
	if flags > 1 {
		return fmt.Errorf("stats: stopper wire image has unknown flags %#x", flags)
	}
	st.prevN = n
	for i := range st.prevQ {
		st.prevQ[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	st.qStable = flags == 1
	return nil
}
