package optimize

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when f(a) and f(b) have the same sign, so no
// root is guaranteed inside [a, b].
var ErrNoBracket = errors.New("optimize: f(a) and f(b) do not bracket a root")

// ErrMaxIterations is returned when an iterative method exhausts its
// iteration budget before reaching the requested tolerance. The best
// estimate so far is still returned alongside it.
var ErrMaxIterations = errors.New("optimize: maximum iterations exceeded")

// ErrNonFinite is the sentinel wrapped by ConvergenceError when the
// objective returns NaN or Inf at a point the solver cannot route around.
var ErrNonFinite = errors.New("optimize: objective returned a non-finite value")

// ConvergenceError is the structured failure report of a root finder: it
// names the method, carries the best abscissa estimate reached, the
// iterations spent, and wraps the sentinel (ErrMaxIterations,
// ErrNoBracket or ErrNonFinite) that errors.Is can match.
type ConvergenceError struct {
	Method string  // "bisect", "brent", "newton"
	Best   float64 // best root estimate when the method gave up
	Iters  int     // iterations consumed
	Reason error   // sentinel: ErrMaxIterations, ErrNoBracket, ErrNonFinite
}

// Error implements error.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("optimize: %s failed after %d iterations near x=%g: %v",
		e.Method, e.Iters, e.Best, e.Reason)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *ConvergenceError) Unwrap() error { return e.Reason }

// defaultXTol is the abscissa tolerance used when a non-positive tolerance
// is supplied.
const defaultXTol = 1e-12

// evalFinite evaluates f at x; when the value is non-finite it probes a
// few nudged abscissae inside [lo, hi] (the bracketed-bisection fallback
// for integrands that divide by zero or overflow at isolated points) and
// reports ok = false only when every probe is non-finite too.
func evalFinite(f func(float64) float64, x, lo, hi float64) (fx float64, ok bool) {
	fx = f(x)
	if !math.IsNaN(fx) && !math.IsInf(fx, 0) {
		return fx, true
	}
	countNonFiniteRetry()
	span := hi - lo
	for _, frac := range [...]float64{1e-9, -1e-9, 1e-6, -1e-6, 1e-3, -1e-3} {
		xp := x + frac*span
		if xp <= lo || xp >= hi {
			continue
		}
		if v := f(xp); !math.IsNaN(v) && !math.IsInf(v, 0) {
			return v, true
		}
	}
	return fx, false
}

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. The returned x satisfies |interval| <= xtol. Non-finite
// midpoint values are routed around by probing nudged abscissae; when
// that fails the error is a *ConvergenceError wrapping ErrNonFinite.
func Bisect(f func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = defaultXTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return math.NaN(), &ConvergenceError{Method: "bisect", Best: math.NaN(), Reason: ErrNonFinite}
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if b-a <= xtol || m == a || m == b {
			return m, nil
		}
		fm, ok := evalFinite(f, m, a, b)
		if !ok {
			return m, &ConvergenceError{Method: "bisect", Best: m, Iters: i, Reason: ErrNonFinite}
		}
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	best := 0.5 * (a + b)
	return best, &ConvergenceError{Method: "bisect", Best: best, Iters: 200, Reason: ErrMaxIterations}
}

// Brent finds a root of f in [a, b] with Brent's method (inverse quadratic
// interpolation, secant, and bisection safeguards). f(a) and f(b) must
// have opposite signs.
func Brent(f func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = defaultXTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return math.NaN(), &ConvergenceError{Method: "brent", Best: math.NaN(), Reason: ErrNonFinite}
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrNoBracket
	}
	lo, hi := a, b
	c, fc := a, fa
	d := b - a
	e := d
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		const eps = 2.220446049250313e-16
		tol1 := 2*eps*math.Abs(b) + 0.5*xtol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if math.IsNaN(fb) || math.IsInf(fb, 0) {
			// The interpolation step landed on a pole or overflow.
			// Restart with plain bracketed bisection on the surviving
			// sign-change interval [a, c] (the bracket before this
			// step), which routes around isolated non-finite points.
			countBisectFallback()
			blo, bhi := a, c
			if blo > bhi {
				blo, bhi = bhi, blo
			}
			if blo < lo {
				blo = lo
			}
			if bhi > hi {
				bhi = hi
			}
			x, err := Bisect(f, blo, bhi, xtol)
			if err != nil {
				return x, &ConvergenceError{Method: "brent", Best: x, Iters: i, Reason: ErrNonFinite}
			}
			return x, nil
		}
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
	}
	return b, &ConvergenceError{Method: "brent", Best: b, Iters: 200, Reason: ErrMaxIterations}
}

// NewtonSafe finds a root of f in the bracket [a, b] using Newton steps
// from derivative df, falling back to bisection whenever a step leaves the
// bracket or the derivative degenerates. f(a) and f(b) must have opposite
// signs.
func NewtonSafe(f, df func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = defaultXTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return math.NaN(), &ConvergenceError{Method: "newton", Best: math.NaN(), Reason: ErrNonFinite}
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrNoBracket
	}
	x := 0.5 * (a + b)
	for i := 0; i < 200; i++ {
		fx, ok := evalFinite(f, x, a, b)
		if !ok {
			return x, &ConvergenceError{Method: "newton", Best: x, Iters: i, Reason: ErrNonFinite}
		}
		if fx == 0 {
			return x, nil
		}
		if math.Signbit(fx) == math.Signbit(fa) {
			a, fa = x, fx
		} else {
			b = x
		}
		if b-a <= xtol {
			return 0.5 * (a + b), nil
		}
		dfx := df(x)
		xn := x - fx/dfx
		// A degenerate, non-finite, or out-of-bracket Newton step falls
		// back to bisection of the maintained bracket, so divergence to
		// NaN is impossible: the iterate always stays inside [a, b].
		if !(xn > a && xn < b) || dfx == 0 || math.IsNaN(dfx) || math.IsNaN(xn) {
			xn = 0.5 * (a + b)
		}
		if math.Abs(xn-x) <= xtol*(1+math.Abs(x)) {
			return xn, nil
		}
		x = xn
	}
	return x, &ConvergenceError{Method: "newton", Best: x, Iters: 200, Reason: ErrMaxIterations}
}
