package optimize

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when f(a) and f(b) have the same sign, so no
// root is guaranteed inside [a, b].
var ErrNoBracket = errors.New("optimize: f(a) and f(b) do not bracket a root")

// ErrMaxIterations is returned when an iterative method exhausts its
// iteration budget before reaching the requested tolerance. The best
// estimate so far is still returned alongside it.
var ErrMaxIterations = errors.New("optimize: maximum iterations exceeded")

// defaultXTol is the abscissa tolerance used when a non-positive tolerance
// is supplied.
const defaultXTol = 1e-12

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. The returned x satisfies |interval| <= xtol.
func Bisect(f func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = defaultXTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if b-a <= xtol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), ErrMaxIterations
}

// Brent finds a root of f in [a, b] with Brent's method (inverse quadratic
// interpolation, secant, and bisection safeguards). f(a) and f(b) must
// have opposite signs.
func Brent(f func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = defaultXTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrNoBracket
	}
	c, fc := a, fa
	d := b - a
	e := d
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		const eps = 2.220446049250313e-16
		tol1 := 2*eps*math.Abs(b) + 0.5*xtol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
	}
	return b, ErrMaxIterations
}

// NewtonSafe finds a root of f in the bracket [a, b] using Newton steps
// from derivative df, falling back to bisection whenever a step leaves the
// bracket or the derivative degenerates. f(a) and f(b) must have opposite
// signs.
func NewtonSafe(f, df func(float64) float64, a, b, xtol float64) (float64, error) {
	if xtol <= 0 {
		xtol = defaultXTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), ErrNoBracket
	}
	x := 0.5 * (a + b)
	for i := 0; i < 200; i++ {
		fx := f(x)
		if fx == 0 {
			return x, nil
		}
		if math.Signbit(fx) == math.Signbit(fa) {
			a, fa = x, fx
		} else {
			b = x
		}
		if b-a <= xtol {
			return 0.5 * (a + b), nil
		}
		dfx := df(x)
		xn := x - fx/dfx
		if !(xn > a && xn < b) || dfx == 0 || math.IsNaN(xn) {
			xn = 0.5 * (a + b)
		}
		if math.Abs(xn-x) <= xtol*(1+math.Abs(x)) {
			return xn, nil
		}
		x = xn
	}
	return x, ErrMaxIterations
}
