// Package optimize provides the scalar root-finding and one-dimensional
// maximization routines used to locate optimal checkpoint instants and
// optimal task counts in the reservation-checkpointing library.
//
// Root finders: Bisect (guaranteed, slow), Brent (guaranteed bracket with
// superlinear convergence — the default), and NewtonSafe (Newton steps
// safeguarded by a shrinking bracket, used where an analytic derivative is
// cheap).
//
// Maximizers: GoldenSection (derivative-free, guaranteed for unimodal
// objectives — exactly the structure of E(W(X)) on [a, b], which the paper
// proves concave for every studied law), BrentMax (golden section with
// parabolic acceleration), MaxGridRefine (coarse scan followed by local
// refinement, robust when unimodality is uncertain), and ArgmaxInt (the
// floor/ceil comparison around a continuous relaxation optimum used by the
// static strategy of Section 4.2).
package optimize
