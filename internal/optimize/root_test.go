package optimize

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

type rootCase struct {
	name string
	f    func(float64) float64
	df   func(float64) float64
	a, b float64
	want float64
}

func rootCases() []rootCase {
	return []rootCase{
		{
			name: "x^2-2",
			f:    func(x float64) float64 { return x*x - 2 },
			df:   func(x float64) float64 { return 2 * x },
			a:    0, b: 2, want: math.Sqrt2,
		},
		{
			name: "cos(x)-x",
			f:    func(x float64) float64 { return math.Cos(x) - x },
			df:   func(x float64) float64 { return -math.Sin(x) - 1 },
			a:    0, b: 1, want: 0.7390851332151607,
		},
		{
			name: "exp(x)-3",
			f:    func(x float64) float64 { return math.Exp(x) - 3 },
			df:   math.Exp,
			a:    0, b: 2, want: math.Log(3),
		},
		{
			name: "cubic with flat region",
			f:    func(x float64) float64 { return (x - 1) * (x - 1) * (x - 1) },
			df:   func(x float64) float64 { return 3 * (x - 1) * (x - 1) },
			a:    0, b: 3, want: 1,
		},
	}
}

func TestBisect(t *testing.T) {
	for _, c := range rootCases() {
		x, err := Bisect(c.f, c.a, c.b, 1e-12)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(x-c.want) > 1e-9 {
			t.Errorf("%s: got %.15g want %.15g", c.name, x, c.want)
		}
	}
}

func TestBrentRoot(t *testing.T) {
	for _, c := range rootCases() {
		x, err := Brent(c.f, c.a, c.b, 1e-14)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(x-c.want) > 1e-7 {
			t.Errorf("%s: got %.15g want %.15g", c.name, x, c.want)
		}
	}
}

func TestNewtonSafe(t *testing.T) {
	for _, c := range rootCases() {
		x, err := NewtonSafe(c.f, c.df, c.a, c.b, 1e-13)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(x-c.want) > 1e-7 {
			t.Errorf("%s: got %.15g want %.15g", c.name, x, c.want)
		}
	}
}

func TestRootNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 0); !errors.Is(err, ErrNoBracket) {
		t.Errorf("Bisect: want ErrNoBracket, got %v", err)
	}
	if _, err := Brent(f, -1, 1, 0); !errors.Is(err, ErrNoBracket) {
		t.Errorf("Brent: want ErrNoBracket, got %v", err)
	}
	if _, err := NewtonSafe(f, func(x float64) float64 { return 2 * x }, -1, 1, 0); !errors.Is(err, ErrNoBracket) {
		t.Errorf("NewtonSafe: want ErrNoBracket, got %v", err)
	}
}

func TestRootAtEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Brent(f, 0, 1, 0); err != nil || x != 0 {
		t.Errorf("root at left endpoint: %g, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 0); err != nil || x != 0 {
		t.Errorf("root at right endpoint: %g, %v", x, err)
	}
}

func TestBrentRandomLinesProperty(t *testing.T) {
	// f(x) = m(x - r) with random slope and root: Brent must recover r.
	prop := func(um, ur float64) bool {
		m := 0.1 + math.Abs(math.Mod(um, 10))
		r := math.Mod(ur, 100)
		f := func(x float64) float64 { return m * (x - r) }
		x, err := Brent(f, r-13, r+29, 1e-13)
		return err == nil && math.Abs(x-r) <= 1e-8*(1+math.Abs(r))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
