package optimize

import (
	"sync/atomic"

	"reskit/internal/obs"
)

// The package-global counters mirror quad.ObserveEvals: root finding runs
// deep inside strategy constructors, so a process-global hook keeps the
// numerical APIs free of plumbing. Disabled, each hook costs one atomic
// load on an already-exceptional path.
var (
	nonFiniteRetries atomic.Pointer[obs.Counter]
	bisectFallbacks  atomic.Pointer[obs.Counter]
)

// ObserveNonFiniteRetries installs c to count evaluations where the
// objective returned NaN/Inf and the solver probed nudged abscissae to
// route around it. Pass nil to disable.
func ObserveNonFiniteRetries(c *obs.Counter) {
	nonFiniteRetries.Store(c)
}

// ObserveBisectFallbacks installs c to count Brent iterations that landed
// on a non-finite value and restarted with plain bracketed bisection.
// Pass nil to disable.
func ObserveBisectFallbacks(c *obs.Counter) {
	bisectFallbacks.Store(c)
}

func countNonFiniteRetry() {
	if c := nonFiniteRetries.Load(); c != nil {
		c.Inc()
	}
}

func countBisectFallback() {
	if c := bisectFallbacks.Load(); c != nil {
		c.Inc()
	}
}
