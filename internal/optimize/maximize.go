package optimize

import "math"

// invPhi is 1/phi where phi is the golden ratio.
const invPhi = 0.6180339887498948482045868343656381

// MaxResult reports the location and value of a maximum found by one of
// the maximizers.
type MaxResult struct {
	X float64 // argmax estimate
	F float64 // objective value at X
}

// GoldenSection maximizes f on [a, b] by golden-section search. It is
// guaranteed to converge to the maximum of a unimodal objective and to a
// local maximum otherwise. The abscissa is resolved to xtol.
func GoldenSection(f func(float64) float64, a, b, xtol float64) MaxResult {
	if xtol <= 0 {
		xtol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > xtol {
		if f1 < f2 {
			a = x1
			x1, f1 = x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b = x2
			x2, f2 = x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	x := 0.5 * (a + b)
	return MaxResult{X: x, F: f(x)}
}

// BrentMax maximizes f on [a, b] using Brent's method (golden-section with
// successive parabolic interpolation). Converges superlinearly on smooth
// unimodal objectives such as the concave expected-work curves of
// Section 3 of the paper.
func BrentMax(f func(float64) float64, a, b, xtol float64) MaxResult {
	if xtol <= 0 {
		xtol = 1e-10
	}
	if a > b {
		a, b = b, a
	}
	neg := func(x float64) float64 { return -f(x) }
	x, fx := brentMinCore(neg, a, b, xtol)
	return MaxResult{X: x, F: -fx}
}

// brentMinCore is the classical Brent minimizer on [a, b].
func brentMinCore(f func(float64) float64, a, b, tol float64) (float64, float64) {
	const cgold = 0.3819660112501051 // 2 - phi
	var d, e float64
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	for iter := 0; iter < 200; iter++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + 1e-15
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			return x, fx
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// MaxGridRefine maximizes f on [a, b] by evaluating a uniform grid of n
// points (n >= 3) and then running golden-section search on the bracket
// around the best grid point. It does not require unimodality as long as
// the grid is fine enough to land in the basin of the global maximum.
func MaxGridRefine(f func(float64) float64, a, b float64, n int, xtol float64) MaxResult {
	if n < 3 {
		n = 3
	}
	if a > b {
		a, b = b, a
	}
	best, bestX := math.Inf(-1), a
	step := (b - a) / float64(n-1)
	for i := 0; i < n; i++ {
		x := a + float64(i)*step
		if v := f(x); v > best {
			best, bestX = v, x
		}
	}
	lo := math.Max(a, bestX-step)
	hi := math.Min(b, bestX+step)
	r := GoldenSection(f, lo, hi, xtol)
	if r.F < best {
		return MaxResult{X: bestX, F: best}
	}
	return r
}

// ArgmaxInt compares f at the floor and ceiling of y (both clamped to at
// least lo) and returns the better integer. It implements the paper's
// rule "n_opt is floor(y_opt) or ceil(y_opt), whichever gives the larger
// value" (Sections 4.2.1–4.2.3).
func ArgmaxInt(f func(int) float64, y float64, lo int) (int, float64) {
	fl := int(math.Floor(y))
	cl := int(math.Ceil(y))
	if fl < lo {
		fl = lo
	}
	if cl < lo {
		cl = lo
	}
	if fl == cl {
		return fl, f(fl)
	}
	vf, vc := f(fl), f(cl)
	if vc > vf {
		return cl, vc
	}
	return fl, vf
}
