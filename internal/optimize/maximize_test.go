package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionParabola(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	r := GoldenSection(f, 0, 10, 1e-10)
	if math.Abs(r.X-3) > 1e-7 || math.Abs(r.F) > 1e-12 {
		t.Errorf("got X=%.12g F=%.12g", r.X, r.F)
	}
}

func TestBrentMaxParabola(t *testing.T) {
	f := func(x float64) float64 { return 5 - (x-1.7)*(x-1.7) }
	r := BrentMax(f, -10, 10, 1e-12)
	if math.Abs(r.X-1.7) > 1e-7 || math.Abs(r.F-5) > 1e-12 {
		t.Errorf("got X=%.12g F=%.12g", r.X, r.F)
	}
}

func TestBrentMaxSinc(t *testing.T) {
	// Maximum of sin(x)/x on [0.1, 6] is at x->0.1 end? No: sinc is
	// decreasing on (0, pi), so the max on [0.1, 6] is at 0.1.
	f := func(x float64) float64 { return math.Sin(x) / x }
	r := BrentMax(f, 0.1, 6, 1e-12)
	if math.Abs(r.X-0.1) > 1e-4 {
		t.Errorf("boundary max missed: X=%.12g", r.X)
	}
}

func TestBrentMaxLogConcave(t *testing.T) {
	// x * exp(-x) has its max at x=1.
	f := func(x float64) float64 { return x * math.Exp(-x) }
	r := BrentMax(f, 0, 30, 1e-12)
	if math.Abs(r.X-1) > 1e-6 || math.Abs(r.F-math.Exp(-1)) > 1e-12 {
		t.Errorf("got X=%.12g F=%.12g", r.X, r.F)
	}
}

func TestMaxGridRefineMultimodal(t *testing.T) {
	// Two peaks; the global one at x=7 is narrower but taller.
	f := func(x float64) float64 {
		return math.Exp(-(x-2)*(x-2)) + 1.5*math.Exp(-8*(x-7)*(x-7))
	}
	r := MaxGridRefine(f, 0, 10, 101, 1e-10)
	if math.Abs(r.X-7) > 1e-4 {
		t.Errorf("global max missed: X=%.12g F=%.12g", r.X, r.F)
	}
}

func TestMaxReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return -(x - 1) * (x - 1) }
	r := GoldenSection(f, 5, -5, 1e-10)
	if math.Abs(r.X-1) > 1e-6 {
		t.Errorf("reversed interval: X=%.12g", r.X)
	}
	r = BrentMax(f, 5, -5, 1e-10)
	if math.Abs(r.X-1) > 1e-6 {
		t.Errorf("reversed interval BrentMax: X=%.12g", r.X)
	}
}

func TestGoldenVsBrentProperty(t *testing.T) {
	// Random concave quadratics: both maximizers must agree on argmax.
	prop := func(uc, ua float64) bool {
		c := math.Mod(uc, 50)
		amp := 0.1 + math.Abs(math.Mod(ua, 10))
		f := func(x float64) float64 { return -amp * (x - c) * (x - c) }
		g := GoldenSection(f, c-60, c+40, 1e-11)
		b := BrentMax(f, c-60, c+40, 1e-11)
		return math.Abs(g.X-c) < 1e-5 && math.Abs(b.X-c) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArgmaxInt(t *testing.T) {
	f := func(n int) float64 { return -math.Abs(float64(n) - 7.3) }
	n, v := ArgmaxInt(f, 7.4, 1)
	if n != 7 || v != f(7) {
		t.Errorf("got n=%d v=%g", n, v)
	}
	g := func(n int) float64 { return -math.Abs(float64(n) - 7.9) }
	n, _ = ArgmaxInt(g, 7.9, 1)
	if n != 8 {
		t.Errorf("ceil should win: n=%d", n)
	}
	// Integral y: floor == ceil.
	n, _ = ArgmaxInt(f, 5, 1)
	if n != 5 {
		t.Errorf("integral y: n=%d", n)
	}
	// Clamping at lo.
	n, _ = ArgmaxInt(f, 0.2, 1)
	if n != 1 {
		t.Errorf("clamp: n=%d", n)
	}
}
