package optimize

import (
	"errors"
	"math"
	"testing"
)

// poleAt returns x-root with a NaN pole at exactly x == pole.
func poleAt(root, pole float64) func(float64) float64 {
	return func(x float64) float64 {
		if x == pole {
			return math.NaN()
		}
		return x - root
	}
}

func TestBisectRoutesAroundIsolatedNaN(t *testing.T) {
	// The pole sits at the first midpoint; the nudged-abscissa probe must
	// step around it and still converge.
	f := poleAt(0.3, 0.5)
	x, err := Bisect(f, 0, 1, 1e-10)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-0.3) > 1e-9 {
		t.Errorf("root = %g, want 0.3", x)
	}
}

func TestBisectNaNEndpoint(t *testing.T) {
	f := func(x float64) float64 { return math.NaN() }
	_, err := Bisect(f, 0, 1, 1e-10)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not a *ConvergenceError", err)
	}
	if ce.Method != "bisect" {
		t.Errorf("Method = %q, want bisect", ce.Method)
	}
}

func TestBrentFallsBackOnNaNLanding(t *testing.T) {
	// A function whose evaluation NaNs on a thin interior strip: Brent's
	// interpolation step can land there, and must fall back to bracketed
	// bisection instead of returning NaN.
	f := func(x float64) float64 {
		if x > 0.49 && x < 0.51 && x != 0.5 {
			return math.NaN()
		}
		return math.Tanh(4 * (x - 0.7))
	}
	x, err := Brent(f, 0, 1, 1e-10)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(x-0.7) > 1e-8 {
		t.Errorf("root = %g, want 0.7", x)
	}
}

func TestBrentNaNEndpoint(t *testing.T) {
	f := func(x float64) float64 {
		if x == 0 {
			return math.NaN()
		}
		return x - 0.5
	}
	_, err := Brent(f, 0, 1, 1e-10)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestNewtonSafeNonFiniteDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 0.2 }
	df := func(x float64) float64 { return math.NaN() } // degenerate derivative every step
	x, err := NewtonSafe(f, df, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("NewtonSafe: %v", err)
	}
	want := math.Cbrt(0.2)
	if math.Abs(x-want) > 1e-9 {
		t.Errorf("root = %g, want %g", x, want)
	}
}

func TestConvergenceErrorWrapsMaxIterations(t *testing.T) {
	// A discontinuous sign change that bisection cannot tighten below
	// xtol in 200 iterations is impossible; force ErrMaxIterations via
	// NewtonSafe on a pathological flat function instead: f alternates
	// sign on adjacent floats, so the bracket never collapses to xtol=0.
	f := func(x float64) float64 {
		if x < 0.3 {
			return -1
		}
		return 1
	}
	df := func(x float64) float64 { return 0 }
	_, err := NewtonSafe(f, df, 0, 1, 1e-300)
	if err == nil {
		t.Skip("converged despite the pathological tolerance")
	}
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not a *ConvergenceError", err)
	}
	if ce.Iters != 200 {
		t.Errorf("Iters = %d, want 200", ce.Iters)
	}
	if !(ce.Best >= 0 && ce.Best <= 1) {
		t.Errorf("Best = %g outside the bracket", ce.Best)
	}
	if ce.Error() == "" {
		t.Error("empty error message")
	}
}
