// Package solver implements the stationary and Krylov iterative methods
// the paper names as the motivating workload for its workflow scenario
// (Jacobi, Gauss–Seidel, SOR and Conjugate Gradient, Section 2), each
// exposing the one-iteration-at-a-time stepping and state
// snapshot/restore that checkpointing at task boundaries requires: one
// solver iteration is one task of the linear workflow, and a Snapshot is
// exactly "the data footprint to be saved at the end of an iteration".
package solver

import (
	"fmt"
	"math"

	"reskit/internal/sparse"
)

// Solver advances one iteration at a time toward the solution of
// A x = b and can capture/restore its full state.
type Solver interface {
	// Name identifies the method.
	Name() string
	// Step performs one iteration and returns the new residual 2-norm.
	Step() float64
	// Residual returns the current residual 2-norm ||b - A x||.
	Residual() float64
	// Iteration returns the number of completed iterations.
	Iteration() int
	// Solution returns the current iterate (a live reference; copy
	// before mutating).
	Solution() []float64
	// Snapshot deep-copies the solver state — the checkpoint payload.
	Snapshot() Snapshot
	// Restore replaces the solver state with a snapshot taken from the
	// same solver configuration.
	Restore(Snapshot)
}

// Snapshot is an opaque deep copy of a solver's mutable state.
type Snapshot struct {
	Method    string
	Iteration int
	Vectors   [][]float64
	Scalars   []float64
}

// clone deep-copies a vector.
func clone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// SolveToTolerance steps the solver until the residual drops below tol
// or maxIter iterations have run, returning the iterations used and
// whether it converged.
func SolveToTolerance(s Solver, tol float64, maxIter int) (iters int, converged bool) {
	for i := 0; i < maxIter; i++ {
		if s.Step() <= tol {
			return s.Iteration(), true
		}
	}
	return s.Iteration(), false
}

// base carries the pieces every concrete solver shares.
type base struct {
	a    *sparse.CSR
	b    []float64
	x    []float64
	iter int
	tmp  []float64
}

func newBase(a *sparse.CSR, b []float64, name string) base {
	if a == nil {
		panic("solver: nil matrix")
	}
	if len(b) != a.N {
		panic(fmt.Sprintf("solver: %s: dimension mismatch (n=%d, len(b)=%d)", name, a.N, len(b)))
	}
	return base{
		a:   a,
		b:   clone(b),
		x:   make([]float64, a.N),
		tmp: make([]float64, a.N),
	}
}

// Residual computes ||b - A x||_2.
func (s *base) Residual() float64 {
	s.a.MulVec(s.x, s.tmp)
	var sum float64
	for i := range s.tmp {
		d := s.b[i] - s.tmp[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Iteration returns the completed iteration count.
func (s *base) Iteration() int { return s.iter }

// Solution returns the live iterate.
func (s *base) Solution() []float64 { return s.x }
