package solver

import (
	"fmt"
	"math"

	"reskit/internal/sparse"
)

// Jacobi is the Jacobi stationary method: x' = D^{-1} (b - (A - D) x).
type Jacobi struct {
	base
	diag []float64
	next []float64
}

// NewJacobi builds a Jacobi solver for A x = b. A must have a nonzero
// diagonal.
func NewJacobi(a *sparse.CSR, b []float64) *Jacobi {
	s := &Jacobi{base: newBase(a, b, "jacobi")}
	s.diag = a.Diag()
	for i, d := range s.diag {
		if d == 0 {
			panic(fmt.Sprintf("solver: jacobi: zero diagonal at row %d", i))
		}
	}
	s.next = make([]float64, a.N)
	return s
}

// Name implements Solver.
func (s *Jacobi) Name() string { return "jacobi" }

// Step implements Solver.
func (s *Jacobi) Step() float64 {
	a := s.a
	for r := 0; r < a.N; r++ {
		sum := s.b[r]
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.ColIdx[k]
			if c != r {
				sum -= a.Val[k] * s.x[c]
			}
		}
		s.next[r] = sum / s.diag[r]
	}
	s.x, s.next = s.next, s.x
	s.iter++
	return s.Residual()
}

// Snapshot implements Solver.
func (s *Jacobi) Snapshot() Snapshot {
	return Snapshot{Method: "jacobi", Iteration: s.iter, Vectors: [][]float64{clone(s.x)}}
}

// Restore implements Solver.
func (s *Jacobi) Restore(sn Snapshot) {
	mustMethod(sn, "jacobi", 1, 0)
	copy(s.x, sn.Vectors[0])
	s.iter = sn.Iteration
}

// SOR is the successive-over-relaxation method; Omega = 1 yields
// Gauss–Seidel.
type SOR struct {
	base
	diag  []float64
	omega float64
}

// NewSOR builds an SOR solver with relaxation factor omega in (0, 2).
func NewSOR(a *sparse.CSR, b []float64, omega float64) *SOR {
	if !(omega > 0 && omega < 2) || math.IsNaN(omega) {
		panic(fmt.Sprintf("solver: SOR requires omega in (0, 2), got %g", omega))
	}
	s := &SOR{base: newBase(a, b, "sor"), omega: omega}
	s.diag = a.Diag()
	for i, d := range s.diag {
		if d == 0 {
			panic(fmt.Sprintf("solver: sor: zero diagonal at row %d", i))
		}
	}
	return s
}

// NewGaussSeidel builds the Gauss–Seidel solver (SOR with omega = 1).
func NewGaussSeidel(a *sparse.CSR, b []float64) *SOR {
	s := NewSOR(a, b, 1)
	return s
}

// Name implements Solver.
func (s *SOR) Name() string {
	if s.omega == 1 {
		return "gauss-seidel"
	}
	return fmt.Sprintf("sor(omega=%g)", s.omega)
}

// Step implements Solver.
func (s *SOR) Step() float64 {
	a := s.a
	for r := 0; r < a.N; r++ {
		sum := s.b[r]
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.ColIdx[k]
			if c != r {
				sum -= a.Val[k] * s.x[c]
			}
		}
		gs := sum / s.diag[r]
		s.x[r] += s.omega * (gs - s.x[r])
	}
	s.iter++
	return s.Residual()
}

// Snapshot implements Solver.
func (s *SOR) Snapshot() Snapshot {
	return Snapshot{Method: "sor", Iteration: s.iter, Vectors: [][]float64{clone(s.x)}, Scalars: []float64{s.omega}}
}

// Restore implements Solver.
func (s *SOR) Restore(sn Snapshot) {
	mustMethod(sn, "sor", 1, 1)
	copy(s.x, sn.Vectors[0])
	s.iter = sn.Iteration
}

// mustMethod validates a snapshot's shape before restoring.
func mustMethod(sn Snapshot, method string, nVec, nScal int) {
	if sn.Method != method {
		panic(fmt.Sprintf("solver: cannot restore %q snapshot into %s solver", sn.Method, method))
	}
	if len(sn.Vectors) != nVec || len(sn.Scalars) != nScal {
		panic(fmt.Sprintf("solver: malformed %s snapshot (%d vectors, %d scalars)", method, len(sn.Vectors), len(sn.Scalars)))
	}
}
