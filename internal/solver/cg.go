package solver

import (
	"math"

	"reskit/internal/sparse"
)

// CG is the Conjugate Gradient method for symmetric positive-definite
// systems — the archetype of the Krylov solvers (GMRES, BiCGSTAB, GCR)
// the paper cites as iterative workloads.
type CG struct {
	base
	r   []float64 // residual vector
	p   []float64 // search direction
	ap  []float64 // A p scratch
	rho float64   // r . r
}

// NewCG builds a Conjugate Gradient solver for A x = b (A must be
// symmetric positive definite for guaranteed convergence).
func NewCG(a *sparse.CSR, b []float64) *CG {
	s := &CG{base: newBase(a, b, "cg")}
	s.r = clone(s.b) // x0 = 0 so r0 = b
	s.p = clone(s.r)
	s.ap = make([]float64, a.N)
	s.rho = sparse.Dot(s.r, s.r)
	return s
}

// Name implements Solver.
func (s *CG) Name() string { return "cg" }

// Step implements Solver.
func (s *CG) Step() float64 {
	if s.rho == 0 {
		// Already converged exactly.
		s.iter++
		return 0
	}
	s.a.MulVec(s.p, s.ap)
	pap := sparse.Dot(s.p, s.ap)
	if pap == 0 {
		s.iter++
		return math.Sqrt(s.rho)
	}
	alpha := s.rho / pap
	for i := range s.x {
		s.x[i] += alpha * s.p[i]
		s.r[i] -= alpha * s.ap[i]
	}
	rhoNew := sparse.Dot(s.r, s.r)
	beta := rhoNew / s.rho
	for i := range s.p {
		s.p[i] = s.r[i] + beta*s.p[i]
	}
	s.rho = rhoNew
	s.iter++
	return math.Sqrt(rhoNew)
}

// Residual implements Solver using the recursively updated residual,
// which CG maintains exactly in exact arithmetic.
func (s *CG) Residual() float64 { return math.Sqrt(s.rho) }

// Snapshot implements Solver: CG state is (x, r, p, rho).
func (s *CG) Snapshot() Snapshot {
	return Snapshot{
		Method:    "cg",
		Iteration: s.iter,
		Vectors:   [][]float64{clone(s.x), clone(s.r), clone(s.p)},
		Scalars:   []float64{s.rho},
	}
}

// Restore implements Solver.
func (s *CG) Restore(sn Snapshot) {
	mustMethod(sn, "cg", 3, 1)
	copy(s.x, sn.Vectors[0])
	copy(s.r, sn.Vectors[1])
	copy(s.p, sn.Vectors[2])
	s.rho = sn.Scalars[0]
	s.iter = sn.Iteration
}
