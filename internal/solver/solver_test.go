package solver

import (
	"math"
	"testing"

	"reskit/internal/rng"
	"reskit/internal/sparse"
)

// testSystem returns a Poisson2D system with a random smooth RHS and its
// reference solution computed by heavily converged CG.
func testSystem(k int, seed uint64) (*sparse.CSR, []float64, []float64) {
	a := sparse.Poisson2D(k)
	r := rng.New(seed)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = r.Uniform(0.5, 1.5)
	}
	ref := NewCG(a, b)
	SolveToTolerance(ref, 1e-13, 10000)
	x := make([]float64, a.N)
	copy(x, ref.Solution())
	return a, b, x
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestAllSolversConverge(t *testing.T) {
	a, b, ref := testSystem(8, 1)
	solvers := []Solver{
		NewJacobi(a, b),
		NewGaussSeidel(a, b),
		NewSOR(a, b, 1.5),
		NewCG(a, b),
	}
	for _, s := range solvers {
		iters, ok := SolveToTolerance(s, 1e-10, 20000)
		if !ok {
			t.Fatalf("%s did not converge in %d iterations (residual %g)", s.Name(), iters, s.Residual())
		}
		if d := maxAbsDiff(s.Solution(), ref); d > 1e-7 {
			t.Errorf("%s: solution off by %g", s.Name(), d)
		}
	}
}

func TestConvergenceSpeedOrdering(t *testing.T) {
	// CG < SOR(1.5) < Gauss-Seidel < Jacobi in iteration count on the
	// Poisson problem.
	a, b, _ := testSystem(10, 2)
	iter := func(s Solver) int {
		n, ok := SolveToTolerance(s, 1e-8, 50000)
		if !ok {
			t.Fatalf("%s did not converge", s.Name())
		}
		return n
	}
	cg := iter(NewCG(a, b))
	sor := iter(NewSOR(a, b, 1.5))
	gs := iter(NewGaussSeidel(a, b))
	jac := iter(NewJacobi(a, b))
	if !(cg < sor && sor < gs && gs < jac) {
		t.Errorf("iteration ordering violated: cg=%d sor=%d gs=%d jacobi=%d", cg, sor, gs, jac)
	}
	// Classical theory: Gauss-Seidel converges about twice as fast as
	// Jacobi on this problem.
	ratio := float64(jac) / float64(gs)
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("jacobi/gs iteration ratio %g, expected ~2", ratio)
	}
}

func TestSnapshotRestoreExactContinuation(t *testing.T) {
	a, b, _ := testSystem(6, 3)
	builders := []func() Solver{
		func() Solver { return NewJacobi(a, b) },
		func() Solver { return NewGaussSeidel(a, b) },
		func() Solver { return NewSOR(a, b, 1.3) },
		func() Solver { return NewCG(a, b) },
	}
	for _, build := range builders {
		ref := build()
		for i := 0; i < 20; i++ {
			ref.Step()
		}
		refRes := ref.Residual()

		// Run 10 steps, snapshot, run 10 more; then restore and redo.
		s := build()
		for i := 0; i < 10; i++ {
			s.Step()
		}
		snap := s.Snapshot()
		for i := 0; i < 10; i++ {
			s.Step()
		}
		first := s.Residual()
		if math.Abs(first-refRes) > 1e-14*(1+refRes) {
			t.Errorf("%s: interrupted run diverged from reference", s.Name())
		}
		s.Restore(snap)
		if s.Iteration() != 10 {
			t.Errorf("%s: restored iteration %d", s.Name(), s.Iteration())
		}
		for i := 0; i < 10; i++ {
			s.Step()
		}
		second := s.Residual()
		if first != second {
			t.Errorf("%s: restore+replay differs: %g vs %g", s.Name(), first, second)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	a, b, _ := testSystem(4, 4)
	s := NewCG(a, b)
	s.Step()
	snap := s.Snapshot()
	before := snap.Vectors[0][0]
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if snap.Vectors[0][0] != before {
		t.Errorf("snapshot mutated by later steps")
	}
}

func TestRestoreWrongMethodPanics(t *testing.T) {
	a, b, _ := testSystem(4, 5)
	j := NewJacobi(a, b)
	c := NewCG(a, b)
	defer func() {
		if recover() == nil {
			t.Errorf("cross-method restore must panic")
		}
	}()
	j.Restore(c.Snapshot())
}

func TestGaussSeidelIsSOROmega1(t *testing.T) {
	a, b, _ := testSystem(5, 6)
	gs := NewGaussSeidel(a, b)
	sor := NewSOR(a, b, 1)
	for i := 0; i < 30; i++ {
		rg := gs.Step()
		rs := sor.Step()
		if rg != rs {
			t.Fatalf("step %d: gs %g vs sor(1) %g", i, rg, rs)
		}
	}
	if gs.Name() != "gauss-seidel" {
		t.Errorf("name %q", gs.Name())
	}
}

func TestConstructorValidation(t *testing.T) {
	a := sparse.Poisson1D(3)
	singular := sparse.NewFromTriplets(2, []int{0, 1}, []int{1, 0}, []float64{1, 1})
	cases := []func(){
		func() { NewJacobi(a, []float64{1}) },
		func() { NewJacobi(nil, []float64{1}) },
		func() { NewSOR(a, []float64{1, 2, 3}, 2.5) },
		func() { NewSOR(a, []float64{1, 2, 3}, 0) },
		func() { NewJacobi(singular, []float64{1, 1}) }, // zero diagonal
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCGResidualMatchesTrueResidual(t *testing.T) {
	a, b, _ := testSystem(6, 7)
	s := NewCG(a, b)
	for i := 0; i < 15; i++ {
		s.Step()
	}
	// Recursive residual vs recomputed ||b - Ax||.
	tmp := make([]float64, a.N)
	a.MulVec(s.Solution(), tmp)
	var sum float64
	for i := range tmp {
		d := b[i] - tmp[i]
		sum += d * d
	}
	if math.Abs(s.Residual()-math.Sqrt(sum)) > 1e-8*(1+s.Residual()) {
		t.Errorf("recursive residual %g vs true %g", s.Residual(), math.Sqrt(sum))
	}
}

// convectionDiffusion returns a nonsymmetric matrix: the 1-D
// convection-diffusion stencil [-1-c, 2, -1+c].
func convectionDiffusion(n int, c float64) *sparse.CSR {
	var rows, cols []int
	var vals []float64
	for i := 0; i < n; i++ {
		rows = append(rows, i)
		cols = append(cols, i)
		vals = append(vals, 2)
		if i > 0 {
			rows = append(rows, i)
			cols = append(cols, i-1)
			vals = append(vals, -1-c)
		}
		if i < n-1 {
			rows = append(rows, i)
			cols = append(cols, i+1)
			vals = append(vals, -1+c)
		}
	}
	return sparse.NewFromTriplets(n, rows, cols, vals)
}

func TestBiCGSTABSymmetricSystem(t *testing.T) {
	a, b, ref := testSystem(8, 8)
	s := NewBiCGSTAB(a, b)
	iters, ok := SolveToTolerance(s, 1e-10, 5000)
	if !ok {
		t.Fatalf("did not converge in %d iterations (res %g)", iters, s.Residual())
	}
	if d := maxAbsDiff(s.Solution(), ref); d > 1e-7 {
		t.Errorf("solution off by %g", d)
	}
}

func TestBiCGSTABNonsymmetricSystem(t *testing.T) {
	// CG is not applicable here; BiCGSTAB must still converge. Verify
	// against the true residual.
	a := convectionDiffusion(60, 0.4)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	s := NewBiCGSTAB(a, b)
	if _, ok := SolveToTolerance(s, 1e-9, 10000); !ok {
		t.Fatalf("nonsymmetric system did not converge (res %g)", s.Residual())
	}
	// True residual check. BiCGSTAB's recursively updated residual is
	// known to drift a few orders of magnitude from the true residual in
	// finite precision, so the bound here is looser than the stopping
	// tolerance.
	tmp := make([]float64, a.N)
	a.MulVec(s.Solution(), tmp)
	var sum float64
	for i := range tmp {
		d := b[i] - tmp[i]
		sum += d * d
	}
	if math.Sqrt(sum) > 1e-4 {
		t.Errorf("true residual %g", math.Sqrt(sum))
	}
}

func TestBiCGSTABSnapshotRestore(t *testing.T) {
	a := convectionDiffusion(40, 0.3)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%5) + 1
	}
	s := NewBiCGSTAB(a, b)
	for i := 0; i < 8; i++ {
		s.Step()
	}
	snap := s.Snapshot()
	for i := 0; i < 8; i++ {
		s.Step()
	}
	first := s.Residual()
	s.Restore(snap)
	if s.Iteration() != 8 {
		t.Errorf("restored iteration %d", s.Iteration())
	}
	for i := 0; i < 8; i++ {
		s.Step()
	}
	if second := s.Residual(); first != second {
		t.Errorf("restore+replay differs: %g vs %g", first, second)
	}
}

func TestBiCGSTABFasterThanJacobiOnNonsymmetric(t *testing.T) {
	a := convectionDiffusion(50, 0.3)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	bi := NewBiCGSTAB(a, b)
	biIters, ok := SolveToTolerance(bi, 1e-8, 20000)
	if !ok {
		t.Fatalf("bicgstab did not converge")
	}
	ja := NewJacobi(a, b)
	jaIters, ok := SolveToTolerance(ja, 1e-8, 50000)
	if !ok {
		t.Fatalf("jacobi did not converge")
	}
	if biIters >= jaIters {
		t.Errorf("bicgstab (%d) should beat jacobi (%d)", biIters, jaIters)
	}
}
