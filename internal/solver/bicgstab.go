package solver

import (
	"math"

	"reskit/internal/sparse"
)

// BiCGSTAB is the stabilized biconjugate gradient method of van der
// Vorst — one of the nonstationary Krylov methods the paper names
// explicitly among its motivating iterative applications. Unlike CG it
// handles nonsymmetric systems.
type BiCGSTAB struct {
	base
	r      []float64 // residual
	rHat   []float64 // shadow residual (fixed)
	p, v   []float64
	s, t   []float64
	rho    float64
	alpha  float64
	omega  float64
	resNrm float64
}

// NewBiCGSTAB builds a BiCGSTAB solver for A x = b.
func NewBiCGSTAB(a *sparse.CSR, b []float64) *BiCGSTAB {
	s := &BiCGSTAB{base: newBase(a, b, "bicgstab")}
	s.r = clone(s.b) // x0 = 0
	s.rHat = clone(s.r)
	s.p = make([]float64, a.N)
	s.v = make([]float64, a.N)
	s.s = make([]float64, a.N)
	s.t = make([]float64, a.N)
	s.rho, s.alpha, s.omega = 1, 1, 1
	s.resNrm = sparse.Norm2(s.r)
	return s
}

// Name implements Solver.
func (s *BiCGSTAB) Name() string { return "bicgstab" }

// Step implements Solver (one full BiCGSTAB iteration).
func (s *BiCGSTAB) Step() float64 {
	if s.resNrm == 0 {
		s.iter++
		return 0
	}
	rhoNew := sparse.Dot(s.rHat, s.r)
	if rhoNew == 0 {
		// Breakdown: restart with the current residual as shadow.
		copy(s.rHat, s.r)
		rhoNew = sparse.Dot(s.rHat, s.r)
		if rhoNew == 0 {
			s.iter++
			return s.resNrm
		}
	}
	if s.iter == 0 {
		copy(s.p, s.r)
	} else {
		beta := (rhoNew / s.rho) * (s.alpha / s.omega)
		for i := range s.p {
			s.p[i] = s.r[i] + beta*(s.p[i]-s.omega*s.v[i])
		}
	}
	s.rho = rhoNew
	s.a.MulVec(s.p, s.v)
	den := sparse.Dot(s.rHat, s.v)
	if den == 0 {
		s.iter++
		return s.resNrm
	}
	s.alpha = s.rho / den
	for i := range s.s {
		s.s[i] = s.r[i] - s.alpha*s.v[i]
	}
	if n := sparse.Norm2(s.s); n < 1e-300 {
		// Early convergence at the half step.
		for i := range s.x {
			s.x[i] += s.alpha * s.p[i]
		}
		copy(s.r, s.s)
		s.resNrm = n
		s.iter++
		return n
	}
	s.a.MulVec(s.s, s.t)
	tt := sparse.Dot(s.t, s.t)
	if tt == 0 {
		s.iter++
		return s.resNrm
	}
	s.omega = sparse.Dot(s.t, s.s) / tt
	for i := range s.x {
		s.x[i] += s.alpha*s.p[i] + s.omega*s.s[i]
	}
	for i := range s.r {
		s.r[i] = s.s[i] - s.omega*s.t[i]
	}
	s.resNrm = sparse.Norm2(s.r)
	s.iter++
	return s.resNrm
}

// Residual implements Solver using the recursively updated residual.
func (s *BiCGSTAB) Residual() float64 {
	if math.IsNaN(s.resNrm) {
		return math.Inf(1)
	}
	return s.resNrm
}

// Snapshot implements Solver: state is (x, r, rHat, p, v) plus the
// scalars (rho, alpha, omega, resNrm) and the iteration count.
func (s *BiCGSTAB) Snapshot() Snapshot {
	return Snapshot{
		Method:    "bicgstab",
		Iteration: s.iter,
		Vectors:   [][]float64{clone(s.x), clone(s.r), clone(s.rHat), clone(s.p), clone(s.v)},
		Scalars:   []float64{s.rho, s.alpha, s.omega, s.resNrm},
	}
}

// Restore implements Solver.
func (s *BiCGSTAB) Restore(sn Snapshot) {
	mustMethod(sn, "bicgstab", 5, 4)
	copy(s.x, sn.Vectors[0])
	copy(s.r, sn.Vectors[1])
	copy(s.rHat, sn.Vectors[2])
	copy(s.p, sn.Vectors[3])
	copy(s.v, sn.Vectors[4])
	s.rho, s.alpha, s.omega, s.resNrm = sn.Scalars[0], sn.Scalars[1], sn.Scalars[2], sn.Scalars[3]
	s.iter = sn.Iteration
}
