package httpd

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestListenServesAndShutsDown(t *testing.T) {
	s, err := Listen("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr().String() + "/"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

func TestServerHasBoundaryTimeouts(t *testing.T) {
	srv := NewServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: Slowloris holds connections forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
	if srv.WriteTimeout != 0 {
		t.Error("WriteTimeout must stay unset: pprof profile streams outlive any fixed deadline")
	}
}

// TestSlowlorisConnectionIsDropped opens a raw connection, trickles an
// incomplete header, and requires the server to hang up once the header
// deadline passes — the regression this package exists to prevent. The
// per-test override keeps the test fast; the production value only
// changes the scale.
func TestSlowlorisConnectionIsDropped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(http.NotFoundHandler())
	srv.ReadHeaderTimeout = 150 * time.Millisecond
	srv.ReadTimeout = 150 * time.Millisecond
	done := make(chan struct{})
	go func() { srv.Serve(ln); close(done) }() //nolint:errcheck
	defer func() { srv.Close(); <-done }()     //nolint:errcheck

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\r\nHost: x\r\nX-Slow:"); err != nil {
		t.Fatal(err)
	}
	// Never finish the header. The server must close the connection;
	// without ReadHeaderTimeout this read blocks until the test times
	// out the hard way.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		// A response would also be acceptable (400); what is not
		// acceptable is an open connection past the deadline, which
		// surfaces as the deadline error below.
		return
	} else if strings.Contains(err.Error(), "i/o timeout") {
		t.Fatal("connection still open 5s after an incomplete header: Slowloris not mitigated")
	}
}

func TestShutdownDeadlineForcesClose(t *testing.T) {
	block := make(chan struct{})
	s, err := Listen("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer close(block)
	go http.Get("http://" + s.Addr().String() + "/") //nolint:errcheck
	time.Sleep(100 * time.Millisecond)               // let the request pin a handler
	start := time.Now()
	if err := s.Shutdown(300 * time.Millisecond); err != nil {
		t.Fatalf("bounded shutdown returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown took %v despite its deadline", elapsed)
	}
}
