package httpd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Client-side boundary timeouts. The server half of this package exists
// because a zero-value http.Server never times anything out; the client
// half exists for the mirror-image gap: a zero-value http.Client dials
// forever and waits on a dead peer forever, so a worker whose
// coordinator vanished would hang instead of erroring, retrying, or
// exiting. Every in-repo HTTP client goes through NewClient so the
// bounds are set once.
const (
	// ConnectTimeout bounds the TCP dial: a peer that is gone fails fast
	// instead of pinning the caller in SYN retransmits.
	ConnectTimeout = 5 * time.Second
	// RequestTimeout bounds one whole request-response exchange,
	// including reading the body.
	RequestTimeout = 30 * time.Second
	// ClientIdleTimeout reaps idle keep-alive connections.
	ClientIdleTimeout = 90 * time.Second
	// maxResponseBytes caps a response body read by PostJSON; the
	// protocol replies in this repository are small, and an unbounded
	// read would let a broken peer exhaust the client's memory.
	maxResponseBytes = 16 << 20
)

// Default retry schedule of NewClient: retries+1 total attempts with a
// linearly growing, context-aware pause between them.
const (
	defaultClientRetries = 3
	defaultClientBackoff = 100 * time.Millisecond
)

// Client is the hardened HTTP client shared by every in-repo peer-to-
// peer path (worker -> coordinator above all): connect and request
// timeouts so a dead peer costs bounded time, and bounded retries with
// backoff so a transient refusal or a 5xx does not fail the caller on
// the first try.
//
// Retries re-send the request body, so Client must only be pointed at
// idempotent endpoints — which every endpoint in this repository is:
// the distributed-run protocol deduplicates results by job index, and
// the advisor's answers are pure functions of the query.
type Client struct {
	hc      *http.Client
	retries int
	backoff time.Duration
}

// NewClient returns a client with the boundary timeouts and the default
// retry schedule.
func NewClient() *Client {
	dialer := &net.Dialer{Timeout: ConnectTimeout}
	return &Client{
		hc: &http.Client{
			Timeout: RequestTimeout,
			Transport: &http.Transport{
				DialContext:         dialer.DialContext,
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     ClientIdleTimeout,
			},
		},
		retries: defaultClientRetries,
		backoff: defaultClientBackoff,
	}
}

// SetRetry overrides the retry schedule: retries extra attempts after
// the first (0 disables retrying), backoff the base pause between them.
func (c *Client) SetRetry(retries int, backoff time.Duration) {
	if retries < 0 {
		retries = 0
	}
	c.retries = retries
	c.backoff = backoff
}

// SetTransport wraps or replaces the underlying transport — the seam
// the chaos network plane installs itself through. The client-level
// request timeout still applies.
func (c *Client) SetTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// Transport returns the current underlying transport, so a wrapper can
// chain to it.
func (c *Client) Transport() http.RoundTripper { return c.hc.Transport }

// StatusError reports a non-2xx response that is not retryable (4xx):
// the peer understood the request and rejected it, so re-sending the
// same bytes cannot help. Message carries the peer's decoded error
// body, when it sent one.
type StatusError struct {
	Status  int
	Message string
}

// Error formats the rejection.
func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("httpd: peer rejected request: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
	}
	return fmt.Sprintf("httpd: peer rejected request: %d %s", e.Status, http.StatusText(e.Status))
}

// PostJSON posts in as a JSON body to url and decodes the JSON response
// into out (out may be nil to discard the body). Transport errors, 5xx
// responses and 429s are retried up to the client's budget with a
// growing context-aware pause; 4xx responses return a *StatusError
// immediately. The request body is marshalled once and replayed on each
// attempt, so the peer sees identical bytes every time.
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("httpd: encoding request for %s: %w", url, err)
	}
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, last)
			}
			return err
		}
		retryable, err := c.postOnce(ctx, url, body, out)
		if err == nil {
			return nil
		}
		last = err
		if !retryable || attempt >= c.retries {
			return err
		}
		if !sleepCtx(ctx, time.Duration(attempt+1)*c.backoff) {
			return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), last)
		}
	}
}

// postOnce performs one attempt. retryable marks transport-level and
// server-side (5xx/429) failures; decode errors and 4xx are final.
func (c *Client) postOnce(ctx context.Context, url string, body []byte, out any) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("httpd: building request for %s: %w", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		// The context's own cancellation is final; every other transport
		// error (refused, reset, timeout) is worth another attempt.
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return true, fmt.Errorf("httpd: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return true, fmt.Errorf("httpd: reading %s response: %w", url, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		serr := &StatusError{Status: resp.StatusCode, Message: decodeErrorBody(data)}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return true, fmt.Errorf("httpd: POST %s: %w", url, serr)
		}
		return false, serr
	}
	if out == nil {
		return false, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return false, fmt.Errorf("httpd: decoding %s response: %w", url, err)
	}
	return false, nil
}

// decodeErrorBody extracts the conventional {"error": ...} message from
// an error response, falling back to a bounded raw prefix.
func decodeErrorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	const max = 200
	if len(data) > max {
		data = data[:max]
	}
	return string(bytes.TrimSpace(data))
}

// sleepCtx pauses for d unless the context dies first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
