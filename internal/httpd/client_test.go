package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoPayload is the round-trip body of the client tests.
type echoPayload struct {
	N   int    `json:"n"`
	Msg string `json:"msg"`
}

// startServer serves h on a loopback port and returns the base URL.
func startServer(t *testing.T, h http.Handler) string {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return "http://" + srv.Addr().String()
}

func TestClientPostJSONRoundTrip(t *testing.T) {
	url := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in echoPayload
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		in.N++
		json.NewEncoder(w).Encode(in) //nolint:errcheck
	}))
	c := NewClient()
	var out echoPayload
	if err := c.PostJSON(context.Background(), url+"/echo", echoPayload{N: 41, Msg: "hi"}, &out); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if out.N != 42 || out.Msg != "hi" {
		t.Fatalf("round trip returned %+v", out)
	}
}

// TestClientRetries5xx: the identical body is re-sent until the server
// recovers, within the retry budget.
func TestClientRetries5xx(t *testing.T) {
	var calls atomic.Int64
	var lastBody atomic.Value
	url := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in echoPayload
		json.NewDecoder(r.Body).Decode(&in) //nolint:errcheck
		lastBody.Store(in)
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, 503)
			return
		}
		fmt.Fprint(w, `{"n":1}`)
	}))
	c := NewClient()
	c.SetRetry(3, time.Millisecond)
	var out echoPayload
	if err := c.PostJSON(context.Background(), url, echoPayload{N: 7, Msg: "same"}, &out); err != nil {
		t.Fatalf("PostJSON after transient 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if got := lastBody.Load().(echoPayload); got != (echoPayload{N: 7, Msg: "same"}) {
		t.Fatalf("retried attempt carried a different body: %+v", got)
	}
}

// TestClient4xxIsFinal: a rejection is returned immediately as a
// *StatusError carrying the peer's decoded error message.
func TestClient4xxIsFinal(t *testing.T) {
	var calls atomic.Int64
	url := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"wrong run"}`, 409)
	}))
	c := NewClient()
	c.SetRetry(5, time.Millisecond)
	err := c.PostJSON(context.Background(), url, echoPayload{}, nil)
	var serr *StatusError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if serr.Status != 409 || serr.Message != "wrong run" {
		t.Fatalf("StatusError = %+v", serr)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 4xx, want 1", got)
	}
}

// TestClientRetryBudgetExhausted: a persistent 5xx eventually surfaces
// as an error wrapping the StatusError, after retries+1 attempts.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	url := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "down", 500)
	}))
	c := NewClient()
	c.SetRetry(2, time.Millisecond)
	err := c.PostJSON(context.Background(), url, echoPayload{}, nil)
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != 500 {
		t.Fatalf("err = %v, want wrapped 500 StatusError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestClientTransportErrorRetried: connection refused is retryable —
// here the peer never exists, so the budget drains and the dial error
// surfaces.
func TestClientTransportErrorRetried(t *testing.T) {
	c := NewClient()
	c.SetRetry(1, time.Millisecond)
	start := time.Now()
	err := c.PostJSON(context.Background(), "http://127.0.0.1:1/never", echoPayload{}, nil)
	if err == nil {
		t.Fatal("POST to a dead port succeeded")
	}
	if !strings.Contains(err.Error(), "httpd: POST") {
		t.Fatalf("transport error lost its context: %v", err)
	}
	// One backoff pause between the two attempts, nothing pathological.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("2 attempts against a dead port took %v", elapsed)
	}
}

// TestClientContextCancelStopsRetrying: cancellation mid-backoff wins
// over the retry budget and reports the last attempt's error.
func TestClientContextCancelStopsRetrying(t *testing.T) {
	url := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", 500)
	}))
	ctx, cancel := context.WithCancel(context.Background())
	c := NewClient()
	c.SetRetry(100, time.Hour) // without cancellation this would sleep forever
	done := make(chan error, 1)
	go func() { done <- c.PostJSON(ctx, url, echoPayload{}, nil) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "last attempt") {
			t.Fatalf("cancellation dropped the last attempt's error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestClientBadResponseBodyIsFinal: a 2xx with a non-JSON body is a
// decode error, not a retry.
func TestClientBadResponseBodyIsFinal(t *testing.T) {
	var calls atomic.Int64
	url := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, "not json")
	}))
	c := NewClient()
	c.SetRetry(5, time.Millisecond)
	var out echoPayload
	err := c.PostJSON(context.Background(), url, echoPayload{}, &out)
	if err == nil || !strings.Contains(err.Error(), "decoding") {
		t.Fatalf("err = %v, want decode error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a decode error, want 1", got)
	}
}

// TestClientDecodeErrorBody: the {"error": ...} convention is decoded,
// anything else falls back to a bounded raw prefix.
func TestClientDecodeErrorBody(t *testing.T) {
	if got := decodeErrorBody([]byte(`{"error":"boom"}`)); got != "boom" {
		t.Errorf("decodeErrorBody(json) = %q", got)
	}
	if got := decodeErrorBody([]byte("  plain text\n")); got != "plain text" {
		t.Errorf("decodeErrorBody(text) = %q", got)
	}
	long := strings.Repeat("x", 500)
	if got := decodeErrorBody([]byte(long)); len(got) > 200 {
		t.Errorf("decodeErrorBody(long) kept %d bytes, want <= 200", len(got))
	}
}

// TestShutdownIdempotent: the second Shutdown returns the first's
// verdict instead of hanging on the drained error channel.
func TestShutdownIdempotent(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 2)
	go func() { done <- srv.Shutdown(time.Second) }()
	go func() { done <- srv.Shutdown(time.Second) }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Shutdown #%d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("second Shutdown hung")
		}
	}
}
