// Package httpd is the one place HTTP servers are constructed in this
// repository. Both the simulate CLI's debug endpoint and the advisor
// service bind sockets that may face hostile or simply broken clients,
// and the stdlib's zero-value http.Server never times anything out: a
// single client that sends its request headers one byte per minute
// (Slowloris) pins a connection — and its goroutine — forever. The
// constructor here sets the boundary timeouts once, so every listener
// in the repository inherits the same hardening.
package httpd

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// Boundary timeouts shared by every server in the repository.
const (
	// ReadHeaderTimeout bounds the Slowloris window: a client gets this
	// long to finish its request headers or the connection dies.
	ReadHeaderTimeout = 10 * time.Second
	// ReadTimeout bounds the whole request read, body included.
	ReadTimeout = time.Minute
	// IdleTimeout reaps keep-alive connections between requests.
	IdleTimeout = 2 * time.Minute
	// MaxHeaderBytes caps header memory per connection.
	MaxHeaderBytes = 1 << 20
)

// NewServer returns an http.Server for the handler with the boundary
// timeouts set. WriteTimeout is deliberately left unset: the debug
// endpoint streams CPU profiles and execution traces whose duration the
// *client* chooses (/debug/pprof/profile?seconds=30), and a write
// deadline would cut them off mid-stream. Handlers that produce
// unbounded output must bound it themselves.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
		MaxHeaderBytes:    MaxHeaderBytes,
	}
}

// Server couples a hardened http.Server with its listener and a bounded
// graceful shutdown.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error

	shutOnce sync.Once
	shutErr  error
}

// Listen binds addr (":0" works, see Addr) and serves h on it with the
// hardened server. Serving starts immediately on a background
// goroutine; its terminal error is available on Err.
func Listen(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: NewServer(h), ln: ln, errc: make(chan error, 1)}
	go func() { s.errc <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the actual bound address — the usable one when the
// caller asked for ":0".
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Err yields the Serve goroutine's terminal error (http.ErrServerClosed
// after a Shutdown or Close).
func (s *Server) Err() <-chan error { return s.errc }

// Shutdown drains in-flight requests for at most timeout, then closes
// whatever is still open — the deadline is a promise to the caller, not
// a suggestion to the clients. The http.ErrServerClosed sentinel is
// filtered out: an orderly stop is not an error. Shutdown is
// idempotent: later calls return the first call's verdict instead of
// blocking on the already-drained serve goroutine.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.shutOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// The drain deadline expired (or worse): force-close the rest.
			err = errors.Join(err, s.srv.Close())
		}
		if serveErr := <-s.errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
			err = serveErr
		}
		if errors.Is(err, context.DeadlineExceeded) {
			// Closed forcibly but closed: the caller's deadline held.
			err = nil
		}
		s.shutErr = err
	})
	return s.shutErr
}
