package sparse

import (
	"math"
	"testing"
)

func TestNewFromTriplets(t *testing.T) {
	// [[2, -1], [-1, 2]] with a duplicate entry summed.
	m := NewFromTriplets(2,
		[]int{0, 0, 1, 1, 0},
		[]int{0, 1, 0, 1, 0},
		[]float64{1, -1, -1, 2, 1})
	if m.NNZ() != 4 {
		t.Fatalf("NNZ %d", m.NNZ())
	}
	if m.At(0, 0) != 2 || m.At(0, 1) != -1 || m.At(1, 0) != -1 || m.At(1, 1) != 2 {
		t.Errorf("entries wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := Poisson1D(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(x, y)
	// [2 -1 0 0; -1 2 -1 0; 0 -1 2 -1; 0 0 -1 2] * [1 2 3 4]
	want := []float64{0, 0, 0, 5}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestDiag(t *testing.T) {
	m := Poisson2D(3)
	for i, d := range m.Diag() {
		if d != 4 {
			t.Errorf("diag[%d] = %g", i, d)
		}
	}
}

func TestPoisson2DStructure(t *testing.T) {
	k := 4
	m := Poisson2D(k)
	if m.N != 16 {
		t.Fatalf("N = %d", m.N)
	}
	// Symmetry.
	for r := 0; r < m.N; r++ {
		for kk := m.RowPtr[r]; kk < m.RowPtr[r+1]; kk++ {
			c := m.ColIdx[kk]
			if m.At(c, r) != m.Val[kk] {
				t.Fatalf("asymmetric at (%d, %d)", r, c)
			}
		}
	}
	// Row sums: interior rows sum to 0, boundary rows are positive
	// (diagonally dominant).
	for r := 0; r < m.N; r++ {
		var sum float64
		for kk := m.RowPtr[r]; kk < m.RowPtr[r+1]; kk++ {
			sum += m.Val[kk]
		}
		if sum < 0 {
			t.Errorf("row %d sum %g < 0", r, sum)
		}
	}
}

func TestHelpers(t *testing.T) {
	if Norm2([]float64{3, 4}) != 5 {
		t.Errorf("Norm2")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Errorf("Dot")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewFromTriplets(0, nil, nil, nil) },
		func() { NewFromTriplets(2, []int{5}, []int{0}, []float64{1}) },
		func() { NewFromTriplets(2, []int{0}, []int{0}, []float64{math.NaN()}) },
		func() { NewFromTriplets(2, []int{0, 1}, []int{0}, []float64{1}) },
		func() { Poisson1D(2).MulVec([]float64{1}, []float64{1, 2}) },
		func() { Poisson1D(2).At(5, 0) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
