// Package sparse provides the compressed-sparse-row matrices backing the
// iterative-solver workload of the examples: the paper motivates its
// workflow scenario with "iterative methods … for solving large sparse
// linear systems" (Section 2), so the repository ships a real one.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is an N x N sparse matrix in compressed-sparse-row form.
type CSR struct {
	N      int
	RowPtr []int     // length N+1
	ColIdx []int     // column index of each stored entry
	Val    []float64 // value of each stored entry
}

// NewFromTriplets assembles an n x n CSR matrix from coordinate triplets.
// Duplicate (row, col) entries are summed. Indices out of range or
// non-finite values panic.
func NewFromTriplets(n int, rows, cols []int, vals []float64) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("sparse: invalid dimension %d", n))
	}
	if len(rows) != len(cols) || len(rows) != len(vals) {
		panic("sparse: triplet slices must have equal length")
	}
	type entry struct {
		r, c int
		v    float64
	}
	es := make([]entry, 0, len(rows))
	for i := range rows {
		r, c, v := rows[i], cols[i], vals[i]
		if r < 0 || r >= n || c < 0 || c >= n {
			panic(fmt.Sprintf("sparse: index (%d, %d) out of range for n=%d", r, c, n))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("sparse: non-finite value at (%d, %d)", r, c))
		}
		es = append(es, entry{r, c, v})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].r != es[j].r {
			return es[i].r < es[j].r
		}
		return es[i].c < es[j].c
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < len(es); {
		j := i
		v := 0.0
		for j < len(es) && es[j].r == es[i].r && es[j].c == es[i].c {
			v += es[j].v
			j++
		}
		m.ColIdx = append(m.ColIdx, es[i].c)
		m.Val = append(m.Val, v)
		m.RowPtr[es[i].r+1]++
		i = j
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A x. y must have length N and must not alias x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch (n=%d, len(x)=%d, len(y)=%d)", m.N, len(x), len(y)))
	}
	for r := 0; r < m.N; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
}

// Diag returns the main diagonal as a dense vector (zeros where no entry
// is stored).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				d[r] = m.Val[k]
			}
		}
	}
	return d
}

// At returns A[r, c] (zero if not stored). It is O(row nnz) and meant for
// tests and small inspections, not inner loops.
func (m *CSR) At(r, c int) float64 {
	if r < 0 || r >= m.N || c < 0 || c >= m.N {
		panic(fmt.Sprintf("sparse: At(%d, %d) out of range", r, c))
	}
	for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
		if m.ColIdx[k] == c {
			return m.Val[k]
		}
	}
	return 0
}

// Poisson1D returns the classic tridiagonal [-1, 2, -1] stiffness matrix
// of the 1-D Poisson equation on n interior grid points. It is symmetric
// positive definite — the canonical iterative-solver test problem.
func Poisson1D(n int) *CSR {
	var rows, cols []int
	var vals []float64
	for i := 0; i < n; i++ {
		rows = append(rows, i)
		cols = append(cols, i)
		vals = append(vals, 2)
		if i > 0 {
			rows = append(rows, i)
			cols = append(cols, i-1)
			vals = append(vals, -1)
		}
		if i < n-1 {
			rows = append(rows, i)
			cols = append(cols, i+1)
			vals = append(vals, -1)
		}
	}
	return NewFromTriplets(n, rows, cols, vals)
}

// Poisson2D returns the 5-point-stencil Laplacian on a k x k interior
// grid (dimension k*k), symmetric positive definite.
func Poisson2D(k int) *CSR {
	n := k * k
	var rows, cols []int
	var vals []float64
	idx := func(i, j int) int { return i*k + j }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			r := idx(i, j)
			rows = append(rows, r)
			cols = append(cols, r)
			vals = append(vals, 4)
			if i > 0 {
				rows = append(rows, r)
				cols = append(cols, idx(i-1, j))
				vals = append(vals, -1)
			}
			if i < k-1 {
				rows = append(rows, r)
				cols = append(cols, idx(i+1, j))
				vals = append(vals, -1)
			}
			if j > 0 {
				rows = append(rows, r)
				cols = append(cols, idx(i, j-1))
				vals = append(vals, -1)
			}
			if j < k-1 {
				rows = append(rows, r)
				cols = append(cols, idx(i, j+1))
				vals = append(vals, -1)
			}
		}
	}
	return NewFromTriplets(n, rows, cols, vals)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b (equal lengths required).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
