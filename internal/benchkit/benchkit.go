// Package benchkit is the measurement and regression-gate layer behind
// every BENCH_*.json snapshot in the repository: versioned snapshot
// schema, min-of-N timing with allocation accounting, environment
// capture (git SHA, Go version, GOMAXPROCS), and a drift comparator
// that make `make benchcheck` fail when a fresh run regresses against
// the committed snapshot.
//
// The gate distinguishes machine-dependent from machine-independent
// numbers. ns/trial varies across hosts, so its threshold is
// configurable (loose in CI, tighter on a dedicated box); allocs/trial
// and the bit-identical-across-workers flag are properties of the code
// alone, so their gates are tight everywhere.
package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"reskit/internal/atomicio"
)

// SchemaVersion identifies the snapshot layout. Version 1 was the
// loose, header-free format of the early BENCH_*.json files; version 2
// adds the environment header, min-of-N discipline and per-worker rows.
const SchemaVersion = 2

// Result is one benchmark measurement: a named workload at a fixed
// trial count and worker count.
type Result struct {
	// Name identifies the workload ("campaign/norm", "preempt", ...).
	Name string `json:"benchmark"`
	// Workers is the worker count the workload ran with (0 means the
	// workload has no worker dimension).
	Workers int `json:"workers,omitempty"`
	// Trials is the per-repetition trial count.
	Trials int64 `json:"trials"`
	// Reps is the number of repetitions; the numbers below are from
	// the fastest repetition (min-of-N rejects scheduler noise, which
	// is always additive).
	Reps int `json:"reps"`
	// NsPerTrial is minimum wall nanoseconds divided by Trials.
	NsPerTrial float64 `json:"ns_per_trial"`
	// TrialsPerSec is the throughput of the fastest repetition.
	TrialsPerSec float64 `json:"trials_per_sec"`
	// AllocsPerTrial and BytesPerTrial are heap allocation counts from
	// the repetition that allocated least (GC noise is additive too).
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	BytesPerTrial  float64 `json:"bytes_per_trial"`
	// SpeedupVs1Worker is NsPerTrial(1 worker) / NsPerTrial(this row),
	// filled by callers that sweep workers; 0 when not applicable.
	SpeedupVs1Worker float64 `json:"speedup_vs_1_worker,omitempty"`
	// BitIdenticalAcrossWorkers records that the workload re-ran at
	// every swept worker count produced byte-identical aggregates.
	// nil means the check does not apply to this workload.
	BitIdenticalAcrossWorkers *bool `json:"bit_identical_across_workers,omitempty"`
	// StopReason records why an open-ended (streaming) workload ended:
	// "ci target met", "trial budget exhausted", or an interruption
	// marker. Empty for fixed-trial-count workloads.
	StopReason string `json:"stop_reason,omitempty"`
	// Metrics carries workload-specific extras (engine ns/job
	// quantiles, jobs/sec) shared verbatim with -metrics output.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a result row within a snapshot for comparison.
func (r Result) Key() string {
	if r.Workers == 0 {
		return r.Name
	}
	return fmt.Sprintf("%s@w%d", r.Name, r.Workers)
}

// Header is the environment block every benchmark artifact carries:
// schema version, generation time, and the machine/toolchain facts a
// reader needs to judge whether two snapshots are comparable. It is
// embedded by Snapshot and reusable by other benchmark-shaped files
// (the fault-sweep snapshot embeds it around its own row type).
type Header struct {
	SchemaVersion int    `json:"schema_version"`
	Generated     string `json:"generated"` // RFC3339
	GitSHA        string `json:"git_sha,omitempty"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
}

// NewHeader captures the current environment.
func NewHeader() Header {
	return Header{
		SchemaVersion: SchemaVersion,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:        GitSHA(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
}

// Snapshot is a full benchmark run: environment header plus results.
type Snapshot struct {
	Header
	Results []Result `json:"results"`
}

// NewSnapshot returns a snapshot with the environment header filled in.
func NewSnapshot() *Snapshot {
	return &Snapshot{Header: NewHeader()}
}

// GitSHA returns the abbreviated commit hash of the working tree, or ""
// when git (or the repository) is unavailable — snapshots must still be
// producible from an export tarball.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Write stores the snapshot as indented JSON via write-temp-fsync-rename
// so an interrupted run can never truncate a committed snapshot.
func (s *Snapshot) Write(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("benchkit: encoding snapshot: %w", err)
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a snapshot written by Write.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchkit: decoding %s: %w", path, err)
	}
	return &s, nil
}

// Timing is the measurement of one workload by MinOf.
type Timing struct {
	MinNs          int64  // fastest repetition, wall nanoseconds
	MinAllocs      uint64 // least-allocating repetition, heap objects
	MinBytes       uint64 // least-allocating repetition, heap bytes
	Reps           int    // repetitions performed
	Trials         int64  // trials per repetition
	NsPerTrial     float64
	TrialsPerSec   float64
	AllocsPerTrial float64
	BytesPerTrial  float64
}

// MinOf runs fn reps times (at least once) against a workload of
// `trials` trials and keeps the minimum wall time and minimum
// allocation deltas across repetitions: noise from scheduling, GC and
// cache warm-up only ever adds, so the minimum is the honest estimate
// of the workload's cost.
func MinOf(reps int, trials int64, fn func()) Timing {
	if reps < 1 {
		reps = 1
	}
	t := Timing{MinNs: 1<<63 - 1, MinAllocs: ^uint64(0), MinBytes: ^uint64(0), Reps: reps, Trials: trials}
	var before, after runtime.MemStats
	for i := 0; i < reps; i++ {
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn()
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		if ns < t.MinNs {
			t.MinNs = ns
		}
		if d := after.Mallocs - before.Mallocs; d < t.MinAllocs {
			t.MinAllocs = d
		}
		if d := after.TotalAlloc - before.TotalAlloc; d < t.MinBytes {
			t.MinBytes = d
		}
	}
	if trials > 0 {
		t.NsPerTrial = float64(t.MinNs) / float64(trials)
		t.AllocsPerTrial = float64(t.MinAllocs) / float64(trials)
		t.BytesPerTrial = float64(t.MinBytes) / float64(trials)
	}
	if t.MinNs > 0 {
		t.TrialsPerSec = float64(trials) / (float64(t.MinNs) / 1e9)
	}
	return t
}

// Result converts the timing into a snapshot row.
func (t Timing) Result(name string, workers int) Result {
	return Result{
		Name:           name,
		Workers:        workers,
		Trials:         t.Trials,
		Reps:           t.Reps,
		NsPerTrial:     t.NsPerTrial,
		TrialsPerSec:   t.TrialsPerSec,
		AllocsPerTrial: t.AllocsPerTrial,
		BytesPerTrial:  t.BytesPerTrial,
	}
}

// CompareOpts tunes the drift gate.
type CompareOpts struct {
	// NsDriftPct fails rows whose ns_per_trial regressed by more than
	// this percentage over the committed snapshot. ns/trial depends on
	// the host, so CI sets this loose (see BENCH_DRIFT_PCT); 0 means
	// the DefaultNsDriftPct.
	NsDriftPct float64
	// AllocDriftAbs fails rows whose allocs_per_trial grew by more
	// than this absolute amount. Allocation counts are
	// machine-independent, so the default gate is tight.
	AllocDriftAbs float64
	// AllowMissing skips rows of the committed snapshot with no
	// counterpart in the fresh run instead of failing them. The
	// default (false) treats a vanished benchmark as drift.
	AllowMissing bool
}

// DefaultNsDriftPct is the local-run timing gate. Same-machine
// min-of-N timings of these workloads are repeatable to a few percent;
// 30% only trips on real regressions.
const DefaultNsDriftPct = 30

// DefaultAllocDriftAbs tolerates sub-integer accounting jitter (pool
// refills, map growth) without letting a real per-trial allocation in.
const DefaultAllocDriftAbs = 0.5

// NsDriftPctFromEnv reads the BENCH_DRIFT_PCT override, falling back
// to DefaultNsDriftPct when unset or unparseable.
func NsDriftPctFromEnv() float64 {
	if v := os.Getenv("BENCH_DRIFT_PCT"); v != "" {
		if pct, err := strconv.ParseFloat(v, 64); err == nil && pct > 0 {
			return pct
		}
	}
	return DefaultNsDriftPct
}

// Compare diffs a fresh snapshot against the committed baseline and
// returns one message per drifting row, sorted for stable output. An
// empty slice means the gate passes.
func Compare(baseline, fresh *Snapshot, opts CompareOpts) []string {
	if opts.NsDriftPct <= 0 {
		opts.NsDriftPct = DefaultNsDriftPct
	}
	if opts.AllocDriftAbs <= 0 {
		opts.AllocDriftAbs = DefaultAllocDriftAbs
	}
	var drifts []string
	if baseline.SchemaVersion != fresh.SchemaVersion {
		drifts = append(drifts, fmt.Sprintf("schema version changed: committed %d, fresh %d (refresh the snapshot intentionally)",
			baseline.SchemaVersion, fresh.SchemaVersion))
		return drifts
	}
	freshByKey := make(map[string]Result, len(fresh.Results))
	for _, r := range fresh.Results {
		freshByKey[r.Key()] = r
	}
	for _, old := range baseline.Results {
		now, ok := freshByKey[old.Key()]
		if !ok {
			if !opts.AllowMissing {
				drifts = append(drifts, fmt.Sprintf("%s: benchmark missing from fresh run", old.Key()))
			}
			continue
		}
		if old.NsPerTrial > 0 && now.NsPerTrial > old.NsPerTrial*(1+opts.NsDriftPct/100) {
			drifts = append(drifts, fmt.Sprintf("%s: ns/trial %.4g -> %.4g (+%.1f%%, gate %.0f%%)",
				old.Key(), old.NsPerTrial, now.NsPerTrial,
				100*(now.NsPerTrial/old.NsPerTrial-1), opts.NsDriftPct))
		}
		if now.AllocsPerTrial > old.AllocsPerTrial+opts.AllocDriftAbs {
			drifts = append(drifts, fmt.Sprintf("%s: allocs/trial %.4g -> %.4g (gate +%.2g)",
				old.Key(), old.AllocsPerTrial, now.AllocsPerTrial, opts.AllocDriftAbs))
		}
		if old.BitIdenticalAcrossWorkers != nil && *old.BitIdenticalAcrossWorkers &&
			(now.BitIdenticalAcrossWorkers == nil || !*now.BitIdenticalAcrossWorkers) {
			drifts = append(drifts, fmt.Sprintf("%s: bit_identical_across_workers no longer true", old.Key()))
		}
	}
	sort.Strings(drifts)
	return drifts
}
