package benchkit

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMinOfBasics(t *testing.T) {
	calls := 0
	tm := MinOf(5, 1000, func() {
		calls++
		time.Sleep(time.Millisecond)
	})
	if calls != 5 {
		t.Fatalf("MinOf ran fn %d times, want 5", calls)
	}
	if tm.MinNs < int64(time.Millisecond) {
		t.Errorf("MinNs = %d, below the 1ms the workload sleeps", tm.MinNs)
	}
	if tm.NsPerTrial <= 0 || tm.TrialsPerSec <= 0 {
		t.Errorf("per-trial numbers not derived: %+v", tm)
	}
	if tm.Reps != 5 || tm.Trials != 1000 {
		t.Errorf("rep/trial bookkeeping wrong: %+v", tm)
	}
	if r := MinOf(0, 10, func() { calls++ }); r.Reps != 1 {
		t.Errorf("MinOf(0, ...) must clamp to one rep, got %d", r.Reps)
	}
}

func TestMinOfAllocAccounting(t *testing.T) {
	var sink []byte
	tm := MinOf(3, 100, func() {
		sink = make([]byte, 1<<20)
	})
	_ = sink
	if tm.MinBytes < 1<<20 {
		t.Errorf("MinBytes = %d, want >= 1MiB for a 1MiB-per-rep workload", tm.MinBytes)
	}
	if tm.AllocsPerTrial <= 0 {
		t.Errorf("AllocsPerTrial = %g, want > 0", tm.AllocsPerTrial)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	s := NewSnapshot()
	if s.SchemaVersion != SchemaVersion || s.GoVersion == "" || s.GoMaxProcs < 1 {
		t.Fatalf("NewSnapshot header incomplete: %+v", s)
	}
	yes := true
	s.Results = []Result{
		{Name: "campaign/norm", Workers: 1, Trials: 1000000, Reps: 5, NsPerTrial: 100, AllocsPerTrial: 0, BitIdenticalAcrossWorkers: &yes},
		{Name: "campaign/norm", Workers: 4, Trials: 1000000, Reps: 5, NsPerTrial: 30, SpeedupVs1Worker: 3.33},
	}
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || got.Results[0].Key() != "campaign/norm@w1" {
		t.Fatalf("round trip mangled results: %+v", got.Results)
	}
	if got.Results[0].BitIdenticalAcrossWorkers == nil || !*got.Results[0].BitIdenticalAcrossWorkers {
		t.Error("bit_identical flag lost in round trip")
	}
}

// TestCompareFailsOnDrift is the demonstrated-failure requirement of
// the perf gate: a fresh snapshot with >N% ns/trial drift, an
// allocation regression, a lost bit-identity flag, or a vanished row
// must each produce a drift message.
func TestCompareFailsOnDrift(t *testing.T) {
	yes := true
	base := &Snapshot{Header: Header{SchemaVersion: SchemaVersion}, Results: []Result{
		{Name: "campaign/norm", Workers: 1, NsPerTrial: 100, AllocsPerTrial: 0, BitIdenticalAcrossWorkers: &yes},
		{Name: "preempt", Workers: 1, NsPerTrial: 50},
	}}

	// Identical run: gate passes.
	if d := Compare(base, base, CompareOpts{NsDriftPct: 20}); len(d) != 0 {
		t.Fatalf("identical snapshots drifted: %v", d)
	}
	// Within threshold: passes.
	ok := &Snapshot{Header: Header{SchemaVersion: SchemaVersion}, Results: []Result{
		{Name: "campaign/norm", Workers: 1, NsPerTrial: 110, BitIdenticalAcrossWorkers: &yes},
		{Name: "preempt", Workers: 1, NsPerTrial: 55},
	}}
	if d := Compare(base, ok, CompareOpts{NsDriftPct: 20}); len(d) != 0 {
		t.Fatalf("within-threshold run drifted: %v", d)
	}

	// >20% slower: fails.
	slow := &Snapshot{Header: Header{SchemaVersion: SchemaVersion}, Results: []Result{
		{Name: "campaign/norm", Workers: 1, NsPerTrial: 130, BitIdenticalAcrossWorkers: &yes},
		{Name: "preempt", Workers: 1, NsPerTrial: 50},
	}}
	d := Compare(base, slow, CompareOpts{NsDriftPct: 20})
	if len(d) != 1 || !strings.Contains(d[0], "ns/trial") {
		t.Fatalf("30%% regression not caught: %v", d)
	}

	// New steady-state allocation: fails even when timing is fine.
	leaky := &Snapshot{Header: Header{SchemaVersion: SchemaVersion}, Results: []Result{
		{Name: "campaign/norm", Workers: 1, NsPerTrial: 100, AllocsPerTrial: 3, BitIdenticalAcrossWorkers: &yes},
		{Name: "preempt", Workers: 1, NsPerTrial: 50},
	}}
	d = Compare(base, leaky, CompareOpts{NsDriftPct: 20})
	if len(d) != 1 || !strings.Contains(d[0], "allocs/trial") {
		t.Fatalf("allocation regression not caught: %v", d)
	}

	// Lost determinism flag: fails.
	nondet := &Snapshot{Header: Header{SchemaVersion: SchemaVersion}, Results: []Result{
		{Name: "campaign/norm", Workers: 1, NsPerTrial: 100},
		{Name: "preempt", Workers: 1, NsPerTrial: 50},
	}}
	d = Compare(base, nondet, CompareOpts{NsDriftPct: 20})
	if len(d) != 1 || !strings.Contains(d[0], "bit_identical") {
		t.Fatalf("lost bit-identity not caught: %v", d)
	}

	// Vanished benchmark: fails unless AllowMissing.
	partial := &Snapshot{Header: Header{SchemaVersion: SchemaVersion}, Results: base.Results[:1]}
	if d = Compare(base, partial, CompareOpts{NsDriftPct: 20}); len(d) != 1 || !strings.Contains(d[0], "missing") {
		t.Fatalf("missing row not caught: %v", d)
	}
	if d = Compare(base, partial, CompareOpts{NsDriftPct: 20, AllowMissing: true}); len(d) != 0 {
		t.Fatalf("AllowMissing still drifted: %v", d)
	}

	// Schema change is always drift.
	v1 := &Snapshot{Header: Header{SchemaVersion: 1}, Results: base.Results}
	if d = Compare(v1, base, CompareOpts{}); len(d) != 1 || !strings.Contains(d[0], "schema") {
		t.Fatalf("schema change not caught: %v", d)
	}
}

func TestNsDriftPctFromEnv(t *testing.T) {
	t.Setenv("BENCH_DRIFT_PCT", "")
	if got := NsDriftPctFromEnv(); got != DefaultNsDriftPct {
		t.Errorf("default = %g, want %g", got, float64(DefaultNsDriftPct))
	}
	t.Setenv("BENCH_DRIFT_PCT", "250")
	if got := NsDriftPctFromEnv(); got != 250 {
		t.Errorf("override = %g, want 250", got)
	}
	t.Setenv("BENCH_DRIFT_PCT", "junk")
	if got := NsDriftPctFromEnv(); got != DefaultNsDriftPct {
		t.Errorf("junk fallback = %g, want %g", got, float64(DefaultNsDriftPct))
	}
}
