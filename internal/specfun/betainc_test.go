package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12, B(0.5,0.5)=pi.
	almostEq(t, LogBeta(1, 1), 0, 1e-14, "logB(1,1)")
	almostEq(t, LogBeta(2, 3), math.Log(1.0/12), 1e-13, "logB(2,3)")
	almostEq(t, LogBeta(0.5, 0.5), math.Log(math.Pi), 1e-13, "logB(.5,.5)")
}

func TestBetaIncRegClosedForms(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.2, 0.5, 0.9, 1} {
		almostEq(t, BetaIncReg(1, 1, x), x, 1e-13, "I(1,1)")
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.1, 0.35, 0.5, 0.8} {
		almostEq(t, BetaIncReg(2, 2, x), 3*x*x-2*x*x*x, 1e-12, "I(2,2)")
	}
	// I_x(1,b) = 1-(1-x)^b.
	for _, x := range []float64{0.15, 0.6} {
		almostEq(t, BetaIncReg(1, 4, x), 1-math.Pow(1-x, 4), 1e-12, "I(1,4)")
	}
	// I_x(0.5, 0.5) = 2/pi * asin(sqrt(x)) (arcsine law).
	for _, x := range []float64{0.1, 0.5, 0.95} {
		almostEq(t, BetaIncReg(0.5, 0.5, x), 2/math.Pi*math.Asin(math.Sqrt(x)), 1e-11, "arcsine")
	}
}

func TestBetaIncRegSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	prop := func(ua, ub, ux float64) bool {
		a := 0.2 + math.Abs(math.Mod(ua, 10))
		b := 0.2 + math.Abs(math.Mod(ub, 10))
		x := math.Abs(math.Mod(ux, 1))
		lhs := BetaIncReg(a, b, x)
		rhs := 1 - BetaIncReg(b, a, 1-x)
		return math.Abs(lhs-rhs) <= 1e-11
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaIncRegMonotone(t *testing.T) {
	prop := func(u1, u2 float64) bool {
		x1 := math.Abs(math.Mod(u1, 1))
		x2 := math.Abs(math.Mod(u2, 1))
		lo, hi := math.Min(x1, x2), math.Max(x1, x2)
		return BetaIncReg(2.5, 1.5, lo) <= BetaIncReg(2.5, 1.5, hi)+1e-14
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaIncRegInvalid(t *testing.T) {
	for _, bad := range [][3]float64{{0, 1, 0.5}, {1, -1, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}} {
		if !math.IsNaN(BetaIncReg(bad[0], bad[1], bad[2])) {
			t.Errorf("BetaIncReg(%v) should be NaN", bad)
		}
	}
}

func TestBetaIncRegInvRoundTrip(t *testing.T) {
	for _, ab := range [][2]float64{{1, 1}, {2, 2}, {0.5, 0.5}, {5, 2}, {0.8, 9}} {
		for _, p := range []float64{1e-6, 0.01, 0.3, 0.5, 0.77, 0.99, 1 - 1e-8} {
			x := BetaIncRegInv(ab[0], ab[1], p)
			back := BetaIncReg(ab[0], ab[1], x)
			// The deep upper tail is ill-conditioned (the density at the
			// solution can be tiny); accept a looser absolute error there.
			tol := 1e-9
			if p > 1-1e-6 {
				tol = 1e-7
			}
			almostEq(t, back, p, tol, "beta inv round trip")
		}
	}
	if BetaIncRegInv(2, 3, 0) != 0 || BetaIncRegInv(2, 3, 1) != 1 {
		t.Errorf("endpoints wrong")
	}
}
