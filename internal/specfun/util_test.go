package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExp(t *testing.T) {
	almostEq(t, LogSumExp(0, 0), math.Ln2, 1e-15, "lse(0,0)")
	almostEq(t, LogSumExp(1000, 1000), 1000+math.Ln2, 1e-12, "lse big")
	almostEq(t, LogSumExp(-1000, 0), 0, 1e-12, "lse dominated")
	if LogSumExp(math.Inf(-1), 3) != 3 || LogSumExp(3, math.Inf(-1)) != 3 {
		t.Fatalf("lse with -inf wrong")
	}
}

func TestLogSumExpProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 300)
		b = math.Mod(b, 300)
		got := LogSumExp(a, b)
		want := math.Log(math.Exp(a) + math.Exp(b))
		return math.Abs(got-want) <= 1e-10*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogDiffExp(t *testing.T) {
	almostEq(t, LogDiffExp(math.Log(3), math.Log(1)), math.Log(2), 1e-14, "lde(ln3,ln1)")
	if !math.IsInf(LogDiffExp(2, 2), -1) {
		t.Fatalf("lde(a,a) must be -inf")
	}
	if !math.IsNaN(LogDiffExp(1, 2)) {
		t.Fatalf("lde(a<b) must be NaN")
	}
	// Near-cancellation accuracy: the naive log(exp(a+d)-exp(a)) loses
	// ~7 digits here; LogDiffExp must agree with the analytically exact
	// a + log(expm1(d)) where d is the representable gap.
	a := 5.0
	b := a + 1e-9
	d := b - a
	got := LogDiffExp(b, a)
	want := a + math.Log(math.Expm1(d))
	almostEq(t, got, want, 1e-12, "lde near-equal args")
}

func TestLog1mExp(t *testing.T) {
	almostEq(t, Log1mExp(-math.Ln2), math.Log(0.5), 1e-14, "l1me(-ln2)")
	almostEq(t, Log1mExp(-1e-10), math.Log(1e-10), 1e-5, "l1me tiny")
	if !math.IsInf(Log1mExp(0), -1) {
		t.Fatalf("l1me(0) must be -inf")
	}
	if !math.IsNaN(Log1mExp(0.5)) {
		t.Fatalf("l1me(positive) must be NaN")
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.1) != 0 || Clamp01(1.2) != 1 || Clamp01(0.37) != 0.37 {
		t.Fatalf("Clamp01 wrong")
	}
}
