package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaIncPExponentialSpecialCase(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (Exponential CDF).
	for _, x := range []float64{0, 0.1, 1, 2.5, 10, 50} {
		almostEq(t, GammaIncP(1, x), -math.Expm1(-x), 1e-13, "P(1,x)")
	}
}

func TestGammaIncPErlang(t *testing.T) {
	// P(2, x) = 1 - (1+x) e^{-x}.
	for _, x := range []float64{0.5, 1, 3, 8} {
		want := 1 - (1+x)*math.Exp(-x)
		almostEq(t, GammaIncP(2, x), want, 1e-13, "P(2,x)")
	}
	// P(3, x) = 1 - (1 + x + x^2/2) e^{-x}.
	for _, x := range []float64{0.5, 2, 6} {
		want := 1 - (1+x+x*x/2)*math.Exp(-x)
		almostEq(t, GammaIncP(3, x), want, 1e-13, "P(3,x)")
	}
}

func TestGammaIncHalfIntegerIsChiSquare(t *testing.T) {
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 4, 9} {
		almostEq(t, GammaIncP(0.5, x), math.Erf(math.Sqrt(x)), 1e-13, "P(.5,x)=erf(sqrt x)")
	}
}

func TestGammaIncComplement(t *testing.T) {
	f := func(ua, ux float64) bool {
		a := 0.05 + math.Abs(math.Mod(ua, 50))
		x := math.Abs(math.Mod(ux, 100))
		p := GammaIncP(a, x)
		q := GammaIncQ(a, x)
		return p >= 0 && p <= 1 && q >= 0 && q <= 1 && math.Abs(p+q-1) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaIncMonotoneInX(t *testing.T) {
	f := func(ua, u1, u2 float64) bool {
		a := 0.05 + math.Abs(math.Mod(ua, 20))
		x1 := math.Abs(math.Mod(u1, 60))
		x2 := math.Abs(math.Mod(u2, 60))
		lo, hi := math.Min(x1, x2), math.Max(x1, x2)
		return GammaIncP(a, lo) <= GammaIncP(a, hi)+1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaIncInvalid(t *testing.T) {
	if !math.IsNaN(GammaIncP(0, 1)) || !math.IsNaN(GammaIncP(-1, 1)) || !math.IsNaN(GammaIncP(1, -1)) {
		t.Fatalf("invalid arguments must yield NaN")
	}
	if GammaIncP(3, 0) != 0 || GammaIncQ(3, 0) != 1 {
		t.Fatalf("x=0 boundary wrong")
	}
}

func TestGammaIncPInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.3, 0.5, 1, 2, 5, 17.5, 100} {
		for _, p := range []float64{1e-8, 0.01, 0.2, 0.5, 0.9, 0.999, 1 - 1e-9} {
			x := GammaIncPInv(a, p)
			back := GammaIncP(a, x)
			almostEq(t, back, p, 1e-9, "P(a, Pinv(a,p)) round trip")
		}
	}
	if GammaIncPInv(2, 0) != 0 || !math.IsInf(GammaIncPInv(2, 1), 1) {
		t.Fatalf("quantile endpoints wrong")
	}
}

func TestPoissonCDFAgainstDirectSum(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 10, 30} {
		sum := 0.0
		for k := 0; k <= 60; k++ {
			sum += math.Exp(LogPoissonPMF(k, lambda))
			got := PoissonCDF(float64(k), lambda)
			almostEq(t, got, sum, 1e-11, "Poisson CDF vs direct sum")
		}
	}
	if PoissonCDF(-1, 3) != 0 {
		t.Fatalf("negative k must give 0")
	}
	if PoissonCDF(5, 0) != 1 {
		t.Fatalf("lambda=0 must give 1")
	}
}

func TestLogPoissonPMFNormalization(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 5, 25} {
		sum := 0.0
		for k := 0; k < 200; k++ {
			sum += math.Exp(LogPoissonPMF(k, lambda))
		}
		almostEq(t, sum, 1, 1e-10, "Poisson PMF sums to 1")
	}
}
