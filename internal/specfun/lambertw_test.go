package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	almostEq(t, LambertW0(0), 0, 1e-16, "W(0)")
	almostEq(t, LambertW0(math.E), 1, 1e-14, "W(e)")
	almostEq(t, LambertW0(2*math.E*math.E), 2, 1e-14, "W(2e^2)")
	almostEq(t, LambertW0(1), 0.5671432904097838, 1e-14, "W(1) omega constant")
	almostEq(t, LambertW0(-eInv), -1, 1e-6, "W(-1/e) branch point")
	almostEq(t, LambertW0(10), 1.7455280027406994, 1e-13, "W(10)")
	almostEq(t, LambertW0(-0.2), -0.2591711018190738, 1e-12, "W(-0.2)")
	almostEq(t, LambertW0(-0.35), -0.7166388164560739, 1e-8, "W(-0.35) near branch")
}

func TestLambertW0Invalid(t *testing.T) {
	if !math.IsNaN(LambertW0(-1)) {
		t.Fatalf("W0(-1) must be NaN")
	}
	if !math.IsInf(LambertW0(math.Inf(1)), 1) {
		t.Fatalf("W0(+inf) must be +inf")
	}
	if !math.IsNaN(LambertW0(math.NaN())) {
		t.Fatalf("W0(NaN) must be NaN")
	}
}

func TestLambertW0DefiningProperty(t *testing.T) {
	f := func(u float64) bool {
		z := math.Abs(math.Mod(u, 1e6)) // z in [0, 1e6)
		w := LambertW0(z)
		return math.Abs(w*math.Exp(w)-z) <= 1e-10*(1+z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLambertWExpArgMatchesDirect(t *testing.T) {
	for _, y := range []float64{-5, -1, 0, 1, 2, 10, 100, 650} {
		almostEq(t, LambertWExpArg(y), LambertW0(math.Exp(y)), 1e-12, "W(e^y) vs direct")
	}
}

func TestLambertWExpArgHugeArguments(t *testing.T) {
	// For huge y, w + ln w = y must hold even though e^y overflows.
	for _, y := range []float64{800, 1e4, 1e8, 1e15} {
		w := LambertWExpArg(y)
		if math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("W(e^%g) not finite: %v", y, w)
		}
		resid := w + math.Log(w) - y
		if math.Abs(resid) > 1e-9*(1+y) {
			t.Fatalf("W(e^%g): residual %g too large", y, resid)
		}
	}
}

func TestLambertWExpArgMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 2000)
		b = math.Mod(math.Abs(b), 2000)
		lo, hi := math.Min(a, b), math.Max(a, b)
		return LambertWExpArg(lo) <= LambertWExpArg(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
