package specfun

import (
	"math"
	"testing"
)

// sameBits reports whether two float64s are identical at the bit level,
// treating every NaN payload as equal. The batch kernels promise results
// bit-identical to the scalar functions — stricter than the 1-ulp
// contract of dist.BatchContinuous — so the tests compare raw bits.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// batchEdgeXs are the awkward inputs every batch kernel must route
// through the same special cases as its scalar reference: NaN, both
// infinities, zero, subnormals, and magnitudes near both ends of the
// exponent range.
var batchEdgeXs = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	0, math.Copysign(0, -1),
	5e-324, 1e-310, 2.2250738585072014e-308, // subnormals and DBL_MIN
	1e-17, 0.5, 1, 2, 100, 745, 1e5, 1e308,
	-5e-324, -1, -1e308,
}

// denseGrid returns n points spanning [lo, hi] inclusive.
func denseGrid(lo, hi float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return xs
}

func TestNormBatchMatchesScalarBitwise(t *testing.T) {
	xs := append(denseGrid(-40, 40, 4001), batchEdgeXs...)
	pdf := make([]float64, len(xs))
	cdf := make([]float64, len(xs))
	sf := make([]float64, len(xs))
	NormPDFBatch(xs, pdf)
	NormCDFBatch(xs, cdf)
	NormSFBatch(xs, sf)
	for i, x := range xs {
		if want := NormPDF(x); !sameBits(pdf[i], want) {
			t.Errorf("NormPDFBatch(%g) = %x, scalar %x", x, pdf[i], want)
		}
		if want := NormCDF(x); !sameBits(cdf[i], want) {
			t.Errorf("NormCDFBatch(%g) = %x, scalar %x", x, cdf[i], want)
		}
		if want := NormSF(x); !sameBits(sf[i], want) {
			t.Errorf("NormSFBatch(%g) = %x, scalar %x", x, sf[i], want)
		}
	}
}

func TestGammaIncBatchMatchesScalarBitwise(t *testing.T) {
	shapes := []float64{0.03, 0.5, 1, 2, 2.5, 7, 30.5, 123.4, 1e4}
	for _, a := range shapes {
		// Grid straddling the series/continued-fraction switch at a+1,
		// plus the edge panel; interleaved ordering exercises lane
		// grouping with partial flushes between CF-branch points.
		xs := append(denseGrid(1e-9, 4*(a+2), 2003), batchEdgeXs...)
		outP := make([]float64, len(xs))
		outQ := make([]float64, len(xs))
		GammaIncPBatch(a, xs, outP)
		GammaIncQBatch(a, xs, outQ)
		for i, x := range xs {
			if want := GammaIncP(a, x); !sameBits(outP[i], want) {
				t.Errorf("GammaIncPBatch(%g, %g) = %x, scalar %x", a, x, outP[i], want)
			}
			if want := GammaIncQ(a, x); !sameBits(outQ[i], want) {
				t.Errorf("GammaIncQBatch(%g, %g) = %x, scalar %x", a, x, outQ[i], want)
			}
		}
	}
	// Invalid shapes must poison the whole output.
	for _, a := range []float64{math.NaN(), 0, -1} {
		xs := []float64{0.5, 1, 2}
		out := make([]float64, len(xs))
		GammaIncPBatch(a, xs, out)
		for i, v := range out {
			if !math.IsNaN(v) {
				t.Errorf("GammaIncPBatch(a=%g) out[%d] = %g, want NaN", a, i, v)
			}
		}
	}
}

// TestGammaIncBatchAliasing verifies the documented xs == out contract.
func TestGammaIncBatchAliasing(t *testing.T) {
	xs := denseGrid(0.01, 12, 257)
	want := make([]float64, len(xs))
	GammaIncPBatch(2.5, xs, want)
	buf := append([]float64(nil), xs...)
	GammaIncPBatch(2.5, buf, buf)
	for i := range buf {
		if !sameBits(buf[i], want[i]) {
			t.Fatalf("aliased GammaIncPBatch diverges at %d: %x vs %x", i, buf[i], want[i])
		}
	}
	buf = append([]float64(nil), xs...)
	NormCDFBatch(buf, buf)
	for i, x := range xs {
		if !sameBits(buf[i], NormCDF(x)) {
			t.Fatalf("aliased NormCDFBatch diverges at %d", i)
		}
	}
}

// TestGammaIncBatchClosedForms pins the batch kernel against closed
// forms: P(1,x) = 1-e^{-x}, P(2,x) = 1-(1+x)e^{-x}, P(1/2,x) =
// erf(sqrt(x)). Tolerances, not bits — the closed forms round
// differently.
func TestGammaIncBatchClosedForms(t *testing.T) {
	xs := denseGrid(1e-6, 30, 501)
	out := make([]float64, len(xs))
	check := func(a float64, f func(x float64) float64) {
		GammaIncPBatch(a, xs, out)
		for i, x := range xs {
			want := f(x)
			if diff := math.Abs(out[i] - want); diff > 1e-13 {
				t.Errorf("GammaIncPBatch(%g, %g) = %.17g, closed form %.17g", a, x, out[i], want)
			}
		}
	}
	check(1, func(x float64) float64 { return -math.Expm1(-x) })
	check(2, func(x float64) float64 { return 1 - (1+x)*math.Exp(-x) })
	check(0.5, func(x float64) float64 { return math.Erf(math.Sqrt(x)) })
}

func TestBetaIncRegBatchMatchesScalarBitwise(t *testing.T) {
	pairs := [][2]float64{{0.5, 0.5}, {1, 1}, {2, 5}, {2.5, 3.5}, {40, 2}, {120.5, 77.25}}
	xs := append(denseGrid(0, 1, 2001), batchEdgeXs...)
	out := make([]float64, len(xs))
	for _, ab := range pairs {
		a, b := ab[0], ab[1]
		BetaIncRegBatch(a, b, xs, out)
		for i, x := range xs {
			if want := BetaIncReg(a, b, x); !sameBits(out[i], want) {
				t.Errorf("BetaIncRegBatch(%g, %g, %g) = %x, scalar %x", a, b, x, out[i], want)
			}
		}
	}
	BetaIncRegBatch(-1, 2, []float64{0.5}, out[:1])
	if !math.IsNaN(out[0]) {
		t.Errorf("BetaIncRegBatch(a=-1) = %g, want NaN", out[0])
	}
}

// TestGammaIncPInvRoundTripAfterFusion guards the fused Newton loop in
// GammaIncPInv: P(a, P^{-1}(a, p)) must round-trip to p well inside the
// solver tolerance across shapes on both sides of the series/CF switch.
func TestGammaIncPInvRoundTripAfterFusion(t *testing.T) {
	for _, a := range []float64{0.05, 0.5, 1, 2, 7.5, 42, 1234.5} {
		for _, p := range []float64{1e-12, 1e-6, 0.01, 0.3, 0.5, 0.9, 0.99, 1 - 1e-9} {
			x := GammaIncPInv(a, p)
			if !(x > 0) || math.IsInf(x, 1) {
				t.Fatalf("GammaIncPInv(%g, %g) = %g", a, p, x)
			}
			back := GammaIncP(a, x)
			// The solver converges x to 1e-14*(1+x), so the residual in
			// p-space scales with the density at the root; for small a
			// the density blows up like x^{a-1} near 0.
			lg, _ := math.Lgamma(a)
			pdf := math.Exp((a-1)*math.Log(x) - x - lg)
			tol := 1e-12 + 4e-14*(1+x)*pdf
			if math.Abs(back-p) > tol {
				t.Errorf("round trip a=%g p=%g: got %g (x=%g, tol %g)", a, p, back, x, tol)
			}
		}
	}
}
