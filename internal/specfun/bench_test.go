package specfun

import (
	"math"
	"testing"
)

// sink defeats dead-code elimination in the benchmarks below.
var sink float64

// benchGrid is a fixed panel of evaluation points spanning both the
// series (x < a+1) and continued-fraction (x >= a+1) branches of the
// incomplete-gamma kernels for the shapes benchmarked.
var benchGrid = func() []float64 {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 0.05 + 8*float64(i)/float64(len(xs)-1)
	}
	return xs
}()

func BenchmarkNormPDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = NormPDF(0.7)
	}
}

func BenchmarkLogNormPDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LogNormPDF(0.7)
	}
}

func BenchmarkNormCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = NormCDF(0.7)
	}
}

func BenchmarkNormSF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = NormSF(0.7)
	}
}

func BenchmarkLogNormCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LogNormCDF(-3)
	}
}

func BenchmarkLogNormSF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LogNormSF(3)
	}
}

func BenchmarkNormCDFInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = NormCDFInterval(1, 2)
	}
}

func BenchmarkNormQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = NormQuantile(0.3)
	}
}

func BenchmarkGammaIncP(b *testing.B) {
	b.Run("series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = GammaIncP(2, 1.5)
		}
	})
	b.Run("contfrac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = GammaIncP(2, 7.5)
		}
	})
}

func BenchmarkGammaIncQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = GammaIncQ(2, 7.5)
	}
}

func BenchmarkGammaIncPInv(b *testing.B) {
	b.Run("a=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = GammaIncPInv(2, 0.3)
		}
	})
	b.Run("a=0.5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = GammaIncPInv(0.5, 0.8)
		}
	})
}

func BenchmarkPoissonCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = PoissonCDF(4, 3.2)
	}
}

func BenchmarkLogPoissonPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LogPoissonPMF(4, 3.2)
	}
}

func BenchmarkLogBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LogBeta(2.5, 3.5)
	}
}

func BenchmarkBetaIncReg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = BetaIncReg(2.5, 3.5, 0.4)
	}
}

func BenchmarkBetaIncRegInv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = BetaIncRegInv(2.5, 3.5, 0.4)
	}
}

func BenchmarkDigamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = Digamma(3.7)
	}
}

func BenchmarkLambertW0(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LambertW0(1.5)
	}
}

func BenchmarkLogSumExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = LogSumExp(-3, -4)
	}
}

func BenchmarkLog1mExp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = Log1mExp(-0.5)
	}
}

// Scalar-loop reference points for the batch kernels: the same grid the
// Batch benchmarks sweep, evaluated one call at a time.
func BenchmarkNormCDFScalarLoop(b *testing.B) {
	out := make([]float64, len(benchGrid))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range benchGrid {
			out[j] = NormCDF(x)
		}
	}
	sink = out[0]
	b.ReportMetric(float64(len(benchGrid)), "points/op")
}

func BenchmarkGammaIncPScalarLoop(b *testing.B) {
	out := make([]float64, len(benchGrid))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range benchGrid {
			out[j] = GammaIncP(2, x)
		}
	}
	sink = out[0]
	b.ReportMetric(float64(len(benchGrid)), "points/op")
}

func BenchmarkBetaIncRegScalarLoop(b *testing.B) {
	xs := make([]float64, len(benchGrid))
	out := make([]float64, len(benchGrid))
	for i := range xs {
		xs[i] = float64(i+1) / float64(len(xs)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			out[j] = BetaIncReg(2.5, 3.5, x)
		}
	}
	sink = out[0]
	b.ReportMetric(float64(len(benchGrid)), "points/op")
}

// Batch kernels over the same grids as the ScalarLoop references above;
// the ratio of the two is the hoisting + lockstep win.
func BenchmarkNormCDFBatch(b *testing.B) {
	out := make([]float64, len(benchGrid))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormCDFBatch(benchGrid, out)
	}
	sink = out[0]
	b.ReportMetric(float64(len(benchGrid)), "points/op")
}

func BenchmarkGammaIncPBatch(b *testing.B) {
	out := make([]float64, len(benchGrid))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GammaIncPBatch(2, benchGrid, out)
	}
	sink = out[0]
	b.ReportMetric(float64(len(benchGrid)), "points/op")
}

func BenchmarkBetaIncRegBatch(b *testing.B) {
	xs := make([]float64, len(benchGrid))
	out := make([]float64, len(benchGrid))
	for i := range xs {
		xs[i] = float64(i+1) / float64(len(xs)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BetaIncRegBatch(2.5, 3.5, xs, out)
	}
	sink = out[0]
	b.ReportMetric(float64(len(benchGrid)), "points/op")
}

// Guard: the benchmarks above must exercise finite values, or the
// timings measure NaN short-circuits instead of the kernels.
func TestBenchInputsFinite(t *testing.T) {
	for _, x := range benchGrid {
		if math.IsNaN(GammaIncP(2, x)) {
			t.Fatalf("benchGrid point %g yields NaN", x)
		}
	}
}
