package specfun

import "math"

// maxIncGammaIter bounds the series / continued-fraction loops. The
// classical bound of ~200 iterations is ample for a in (0, 1e8) at double
// precision; the functions return the best estimate if it is ever hit.
const maxIncGammaIter = 512

// GammaIncP returns the lower regularized incomplete gamma function
//
//	P(a, x) = gamma(a, x) / Gamma(a) = 1/Gamma(a) * Integral_0^x t^{a-1} e^{-t} dt
//
// for a > 0 and x >= 0. P(a, x) is the CDF at x of a Gamma(a, 1) random
// variable; GammaIncQ(n+1, lambda) is the survival function of a Poisson
// law. Invalid arguments yield NaN.
func GammaIncP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// GammaIncQ returns the upper regularized incomplete gamma function
// Q(a, x) = 1 - P(a, x), computed without cancellation in either tail.
func GammaIncQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// logPrefix returns a*ln(x) - x - lnGamma(a), the logarithm of the common
// prefactor x^a e^{-x} / Gamma(a).
func logPrefix(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	return a*math.Log(x) - x - lg
}

// gammaPSeries evaluates P(a, x) by the power series, convergent fastest
// for x < a+1.
func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIncGammaIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-17 {
			break
		}
	}
	v := sum * math.Exp(logPrefix(a, x))
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz-modified
// continued fraction, convergent fastest for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIncGammaIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-17 {
			break
		}
	}
	v := h * math.Exp(logPrefix(a, x))
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// GammaIncPInv returns the x solving P(a, x) = p, the quantile function of
// the Gamma(a, 1) law, for a > 0 and p in [0, 1]. It combines the
// Wilson–Hilferty starting value with safeguarded Newton iterations.
func GammaIncPInv(a, p float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(p) || a <= 0 || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}

	// Wilson–Hilferty approximation for the starting point.
	g := NormQuantile(p)
	t := 1 - 1/(9*a) + g/(3*math.Sqrt(a))
	x := a * t * t * t
	if x <= 0 {
		// Small-a fallback: invert the leading-order series
		// P(a,x) ~ x^a / (a*Gamma(a)).
		lg, _ := math.Lgamma(a + 1)
		x = math.Exp((math.Log(p) + lg) / a)
	}

	lo, hi := 0.0, math.Inf(1)
	for i := 0; i < 128; i++ {
		f := GammaIncP(a, x) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step using the density x^{a-1} e^{-x} / Gamma(a).
		dfdx := math.Exp((a-1)*math.Log(x) - x - lgammaOf(a))
		var xn float64
		if dfdx > 0 && !math.IsInf(dfdx, 0) {
			xn = x - f/dfdx
		} else {
			xn = math.NaN()
		}
		if !(xn > lo && xn < hi) {
			// Bisect within the bracket.
			if math.IsInf(hi, 1) {
				xn = x * 2
			} else {
				xn = 0.5 * (lo + hi)
			}
		}
		if math.Abs(xn-x) <= 1e-14*(1+math.Abs(x)) {
			return xn
		}
		x = xn
	}
	return x
}

func lgammaOf(a float64) float64 {
	lg, _ := math.Lgamma(a)
	return lg
}

// PoissonCDF returns P(N <= k) for N ~ Poisson(lambda), evaluated through
// the regularized incomplete gamma identity P(N <= k) = Q(k+1, lambda).
// k is truncated toward negative infinity; k < 0 yields 0.
func PoissonCDF(k float64, lambda float64) float64 {
	kf := math.Floor(k)
	if kf < 0 {
		return 0
	}
	if lambda == 0 {
		return 1
	}
	return GammaIncQ(kf+1, lambda)
}

// LogPoissonPMF returns log P(N = k) = -lambda + k*log(lambda) - log(k!)
// for N ~ Poisson(lambda) and integer k >= 0.
func LogPoissonPMF(k int, lambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return -lambda + float64(k)*math.Log(lambda) - lg
}
