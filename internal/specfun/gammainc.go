package specfun

import "math"

// maxIncGammaIter bounds the series / continued-fraction loops. The
// classical bound of ~200 iterations is ample for a in (0, 1e8) at double
// precision; the functions return the best estimate if it is ever hit.
const maxIncGammaIter = 512

// GammaIncP returns the lower regularized incomplete gamma function
//
//	P(a, x) = gamma(a, x) / Gamma(a) = 1/Gamma(a) * Integral_0^x t^{a-1} e^{-t} dt
//
// for a > 0 and x >= 0. P(a, x) is the CDF at x of a Gamma(a, 1) random
// variable; GammaIncQ(n+1, lambda) is the survival function of a Poisson
// law. Invalid arguments yield NaN.
func GammaIncP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	lg, _ := math.Lgamma(a)
	return gammaIncPPrefixed(a, x, lg)
}

// GammaIncQ returns the upper regularized incomplete gamma function
// Q(a, x) = 1 - P(a, x), computed without cancellation in either tail.
func GammaIncQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	lg, _ := math.Lgamma(a)
	return gammaIncQPrefixed(a, x, lg)
}

// gammaIncPPrefixed evaluates P(a, x) for a > 0 and finite x > 0, with
// lg = lnGamma(a) supplied by the caller so that batch kernels and the
// quantile Newton loop pay for Lgamma once per shape, not once per point.
func gammaIncPPrefixed(a, x, lg float64) float64 {
	prefix := math.Exp(a*math.Log(x) - x - lg)
	if x < a+1 {
		return Clamp01(gammaPSeriesSum(a, x) * prefix)
	}
	return 1 - Clamp01(gammaQCF(a, x)*prefix)
}

// gammaIncQPrefixed evaluates Q(a, x) for a > 0 and finite x > 0 with a
// caller-supplied lg = lnGamma(a), without cancellation in either tail.
func gammaIncQPrefixed(a, x, lg float64) float64 {
	prefix := math.Exp(a*math.Log(x) - x - lg)
	if x < a+1 {
		return 1 - Clamp01(gammaPSeriesSum(a, x)*prefix)
	}
	return Clamp01(gammaQCF(a, x) * prefix)
}

// gammaPSeriesSum evaluates the power series of P(a, x) without the
// x^a e^{-x} / Gamma(a) prefactor, convergent fastest for x < a+1.
//
// The four x/ap ratios of each chunk are computed up front: they are
// independent, so they overlap inside the hardware divider, and the
// serial del update chain then runs at multiply latency instead of
// divide latency. Each denominator is still built by repeated +1 and
// each term is still the two-operation del = del * (x/ap), so the sum
// is bit-identical to the one-term-at-a-time loop.
func gammaPSeriesSum(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIncGammaIter; i += 4 {
		ap1 := ap + 1
		ap2 := ap1 + 1
		ap3 := ap2 + 1
		ap4 := ap3 + 1
		r1 := x / ap1
		r2 := x / ap2
		r3 := x / ap3
		r4 := x / ap4
		ap = ap4
		del *= r1
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-17 {
			break
		}
		del *= r2
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-17 {
			break
		}
		del *= r3
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-17 {
			break
		}
		del *= r4
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-17 {
			break
		}
	}
	return sum
}

// gammaQCF evaluates the Lentz-modified continued fraction of Q(a, x)
// without the prefactor, convergent fastest for x >= a+1.
func gammaQCF(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIncGammaIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-17 {
			break
		}
	}
	return h
}

// GammaIncPInv returns the x solving P(a, x) = p, the quantile function of
// the Gamma(a, 1) law, for a > 0 and p in [0, 1]. It combines the
// Wilson–Hilferty starting value with safeguarded Newton iterations.
//
// Each Newton iteration shares one exp(a*ln(x) - x - lnGamma(a))
// evaluation between the CDF value and the density, with lnGamma(a)
// hoisted out of the loop entirely.
func GammaIncPInv(a, p float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(p) || a <= 0 || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return math.Inf(1)
	}

	// Wilson–Hilferty approximation for the starting point.
	g := NormQuantile(p)
	t := 1 - 1/(9*a) + g/(3*math.Sqrt(a))
	x := a * t * t * t
	if x <= 0 {
		// Small-a fallback: invert the leading-order series
		// P(a,x) ~ x^a / (a*Gamma(a)).
		lg1, _ := math.Lgamma(a + 1)
		x = math.Exp((math.Log(p) + lg1) / a)
	}

	lg, _ := math.Lgamma(a)
	lo, hi := 0.0, math.Inf(1)
	for i := 0; i < 128; i++ {
		// prefix = x^a e^{-x} / Gamma(a); the density is prefix/x.
		prefix := math.Exp(a*math.Log(x) - x - lg)
		var f float64
		if x < a+1 {
			f = Clamp01(gammaPSeriesSum(a, x)*prefix) - p
		} else {
			f = 1 - Clamp01(gammaQCF(a, x)*prefix) - p
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		dfdx := prefix / x
		var xn float64
		if dfdx > 0 && !math.IsInf(dfdx, 0) {
			// Halley step: with L = d(ln pdf)/dx = (a-1)/x - 1, the
			// second-order correction divides the Newton step u by
			// (1 + u*L/2). Cubic convergence saves a full series /
			// continued-fraction evaluation versus plain Newton; when
			// the correction factor is unsafe (<= 1/2), fall back to
			// the Newton step and let the bracket do its job.
			u := f / dfdx
			den := 1 - 0.5*u*((a-1)/x-1)
			if den > 0.5 {
				u /= den
			}
			xn = x - u
		} else {
			xn = math.NaN()
		}
		if !(xn > lo && xn < hi) {
			// Bisect within the bracket.
			if math.IsInf(hi, 1) {
				xn = x * 2
			} else {
				xn = 0.5 * (lo + hi)
			}
		}
		if math.Abs(xn-x) <= 1e-14*(1+math.Abs(x)) {
			return xn
		}
		x = xn
	}
	return x
}

// PoissonCDF returns P(N <= k) for N ~ Poisson(lambda), evaluated through
// the regularized incomplete gamma identity P(N <= k) = Q(k+1, lambda).
// k is truncated toward negative infinity; k < 0 yields 0.
func PoissonCDF(k float64, lambda float64) float64 {
	kf := math.Floor(k)
	if kf < 0 {
		return 0
	}
	if lambda == 0 {
		return 1
	}
	return GammaIncQ(kf+1, lambda)
}

// LogPoissonPMF returns log P(N = k) = -lambda + k*log(lambda) - log(k!)
// for N ~ Poisson(lambda) and integer k >= 0.
func LogPoissonPMF(k int, lambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return -lambda + float64(k)*math.Log(lambda) - lg
}
