package specfun

import "math"

const (
	invSqrt2   = 0.7071067811865475244008443621048490 // 1/sqrt(2)
	invSqrt2Pi = 0.3989422804014326779399460599343819 // 1/sqrt(2*pi)
	sqrt2      = 1.4142135623730950488016887242096981 // sqrt(2)
	ln2Pi      = 1.8378770664093454835606594728112353 // ln(2*pi)
)

// NormPDF returns the density of the standard Normal law at x.
func NormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// LogNormPDF returns the logarithm of the standard Normal density at x.
// It stays finite for |x| up to the overflow threshold of x*x.
func LogNormPDF(x float64) float64 {
	return -0.5*x*x - 0.5*ln2Pi
}

// NormCDF returns Phi(x), the standard Normal cumulative distribution
// function, evaluated through erfc for full relative accuracy in the left
// tail.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x*invSqrt2)
}

// NormSF returns the survival function 1 - Phi(x) with full relative
// accuracy in the right tail.
func NormSF(x float64) float64 {
	return 0.5 * math.Erfc(x*invSqrt2)
}

// LogNormCDF returns log(Phi(x)). For x >= -1 it evaluates the CDF
// directly; deeper in the left tail it uses an asymptotic expansion of the
// Mills ratio so the result remains finite down to x ~ -1e154.
func LogNormCDF(x float64) float64 {
	if x >= -1 {
		return math.Log(NormCDF(x))
	}
	// Phi(x) = phi(x)/|x| * (1 - 1/x^2 + 3/x^4 - 15/x^6 + ...), x -> -inf.
	// Use the continued-fraction-free truncated series with a safeguard:
	// for -38 < x < -1 the direct erfc path is still accurate because
	// math.Erfc has full relative accuracy, so prefer it while it is
	// representable.
	if x > -37.5 {
		return math.Log(0.5 * math.Erfc(-x*invSqrt2))
	}
	z := x * x
	// Asymptotic series for the Mills ratio correction.
	corr := 1 - 1/z + 3/(z*z) - 15/(z*z*z) + 105/(z*z*z*z)
	return LogNormPDF(x) - math.Log(-x) + math.Log(corr)
}

// LogNormSF returns log(1 - Phi(x)), accurate in the right tail.
func LogNormSF(x float64) float64 {
	return LogNormCDF(-x)
}

// NormCDFInterval returns Phi(hi) - Phi(lo) computed so that cancellation
// is avoided when both endpoints lie in the same tail.
func NormCDFInterval(lo, hi float64) float64 {
	if lo > hi {
		return 0
	}
	switch {
	case lo >= 0:
		// Both in the right tail: use survival functions.
		return NormSF(lo) - NormSF(hi)
	case hi <= 0:
		return NormCDF(hi) - NormCDF(lo)
	default:
		return NormCDF(hi) - NormCDF(lo)
	}
}

// normQuantileAcklam is Acklam's rational approximation to the standard
// Normal quantile, accurate to about 1.15e-9 before refinement.
func normQuantileAcklam(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}

// NormQuantile returns the standard Normal quantile Phi^{-1}(p) for
// p in (0, 1). It returns -Inf for p == 0, +Inf for p == 1, and NaN
// outside [0, 1]. The Acklam approximation is refined with one Halley step
// so the result is accurate to close to machine precision.
func NormQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	x := normQuantileAcklam(p)
	// One Halley refinement: e = Phi(x) - p; x <- x - e/(phi(x) + e*x/2)
	// expressed in the numerically convenient form below.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(0.5*x*x)
	x -= u / (1 + 0.5*x*u)
	return x
}
