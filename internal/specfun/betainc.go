package specfun

import "math"

// LogBeta returns log B(a, b) = lnGamma(a) + lnGamma(b) - lnGamma(a+b)
// for a, b > 0.
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// BetaIncReg returns the regularized incomplete beta function
//
//	I_x(a, b) = 1/B(a,b) * Integral_0^x t^{a-1} (1-t)^{b-1} dt
//
// for a, b > 0 and x in [0, 1] — the CDF at x of a Beta(a, b) random
// variable. Invalid arguments yield NaN.
func BetaIncReg(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) || a <= 0 || b <= 0 || x < 0 || x > 1:
		return math.NaN()
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)), computed in logs.
	logPre := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	if x < (a+1)/(a+b+2) {
		return Clamp01(math.Exp(logPre) * betaCF(a, b, x) / a)
	}
	return Clamp01(1 - math.Exp(logPre)*betaCF(b, a, 1-x)/b)
}

// betaCF evaluates the continued fraction of the incomplete beta
// function by the modified Lentz method (Numerical Recipes betacf).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 512
		tiny    = 1e-300
		eps     = 1e-16
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * float64(m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaIncRegInv returns the x in [0, 1] solving I_x(a, b) = p — the
// quantile function of the Beta(a, b) law — by bisection refined with
// safeguarded Newton steps.
func BetaIncRegInv(a, b, p float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(p) || a <= 0 || b <= 0 || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return 1
	}
	lo, hi := 0.0, 1.0
	x := a / (a + b) // start at the mean
	logB := LogBeta(a, b)
	for i := 0; i < 200; i++ {
		f := BetaIncReg(a, b, x) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step with the beta density.
		logPDF := (a-1)*math.Log(x) + (b-1)*math.Log1p(-x) - logB
		var xn float64
		if pdf := math.Exp(logPDF); pdf > 0 && !math.IsInf(pdf, 0) {
			xn = x - f/pdf
		} else {
			xn = math.NaN()
		}
		if !(xn > lo && xn < hi) {
			xn = 0.5 * (lo + hi)
		}
		if math.Abs(xn-x) <= 1e-15*(1+x) {
			return xn
		}
		x = xn
	}
	return x
}
