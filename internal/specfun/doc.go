// Package specfun provides the special mathematical functions required by
// the reservation-checkpointing analysis of Barbut et al. (FTXS'23), built
// exclusively on the Go standard library.
//
// The package covers four families:
//
//   - the standard Normal law: density Phi' (NormPDF), distribution
//     function Phi (NormCDF), its complement, logarithmic variants that are
//     accurate deep in the tails, and the quantile function (NormQuantile,
//     Wichura/Acklam style with a Halley refinement step);
//   - the Lambert W function on its principal branch (LambertW0), together
//     with a log-domain variant LambertWExpArg that evaluates W(e^y)
//     without overflow for arbitrarily large y — exactly the form that
//     appears in the optimal checkpoint instant for truncated Exponential
//     checkpoint durations;
//   - the regularized incomplete gamma functions P(a,x) and Q(a,x)
//     (series and continued-fraction evaluation), which provide the Gamma
//     and Poisson cumulative distribution functions used by the static
//     strategy of Section 4.2 of the paper;
//   - digamma and trigamma, needed for maximum-likelihood fitting of Gamma
//     task-duration laws from execution traces.
//
// All functions are pure, allocation-free and safe for concurrent use.
package specfun
