package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
	if math.IsNaN(want) {
		return
	}
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s: got %.17g, want %.17g (tol %g)", msg, got, want, tol)
	}
}

func TestNormPDFKnownValues(t *testing.T) {
	almostEq(t, NormPDF(0), 0.3989422804014327, 1e-15, "phi(0)")
	almostEq(t, NormPDF(1), 0.24197072451914337, 1e-15, "phi(1)")
	almostEq(t, NormPDF(-1), NormPDF(1), 1e-16, "phi symmetry")
	almostEq(t, NormPDF(3), 0.0044318484119380075, 1e-14, "phi(3)")
}

func TestNormCDFKnownValues(t *testing.T) {
	almostEq(t, NormCDF(0), 0.5, 1e-16, "Phi(0)")
	almostEq(t, NormCDF(1), 0.8413447460685429, 1e-14, "Phi(1)")
	almostEq(t, NormCDF(-1), 0.15865525393145705, 1e-14, "Phi(-1)")
	almostEq(t, NormCDF(1.959963984540054), 0.975, 1e-13, "Phi(z_.975)")
	almostEq(t, NormCDF(-6), 9.865876450376946e-10, 1e-12, "Phi(-6)")
}

func TestNormSFComplement(t *testing.T) {
	for _, x := range []float64{-8, -3, -1, 0, 0.5, 2, 7} {
		almostEq(t, NormSF(x), NormCDF(-x), 1e-15, "SF symmetry")
	}
}

func TestLogNormCDFDeepTail(t *testing.T) {
	// Reference: log Phi(-40) via Mills ratio, about -804.608...
	got := LogNormCDF(-40)
	// phi(-40)/40 * (1 - 1/1600 + ...) -> log = -800 - 0.5*ln(2pi) - ln 40 + log corr
	want := -0.5*40*40 - 0.5*ln2Pi - math.Log(40) + math.Log(1-1.0/1600+3.0/1600/1600-15.0/math.Pow(1600, 3))
	almostEq(t, got, want, 1e-12, "logPhi(-40)")
	if !math.IsInf(LogNormCDF(math.Inf(-1)), -1) && LogNormCDF(-1e10) > -1e19 {
		t.Fatalf("deep tail should be hugely negative")
	}
}

func TestLogNormCDFMatchesDirect(t *testing.T) {
	for _, x := range []float64{-37, -20, -5, -1.5, -0.5, 0, 1, 4, 10} {
		almostEq(t, LogNormCDF(x), math.Log(NormCDF(x)), 1e-12, "logPhi consistency")
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	almostEq(t, NormQuantile(0.5), 0, 1e-15, "q(0.5)")
	almostEq(t, NormQuantile(0.975), 1.959963984540054, 1e-12, "q(0.975)")
	almostEq(t, NormQuantile(0.025), -1.959963984540054, 1e-12, "q(0.025)")
	almostEq(t, NormQuantile(0.8413447460685429), 1, 1e-12, "q(Phi(1))")
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatalf("quantile endpoints must be infinite")
	}
	if !math.IsNaN(NormQuantile(-0.1)) || !math.IsNaN(NormQuantile(1.1)) {
		t.Fatalf("quantile outside [0,1] must be NaN")
	}
}

func TestNormQuantileRoundTripProperty(t *testing.T) {
	f := func(u float64) bool {
		p := math.Abs(math.Mod(u, 1)) // p in [0,1)
		if p == 0 {
			p = 0.5
		}
		x := NormQuantile(p)
		back := NormCDF(x)
		return math.Abs(back-p) <= 1e-12*(1+p) || (p < 1e-300)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return NormCDF(lo) <= NormCDF(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCDFInterval(t *testing.T) {
	almostEq(t, NormCDFInterval(-1, 1), 0.6826894921370859, 1e-13, "68-95 rule")
	almostEq(t, NormCDFInterval(5, 6), NormSF(5)-NormSF(6), 1e-15, "right tail")
	if NormCDFInterval(2, 1) != 0 {
		t.Fatalf("reversed interval must be 0")
	}
	// Deep right tail must not cancel to zero.
	if NormCDFInterval(10, 11) <= 0 {
		t.Fatalf("deep right tail interval lost to cancellation")
	}
}
