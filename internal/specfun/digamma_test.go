package specfun

import (
	"math"
	"testing"
	"testing/quick"
)

const eulerGamma = 0.5772156649015328606065120900824024

func TestDigammaKnownValues(t *testing.T) {
	almostEq(t, Digamma(1), -eulerGamma, 1e-13, "psi(1)")
	almostEq(t, Digamma(2), 1-eulerGamma, 1e-13, "psi(2)")
	almostEq(t, Digamma(0.5), -eulerGamma-2*math.Ln2, 1e-13, "psi(1/2)")
	almostEq(t, Digamma(10), 2.251752589066721107647456163885851, 1e-13, "psi(10)")
}

func TestDigammaRecurrenceProperty(t *testing.T) {
	// psi(x+1) = psi(x) + 1/x.
	f := func(u float64) bool {
		x := 0.05 + math.Abs(math.Mod(u, 50))
		return math.Abs(Digamma(x+1)-Digamma(x)-1/x) <= 1e-11*(1+math.Abs(Digamma(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDigammaPoles(t *testing.T) {
	for _, x := range []float64{0, -1, -2, -7} {
		if !math.IsNaN(Digamma(x)) {
			t.Fatalf("psi(%g) should be NaN (pole)", x)
		}
	}
}

func TestDigammaReflection(t *testing.T) {
	// psi(1-x) - psi(x) = pi cot(pi x).
	for _, x := range []float64{0.25, 0.4, 0.75} {
		lhs := Digamma(1-x) - Digamma(x)
		rhs := math.Pi / math.Tan(math.Pi*x)
		almostEq(t, lhs, rhs, 1e-11, "digamma reflection")
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	almostEq(t, Trigamma(1), math.Pi*math.Pi/6, 1e-12, "psi'(1)")
	almostEq(t, Trigamma(0.5), math.Pi*math.Pi/2, 1e-12, "psi'(1/2)")
	almostEq(t, Trigamma(2), math.Pi*math.Pi/6-1, 1e-12, "psi'(2)")
}

func TestTrigammaRecurrenceProperty(t *testing.T) {
	// psi'(x+1) = psi'(x) - 1/x^2.
	f := func(u float64) bool {
		x := 0.05 + math.Abs(math.Mod(u, 50))
		return math.Abs(Trigamma(x+1)-Trigamma(x)+1/(x*x)) <= 1e-10*(1+Trigamma(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTrigammaIsDigammaDerivative(t *testing.T) {
	for _, x := range []float64{0.7, 1.5, 3, 12} {
		h := 1e-5
		num := (Digamma(x+h) - Digamma(x-h)) / (2 * h)
		almostEq(t, Trigamma(x), num, 1e-5, "psi' numeric check")
	}
}
