package specfun

import "math"

// eInv is 1/e, the negated branch point of the Lambert W function.
const eInv = 0.36787944117144232159552377016146087

// LambertW0 returns the principal branch W0 of the Lambert W function:
// the solution w >= -1 of w*exp(w) = z, defined for z >= -1/e.
// It returns NaN for z < -1/e (up to a small tolerance around the branch
// point, where -1 is returned).
//
// The optimal checkpoint instant under a truncated Exponential checkpoint
// law (Section 3.2.2 of the paper) is
//
//	X_opt = min( (lambda*R + 1 - W0(exp(-lambda*a + lambda*R + 1))) / lambda, b ).
//
// For that use case prefer LambertWExpArg, which avoids overflow of the
// exponential argument.
func LambertW0(z float64) float64 {
	switch {
	case math.IsNaN(z):
		return math.NaN()
	case math.IsInf(z, 1):
		return math.Inf(1)
	case z < -eInv:
		if z > -eInv-1e-12 {
			return -1
		}
		return math.NaN()
	case z == 0:
		return 0
	}

	// Initial guess.
	var w float64
	switch {
	case z < -0.32358170806015724: // close-ish to the branch point -1/e
		// Series around the branch point in p = sqrt(2(e z + 1)).
		p := math.Sqrt(2 * (math.E*z + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case z < 0.5:
		// Series guess near zero: W ~ z (1 - z + 3/2 z^2 ...).
		w = z * (1 - z + 1.5*z*z)
	case z < 2*math.E:
		// ln(1+z) is within a few percent of W on this range and keeps
		// the asymptotic guess (which needs ln ln z > 0) out of trouble.
		w = math.Log(1 + z)
	default:
		// Asymptotic guess: W ~ ln z - ln ln z.
		l1 := math.Log(z)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}

	return halleyW(w, z)
}

// halleyW runs Halley iterations for w*e^w = z starting from w0.
func halleyW(w, z float64) float64 {
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - z
		if f == 0 {
			return w
		}
		wp1 := w + 1
		denom := ew*wp1 - (w+2)*f/(2*wp1)
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-16*(1+math.Abs(w)) {
			return w
		}
	}
	return w
}

// LambertWExpArg returns W0(exp(y)) for any real y, without forming
// exp(y). For w > 0 this is the unique solution of w + log(w) = y; the
// function remains accurate for y as large as 1e300 where exp(y)
// overflows, and falls back to LambertW0(exp(y)) when y is small enough
// for the direct evaluation to be exact.
func LambertWExpArg(y float64) float64 {
	if math.IsNaN(y) {
		return math.NaN()
	}
	if math.IsInf(y, 1) {
		return math.Inf(1)
	}
	// exp(y) is representable and the direct path is well-conditioned.
	if y < 700 {
		return LambertW0(math.Exp(y))
	}
	// Solve w + ln(w) = y by Newton, starting at the two-term asymptote.
	// For y >= 700 convergence takes a handful of iterations.
	w := y - math.Log(y)
	for i := 0; i < 64; i++ {
		f := w + math.Log(w) - y
		dw := f / (1 + 1/w)
		w -= dw
		if math.Abs(dw) <= 1e-16*(1+math.Abs(w)) {
			break
		}
	}
	return w
}
