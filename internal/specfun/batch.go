package specfun

import "math"

// Batch kernels.
//
// Every function here writes f(xs[i]) into out[i] for all i and produces
// results bit-identical to calling the scalar function per element; the
// conformance tests in batch_test.go enforce equality at 0 ulps. xs and
// out may be the same slice: each element of xs is read before the
// corresponding out element is written, and lockstep lanes operate on
// copies.
//
// The speedup comes from hoisting per-shape work out of the per-point
// loop — lnGamma(a) for the incomplete gamma, LogBeta(a, b) for the
// incomplete beta — and from running the gamma power-series inner loop
// four points at a time so the independent divide/multiply chains
// overlap in the pipeline. The lockstep lanes execute exactly the scalar
// operation sequence per lane (including the del *= x/ap division and
// the per-lane termination test), which is what keeps them bit-identical.

// NormPDFBatch writes the standard Normal density at each xs[i] into
// out[i].
func NormPDFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = invSqrt2Pi * math.Exp(-0.5*x*x)
	}
}

// NormCDFBatch writes Phi(xs[i]) into out[i].
func NormCDFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = 0.5 * math.Erfc(-x*invSqrt2)
	}
}

// NormSFBatch writes 1 - Phi(xs[i]) into out[i] with full relative
// accuracy in the right tail.
func NormSFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = 0.5 * math.Erfc(x*invSqrt2)
	}
}

// seriesLanes is the lockstep width of the gamma power-series kernel.
// Four independent del *= x/ap chains are enough to cover the divider
// latency on current cores; wider would spill the lane state.
const seriesLanes = 4

// GammaIncPBatch writes P(a, xs[i]) into out[i]. lnGamma(a) is computed
// once, and series-branch points are evaluated in lockstep lanes.
func GammaIncPBatch(a float64, xs, out []float64) {
	gammaIncBatch(a, xs, out, false)
}

// GammaIncQBatch writes Q(a, xs[i]) = 1 - P(a, xs[i]) into out[i],
// computed without cancellation in either tail.
func GammaIncQBatch(a float64, xs, out []float64) {
	gammaIncBatch(a, xs, out, true)
}

// gammaIncBatch is the shared engine of GammaIncPBatch / GammaIncQBatch.
// upper selects Q instead of P. Points on the continued-fraction branch
// (x >= a+1) and special cases are resolved as they are scanned;
// series-branch points accumulate into lanes and run in lockstep once a
// group fills (or at end of input).
func gammaIncBatch(a float64, xs, out []float64, upper bool) {
	if math.IsNaN(a) || a <= 0 {
		for i := range xs {
			out[i] = math.NaN()
		}
		return
	}
	lg, _ := math.Lgamma(a)
	var lane [seriesLanes]int
	var lx [seriesLanes]float64
	k := 0
	flush := func() {
		if k == 0 {
			return
		}
		var sums [seriesLanes]float64
		if k == 1 {
			sums[0] = gammaPSeriesSum(a, lx[0])
		} else {
			gammaPSeriesSumLanes(a, &lx, &sums, k)
		}
		for j := 0; j < k; j++ {
			x := lx[j]
			p := Clamp01(sums[j] * math.Exp(a*math.Log(x)-x-lg))
			if upper {
				p = 1 - p
			}
			out[lane[j]] = p
		}
		k = 0
	}
	for i, x := range xs {
		switch {
		case math.IsNaN(x) || x < 0:
			out[i] = math.NaN()
		case x == 0:
			if upper {
				out[i] = 1
			} else {
				out[i] = 0
			}
		case math.IsInf(x, 1):
			if upper {
				out[i] = 0
			} else {
				out[i] = 1
			}
		case x >= a+1:
			q := Clamp01(gammaQCF(a, x) * math.Exp(a*math.Log(x)-x-lg))
			if upper {
				out[i] = q
			} else {
				out[i] = 1 - q
			}
		default:
			lane[k] = i
			lx[k] = x
			k++
			if k == seriesLanes {
				flush()
			}
		}
	}
	flush()
}

// gammaPSeriesSumLanes runs k (2..seriesLanes) power-series sums in
// lockstep. Each lane follows exactly the scalar gammaPSeriesSum
// operation sequence — same division by ap, same termination test
// applied per lane, lanes freezing independently — so every sums[j] is
// bit-identical to gammaPSeriesSum(a, lx[j]).
func gammaPSeriesSumLanes(a float64, lx *[seriesLanes]float64, sums *[seriesLanes]float64, k int) {
	first := 1.0 / a
	var del [seriesLanes]float64
	var done [seriesLanes]bool
	for j := 0; j < k; j++ {
		sums[j] = first
		del[j] = first
	}
	for j := k; j < seriesLanes; j++ {
		done[j] = true
	}
	live := k
	ap := a
	for i := 0; i < maxIncGammaIter && live > 0; i++ {
		ap++
		for j := 0; j < seriesLanes; j++ {
			if done[j] {
				continue
			}
			del[j] *= lx[j] / ap
			sums[j] += del[j]
			if math.Abs(del[j]) < math.Abs(sums[j])*1e-17 {
				done[j] = true
				live--
			}
		}
	}
}

// BetaIncRegBatch writes I_x(a, b) at each xs[i] into out[i], hoisting
// the three-Lgamma LogBeta(a, b) term and the branch threshold out of
// the per-point loop.
func BetaIncRegBatch(a, b float64, xs, out []float64) {
	if math.IsNaN(a) || math.IsNaN(b) || a <= 0 || b <= 0 {
		for i := range xs {
			out[i] = math.NaN()
		}
		return
	}
	logB := LogBeta(a, b)
	thresh := (a + 1) / (a + b + 2)
	for i, x := range xs {
		switch {
		case math.IsNaN(x) || x < 0 || x > 1:
			out[i] = math.NaN()
		case x == 0:
			out[i] = 0
		case x == 1:
			out[i] = 1
		default:
			logPre := a*math.Log(x) + b*math.Log1p(-x) - logB
			if x < thresh {
				out[i] = Clamp01(math.Exp(logPre) * betaCF(a, b, x) / a)
			} else {
				out[i] = Clamp01(1 - math.Exp(logPre)*betaCF(b, a, 1-x)/b)
			}
		}
	}
}
