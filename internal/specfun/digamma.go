package specfun

import "math"

// Digamma returns psi(x), the logarithmic derivative of the Gamma
// function, for x > 0. Values at non-positive integers are poles and
// return NaN; other negative arguments use the reflection formula.
//
// Digamma drives the Newton iteration in Gamma maximum-likelihood fitting
// of task-duration traces (internal/trace).
func Digamma(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		if x == math.Floor(x) {
			return math.NaN() // pole
		}
		// Reflection: psi(1-x) - psi(x) = pi*cot(pi*x).
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	var acc float64
	// Recurrence psi(x) = psi(x+1) - 1/x until x is large enough for the
	// asymptotic series.
	for x < 12 {
		acc -= 1 / x
		x++
	}
	// Asymptotic expansion: ln x - 1/(2x) - sum B_{2n}/(2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	series := inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132-inv2*(691.0/32760))))))
	return acc + math.Log(x) - 0.5*inv - series
}

// Trigamma returns psi'(x), the derivative of Digamma, for x > 0.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		if x == math.Floor(x) {
			return math.NaN()
		}
		// Reflection: psi'(1-x) + psi'(x) = pi^2 / sin^2(pi*x).
		s := math.Sin(math.Pi * x)
		return math.Pi*math.Pi/(s*s) - Trigamma(1-x)
	}
	var acc float64
	for x < 12 {
		acc += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// 1/x + 1/(2x^2) + sum B_{2n}/x^{2n+1}.
	series := inv * (1 + inv*(0.5+inv*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2*(1.0/30-inv2*(5.0/66)))))))
	return acc + series
}
