package specfun

import "math"

// LogSumExp returns log(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogDiffExp returns log(exp(a) - exp(b)) for a >= b, without overflow and
// without cancellation when a and b are close. It returns -Inf when a==b
// and NaN when a < b.
func LogDiffExp(a, b float64) float64 {
	if a < b {
		return math.NaN()
	}
	if a == b {
		return math.Inf(-1)
	}
	if math.IsInf(b, -1) {
		return a
	}
	return a + Log1mExp(b-a)
}

// Log1mExp returns log(1 - exp(x)) for x <= 0, using the two-branch
// algorithm of Mächler (2012) for full accuracy near 0 and -inf.
func Log1mExp(x float64) float64 {
	if x > 0 {
		return math.NaN()
	}
	if x == 0 {
		return math.Inf(-1)
	}
	const ln2 = 0.6931471805599453
	if x > -ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// Clamp01 clips v into [0, 1]; probabilities assembled from differences of
// CDF evaluations can stray out of range by a rounding error.
func Clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
