package dist

import (
	"math"
	"strings"
	"testing"

	"reskit/internal/rng"
)

func TestUniformBasics(t *testing.T) {
	u := NewUniform(1, 7.5)
	if u.Mean() != 4.25 {
		t.Errorf("mean %g", u.Mean())
	}
	if math.Abs(u.Variance()-6.5*6.5/12) > 1e-15 {
		t.Errorf("variance %g", u.Variance())
	}
	if u.CDF(1) != 0 || u.CDF(7.5) != 1 || math.Abs(u.CDF(4.25)-0.5) > 1e-15 {
		t.Errorf("CDF wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("NewUniform(2,2) must panic")
		}
	}()
	NewUniform(2, 2)
}

func TestExponentialSumIIDIsGamma(t *testing.T) {
	e := NewExponential(2)
	s := e.SumIID(3)
	g, ok := s.(Gamma)
	if !ok {
		t.Fatalf("SumIID not Gamma: %T", s)
	}
	if g.K != 3 || g.Theta != 0.5 {
		t.Errorf("got %v", g)
	}
	// n=1 must coincide with the Exponential itself.
	s1 := e.SumIID(1)
	for _, x := range []float64{0.1, 0.5, 2, 5} {
		if math.Abs(s1.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("SumIID(1) mismatch at %g", x)
		}
	}
}

func TestNormalSumIID(t *testing.T) {
	n := NewNormal(3, 0.5)
	s := n.SumIID(7).(Normal)
	if math.Abs(s.Mu-21) > 1e-12 || math.Abs(s.Sigma-0.5*math.Sqrt(7)) > 1e-12 {
		t.Errorf("got %v", s)
	}
}

func TestGammaSumIID(t *testing.T) {
	g := NewGamma(1, 0.5)
	s := g.SumIID(11.8).(Gamma)
	if math.Abs(s.K-11.8) > 1e-12 || s.Theta != 0.5 {
		t.Errorf("got %v", s)
	}
}

func TestPoissonSumIID(t *testing.T) {
	p := NewPoisson(3)
	s := p.SumIID(5.98).(Poisson)
	if math.Abs(s.Lambda-17.94) > 1e-12 {
		t.Errorf("got %v", s)
	}
}

func TestPoissonPMFAndCDF(t *testing.T) {
	p := NewPoisson(3)
	sum := 0.0
	for k := 0; k <= 30; k++ {
		pm := p.PMF(k)
		if pm < 0 {
			t.Fatalf("negative PMF")
		}
		sum += pm
		if math.Abs(p.CDF(float64(k))-sum) > 1e-10 {
			t.Errorf("CDF(%d) = %g, partial sum %g", k, p.CDF(float64(k)), sum)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %g", sum)
	}
	if p.PMF(-1) != 0 {
		t.Errorf("PMF(-1) nonzero")
	}
	// Sampling moments.
	r := rng.New(7)
	var m float64
	const n = 200000
	for i := 0; i < n; i++ {
		m += float64(p.Sample(r))
	}
	m /= n
	if math.Abs(m-3) > 0.03 {
		t.Errorf("sample mean %g", m)
	}
}

func TestDeterministic(t *testing.T) {
	d := NewDeterministic(4.2)
	if d.Mean() != 4.2 || d.Variance() != 0 {
		t.Errorf("moments wrong")
	}
	if d.CDF(4.19) != 0 || d.CDF(4.2) != 1 {
		t.Errorf("CDF step wrong")
	}
	if d.Quantile(0.3) != 4.2 {
		t.Errorf("quantile wrong")
	}
	r := rng.New(1)
	if d.Sample(r) != 4.2 {
		t.Errorf("sample wrong")
	}
	s := d.SumIID(3).(Deterministic)
	if math.Abs(s.Value-12.6) > 1e-12 {
		t.Errorf("SumIID wrong: %v", s)
	}
}

func TestTruncatedMatchesPaperCDF(t *testing.T) {
	// Section 3.1: F_C(x) = (F(x)-F(a)) / (F(b)-F(a)).
	base := NewExponential(0.5)
	a, b := 1.0, 5.0
	tr := Truncate(base, a, b)
	for _, x := range []float64{1, 1.5, 2.5, 4, 5} {
		want := (base.CDF(x) - base.CDF(a)) / (base.CDF(b) - base.CDF(a))
		if math.Abs(tr.CDF(x)-want) > 1e-12 {
			t.Errorf("CDF(%g): got %g want %g", x, tr.CDF(x), want)
		}
	}
	lo, hi := tr.Support()
	if lo != a || hi != b {
		t.Errorf("support [%g,%g]", lo, hi)
	}
}

func TestTruncatedNormalHalfLine(t *testing.T) {
	// N(mu, sigma^2) truncated to [0, inf) with mu >> sigma is nearly the
	// untruncated law.
	base := NewNormal(5, 0.4)
	tr := Truncate(base, 0, math.Inf(1))
	if math.Abs(tr.Mean()-5) > 1e-6 {
		t.Errorf("mean %g", tr.Mean())
	}
	if math.Abs(tr.Variance()-0.16) > 1e-6 {
		t.Errorf("variance %g", tr.Variance())
	}
	// Known closed form for the truncated-normal mean with mu=0:
	// E = sigma * sqrt(2/pi) for truncation to [0, inf).
	tr0 := Truncate(NewNormal(0, 1), 0, math.Inf(1))
	if math.Abs(tr0.Mean()-math.Sqrt(2/math.Pi)) > 1e-8 {
		t.Errorf("half-normal mean %g want %g", tr0.Mean(), math.Sqrt(2/math.Pi))
	}
}

func TestTruncatedZeroMassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("zero-mass truncation must panic")
		}
	}()
	Truncate(NewUniform(0, 1), 5, 6)
}

func TestTruncatedSamplesInsideBounds(t *testing.T) {
	tr := Truncate(NewNormal(3.5, 1), 1, 6)
	r := rng.New(99)
	for i := 0; i < 50000; i++ {
		x := tr.Sample(r)
		if x < 1 || x > 6 {
			t.Fatalf("sample %g outside [1,6]", x)
		}
	}
}

func TestEmpiricalBasics(t *testing.T) {
	sample := []float64{3, 1, 2, 4, 5}
	e := NewEmpirical(sample)
	if e.Len() != 5 {
		t.Errorf("Len %d", e.Len())
	}
	if e.Mean() != 3 {
		t.Errorf("mean %g", e.Mean())
	}
	if math.Abs(e.Variance()-2.5) > 1e-12 {
		t.Errorf("variance %g", e.Variance())
	}
	if e.CDF(0.9) != 0 || e.CDF(5) != 1 || math.Abs(e.CDF(3)-0.5) > 1e-12 {
		t.Errorf("CDF wrong: %g %g %g", e.CDF(0.9), e.CDF(5), e.CDF(3))
	}
	// Quantile round trip on the grid.
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		x := e.Quantile(p)
		if math.Abs(e.CDF(x)-p) > 1e-12 {
			t.Errorf("round trip at p=%g: x=%g CDF=%g", p, x, e.CDF(x))
		}
	}
	// Sampling stays within support.
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		x := e.Sample(r)
		if x < 1 || x > 5 {
			t.Fatalf("sample %g outside [1,5]", x)
		}
	}
}

func TestEmpiricalMatchesSourceLaw(t *testing.T) {
	// Empirical law of a large Normal sample must approximate the Normal.
	src := NewNormal(10, 2)
	r := rng.New(3)
	sample := make([]float64, 40000)
	for i := range sample {
		sample[i] = src.Sample(r)
	}
	e := NewEmpirical(sample)
	if math.Abs(e.Mean()-10) > 0.05 {
		t.Errorf("mean %g", e.Mean())
	}
	for _, x := range []float64{7, 9, 10, 11, 13} {
		if math.Abs(e.CDF(x)-src.CDF(x)) > 0.01 {
			t.Errorf("CDF(%g): %g vs %g", x, e.CDF(x), src.CDF(x))
		}
	}
}

func TestStringerOutputs(t *testing.T) {
	cases := []struct {
		d    interface{ String() string }
		want string
	}{
		{NewUniform(1, 2), "Uniform"},
		{NewExponential(1), "Exponential"},
		{NewNormal(0, 1), "Normal"},
		{NewLogNormal(0, 1), "LogNormal"},
		{NewGamma(1, 1), "Gamma"},
		{NewWeibull(1, 1), "Weibull"},
		{NewPoisson(1), "Poisson"},
		{NewDeterministic(1), "Deterministic"},
		{Truncate(NewNormal(0, 1), -1, 1), "Normal"},
	}
	for _, c := range cases {
		if !strings.Contains(c.d.String(), c.want) {
			t.Errorf("String %q does not mention %q", c.d.String(), c.want)
		}
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	l := NewLogNormalFromMoments(3, 1.2)
	if math.Abs(l.Mean()-3) > 1e-10 {
		t.Errorf("mean %g", l.Mean())
	}
	if math.Abs(math.Sqrt(l.Variance())-1.2) > 1e-10 {
		t.Errorf("stddev %g", math.Sqrt(l.Variance()))
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0) },
		func() { NewExponential(-1) },
		func() { NewNormal(math.NaN(), 1) },
		func() { NewNormal(0, 0) },
		func() { NewLogNormal(0, -1) },
		func() { NewGamma(0, 1) },
		func() { NewGamma(1, 0) },
		func() { NewWeibull(-1, 1) },
		func() { NewPoisson(0) },
		func() { NewDeterministic(math.Inf(1)) },
		func() { NewEmpirical([]float64{1}) },
		func() { NewEmpirical([]float64{1, math.NaN()}) },
		func() { Truncate(NewNormal(0, 1), 2, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDiscreteQuantile(t *testing.T) {
	p := NewPoisson(3)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.999} {
		k := DiscreteQuantile(p, q)
		if p.CDF(float64(k)) < q {
			t.Errorf("q=%g: CDF(%d) = %g < q", q, k, p.CDF(float64(k)))
		}
		if k > 0 && p.CDF(float64(k-1)) >= q {
			t.Errorf("q=%g: %d not minimal", q, k)
		}
	}
	if DiscreteQuantile(p, 0) != 0 || DiscreteQuantile(p, -1) != 0 {
		t.Errorf("non-positive p should give 0")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("p > 1 must panic")
		}
	}()
	DiscreteQuantile(p, 1.5)
}
