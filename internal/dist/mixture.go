package dist

import (
	"fmt"
	"math"
	"strings"

	"reskit/internal/rng"
)

// Mixture is a finite mixture of continuous laws. Checkpoint-duration
// traces are frequently bimodal — a fast mode when the parallel file
// system is idle and a slow mode under contention — and a two-component
// Normal mixture truncated to [a, b] captures that while remaining fully
// usable by the generic preemptible optimizer.
type Mixture struct {
	components []Continuous
	weights    []float64
	cumWeights []float64
	mean       float64
	variance   float64
}

// NewMixture builds the mixture of the given components with the given
// positive weights (normalized internally). At least one component is
// required and the slices must have equal length.
func NewMixture(components []Continuous, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic(fmt.Sprintf("dist: Mixture requires matching non-empty components/weights, got %d/%d",
			len(components), len(weights)))
	}
	var total float64
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
			panic(fmt.Sprintf("dist: Mixture weight %d must be positive and finite, got %g", i, w))
		}
		if components[i] == nil {
			panic(fmt.Sprintf("dist: Mixture component %d is nil", i))
		}
		total += w
	}
	m := &Mixture{
		components: append([]Continuous(nil), components...),
		weights:    make([]float64, len(weights)),
		cumWeights: make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cumWeights[i] = acc
	}
	// Moments: E[X] = sum w_i mu_i; E[X^2] = sum w_i (var_i + mu_i^2).
	var m1, m2 float64
	for i, c := range m.components {
		mu := c.Mean()
		m1 += m.weights[i] * mu
		m2 += m.weights[i] * (c.Variance() + mu*mu)
	}
	m.mean = m1
	m.variance = m2 - m1*m1
	if m.variance < 0 {
		m.variance = 0
	}
	return m
}

func (m *Mixture) String() string {
	parts := make([]string, len(m.components))
	for i, c := range m.components {
		parts[i] = fmt.Sprintf("%.3g*%v", m.weights[i], c)
	}
	return "Mixture(" + strings.Join(parts, " + ") + ")"
}

// PDF returns the weighted component density.
func (m *Mixture) PDF(x float64) float64 {
	var s float64
	for i, c := range m.components {
		s += m.weights[i] * c.PDF(x)
	}
	return s
}

// LogPDF returns log(PDF(x)).
func (m *Mixture) LogPDF(x float64) float64 {
	p := m.PDF(x)
	if p == 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// CDF returns the weighted component CDF.
func (m *Mixture) CDF(x float64) float64 {
	var s float64
	for i, c := range m.components {
		s += m.weights[i] * c.CDF(x)
	}
	return s
}

// Quantile inverts the CDF by bisection over the mixture support.
func (m *Mixture) Quantile(p float64) float64 {
	lo, hi := m.Support()
	return quantileBisect(m.CDF, lo, hi, p)
}

// Mean returns the mixture mean.
func (m *Mixture) Mean() float64 { return m.mean }

// Variance returns the mixture variance.
func (m *Mixture) Variance() float64 { return m.variance }

// Support returns the union bounds of the component supports.
func (m *Mixture) Support() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.components {
		cl, ch := c.Support()
		lo = math.Min(lo, cl)
		hi = math.Max(hi, ch)
	}
	return lo, hi
}

// Sample picks a component by weight and samples it.
func (m *Mixture) Sample(r *rng.Source) float64 {
	u := r.Float64()
	for i, cw := range m.cumWeights {
		if u <= cw {
			return m.components[i].Sample(r)
		}
	}
	return m.components[len(m.components)-1].Sample(r)
}
