package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
	"reskit/internal/specfun"
)

// Gamma is the Gamma law with shape K and scale Theta on [0, inf). It
// models task durations in Sections 4.2.2 and 4.3.2 of the paper; the sum
// of n IID Gamma(k, theta) variables is Gamma(nk, theta), which is what
// makes the static strategy tractable.
type Gamma struct {
	K     float64 // shape
	Theta float64 // scale
}

// NewGamma returns Gamma(shape k, scale theta), both positive.
func NewGamma(k, theta float64) Gamma {
	validatePositive("shape k", "Gamma", k)
	validatePositive("scale theta", "Gamma", theta)
	return Gamma{K: k, Theta: theta}
}

func (g Gamma) String() string { return fmt.Sprintf("Gamma(k=%g, theta=%g)", g.K, g.Theta) }

// PDF returns x^{k-1} e^{-x/theta} / (Gamma(k) theta^k) for x >= 0.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.K < 1:
			return math.Inf(1)
		case g.K == 1:
			return 1 / g.Theta
		default:
			return 0
		}
	}
	return math.Exp(g.LogPDF(x))
}

// LogPDF returns log(PDF(x)).
func (g Gamma) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	if x == 0 {
		switch {
		case g.K < 1:
			return math.Inf(1)
		case g.K == 1:
			return -math.Log(g.Theta)
		default:
			return math.Inf(-1)
		}
	}
	lg, _ := math.Lgamma(g.K)
	return (g.K-1)*math.Log(x) - x/g.Theta - lg - g.K*math.Log(g.Theta)
}

// CDF returns the regularized incomplete gamma P(k, x/theta).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return specfun.GammaIncP(g.K, x/g.Theta)
}

// Quantile inverts the CDF.
func (g Gamma) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return g.Theta * specfun.GammaIncPInv(g.K, p)
}

// Mean returns k*theta.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

// Variance returns k*theta^2.
func (g Gamma) Variance() float64 { return g.K * g.Theta * g.Theta }

// Support returns [0, inf).
func (g Gamma) Support() (float64, float64) { return 0, math.Inf(1) }

// Sample draws a variate by the Marsaglia–Tsang method.
func (g Gamma) Sample(r *rng.Source) float64 { return r.Gamma(g.K, g.Theta) }

// SumIID returns Gamma(y*k, theta), the law of the sum of y IID copies
// (Section 4.2.2), valid for any real y > 0.
func (g Gamma) SumIID(y float64) Continuous {
	validatePositive("y", "Gamma.SumIID", y)
	return Gamma{K: y * g.K, Theta: g.Theta}
}
