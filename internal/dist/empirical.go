package dist

import (
	"fmt"
	"math"
	"sort"

	"reskit/internal/rng"
)

// Empirical is the empirical distribution of a sample: the law that puts
// mass 1/n on each observation, with a piecewise-linear CDF between order
// statistics. The paper's introduction notes that the checkpoint-duration
// law "can be learned from traces of previous checkpoints"; Empirical is
// the model-free way to do so (see internal/trace for parametric fits).
type Empirical struct {
	sorted []float64
	mean   float64
	varce  float64
}

// NewEmpirical builds the empirical law of the given sample (at least two
// observations, all finite). The input slice is copied.
func NewEmpirical(sample []float64) *Empirical {
	if len(sample) < 2 {
		panic("dist: Empirical requires at least 2 observations")
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("dist: Empirical: non-finite observation %g", v))
		}
	}
	sort.Float64s(s)
	var m, m2 float64
	for i, x := range s {
		n := float64(i + 1)
		d := x - m
		// x - m can overflow for extreme (but finite) samples whose mean
		// is itself representable; update the mean via scaled terms. The
		// variance saturates to +Inf in that regime — it genuinely
		// exceeds the float64 range — but must not become NaN.
		m += x/n - m/n
		if math.IsInf(d, 0) {
			m2 = math.Inf(1)
		} else {
			m2 += d * (x - m)
		}
	}
	return &Empirical{sorted: s, mean: m, varce: m2 / float64(len(s)-1)}
}

func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, [%g, %g])", len(e.sorted), e.sorted[0], e.sorted[len(e.sorted)-1])
}

// Len returns the number of observations.
func (e *Empirical) Len() int { return len(e.sorted) }

// PDF returns the density of the piecewise-linear CDF (a histogram-like
// step density between adjacent order statistics).
func (e *Empirical) PDF(x float64) float64 {
	n := len(e.sorted)
	if x < e.sorted[0] || x > e.sorted[n-1] {
		return 0
	}
	// Density between consecutive distinct order statistics i and i+1 is
	// (1/(n-1)) / gap. Locate the segment.
	i := sort.SearchFloat64s(e.sorted, x)
	if i == 0 {
		i = 1
	}
	if i >= n {
		i = n - 1
	}
	gap := e.sorted[i] - e.sorted[i-1]
	if gap == 0 {
		// Atom: return a large finite density to keep integrators sane.
		return math.Inf(1)
	}
	return 1 / (float64(n-1) * gap)
}

// LogPDF returns log(PDF(x)).
func (e *Empirical) LogPDF(x float64) float64 {
	p := e.PDF(x)
	if p == 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// CDF returns the piecewise-linear empirical CDF, 0 at the minimum and 1
// at the maximum observation.
func (e *Empirical) CDF(x float64) float64 {
	n := len(e.sorted)
	switch {
	case x <= e.sorted[0]:
		return 0
	case x >= e.sorted[n-1]:
		return 1
	}
	i := sort.SearchFloat64s(e.sorted, x) // first index with sorted[i] >= x
	if e.sorted[i] == x {
		return float64(i) / float64(n-1)
	}
	lo, hi := e.sorted[i-1], e.sorted[i]
	frac := (x - lo) / (hi - lo)
	return (float64(i-1) + frac) / float64(n-1)
}

// Quantile inverts the piecewise-linear CDF.
func (e *Empirical) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	n := len(e.sorted)
	pos := p * float64(n-1)
	i := int(math.Floor(pos))
	if i >= n-1 {
		return e.sorted[n-1]
	}
	frac := pos - float64(i)
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Variance returns the unbiased sample variance.
func (e *Empirical) Variance() float64 { return e.varce }

// Support returns [min, max] of the sample.
func (e *Empirical) Support() (float64, float64) {
	return e.sorted[0], e.sorted[len(e.sorted)-1]
}

// Sample draws from the piecewise-linear law by inversion.
func (e *Empirical) Sample(r *rng.Source) float64 {
	return e.Quantile(r.Float64())
}
