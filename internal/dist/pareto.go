package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Pareto is the Pareto (type I) law with scale Xm > 0 and shape
// Alpha > 0: P(X > x) = (Xm/x)^Alpha for x >= Xm. It models
// heavy-tailed checkpoint durations (e.g. contended parallel file
// systems); truncated to [a, b] it is a stress-test D_C for the generic
// optimizer of the preemptible scenario.
type Pareto struct {
	Xm    float64 // scale (minimum value)
	Alpha float64 // tail index
}

// NewPareto returns Pareto(xm, alpha), both positive.
func NewPareto(xm, alpha float64) Pareto {
	validatePositive("scale xm", "Pareto", xm)
	validatePositive("shape alpha", "Pareto", alpha)
	return Pareto{Xm: xm, Alpha: alpha}
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g, alpha=%g)", p.Xm, p.Alpha) }

// PDF returns alpha xm^alpha / x^{alpha+1} for x >= xm.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// LogPDF returns log(PDF(x)).
func (p Pareto) LogPDF(x float64) float64 {
	if x < p.Xm {
		return math.Inf(-1)
	}
	return math.Log(p.Alpha) + p.Alpha*math.Log(p.Xm) - (p.Alpha+1)*math.Log(x)
}

// CDF returns 1 - (xm/x)^alpha.
func (p Pareto) CDF(x float64) float64 {
	if x <= p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile returns xm / (1-p)^{1/alpha}.
func (p Pareto) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean returns alpha xm / (alpha - 1) for alpha > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Variance returns the Pareto variance for alpha > 2, +Inf otherwise.
func (p Pareto) Variance() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// Support returns [xm, inf).
func (p Pareto) Support() (float64, float64) { return p.Xm, math.Inf(1) }

// Sample draws a variate by inversion.
func (p Pareto) Sample(r *rng.Source) float64 {
	return p.Xm / math.Pow(r.Float64Open(), 1/p.Alpha)
}
