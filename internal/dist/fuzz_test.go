package dist

import (
	"math"
	"testing"

	"reskit/internal/rng"
)

// FuzzTruncate checks that TryTruncate never panics for any bound pair
// on any (possibly invalid) Normal base law, and that every successfully
// constructed truncation behaves like a probability law on its support.
func FuzzTruncate(f *testing.F) {
	f.Add(3.0, 0.5, 0.0, math.Inf(1))
	f.Add(5.0, 0.4, 3.0, 7.0)
	f.Add(0.0, 1.0, -1.0, 1.0)
	f.Add(0.0, 1.0, 1.0, 1.0)           // empty interval
	f.Add(0.0, 1.0, 5.0, -5.0)          // inverted bounds
	f.Add(0.0, 1.0, math.NaN(), 1.0)    // NaN bound
	f.Add(0.0, 0.0, 0.0, 1.0)           // invalid sigma
	f.Add(0.0, 1.0, 1e308, math.Inf(1)) // zero mass in the far tail
	f.Add(math.Inf(1), 1.0, 0.0, 1.0)   // invalid mu

	f.Fuzz(func(t *testing.T, mu, sigma, lo, hi float64) {
		base, err := TryNewNormal(mu, sigma)
		if err != nil {
			return
		}
		tr, err := TryTruncate(base, lo, hi)
		if err != nil {
			return
		}
		if tr.CDF(lo) != 0 {
			t.Fatalf("CDF(lo=%g) = %g, want 0", lo, tr.CDF(lo))
		}
		if !math.IsInf(hi, 1) && tr.CDF(hi) != 1 {
			t.Fatalf("CDF(hi=%g) = %g, want 1", hi, tr.CDF(hi))
		}
		mid := tr.Quantile(0.5)
		if math.IsNaN(mid) {
			t.Fatalf("Quantile(0.5) is NaN for Normal(%g, %g) | [%g, %g]", mu, sigma, lo, hi)
		}
		if mid < lo || mid > hi {
			t.Fatalf("median %g outside [%g, %g]", mid, lo, hi)
		}
		r := rng.New(1)
		for i := 0; i < 8; i++ {
			if x := tr.Sample(r); x < lo || x > hi {
				t.Fatalf("sample %g outside [%g, %g]", x, lo, hi)
			}
		}
	})
}

// FuzzTryEmpirical checks the recover-based constructor against
// arbitrary 4-observation samples.
func FuzzTryEmpirical(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.NaN(), 1.0, 2.0, 3.0)
	f.Add(math.Inf(1), 1.0, 2.0, 3.0)
	f.Add(-1e308, 1e308, 0.0, 0.0)

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		e, err := TryNewEmpirical([]float64{a, b, c, d})
		if err != nil {
			return
		}
		lo, hi := e.Support()
		if math.IsNaN(e.Mean()) || e.Mean() < lo || e.Mean() > hi {
			t.Fatalf("mean %g outside support [%g, %g]", e.Mean(), lo, hi)
		}
		if q := e.Quantile(0.5); q < lo || q > hi {
			t.Fatalf("median %g outside support [%g, %g]", q, lo, hi)
		}
	})
}
