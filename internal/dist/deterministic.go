package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Deterministic is the point mass at Value. It models the idealized
// "perfect knowledge" setting of the paper's introduction — with a
// deterministic checkpoint time C the optimal policy is trivially to
// checkpoint at R - C — and serves as the baseline against which the
// stochastic strategies are compared.
type Deterministic struct {
	Value float64
}

// NewDeterministic returns the point mass at v (finite).
func NewDeterministic(v float64) Deterministic {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("dist: Deterministic: value must be finite, got %g", v))
	}
	return Deterministic{Value: v}
}

func (d Deterministic) String() string { return fmt.Sprintf("Deterministic(%g)", d.Value) }

// PDF returns +Inf at the atom and 0 elsewhere (a Dirac density).
func (d Deterministic) PDF(x float64) float64 {
	if x == d.Value {
		return math.Inf(1)
	}
	return 0
}

// LogPDF returns log(PDF(x)).
func (d Deterministic) LogPDF(x float64) float64 {
	if x == d.Value {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

// CDF returns the step function at the atom.
func (d Deterministic) CDF(x float64) float64 {
	if x >= d.Value {
		return 1
	}
	return 0
}

// Quantile returns the atom for every p in (0, 1].
func (d Deterministic) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return d.Value
}

// Mean returns the atom.
func (d Deterministic) Mean() float64 { return d.Value }

// Variance returns 0.
func (d Deterministic) Variance() float64 { return 0 }

// Support returns the degenerate interval [v, v].
func (d Deterministic) Support() (float64, float64) { return d.Value, d.Value }

// Sample returns the atom.
func (d Deterministic) Sample(*rng.Source) float64 { return d.Value }

// SumIID returns the point mass at y*v.
func (d Deterministic) SumIID(y float64) Continuous {
	validatePositive("y", "Deterministic.SumIID", y)
	return Deterministic{Value: y * d.Value}
}
