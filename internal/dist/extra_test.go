package dist

import (
	"fmt"
	"math"
	"testing"

	"reskit/internal/rng"
)

func TestConformanceExtraLaws(t *testing.T) {
	laws := []Continuous{
		NewTriangular(1, 4, 7.5),
		NewTriangular(0, 0, 2), // mode at the minimum
		NewTriangular(0, 2, 2), // mode at the maximum
		NewPareto(2, 3.5),      // finite mean and variance
		NewMixture([]Continuous{NewNormal(3, 0.4), NewNormal(6, 0.6)}, []float64{0.7, 0.3}),
		NewAffine(NewGamma(2, 1), 1.5, 0.25),
		Truncate(NewPareto(1, 1.2), 1.5, 8), // heavy tail truncated
		Truncate(NewMixture([]Continuous{NewNormal(3, 0.4), NewNormal(6, 0.6)},
			[]float64{0.5, 0.5}), 1, 8),
	}
	for _, d := range laws {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			checkContinuous(t, d)
		})
	}
}

func TestTriangularKnownValues(t *testing.T) {
	tr := NewTriangular(0, 1, 3)
	if math.Abs(tr.Mean()-4.0/3) > 1e-14 {
		t.Errorf("mean %g", tr.Mean())
	}
	// CDF at the mode is (m-a)/(b-a).
	if math.Abs(tr.CDF(1)-1.0/3) > 1e-14 {
		t.Errorf("CDF(mode) %g", tr.CDF(1))
	}
	if tr.PDF(1) != 2.0/3 {
		t.Errorf("PDF(mode) %g", tr.PDF(1))
	}
	// Quantile round trip at the kink.
	if math.Abs(tr.Quantile(1.0/3)-1) > 1e-12 {
		t.Errorf("Quantile(F(m)) %g", tr.Quantile(1.0/3))
	}
}

func TestParetoKnownValues(t *testing.T) {
	p := NewPareto(1, 2)
	if p.Mean() != 2 {
		t.Errorf("mean %g", p.Mean())
	}
	if !math.IsInf(p.Variance(), 1) {
		t.Errorf("alpha=2 variance should be infinite")
	}
	if math.Abs(p.CDF(2)-0.75) > 1e-14 {
		t.Errorf("CDF(2) %g", p.CDF(2))
	}
	// Heavy tail: alpha <= 1 has infinite mean.
	if !math.IsInf(NewPareto(1, 0.9).Mean(), 1) {
		t.Errorf("alpha<1 mean should be infinite")
	}
}

func TestMixtureBimodal(t *testing.T) {
	m := NewMixture([]Continuous{NewNormal(3, 0.3), NewNormal(7, 0.3)}, []float64{1, 1})
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Errorf("mean %g", m.Mean())
	}
	// Density has a trough between the modes.
	if !(m.PDF(3) > m.PDF(5) && m.PDF(7) > m.PDF(5)) {
		t.Errorf("not bimodal: f(3)=%g f(5)=%g f(7)=%g", m.PDF(3), m.PDF(5), m.PDF(7))
	}
	// Sampling hits both modes.
	r := rng.New(3)
	var low, high int
	for i := 0; i < 10000; i++ {
		if m.Sample(r) < 5 {
			low++
		} else {
			high++
		}
	}
	if low < 4500 || high < 4500 {
		t.Errorf("mode balance %d/%d", low, high)
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	a := NewMixture([]Continuous{NewNormal(0, 1), NewNormal(4, 1)}, []float64{2, 6})
	b := NewMixture([]Continuous{NewNormal(0, 1), NewNormal(4, 1)}, []float64{0.25, 0.75})
	for _, x := range []float64{-1, 0, 2, 4, 6} {
		if math.Abs(a.PDF(x)-b.PDF(x)) > 1e-15 {
			t.Errorf("weights not normalized at %g", x)
		}
	}
}

func TestAffinePhysicalModel(t *testing.T) {
	// C = S*B + L with S = 40 GB, B ~ Gamma inverse-bandwidth around
	// 0.1 s/GB, L = 2 s latency.
	invBW := NewGamma(25, 0.004) // mean 0.1, sd 0.02 s/GB
	c := NewAffine(invBW, 40, 2)
	if math.Abs(c.Mean()-6) > 1e-12 { // 40*0.1 + 2
		t.Errorf("mean %g", c.Mean())
	}
	if math.Abs(c.Variance()-40*40*invBW.Variance()) > 1e-12 {
		t.Errorf("variance %g", c.Variance())
	}
	lo, _ := c.Support()
	if lo != 2 {
		t.Errorf("support lo %g", lo)
	}
}

func TestAffineQuantileRoundTrip(t *testing.T) {
	c := NewAffine(NewNormal(0, 1), 2, 5)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := c.Quantile(p)
		if math.Abs(c.CDF(x)-p) > 1e-12 {
			t.Errorf("round trip at %g: %g", p, c.CDF(x))
		}
	}
}

func TestExtraConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewTriangular(2, 1, 3) }, // mode below min
		func() { NewTriangular(1, 2, 1) }, // max below min
		func() { NewTriangular(1, 1, 1) }, // degenerate
		func() { NewPareto(0, 1) },
		func() { NewPareto(1, -1) },
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Continuous{NewNormal(0, 1)}, []float64{1, 2}) },
		func() { NewMixture([]Continuous{NewNormal(0, 1)}, []float64{0}) },
		func() { NewMixture([]Continuous{nil}, []float64{1}) },
		func() { NewAffine(nil, 1, 0) },
		func() { NewAffine(NewNormal(0, 1), 0, 0) },
		func() { NewAffine(NewNormal(0, 1), 1, math.Inf(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHeavyTailCheckpointLawWithPreemptibleShape(t *testing.T) {
	// Truncated Pareto as D_C: CDF must still match the paper's
	// truncation formula.
	base := NewPareto(1, 1.5)
	tr := Truncate(base, 2, 9)
	for _, x := range []float64{2, 3, 5, 9} {
		want := (base.CDF(x) - base.CDF(2)) / (base.CDF(9) - base.CDF(2))
		if math.Abs(tr.CDF(x)-want) > 1e-12 {
			t.Errorf("CDF(%g) = %g want %g", x, tr.CDF(x), want)
		}
	}
}

func TestConformanceBeta(t *testing.T) {
	laws := []Continuous{
		NewBeta(2, 2),
		NewBeta(0.8, 3),
		NewBeta(5, 1.5),
		NewBetaOn(2, 3, 1, 7.5), // rescaled to a checkpoint-like support
	}
	for _, d := range laws {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			checkContinuous(t, d)
		})
	}
}

func TestBetaKnownValues(t *testing.T) {
	// Beta(1,1) is Uniform(0,1).
	b := NewBeta(1, 1)
	for _, x := range []float64{0.25, 0.5, 0.75} {
		if math.Abs(b.CDF(x)-x) > 1e-13 {
			t.Errorf("Beta(1,1).CDF(%g) = %g", x, b.CDF(x))
		}
	}
	// Beta(2,2): mean 1/2, var 1/20.
	b2 := NewBeta(2, 2)
	if math.Abs(b2.Mean()-0.5) > 1e-15 || math.Abs(b2.Variance()-0.05) > 1e-15 {
		t.Errorf("Beta(2,2) moments: %g, %g", b2.Mean(), b2.Variance())
	}
	// Rescaled law covers [1, 7.5] with the right mean.
	on := NewBetaOn(2, 3, 1, 7.5)
	lo, hi := on.Support()
	if lo != 1 || hi != 7.5 {
		t.Errorf("support [%g, %g]", lo, hi)
	}
	wantMean := 1 + 6.5*2.0/5
	if math.Abs(on.Mean()-wantMean) > 1e-12 {
		t.Errorf("rescaled mean %g want %g", on.Mean(), wantMean)
	}
}

func TestBetaOnAsCheckpointLaw(t *testing.T) {
	// A Beta-shaped D_C flows through the truncation identity trivially
	// (its support is already [a, b]) and the sampler stays in bounds.
	law := NewBetaOn(2, 5, 1, 6)
	r := rng.New(123)
	for i := 0; i < 20000; i++ {
		x := law.Sample(r)
		if x < 1 || x > 6 {
			t.Fatalf("sample %g outside [1, 6]", x)
		}
	}
	if _, err := recoverPanic(func() { NewBetaOn(1, 1, 5, 5) }); err == nil {
		t.Errorf("degenerate interval must panic")
	}
}

// recoverPanic runs f and reports any panic as an error.
func recoverPanic(f func()) (v interface{}, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil, nil
}
