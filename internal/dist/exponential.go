package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Exponential is the Exponential law with rate Lambda (mean 1/Lambda) on
// [0, inf). Truncated to [a, b] it is the checkpoint-duration law of
// Section 3.2.2, whose optimal checkpoint instant involves the Lambert W
// function.
type Exponential struct {
	Lambda float64
}

// NewExponential returns the Exponential law with the given rate > 0.
func NewExponential(rate float64) Exponential {
	validatePositive("rate", "Exponential", rate)
	return Exponential{Lambda: rate}
}

func (e Exponential) String() string { return fmt.Sprintf("Exponential(rate=%g)", e.Lambda) }

// PDF returns lambda*exp(-lambda*x) for x >= 0.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

// LogPDF returns log(PDF(x)).
func (e Exponential) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(e.Lambda) - e.Lambda*x
}

// CDF returns 1 - exp(-lambda*x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Quantile returns -log(1-p)/lambda.
func (e Exponential) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

// Mean returns 1/lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Variance returns 1/lambda^2.
func (e Exponential) Variance() float64 { return 1 / (e.Lambda * e.Lambda) }

// Support returns [0, inf).
func (e Exponential) Support() (float64, float64) { return 0, math.Inf(1) }

// Sample draws a variate by inversion.
func (e Exponential) Sample(r *rng.Source) float64 { return r.Exponential(e.Lambda) }

// SumIID returns the law of the sum of y IID copies, Gamma(y, 1/lambda),
// making Exponential task durations usable with the static strategy.
func (e Exponential) SumIID(y float64) Continuous {
	validatePositive("y", "Exponential.SumIID", y)
	return NewGamma(y, 1/e.Lambda)
}
