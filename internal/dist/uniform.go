package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Uniform is the continuous uniform law on [A, B]. It is the first
// checkpoint-duration law studied in Section 3.2.1 of the paper, where it
// needs no further truncation: its support already is [a, b].
type Uniform struct {
	A, B float64
}

// NewUniform returns the Uniform law on [a, b]. It panics unless a < b
// and both are finite.
func NewUniform(a, b float64) Uniform {
	if !(a < b) || math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		panic(fmt.Sprintf("dist: Uniform requires finite a < b, got [%g, %g]", a, b))
	}
	return Uniform{A: a, B: b}
}

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g]", u.A, u.B) }

// PDF returns 1/(B-A) inside [A, B] and 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x > u.B {
		return 0
	}
	return 1 / (u.B - u.A)
}

// LogPDF returns the logarithm of PDF.
func (u Uniform) LogPDF(x float64) float64 {
	if x < u.A || x > u.B {
		return math.Inf(-1)
	}
	return -math.Log(u.B - u.A)
}

// CDF returns P(X <= x).
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

// Quantile returns A + p*(B-A).
func (u Uniform) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	return u.A + p*(u.B-u.A)
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return 0.5 * (u.A + u.B) }

// Variance returns (B-A)^2/12.
func (u Uniform) Variance() float64 {
	d := u.B - u.A
	return d * d / 12
}

// Support returns [A, B].
func (u Uniform) Support() (float64, float64) { return u.A, u.B }

// Sample draws a variate.
func (u Uniform) Sample(r *rng.Source) float64 { return r.Uniform(u.A, u.B) }
