package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
	"reskit/internal/specfun"
)

// Normal is the Gaussian law N(Mu, Sigma^2). Truncated to [a, b] it is
// the checkpoint-duration law of Section 3.2.3; truncated to [0, inf) it
// is the paper's canonical D_C for the workflow scenario (Section 4.1);
// untruncated it models task durations in Section 4.2.1.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns N(mu, sigma^2). It panics unless sigma > 0 and both
// parameters are finite.
func NewNormal(mu, sigma float64) Normal {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		panic(fmt.Sprintf("dist: Normal: mu must be finite, got %g", mu))
	}
	validatePositive("sigma", "Normal", sigma)
	return Normal{Mu: mu, Sigma: sigma}
}

func (n Normal) String() string { return fmt.Sprintf("Normal(mu=%g, sigma=%g)", n.Mu, n.Sigma) }

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	return specfun.NormPDF((x-n.Mu)/n.Sigma) / n.Sigma
}

// LogPDF returns log(PDF(x)).
func (n Normal) LogPDF(x float64) float64 {
	return specfun.LogNormPDF((x-n.Mu)/n.Sigma) - math.Log(n.Sigma)
}

// CDF returns Phi((x-mu)/sigma).
func (n Normal) CDF(x float64) float64 {
	return specfun.NormCDF((x - n.Mu) / n.Sigma)
}

// Quantile returns mu + sigma*Phi^{-1}(p).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*specfun.NormQuantile(p)
}

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns sigma^2.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Support returns the whole real line.
func (n Normal) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Sample draws a variate.
func (n Normal) Sample(r *rng.Source) float64 { return r.NormalMS(n.Mu, n.Sigma) }

// SumIID returns N(y*mu, y*sigma^2), the continuous relaxation of the law
// of S_n used by the static strategy (Section 4.2.1).
func (n Normal) SumIID(y float64) Continuous {
	validatePositive("y", "Normal.SumIID", y)
	return Normal{Mu: y * n.Mu, Sigma: math.Sqrt(y) * n.Sigma}
}
