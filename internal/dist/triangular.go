package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Triangular is the triangular law on [A, B] with mode M — a common
// three-point-estimate model for checkpoint durations when only
// (min, typical, max) are known from operators rather than full traces.
// Its support is already bounded, so like the Uniform law it needs no
// further truncation to serve as the D_C of Section 3.
type Triangular struct {
	A, M, B float64
}

// NewTriangular returns the triangular law with minimum a, mode m and
// maximum b (a <= m <= b, a < b).
func NewTriangular(a, m, b float64) Triangular {
	if !(a < b) || !(a <= m && m <= b) || math.IsNaN(a) || math.IsNaN(m) || math.IsNaN(b) ||
		math.IsInf(a, 0) || math.IsInf(b, 0) {
		panic(fmt.Sprintf("dist: Triangular requires a <= m <= b with a < b, got (%g, %g, %g)", a, m, b))
	}
	return Triangular{A: a, M: m, B: b}
}

func (t Triangular) String() string {
	return fmt.Sprintf("Triangular(%g, %g, %g)", t.A, t.M, t.B)
}

// PDF returns the density at x.
func (t Triangular) PDF(x float64) float64 {
	switch {
	case x < t.A || x > t.B:
		return 0
	case x < t.M:
		return 2 * (x - t.A) / ((t.B - t.A) * (t.M - t.A))
	case x == t.M:
		return 2 / (t.B - t.A)
	default:
		return 2 * (t.B - x) / ((t.B - t.A) * (t.B - t.M))
	}
}

// LogPDF returns log(PDF(x)).
func (t Triangular) LogPDF(x float64) float64 {
	p := t.PDF(x)
	if p == 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// CDF returns P(X <= x).
func (t Triangular) CDF(x float64) float64 {
	switch {
	case x <= t.A:
		return 0
	case x >= t.B:
		return 1
	case x <= t.M:
		d := x - t.A
		return d * d / ((t.B - t.A) * (t.M - t.A))
	default:
		d := t.B - x
		return 1 - d*d/((t.B-t.A)*(t.B-t.M))
	}
}

// Quantile inverts the CDF in closed form.
func (t Triangular) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	fm := (t.M - t.A) / (t.B - t.A)
	if p <= fm {
		return t.A + math.Sqrt(p*(t.B-t.A)*(t.M-t.A))
	}
	return t.B - math.Sqrt((1-p)*(t.B-t.A)*(t.B-t.M))
}

// Mean returns (A + M + B) / 3.
func (t Triangular) Mean() float64 { return (t.A + t.M + t.B) / 3 }

// Variance returns the triangular variance.
func (t Triangular) Variance() float64 {
	return (t.A*t.A + t.M*t.M + t.B*t.B - t.A*t.M - t.A*t.B - t.M*t.B) / 18
}

// Support returns [A, B].
func (t Triangular) Support() (float64, float64) { return t.A, t.B }

// Sample draws a variate by inversion.
func (t Triangular) Sample(r *rng.Source) float64 { return t.Quantile(r.Float64()) }
