package dist

import (
	"fmt"
	"math"

	"reskit/internal/quad"
	"reskit/internal/rng"
)

// Truncated is the law of a base continuous variable conditioned on
// falling inside [Lo, Hi]. This is exactly the construction of Section 3.1
// of the paper: the checkpoint-duration law D_C is a well-known law Z
// truncated to [a, b], with CDF (F(x) - F(a)) / (F(b) - F(a)).
//
// Hi may be +Inf (e.g. the Normal law truncated to [0, inf) that models
// checkpoint durations in the workflow scenario, Section 4.1).
type Truncated struct {
	Base   Continuous
	Lo, Hi float64

	// cached at construction
	fLo, fHi float64 // base CDF at the bounds
	mass     float64 // fHi - fLo
	mean     float64
	variance float64
}

// Truncate returns Base conditioned on [lo, hi]. It panics if lo >= hi or
// if the base law puts zero probability on [lo, hi].
func Truncate(base Continuous, lo, hi float64) *Truncated {
	if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("dist: Truncate requires lo < hi, got [%g, %g]", lo, hi))
	}
	fLo := base.CDF(lo)
	fHi := 1.0
	if !math.IsInf(hi, 1) {
		fHi = base.CDF(hi)
	}
	mass := fHi - fLo
	if !(mass > 0) {
		panic(fmt.Sprintf("dist: Truncate: %v has zero mass on [%g, %g]", base, lo, hi))
	}
	t := &Truncated{Base: base, Lo: lo, Hi: hi, fLo: fLo, fHi: fHi, mass: mass}
	t.mean, t.variance = t.numericMoments()
	return t
}

func (t *Truncated) String() string {
	return fmt.Sprintf("%v | [%g, %g]", t.Base, t.Lo, t.Hi)
}

// numericMoments integrates x*pdf and x^2*pdf over the truncated support.
func (t *Truncated) numericMoments() (mean, variance float64) {
	m1f := func(x float64) float64 { return x * t.PDF(x) }
	m2f := func(x float64) float64 { return x * x * t.PDF(x) }
	var m1, m2 float64
	if math.IsInf(t.Hi, 1) {
		m1 = quad.SemiInfinite(m1f, t.Lo, 1e-12, 1e-10).Value
		m2 = quad.SemiInfinite(m2f, t.Lo, 1e-12, 1e-10).Value
	} else {
		m1 = quad.Kronrod(m1f, t.Lo, t.Hi, 1e-12, 1e-10).Value
		m2 = quad.Kronrod(m2f, t.Lo, t.Hi, 1e-12, 1e-10).Value
	}
	v := m2 - m1*m1
	if v < 0 {
		v = 0
	}
	return m1, v
}

// PDF returns base.PDF(x) / mass inside [Lo, Hi] and 0 outside.
func (t *Truncated) PDF(x float64) float64 {
	if x < t.Lo || x > t.Hi {
		return 0
	}
	return t.Base.PDF(x) / t.mass
}

// LogPDF returns log(PDF(x)).
func (t *Truncated) LogPDF(x float64) float64 {
	if x < t.Lo || x > t.Hi {
		return math.Inf(-1)
	}
	return t.Base.LogPDF(x) - math.Log(t.mass)
}

// CDF returns (F(x) - F(Lo)) / (F(Hi) - F(Lo)) clipped to [0, 1].
func (t *Truncated) CDF(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 0
	case x >= t.Hi:
		return 1
	}
	v := (t.Base.CDF(x) - t.fLo) / t.mass
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// Quantile inverts the truncated CDF through the base quantile.
func (t *Truncated) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	x := t.Base.Quantile(t.fLo + p*t.mass)
	// Clip: the base quantile can step a rounding error outside.
	if x < t.Lo {
		return t.Lo
	}
	if x > t.Hi {
		return t.Hi
	}
	return x
}

// Mean returns the truncated mean (computed numerically at construction).
func (t *Truncated) Mean() float64 { return t.mean }

// Variance returns the truncated variance.
func (t *Truncated) Variance() float64 { return t.variance }

// Support returns [Lo, Hi].
func (t *Truncated) Support() (float64, float64) { return t.Lo, t.Hi }

// Sample draws a variate by inverse-CDF through the base quantile: draw
// u ~ Uniform(0,1) and map F^{-1}(F(Lo) + u*mass). This is exact and
// rejection-free even for deep truncations.
func (t *Truncated) Sample(r *rng.Source) float64 {
	return t.Quantile(r.Float64Open())
}
