package dist

import (
	"math"
	"testing"
	"testing/quick"

	"reskit/internal/quad"
	"reskit/internal/rng"
)

// checkContinuous runs the generic conformance suite every continuous law
// must pass: density nonnegativity and normalization, CDF monotonicity
// and limits, quantile/CDF round trips, moment agreement with numerical
// integration, and sample-moment agreement with analytical moments.
func checkContinuous(t *testing.T, d Continuous) {
	t.Helper()
	lo, hi := d.Support()

	// Integration window: clip infinite support using quantiles.
	wLo, wHi := lo, hi
	if math.IsInf(wLo, -1) {
		wLo = d.Quantile(1e-12)
	}
	if math.IsInf(wHi, 1) {
		wHi = d.Quantile(1 - 1e-12)
	}

	// PDF >= 0 and normalization.
	for i := 0; i <= 50; i++ {
		x := wLo + (wHi-wLo)*float64(i)/50
		if p := d.PDF(x); p < 0 || math.IsNaN(p) {
			t.Fatalf("%v: PDF(%g) = %g", d, x, p)
		}
	}
	mass := quad.Kronrod(d.PDF, wLo, wHi, 1e-11, 1e-9).Value
	if math.Abs(mass-1) > 1e-6 {
		t.Errorf("%v: PDF mass = %.9g", d, mass)
	}

	// PDF outside support is zero.
	if lo > math.Inf(-1) && d.PDF(lo-1) != 0 {
		t.Errorf("%v: PDF below support nonzero", d)
	}
	if !math.IsInf(hi, 1) && d.PDF(hi+1) != 0 {
		t.Errorf("%v: PDF above support nonzero", d)
	}

	// CDF limits and monotonicity.
	if c := d.CDF(wLo - 1e9); c > 1e-9 {
		t.Errorf("%v: CDF far left = %g", d, c)
	}
	if c := d.CDF(wHi + 1e9); c < 1-1e-9 {
		t.Errorf("%v: CDF far right = %g", d, c)
	}
	prev := -1.0
	for i := 0; i <= 100; i++ {
		x := wLo + (wHi-wLo)*float64(i)/100
		c := d.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("%v: CDF not monotone/bounded at %g: %g after %g", d, x, c, prev)
		}
		prev = c
	}

	// LogPDF consistency.
	for i := 1; i < 50; i++ {
		x := wLo + (wHi-wLo)*float64(i)/50
		p := d.PDF(x)
		if p > 0 {
			if math.Abs(d.LogPDF(x)-math.Log(p)) > 1e-9*(1+math.Abs(math.Log(p))) {
				t.Fatalf("%v: LogPDF(%g) inconsistent", d, x)
			}
		}
	}

	// Quantile/CDF round trip.
	for _, p := range []float64{0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999} {
		x := d.Quantile(p)
		back := d.CDF(x)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("%v: CDF(Quantile(%g)) = %g", d, p, back)
		}
	}

	// Moments vs numerical integration.
	m1 := quad.Kronrod(func(x float64) float64 { return x * d.PDF(x) }, wLo, wHi, 1e-11, 1e-9).Value
	if math.Abs(m1-d.Mean()) > 1e-5*(1+math.Abs(d.Mean())) {
		t.Errorf("%v: Mean() = %g, integral = %g", d, d.Mean(), m1)
	}
	m2 := quad.Kronrod(func(x float64) float64 { return x * x * d.PDF(x) }, wLo, wHi, 1e-11, 1e-9).Value
	v := m2 - m1*m1
	if math.Abs(v-d.Variance()) > 1e-4*(1+d.Variance()) {
		t.Errorf("%v: Variance() = %g, integral = %g", d, d.Variance(), v)
	}

	// Sampling: moments and support.
	r := rng.New(12345)
	const n = 120000
	var sm, sm2 float64
	for i := 1; i <= n; i++ {
		x := d.Sample(r)
		if x < lo-1e-9 || x > hi+1e-9 {
			t.Fatalf("%v: sample %g outside support [%g, %g]", d, x, lo, hi)
		}
		delta := x - sm
		sm += delta / float64(i)
		sm2 += delta * (x - sm)
	}
	sv := sm2 / float64(n-1)
	sd := math.Sqrt(d.Variance())
	if math.Abs(sm-d.Mean()) > 5*sd/math.Sqrt(n)+1e-9 {
		t.Errorf("%v: sample mean %g vs %g", d, sm, d.Mean())
	}
	if d.Variance() > 0 && math.Abs(sv-d.Variance()) > 0.08*d.Variance()+1e-9 {
		t.Errorf("%v: sample variance %g vs %g", d, sv, d.Variance())
	}

	// Batched evaluation must agree with the scalar path.
	checkBatchAgreement(t, d)
}

// ulpClose reports whether a and b agree to 1-ulp scale (a few units in
// the last place, or both non-finite the same way).
func ulpClose(a, b float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	return math.Abs(a-b) <= 4e-16*math.Max(math.Abs(a), math.Abs(b))+1e-300
}

// checkBatchAgreement asserts that the law's batched PDF/CDF path (native
// or adapter, via AsBatch) matches the scalar methods at probe points
// inside, below, and above the support.
func checkBatchAgreement(t *testing.T, d Continuous) {
	t.Helper()
	b := AsBatch(d)
	lo, hi := d.Support()
	wLo, wHi := lo, hi
	if math.IsInf(wLo, -1) {
		wLo = d.Quantile(1e-12)
	}
	if math.IsInf(wHi, 1) {
		wHi = d.Quantile(1 - 1e-12)
	}
	const n = 257
	span := wHi - wLo
	xs := make([]float64, n)
	pdf := make([]float64, n)
	cdf := make([]float64, n)
	for i := range xs {
		xs[i] = wLo - 0.1*span + 1.2*span*float64(i)/(n-1)
	}
	b.PDFBatch(xs, pdf)
	b.CDFBatch(xs, cdf)
	for i, x := range xs {
		if want := d.PDF(x); !ulpClose(pdf[i], want) {
			t.Errorf("%v: PDFBatch(%g) = %g, scalar PDF = %g", d, x, pdf[i], want)
		}
		if want := d.CDF(x); !ulpClose(cdf[i], want) {
			t.Errorf("%v: CDFBatch(%g) = %g, scalar CDF = %g", d, x, cdf[i], want)
		}
	}
}

// TestBatchFallbackPaths covers the branches the main conformance list
// misses: the generic scalar adapter for a law with no native batch
// methods, and a Truncated law whose base is not batch-capable.
func TestBatchFallbackPaths(t *testing.T) {
	for _, d := range []Continuous{
		NewWeibull(1.5, 2),                  // AsBatch adapter
		Truncate(NewWeibull(1.5, 2), .5, 4), // Truncated scalar-fallback branch
		NewUniform(-1, 3),
	} {
		checkBatchAgreement(t, d)
	}
	// AsBatch must return native implementers unwrapped.
	n := NewNormal(0, 1)
	if _, ok := AsBatch(n).(Normal); !ok {
		t.Errorf("AsBatch(Normal) wrapped a native batch implementation")
	}
}

func TestConformanceAllLaws(t *testing.T) {
	laws := []Continuous{
		NewUniform(1, 7.5),
		NewUniform(-3, 2),
		NewExponential(0.5),
		NewExponential(4),
		NewNormal(0, 1),
		NewNormal(3, 0.5),
		NewNormal(-10, 4),
		NewLogNormal(0, 0.25),
		NewLogNormal(1, 0.5),
		NewGamma(1, 0.5),
		NewGamma(2.5, 2),
		NewGamma(9, 0.25),
		NewWeibull(1.5, 2),
		NewWeibull(0.9, 1),
		Truncate(NewNormal(3.5, 1), 1, 6),
		Truncate(NewNormal(5, 0.4), 0, math.Inf(1)),
		Truncate(NewExponential(0.5), 1, 5),
		Truncate(NewLogNormal(1, 0.5), 1, 6),
		Truncate(NewGamma(2, 1), 0.5, 8),
	}
	for _, d := range laws {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			checkContinuous(t, d)
		})
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	laws := []Continuous{
		NewNormal(2, 3),
		NewGamma(2, 1),
		Truncate(NewNormal(5, 0.4), 0, math.Inf(1)),
		NewLogNormal(0.5, 0.7),
	}
	for _, d := range laws {
		d := d
		prop := func(u1, u2 float64) bool {
			p1 := math.Abs(math.Mod(u1, 1))
			p2 := math.Abs(math.Mod(u2, 1))
			lo, hi := math.Min(p1, p2), math.Max(p1, p2)
			return d.Quantile(lo) <= d.Quantile(hi)+1e-12
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
}
