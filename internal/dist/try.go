package dist

import "fmt"

// The NewX constructors of this package panic on invalid parameters:
// they sit on hot construction paths and their arguments are normally
// program constants. The Try variants below wrap the same constructors
// into error returns for callers whose parameters come from untrusted
// input — fitted trace logs, CLI flags, config files — where a bad
// observation must surface as an error, not a crash.

// catch converts the constructor's panic (always a string or error from
// this package's validation) into an error.
func catch(errp *error) {
	if r := recover(); r != nil {
		switch v := r.(type) {
		case error:
			*errp = v
		default:
			*errp = fmt.Errorf("%v", v)
		}
	}
}

// TryTruncate is Truncate returning an error instead of panicking when
// lo >= hi, a bound is NaN, or the base law has zero mass on [lo, hi].
func TryTruncate(base Continuous, lo, hi float64) (t *Truncated, err error) {
	defer catch(&err)
	if base == nil {
		return nil, fmt.Errorf("dist: Truncate: nil base law")
	}
	return Truncate(base, lo, hi), nil
}

// TryNewEmpirical is NewEmpirical returning an error instead of
// panicking on fewer than two observations or non-finite values.
func TryNewEmpirical(sample []float64) (e *Empirical, err error) {
	defer catch(&err)
	return NewEmpirical(sample), nil
}

// TryNewNormal is NewNormal returning an error instead of panicking on
// non-finite mu or non-positive sigma.
func TryNewNormal(mu, sigma float64) (d Normal, err error) {
	defer catch(&err)
	return NewNormal(mu, sigma), nil
}

// TryNewLogNormal is NewLogNormal returning an error instead of
// panicking on non-finite mu or non-positive sigma.
func TryNewLogNormal(mu, sigma float64) (d LogNormal, err error) {
	defer catch(&err)
	return NewLogNormal(mu, sigma), nil
}

// TryNewGamma is NewGamma returning an error instead of panicking on
// non-positive shape or scale.
func TryNewGamma(k, theta float64) (d Gamma, err error) {
	defer catch(&err)
	return NewGamma(k, theta), nil
}

// TryNewWeibull is NewWeibull returning an error instead of panicking
// on non-positive shape or scale.
func TryNewWeibull(k, lambda float64) (d Weibull, err error) {
	defer catch(&err)
	return NewWeibull(k, lambda), nil
}

// TryNewExponential is NewExponential returning an error instead of
// panicking on a non-positive rate.
func TryNewExponential(rate float64) (d Exponential, err error) {
	defer catch(&err)
	return NewExponential(rate), nil
}
