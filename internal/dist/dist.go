// Package dist implements the probability-law framework of the
// reservation-checkpointing library: the continuous and discrete
// distribution interfaces, the concrete laws studied by Barbut et al.
// (FTXS'23) — Uniform, Exponential, Normal, LogNormal, Gamma, Weibull,
// Poisson, Deterministic — the generic truncation operator that builds the
// paper's checkpoint-duration law D_C from any base law, the IID-sum
// capability that powers the static strategy of Section 4.2, and an
// empirical distribution for trace-driven laws.
//
// All distribution values are immutable after construction and safe for
// concurrent use; sampling requires a caller-owned *rng.Source.
package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Continuous is a continuous probability law on (a subset of) the reals.
type Continuous interface {
	fmt.Stringer

	// PDF returns the density at x (0 outside the support).
	PDF(x float64) float64
	// LogPDF returns log(PDF(x)) (-Inf outside the support).
	LogPDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in [0,1].
	Quantile(p float64) float64
	// Mean returns E[X].
	Mean() float64
	// Variance returns Var[X].
	Variance() float64
	// Support returns the interval outside which the density vanishes.
	Support() (lo, hi float64)
	// Sample draws one variate using the provided generator.
	Sample(r *rng.Source) float64
}

// Discrete is an integer-valued probability law.
type Discrete interface {
	fmt.Stringer

	// PMF returns P(X = k).
	PMF(k int) float64
	// LogPMF returns log P(X = k).
	LogPMF(k int) float64
	// CDF returns P(X <= floor(x)).
	CDF(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// Variance returns Var[X].
	Variance() float64
	// Sample draws one variate using the provided generator.
	Sample(r *rng.Source) int
}

// Summable is a continuous law closed under IID summation, in the
// continuous-relaxation sense required by the static strategy of
// Section 4.2: SumIID(y) for real y > 0 must coincide with the law of
// X_1 + ... + X_n when y = n is an integer.
type Summable interface {
	Continuous
	SumIID(y float64) Continuous
}

// SummableDiscrete is the discrete counterpart of Summable (the Poisson
// instantiation of Section 4.2.3).
type SummableDiscrete interface {
	Discrete
	SumIID(y float64) Discrete
}

// StdDev is a convenience helper returning the standard deviation of any
// continuous law.
func StdDev(d Continuous) float64 { return math.Sqrt(d.Variance()) }

// quantileBisect inverts a CDF by bisection over the support; used by laws
// with no closed-form quantile. The CDF must be non-decreasing.
func quantileBisect(cdf func(float64) float64, lo, hi, p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return lo
	case p == 1:
		return hi
	}
	// Establish finite brackets for infinite supports.
	a, b := lo, hi
	if math.IsInf(a, -1) {
		a = -1
		for cdf(a) > p {
			a *= 2
			if a < -1e300 {
				break
			}
		}
	}
	if math.IsInf(b, 1) {
		b = 1
		for cdf(b) < p {
			b *= 2
			if b > 1e300 {
				break
			}
		}
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if m == a || m == b {
			return m
		}
		if cdf(m) < p {
			a = m
		} else {
			b = m
		}
	}
	return 0.5 * (a + b)
}

// validatePositive panics with a descriptive message unless v > 0.
func validatePositive(name, law string, v float64) {
	if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
		panic(fmt.Sprintf("dist: %s: %s must be positive and finite, got %g", law, name, v))
	}
}

// DiscreteQuantile returns the smallest integer k with P(X <= k) >= p,
// for p in (0, 1]. It walks the CDF from 0, which is ample for the task
// scales of this library; p <= 0 yields 0 and p > 1 yields a panic.
func DiscreteQuantile(d Discrete, p float64) int {
	if math.IsNaN(p) || p > 1 {
		panic(fmt.Sprintf("dist: DiscreteQuantile: p must be in (0, 1], got %g", p))
	}
	if p <= 0 {
		return 0
	}
	// Exponential search then linear walk keeps worst cases bounded.
	hi := 1
	for d.CDF(float64(hi)) < p && hi < 1<<30 {
		hi *= 2
	}
	lo := 0
	for lo < hi {
		mid := (lo + hi) / 2
		if d.CDF(float64(mid)) < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
