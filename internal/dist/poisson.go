package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
	"reskit/internal/specfun"
)

// Poisson is the Poisson law with mean Lambda on the nonnegative
// integers. It models discretized task durations in Sections 4.2.3 and
// 4.3.3 of the paper; the sum of n IID Poisson(lambda) variables is
// Poisson(n*lambda).
type Poisson struct {
	Lambda float64
}

// NewPoisson returns Poisson(lambda), lambda > 0.
func NewPoisson(lambda float64) Poisson {
	validatePositive("lambda", "Poisson", lambda)
	return Poisson{Lambda: lambda}
}

func (p Poisson) String() string { return fmt.Sprintf("Poisson(lambda=%g)", p.Lambda) }

// PMF returns e^{-lambda} lambda^k / k!.
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	return math.Exp(p.LogPMF(k))
}

// LogPMF returns log(PMF(k)).
func (p Poisson) LogPMF(k int) float64 {
	return specfun.LogPoissonPMF(k, p.Lambda)
}

// CDF returns P(X <= floor(x)) through the incomplete-gamma identity.
func (p Poisson) CDF(x float64) float64 {
	return specfun.PoissonCDF(x, p.Lambda)
}

// Mean returns lambda.
func (p Poisson) Mean() float64 { return p.Lambda }

// Variance returns lambda.
func (p Poisson) Variance() float64 { return p.Lambda }

// Sample draws a variate.
func (p Poisson) Sample(r *rng.Source) int { return r.Poisson(p.Lambda) }

// SumIID returns Poisson(y*lambda), the law of the sum of y IID copies
// (Section 4.2.3), valid for any real y > 0.
func (p Poisson) SumIID(y float64) Discrete {
	validatePositive("y", "Poisson.SumIID", y)
	return Poisson{Lambda: y * p.Lambda}
}
