package dist

import (
	"math"

	"reskit/internal/specfun"
)

// BatchContinuous is a continuous law that can evaluate its density and
// CDF at many points per call. Batched evaluation lets quadrature and
// coefficient-table builds amortize per-point setup — truncation
// constants, log-normalizers, interface dispatch — across a whole panel
// of nodes. len(out) == len(xs) always holds; implementations must not
// retain either slice, and out[i] must equal the scalar PDF(xs[i]) /
// CDF(xs[i]) to within an ulp.
type BatchContinuous interface {
	Continuous

	// PDFBatch writes PDF(xs[i]) into out[i] for every i.
	PDFBatch(xs, out []float64)
	// CDFBatch writes CDF(xs[i]) into out[i] for every i.
	CDFBatch(xs, out []float64)
}

// AsBatch returns d itself when it already implements BatchContinuous,
// and a generic scalar-fallback adapter otherwise, so callers can take
// the batched path unconditionally.
func AsBatch(d Continuous) BatchContinuous {
	if b, ok := d.(BatchContinuous); ok {
		return b
	}
	return scalarBatch{d}
}

// scalarBatch adapts any Continuous law to BatchContinuous by looping
// over the scalar methods.
type scalarBatch struct {
	Continuous
}

func (s scalarBatch) PDFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = s.PDF(x)
	}
}

func (s scalarBatch) CDFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = s.CDF(x)
	}
}

// Compile-time checks: the laws on the hot quadrature paths implement the
// native batched interface.
var (
	_ BatchContinuous = Normal{}
	_ BatchContinuous = Gamma{}
	_ BatchContinuous = LogNormal{}
	_ BatchContinuous = Exponential{}
	_ BatchContinuous = (*Truncated)(nil)
)

// PDFBatch writes the Gaussian density at every xs[i] into out[i]. The
// points are standardized in place and handed to the specfun batch
// kernel; the standardization uses the same (x-mu)/sigma division as the
// scalar path, so results are bit-identical to PDF(xs[i]).
func (n Normal) PDFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = (x - n.Mu) / n.Sigma
	}
	specfun.NormPDFBatch(out, out)
	for i := range out {
		out[i] /= n.Sigma
	}
}

// CDFBatch writes Phi((xs[i]-mu)/sigma) into out[i].
func (n Normal) CDFBatch(xs, out []float64) {
	for i, x := range xs {
		out[i] = (x - n.Mu) / n.Sigma
	}
	specfun.NormCDFBatch(out, out)
}

// PDFBatch writes the Gamma density at every xs[i] into out[i], hoisting
// the log-normalizer lgamma(k) + k*log(theta) out of the loop.
func (g Gamma) PDFBatch(xs, out []float64) {
	lg, _ := math.Lgamma(g.K)
	logTheta := math.Log(g.Theta)
	for i, x := range xs {
		switch {
		case x < 0:
			out[i] = 0
		case x == 0:
			out[i] = g.PDF(0)
		default:
			out[i] = math.Exp((g.K-1)*math.Log(x) - x/g.Theta - lg - g.K*logTheta)
		}
	}
}

// CDFBatch writes the regularized incomplete gamma P(k, xs[i]/theta)
// through the batched kernel: lnGamma(k) is computed once per call
// instead of once per point. Non-positive points are pinned to the
// kernel's x == 0 special case, which yields exactly 0.
func (g Gamma) CDFBatch(xs, out []float64) {
	for i, x := range xs {
		if x <= 0 {
			out[i] = 0
			continue
		}
		out[i] = x / g.Theta
	}
	specfun.GammaIncPBatch(g.K, out, out)
}

// PDFBatch writes the LogNormal density at every xs[i] into out[i].
func (l LogNormal) PDFBatch(xs, out []float64) {
	for i, x := range xs {
		if x <= 0 {
			out[i] = 0
			continue
		}
		z := (math.Log(x) - l.Mu) / l.Sigma
		out[i] = specfun.NormPDF(z) / (x * l.Sigma)
	}
}

// CDFBatch writes Phi((ln xs[i] - mu)/sigma) into out[i]. Non-positive
// points standardize to -Inf, which the Normal kernel maps to exactly 0.
func (l LogNormal) CDFBatch(xs, out []float64) {
	for i, x := range xs {
		if x <= 0 {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = (math.Log(x) - l.Mu) / l.Sigma
	}
	specfun.NormCDFBatch(out, out)
}

// PDFBatch writes lambda*exp(-lambda*xs[i]) into out[i].
func (e Exponential) PDFBatch(xs, out []float64) {
	for i, x := range xs {
		if x < 0 {
			out[i] = 0
			continue
		}
		out[i] = e.Lambda * math.Exp(-e.Lambda*x)
	}
}

// CDFBatch writes 1 - exp(-lambda*xs[i]) into out[i].
func (e Exponential) CDFBatch(xs, out []float64) {
	for i, x := range xs {
		if x <= 0 {
			out[i] = 0
			continue
		}
		out[i] = -math.Expm1(-e.Lambda * x)
	}
}

// PDFBatch evaluates the truncated density at every xs[i], routing
// through the base law's batched path when it has one so the truncation
// constants are applied in a tight loop.
func (t *Truncated) PDFBatch(xs, out []float64) {
	if b, ok := t.Base.(BatchContinuous); ok {
		b.PDFBatch(xs, out)
		for i, x := range xs {
			if x < t.Lo || x > t.Hi {
				out[i] = 0
				continue
			}
			out[i] /= t.mass
		}
		return
	}
	for i, x := range xs {
		out[i] = t.PDF(x)
	}
}

// CDFBatch evaluates the truncated CDF at every xs[i] through the base
// law's batched path when available.
func (t *Truncated) CDFBatch(xs, out []float64) {
	b, ok := t.Base.(BatchContinuous)
	if !ok {
		for i, x := range xs {
			out[i] = t.CDF(x)
		}
		return
	}
	b.CDFBatch(xs, out)
	for i, x := range xs {
		switch {
		case x <= t.Lo:
			out[i] = 0
		case x >= t.Hi:
			out[i] = 1
		default:
			v := (out[i] - t.fLo) / t.mass
			switch {
			case v < 0:
				out[i] = 0
			case v > 1:
				out[i] = 1
			default:
				out[i] = v
			}
		}
	}
}
