package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
	"reskit/internal/specfun"
)

// Beta is the Beta law with shape parameters Alpha and BetaP on [0, 1].
// Rescaled with Affine it yields flexible bounded-support laws — the
// natural shape family for a checkpoint duration known to live in
// [C_min, C_max] (the paper's Section 3 support assumption) when the
// mass need not be symmetric or uniform.
type Beta struct {
	Alpha float64
	BetaP float64
}

// NewBeta returns Beta(alpha, beta), both positive.
func NewBeta(alpha, beta float64) Beta {
	validatePositive("alpha", "Beta", alpha)
	validatePositive("beta", "Beta", beta)
	return Beta{Alpha: alpha, BetaP: beta}
}

// NewBetaOn returns the Beta(alpha, beta) law rescaled to [lo, hi]: the
// ready-made bounded checkpoint-duration law.
func NewBetaOn(alpha, beta, lo, hi float64) Affine {
	if !(lo < hi) {
		panic(fmt.Sprintf("dist: NewBetaOn requires lo < hi, got [%g, %g]", lo, hi))
	}
	return NewAffine(NewBeta(alpha, beta), hi-lo, lo)
}

func (b Beta) String() string { return fmt.Sprintf("Beta(%g, %g)", b.Alpha, b.BetaP) }

// PDF returns x^{alpha-1}(1-x)^{beta-1} / B(alpha, beta) on [0, 1].
func (b Beta) PDF(x float64) float64 {
	if x > 0 && x < 1 {
		return math.Exp(b.LogPDF(x))
	}
	return b.boundaryPDF(x)
}

// boundaryPDF handles x outside the open interval (0, 1).
func (b Beta) boundaryPDF(x float64) float64 {
	if x < 0 || x > 1 || math.IsNaN(x) {
		return 0
	}
	if x == 0 {
		switch {
		case b.Alpha < 1:
			return math.Inf(1)
		case b.Alpha == 1:
			return math.Exp(-specfun.LogBeta(b.Alpha, b.BetaP))
		default:
			return 0
		}
	}
	// x == 1.
	switch {
	case b.BetaP < 1:
		return math.Inf(1)
	case b.BetaP == 1:
		return math.Exp(-specfun.LogBeta(b.Alpha, b.BetaP))
	default:
		return 0
	}
}

// LogPDF returns log(PDF(x)).
func (b Beta) LogPDF(x float64) float64 {
	if x > 0 && x < 1 {
		return (b.Alpha-1)*math.Log(x) + (b.BetaP-1)*math.Log1p(-x) - specfun.LogBeta(b.Alpha, b.BetaP)
	}
	// Boundary and out-of-support cases share PDF's logic, which does
	// not recurse for x outside (0, 1).
	p := b.boundaryPDF(x)
	if math.IsInf(p, 1) {
		return math.Inf(1)
	}
	if p == 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// CDF returns the regularized incomplete beta I_x(alpha, beta).
func (b Beta) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	default:
		return specfun.BetaIncReg(b.Alpha, b.BetaP, x)
	}
}

// Quantile inverts the CDF.
func (b Beta) Quantile(p float64) float64 {
	return specfun.BetaIncRegInv(b.Alpha, b.BetaP, p)
}

// Mean returns alpha / (alpha + beta).
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.BetaP) }

// Variance returns alpha*beta / ((alpha+beta)^2 (alpha+beta+1)).
func (b Beta) Variance() float64 {
	s := b.Alpha + b.BetaP
	return b.Alpha * b.BetaP / (s * s * (s + 1))
}

// Support returns [0, 1].
func (b Beta) Support() (float64, float64) { return 0, 1 }

// Sample draws a variate as Ga/(Ga+Gb) with independent Gamma variates.
func (b Beta) Sample(r *rng.Source) float64 {
	ga := r.Gamma(b.Alpha, 1)
	gb := r.Gamma(b.BetaP, 1)
	return ga / (ga + gb)
}
