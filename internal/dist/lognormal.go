package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
	"reskit/internal/specfun"
)

// LogNormal is the law of exp(N(Mu, Sigma^2)). Truncated to [a, b] it is
// the checkpoint-duration law of Section 3.2.4 of the paper. Mu and Sigma
// are the parameters of the underlying Normal; the law's own mean and
// standard deviation are exp(mu + sigma^2/2) and
// sqrt((exp(sigma^2)-1) exp(2mu+sigma^2)).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal returns the LogNormal law with underlying parameters mu
// and sigma. It panics unless sigma > 0 and both parameters are finite.
func NewLogNormal(mu, sigma float64) LogNormal {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		panic(fmt.Sprintf("dist: LogNormal: mu must be finite, got %g", mu))
	}
	validatePositive("sigma", "LogNormal", sigma)
	return LogNormal{Mu: mu, Sigma: sigma}
}

// NewLogNormalFromMoments returns the LogNormal law whose own mean and
// standard deviation equal the given values — the paper parameterizes
// Section 3.2.4 through these "starred" moments mu* and sigma*.
func NewLogNormalFromMoments(mean, stddev float64) LogNormal {
	validatePositive("mean", "LogNormalFromMoments", mean)
	validatePositive("stddev", "LogNormalFromMoments", stddev)
	v := math.Log1p(stddev * stddev / (mean * mean)) // sigma^2
	return LogNormal{Mu: math.Log(mean) - 0.5*v, Sigma: math.Sqrt(v)}
}

func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%g, sigma=%g)", l.Mu, l.Sigma)
}

// PDF returns the density at x (0 for x <= 0).
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return specfun.NormPDF(z) / (x * l.Sigma)
}

// LogPDF returns log(PDF(x)).
func (l LogNormal) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return specfun.LogNormPDF(z) - math.Log(x) - math.Log(l.Sigma)
}

// CDF returns Phi((ln x - mu)/sigma).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return specfun.NormCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns exp(mu + sigma*Phi^{-1}(p)).
func (l LogNormal) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	return math.Exp(l.Mu + l.Sigma*specfun.NormQuantile(p))
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + 0.5*l.Sigma*l.Sigma) }

// Variance returns (exp(sigma^2)-1) exp(2mu+sigma^2).
func (l LogNormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

// Support returns [0, inf).
func (l LogNormal) Support() (float64, float64) { return 0, math.Inf(1) }

// Sample draws a variate.
func (l LogNormal) Sample(r *rng.Source) float64 { return r.LogNormal(l.Mu, l.Sigma) }
