package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Affine is the law of Scale*X + Shift for a base law X and Scale > 0.
// It expresses physical checkpoint-duration models directly: with a
// checkpoint payload of S bytes, a write startup latency of L seconds
// and stochastic inverse bandwidth B ~ base (s/byte), the duration is
// C = S*B + L = Affine{Base: B, Scale: S, Shift: L}.
type Affine struct {
	Base  Continuous
	Scale float64
	Shift float64
}

// NewAffine returns Scale*Base + Shift with Scale > 0.
func NewAffine(base Continuous, scale, shift float64) Affine {
	if base == nil {
		panic("dist: Affine: nil base law")
	}
	validatePositive("scale", "Affine", scale)
	if math.IsNaN(shift) || math.IsInf(shift, 0) {
		panic(fmt.Sprintf("dist: Affine: shift must be finite, got %g", shift))
	}
	return Affine{Base: base, Scale: scale, Shift: shift}
}

func (a Affine) String() string {
	return fmt.Sprintf("%g*(%v) + %g", a.Scale, a.Base, a.Shift)
}

// inv maps x back to the base coordinate.
func (a Affine) inv(x float64) float64 { return (x - a.Shift) / a.Scale }

// PDF returns base.PDF((x-shift)/scale) / scale.
func (a Affine) PDF(x float64) float64 { return a.Base.PDF(a.inv(x)) / a.Scale }

// LogPDF returns log(PDF(x)).
func (a Affine) LogPDF(x float64) float64 { return a.Base.LogPDF(a.inv(x)) - math.Log(a.Scale) }

// CDF returns base.CDF((x-shift)/scale).
func (a Affine) CDF(x float64) float64 { return a.Base.CDF(a.inv(x)) }

// Quantile returns scale*baseQuantile(p) + shift.
func (a Affine) Quantile(p float64) float64 { return a.Scale*a.Base.Quantile(p) + a.Shift }

// Mean returns scale*baseMean + shift.
func (a Affine) Mean() float64 { return a.Scale*a.Base.Mean() + a.Shift }

// Variance returns scale^2 * baseVariance.
func (a Affine) Variance() float64 { return a.Scale * a.Scale * a.Base.Variance() }

// Support returns the transformed support.
func (a Affine) Support() (float64, float64) {
	lo, hi := a.Base.Support()
	return a.Scale*lo + a.Shift, a.Scale*hi + a.Shift
}

// Sample draws scale*X + shift.
func (a Affine) Sample(r *rng.Source) float64 { return a.Scale*a.Base.Sample(r) + a.Shift }
