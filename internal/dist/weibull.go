package dist

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// Weibull is the Weibull law with shape K and scale Lambda on [0, inf).
// It is a standard model for empirical checkpoint-duration traces (heavy
// or light tails depending on K) and is provided as an extension beyond
// the four laws the paper works out explicitly; the generic optimizer of
// the preemptible scenario handles it numerically.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// NewWeibull returns Weibull(shape k, scale lambda), both positive.
func NewWeibull(k, lambda float64) Weibull {
	validatePositive("shape k", "Weibull", k)
	validatePositive("scale lambda", "Weibull", lambda)
	return Weibull{K: k, Lambda: lambda}
}

func (w Weibull) String() string { return fmt.Sprintf("Weibull(k=%g, lambda=%g)", w.K, w.Lambda) }

// PDF returns (k/lambda)(x/lambda)^{k-1} e^{-(x/lambda)^k} for x >= 0.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case w.K < 1:
			return math.Inf(1)
		case w.K == 1:
			return 1 / w.Lambda
		default:
			return 0
		}
	}
	z := x / w.Lambda
	return w.K / w.Lambda * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

// LogPDF returns log(PDF(x)).
func (w Weibull) LogPDF(x float64) float64 {
	p := w.PDF(x)
	if p == 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// CDF returns 1 - e^{-(x/lambda)^k}.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

// Quantile returns lambda * (-log(1-p))^{1/k}.
func (w Weibull) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

// Mean returns lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// Variance returns lambda^2 [Gamma(1+2/k) - Gamma(1+1/k)^2].
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// Support returns [0, inf).
func (w Weibull) Support() (float64, float64) { return 0, math.Inf(1) }

// Sample draws a variate by inversion.
func (w Weibull) Sample(r *rng.Source) float64 { return r.Weibull(w.K, w.Lambda) }
