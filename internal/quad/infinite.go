package quad

import "math"

// SemiInfinite integrates f over [a, +inf) by the substitution
// x = a + t/(1-t), t in [0, 1), which maps the half-line onto the unit
// interval; dx = dt/(1-t)^2. The transformed integrand is handed to the
// adaptive Kronrod integrator.
func SemiInfinite(f func(float64) float64, a, absTol, relTol float64) Result {
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		om := 1 - t
		x := a + t/om
		v := f(x)
		if v == 0 || math.IsNaN(v) {
			return 0
		}
		return v / (om * om)
	}
	return Kronrod(g, 0, 1, absTol, relTol)
}

// WholeLine integrates f over (-inf, +inf) by the substitution
// x = t/(1-t^2), t in (-1, 1); dx = (1+t^2)/(1-t^2)^2 dt.
func WholeLine(f func(float64) float64, absTol, relTol float64) Result {
	g := func(t float64) float64 {
		om := 1 - t*t
		if om <= 0 {
			return 0
		}
		x := t / om
		v := f(x)
		if v == 0 || math.IsNaN(v) {
			return 0
		}
		return v * (1 + t*t) / (om * om)
	}
	return Kronrod(g, -1, 1, absTol, relTol)
}

// SumToTolerance sums f(k0) + f(k0+1) + ... stopping once `patience`
// consecutive terms contribute less than tol relative to the running sum,
// or after maxTerms terms. It implements the tail cutoff used for Poisson
// expectations where the summand eventually decays super-geometrically.
func SumToTolerance(f func(int) float64, k0 int, tol float64, patience, maxTerms int) float64 {
	if tol <= 0 {
		tol = 1e-15
	}
	if patience <= 0 {
		patience = 5
	}
	if maxTerms <= 0 {
		maxTerms = 1 << 20
	}
	var sum float64
	quiet := 0
	for i := 0; i < maxTerms; i++ {
		term := f(k0 + i)
		if math.IsNaN(term) {
			term = 0
		}
		sum += term
		if math.Abs(term) <= tol*(1+math.Abs(sum)) {
			quiet++
			if quiet >= patience {
				break
			}
		} else {
			quiet = 0
		}
	}
	return sum
}
