package quad

import (
	"math"
	"sync"
	"testing"
)

// batchOf adapts a scalar function into a BatchFunc for tests.
func batchOf(f func(float64) float64) BatchFunc {
	return func(xs, out []float64) {
		for i, x := range xs {
			out[i] = f(x)
		}
	}
}

func TestKronrodBatchMatchesScalar(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64 // analytic value
	}{
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"cos", math.Cos, 0, math.Pi / 2, 1},
		{"gauss", func(x float64) float64 { return math.Exp(-x * x) }, -3, 3,
			math.Sqrt(math.Pi) * (math.Erf(3))},
		{"peak", func(x float64) float64 { return 1 / (1 + 1e4*x*x) }, -1, 1,
			2 * math.Atan(100) / 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scalar := Kronrod(tc.f, tc.a, tc.b, 1e-12, 1e-10)
			batch := KronrodBatch(batchOf(tc.f), tc.a, tc.b, 1e-12, 1e-10)
			if scalar.Value != batch.Value || scalar.AbsErr != batch.AbsErr ||
				scalar.NumEvals != batch.NumEvals {
				t.Errorf("batch result %+v differs from scalar %+v", batch, scalar)
			}
			if math.Abs(batch.Value-tc.want) > 1e-9*(1+math.Abs(tc.want)) {
				t.Errorf("value %.15g, want %.15g", batch.Value, tc.want)
			}
		})
	}
}

func TestKronrodBatchReversedAndEmpty(t *testing.T) {
	fwd := KronrodBatch(batchOf(math.Exp), 0, 1, 0, 0)
	rev := KronrodBatch(batchOf(math.Exp), 1, 0, 0, 0)
	if fwd.Value != -rev.Value {
		t.Errorf("reversed bounds: %g vs %g", fwd.Value, rev.Value)
	}
	if r := KronrodBatch(batchOf(math.Exp), 2, 2, 0, 0); r.Value != 0 || r.NumEvals != 0 {
		t.Errorf("empty interval: %+v", r)
	}
}

func TestGaussLegendreBatchMatchesScalar(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 2*x + math.Sin(x) }
	for _, n := range []int{1, 2, 5, 16, 64} {
		scalar := GaussLegendre(f, -1.5, 2.5, n)
		batch := GaussLegendreBatch(batchOf(f), -1.5, 2.5, n)
		if scalar != batch {
			t.Errorf("n=%d: batch %g differs from scalar %g", n, batch, scalar)
		}
	}
	if v := GaussLegendreBatch(batchOf(f), 3, 3, 8); v != 0 {
		t.Errorf("empty interval: %g", v)
	}
}

// TestKronrodBatchZeroAllocSteadyState asserts the pooled workspace makes
// repeated integration allocation-free after warm-up (the acceptance
// criterion measured by BenchmarkKronrodBatchPanel).
func TestKronrodBatchZeroAllocSteadyState(t *testing.T) {
	f := BatchFunc(func(xs, out []float64) {
		for i, x := range xs {
			out[i] = math.Exp(-x * x)
		}
	})
	KronrodBatch(f, 0, 4, 1e-12, 1e-10) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		KronrodBatch(f, 0, 4, 1e-12, 1e-10)
	})
	if allocs > 0 {
		t.Errorf("steady-state KronrodBatch allocates %.2f objects/op, want 0", allocs)
	}
}

func TestGaussLegendreBatchZeroAllocSteadyState(t *testing.T) {
	f := BatchFunc(func(xs, out []float64) {
		for i, x := range xs {
			out[i] = math.Sin(x)
		}
	})
	GaussLegendreBatch(f, 0, 2, 32) // warm pool and rule cache
	allocs := testing.AllocsPerRun(200, func() {
		GaussLegendreBatch(f, 0, 2, 32)
	})
	if allocs > 0 {
		t.Errorf("steady-state GaussLegendreBatch allocates %.2f objects/op, want 0", allocs)
	}
}

// TestLegendreCacheConcurrent hammers the copy-on-write rule cache from
// many goroutines; run under -race this proves lookups don't serialize
// on a mutex yet stay safe.
func TestLegendreCacheConcurrent(t *testing.T) {
	orders := []int{3, 7, 15, 21, 33, 48, 64, 100}
	var wg sync.WaitGroup
	rules := make([][]*legendreRule, 16)
	for g := 0; g < 16; g++ {
		g := g
		rules[g] = make([]*legendreRule, len(orders))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, n := range orders {
					rules[g][i] = legendre(n)
				}
			}
		}()
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		for i := range orders {
			if rules[g][i] != rules[0][i] {
				t.Fatalf("goroutines observed different cached rules for n=%d", orders[i])
			}
		}
	}
}

func BenchmarkKronrodBatchPanel(b *testing.B) {
	f := BatchFunc(func(xs, out []float64) {
		for i, x := range xs {
			out[i] = math.Exp(-x*x) * math.Cos(3*x)
		}
	})
	KronrodBatch(f, 0, 4, 1e-12, 1e-10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KronrodBatch(f, 0, 4, 1e-12, 1e-10)
	}
}

func BenchmarkKronrodScalarPanel(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x) * math.Cos(3*x) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Kronrod(f, 0, 4, 1e-12, 1e-10)
	}
}
