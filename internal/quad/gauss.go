package quad

import (
	"math"
	"sync"
	"sync/atomic"
)

// legendreRule holds Gauss–Legendre nodes and weights on [-1, 1].
type legendreRule struct {
	nodes   []float64
	weights []float64
}

// legendreCache is a copy-on-write map from rule order to rule: readers
// take a lock-free atomic load, so concurrent table builds never
// serialize on rule lookup. Writers clone the map and CAS it in; a lost
// race merely recomputes an identical (immutable) rule.
var legendreCache atomic.Pointer[map[int]*legendreRule]

// legendre returns the n-point Gauss–Legendre rule, computing and caching
// it on first use.
func legendre(n int) *legendreRule {
	if m := legendreCache.Load(); m != nil {
		if r, ok := (*m)[n]; ok {
			return r
		}
	}
	r := computeLegendre(n)
	for {
		old := legendreCache.Load()
		var prev map[int]*legendreRule
		if old != nil {
			if exist, ok := (*old)[n]; ok {
				return exist
			}
			prev = *old
		}
		next := make(map[int]*legendreRule, len(prev)+1)
		for k, v := range prev {
			next[k] = v
		}
		next[n] = r
		if legendreCache.CompareAndSwap(old, &next) {
			return r
		}
	}
}

// computeLegendre builds the n-point rule. Nodes are roots of P_n found
// by Newton iteration from the Chebyshev-based initial guess; weights are
// 2 / ((1-x^2) P'_n(x)^2).
func computeLegendre(n int) *legendreRule {
	r := &legendreRule{
		nodes:   make([]float64, n),
		weights: make([]float64, n),
	}
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess (Abramowitz & Stegun 22.16.6 flavor).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, x
			for k := 2; k <= n; k++ {
				p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
			}
			// Derivative via the standard identity.
			dp = float64(n) * (x*p1 - p0) / (x*x - 1)
			dx := p1 / dp
			x -= dx
			if math.Abs(dx) <= 1e-16*(1+math.Abs(x)) {
				break
			}
		}
		w := 2 / ((1 - x*x) * dp * dp)
		r.nodes[i] = -x
		r.weights[i] = w
		r.nodes[n-1-i] = x
		r.weights[n-1-i] = w
	}
	return r
}

// GaussLegendre integrates f over [a, b] with a fixed n-point
// Gauss–Legendre rule (n >= 1). It is exact for polynomials of degree
// 2n-1 and is the workhorse for the smooth inner integrals of the dynamic
// strategy where adaptive error control would be wasted.
func GaussLegendre(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	if a == b {
		return 0
	}
	r := legendre(n)
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	var sum float64
	for i := range r.nodes {
		sum += r.weights[i] * f(mid+half*r.nodes[i])
	}
	countEvals(n)
	return sum * half
}

// glWS carries the node/value buffers of one batched Gauss–Legendre
// evaluation; pooled so repeated fixed-order integration allocates
// nothing in steady state.
type glWS struct {
	xs, fs []float64
}

var glPool = sync.Pool{New: func() interface{} { return new(glWS) }}

// GaussLegendreBatch is GaussLegendre for a batched integrand: one call
// of f covers all n nodes, using pooled buffers.
func GaussLegendreBatch(f BatchFunc, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	if a == b {
		return 0
	}
	r := legendre(n)
	ws := glPool.Get().(*glWS)
	if cap(ws.xs) < n {
		ws.xs = make([]float64, n)
		ws.fs = make([]float64, n)
	}
	xs, fs := ws.xs[:n], ws.fs[:n]
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	for i, x := range r.nodes {
		xs[i] = mid + half*x
	}
	f(xs, fs)
	var sum float64
	for i, w := range r.weights {
		sum += w * fs[i]
	}
	glPool.Put(ws)
	countEvals(n)
	return sum * half
}
