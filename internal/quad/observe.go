package quad

import (
	"sync/atomic"

	"reskit/internal/obs"
)

// evalCounter, when set, receives the integrand-evaluation count of every
// quadrature call in the package. It is process-global because quadrature
// runs deep inside strategy constructors and coefficient-table builds
// where threading an explicit handle through every call chain would
// pollute otherwise-pure numerical APIs. Reads are a single atomic load,
// so the disabled path costs nothing measurable per integration.
var evalCounter atomic.Pointer[obs.Counter]

// ObserveEvals installs c as the destination for integrand-evaluation
// counts from all quadrature routines (Kronrod, Gauss–Legendre, Simpson,
// tanh-sinh and the semi-infinite transforms built on them). Pass nil to
// disable. Counting never affects numerical results.
func ObserveEvals(c *obs.Counter) {
	evalCounter.Store(c)
}

// countEvals reports n integrand evaluations to the installed counter.
func countEvals(n int) {
	if c := evalCounter.Load(); c != nil {
		c.Add(int64(n))
	}
}
