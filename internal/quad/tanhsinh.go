package quad

import "math"

// TanhSinh integrates f over the finite interval [a, b] with the
// double-exponential (tanh-sinh) rule, which converges exponentially
// even when the integrand has integrable singularities at the endpoints
// — e.g. the x^{k-1} blow-up of Gamma densities with shape k < 1, or the
// Beta density edges, which defeat polynomial-based rules. Node
// positions are computed as distances from the nearer endpoint
// (delta = (b-a) e^{-2s}/(1+e^{-2s}) for s = pi/2 sinh t), so nodes
// approach the singularity to within one ulp of the endpoint instead of
// being rounded onto it. Levels are halved until the estimate
// stabilizes to tol (defaultTol when tol <= 0).
//
// Accuracy limit: because f receives the absolute abscissa, a node
// closer to a NONZERO endpoint than one ulp rounds onto it; f evaluated
// there typically diverges and is treated as 0, losing the mass within
// that last ulp (~sqrt(ulp) ~ 1e-8 for an inverse-square-root
// singularity at x = 1). Singularities at x = 0 do not suffer this:
// subnormals represent distances down to 5e-324.
func TanhSinh(f func(float64) float64, a, b, tol float64) Result {
	if tol <= 0 {
		tol = defaultTol
	}
	if a == b {
		return Result{}
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	half := 0.5 * (b - a)
	mid := 0.5 * (a + b)

	evals := 0
	defer func() { countEvals(evals) }()
	safe := func(x float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}

	// nodePair evaluates the two symmetric nodes at parameter +-t > 0 and
	// returns their weighted sum. The weight is
	// w(t) = (pi/2) cosh(t) / cosh^2(s) = (pi/2) cosh(t) * 4 em/(1+em)^2
	// with s = (pi/2) sinh(t) and em = e^{-2s}, overflow-free.
	nodePair := func(t float64) float64 {
		s := 0.5 * math.Pi * math.Sinh(t)
		em := math.Exp(-2 * s)
		onePlus := 1 + em
		w := 0.5 * math.Pi * math.Cosh(t) * 4 * em / (onePlus * onePlus)
		if w == 0 || math.IsNaN(w) {
			return 0
		}
		delta := (b - a) * em / onePlus // distance from the endpoint
		if delta == 0 {
			return 0
		}
		return w * (safe(b-delta) + safe(a+delta))
	}

	const tMax = 6.5
	h := 1.0
	sum := 0.5 * math.Pi * safe(mid) // t = 0 node: w = pi/2
	prev := math.Inf(1)
	value := sum * h * half

	for level := 0; level < 12; level++ {
		if level > 0 {
			h /= 2
		}
		stride := 1
		if level > 0 {
			stride = 2
		}
		for k := 1; float64(k)*h <= tMax; k += stride {
			sum += nodePair(float64(k) * h)
		}
		value = sum * h * half
		if level > 0 && math.Abs(value-prev) <= tol*(1+math.Abs(value)) {
			return Result{Value: sign * value, AbsErr: math.Abs(value - prev), NumEvals: evals}
		}
		prev = value
	}
	return Result{Value: sign * value, AbsErr: math.Abs(value - prev), NumEvals: evals}
}
