package quad

import (
	"math"
	"sync"
)

// BatchFunc evaluates an integrand at every point of xs, writing f(xs[i])
// into out[i]. len(out) == len(xs) always holds; implementations must not
// retain either slice past the call. Batched integrands let distribution
// laws amortize per-point setup (truncation constants, log-normalizers)
// across all nodes of a quadrature panel, and let the adaptive driver run
// without per-panel allocations.
type BatchFunc func(xs, out []float64)

// Gauss–Kronrod 7-15 pair: 15 Kronrod nodes on [-1, 1] (symmetric), the
// odd-indexed ones being the embedded 7-point Gauss rule. Constants from
// the QUADPACK dqk15 tables.
var (
	gk15Nodes = [8]float64{
		0.991455371120812639206854697526329,
		0.949107912342758524526189684047851,
		0.864864423359769072789712788640926,
		0.741531185599394439863864773280788,
		0.586087235467691130294144838258730,
		0.405845151377397166906606412076961,
		0.207784955007898467600689403773245,
		0.000000000000000000000000000000000,
	}
	gk15WeightsK = [8]float64{
		0.022935322010529224963732008058970,
		0.063092092629978553290700663189204,
		0.104790010322250183839876322541518,
		0.140653259715525918745189590510238,
		0.169004726639267902826583426598550,
		0.190350578064785409913256402421014,
		0.204432940075298892414161999234649,
		0.209482141084727828012999174891714,
	}
	gk7WeightsG = [4]float64{
		0.129484966168869693270611432679082,
		0.279705391489276667901467771423780,
		0.381830050505118944950369775488975,
		0.417959183673469387755102040816327,
	}
)

// kronrodWS is the reusable state of one adaptive Kronrod integration:
// the 15-node position/value buffers handed to the batched integrand and
// the panel heap backing array. Pooled so steady-state integration
// allocates nothing.
type kronrodWS struct {
	xs   [15]float64
	fv   [15]float64
	heap []panel
}

var kronrodPool = sync.Pool{
	New: func() interface{} {
		return &kronrodWS{heap: make([]panel, 0, maxKronrodPanels+1)}
	},
}

// gk15Batch applies the 7-15 pair to f on [a, b] with one batched call
// covering all 15 nodes, and returns the Kronrod estimate and an error
// estimate following the QUADPACK heuristic.
func gk15Batch(f BatchFunc, a, b float64, ws *kronrodWS) (value, errEst float64) {
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)

	// Node layout mirrors the fv indexing: xs[i] descends from a for
	// i < 7, xs[7] is the center, xs[14-i] ascends toward b.
	for i, x := range gk15Nodes {
		ws.xs[i] = mid - half*x
		if i < 7 {
			ws.xs[14-i] = mid + half*x
		}
	}
	f(ws.xs[:], ws.fv[:])
	value, errEst, _ = gk15FromValues(&ws.fv, half)
	return value, errEst
}

// gk15BatchCounted is gk15Batch reporting how many node values were
// non-finite and sanitized to 0.
func gk15BatchCounted(f BatchFunc, a, b float64, ws *kronrodWS) (value, errEst float64, bad int) {
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	for i, x := range gk15Nodes {
		ws.xs[i] = mid - half*x
		if i < 7 {
			ws.xs[14-i] = mid + half*x
		}
	}
	f(ws.xs[:], ws.fv[:])
	return gk15FromValues(&ws.fv, half)
}

// gk15FromValues computes the Kronrod/Gauss estimates and the QUADPACK
// error heuristic from the 15 node values (non-finite values treated as
// 0 and counted in bad).
func gk15FromValues(fv *[15]float64, half float64) (value, errEst float64, bad int) {
	for i, v := range fv {
		if math.IsNaN(v) {
			fv[i] = 0
			bad++
		}
	}

	var kron, gauss float64
	for i := 0; i < 7; i++ {
		kron += gk15WeightsK[i] * (fv[i] + fv[14-i])
	}
	kron += gk15WeightsK[7] * fv[7]
	// Gauss nodes are the odd Kronrod indices 1,3,5 plus the center.
	for j, i := range [3]int{1, 3, 5} {
		gauss += gk7WeightsG[j] * (fv[i] + fv[14-i])
	}
	gauss += gk7WeightsG[3] * fv[7]

	// QUADPACK-style error estimate, computed on the unscaled sums.
	meanK := kron / 2
	var resAbs, resAsc float64
	for i := 0; i < 15; i++ {
		w := gk15WeightsK[min(i, 14-i)]
		resAbs += w * math.Abs(fv[i])
		resAsc += w * math.Abs(fv[i]-meanK)
	}
	resAbs *= half
	resAsc *= half
	errEst = math.Abs(kron-gauss) * half
	kron *= half
	if resAsc != 0 && errEst != 0 {
		errEst = resAsc * math.Min(1, math.Pow(200*errEst/resAsc, 1.5))
	}
	if resAbs > 1e-290 {
		errEst = math.Max(errEst, 50*2.22e-16*resAbs)
	}
	return kron, errEst, bad
}

// panel is one subinterval in the adaptive subdivision queue.
type panel struct {
	a, b   float64
	value  float64
	errEst float64
}

// The panel queue is a hand-rolled max-heap on errEst: container/heap
// would box every panel through interface{} and allocate on each push,
// defeating the pooled workspace.

func heapInit(h []panel) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		heapSiftDown(h, i)
	}
}

func heapSiftDown(h []panel, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		big := l
		if r := l + 1; r < len(h) && h[r].errEst > h[l].errEst {
			big = r
		}
		if h[i].errEst >= h[big].errEst {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func heapSiftUp(h []panel, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].errEst >= h[i].errEst {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// maxKronrodPanels caps the subdivision effort; the library's integrands
// converge in well under a hundred panels.
const maxKronrodPanels = 2048

// Kronrod integrates f over the finite interval [a, b] with globally
// adaptive Gauss–Kronrod (G7, K15) subdivision until the summed error
// estimate falls below max(absTol, relTol*|integral|). Non-positive
// tolerances default to 1e-12 absolute / 1e-10 relative.
//
// The scalar integrand is adapted onto the batched driver; callers on a
// hot path should implement BatchFunc directly and use KronrodBatch.
func Kronrod(f func(float64) float64, a, b, absTol, relTol float64) Result {
	return KronrodBatch(func(xs, out []float64) {
		for i, x := range xs {
			out[i] = f(x)
		}
	}, a, b, absTol, relTol)
}

// KronrodBatch is Kronrod for a batched integrand: each adaptive panel
// costs exactly one call of f covering all 15 Kronrod nodes, and the
// driver reuses a pooled workspace so steady-state integration performs
// zero heap allocations.
func KronrodBatch(f BatchFunc, a, b, absTol, relTol float64) Result {
	if absTol <= 0 {
		absTol = 1e-12
	}
	if relTol <= 0 {
		relTol = 1e-10
	}
	if a == b {
		return Result{Converged: true}
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}

	ws := kronrodPool.Get().(*kronrodWS)
	h := ws.heap[:0]
	n, bad := 0, 0

	// Seed with several panels rather than one: a feature much narrower
	// than the first panel's node spacing would otherwise be invisible to
	// the error estimate and never trigger subdivision.
	const seedPanels = 10
	var total, totalErr float64
	for i := 0; i < seedPanels; i++ {
		pa := a + (b-a)*float64(i)/seedPanels
		pb := a + (b-a)*float64(i+1)/seedPanels
		v, e, nb := gk15BatchCounted(f, pa, pb, ws)
		n += 15
		bad += nb
		h = append(h, panel{a: pa, b: pb, value: v, errEst: e})
		total += v
		totalErr += e
	}
	heapInit(h)

	converged := false
	for len(h) < maxKronrodPanels {
		if totalErr <= math.Max(absTol, relTol*math.Abs(total)) {
			converged = true
			break
		}
		worst := h[0]
		m := 0.5 * (worst.a + worst.b)
		if m == worst.a || m == worst.b {
			// Interval exhausted at machine precision; stop refining.
			break
		}
		lv, le, lb := gk15BatchCounted(f, worst.a, m, ws)
		rv, re, rb := gk15BatchCounted(f, m, worst.b, ws)
		n += 30
		bad += lb + rb
		total += lv + rv - worst.value
		totalErr += le + re - worst.errEst
		h[0] = panel{worst.a, m, lv, le}
		heapSiftDown(h, 0)
		h = append(h, panel{m, worst.b, rv, re})
		heapSiftUp(h, len(h)-1)
	}

	if !converged {
		// The loop can also exit because the subdivision budget or
		// machine precision was exhausted; re-check the tolerance so a
		// last refinement that landed below it still counts.
		converged = totalErr <= math.Max(absTol, relTol*math.Abs(total))
	}
	ws.heap = h[:0]
	kronrodPool.Put(ws)
	countEvals(n)
	return Result{Value: sign * total, AbsErr: totalErr, NumEvals: n, BadEvals: bad, Converged: converged}
}
