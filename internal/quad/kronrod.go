package quad

import (
	"container/heap"
	"math"
)

// Gauss–Kronrod 7-15 pair: 15 Kronrod nodes on [-1, 1] (symmetric), the
// odd-indexed ones being the embedded 7-point Gauss rule. Constants from
// the QUADPACK dqk15 tables.
var (
	gk15Nodes = [8]float64{
		0.991455371120812639206854697526329,
		0.949107912342758524526189684047851,
		0.864864423359769072789712788640926,
		0.741531185599394439863864773280788,
		0.586087235467691130294144838258730,
		0.405845151377397166906606412076961,
		0.207784955007898467600689403773245,
		0.000000000000000000000000000000000,
	}
	gk15WeightsK = [8]float64{
		0.022935322010529224963732008058970,
		0.063092092629978553290700663189204,
		0.104790010322250183839876322541518,
		0.140653259715525918745189590510238,
		0.169004726639267902826583426598550,
		0.190350578064785409913256402421014,
		0.204432940075298892414161999234649,
		0.209482141084727828012999174891714,
	}
	gk7WeightsG = [4]float64{
		0.129484966168869693270611432679082,
		0.279705391489276667901467771423780,
		0.381830050505118944950369775488975,
		0.417959183673469387755102040816327,
	}
)

// gk15 applies the 7-15 pair to f on [a, b] and returns the Kronrod
// estimate and an error estimate following the QUADPACK heuristic.
func gk15(f func(float64) float64, a, b float64) (value, errEst float64) {
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)

	var fv [15]float64
	for i, x := range gk15Nodes {
		lo := f(mid - half*x)
		hi := f(mid + half*x)
		if math.IsNaN(lo) {
			lo = 0
		}
		if math.IsNaN(hi) {
			hi = 0
		}
		if i == 7 { // center node counted once
			fv[7] = lo
			continue
		}
		fv[i] = lo
		fv[14-i] = hi
	}

	var kron, gauss float64
	for i := 0; i < 7; i++ {
		kron += gk15WeightsK[i] * (fv[i] + fv[14-i])
	}
	kron += gk15WeightsK[7] * fv[7]
	// Gauss nodes are the odd Kronrod indices 1,3,5 plus the center.
	for j, i := range [3]int{1, 3, 5} {
		gauss += gk7WeightsG[j] * (fv[i] + fv[14-i])
	}
	gauss += gk7WeightsG[3] * fv[7]

	// QUADPACK-style error estimate, computed on the unscaled sums.
	meanK := kron / 2
	var resAbs, resAsc float64
	for i := 0; i < 15; i++ {
		w := gk15WeightsK[min(i, 14-i)]
		resAbs += w * math.Abs(fv[i])
		resAsc += w * math.Abs(fv[i]-meanK)
	}
	resAbs *= half
	resAsc *= half
	errEst = math.Abs(kron-gauss) * half
	kron *= half
	gauss *= half
	if resAsc != 0 && errEst != 0 {
		errEst = resAsc * math.Min(1, math.Pow(200*errEst/resAsc, 1.5))
	}
	if resAbs > 1e-290 {
		errEst = math.Max(errEst, 50*2.22e-16*resAbs)
	}
	return kron, errEst
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// panel is one subinterval in the adaptive subdivision queue.
type panel struct {
	a, b   float64
	value  float64
	errEst float64
}

type panelHeap []panel

func (h panelHeap) Len() int            { return len(h) }
func (h panelHeap) Less(i, j int) bool  { return h[i].errEst > h[j].errEst }
func (h panelHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *panelHeap) Push(x interface{}) { *h = append(*h, x.(panel)) }
func (h *panelHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// maxKronrodPanels caps the subdivision effort; the library's integrands
// converge in well under a hundred panels.
const maxKronrodPanels = 2048

// Kronrod integrates f over the finite interval [a, b] with globally
// adaptive Gauss–Kronrod (G7, K15) subdivision until the summed error
// estimate falls below max(absTol, relTol*|integral|). Non-positive
// tolerances default to 1e-12 absolute / 1e-10 relative.
func Kronrod(f func(float64) float64, a, b, absTol, relTol float64) Result {
	if absTol <= 0 {
		absTol = 1e-12
	}
	if relTol <= 0 {
		relTol = 1e-10
	}
	if a == b {
		return Result{}
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	n := 0
	wrapped := func(x float64) float64 {
		n++
		return f(x)
	}

	// Seed with several panels rather than one: a feature much narrower
	// than the first panel's node spacing would otherwise be invisible to
	// the error estimate and never trigger subdivision.
	const seedPanels = 10
	var h panelHeap
	var total, totalErr float64
	for i := 0; i < seedPanels; i++ {
		pa := a + (b-a)*float64(i)/seedPanels
		pb := a + (b-a)*float64(i+1)/seedPanels
		v, e := gk15(wrapped, pa, pb)
		h = append(h, panel{a: pa, b: pb, value: v, errEst: e})
		total += v
		totalErr += e
	}
	heap.Init(&h)

	for len(h) < maxKronrodPanels {
		if totalErr <= math.Max(absTol, relTol*math.Abs(total)) {
			break
		}
		worst := heap.Pop(&h).(panel)
		m := 0.5 * (worst.a + worst.b)
		if m == worst.a || m == worst.b {
			// Interval exhausted at machine precision; put it back and stop.
			heap.Push(&h, worst)
			break
		}
		lv, le := gk15(wrapped, worst.a, m)
		rv, re := gk15(wrapped, m, worst.b)
		total += lv + rv - worst.value
		totalErr += le + re - worst.errEst
		heap.Push(&h, panel{worst.a, m, lv, le})
		heap.Push(&h, panel{m, worst.b, rv, re})
	}
	return Result{Value: sign * total, AbsErr: totalErr, NumEvals: n}
}
