package quad

import (
	"fmt"
	"math"
)

// Result carries an integral estimate together with an error estimate and
// the number of integrand evaluations spent.
type Result struct {
	Value    float64 // integral estimate
	AbsErr   float64 // estimated absolute error
	NumEvals int     // integrand evaluations performed
	BadEvals int     // non-finite integrand values sanitized to 0
	// Converged reports that the driver met its error tolerance (rather
	// than exhausting its subdivision or level budget).
	Converged bool
}

// ConvergenceError is the structured failure report of an integrator:
// the estimate it still produced, the error bound it reached, and how
// many integrand evaluations were non-finite. Integrators never return
// NaN silently — inspect Err when the integrand may misbehave.
type ConvergenceError struct {
	Value    float64 // best estimate despite the failure
	AbsErr   float64 // error estimate actually reached
	NumEvals int     // evaluations spent
	BadEvals int     // non-finite integrand values sanitized to 0
}

// Error implements error.
func (e *ConvergenceError) Error() string {
	if e.BadEvals > 0 {
		return fmt.Sprintf("quad: %d of %d integrand evaluations were non-finite (estimate %g, abs err %g)",
			e.BadEvals, e.NumEvals, e.Value, e.AbsErr)
	}
	return fmt.Sprintf("quad: tolerance not reached after %d evaluations (estimate %g, abs err %g)",
		e.NumEvals, e.Value, e.AbsErr)
}

// Err returns nil when the estimate converged cleanly, and a
// *ConvergenceError when the driver hit its subdivision budget or had to
// sanitize non-finite integrand values. The Value of the Result remains
// the best available estimate either way.
func (r Result) Err() error {
	if r.Converged && r.BadEvals == 0 {
		return nil
	}
	return &ConvergenceError{Value: r.Value, AbsErr: r.AbsErr, NumEvals: r.NumEvals, BadEvals: r.BadEvals}
}

// defaultTol is used when a caller passes a non-positive tolerance.
const defaultTol = 1e-10

// maxSimpsonDepth bounds the recursion of the adaptive Simpson scheme; at
// depth 48 the panel width has shrunk by 2^48 and further refinement only
// churns rounding noise.
const maxSimpsonDepth = 48

// Simpson integrates f over [a, b] with the adaptive Simpson scheme to
// absolute tolerance tol (defaultTol if tol <= 0). If a > b the sign of
// the result is flipped accordingly.
func Simpson(f func(float64) float64, a, b, tol float64) Result {
	if tol <= 0 {
		tol = defaultTol
	}
	sign := 1.0
	if a == b {
		return Result{Converged: true}
	}
	if a > b {
		a, b = b, a
		sign = -1
	}
	n, bad := 0, 0
	eval := func(x float64) float64 {
		n++
		v := f(x)
		if math.IsNaN(v) {
			bad++
			return 0
		}
		return v
	}
	fa, fb := eval(a), eval(b)
	m := 0.5 * (a + b)
	fm := eval(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	v, e := simpsonAux(eval, a, b, fa, fm, fb, whole, tol, maxSimpsonDepth)
	countEvals(n)
	return Result{Value: sign * v, AbsErr: e, NumEvals: n, BadEvals: bad, Converged: e <= tol}
}

func simpsonAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, float64) {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15, math.Abs(delta) / 15
	}
	lv, le := simpsonAux(f, a, m, fa, flm, fm, left, tol/2, depth-1)
	rv, re := simpsonAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
	return lv + rv, le + re
}
