package quad

import (
	"math"
	"testing"
	"testing/quick"
)

type integral struct {
	name string
	f    func(float64) float64
	a, b float64
	want float64
}

func standardIntegrals() []integral {
	return []integral{
		{"x^2 on [0,1]", func(x float64) float64 { return x * x }, 0, 1, 1.0 / 3},
		{"sin on [0,pi]", math.Sin, 0, math.Pi, 2},
		{"exp on [0,1]", math.Exp, 0, 1, math.E - 1},
		{"1/(1+x^2) on [-1,1]", func(x float64) float64 { return 1 / (1 + x*x) }, -1, 1, math.Pi / 2},
		{"gaussian on [-8,8]", func(x float64) float64 {
			return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		}, -8, 8, 0.9999999999999988},
		{"sqrt on [0,4]", math.Sqrt, 0, 4, 16.0 / 3},
		{"x*exp(-x) on [0,20]", func(x float64) float64 { return x * math.Exp(-x) }, 0, 20,
			1 - 21*math.Exp(-20)},
	}
}

func TestSimpsonStandardIntegrals(t *testing.T) {
	for _, in := range standardIntegrals() {
		r := Simpson(in.f, in.a, in.b, 1e-12)
		if math.Abs(r.Value-in.want) > 1e-9*(1+math.Abs(in.want)) {
			t.Errorf("%s: got %.15g want %.15g (err est %g)", in.name, r.Value, in.want, r.AbsErr)
		}
	}
}

func TestKronrodStandardIntegrals(t *testing.T) {
	for _, in := range standardIntegrals() {
		r := Kronrod(in.f, in.a, in.b, 1e-13, 1e-12)
		if math.Abs(r.Value-in.want) > 1e-10*(1+math.Abs(in.want)) {
			t.Errorf("%s: got %.15g want %.15g (err est %g)", in.name, r.Value, in.want, r.AbsErr)
		}
	}
}

func TestGaussLegendreExactForPolynomials(t *testing.T) {
	// n-point rule integrates degree 2n-1 exactly.
	for n := 1; n <= 20; n++ {
		deg := 2*n - 1
		f := func(x float64) float64 { return math.Pow(x, float64(deg)) }
		got := GaussLegendre(f, 0, 1, n)
		want := 1 / (float64(deg) + 1)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d deg=%d: got %.15g want %.15g", n, deg, got, want)
		}
	}
}

func TestGaussLegendreGaussian(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x * x / 2) }
	got := GaussLegendre(f, -10, 10, 64)
	want := math.Sqrt(2 * math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %.15g want %.15g", got, want)
	}
}

func TestReversedAndDegenerateLimits(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r := Simpson(f, 2, 2, 1e-10); r.Value != 0 {
		t.Errorf("degenerate Simpson: %g", r.Value)
	}
	if r := Kronrod(f, 3, 3, 0, 0); r.Value != 0 {
		t.Errorf("degenerate Kronrod: %g", r.Value)
	}
	fw := Kronrod(f, 0, 1, 0, 0).Value
	bw := Kronrod(f, 1, 0, 0, 0).Value
	if math.Abs(fw+bw) > 1e-14 {
		t.Errorf("reversed limits: %g vs %g", fw, bw)
	}
	if GaussLegendre(f, 1, 1, 8) != 0 {
		t.Errorf("degenerate GaussLegendre nonzero")
	}
}

func TestSimpsonMatchesKronrodProperty(t *testing.T) {
	// Random smooth integrands: a*sin(bx) + c*x^2 over random intervals.
	f := func(ua, ub, uc, ulo, uhi float64) bool {
		a := math.Mod(ua, 3)
		b := math.Mod(ub, 3)
		c := math.Mod(uc, 3)
		lo := math.Mod(ulo, 5)
		hi := lo + math.Abs(math.Mod(uhi, 5))
		g := func(x float64) float64 { return a*math.Sin(b*x) + c*x*x }
		s := Simpson(g, lo, hi, 1e-11).Value
		k := Kronrod(g, lo, hi, 1e-12, 1e-11).Value
		return math.Abs(s-k) <= 1e-7*(1+math.Abs(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSemiInfinite(t *testing.T) {
	// Integral of e^{-x} over [0,inf) = 1.
	r := SemiInfinite(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-12, 1e-11)
	if math.Abs(r.Value-1) > 1e-9 {
		t.Errorf("int e^-x: got %.15g", r.Value)
	}
	// Integral of x e^{-x} over [0,inf) = 1 (Gamma(2)).
	r = SemiInfinite(func(x float64) float64 { return x * math.Exp(-x) }, 0, 1e-12, 1e-11)
	if math.Abs(r.Value-1) > 1e-9 {
		t.Errorf("int x e^-x: got %.15g", r.Value)
	}
	// Shifted lower limit: int_2^inf e^{-x} = e^{-2}.
	r = SemiInfinite(func(x float64) float64 { return math.Exp(-x) }, 2, 1e-13, 1e-12)
	if math.Abs(r.Value-math.Exp(-2)) > 1e-10 {
		t.Errorf("int_2 e^-x: got %.15g", r.Value)
	}
}

func TestWholeLine(t *testing.T) {
	// Standard normal density integrates to 1.
	r := WholeLine(func(x float64) float64 {
		return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
	}, 1e-12, 1e-11)
	if math.Abs(r.Value-1) > 1e-9 {
		t.Errorf("whole-line gaussian: got %.15g", r.Value)
	}
	// Cauchy-like: 1/(1+x^2) integrates to pi.
	r = WholeLine(func(x float64) float64 { return 1 / (1 + x*x) }, 1e-12, 1e-11)
	if math.Abs(r.Value-math.Pi) > 1e-8 {
		t.Errorf("whole-line cauchy: got %.15g", r.Value)
	}
}

func TestSumToTolerance(t *testing.T) {
	// Geometric series sum_{k>=0} (1/2)^k = 2.
	got := SumToTolerance(func(k int) float64 { return math.Pow(0.5, float64(k)) }, 0, 1e-16, 8, 0)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("geometric: got %.15g", got)
	}
	// Poisson normalization: sum e^-5 5^k/k! = 1.
	got = SumToTolerance(func(k int) float64 {
		lg := 0.0
		for i := 2; i <= k; i++ {
			lg += math.Log(float64(i))
		}
		return math.Exp(-5 + float64(k)*math.Log(5) - lg)
	}, 0, 1e-16, 8, 0)
	if math.Abs(got-1) > 1e-10 {
		t.Errorf("poisson norm: got %.15g", got)
	}
	// maxTerms respected.
	calls := 0
	SumToTolerance(func(k int) float64 { calls++; return 1 }, 0, 1e-16, 3, 100)
	if calls != 100 {
		t.Errorf("maxTerms not respected: %d calls", calls)
	}
}

func TestKronrodErrorEstimateSane(t *testing.T) {
	r := Kronrod(math.Sin, 0, math.Pi, 1e-13, 1e-12)
	if r.AbsErr < 0 || r.AbsErr > 1e-6 {
		t.Errorf("error estimate out of range: %g", r.AbsErr)
	}
	if r.NumEvals <= 0 {
		t.Errorf("NumEvals not tracked")
	}
}

func TestKronrodNarrowSpike(t *testing.T) {
	// A narrow Gaussian spike inside a wide interval forces subdivision.
	f := func(x float64) float64 {
		d := x - 0.123
		return math.Exp(-d * d / (2 * 1e-4))
	}
	want := math.Sqrt(2*math.Pi) * 1e-2 // sigma = 1e-2
	r := Kronrod(f, -10, 10, 1e-13, 1e-11)
	if math.Abs(r.Value-want) > 1e-8 {
		t.Errorf("spike: got %.15g want %.15g", r.Value, want)
	}
}

func TestTanhSinhSmoothIntegrals(t *testing.T) {
	for _, in := range standardIntegrals() {
		r := TanhSinh(in.f, in.a, in.b, 1e-12)
		if math.Abs(r.Value-in.want) > 1e-9*(1+math.Abs(in.want)) {
			t.Errorf("%s: got %.15g want %.15g", in.name, r.Value, in.want)
		}
	}
}

func TestTanhSinhEndpointSingularities(t *testing.T) {
	// 1/sqrt(x) on (0, 1] integrates to 2 — Kronrod struggles, tanh-sinh nails it.
	r := TanhSinh(func(x float64) float64 { return 1 / math.Sqrt(x) }, 0, 1, 1e-12)
	if math.Abs(r.Value-2) > 1e-9 {
		t.Errorf("1/sqrt(x): got %.15g", r.Value)
	}
	// log(x) on (0, 1]: integral = -1.
	r = TanhSinh(math.Log, 0, 1, 1e-12)
	if math.Abs(r.Value+1) > 1e-9 {
		t.Errorf("log: got %.15g", r.Value)
	}
	// Beta(0.5, 0.5) density integrates to 1 despite both endpoints
	// diverging. The x = 1 edge costs ~sqrt(ulp) of mass (see the
	// TanhSinh doc comment), hence the looser bound.
	r = TanhSinh(func(x float64) float64 {
		return 1 / (math.Pi * math.Sqrt(x*(1-x)))
	}, 0, 1, 1e-12)
	if math.Abs(r.Value-1) > 1e-7 {
		t.Errorf("arcsine density: got %.15g", r.Value)
	}
	// Gamma(k=0.4) density over [0, 40] ~ 1.
	k := 0.4
	lg, _ := math.Lgamma(k)
	r = TanhSinh(func(x float64) float64 {
		return math.Exp((k-1)*math.Log(x) - x - lg)
	}, 0, 40, 1e-12)
	if math.Abs(r.Value-1) > 1e-6 {
		t.Errorf("gamma(0.4) density: got %.15g", r.Value)
	}
}

func TestTanhSinhDegenerateAndReversed(t *testing.T) {
	if r := TanhSinh(math.Sin, 2, 2, 0); r.Value != 0 {
		t.Errorf("degenerate: %g", r.Value)
	}
	fw := TanhSinh(math.Exp, 0, 1, 1e-12).Value
	bw := TanhSinh(math.Exp, 1, 0, 1e-12).Value
	if math.Abs(fw+bw) > 1e-12 {
		t.Errorf("reversed: %g vs %g", fw, bw)
	}
}

func TestGaussLegendreCacheConcurrency(t *testing.T) {
	// Concurrent first-time requests for many orders must not race
	// (run with -race to verify).
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for n := 21 + g; n < 40; n += 3 {
				v := GaussLegendre(func(x float64) float64 { return x * x }, 0, 1, n)
				if math.Abs(v-1.0/3) > 1e-12 {
					t.Errorf("n=%d: %g", n, v)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
