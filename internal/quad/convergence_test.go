package quad

import (
	"math"
	"testing"
)

func TestSimpsonConvergedCleanRun(t *testing.T) {
	res := Simpson(math.Exp, 0, 1, 1e-10)
	if !res.Converged {
		t.Error("smooth integrand did not converge")
	}
	if res.BadEvals != 0 {
		t.Errorf("BadEvals = %d, want 0", res.BadEvals)
	}
	if err := res.Err(); err != nil {
		t.Errorf("Err() = %v, want nil", err)
	}
	if math.Abs(res.Value-(math.E-1)) > 1e-9 {
		t.Errorf("value = %g, want e-1", res.Value)
	}
}

func TestSimpsonCountsBadEvals(t *testing.T) {
	// NaN at the left endpoint (e.g. 0/0 at the boundary of a density):
	// sanitized to 0, counted, and reported through Err.
	f := func(x float64) float64 {
		if x == 0 {
			return math.NaN()
		}
		return math.Sqrt(x)
	}
	res := Simpson(f, 0, 1, 1e-10)
	if res.BadEvals == 0 {
		t.Error("NaN evaluation not counted")
	}
	if math.IsNaN(res.Value) {
		t.Error("NaN leaked into the estimate")
	}
	err := res.Err()
	if err == nil {
		t.Fatal("Err() = nil despite bad evaluations")
	}
	if _, ok := err.(*ConvergenceError); !ok {
		t.Fatalf("Err() %T is not a *ConvergenceError", err)
	}
	if math.Abs(res.Value-2.0/3.0) > 1e-6 {
		t.Errorf("value = %g, want ~2/3", res.Value)
	}
}

func TestSimpsonEmptyInterval(t *testing.T) {
	res := Simpson(math.Exp, 2, 2, 1e-10)
	if !res.Converged || res.Err() != nil || res.Value != 0 {
		t.Errorf("empty interval: %+v, Err %v", res, res.Err())
	}
}

func TestKronrodConvergedCleanRun(t *testing.T) {
	res := Kronrod(math.Cos, 0, 1, 1e-12, 1e-10)
	if !res.Converged {
		t.Error("smooth integrand did not converge")
	}
	if res.BadEvals != 0 {
		t.Errorf("BadEvals = %d, want 0", res.BadEvals)
	}
	if err := res.Err(); err != nil {
		t.Errorf("Err() = %v, want nil", err)
	}
	if math.Abs(res.Value-math.Sin(1)) > 1e-12 {
		t.Errorf("value = %g, want sin(1)", res.Value)
	}
}

func TestKronrodCountsBadEvals(t *testing.T) {
	f := func(x float64) float64 {
		if math.Abs(x-0.37) < 1e-4 {
			return math.NaN()
		}
		return x * x
	}
	res := Kronrod(f, 0, 1, 1e-12, 1e-10)
	if res.BadEvals == 0 {
		t.Skip("no quadrature node fell on the NaN strip")
	}
	if math.IsNaN(res.Value) {
		t.Error("NaN leaked into the estimate")
	}
	if res.Err() == nil {
		t.Error("Err() = nil despite bad evaluations")
	}
}

func TestKronrodEmptyInterval(t *testing.T) {
	res := Kronrod(math.Exp, 3, 3, 1e-12, 1e-10)
	if !res.Converged || res.Err() != nil || res.Value != 0 {
		t.Errorf("empty interval: %+v, Err %v", res, res.Err())
	}
}

func TestConvergenceErrorMessages(t *testing.T) {
	withBad := &ConvergenceError{Value: 1, AbsErr: 0.1, NumEvals: 100, BadEvals: 3}
	if msg := withBad.Error(); msg == "" {
		t.Error("empty message for bad-eval error")
	}
	budget := &ConvergenceError{Value: 1, AbsErr: 0.1, NumEvals: 100}
	if msg := budget.Error(); msg == "" {
		t.Error("empty message for budget error")
	}
	if withBad.Error() == budget.Error() {
		t.Error("bad-eval and budget failures render identically")
	}
}
