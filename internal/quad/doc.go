// Package quad provides the one-dimensional numerical integration routines
// that back every expectation computed by the reservation-checkpointing
// library: adaptive Simpson quadrature, fixed-order Gauss–Legendre rules
// with nodes generated at runtime, an adaptive Gauss–Kronrod (G7, K15)
// integrator with error control, transforms for semi-infinite domains, and
// tail-truncated summation for discrete laws.
//
// The integrands in this library (Section 4.2 and 4.3 of Barbut et al.,
// FTXS'23) are smooth products of polynomial, Gaussian and Gamma factors;
// the adaptive Gauss–Kronrod integrator resolves them to ~1e-12 relative
// accuracy in a few dozen panels. Adaptive Simpson is retained both as an
// independent cross-check in the test-suite and as a fallback for
// integrands with mild kinks (e.g. truncated densities).
package quad
