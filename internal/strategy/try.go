package strategy

import (
	"fmt"
	"math"

	"reskit/internal/core"
)

// Error-returning twins of the policy constructors, for callers turning
// untrusted input (CLI flags, config files) into policies: same
// validation, same message text, an error instead of a panic. The panic
// constructors delegate here so the two can never drift.

// TryNewStatic is NewStatic returning an error instead of panicking.
func TryNewStatic(n int) (Static, error) {
	if n < 1 {
		return Static{}, fmt.Errorf("strategy: Static requires n >= 1, got %d", n)
	}
	return Static{N: n}, nil
}

// TryNewDynamic is NewDynamic returning an error instead of panicking.
func TryNewDynamic(d *core.Dynamic) (Dynamic, error) {
	if d == nil {
		return Dynamic{}, fmt.Errorf("strategy: NewDynamic: nil problem")
	}
	pol := Dynamic{D: d}
	if w, err := d.Intersection(); err == nil {
		pol.wInt, pol.hasWInt = w, true
	}
	return pol, nil
}

// TryNewPessimistic is NewPessimistic returning an error instead of
// panicking.
func TryNewPessimistic(xMax, cMax float64) (Pessimistic, error) {
	if !(xMax > 0) || !(cMax > 0) || math.IsInf(xMax, 1) || math.IsInf(cMax, 1) {
		return Pessimistic{}, fmt.Errorf("strategy: Pessimistic requires finite positive bounds, got XMax=%g CMax=%g", xMax, cMax)
	}
	return Pessimistic{XMax: xMax, CMax: cMax}, nil
}

// TryNewWorkThreshold is NewWorkThreshold returning an error instead of
// panicking.
func TryNewWorkThreshold(w float64) (WorkThreshold, error) {
	if !(w > 0) || math.IsInf(w, 1) || math.IsNaN(w) {
		return WorkThreshold{}, fmt.Errorf("strategy: WorkThreshold requires positive finite W, got %g", w)
	}
	return WorkThreshold{W: w}, nil
}

// TryNewPeriodic is NewPeriodic returning an error instead of panicking.
func TryNewPeriodic(p float64) (Periodic, error) {
	if !(p > 0) || math.IsInf(p, 1) || math.IsNaN(p) {
		return Periodic{}, fmt.Errorf("strategy: Periodic requires positive finite period, got %g", p)
	}
	return Periodic{P: p}, nil
}

// TryNewYoungDaly is NewYoungDaly returning an error instead of
// panicking.
func TryNewYoungDaly(mtbf, meanCkpt float64) (Periodic, error) {
	if !(mtbf > 0) || !(meanCkpt > 0) {
		return Periodic{}, fmt.Errorf("strategy: NewYoungDaly requires positive mtbf and meanCkpt, got (%g, %g)", mtbf, meanCkpt)
	}
	return TryNewPeriodic(math.Sqrt(2 * mtbf * meanCkpt))
}
