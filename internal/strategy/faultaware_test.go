package strategy

import (
	"math"
	"strings"
	"testing"

	"reskit/internal/core"
	"reskit/internal/dist"
)

func TestRetryDecidesCheckpointAfterFailedAttempt(t *testing.T) {
	rt := NewRetry(NewWorkThreshold(20), 6, 3)
	st := State{R: 29, Elapsed: 10, Work: 5, FailedAttempts: 1}
	if got := rt.Decide(st); got != Checkpoint {
		t.Errorf("failed attempt with budget left: got %v, want Checkpoint", got)
	}
}

func TestRetryDelegatesWithoutFailure(t *testing.T) {
	rt := NewRetry(NewWorkThreshold(20), 6, 3)
	// No failed attempt pending: inner threshold policy decides.
	below := State{R: 29, Elapsed: 10, Work: 5}
	if got := rt.Decide(below); got != Continue {
		t.Errorf("below threshold: got %v, want Continue (inner decision)", got)
	}
	above := State{R: 29, Elapsed: 10, Work: 25}
	if got := rt.Decide(above); got != Checkpoint {
		t.Errorf("above threshold: got %v, want Checkpoint (inner decision)", got)
	}
}

func TestRetryRespectsBudgetAndCap(t *testing.T) {
	rt := NewRetry(Never{}, 6, 2)
	// Remaining time below the budget: no retry, inner (Never) continues.
	tight := State{R: 29, Elapsed: 25, Work: 5, FailedAttempts: 1}
	if got := rt.Decide(tight); got != Continue {
		t.Errorf("budget exhausted: got %v, want inner Continue", got)
	}
	// Attempt cap reached: no retry.
	capped := State{R: 29, Elapsed: 10, Work: 5, FailedAttempts: 2}
	if got := rt.Decide(capped); got != Continue {
		t.Errorf("attempt cap reached: got %v, want inner Continue", got)
	}
	// Unbounded attempts retry for as long as the budget fits.
	unbounded := NewRetry(Never{}, 6, 0)
	many := State{R: 29, Elapsed: 10, Work: 5, FailedAttempts: 50}
	if got := unbounded.Decide(many); got != Checkpoint {
		t.Errorf("unbounded retry: got %v, want Checkpoint", got)
	}
	// Nothing uncommitted: nothing to retry.
	empty := State{R: 29, Elapsed: 10, Work: 0, FailedAttempts: 1}
	if got := rt.Decide(empty); got != Continue {
		t.Errorf("no work: got %v, want inner Continue", got)
	}
}

func TestRetryConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil inner":       func() { NewRetry(nil, 6, 0) },
		"zero budget":     func() { NewRetry(Never{}, 0, 0) },
		"NaN budget":      func() { NewRetry(Never{}, math.NaN(), 0) },
		"infinite budget": func() { NewRetry(Never{}, math.Inf(1), 0) },
		"negative cap":    func() { NewRetry(Never{}, 6, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewRetry did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMarginDynamicZeroMarginMatchesDynamic(t *testing.T) {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
	plain := NewDynamic(core.NewDynamic(29, task, ckpt))
	margin := NewMarginDynamic(29, task, ckpt, 0)
	for _, st := range []State{
		{R: 29, Elapsed: 5, Work: 5},
		{R: 29, Elapsed: 15, Work: 14},
		{R: 29, Elapsed: 22, Work: 21},
		{R: 29, Elapsed: 28, Work: 27},
	} {
		if got, want := margin.Decide(st), plain.Decide(st); got != want {
			t.Errorf("state %+v: margin-0 decision %v != plain dynamic %v", st, got, want)
		}
	}
}

func TestMarginDynamicCheckpointsEarlier(t *testing.T) {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
	plain := NewDynamic(core.NewDynamic(29, task, ckpt))
	padded := NewMarginDynamic(29, task, ckpt, 0.5)
	// Sweep work levels at a fixed elapsed time: the first work level at
	// which each policy checkpoints. The padded policy, seeing 50% longer
	// checkpoints, must not checkpoint later than the plain one.
	first := func(s Strategy) float64 {
		for w := 1.0; w <= 25; w += 0.5 {
			if s.Decide(State{R: 29, Elapsed: w, Work: w}) == Checkpoint {
				return w
			}
		}
		return math.Inf(1)
	}
	fp, fm := first(plain), first(padded)
	if fm > fp {
		t.Errorf("margin policy first checkpoints at work %g, plain at %g; margin must not be later", fm, fp)
	}
	if !strings.Contains(padded.Name(), "margin=50%") {
		t.Errorf("Name() = %q, want margin=50%% mentioned", padded.Name())
	}
}

func TestMarginDynamicConstructorPanics(t *testing.T) {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
	for name, margin := range map[string]float64{
		"negative": -0.1,
		"NaN":      math.NaN(),
		"infinite": math.Inf(1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s margin: NewMarginDynamic did not panic", name)
				}
			}()
			NewMarginDynamic(29, task, ckpt, margin)
		}()
	}
}
