// Package strategy defines the checkpoint-decision policies that the
// reservation simulator (internal/sim) can execute at task boundaries,
// and the reference policies the paper's evaluation compares:
//
//   - Dynamic: the paper's Section 4.3 rule, checkpointing as soon as the
//     expected saved work of checkpointing now beats running one more task;
//   - Static: the paper's Section 4.2 rule, checkpointing after a fixed
//     n_opt tasks computed before execution;
//   - Pessimistic: the risk-free baseline that budgets a worst-case task
//     plus a worst-case checkpoint before continuing — the strategy the
//     paper's conclusion singles out as doubly wasteful for workflows;
//   - WorkThreshold: checkpoint once accumulated work crosses a fixed
//     threshold (e.g. the W_int intersection of Figures 8-10);
//   - Never: run tasks until the reservation ends without checkpointing
//     (lower bound — it saves nothing).
//
// Strategies are stateless with respect to a single reservation run: all
// run state arrives through State, so one strategy value can be shared by
// concurrent simulations.
package strategy

import (
	"fmt"

	"reskit/internal/core"
)

// Action is a checkpoint decision at a task boundary.
type Action int

const (
	// Continue runs one more task before the next decision.
	Continue Action = iota
	// Checkpoint starts a checkpoint now.
	Checkpoint
	// Stop abandons the rest of the reservation without checkpointing
	// (meaningful only after an earlier successful checkpoint, see §4.4).
	Stop
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case Continue:
		return "continue"
	case Checkpoint:
		return "checkpoint"
	case Stop:
		return "stop"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// State is everything a policy may observe at a task boundary.
type State struct {
	R          float64 // reservation length (recovery already deducted)
	Elapsed    float64 // reservation time consumed so far
	Work       float64 // uncommitted work since the last successful checkpoint
	TasksDone  int     // tasks completed since the last successful checkpoint
	Committed  float64 // work already saved by earlier checkpoints this reservation
	Checkpoint int     // number of successful checkpoints so far

	// FailedAttempts counts checkpoint attempts since the last successful
	// commit that ran to completion but failed (injected checkpoint
	// faults, see internal/fault). Always zero in the paper's
	// failure-free model; failure-aware policies use it to budget
	// retries.
	FailedAttempts int
}

// Remaining returns the reservation time left.
func (s State) Remaining() float64 { return s.R - s.Elapsed }

// Strategy decides what to do at each task boundary.
type Strategy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the action to take in the given state.
	Decide(s State) Action
}

// Static checkpoints after exactly N completed tasks — the paper's
// Section 4.2 policy with N = n_opt from core.Static.Optimize.
type Static struct {
	N int
}

// NewStatic returns the fixed-count policy. It panics unless n >= 1.
func NewStatic(n int) Static {
	s, err := TryNewStatic(n)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Name implements Strategy.
func (s Static) Name() string { return fmt.Sprintf("static(n=%d)", s.N) }

// Decide implements Strategy.
func (s Static) Decide(st State) Action {
	if st.TasksDone >= s.N {
		return Checkpoint
	}
	return Continue
}

// Dynamic applies the paper's Section 4.3 rule through a core.Dynamic
// problem instance. For the common first-checkpoint case (elapsed time
// equals uncommitted work) the rule reduces to comparing the work against
// the precomputed intersection point W_int of Figures 8-10, avoiding one
// numerical integration per task boundary in large Monte-Carlo runs; the
// full rule is evaluated whenever an earlier checkpoint has decoupled
// elapsed time from work, or when no intersection exists.
type Dynamic struct {
	D *core.Dynamic

	wInt    float64 // cached intersection point
	hasWInt bool
}

// NewDynamic wraps a dynamic problem as a policy.
func NewDynamic(d *core.Dynamic) Dynamic {
	pol, err := TryNewDynamic(d)
	if err != nil {
		panic(err.Error())
	}
	return pol
}

// Name implements Strategy.
func (d Dynamic) Name() string { return "dynamic" }

// Decide implements Strategy. It uses the generalized rule so that the
// decision stays correct when execution continues after an earlier
// checkpoint (elapsed > work).
func (d Dynamic) Decide(st State) Action {
	if st.TasksDone == 0 && st.Work == 0 {
		// Nothing to save yet; a checkpoint would commit zero work.
		if st.Remaining() <= 0 {
			return Stop
		}
		return Continue
	}
	if d.hasWInt && st.Elapsed == st.Work {
		if st.Work >= d.wInt {
			return Checkpoint
		}
		return Continue
	}
	if d.D.ShouldCheckpointAt(st.Work, st.Elapsed) {
		return Checkpoint
	}
	return Continue
}

// Pessimistic is the risk-free policy: continue only while a worst-case
// task followed by a worst-case checkpoint is guaranteed to fit in the
// remaining time. XMax and CMax are the (quantile-based) worst cases.
type Pessimistic struct {
	XMax float64 // worst-case task duration
	CMax float64 // worst-case checkpoint duration
}

// NewPessimistic returns the worst-case-budgeting policy.
func NewPessimistic(xMax, cMax float64) Pessimistic {
	p, err := TryNewPessimistic(xMax, cMax)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// Name implements Strategy.
func (p Pessimistic) Name() string { return "pessimistic" }

// Decide implements Strategy.
func (p Pessimistic) Decide(st State) Action {
	if st.Elapsed+p.XMax+p.CMax <= st.R {
		return Continue
	}
	if st.Work > 0 {
		return Checkpoint
	}
	return Stop
}

// WorkThreshold checkpoints once the uncommitted work reaches W — e.g.
// the intersection point W_int of the dynamic analysis, precomputed so
// the per-boundary decision is O(1).
type WorkThreshold struct {
	W float64
}

// NewWorkThreshold returns the threshold policy.
func NewWorkThreshold(w float64) WorkThreshold {
	t, err := TryNewWorkThreshold(w)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// Name implements Strategy.
func (t WorkThreshold) Name() string { return fmt.Sprintf("threshold(W=%.4g)", t.W) }

// Decide implements Strategy.
func (t WorkThreshold) Decide(st State) Action {
	if st.Work >= t.W {
		return Checkpoint
	}
	return Continue
}

// Never runs tasks until the reservation ends and never checkpoints. It
// saves nothing and serves as the floor in comparisons.
type Never struct{}

// Name implements Strategy.
func (Never) Name() string { return "never" }

// Decide implements Strategy.
func (Never) Decide(State) Action { return Continue }

// Periodic checkpoints every time the uncommitted work reaches the
// period P — the classical approach for failure-prone execution, with
// P given by the Young/Daly formula. The paper's related work contrasts
// this regime (checkpoints against random fail-stop errors) with its own
// (one checkpoint against the deterministic reservation end); Periodic
// is the right policy when sim.Config.FailureRate is positive and serves
// as the cited baseline [Young 1974; Daly 2006].
type Periodic struct {
	P float64
}

// NewPeriodic returns the fixed-period policy. It panics unless p > 0.
func NewPeriodic(p float64) Periodic {
	pp, err := TryNewPeriodic(p)
	if err != nil {
		panic(err.Error())
	}
	return pp
}

// NewYoungDaly returns the periodic policy with the first-order
// Young/Daly period sqrt(2 * mtbf * meanCkpt), where mtbf is the mean
// time between fail-stop errors and meanCkpt the mean checkpoint
// duration.
func NewYoungDaly(mtbf, meanCkpt float64) Periodic {
	p, err := TryNewYoungDaly(mtbf, meanCkpt)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// Name implements Strategy.
func (p Periodic) Name() string { return fmt.Sprintf("periodic(P=%.4g)", p.P) }

// Decide implements Strategy.
func (p Periodic) Decide(st State) Action {
	if st.Work >= p.P {
		return Checkpoint
	}
	return Continue
}
