package strategy

import (
	"fmt"
	"math"

	"reskit/internal/core"
	"reskit/internal/dist"
)

// Failure-aware policies. The paper's strategies assume every checkpoint
// that fits inside the reservation commits; under the fault models of
// internal/fault that is no longer true — commits can fail (consuming
// their duration), crashes can wipe uncommitted work, and the
// reservation itself can be revoked early. The policies below hedge
// against those faults while degrading to their fault-free counterparts
// when no fault strikes.

// Retry wraps an inner policy with bounded retry-on-checkpoint-failure:
// when the previous checkpoint attempt at this boundary failed to commit
// (State.FailedAttempts > 0), Retry attempts again immediately as long as
// the remaining-time budget still fits one more attempt and the attempt
// cap is not exhausted; otherwise the inner policy decides. With no
// failed attempt pending, the inner policy decides as usual.
type Retry struct {
	Inner Strategy
	// Budget is the reservation time one retry must fit into — typically
	// a high quantile of the checkpoint law, so a retry is attempted only
	// when it has a realistic chance to complete.
	Budget float64
	// MaxAttempts caps the failed attempts per boundary (0 = unbounded;
	// the simulator still enforces its global attempt cap).
	MaxAttempts int
}

// NewRetry validates and returns the retry wrapper.
func NewRetry(inner Strategy, budget float64, maxAttempts int) Retry {
	if inner == nil {
		panic("strategy: NewRetry: nil inner strategy")
	}
	if !(budget > 0) || math.IsInf(budget, 1) || math.IsNaN(budget) {
		panic(fmt.Sprintf("strategy: NewRetry requires a positive finite budget, got %g", budget))
	}
	if maxAttempts < 0 {
		panic(fmt.Sprintf("strategy: NewRetry requires maxAttempts >= 0, got %d", maxAttempts))
	}
	return Retry{Inner: inner, Budget: budget, MaxAttempts: maxAttempts}
}

// Name implements Strategy.
func (rt Retry) Name() string {
	return fmt.Sprintf("retry(%s, budget=%.4g, max=%d)", rt.Inner.Name(), rt.Budget, rt.MaxAttempts)
}

// Decide implements Strategy.
func (rt Retry) Decide(st State) Action {
	if st.FailedAttempts > 0 && st.Work > 0 {
		withinCap := rt.MaxAttempts <= 0 || st.FailedAttempts < rt.MaxAttempts
		if withinCap && st.Remaining() >= rt.Budget {
			return Checkpoint
		}
	}
	return rt.Inner.Decide(st)
}

// MarginDynamic is the paper's dynamic rule evaluated against a
// pessimistically inflated checkpoint law: every checkpoint duration is
// scaled by (1 + Margin), so the rule checkpoints earlier than the
// fault-free optimum. The inflation hedges against injected faults — a
// failed commit or a crash costs a replay, and committing earlier bounds
// the work at risk — at the price of slightly suboptimal behavior when no
// fault strikes.
type MarginDynamic struct {
	Dynamic
	Margin float64
}

// NewMarginDynamic builds the margin-padded dynamic policy for a
// continuous task law: the decision problem is core.Dynamic with the
// checkpoint law scaled by (1 + margin). Margin must be finite and >= 0;
// margin 0 reproduces the plain dynamic policy.
func NewMarginDynamic(r float64, task, ckpt dist.Continuous, margin float64) MarginDynamic {
	if !(margin >= 0) || math.IsInf(margin, 1) {
		panic(fmt.Sprintf("strategy: NewMarginDynamic requires finite margin >= 0, got %g", margin))
	}
	inflated := ckpt
	if margin > 0 {
		inflated = dist.NewAffine(ckpt, 1+margin, 0)
	}
	return MarginDynamic{
		Dynamic: NewDynamic(core.NewDynamic(r, task, inflated)),
		Margin:  margin,
	}
}

// Name implements Strategy.
func (m MarginDynamic) Name() string { return fmt.Sprintf("dynamic(margin=%g%%)", 100*m.Margin) }
