package strategy

import (
	"math"
	"strings"
	"testing"

	"reskit/internal/core"
	"reskit/internal/dist"
)

func TestActionString(t *testing.T) {
	if Continue.String() != "continue" || Checkpoint.String() != "checkpoint" || Stop.String() != "stop" {
		t.Errorf("action names wrong")
	}
	if !strings.Contains(Action(9).String(), "9") {
		t.Errorf("unknown action formatting")
	}
}

func TestStaticPolicy(t *testing.T) {
	s := NewStatic(7)
	if s.Decide(State{TasksDone: 6}) != Continue {
		t.Errorf("should continue before n")
	}
	if s.Decide(State{TasksDone: 7}) != Checkpoint {
		t.Errorf("should checkpoint at n")
	}
	if s.Decide(State{TasksDone: 12}) != Checkpoint {
		t.Errorf("should checkpoint past n")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("NewStatic(0) must panic")
		}
	}()
	NewStatic(0)
}

func TestDynamicPolicyMatchesCoreRule(t *testing.T) {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
	d := core.NewDynamic(29, task, ckpt)
	pol := NewDynamic(d)

	wInt, err := d.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	low := State{R: 29, Elapsed: wInt - 2, Work: wInt - 2, TasksDone: 5}
	if pol.Decide(low) != Continue {
		t.Errorf("below W_int must continue")
	}
	high := State{R: 29, Elapsed: wInt + 2, Work: wInt + 2, TasksDone: 8}
	if pol.Decide(high) != Checkpoint {
		t.Errorf("above W_int must checkpoint")
	}
	// Zero work: never checkpoint (nothing to save).
	if pol.Decide(State{R: 29}) != Continue {
		t.Errorf("zero work must continue")
	}
	// Zero work, no time left: stop.
	if pol.Decide(State{R: 29, Elapsed: 29}) != Stop {
		t.Errorf("exhausted reservation with nothing to save must stop")
	}
}

func TestDynamicPolicyAfterEarlierCheckpoint(t *testing.T) {
	// After an earlier checkpoint consumed time, the budget shrinks: a
	// work level that would continue at elapsed==work may checkpoint when
	// elapsed is much larger.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
	d := core.NewDynamic(29, task, ckpt)
	pol := NewDynamic(d)

	w := 9.0
	fresh := State{R: 29, Elapsed: w, Work: w, TasksDone: 3}
	if pol.Decide(fresh) != Continue {
		t.Fatalf("w=9 at elapsed=9 should continue")
	}
	late := State{R: 29, Elapsed: 23.5, Work: w, TasksDone: 3, Committed: 9, Checkpoint: 1}
	if pol.Decide(late) != Checkpoint {
		t.Errorf("w=9 at elapsed=23.5 should checkpoint (budget ~5.5 ~ muC)")
	}
}

func TestPessimisticPolicy(t *testing.T) {
	p := NewPessimistic(4, 6)
	if p.Decide(State{R: 29, Elapsed: 18, Work: 18}) != Continue {
		t.Errorf("18+4+6 <= 29: continue")
	}
	if p.Decide(State{R: 29, Elapsed: 20, Work: 20}) != Checkpoint {
		t.Errorf("20+4+6 > 29: checkpoint")
	}
	if p.Decide(State{R: 29, Elapsed: 20, Work: 0}) != Stop {
		t.Errorf("nothing to save: stop")
	}
}

func TestWorkThresholdPolicy(t *testing.T) {
	w := NewWorkThreshold(20.3)
	if w.Decide(State{Work: 20.0}) != Continue {
		t.Errorf("below threshold")
	}
	if w.Decide(State{Work: 20.3}) != Checkpoint {
		t.Errorf("at threshold")
	}
	if !strings.Contains(w.Name(), "20.3") {
		t.Errorf("name %q", w.Name())
	}
}

func TestNeverPolicy(t *testing.T) {
	var n Never
	if n.Decide(State{Work: 1e9}) != Continue {
		t.Errorf("never must always continue")
	}
}

func TestRemaining(t *testing.T) {
	s := State{R: 29, Elapsed: 11}
	if s.Remaining() != 18 {
		t.Errorf("remaining %g", s.Remaining())
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewPessimistic(0, 1) },
		func() { NewPessimistic(1, math.Inf(1)) },
		func() { NewWorkThreshold(-1) },
		func() { NewWorkThreshold(math.NaN()) },
		func() { NewDynamic(nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDynamicFastPathAgreesWithFullRule(t *testing.T) {
	// The cached-threshold fast path (elapsed == work) must agree with
	// the full expectation comparison everywhere except possibly within
	// root-finding tolerance of W_int.
	task := dist.NewGamma(1, 0.5)
	ckpt := dist.Truncate(dist.NewNormal(2, 0.4), 0, math.Inf(1))
	d := core.NewDynamic(10, task, ckpt)
	pol := NewDynamic(d)
	wInt, err := d.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 400; i++ {
		w := 10 * float64(i) / 401
		if math.Abs(w-wInt) < 1e-3 {
			continue
		}
		fast := pol.Decide(State{R: 10, Elapsed: w, Work: w, TasksDone: 1})
		slow := Continue
		if d.ShouldCheckpointAt(w, w) {
			slow = Checkpoint
		}
		if fast != slow {
			t.Fatalf("w=%g: fast %v, slow %v (W_int=%g)", w, fast, slow, wInt)
		}
	}
}

func TestPeriodicPolicy(t *testing.T) {
	p := NewPeriodic(10)
	if p.Decide(State{Work: 9.9}) != Continue {
		t.Errorf("below period must continue")
	}
	if p.Decide(State{Work: 10}) != Checkpoint {
		t.Errorf("at period must checkpoint")
	}
	yd := NewYoungDaly(100, 2)
	want := math.Sqrt(2 * 100 * 2)
	if math.Abs(yd.P-want) > 1e-12 {
		t.Errorf("Young/Daly period %g want %g", yd.P, want)
	}
	if !strings.Contains(yd.Name(), "periodic") {
		t.Errorf("name %q", yd.Name())
	}
	for i, f := range []func(){
		func() { NewPeriodic(0) },
		func() { NewYoungDaly(-1, 2) },
		func() { NewYoungDaly(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
