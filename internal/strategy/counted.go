package strategy

import (
	"reskit/internal/obs"
)

// Counted wraps a Strategy and tallies its decisions: every Decide call
// increments the counter matching the returned action. The wrapped policy
// sees exactly the same states and its decisions pass through unchanged,
// so simulation results are bit-identical with or without the wrapper.
// Nil counters are no-ops, so partial wiring is fine.
type Counted struct {
	S Strategy

	Continues   *obs.Counter // Decide returned Continue
	Checkpoints *obs.Counter // Decide returned Checkpoint
	Stops       *obs.Counter // Decide returned Stop
}

// NewCounted wraps s with decision counters bound on reg under
// "strategy.<name>." (using s.Name()). A nil registry yields a wrapper
// with nil counters — still transparent, still free.
func NewCounted(s Strategy, reg *obs.Registry) *Counted {
	if s == nil {
		panic("strategy: NewCounted: nil strategy")
	}
	prefix := "strategy." + s.Name() + "."
	return &Counted{
		S:           s,
		Continues:   reg.Counter(prefix + "continue"),
		Checkpoints: reg.Counter(prefix + "checkpoint"),
		Stops:       reg.Counter(prefix + "stop"),
	}
}

// Name implements Strategy, delegating to the wrapped policy.
func (c *Counted) Name() string { return c.S.Name() }

// Decide implements Strategy: delegate, count, pass through.
func (c *Counted) Decide(st State) Action {
	a := c.S.Decide(st)
	switch a {
	case Continue:
		c.Continues.Inc()
	case Checkpoint:
		c.Checkpoints.Inc()
	case Stop:
		c.Stops.Inc()
	}
	return a
}
