// Package trace turns logs of past checkpoint (or task) durations into
// probability laws usable by the checkpoint-placement solvers. The
// paper's introduction observes that the checkpoint-duration law "can be
// learned from traces of previous checkpoints"; this package provides the
// full loop: record durations, persist them as CSV or JSON, fit the
// parametric families studied by the paper (Normal, LogNormal,
// Exponential, Gamma, Weibull) by maximum likelihood, select the best
// family by AIC, and truncate the winner to the observed (or a
// user-chosen) support to obtain the D_C of Section 3.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Trace is a log of observed durations, in seconds.
type Trace struct {
	// Name labels the trace (e.g. the application or file set).
	Name string `json:"name"`
	// Durations are the observed values, in order of observation.
	Durations []float64 `json:"durations"`
	// RecordedAt is an optional capture timestamp.
	RecordedAt time.Time `json:"recorded_at,omitempty"`
}

// Add appends one observation. Non-finite or negative values are
// rejected with an error, since durations are physical times.
func (t *Trace) Add(d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return fmt.Errorf("trace: invalid duration %g", d)
	}
	t.Durations = append(t.Durations, d)
	return nil
}

// Len returns the number of observations.
func (t *Trace) Len() int { return len(t.Durations) }

// Range returns the smallest and largest observation; it panics on an
// empty trace.
func (t *Trace) Range() (lo, hi float64) {
	if len(t.Durations) == 0 {
		panic("trace: Range of empty trace")
	}
	lo, hi = t.Durations[0], t.Durations[0]
	for _, d := range t.Durations[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}

// Mean returns the sample mean (0 on empty trace).
func (t *Trace) Mean() float64 {
	if len(t.Durations) == 0 {
		return 0
	}
	var s float64
	for _, d := range t.Durations {
		s += d
	}
	return s / float64(len(t.Durations))
}

// WriteCSV writes the trace as lines of one duration each, preceded by a
// comment header carrying the name.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace: %s\n", t.Name); err != nil {
		return err
	}
	for _, d := range t.Durations {
		if _, err := fmt.Fprintf(bw, "%.17g\n", d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or any file with one
// duration per line; '#' lines are comments, the first of which may name
// the trace).
func ReadCSV(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if t.Name == "" {
				if rest, ok := strings.CutPrefix(s, "# trace:"); ok {
					t.Name = strings.TrimSpace(rest)
				}
			}
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := t.Add(v); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteJSON writes the trace as a single JSON object.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	for _, d := range t.Durations {
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return nil, fmt.Errorf("trace: invalid duration %g in JSON", d)
		}
	}
	return &t, nil
}
