package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"reskit/internal/dist"
	"reskit/internal/rng"
)

func sampleTrace(t *testing.T, law dist.Continuous, n int, seed uint64) *Trace {
	t.Helper()
	r := rng.New(seed)
	tr := &Trace{Name: "synthetic"}
	for i := 0; i < n; i++ {
		if err := tr.Add(law.Sample(r)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAddRejectsInvalid(t *testing.T) {
	var tr Trace
	for _, v := range []float64{math.NaN(), math.Inf(1), -0.1} {
		if err := tr.Add(v); err == nil {
			t.Errorf("Add(%g) should fail", v)
		}
	}
	if err := tr.Add(0); err != nil {
		t.Errorf("Add(0) should be allowed: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len %d", tr.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Name: "ckpt-io", Durations: []float64{1.5, 2.25, 3.125, 0.5}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "ckpt-io" {
		t.Errorf("name %q", back.Name)
	}
	if len(back.Durations) != 4 {
		t.Fatalf("len %d", len(back.Durations))
	}
	for i, d := range back.Durations {
		if d != tr.Durations[i] {
			t.Errorf("duration %d: %g vs %g", i, d, tr.Durations[i])
		}
	}
}

func TestCSVBadInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1.5\nnot-a-number\n")); err == nil {
		t.Errorf("expected parse error")
	}
	if _, err := ReadCSV(strings.NewReader("1.5\n-3\n")); err == nil {
		t.Errorf("expected negative-duration error")
	}
	tr, err := ReadCSV(strings.NewReader("# comment\n\n  2.5  \n"))
	if err != nil || tr.Len() != 1 || tr.Durations[0] != 2.5 {
		t.Errorf("whitespace/comment handling: %v %v", tr, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := &Trace{Name: "json", Durations: []float64{4, 5, 6}}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "json" || len(back.Durations) != 3 {
		t.Errorf("round trip: %+v", back)
	}
	if _, err := ReadJSON(strings.NewReader(`{"durations":[-1]}`)); err == nil {
		t.Errorf("negative duration must fail validation")
	}
}

func TestRangeAndMean(t *testing.T) {
	tr := &Trace{Durations: []float64{3, 1, 4, 1, 5}}
	lo, hi := tr.Range()
	if lo != 1 || hi != 5 {
		t.Errorf("range [%g, %g]", lo, hi)
	}
	if math.Abs(tr.Mean()-2.8) > 1e-12 {
		t.Errorf("mean %g", tr.Mean())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Range of empty trace must panic")
		}
	}()
	(&Trace{}).Range()
}

func TestFitNormalRecoversParameters(t *testing.T) {
	tr := sampleTrace(t, dist.NewNormal(5, 0.4), 20000, 1)
	fit, err := FitNormal(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := fit.Law.(dist.Normal)
	if math.Abs(n.Mu-5) > 0.02 || math.Abs(n.Sigma-0.4) > 0.02 {
		t.Errorf("recovered %v", n)
	}
}

func TestFitLogNormalRecoversParameters(t *testing.T) {
	tr := sampleTrace(t, dist.NewLogNormal(1, 0.5), 20000, 2)
	fit, err := FitLogNormal(tr)
	if err != nil {
		t.Fatal(err)
	}
	l := fit.Law.(dist.LogNormal)
	if math.Abs(l.Mu-1) > 0.02 || math.Abs(l.Sigma-0.5) > 0.02 {
		t.Errorf("recovered %v", l)
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	tr := sampleTrace(t, dist.NewExponential(0.5), 20000, 3)
	fit, err := FitExponential(tr)
	if err != nil {
		t.Fatal(err)
	}
	e := fit.Law.(dist.Exponential)
	if math.Abs(e.Lambda-0.5) > 0.02 {
		t.Errorf("recovered rate %g", e.Lambda)
	}
}

func TestFitGammaRecoversParameters(t *testing.T) {
	for _, c := range []struct{ k, theta float64 }{{2.5, 1.5}, {1, 0.5}, {9, 0.25}} {
		tr := sampleTrace(t, dist.NewGamma(c.k, c.theta), 30000, 4)
		fit, err := FitGamma(tr)
		if err != nil {
			t.Fatal(err)
		}
		g := fit.Law.(dist.Gamma)
		if math.Abs(g.K-c.k) > 0.1*c.k || math.Abs(g.Theta-c.theta) > 0.1*c.theta {
			t.Errorf("Gamma(%g,%g): recovered %v", c.k, c.theta, g)
		}
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	tr := sampleTrace(t, dist.NewWeibull(1.8, 2.5), 30000, 5)
	fit, err := FitWeibull(tr)
	if err != nil {
		t.Fatal(err)
	}
	w := fit.Law.(dist.Weibull)
	if math.Abs(w.K-1.8) > 0.1 || math.Abs(w.Lambda-2.5) > 0.1 {
		t.Errorf("recovered %v", w)
	}
}

func TestFitBestSelectsTrueFamily(t *testing.T) {
	cases := []struct {
		law  dist.Continuous
		want string
	}{
		{dist.NewGamma(2.5, 1.5), "gamma"},
		{dist.NewLogNormal(0.3, 0.9), "lognormal"},
		{dist.NewNormal(20, 1.5), "normal"},
	}
	for i, c := range cases {
		tr := sampleTrace(t, c.law, 30000, uint64(10+i))
		best, err := FitBest(tr)
		if err != nil {
			t.Fatal(err)
		}
		if best.Family != c.want {
			t.Errorf("%v: selected %s (AIC %g)", c.law, best.Family, best.AIC())
		}
	}
}

func TestFitAllSortedByAIC(t *testing.T) {
	tr := sampleTrace(t, dist.NewGamma(3, 1), 5000, 20)
	fits, err := FitAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) < 4 {
		t.Fatalf("only %d fits", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i-1].AIC() > fits[i].AIC() {
			t.Errorf("fits not sorted: %g > %g", fits[i-1].AIC(), fits[i].AIC())
		}
	}
}

func TestFitErrors(t *testing.T) {
	short := &Trace{Durations: []float64{1}}
	if _, err := FitNormal(short); err == nil {
		t.Errorf("short trace must fail")
	}
	withZero := &Trace{Durations: []float64{0, 1, 2}}
	if _, err := FitLogNormal(withZero); err == nil {
		t.Errorf("zero duration must fail lognormal")
	}
	if _, err := FitGamma(withZero); err == nil {
		t.Errorf("zero duration must fail gamma")
	}
	constant := &Trace{Durations: []float64{2, 2, 2}}
	if _, err := FitNormal(constant); err == nil {
		t.Errorf("constant trace must fail normal")
	}
}

func TestCheckpointLawEndToEnd(t *testing.T) {
	// Sample checkpoint durations from a truncated normal, learn D_C,
	// and verify the learned law is close to the truth.
	truth := dist.Truncate(dist.NewNormal(5, 0.6), 3, 7)
	tr := sampleTrace(t, truth, 30000, 30)
	learned, fit, err := CheckpointLaw(tr, math.NaN(), math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if learned == nil || fit.N != 30000 {
		t.Fatalf("bad fit result")
	}
	lo, hi := learned.Support()
	tlo, thi := tr.Range()
	if lo > tlo || hi < thi {
		t.Errorf("support [%g,%g] does not cover observations [%g,%g]", lo, hi, tlo, thi)
	}
	// CDF agreement at a few quantiles.
	for _, x := range []float64{4, 5, 6} {
		if math.Abs(learned.CDF(x)-truth.CDF(x)) > 0.05 {
			t.Errorf("CDF(%g): learned %g vs truth %g", x, learned.CDF(x), truth.CDF(x))
		}
	}
	// Explicit bounds are respected.
	learned2, _, err := CheckpointLaw(tr, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2 := learned2.Support()
	if lo2 != 3 || hi2 != 7 {
		t.Errorf("explicit bounds ignored: [%g, %g]", lo2, hi2)
	}
	// Invalid bounds.
	if _, _, err := CheckpointLaw(tr, 7, 3); err == nil {
		t.Errorf("reversed bounds must fail")
	}
}

func TestFitStringMentionsFamily(t *testing.T) {
	tr := sampleTrace(t, dist.NewNormal(5, 1), 100, 40)
	fit, err := FitNormal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fit.String(), "normal") {
		t.Errorf("String %q", fit.String())
	}
}

func TestFitPoisson(t *testing.T) {
	src := dist.NewPoisson(3)
	r := rng.New(50)
	tr := &Trace{}
	for i := 0; i < 20000; i++ {
		if err := tr.Add(float64(src.Sample(r))); err != nil {
			t.Fatal(err)
		}
	}
	law, ll, err := FitPoisson(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(law.Lambda-3) > 0.05 {
		t.Errorf("recovered lambda %g", law.Lambda)
	}
	if ll >= 0 {
		t.Errorf("log-likelihood %g should be negative", ll)
	}
	// Non-integer durations rejected.
	bad := &Trace{Durations: []float64{1, 2.5}}
	if _, _, err := FitPoisson(bad); err == nil {
		t.Errorf("non-integer sample must fail")
	}
	zero := &Trace{Durations: []float64{0, 0}}
	if _, _, err := FitPoisson(zero); err == nil {
		t.Errorf("all-zero sample must fail")
	}
}
