package trace

import (
	"math"
	"strings"
	"testing"
)

// FuzzTraceFit drives the full untrusted-input pipeline — CSV decoding,
// parametric fitting with AIC selection, and checkpoint-law truncation —
// with arbitrary bytes. Every outcome must be a value or an error; any
// panic is a bug, since trace logs come from outside the program.
func FuzzTraceFit(f *testing.F) {
	f.Add("3.1\n2.9\n3.4\n3.0\n2.8\n")
	f.Add("duration\n5\n5.5\n4.5\n")
	f.Add("1e300\n1e300\n1e-300\n")
	f.Add("0\n0\n0\n")
	f.Add("-1\n2\n3\n")
	f.Add("nan\ninf\n1\n")
	f.Add("")
	f.Add(",,,\n1;2;3\n")
	f.Add("9007199254740993\n9007199254740993\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		fits, err := FitAll(tr)
		if err != nil {
			return
		}
		for _, fit := range fits {
			if fit.Law == nil {
				t.Fatalf("FitAll returned a nil law for %q", data)
			}
			// The selected laws must stay usable on their own sample.
			for _, x := range tr.Durations {
				if v := fit.Law.CDF(x); math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("%s fit: CDF(%g) = %g out of [0, 1]", fit.Family, x, v)
				}
			}
		}
		// Deriving D_C from the fitted law must error, not panic, even
		// when the trace-derived bounds are degenerate.
		if _, _, err := CheckpointLaw(tr, math.NaN(), math.NaN()); err != nil {
			return
		}
	})
}
