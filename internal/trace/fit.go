package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"reskit/internal/dist"
	"reskit/internal/specfun"
)

// ErrTooFewObservations is returned when a fit needs more data.
var ErrTooFewObservations = errors.New("trace: too few observations to fit")

// Fit is the outcome of fitting one parametric family to a trace.
type Fit struct {
	Law       dist.Continuous // the fitted law
	Family    string          // "normal", "lognormal", "exponential", "gamma", "weibull"
	LogLik    float64         // maximized log-likelihood
	NumParams int             // free parameters of the family
	N         int             // observations used
}

// AIC returns the Akaike information criterion 2k - 2 lnL (lower is
// better).
func (f Fit) AIC() float64 { return 2*float64(f.NumParams) - 2*f.LogLik }

// String formats the fit for reports.
func (f Fit) String() string {
	return fmt.Sprintf("%s: %v (logLik=%.4g, AIC=%.4g, n=%d)", f.Family, f.Law, f.LogLik, f.AIC(), f.N)
}

// logLik sums the log-density of the law over the sample.
func logLik(law dist.Continuous, xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += law.LogPDF(x)
	}
	return s
}

// moments returns the sample mean and the biased (MLE) variance.
func moments(xs []float64) (mean, varMLE float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	for _, x := range xs {
		d := x - mean
		varMLE += d * d
	}
	varMLE /= n
	return mean, varMLE
}

// FitNormal fits N(mu, sigma^2) by maximum likelihood (sample mean and
// biased sample variance). At least two distinct observations are
// required.
func FitNormal(t *Trace) (Fit, error) {
	xs := t.Durations
	if len(xs) < 2 {
		return Fit{}, ErrTooFewObservations
	}
	mean, v := moments(xs)
	if v <= 0 {
		return Fit{}, fmt.Errorf("trace: degenerate sample (zero variance)")
	}
	// Extreme samples can overflow the moments; the Try constructor turns
	// that into an error instead of a panic.
	law, err := dist.TryNewNormal(mean, math.Sqrt(v))
	if err != nil {
		return Fit{}, err
	}
	return Fit{Law: law, Family: "normal", LogLik: logLik(law, xs), NumParams: 2, N: len(xs)}, nil
}

// FitLogNormal fits LogNormal(mu, sigma) by maximum likelihood on the
// logarithms. All observations must be strictly positive.
func FitLogNormal(t *Trace) (Fit, error) {
	xs := t.Durations
	if len(xs) < 2 {
		return Fit{}, ErrTooFewObservations
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Fit{}, fmt.Errorf("trace: non-positive duration %g cannot be lognormal", x)
		}
		logs[i] = math.Log(x)
	}
	mean, v := moments(logs)
	if v <= 0 {
		return Fit{}, fmt.Errorf("trace: degenerate sample (zero log-variance)")
	}
	law, err := dist.TryNewLogNormal(mean, math.Sqrt(v))
	if err != nil {
		return Fit{}, err
	}
	return Fit{Law: law, Family: "lognormal", LogLik: logLik(law, xs), NumParams: 2, N: len(xs)}, nil
}

// FitExponential fits Exponential(rate) by maximum likelihood
// (rate = 1/mean). All observations must be nonnegative with positive
// mean.
func FitExponential(t *Trace) (Fit, error) {
	xs := t.Durations
	if len(xs) < 1 {
		return Fit{}, ErrTooFewObservations
	}
	mean, _ := moments(xs)
	if mean <= 0 {
		return Fit{}, fmt.Errorf("trace: non-positive mean %g", mean)
	}
	law, err := dist.TryNewExponential(1 / mean)
	if err != nil {
		return Fit{}, err
	}
	return Fit{Law: law, Family: "exponential", LogLik: logLik(law, xs), NumParams: 1, N: len(xs)}, nil
}

// FitGamma fits Gamma(k, theta) by maximum likelihood: the shape solves
// ln(k) - psi(k) = ln(mean) - mean(ln x), found by Newton from the
// Minka/Choi-Wette starting point; the scale is mean/k.
func FitGamma(t *Trace) (Fit, error) {
	xs := t.Durations
	if len(xs) < 2 {
		return Fit{}, ErrTooFewObservations
	}
	var sum, sumLog float64
	for _, x := range xs {
		if x <= 0 {
			return Fit{}, fmt.Errorf("trace: non-positive duration %g cannot be gamma", x)
		}
		sum += x
		sumLog += math.Log(x)
	}
	n := float64(len(xs))
	mean := sum / n
	s := math.Log(mean) - sumLog/n // s > 0 by Jensen unless degenerate
	if s <= 0 {
		return Fit{}, fmt.Errorf("trace: degenerate sample for gamma fit")
	}
	// Starting point (Minka 2002).
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for i := 0; i < 100; i++ {
		f := math.Log(k) - specfun.Digamma(k) - s
		df := 1/k - specfun.Trigamma(k)
		step := f / df
		kn := k - step
		if kn <= 0 {
			kn = k / 2
		}
		if math.Abs(kn-k) <= 1e-12*(1+k) {
			k = kn
			break
		}
		k = kn
	}
	law, err := dist.TryNewGamma(k, mean/k)
	if err != nil {
		return Fit{}, err
	}
	return Fit{Law: law, Family: "gamma", LogLik: logLik(law, xs), NumParams: 2, N: len(xs)}, nil
}

// FitWeibull fits Weibull(k, lambda) by maximum likelihood: the shape
// solves the standard profile equation by Newton iteration; the scale
// follows in closed form.
func FitWeibull(t *Trace) (Fit, error) {
	xs := t.Durations
	if len(xs) < 2 {
		return Fit{}, ErrTooFewObservations
	}
	var sumLog float64
	for _, x := range xs {
		if x <= 0 {
			return Fit{}, fmt.Errorf("trace: non-positive duration %g cannot be weibull", x)
		}
		sumLog += math.Log(x)
	}
	n := float64(len(xs))
	meanLog := sumLog / n

	// Profile equation: g(k) = sum(x^k ln x)/sum(x^k) - 1/k - meanLog = 0.
	g := func(k float64) float64 {
		var sk, skl float64
		for _, x := range xs {
			xk := math.Pow(x, k)
			sk += xk
			skl += xk * math.Log(x)
		}
		return skl/sk - 1/k - meanLog
	}
	// g is increasing in k; bracket and bisect/Newton-free for
	// robustness.
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 && hi < 1e4 {
		hi *= 2
	}
	k := hi
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
		k = 0.5 * (lo + hi)
	}
	var sk float64
	for _, x := range xs {
		sk += math.Pow(x, k)
	}
	lambda := math.Pow(sk/n, 1/k)
	law, err := dist.TryNewWeibull(k, lambda)
	if err != nil {
		return Fit{}, err
	}
	return Fit{Law: law, Family: "weibull", LogLik: logLik(law, xs), NumParams: 2, N: len(xs)}, nil
}

// FitAll fits every family that accepts the sample and returns the fits
// sorted by ascending AIC (best first). Families that fail (e.g.
// lognormal with zero durations) are skipped; an error is returned only
// when no family fits.
func FitAll(t *Trace) ([]Fit, error) {
	fitters := []func(*Trace) (Fit, error){
		FitNormal, FitLogNormal, FitExponential, FitGamma, FitWeibull,
	}
	var fits []Fit
	for _, f := range fitters {
		if fit, err := f(t); err == nil && !math.IsNaN(fit.LogLik) && !math.IsInf(fit.LogLik, 0) {
			fits = append(fits, fit)
		}
	}
	if len(fits) == 0 {
		return nil, fmt.Errorf("trace: no parametric family fits the sample")
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].AIC() < fits[j].AIC() })
	return fits, nil
}

// FitBest returns the AIC-best fit of FitAll.
func FitBest(t *Trace) (Fit, error) {
	fits, err := FitAll(t)
	if err != nil {
		return Fit{}, err
	}
	return fits[0], nil
}

// CheckpointLaw builds the D_C of Section 3 from a trace: it fits the
// AIC-best family and truncates it to [a, b]. When a or b is NaN the
// corresponding bound defaults to the observed minimum (times 0.95) or
// maximum (times 1.05), mirroring how C_min and C_max would be estimated
// from the log itself.
func CheckpointLaw(t *Trace, a, b float64) (*dist.Truncated, Fit, error) {
	fit, err := FitBest(t)
	if err != nil {
		return nil, Fit{}, err
	}
	lo, hi := t.Range()
	if math.IsNaN(a) {
		a = 0.95 * lo
	}
	if math.IsNaN(b) {
		b = 1.05 * hi
	}
	if !(a < b) || a <= 0 {
		return nil, Fit{}, fmt.Errorf("trace: invalid truncation bounds [%g, %g]", a, b)
	}
	// The bounds are derived from the trace, so a pathological sample
	// (e.g. all observations far in the tail of the fitted law) can leave
	// zero mass on [a, b]; surface that as an error, not a panic.
	tr, err := dist.TryTruncate(fit.Law, a, b)
	if err != nil {
		return nil, Fit{}, fmt.Errorf("trace: checkpoint law: %w", err)
	}
	return tr, fit, nil
}

// FitPoisson fits a Poisson law to integer-valued durations by maximum
// likelihood (lambda = sample mean). It returns an error when any
// observation is not a nonnegative integer (within 1e-9) — the Poisson
// task model of Sections 4.2.3/4.3.3 assumes discretized time.
func FitPoisson(t *Trace) (dist.Poisson, float64, error) {
	xs := t.Durations
	if len(xs) < 1 {
		return dist.Poisson{}, 0, ErrTooFewObservations
	}
	var sum float64
	for _, x := range xs {
		if x < 0 || math.Abs(x-math.Round(x)) > 1e-9 {
			return dist.Poisson{}, 0, fmt.Errorf("trace: duration %g is not a nonnegative integer", x)
		}
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean <= 0 {
		return dist.Poisson{}, 0, fmt.Errorf("trace: all-zero sample cannot be Poisson-fitted")
	}
	law := dist.NewPoisson(mean)
	var ll float64
	for _, x := range xs {
		ll += law.LogPMF(int(math.Round(x)))
	}
	return law, ll, nil
}
