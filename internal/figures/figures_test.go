package figures

import (
	"math"
	"strings"
	"testing"
)

func TestAllFiguresReproduceWithinTolerance(t *testing.T) {
	figs := All()
	if len(figs) != 14 {
		t.Fatalf("expected 14 figures (10 paper figures, 1a-4b counted separately), got %d", len(figs))
	}
	seen := map[string]bool{}
	for i := range figs {
		f := &figs[i]
		if seen[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		if bad := f.Check(); len(bad) > 0 {
			t.Errorf("%s: %s", f.ID, strings.Join(bad, "; "))
		}
	}
}

func TestFigureSeriesNonEmpty(t *testing.T) {
	for _, f := range All() {
		if len(f.Plot.Series) == 0 {
			t.Errorf("%s: no series", f.ID)
			continue
		}
		for _, s := range f.Plot.Series {
			if len(s.X) < 10 || len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: bad series (%d x, %d y)", f.ID, s.Name, len(s.X), len(s.Y))
			}
		}
	}
}

func TestDynamicFiguresHaveTwoSeries(t *testing.T) {
	for _, f := range []Figure{Fig8(), Fig9(), Fig10()} {
		if len(f.Plot.Series) != 2 {
			t.Errorf("%s: want 2 series, got %d", f.ID, len(f.Plot.Series))
		}
		if _, ok := f.Measured["W_int"]; !ok {
			t.Errorf("%s: W_int not measured", f.ID)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	f := Fig5()
	keys := f.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("keys not sorted: %v", keys)
		}
	}
}

func TestCheckDetectsMismatch(t *testing.T) {
	f := Fig1a()
	f.Measured["X_opt"] = 99 // sabotage
	if len(f.Check()) == 0 {
		t.Errorf("Check missed a mismatch")
	}
	delete(f.Measured, "E(W(b))")
	found := false
	for _, m := range f.Check() {
		if strings.Contains(m, "no measured value") {
			found = true
		}
	}
	if !found {
		t.Errorf("Check missed a missing measurement")
	}
}

func TestExtendedFigures(t *testing.T) {
	figs := Extended()
	if len(figs) != 4 {
		t.Fatalf("expected 4 extended figures, got %d", len(figs))
	}
	for i := range figs {
		f := &figs[i]
		if len(f.Plot.Series) == 0 || len(f.Plot.Series[0].X) < 5 {
			t.Errorf("%s: empty series", f.ID)
		}
		if len(f.Measured) == 0 {
			t.Errorf("%s: no measured values", f.ID)
		}
	}
	// Ext1: gain is 1 in the boundary regime and grows past s=2.
	e1 := figs[0]
	if g := e1.Measured["gain@s=0.5"]; g < 1-1e-9 || g > 1+1e-9 {
		t.Errorf("ext1: gain@0.5 = %g, want 1 (boundary regime)", g)
	}
	if g := e1.Measured["gain@s=3"]; g < 1.05 {
		t.Errorf("ext1: gain@3 = %g, want > 1.05", g)
	}
	// Ext2: DP >= static everywhere, and the gap widens with cv.
	e2 := figs[1]
	gapLow := e2.Measured["dp@cv=0.1"] - e2.Measured["static@cv=0.1"]
	gapHigh := e2.Measured["dp@cv=1"] - e2.Measured["static@cv=1"]
	if gapLow < -0.1 || gapHigh < gapLow {
		t.Errorf("ext2: gaps %g -> %g should be nonnegative and widening", gapLow, gapHigh)
	}
	// Ext3: thresholds close together, V(0) sane.
	e3 := figs[2]
	if math.Abs(e3.Measured["dp_threshold"]-e3.Measured["W_int"]) > 1.5 {
		t.Errorf("ext3: thresholds far apart: %+v", e3.Measured)
	}
	if v := e3.Measured["V(0)"]; v < 20 || v > 24 {
		t.Errorf("ext3: V(0) = %g out of range", v)
	}
	// Ext4: perfect knowledge loses nothing; gross errors lose something;
	// everything stays in (0, 1].
	e4 := figs[3]
	if l := e4.Measured["loss@0"]; math.Abs(l-1) > 1e-9 {
		t.Errorf("ext4: loss@0 = %g", l)
	}
	if l := e4.Measured["loss@-2"]; l >= 1 || l <= 0 {
		t.Errorf("ext4: loss@-2 = %g", l)
	}
	if e4.Measured["loss@-2"] > e4.Measured["loss@-1"] {
		t.Errorf("ext4: bigger error should lose at least as much: %g vs %g",
			e4.Measured["loss@-2"], e4.Measured["loss@-1"])
	}
}
