// Package figures regenerates every figure of Barbut et al. (FTXS'23).
// Each generator builds the exact problem instance of the paper's
// caption, computes the plotted series from internal/core, and reports
// the paper's reference values next to the values measured by this
// library so EXPERIMENTS.md and the benchmark harness can compare them.
//
// Two captions (Figures 3a and 4a) lost some parameters in the text
// extraction of the paper; DESIGN.md documents the reconstruction used
// here (same a, R and law family as the sibling subfigure, with the
// bound b chosen so the optimum is interior, matching the subfigure's
// stated "both cases" role).
package figures

import (
	"fmt"
	"math"
	"sort"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/plot"
)

// Figure packages one reproduced paper figure.
type Figure struct {
	ID        string // e.g. "fig1a"
	Title     string
	Plot      plot.Plot
	Reference map[string]float64 // paper-reported values
	Measured  map[string]float64 // values computed by this library
	Tolerance map[string]float64 // acceptance tolerance per reference key
}

// Keys returns the reference keys in deterministic order.
func (f *Figure) Keys() []string {
	keys := make([]string, 0, len(f.Reference))
	for k := range f.Reference {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Check returns a list of mismatches between reference and measured
// values (empty when the figure reproduces within tolerance).
func (f *Figure) Check() []string {
	var bad []string
	for _, k := range f.Keys() {
		ref := f.Reference[k]
		got, ok := f.Measured[k]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no measured value", k))
			continue
		}
		tol := f.Tolerance[k]
		if tol == 0 {
			tol = 0.05 * (1 + math.Abs(ref))
		}
		if math.Abs(got-ref) > tol {
			bad = append(bad, fmt.Sprintf("%s: measured %.6g, paper %.6g (tol %.3g)", k, got, ref, tol))
		}
	}
	return bad
}

// Generator lazily builds one figure: the ID is known up front (for
// selection and job labels), the expensive computation runs only when
// Make is called. The job engine turns each generator into one job.
type Generator struct {
	ID   string
	Make func() Figure
}

// Generators returns the paper's figures as lazy generators, in order.
func Generators() []Generator {
	return []Generator{
		{"fig1a", Fig1a}, {"fig1b", Fig1b}, {"fig2a", Fig2a}, {"fig2b", Fig2b},
		{"fig3a", Fig3a}, {"fig3b", Fig3b}, {"fig4a", Fig4a}, {"fig4b", Fig4b},
		{"fig5", Fig5}, {"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8},
		{"fig9", Fig9}, {"fig10", Fig10},
	}
}

// All regenerates every figure of the paper, in order.
func All() []Figure {
	gens := Generators()
	figs := make([]Figure, len(gens))
	for i, g := range gens {
		figs[i] = g.Make()
	}
	return figs
}

// preemptibleFigure builds a Section 3 figure from a problem instance.
func preemptibleFigure(id, title string, p *core.Preemptible, ref, tol map[string]float64) Figure {
	xs, ys := p.Curve(400)
	sol := p.OptimalX()
	fig := Figure{
		ID:    id,
		Title: title,
		Plot: plot.Plot{
			Title:  title,
			XLabel: "X (checkpoint lead time)",
			YLabel: "E(W(X))",
			Series: []plot.Series{{Name: "E(W(X))", X: xs, Y: ys}},
			VLines: []plot.VLine{{X: sol.X, Label: fmt.Sprintf("X_opt=%.3g", sol.X)}},
		},
		Reference: ref,
		Tolerance: tol,
		Measured: map[string]float64{
			"X_opt":        sol.X,
			"E(W(X_opt))":  sol.ExpectedWork,
			"E(W(b))":      p.Pessimistic().ExpectedWork,
			"gain_vs_pess": p.Gain(),
		},
	}
	return fig
}

// Fig1a is Figure 1(a): Uniform law, interior optimum.
// a=1, b=7.5, R=10; X_opt = 5.5, E(W(X_opt)) ~ 3.1; the pessimistic
// X=b reaches only ~80% of the optimum.
func Fig1a() Figure {
	p := core.NewPreemptible(10, dist.NewUniform(1, 7.5))
	return preemptibleFigure("fig1a", "Fig 1(a): Uniform[1, 7.5], R=10", p,
		map[string]float64{"X_opt": 5.5, "E(W(X_opt))": 3.1, "E(W(b))": 2.5},
		map[string]float64{"X_opt": 1e-9, "E(W(X_opt))": 0.05, "E(W(b))": 1e-9})
}

// Fig1b is Figure 1(b): Uniform law, boundary optimum.
// a=1, b=5, R=10; X_opt = b = 5.
func Fig1b() Figure {
	p := core.NewPreemptible(10, dist.NewUniform(1, 5))
	return preemptibleFigure("fig1b", "Fig 1(b): Uniform[1, 5], R=10", p,
		map[string]float64{"X_opt": 5, "E(W(b))": 5},
		map[string]float64{"X_opt": 1e-9, "E(W(b))": 1e-9})
}

// Fig2a is Figure 2(a): truncated Exponential, interior optimum.
// a=1, b=5, R=10, lambda=1/2; paper reads X_opt ~ 3.9 off the plot (the
// closed form evaluates to ~3.82).
func Fig2a() Figure {
	p := core.NewPreemptible(10, dist.Truncate(dist.NewExponential(0.5), 1, 5))
	return preemptibleFigure("fig2a", "Fig 2(a): Exp(1/2)|[1,5], R=10", p,
		map[string]float64{"X_opt": 3.9},
		map[string]float64{"X_opt": 0.15})
}

// Fig2b is Figure 2(b): truncated Exponential, boundary optimum.
// a=1, b=3, R=10, lambda=1/2; X_opt = b = 3.
func Fig2b() Figure {
	p := core.NewPreemptible(10, dist.Truncate(dist.NewExponential(0.5), 1, 3))
	return preemptibleFigure("fig2b", "Fig 2(b): Exp(1/2)|[1,3], R=10", p,
		map[string]float64{"X_opt": 3},
		map[string]float64{"X_opt": 1e-9})
}

// Fig3a is Figure 3(a): truncated Normal, interior optimum.
// Reconstructed parameters (see package comment): a=1, b=6, R=10,
// mu=3.5, sigma=1; the stationary point is interior.
func Fig3a() Figure {
	p := core.NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5, 1), 1, 6))
	fig := preemptibleFigure("fig3a", "Fig 3(a): N(3.5,1)|[1,6], R=10", p,
		map[string]float64{"interior": 1},
		map[string]float64{"interior": 0.5})
	if p.OptimalX().Interior {
		fig.Measured["interior"] = 1
	} else {
		fig.Measured["interior"] = 0
	}
	return fig
}

// Fig3b is Figure 3(b): truncated Normal, boundary optimum.
// a=1, b=4.7, R=10, mu=3.5, sigma=1; X_opt = b = 4.7.
func Fig3b() Figure {
	p := core.NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5, 1), 1, 4.7))
	return preemptibleFigure("fig3b", "Fig 3(b): N(3.5,1)|[1,4.7], R=10", p,
		map[string]float64{"X_opt": 4.7},
		map[string]float64{"X_opt": 1e-9})
}

// Fig4a is Figure 4(a): truncated LogNormal, interior optimum.
// Reconstructed parameters: a=1, b=6, R=10, mu=1, sigma=0.5 (so the
// law's own mean mu* = e^{1.125} ~ 3.08 lies in [a, b] as Section 3.2.4
// requires).
func Fig4a() Figure {
	p := core.NewPreemptible(10, dist.Truncate(dist.NewLogNormal(1, 0.5), 1, 6))
	fig := preemptibleFigure("fig4a", "Fig 4(a): LogN(1,0.5)|[1,6], R=10", p,
		map[string]float64{"interior": 1},
		map[string]float64{"interior": 0.5})
	if p.OptimalX().Interior {
		fig.Measured["interior"] = 1
	} else {
		fig.Measured["interior"] = 0
	}
	return fig
}

// Fig4b is Figure 4(b): truncated LogNormal, boundary optimum.
// a=1, b=4.7, R=10 per the caption, with mu=1.25, sigma=0.5 pushing the
// stationary point past b; X_opt = b = 4.7.
func Fig4b() Figure {
	p := core.NewPreemptible(10, dist.Truncate(dist.NewLogNormal(1.25, 0.5), 1, 4.7))
	return preemptibleFigure("fig4b", "Fig 4(b): LogN(1.25,0.5)|[1,4.7], R=10", p,
		map[string]float64{"X_opt": 4.7},
		map[string]float64{"X_opt": 1e-9})
}

// staticFigure builds a Section 4.2 figure.
func staticFigure(id, title string, s *core.Static, yMax float64, ref, tol map[string]float64) Figure {
	ys, vals := s.Curve(yMax, 240)
	sol := s.Optimize()
	return Figure{
		ID:    id,
		Title: title,
		Plot: plot.Plot{
			Title:  title,
			XLabel: "y (number of tasks, continuous relaxation)",
			YLabel: "E(y)",
			Series: []plot.Series{{Name: "E(y)", X: ys, Y: vals}},
			VLines: []plot.VLine{{X: sol.YOpt, Label: fmt.Sprintf("y_opt=%.3g", sol.YOpt)}},
		},
		Reference: ref,
		Tolerance: tol,
		Measured: map[string]float64{
			"y_opt":      sol.YOpt,
			"n_opt":      float64(sol.NOpt),
			"E(n_opt)":   sol.ENOpt,
			"E(floor)":   s.ExpectedWork(math.Floor(sol.YOpt)),
			"E(ceil)":    s.ExpectedWork(math.Ceil(sol.YOpt)),
			"E(y_opt)":   sol.FOpt,
			"E(n_opt-1)": s.ExpectedWork(float64(sol.NOpt - 1)),
		},
	}
}

// paperCkptLaw is the Normal law truncated to [0, inf) used as D_C
// throughout Section 4.
func paperCkptLaw(mu, sigma float64) dist.Continuous {
	return dist.Truncate(dist.NewNormal(mu, sigma), 0, math.Inf(1))
}

// Fig5 is Figure 5: static strategy, Normal tasks.
// mu=3, sigma=0.5, muC=5, sigmaC=0.4, R=30; y_opt ~ 7.4, f(7) ~ 20.9,
// f(8) ~ 17.6, n_opt = 7.
func Fig5() Figure {
	s := core.NewStatic(30, dist.NewNormal(3, 0.5), paperCkptLaw(5, 0.4))
	fig := staticFigure("fig5", "Fig 5: static, Normal(3, 0.5) tasks, R=30", s, 12,
		map[string]float64{"y_opt": 7.4, "n_opt": 7, "f(7)": 20.9, "f(8)": 17.6},
		map[string]float64{"y_opt": 0.2, "n_opt": 0.1, "f(7)": 0.3, "f(8)": 0.3})
	fig.Measured["f(7)"] = s.ExpectedWork(7)
	fig.Measured["f(8)"] = s.ExpectedWork(8)
	return fig
}

// Fig6 is Figure 6: static strategy, Gamma tasks.
// k=1, theta=0.5, muC=2, sigmaC=0.4, R=10; y_opt ~ 11.8, g(11) ~ 4.77,
// g(12) ~ 4.82, n_opt = 12.
func Fig6() Figure {
	s := core.NewStatic(10, dist.NewGamma(1, 0.5), paperCkptLaw(2, 0.4))
	fig := staticFigure("fig6", "Fig 6: static, Gamma(1, 0.5) tasks, R=10", s, 24,
		map[string]float64{"y_opt": 11.8, "n_opt": 12, "g(11)": 4.77, "g(12)": 4.82},
		map[string]float64{"y_opt": 0.3, "n_opt": 0.1, "g(11)": 0.1, "g(12)": 0.1})
	fig.Measured["g(11)"] = s.ExpectedWork(11)
	fig.Measured["g(12)"] = s.ExpectedWork(12)
	return fig
}

// Fig7 is Figure 7: static strategy, Poisson tasks.
// lambda=3, muC=5, sigmaC=0.4, R=29; y_opt ~ 5.98, h(5) ~ 14.6,
// h(6) ~ 15.8, n_opt = 6.
func Fig7() Figure {
	s := core.NewStaticDiscrete(29, dist.NewPoisson(3), paperCkptLaw(5, 0.4))
	fig := staticFigure("fig7", "Fig 7: static, Poisson(3) tasks, R=29", s, 12,
		map[string]float64{"y_opt": 5.98, "n_opt": 6, "h(5)": 14.6, "h(6)": 15.8},
		map[string]float64{"y_opt": 0.2, "n_opt": 0.1, "h(5)": 0.3, "h(6)": 0.3})
	fig.Measured["h(5)"] = s.ExpectedWork(5)
	fig.Measured["h(6)"] = s.ExpectedWork(6)
	return fig
}

// dynamicFigure builds a Section 4.3 figure.
func dynamicFigure(id, title string, d *core.Dynamic, ref, tol map[string]float64) Figure {
	ws, ck, cont := d.Curves(240)
	fig := Figure{
		ID:    id,
		Title: title,
		Plot: plot.Plot{
			Title:  title,
			XLabel: "W_n (work done)",
			YLabel: "expected saved work",
			Series: []plot.Series{
				{Name: "E(W_C) checkpoint now", X: ws, Y: ck},
				{Name: "E(W_+1) one more task", X: ws, Y: cont},
			},
		},
		Reference: ref,
		Tolerance: tol,
		Measured:  map[string]float64{},
	}
	if w, err := d.Intersection(); err == nil {
		fig.Measured["W_int"] = w
		fig.Plot.VLines = append(fig.Plot.VLines, plot.VLine{X: w, Label: fmt.Sprintf("W_int=%.3g", w)})
	}
	return fig
}

// Fig8 is Figure 8: dynamic strategy, truncated Normal tasks.
// mu=3, sigma=0.5, muC=5, sigmaC=0.4, R=29; W_int ~ 20.3.
func Fig8() Figure {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	d := core.NewDynamic(29, task, paperCkptLaw(5, 0.4))
	return dynamicFigure("fig8", "Fig 8: dynamic, N(3,0.5)|[0,inf) tasks, R=29", d,
		map[string]float64{"W_int": 20.3},
		map[string]float64{"W_int": 0.3})
}

// Fig9 is Figure 9: dynamic strategy, Gamma tasks.
// k=1, theta=0.5, muC=2, sigmaC=0.4, R=10; W_int ~ 6.4.
func Fig9() Figure {
	d := core.NewDynamic(10, dist.NewGamma(1, 0.5), paperCkptLaw(2, 0.4))
	return dynamicFigure("fig9", "Fig 9: dynamic, Gamma(1, 0.5) tasks, R=10", d,
		map[string]float64{"W_int": 6.4},
		map[string]float64{"W_int": 0.3})
}

// Fig10 is Figure 10: dynamic strategy, Poisson tasks.
// lambda=3, muC=5, sigmaC=0.4, R=29; W_int ~ 18.9.
func Fig10() Figure {
	d := core.NewDynamicDiscrete(29, dist.NewPoisson(3), paperCkptLaw(5, 0.4))
	return dynamicFigure("fig10", "Fig 10: dynamic, Poisson(3) tasks, R=29", d,
		map[string]float64{"W_int": 18.9},
		map[string]float64{"W_int": 0.4})
}
