package figures

import (
	"fmt"
	"math"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/plot"
)

// ExtendedGenerators returns the repository's own ablation figures as
// lazy generators, beyond the ten the paper prints. They carry no paper
// reference values (Check is vacuous); EXPERIMENTS.md discusses the
// measured shapes.
func ExtendedGenerators() []Generator {
	return []Generator{
		{"ext1", ExtGainVsSpread}, {"ext2", ExtAdaptivityVsCV},
		{"ext3", ExtDPValueFunction}, {"ext4", ExtMisspecification},
	}
}

// Extended regenerates every ablation figure, in order.
func Extended() []Figure {
	gens := ExtendedGenerators()
	figs := make([]Figure, len(gens))
	for i, g := range gens {
		figs[i] = g.Make()
	}
	return figs
}

// ExtGainVsSpread quantifies the Section 3 take-away as a curve: the
// gain of the optimal instant over the pessimistic X=b plan as a
// function of the half-width s of a Uniform checkpoint law centered at
// 4, for R=10. Below s=2 the instance is in the Figure 1(b) boundary
// regime (gain exactly 1); beyond it the Figure 1(a) regime opens up.
func ExtGainVsSpread() Figure {
	const points = 120
	xs := make([]float64, points+1)
	ys := make([]float64, points+1)
	for i := 0; i <= points; i++ {
		s := 0.2 + (3.4-0.2)*float64(i)/points
		p := core.NewPreemptible(10, dist.NewUniform(4-s, 4+s))
		xs[i] = s
		ys[i] = p.Gain()
	}
	return Figure{
		ID:    "ext1",
		Title: "Ext 1: optimal/pessimistic gain vs checkpoint spread (Uniform[4-s, 4+s], R=10)",
		Plot: plot.Plot{
			Title:  "Gain vs checkpoint-duration spread",
			XLabel: "s (half-width of the Uniform support)",
			YLabel: "E(W(X_opt)) / E(W(b))",
			Series: []plot.Series{{Name: "gain", X: xs, Y: ys}},
			VLines: []plot.VLine{{X: 2, Label: "interior regime opens"}},
		},
		Reference: map[string]float64{},
		Measured: map[string]float64{
			"gain@s=0.5": gainAtSpread(0.5),
			"gain@s=3":   gainAtSpread(3),
		},
	}
}

func gainAtSpread(s float64) float64 {
	return core.NewPreemptible(10, dist.NewUniform(4-s, 4+s)).Gain()
}

// ExtAdaptivityVsCV measures how much exact adaptivity (the DP optimum)
// buys over the best static plan as task durations grow more variable:
// Gamma tasks with mean 3 and coefficient of variation cv, the Figure 8
// checkpoint law, R=29. Entirely analytic (no Monte-Carlo): the static
// value is E(n_opt), the adaptive value is the DP solution.
func ExtAdaptivityVsCV() Figure {
	cvs := []float64{0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0}
	ckpt := paperCkptLaw(5, 0.4)
	xs := make([]float64, len(cvs))
	stat := make([]float64, len(cvs))
	dp := make([]float64, len(cvs))
	for i, cv := range cvs {
		k := 1 / (cv * cv)
		theta := 3 * cv * cv
		task := dist.NewGamma(k, theta)
		xs[i] = cv
		stat[i] = core.NewStatic(29, task, ckpt).Optimize().ENOpt
		dp[i] = core.NewDP(29, task, ckpt, 1024).Solve().Value
	}
	fig := Figure{
		ID:    "ext2",
		Title: "Ext 2: adaptive (DP) vs static expected work as task variability grows",
		Plot: plot.Plot{
			Title:  "Adaptivity pays under variability (Gamma tasks, mean 3, R=29)",
			XLabel: "task coefficient of variation",
			YLabel: "expected saved work",
			Series: []plot.Series{
				{Name: "DP optimum (adaptive)", X: xs, Y: dp},
				{Name: "static n_opt", X: xs, Y: stat},
			},
		},
		Reference: map[string]float64{},
		Measured: map[string]float64{
			"dp@cv=0.1":     dp[0],
			"static@cv=0.1": stat[0],
			"dp@cv=1":       dp[len(dp)-1],
			"static@cv=1":   stat[len(stat)-1],
		},
	}
	return fig
}

// ExtDPValueFunction plots the DP value function V(w) on the Figure 8
// instance with both thresholds marked: the DP policy switch and the
// paper's myopic W_int. Their proximity is the visual form of the V7
// optimality-gap experiment.
func ExtDPValueFunction() Figure {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkptLaw(5, 0.4)
	sol := core.NewDP(29, task, ckpt, 2048).Solve()
	dyn := core.NewDynamic(29, task, ckpt)

	// Thin the grid for plotting.
	var xs, ys []float64
	for i := 0; i < len(sol.Grid); i += 8 {
		xs = append(xs, sol.Grid[i])
		ys = append(ys, sol.V[i])
	}
	fig := Figure{
		ID:    "ext3",
		Title: "Ext 3: DP value function and thresholds (Fig 8 instance)",
		Plot: plot.Plot{
			Title:  "V(w): optimal expected saved work from state w",
			XLabel: "w (accumulated work = elapsed time)",
			YLabel: "V(w)",
			Series: []plot.Series{{Name: "V(w)", X: xs, Y: ys}},
			VLines: []plot.VLine{
				{X: sol.Threshold, Label: fmt.Sprintf("DP threshold %.3g", sol.Threshold)},
			},
		},
		Reference: map[string]float64{},
		Measured: map[string]float64{
			"V(0)":         sol.Value,
			"dp_threshold": sol.Threshold,
		},
	}
	if w, err := dyn.Intersection(); err == nil {
		fig.Measured["W_int"] = w
		fig.Plot.VLines = append(fig.Plot.VLines,
			plot.VLine{X: w, Label: fmt.Sprintf("myopic W_int %.3g", w)})
	}
	return fig
}

// ExtMisspecification plots how much of the optimal expected work
// survives when the checkpoint-duration mean is misestimated by delta
// (the planner assumes N(mu+delta, sigma) truncated to the same [a, b]
// as the N(mu, sigma) truth). It quantifies how accurate the
// trace-learned D_C needs to be.
func ExtMisspecification() Figure {
	const (
		r     = 10.0
		mu    = 3.5
		sigma = 1.0
		a, b  = 1.0, 6.0
	)
	truth := core.NewPreemptible(r, dist.Truncate(dist.NewNormal(mu, sigma), a, b))
	const points = 80
	xs := make([]float64, points+1)
	ys := make([]float64, points+1)
	for i := 0; i <= points; i++ {
		delta := -2 + 4*float64(i)/points
		assumed := core.NewPreemptible(r, dist.Truncate(dist.NewNormal(mu+delta, sigma), a, b))
		xs[i] = delta
		ys[i] = core.MisspecificationLoss(truth, assumed)
	}
	return Figure{
		ID:    "ext4",
		Title: "Ext 4: robustness to a misestimated checkpoint mean (Fig 3a instance)",
		Plot: plot.Plot{
			Title:  "Fraction of optimal E(W) achieved vs mean error",
			XLabel: "delta (assumed - true checkpoint mean)",
			YLabel: "achieved / optimal",
			Series: []plot.Series{{Name: "robustness", X: xs, Y: ys}},
			VLines: []plot.VLine{{X: 0, Label: "perfect knowledge"}},
		},
		Reference: map[string]float64{},
		Measured: map[string]float64{
			"loss@-1": lossAtDelta(truth, mu, sigma, a, b, -1),
			"loss@0":  lossAtDelta(truth, mu, sigma, a, b, 0),
			"loss@+1": lossAtDelta(truth, mu, sigma, a, b, 1),
			"loss@-2": lossAtDelta(truth, mu, sigma, a, b, -2),
		},
	}
}

func lossAtDelta(truth *core.Preemptible, mu, sigma, a, b, delta float64) float64 {
	assumed := core.NewPreemptible(truth.R, dist.Truncate(dist.NewNormal(mu+delta, sigma), a, b))
	return core.MisspecificationLoss(truth, assumed)
}
