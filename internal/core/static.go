package core

import (
	"math"

	"reskit/internal/dist"
	"reskit/internal/optimize"
	"reskit/internal/quad"
)

// Static is the Section 4.2 problem: a chain of IID stochastic tasks
// inside a reservation of length R, with a checkpoint allowed only at
// task boundaries. The static strategy fixes, before execution starts,
// the number of tasks n after which to checkpoint, maximizing
//
//	E(n) = Integral  x * P(C <= R - x) * f_{S_n}(x) dx        (Eq. 3)
//
// where S_n is the law of the sum of the first n task durations. Exactly
// one of Task (continuous, e.g. Normal or Gamma) and TaskDisc (discrete,
// e.g. Poisson with discretized time) is set.
type Static struct {
	R        float64
	Ckpt     dist.Continuous // D_C; the paper uses Normal truncated to [0, inf)
	Task     dist.Summable
	TaskDisc dist.SummableDiscrete
}

// NewStatic builds the static problem for a continuous task law
// (Sections 4.2.1 Normal and 4.2.2 Gamma).
func NewStatic(r float64, task dist.Summable, ckpt dist.Continuous) *Static {
	s, err := TryNewStatic(r, task, ckpt)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewStaticDiscrete builds the static problem for a discrete task law
// (Section 4.2.3 Poisson, with task durations in integer time units).
func NewStaticDiscrete(r float64, task dist.SummableDiscrete, ckpt dist.Continuous) *Static {
	s, err := TryNewStaticDiscrete(r, task, ckpt)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// ckptProb returns P(C <= w), zero for w <= 0. With the paper's
// truncated-Normal D_C this is the bracketed Phi-ratio of Section 4.2.
func (s *Static) ckptProb(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return s.Ckpt.CDF(w)
}

// ExpectedWork evaluates the continuous relaxation of E(n) at a real
// y > 0 — the functions f, g and h of Figures 5, 6 and 7. For continuous
// task laws it integrates Equation (3) against the SumIID(y) density; for
// discrete laws it evaluates the finite sum over j = 0..floor(R).
func (s *Static) ExpectedWork(y float64) float64 {
	if !(y > 0) {
		return 0
	}
	if s.TaskDisc != nil {
		return s.expectedWorkDiscrete(y)
	}
	return s.expectedWorkContinuous(y)
}

func (s *Static) expectedWorkContinuous(y float64) float64 {
	sn := s.Task.SumIID(y)
	if pm, ok := sn.(dist.Deterministic); ok {
		// Point mass: E(y) = v * P(C <= R - v) with v = y * task duration.
		return pm.Value * s.ckptProb(s.R-pm.Value)
	}
	integrand := func(x float64) float64 {
		return x * s.ckptProb(s.R-x) * sn.PDF(x)
	}
	lo, _ := sn.Support()
	if math.IsInf(lo, -1) {
		// Normal task law: the paper integrates from -inf to R to stay
		// correct when the Normal model allows (rare) negative sums.
		lo = sn.Quantile(1e-14)
	}
	hi := s.R
	if lo >= hi {
		return 0
	}
	// Tighten the window to where the sum's density lives.
	if q := sn.Quantile(1 - 1e-14); q < hi {
		hi = q
	}
	if lo >= hi {
		return 0
	}
	return quad.Kronrod(integrand, lo, hi, 1e-12, 1e-10).Value
}

func (s *Static) expectedWorkDiscrete(y float64) float64 {
	sn := s.TaskDisc.SumIID(y)
	jMax := int(math.Floor(s.R))
	var sum float64
	for j := 1; j <= jMax; j++ {
		sum += float64(j) * s.ckptProb(s.R-float64(j)) * sn.PMF(j)
	}
	return sum
}

// StaticSolution reports the static strategy's optimum.
type StaticSolution struct {
	YOpt  float64 // maximizer of the continuous relaxation
	FOpt  float64 // relaxation value at YOpt
	NOpt  int     // optimal integer task count (floor/ceil comparison)
	ENOpt float64 // E(NOpt)
}

// Optimize locates the maximum of the continuous relaxation and returns
// the paper's n_opt: whichever of floor(y_opt) and ceil(y_opt) yields the
// larger E(n) (Sections 4.2.1-4.2.3).
func (s *Static) Optimize() StaticSolution {
	yMax := s.yUpperBound()
	r := optimize.MaxGridRefine(s.ExpectedWork, 1e-6, yMax, 256, 1e-9)
	n, en := optimize.ArgmaxInt(func(n int) float64 { return s.ExpectedWork(float64(n)) }, r.X, 1)
	return StaticSolution{YOpt: r.X, FOpt: r.F, NOpt: n, ENOpt: en}
}

// yUpperBound bounds the search for y_opt: beyond roughly R/mean tasks
// the sum almost surely exceeds R and E(y) collapses, so 3x that plus
// slack is a safe ceiling.
func (s *Static) yUpperBound() float64 {
	var mean float64
	if s.TaskDisc != nil {
		mean = s.TaskDisc.Mean()
	} else {
		mean = s.Task.Mean()
	}
	if !(mean > 0) {
		return 64
	}
	return 3*s.R/mean + 8
}

// Curve samples the continuous relaxation at n+1 points of (0, yMax],
// the series plotted in Figures 5-7.
func (s *Static) Curve(yMax float64, n int) (ys, vals []float64) {
	if n < 1 {
		n = 1
	}
	ys = make([]float64, n+1)
	vals = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		y := yMax * float64(i+1) / float64(n+1)
		ys[i] = y
		vals[i] = s.ExpectedWork(y)
	}
	return ys, vals
}
