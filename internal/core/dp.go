package core

import (
	"reskit/internal/dist"
)

// DP solves the workflow problem exactly (up to time discretization) by
// backward dynamic programming, as an independent validation of — and
// upper bound for — the paper's one-step-lookahead dynamic rule. With a
// single checkpoint per reservation and IID tasks, the state at a task
// boundary is just the accumulated work w (equal to elapsed time), and
// the optimal expected saved work satisfies
//
//	V(w) = max(  w * P(C <= R - w),                       // checkpoint now
//	             E_X[ V(w + X) * 1{w + X <= R} ]  )       // one more task
//
// with V(w) = 0 for w >= R. The paper's Section 4.3 rule replaces the
// recursive continuation value by the myopic one-step value E(W_+1);
// DP measures exactly how much that approximation costs.
type DP struct {
	R    float64
	Task dist.Continuous // IID task-duration law, support within [0, inf)
	Ckpt dist.Continuous // checkpoint-duration law, support within [0, inf)

	steps int
}

// NewDP builds the discretized dynamic program with the given number of
// grid steps (>= 16; 2048 gives ~3 decimal digits on the paper's
// instances).
func NewDP(r float64, task, ckpt dist.Continuous, steps int) *DP {
	d, err := TryNewDP(r, task, ckpt, steps)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// DPSolution reports the solved dynamic program.
type DPSolution struct {
	Value     float64   // V(0): optimal expected saved work from a fresh reservation
	Threshold float64   // smallest grid w where checkpointing is optimal
	Grid      []float64 // w grid
	V         []float64 // value function on the grid
	CkptBest  []bool    // whether checkpointing is optimal at each grid point
}

// Solve runs the backward recursion.
func (d *DP) Solve() DPSolution {
	n := d.steps
	h := d.R / float64(n)
	grid := make([]float64, n+1)
	v := make([]float64, n+1)
	ckptBest := make([]bool, n+1)
	for i := range grid {
		grid[i] = float64(i) * h
	}

	// Task-duration cell masses: mass[k] = P(X in [k h, (k+1) h)).
	mass := make([]float64, n+1)
	prev := d.Task.CDF(0)
	for k := 0; k < n; k++ {
		cur := d.Task.CDF(float64(k+1) * h)
		mass[k] = cur - prev
		prev = cur
	}

	ckProb := func(w float64) float64 {
		if w <= 0 {
			return 0
		}
		return d.Ckpt.CDF(w)
	}

	// v[n] = 0: at w = R there is no time left for any checkpoint with
	// positive minimum duration; even with P(C<=0+)=0 the value is 0.
	for i := n - 1; i >= 0; i-- {
		w := grid[i]
		ckVal := w * ckProb(d.R-w)

		// Continuation: E[V(w+X)] over cells k = 0..n-i-1, evaluating V
		// at cell midpoints by linear interpolation. The k = 0 cell
		// references v[i] itself; collect its coefficient and solve the
		// scalar fixed point.
		var rest float64
		var selfCoef float64
		for k := 0; k < n-i; k++ {
			m := mass[k]
			if m == 0 {
				continue
			}
			// midpoint value ~ (v[i+k] + v[i+k+1]) / 2
			if k == 0 {
				selfCoef += m / 2
				rest += m / 2 * v[i+1]
			} else {
				rest += m / 2 * (v[i+k] + v[i+k+1])
			}
		}
		contVal := rest
		if selfCoef < 1 {
			// If continuing is optimal, v[i] = rest + selfCoef * v[i].
			contVal = rest / (1 - selfCoef)
		}
		if ckVal >= contVal {
			v[i] = ckVal
			ckptBest[i] = true
		} else {
			v[i] = contVal
		}
	}

	sol := DPSolution{Value: v[0], Grid: grid, V: v, CkptBest: ckptBest}
	sol.Threshold = d.R
	for i := 1; i <= n; i++ { // skip w=0 (nothing to save; trivially "checkpoint" is worthless)
		if ckptBest[i] {
			sol.Threshold = grid[i]
			break
		}
	}
	return sol
}
