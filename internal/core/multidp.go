package core

import (
	"reskit/internal/dist"
)

// MultiDP solves the Section 4.4 question exactly (up to discretization):
// when checkpoints may be taken repeatedly inside one reservation, what
// is the optimal commit schedule? The state is (uncommitted work w,
// elapsed time t) at a task boundary, and the value — the expected
// additional work committed from now on — satisfies
//
//	V(w, t) = max(  0,                                           // drop
//	                E_X[ V(w + X, t + X) 1{t + X <= R} ],        // one more task
//	                E_C[ (w + V(0, t + C)) 1{t + C <= R} ]  )    // checkpoint
//
// with V(·, t) = 0 for t >= R. Unlike DP (one checkpoint, so w == t),
// the two coordinates decouple after the first commit; the recursion is
// solved on a full (w, t) grid. MultiDP.Value(0, 0) upper-bounds every
// realizable multi-checkpoint policy, in particular the simulator's
// ContinueExecution runs.
type MultiDP struct {
	R    float64
	Task dist.Continuous
	Ckpt dist.Continuous

	steps int
}

// NewMultiDP builds the discretized two-dimensional dynamic program.
// Grids beyond ~512 steps get slow (O(steps^3) work); 256 resolves the
// paper's instances to ~1%.
func NewMultiDP(r float64, task, ckpt dist.Continuous, steps int) *MultiDP {
	m, err := TryNewMultiDP(r, task, ckpt, steps)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// MultiDPSolution reports the solved two-dimensional program.
type MultiDPSolution struct {
	Value float64 // V(0, 0): optimal expected committed work per reservation
	Steps int     // grid resolution used
}

// Solve runs the backward recursion over elapsed time.
func (m *MultiDP) Solve() MultiDPSolution {
	n := m.steps
	h := m.R / float64(n)

	// Cell masses for the task and checkpoint laws.
	taskMass := make([]float64, n+1)
	ckptMass := make([]float64, n+1)
	tPrev := m.Task.CDF(0)
	cPrev := m.Ckpt.CDF(0)
	for k := 0; k < n; k++ {
		tCur := m.Task.CDF(float64(k+1) * h)
		taskMass[k] = tCur - tPrev
		tPrev = tCur
		cCur := m.Ckpt.CDF(float64(k+1) * h)
		ckptMass[k] = cCur - cPrev
		cPrev = cCur
	}

	// v[it][iw], iterated from it = n (elapsed = R) down to 0. Only
	// iw <= it states are reachable (work cannot exceed elapsed time),
	// but allocating the full square keeps indexing simple.
	v := make([][]float64, n+1)
	for it := range v {
		v[it] = make([]float64, n+1)
	}

	for it := n - 1; it >= 0; it-- {
		// Checkpoint branch pieces shared across iw (cell-midpoint
		// interpolation, like the task branch):
		// ckSucc = success probability mass (checkpoint fits before R)
		// ckCont = E[V(0, t + C)] over the fitting cells
		var ckSucc, ckCont float64
		for k := 0; it+k < n; k++ {
			mass := ckptMass[k]
			if mass == 0 {
				continue
			}
			ckSucc += mass
			ckCont += mass / 2 * (v[it+k][0] + v[it+k+1][0])
		}
		for iw := it; iw >= 0; iw-- {
			w := float64(iw) * h

			// Continue: E[V(w+X, t+X)], cell midpoints, with the k = 0
			// self term solved as a scalar fixed point.
			var rest, selfCoef float64
			for k := 0; it+k < n && iw+k < n; k++ {
				mass := taskMass[k]
				if mass == 0 {
					continue
				}
				if k == 0 {
					selfCoef += mass / 2
					rest += mass / 2 * v[it+1][iw+1]
				} else {
					rest += mass / 2 * (v[it+k][iw+k] + v[it+k+1][iw+k+1])
				}
			}
			contVal := rest
			if selfCoef < 1 {
				contVal = rest / (1 - selfCoef)
			}

			ckVal := 0.0
			if iw > 0 {
				ckVal = w*ckSucc + ckCont
			}

			best := 0.0 // drop
			if contVal > best {
				best = contVal
			}
			if ckVal > best {
				best = ckVal
			}
			v[it][iw] = best
		}
	}
	return MultiDPSolution{Value: v[0][0], Steps: n}
}
