package core

import (
	"fmt"
	"math"

	"reskit/internal/dist"
)

// This file holds the error-returning constructors. The classic New*
// constructors remain for programmatic use — a bad argument there is a
// programming bug and panics with the same message — but code building
// problems from untrusted input (CLI flags, config files) uses TryNew*
// and reports the error to the user instead of crashing. Each pair
// shares one validation path, so the panic and error texts never drift.

func validateR(what string, r float64) error {
	if !(r > 0) || math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("core: %s: R must be positive and finite, got %g", what, r)
	}
	return nil
}

// TryNewPreemptible is NewPreemptible returning an error instead of
// panicking on invalid arguments.
func TryNewPreemptible(r float64, c dist.Continuous) (*Preemptible, error) {
	if err := validateR("Preemptible", r); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("core: Preemptible: checkpoint law must not be nil")
	}
	a, b := c.Support()
	if !(0 < a && a < b) || math.IsInf(b, 1) {
		return nil, fmt.Errorf("core: Preemptible: checkpoint law must have finite support [a, b] with 0 < a < b, got [%g, %g]", a, b)
	}
	if !(r > a) {
		return nil, fmt.Errorf("core: Preemptible: R = %g leaves no room for the minimum checkpoint a = %g", r, a)
	}
	return &Preemptible{R: r, C: c, a: a, b: b}, nil
}

func tryValidateStaticCommon(r float64, ckpt dist.Continuous) error {
	if err := validateR("Static", r); err != nil {
		return err
	}
	if ckpt == nil {
		return fmt.Errorf("core: Static: checkpoint law must not be nil")
	}
	if lo, _ := ckpt.Support(); lo < 0 {
		return fmt.Errorf("core: Static: checkpoint law support must start at >= 0, got %g", lo)
	}
	return nil
}

// TryNewStatic is NewStatic returning an error instead of panicking.
func TryNewStatic(r float64, task dist.Summable, ckpt dist.Continuous) (*Static, error) {
	if err := tryValidateStaticCommon(r, ckpt); err != nil {
		return nil, err
	}
	if task == nil {
		return nil, fmt.Errorf("core: NewStatic: task law must not be nil")
	}
	return &Static{R: r, Ckpt: ckpt, Task: task}, nil
}

// TryNewStaticDiscrete is NewStaticDiscrete returning an error instead of
// panicking.
func TryNewStaticDiscrete(r float64, task dist.SummableDiscrete, ckpt dist.Continuous) (*Static, error) {
	if err := tryValidateStaticCommon(r, ckpt); err != nil {
		return nil, err
	}
	if task == nil {
		return nil, fmt.Errorf("core: NewStaticDiscrete: task law must not be nil")
	}
	return &Static{R: r, Ckpt: ckpt, TaskDisc: task}, nil
}

func tryValidateDynamicCommon(r float64, ckpt dist.Continuous) error {
	if err := validateR("Dynamic", r); err != nil {
		return err
	}
	if ckpt == nil {
		return fmt.Errorf("core: Dynamic: checkpoint law must not be nil")
	}
	if lo, _ := ckpt.Support(); lo < 0 {
		return fmt.Errorf("core: Dynamic: checkpoint law support must start at >= 0, got %g", lo)
	}
	return nil
}

// TryNewDynamic is NewDynamic returning an error instead of panicking.
func TryNewDynamic(r float64, task dist.Continuous, ckpt dist.Continuous) (*Dynamic, error) {
	if err := tryValidateDynamicCommon(r, ckpt); err != nil {
		return nil, err
	}
	if task == nil {
		return nil, fmt.Errorf("core: NewDynamic: task law must not be nil")
	}
	if lo, _ := task.Support(); lo < 0 {
		return nil, fmt.Errorf("core: NewDynamic: task law support must start at >= 0, got %g", lo)
	}
	return &Dynamic{
		R: r, Ckpt: ckpt, Task: task,
		ckptB: dist.AsBatch(ckpt), taskB: dist.AsBatch(task),
	}, nil
}

// TryNewDynamicDiscrete is NewDynamicDiscrete returning an error instead
// of panicking.
func TryNewDynamicDiscrete(r float64, task dist.Discrete, ckpt dist.Continuous) (*Dynamic, error) {
	if err := tryValidateDynamicCommon(r, ckpt); err != nil {
		return nil, err
	}
	if task == nil {
		return nil, fmt.Errorf("core: NewDynamicDiscrete: task law must not be nil")
	}
	return &Dynamic{R: r, Ckpt: ckpt, TaskDisc: task, ckptB: dist.AsBatch(ckpt)}, nil
}

func tryValidateGrid(what string, r float64, task, ckpt dist.Continuous) error {
	if err := validateR(what, r); err != nil {
		return err
	}
	if task == nil || ckpt == nil {
		return fmt.Errorf("core: %s: task and checkpoint laws must be set", what)
	}
	if lo, _ := task.Support(); lo < 0 {
		return fmt.Errorf("core: %s: task support starts below 0 (%g)", what, lo)
	}
	if lo, _ := ckpt.Support(); lo < 0 {
		return fmt.Errorf("core: %s: checkpoint support starts below 0 (%g)", what, lo)
	}
	return nil
}

// TryNewDP is NewDP returning an error instead of panicking.
func TryNewDP(r float64, task, ckpt dist.Continuous, steps int) (*DP, error) {
	if err := tryValidateGrid("DP", r, task, ckpt); err != nil {
		return nil, err
	}
	if steps < 16 {
		steps = 2048
	}
	return &DP{R: r, Task: task, Ckpt: ckpt, steps: steps}, nil
}

// TryNewMultiDP is NewMultiDP returning an error instead of panicking.
func TryNewMultiDP(r float64, task, ckpt dist.Continuous, steps int) (*MultiDP, error) {
	if err := tryValidateGrid("MultiDP", r, task, ckpt); err != nil {
		return nil, err
	}
	if steps < 16 {
		steps = 256
	}
	return &MultiDP{R: r, Task: task, Ckpt: ckpt, steps: steps}, nil
}

// TryNewHeterogeneous is NewHeterogeneous returning an error instead of
// panicking.
func TryNewHeterogeneous(r float64, tasks []TaskSpec) (*Heterogeneous, error) {
	if err := validateR("Heterogeneous", r); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("core: Heterogeneous: empty task chain")
	}
	for i, t := range tasks {
		if t.Duration == nil || t.Ckpt == nil {
			return nil, fmt.Errorf("core: Heterogeneous: task %d is missing a law", i)
		}
		if lo, _ := t.Duration.Support(); lo < 0 {
			return nil, fmt.Errorf("core: Heterogeneous: task %d duration support starts below 0", i)
		}
		if lo, _ := t.Ckpt.Support(); lo < 0 {
			return nil, fmt.Errorf("core: Heterogeneous: task %d checkpoint support starts below 0", i)
		}
	}
	return &Heterogeneous{R: r, Tasks: tasks}, nil
}
