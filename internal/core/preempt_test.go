package core

import (
	"math"
	"testing"
	"testing/quick"

	"reskit/internal/dist"
)

func TestUniformFig1aInterior(t *testing.T) {
	// Figure 1(a): a=1, b=7.5, R=10 -> X_opt = (R+a)/2 = 5.5,
	// E(W(X_opt)) = (5.5-1)/(7.5-1) * 4.5 = 3.115..., pessimistic 2.5.
	p := NewPreemptible(10, dist.NewUniform(1, 7.5))
	sol := p.OptimalX()
	if math.Abs(sol.X-5.5) > 1e-12 {
		t.Errorf("X_opt = %g, want 5.5", sol.X)
	}
	if !sol.Interior {
		t.Errorf("optimum should be interior")
	}
	want := 4.5 * 4.5 / 6.5
	if math.Abs(sol.ExpectedWork-want) > 1e-12 {
		t.Errorf("E(W) = %g, want %g", sol.ExpectedWork, want)
	}
	pes := p.Pessimistic()
	if math.Abs(pes.ExpectedWork-2.5) > 1e-12 {
		t.Errorf("pessimistic E(W) = %g, want 2.5", pes.ExpectedWork)
	}
	// Paper: pessimistic reaches only ~80% of the optimum.
	ratio := pes.ExpectedWork / sol.ExpectedWork
	if math.Abs(ratio-0.8025) > 0.01 {
		t.Errorf("pessimistic ratio %g, paper ~0.80", ratio)
	}
}

func TestUniformFig1bBoundary(t *testing.T) {
	// Figure 1(b): a=1, b=5, R=10 -> X_opt = b = 5.
	p := NewPreemptible(10, dist.NewUniform(1, 5))
	sol := p.OptimalX()
	if sol.X != 5 {
		t.Errorf("X_opt = %g, want 5", sol.X)
	}
	if sol.Interior {
		t.Errorf("optimum should be at the boundary")
	}
	if math.Abs(sol.ExpectedWork-5) > 1e-12 {
		t.Errorf("E(W(b)) = %g, want R-b = 5", sol.ExpectedWork)
	}
}

func TestExponentialFig2aInterior(t *testing.T) {
	// Figure 2(a): a=1, b=5, R=10, lambda=1/2 -> X_opt ~ 3.8-3.9.
	c := dist.Truncate(dist.NewExponential(0.5), 1, 5)
	p := NewPreemptible(10, c)
	sol := p.OptimalX()
	if sol.Method != "exponential-lambertw" {
		t.Fatalf("method %q", sol.Method)
	}
	if math.Abs(sol.X-3.9) > 0.15 {
		t.Errorf("X_opt = %g, paper ~3.9", sol.X)
	}
	if !sol.Interior {
		t.Errorf("optimum should be interior")
	}
	// The Lambert-W closed form must agree with direct numerical
	// maximization to high accuracy.
	num := p.optimalNumeric()
	if math.Abs(sol.X-num.X) > 1e-6 {
		t.Errorf("closed form %g vs numeric %g", sol.X, num.X)
	}
	if sol.ExpectedWork < num.ExpectedWork-1e-9 {
		t.Errorf("closed form suboptimal: %g < %g", sol.ExpectedWork, num.ExpectedWork)
	}
}

func TestExponentialFig2bBoundary(t *testing.T) {
	// Figure 2(b): a=1, b=3, R=10, lambda=1/2 -> X_opt = b = 3.
	c := dist.Truncate(dist.NewExponential(0.5), 1, 3)
	p := NewPreemptible(10, c)
	sol := p.OptimalX()
	if sol.X != 3 {
		t.Errorf("X_opt = %g, want b = 3", sol.X)
	}
	if sol.Interior {
		t.Errorf("should be boundary optimum")
	}
}

func TestNormalFig3Cases(t *testing.T) {
	// Figure 3(b): a=1, b=4.7, R=10, mu=3.5, sigma=1 -> X_opt = b.
	cB := dist.Truncate(dist.NewNormal(3.5, 1), 1, 4.7)
	pB := NewPreemptible(10, cB)
	solB := pB.OptimalX()
	if solB.X != 4.7 {
		t.Errorf("3b: X_opt = %g, want b = 4.7", solB.X)
	}
	// Figure 3(a) (interior case): widen b so the stationary point fits.
	cA := dist.Truncate(dist.NewNormal(3.5, 1), 1, 6)
	pA := NewPreemptible(10, cA)
	solA := pA.OptimalX()
	if !solA.Interior {
		t.Errorf("3a: expected interior optimum, got X = %g", solA.X)
	}
	// Stationarity solution must agree with direct maximization.
	num := pA.optimalNumeric()
	if math.Abs(solA.X-num.X) > 1e-6 {
		t.Errorf("3a: stationarity %g vs numeric %g", solA.X, num.X)
	}
}

func TestLogNormalFig4Cases(t *testing.T) {
	// Section 3.2.4 requires mu* = exp(mu + sigma^2/2) in [a, b].
	// Interior case: mu=1, sigma=0.5 -> mu* = e^{1.125} ~ 3.08.
	cA := dist.Truncate(dist.NewLogNormal(1, 0.5), 1, 6)
	pA := NewPreemptible(10, cA)
	solA := pA.OptimalX()
	if solA.Method != "lognormal-stationarity" {
		t.Fatalf("method %q", solA.Method)
	}
	if !solA.Interior {
		t.Errorf("4a: expected interior optimum, got %g", solA.X)
	}
	num := pA.optimalNumeric()
	if math.Abs(solA.X-num.X) > 1e-6 {
		t.Errorf("4a: stationarity %g vs numeric %g", solA.X, num.X)
	}
	// Boundary case per the Figure 4(b) caption: b = 4.7 with a law
	// whose mass pushes the stationary point past b.
	cB := dist.Truncate(dist.NewLogNormal(1.25, 0.5), 1, 4.7)
	pB := NewPreemptible(10, cB)
	solB := pB.OptimalX()
	if solB.X != 4.7 {
		t.Errorf("4b: X_opt = %g, want b = 4.7", solB.X)
	}
}

func TestGenericNumericFallback(t *testing.T) {
	// Weibull and Gamma checkpoint laws are not handled in closed form;
	// the numeric path must still return the global optimum.
	for _, c := range []dist.Continuous{
		dist.Truncate(dist.NewWeibull(1.5, 3), 1, 6),
		dist.Truncate(dist.NewGamma(2, 1.5), 1, 6),
	} {
		p := NewPreemptible(10, c)
		sol := p.OptimalX()
		if sol.Method != "numeric" {
			t.Errorf("%v: method %q", c, sol.Method)
		}
		// Probe optimality against a fine grid.
		for i := 0; i <= 2000; i++ {
			x := 1 + 9*float64(i)/2000
			if p.ExpectedWork(x) > sol.ExpectedWork+1e-9 {
				t.Fatalf("%v: found better X = %g (%g > %g)", c, x,
					p.ExpectedWork(x), sol.ExpectedWork)
			}
		}
	}
}

func TestExpectedWorkBoundaries(t *testing.T) {
	p := NewPreemptible(10, dist.NewUniform(1, 7.5))
	// E(W(a)) = 0: the checkpoint fails almost surely.
	if p.ExpectedWork(1) != 0 {
		t.Errorf("E(W(a)) = %g", p.ExpectedWork(1))
	}
	// E(W(R)) = 0: no work executed.
	if p.ExpectedWork(10) != 0 {
		t.Errorf("E(W(R)) = %g", p.ExpectedWork(10))
	}
	// Outside the feasible range.
	if p.ExpectedWork(0.5) != 0 || p.ExpectedWork(11) != 0 {
		t.Errorf("outside range should be 0")
	}
	// Linear decrease on [b, R].
	if math.Abs(p.ExpectedWork(8)-2) > 1e-12 || math.Abs(p.ExpectedWork(9)-1) > 1e-12 {
		t.Errorf("linear segment wrong")
	}
}

func TestOptimalXBeatsAllProbesProperty(t *testing.T) {
	// For random truncated-Exponential instances, the closed form beats
	// every probed X.
	prop := func(uLambda, uA, uB, uR, uX float64) bool {
		lambda := 0.1 + math.Abs(math.Mod(uLambda, 2))
		a := 0.5 + math.Abs(math.Mod(uA, 3))
		b := a + 0.5 + math.Abs(math.Mod(uB, 5))
		r := b + math.Abs(math.Mod(uR, 10))
		p := NewPreemptible(r, dist.Truncate(dist.NewExponential(lambda), a, b))
		sol := p.OptimalX()
		x := a + math.Abs(math.Mod(uX, 1))*(r-a)
		return p.ExpectedWork(x) <= sol.ExpectedWork+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGain(t *testing.T) {
	p := NewPreemptible(10, dist.NewUniform(1, 7.5))
	g := p.Gain()
	want := (4.5 * 4.5 / 6.5) / 2.5
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("gain %g want %g", g, want)
	}
	// Boundary-optimal instance: gain is exactly 1.
	p2 := NewPreemptible(10, dist.NewUniform(1, 5))
	if math.Abs(p2.Gain()-1) > 1e-12 {
		t.Errorf("boundary gain %g", p2.Gain())
	}
}

func TestCurveShape(t *testing.T) {
	p := NewPreemptible(10, dist.NewUniform(1, 7.5))
	xs, ys := p.Curve(100)
	if len(xs) != 101 || len(ys) != 101 {
		t.Fatalf("curve size %d %d", len(xs), len(ys))
	}
	if xs[0] != 1 || xs[100] != 10 {
		t.Errorf("curve range [%g, %g]", xs[0], xs[100])
	}
	if ys[0] != 0 || ys[100] != 0 {
		t.Errorf("curve endpoints %g %g", ys[0], ys[100])
	}
	// Maximum of the sampled curve is near the analytical optimum.
	best, bestX := -1.0, 0.0
	for i, y := range ys {
		if y > best {
			best, bestX = y, xs[i]
		}
	}
	if math.Abs(bestX-5.5) > 0.1 {
		t.Errorf("curve max at %g, want ~5.5", bestX)
	}
}

func TestPreemptibleConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewPreemptible(-1, dist.NewUniform(1, 2)) },
		func() { NewPreemptible(10, dist.NewNormal(0, 1)) },           // infinite support
		func() { NewPreemptible(10, dist.NewUniform(-1, 2)) },         // a <= 0
		func() { NewPreemptible(0.5, dist.NewUniform(1, 2)) },         // R <= a
		func() { NewPreemptible(10, dist.NewExponential(1)) },         // infinite b
		func() { NewPreemptible(math.Inf(1), dist.NewUniform(1, 2)) }, // R infinite
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTruncatedUniformUsesClosedForm(t *testing.T) {
	// Truncating a Uniform produces another Uniform; the dispatcher must
	// still use the closed form.
	c := dist.Truncate(dist.NewUniform(0.5, 9), 1, 7.5)
	p := NewPreemptible(10, c)
	sol := p.OptimalX()
	if sol.Method != "uniform-closed-form" {
		t.Errorf("method %q", sol.Method)
	}
	if math.Abs(sol.X-5.5) > 1e-9 {
		t.Errorf("X_opt = %g", sol.X)
	}
}

func TestMisspecificationLoss(t *testing.T) {
	truth := NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5, 1), 1, 6))
	// Perfect knowledge: no loss.
	if l := MisspecificationLoss(truth, truth); math.Abs(l-1) > 1e-12 {
		t.Errorf("self loss %g", l)
	}
	// Small parameter error: tiny loss (flat optimum).
	near := NewPreemptible(10, dist.Truncate(dist.NewNormal(3.7, 1), 1, 6))
	if l := MisspecificationLoss(truth, near); l < 0.99 || l > 1 {
		t.Errorf("near loss %g", l)
	}
	// Gross underestimate of the checkpoint time: real loss.
	wrong := NewPreemptible(10, dist.Truncate(dist.NewNormal(1.2, 0.2), 1, 6))
	if l := MisspecificationLoss(truth, wrong); l > 0.97 {
		t.Errorf("gross misspecification suspiciously harmless: %g", l)
	}
	// Mismatched R panics.
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched R must panic")
		}
	}()
	MisspecificationLoss(truth, NewPreemptible(11, dist.NewUniform(1, 6)))
}

func TestMisspecificationLossMonotoneInError(t *testing.T) {
	// Larger mean errors can only hurt (weakly) on this instance.
	truth := NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5, 1), 1, 6))
	prev := 1.0
	for _, shift := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		assumed := NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5-shift, 1), 1, 6))
		l := MisspecificationLoss(truth, assumed)
		if l > prev+1e-9 {
			t.Errorf("loss not weakly decreasing at shift %g: %g > %g", shift, l, prev)
		}
		prev = l
	}
}
