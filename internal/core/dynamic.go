package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"reskit/internal/dist"
	"reskit/internal/optimize"
	"reskit/internal/quad"
)

// ErrNoIntersection is returned by Intersection when E(W_C) never
// overtakes E(W_+1) on (0, R) — checkpointing immediately is never the
// better option inside the reservation (or always is).
var ErrNoIntersection = errors.New("core: expected-work curves do not cross inside (0, R)")

// Dynamic is the Section 4.3 problem: at the end of each task, knowing
// the work W_n accumulated so far, decide whether to checkpoint now or to
// run (at least) one more task. The decision compares
//
//	E(W_C)  = W_n * P(C <= R - W_n)
//	E(W_+1) = Integral_0^{R-W_n} (x + W_n) * P(C <= R - W_n - x) * f_X(x) dx
//
// and checkpoints as soon as E(W_C) >= E(W_+1). Exactly one of Task
// (continuous) and TaskDisc (discrete) is set.
type Dynamic struct {
	R        float64
	Ckpt     dist.Continuous // D_C, support within [0, inf)
	Task     dist.Continuous // D_X (truncated Normal, Gamma, ...)
	TaskDisc dist.Discrete   // discrete D_X (Poisson)

	// Batched views of Ckpt and Task (native or adapter) feeding the
	// quadrature kernels; taskB is nil in the discrete case.
	ckptB dist.BatchContinuous
	taskB dist.BatchContinuous

	// Lazily built coefficient table for O(1) generalized decisions
	// (see ShouldCheckpointAt). Builds are serialized by tableMu rather
	// than a sync.Once so a build cancelled through Prebuild can be
	// retried; tableReady flips to true only after tableA/tableB are
	// fully written, so readers that observe it true may use the slices
	// without taking the mutex. The flag is the hot-path gate: every
	// Monte-Carlo boundary decision funnels through coefficientsAt, and
	// an uncontended mutex there costs more than the interpolation.
	tableMu        sync.Mutex
	tableReady     atomic.Bool
	tableA, tableB []float64
}

// NewDynamic builds the dynamic problem for a continuous task law
// (Sections 4.3.1 truncated Normal and 4.3.2 Gamma).
func NewDynamic(r float64, task dist.Continuous, ckpt dist.Continuous) *Dynamic {
	d, err := TryNewDynamic(r, task, ckpt)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// NewDynamicDiscrete builds the dynamic problem for a discrete task law
// (Section 4.3.3 Poisson).
func NewDynamicDiscrete(r float64, task dist.Discrete, ckpt dist.Continuous) *Dynamic {
	d, err := TryNewDynamicDiscrete(r, task, ckpt)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// ckptProb returns P(C <= w), zero for w <= 0.
func (d *Dynamic) ckptProb(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return d.Ckpt.CDF(w)
}

// ExpectedWorkCheckpoint returns E(W_C)(w) = w * P(C <= R - w), the
// expected saved work when checkpointing immediately with work w done.
func (d *Dynamic) ExpectedWorkCheckpoint(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return w * d.ckptProb(d.R-w)
}

// ExpectedWorkContinue returns E(W_+1)(w), the expected saved work when
// executing exactly one more task before checkpointing, with work w done.
func (d *Dynamic) ExpectedWorkContinue(w float64) float64 {
	return d.expectedContinue(w, d.R-w)
}

// dynScratch holds the per-panel node buffers of the batched dynamic
// integrands: remaining budgets, checkpoint CDF values, task densities.
// Pooled so the adaptive quadrature underneath allocates nothing in
// steady state.
type dynScratch struct {
	ws, cs, ps []float64
}

func (s *dynScratch) grow(n int) {
	if cap(s.ws) < n {
		s.ws = make([]float64, n)
		s.cs = make([]float64, n)
		s.ps = make([]float64, n)
	}
}

var dynPool = sync.Pool{New: func() interface{} { return new(dynScratch) }}

// expectedContinue evaluates E(W_+1) with an explicit remaining budget,
// decoupling uncommitted work from elapsed time. The continuous case
// feeds the batched quadrature kernel: one call per Kronrod panel covers
// all 15 nodes of P(C <= budget-x) and f_X(x).
func (d *Dynamic) expectedContinue(work, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	if d.TaskDisc != nil {
		// One CDFBatch call covers P(C <= budget-j) for every feasible
		// task count, mirroring the batched continuous kernel below.
		s := dynPool.Get().(*dynScratch)
		defer dynPool.Put(s)
		n := int(math.Floor(budget)) + 1
		s.grow(n)
		ws, cs := s.ws[:n], s.cs[:n]
		for j := range ws {
			ws[j] = budget - float64(j)
		}
		d.ckptB.CDFBatch(ws, cs)
		var sum float64
		for j := range ws {
			c := cs[j]
			if ws[j] <= 0 {
				c = 0
			}
			sum += (float64(j) + work) * c * d.TaskDisc.PMF(j)
		}
		return sum
	}
	s := dynPool.Get().(*dynScratch)
	defer dynPool.Put(s)
	integrand := func(xs, out []float64) {
		n := len(xs)
		s.grow(n)
		ws, cs, ps := s.ws[:n], s.cs[:n], s.ps[:n]
		for i, x := range xs {
			ws[i] = budget - x
		}
		d.ckptB.CDFBatch(ws, cs)
		d.taskB.PDFBatch(xs, ps)
		for i, x := range xs {
			c := cs[i]
			if ws[i] <= 0 {
				c = 0
			}
			out[i] = (x + work) * c * ps[i]
		}
	}
	return quad.KronrodBatch(integrand, 0, budget, 1e-12, 1e-10).Value
}

// ShouldCheckpoint reports whether, with work w accumulated, the expected
// saved work of checkpointing now is at least that of running one more
// task — the paper's stopping rule.
func (d *Dynamic) ShouldCheckpoint(w float64) bool {
	return d.ExpectedWorkCheckpoint(w) >= d.ExpectedWorkContinue(w)
}

// ShouldCheckpointAt generalizes the stopping rule to states where the
// elapsed reservation time differs from the uncommitted work — the
// situation of Section 4.4, when execution continues after an earlier
// successful checkpoint. With budget = R - elapsed it compares
//
//	E(W_C)  = work * P(C <= budget)
//	E(W_+1) = Integral_0^budget (x + work) P(C <= budget - x) f_X(x) dx.
//
// The difference is linear in work for a fixed budget:
//
//	E(W_C) - E(W_+1) = work * A(budget) - B(budget)
//	A(b) = P(C <= b) - Integral_0^b P(C <= b - x) f_X(x) dx   (>= 0)
//	B(b) = Integral_0^b x * P(C <= b - x) f_X(x) dx           (>= 0)
//
// so the decision reduces to work*A >= B. A and B are precomputed once
// on a budget grid and interpolated, making the per-boundary decision
// O(1) in large Monte-Carlo runs; states within interpolation tolerance
// of the indifference line fall back to the exact integrals.
func (d *Dynamic) ShouldCheckpointAt(work, elapsed float64) bool {
	budget := d.R - elapsed
	if budget <= 0 {
		return true
	}
	if work <= 0 {
		// Nothing to commit: checkpoint only if one more task is also
		// worthless.
		return d.expectedContinue(0, budget) <= 0
	}
	a, b := d.coefficientsAt(budget)
	diff := work*a - b
	// Interpolation of A and B is accurate to ~1e-4 of their scale;
	// re-evaluate exactly near the indifference line.
	if math.Abs(diff) < 1e-3*(1+b) {
		ec := work * d.ckptProb(budget)
		return ec >= d.expectedContinue(work, budget)
	}
	return diff >= 0
}

// dynamicGridSize is the budget-grid resolution of the coefficient
// table; interpolation across one cell of R/1024 is far below the
// decision tolerance.
const dynamicGridSize = 1024

// coefficientsAt returns A(budget) and B(budget), building the lookup
// table on first use. After the first build the lookup is lock-free.
func (d *Dynamic) coefficientsAt(budget float64) (a, b float64) {
	if !d.tableReady.Load() {
		d.ensureTable(context.Background()) //nolint:errcheck // background ctx never cancels
	}
	if budget >= d.R {
		n := dynamicGridSize
		return d.tableA[n], d.tableB[n]
	}
	pos := budget / d.R * dynamicGridSize
	i := int(pos)
	if i >= dynamicGridSize {
		i = dynamicGridSize - 1
	}
	frac := pos - float64(i)
	a = d.tableA[i] + frac*(d.tableA[i+1]-d.tableA[i])
	b = d.tableB[i] + frac*(d.tableB[i+1]-d.tableB[i])
	return a, b
}

// Prebuild computes the coefficient table eagerly, honoring ctx: grid
// points are independent integrals evaluated across all CPUs, and on
// cancellation the partial table is discarded (never recorded as built),
// so a later Prebuild or decision call rebuilds it from scratch.
// Decision paths that find the table already built never block on it.
func (d *Dynamic) Prebuild(ctx context.Context) error {
	return d.ensureTable(ctx)
}

// ensureTable builds the coefficient table on first use. Grid points are
// independent integrals, so they are computed in parallel across
// runtime.GOMAXPROCS(0) workers; each index is written exactly once,
// making the table bit-identical for any worker count.
func (d *Dynamic) ensureTable(ctx context.Context) error {
	d.tableMu.Lock()
	defer d.tableMu.Unlock()
	if d.tableReady.Load() {
		return nil
	}
	n := dynamicGridSize
	a := make([]float64, n+1)
	b := make([]float64, n+1)
	err := parallelForCtx(ctx, 1, n, func(i int) {
		budget := d.R * float64(i) / float64(n)
		a[i], b[i] = d.exactCoefficients(budget)
	})
	if err != nil {
		// Cancelled mid-build: drop the partial table so the next call
		// starts clean.
		return err
	}
	d.tableA, d.tableB = a, b
	// Store-release: publishes the slice writes above to lock-free
	// readers in coefficientsAt.
	d.tableReady.Store(true)
	return nil
}

// exactCoefficients evaluates A(b) and B(b) by batched quadrature (or
// summation for discrete task laws).
func (d *Dynamic) exactCoefficients(budget float64) (a, b float64) {
	pc := d.ckptProb(budget)
	if d.TaskDisc != nil {
		// Batched like expectedContinue: the checkpoint CDF over all
		// feasible task counts comes from a single CDFBatch call.
		s := dynPool.Get().(*dynScratch)
		defer dynPool.Put(s)
		n := int(math.Floor(budget)) + 1
		s.grow(n)
		ws, cs := s.ws[:n], s.cs[:n]
		for j := range ws {
			ws[j] = budget - float64(j)
		}
		d.ckptB.CDFBatch(ws, cs)
		var sumP, sumXP float64
		for j := range ws {
			c := cs[j]
			if ws[j] <= 0 {
				c = 0
			}
			pj := d.TaskDisc.PMF(j)
			sumP += c * pj
			sumXP += float64(j) * c * pj
		}
		return pc - sumP, sumXP
	}
	s := dynPool.Get().(*dynScratch)
	defer dynPool.Put(s)
	// kernel fills cs/ps with P(C <= budget-x) and f_X(x) for a panel.
	kernel := func(xs []float64) (cs, ps []float64) {
		n := len(xs)
		s.grow(n)
		ws := s.ws[:n]
		cs, ps = s.cs[:n], s.ps[:n]
		for i, x := range xs {
			ws[i] = budget - x
		}
		d.ckptB.CDFBatch(ws, cs)
		d.taskB.PDFBatch(xs, ps)
		for i := range xs {
			if ws[i] <= 0 {
				cs[i] = 0
			}
		}
		return cs, ps
	}
	sumP := quad.KronrodBatch(func(xs, out []float64) {
		cs, ps := kernel(xs)
		for i := range xs {
			out[i] = cs[i] * ps[i]
		}
	}, 0, budget, 1e-12, 1e-10).Value
	sumXP := quad.KronrodBatch(func(xs, out []float64) {
		cs, ps := kernel(xs)
		for i, x := range xs {
			out[i] = x * cs[i] * ps[i]
		}
	}, 0, budget, 1e-12, 1e-10).Value
	return pc - sumP, sumXP
}

// CoeffTable is the immutable coefficient table of a Dynamic problem:
// A(budget) and B(budget) sampled on the uniform budget grid
// {R·i/GridSize}, i = 0..GridSize. It is the expensive part of the
// dynamic policy — everything ShouldCheckpointAt needs beyond the laws
// themselves — extracted as a value so it can be persisted, fingerprinted
// and re-installed (the advisor service content-addresses these tables).
type CoeffTable struct {
	R    float64
	A, B []float64 // both of length GridSize+1
}

// GridSize is the budget-grid resolution of the dynamic coefficient
// table (the number of cells; the table holds GridSize+1 samples).
const GridSize = dynamicGridSize

// Table returns a copy of the coefficient table, building it first if
// necessary (honoring ctx exactly like Prebuild). The returned slices
// are private copies: mutating them cannot perturb later decisions.
func (d *Dynamic) Table(ctx context.Context) (CoeffTable, error) {
	if err := d.ensureTable(ctx); err != nil {
		return CoeffTable{}, err
	}
	t := CoeffTable{
		R: d.R,
		A: make([]float64, len(d.tableA)),
		B: make([]float64, len(d.tableB)),
	}
	copy(t.A, d.tableA)
	copy(t.B, d.tableB)
	return t, nil
}

// InstallTable installs a previously extracted coefficient table,
// skipping the quadrature build entirely. The table must match this
// problem (same R, full grid); the caller is responsible for having
// extracted it from a Dynamic built over the same laws — with that,
// every ShouldCheckpointAt decision is bit-identical to one computed on
// the original instance, including the exact-integral fallback near the
// indifference line (which re-evaluates against the laws, not the
// table). Slices are copied, so the caller may keep mutating its own.
func (d *Dynamic) InstallTable(t CoeffTable) error {
	if t.R != d.R {
		return fmt.Errorf("core: coefficient table for R=%g cannot serve R=%g", t.R, d.R)
	}
	if len(t.A) != dynamicGridSize+1 || len(t.B) != dynamicGridSize+1 {
		return fmt.Errorf("core: coefficient table has %dx%d samples, want %d",
			len(t.A), len(t.B), dynamicGridSize+1)
	}
	d.tableMu.Lock()
	defer d.tableMu.Unlock()
	a := make([]float64, len(t.A))
	b := make([]float64, len(t.B))
	copy(a, t.A)
	copy(b, t.B)
	d.tableA, d.tableB = a, b
	// Store-release, exactly like ensureTable: publishes the slices to
	// lock-free readers in coefficientsAt.
	d.tableReady.Store(true)
	return nil
}

// Intersection returns the smallest W_int in (0, R) at which
// E(W_C) - E(W_+1) changes sign from negative to positive: below W_int it
// is better to keep computing, above it to checkpoint. This is the value
// highlighted in Figures 8-10 of the paper.
func (d *Dynamic) Intersection() (float64, error) {
	diff := func(w float64) float64 {
		return d.ExpectedWorkCheckpoint(w) - d.ExpectedWorkContinue(w)
	}
	// Evaluate the scan grid in parallel, then locate the first sign
	// change in deterministic (ascending) order and polish it with Brent.
	const grid = 512
	ws := make([]float64, grid+1)
	vals := make([]float64, grid+1)
	ws[0] = 1e-9
	for i := 1; i <= grid; i++ {
		ws[i] = d.R * float64(i) / float64(grid+1)
	}
	parallelFor(0, grid, func(i int) { vals[i] = diff(ws[i]) })
	for i := 1; i <= grid; i++ {
		if vals[i-1] < 0 && vals[i] >= 0 {
			root, err := optimize.Brent(diff, ws[i-1], ws[i], 1e-10)
			if err != nil {
				return 0.5 * (ws[i-1] + ws[i]), nil
			}
			return root, nil
		}
	}
	return 0, ErrNoIntersection
}

// Curves samples E(W_C) and E(W_+1) at n+1 points of [0, R], the two
// series plotted in Figures 8-10.
func (d *Dynamic) Curves(n int) (ws, checkpoint, cont []float64) {
	if n < 1 {
		n = 1
	}
	ws = make([]float64, n+1)
	checkpoint = make([]float64, n+1)
	cont = make([]float64, n+1)
	parallelFor(0, n, func(i int) {
		w := d.R * float64(i) / float64(n)
		ws[i] = w
		checkpoint[i] = d.ExpectedWorkCheckpoint(w)
		cont[i] = d.ExpectedWorkContinue(w)
	})
	return ws, checkpoint, cont
}
