// Package core implements the two checkpoint-placement problems of
// Barbut, Benoit, Herault, Robert and Vivien, "When to checkpoint at the
// end of a fixed-length reservation?" (FTXS'23):
//
//   - Preemptible (Section 3): the application can checkpoint at any
//     instant; the checkpoint duration C follows a law truncated to
//     [a, b]. ExpectedWork evaluates Equation (1) of the paper and
//     OptimalX returns the work-maximizing checkpoint instant, using the
//     paper's closed forms where they exist (Uniform; truncated
//     Exponential via Lambert W) and guaranteed numerical optimization
//     elsewhere (truncated Normal and LogNormal via the stationarity
//     condition; arbitrary laws via concave search).
//
//   - Static and Dynamic (Section 4): the application is a chain of IID
//     stochastic tasks and can checkpoint only at task boundaries.
//     Static computes, before execution, the number of tasks n_opt that
//     maximizes the expected saved work E(n) (Equation (3)), through the
//     continuous relaxation the paper introduces for Normal, Gamma and
//     Poisson task laws. Dynamic compares, after each task, the expected
//     saved work of checkpointing now against running one more task, and
//     exposes the indifference point W_int at which the two curves cross.
//
// All numerical claims of the paper's figures are reproduced from this
// package by internal/figures and the repository's benchmark harness.
package core
