package core

import (
	"fmt"
	"math"

	"reskit/internal/dist"
	"reskit/internal/optimize"
	"reskit/internal/specfun"
)

// Preemptible is the Section 3 problem: an application that may start a
// checkpoint at any instant of a reservation of length R, with a
// stochastic checkpoint duration C whose law has bounded support [a, b],
// 0 < a < b. Starting the checkpoint X seconds before the end saves R-X
// units of work when C <= X and nothing otherwise.
type Preemptible struct {
	R float64         // reservation length
	C dist.Continuous // checkpoint-duration law with finite support [a, b]

	a, b float64 // cached support of C
}

// NewPreemptible builds the Section 3 problem. The checkpoint law c must
// have finite support [a, b] with 0 < a < b (use dist.Truncate to build
// truncated laws), and the reservation must satisfy R > a — otherwise not
// even the fastest possible checkpoint fits.
func NewPreemptible(r float64, c dist.Continuous) *Preemptible {
	p, err := TryNewPreemptible(r, c)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// Bounds returns the support [a, b] of the checkpoint-duration law.
func (p *Preemptible) Bounds() (a, b float64) { return p.a, p.b }

// ExpectedWork returns E(W(X)), the expectation of the work saved when
// the checkpoint starts X seconds before the end of the reservation
// (Equation (1) of the paper):
//
//	E(W(X)) = P(C <= X) * (R - X)   for a <= X <= b
//	E(W(X)) = R - X                 for X > b
//
// Outside the feasible range [a, R] the expectation is 0 (X < a: the
// checkpoint cannot finish; X > R: the checkpoint would start before the
// reservation does).
func (p *Preemptible) ExpectedWork(x float64) float64 {
	switch {
	case x < p.a || x > p.R:
		return 0
	case x > p.b:
		return p.R - x
	default:
		return p.C.CDF(x) * (p.R - x)
	}
}

// Solution reports an optimal checkpoint instant for the preemptible
// problem.
type Solution struct {
	X            float64 // optimal lead time: checkpoint at R - X
	ExpectedWork float64 // E(W(X)) at the optimum
	Method       string  // which solver produced the answer
	Interior     bool    // true when X < b (strictly inside the support)
}

// OptimalX returns the X maximizing E(W(X)). Closed forms are used for
// the laws the paper works out (Uniform; truncated Exponential via
// Lambert W); the truncated Normal and LogNormal use the paper's
// stationarity condition solved by bracketed root finding; any other law
// falls back to guaranteed numerical search. Since E(W(X)) = R - X is
// strictly decreasing for X > b, the search space is [a, min(b, R)].
func (p *Preemptible) OptimalX() Solution {
	switch c := p.C.(type) {
	case dist.Uniform:
		return p.optimalUniform(c)
	case *dist.Truncated:
		switch base := c.Base.(type) {
		case dist.Uniform:
			// Truncating a Uniform yields another Uniform.
			return p.optimalUniform(dist.NewUniform(p.a, p.b))
		case dist.Exponential:
			return p.optimalExponential(base.Lambda)
		case dist.Normal:
			return p.optimalNormal(base)
		case dist.LogNormal:
			return p.optimalLogNormal(base)
		}
	}
	return p.optimalNumeric()
}

// optimalUniform implements Section 3.2.1: X_opt = min((R+a)/2, b).
func (p *Preemptible) optimalUniform(dist.Uniform) Solution {
	x := math.Min(0.5*(p.R+p.a), p.b)
	x = math.Min(x, p.R)
	return Solution{
		X:            x,
		ExpectedWork: p.ExpectedWork(x),
		Method:       "uniform-closed-form",
		Interior:     x < p.b,
	}
}

// optimalExponential implements Section 3.2.2:
//
//	X_opt = min( (lambda*R + 1 - W0(e^{lambda(R-a)+1})) / lambda, b )
//
// evaluated through the overflow-free LambertWExpArg.
func (p *Preemptible) optimalExponential(lambda float64) Solution {
	y := lambda*(p.R-p.a) + 1
	x := (lambda*p.R + 1 - specfun.LambertWExpArg(y)) / lambda
	x = math.Min(math.Min(x, p.b), p.R)
	if x < p.a {
		x = p.a
	}
	return Solution{
		X:            x,
		ExpectedWork: p.ExpectedWork(x),
		Method:       "exponential-lambertw",
		Interior:     x < p.b,
	}
}

// optimalNormal implements Section 3.2.3: the stationary point c of
//
//	g'(X) = phi((X-mu)/sigma)(R-X)/sigma - [Phi((X-mu)/sigma) - Phi((a-mu)/sigma)]
//
// exists in (a, R] (g'(a) > 0, g'(R) < 0, g concave around c) and the
// optimum is min(c, b).
func (p *Preemptible) optimalNormal(base dist.Normal) Solution {
	mu, sigma := base.Mu, base.Sigma
	gp := func(x float64) float64 {
		z := (x - mu) / sigma
		return specfun.NormPDF(z)*(p.R-x)/sigma -
			(specfun.NormCDF(z) - specfun.NormCDF((p.a-mu)/sigma))
	}
	x := p.stationaryPoint(gp, "normal-stationarity")
	return Solution{
		X:            x,
		ExpectedWork: p.ExpectedWork(x),
		Method:       "normal-stationarity",
		Interior:     x < p.b,
	}
}

// optimalLogNormal implements Section 3.2.4 by the analogous
// stationarity condition with z = (ln X - mu)/sigma and density factor
// 1/(sigma X).
func (p *Preemptible) optimalLogNormal(base dist.LogNormal) Solution {
	mu, sigma := base.Mu, base.Sigma
	za := (math.Log(p.a) - mu) / sigma
	gp := func(x float64) float64 {
		z := (math.Log(x) - mu) / sigma
		return specfun.NormPDF(z)*(p.R-x)/(sigma*x) -
			(specfun.NormCDF(z) - specfun.NormCDF(za))
	}
	x := p.stationaryPoint(gp, "lognormal-stationarity")
	return Solution{
		X:            x,
		ExpectedWork: p.ExpectedWork(x),
		Method:       "lognormal-stationarity",
		Interior:     x < p.b,
	}
}

// stationaryPoint finds the root of gp on (a, R] and clamps it to
// [a, min(b, R)]. gp is positive at a and negative at R by the paper's
// analysis; if rounding spoils the bracket we fall back to direct search.
func (p *Preemptible) stationaryPoint(gp func(float64) float64, method string) float64 {
	lo, hi := p.a, p.R
	if !(gp(lo) > 0 && gp(hi) < 0) {
		// Degenerate bracket (extremely narrow laws): fall back.
		return p.optimalNumeric().X
	}
	c, err := optimize.Brent(gp, lo, hi, 1e-13)
	if err != nil {
		return p.optimalNumeric().X
	}
	x := math.Min(math.Min(c, p.b), p.R)
	if x < p.a {
		x = p.a
	}
	return x
}

// optimalNumeric maximizes E(W(X)) over [a, min(b, R)] without any
// structural assumption beyond continuity: coarse grid + golden-section
// refinement. It is the path taken for empirical, Weibull, Gamma or any
// other checkpoint law the paper does not treat in closed form.
func (p *Preemptible) optimalNumeric() Solution {
	hi := math.Min(p.b, p.R)
	r := optimize.MaxGridRefine(p.ExpectedWork, p.a, hi, 257, 1e-12)
	return Solution{
		X:            r.X,
		ExpectedWork: r.F,
		Method:       "numeric",
		Interior:     r.X < p.b,
	}
}

// Pessimistic returns the risk-free solution the paper compares against:
// always plan for the worst checkpoint duration, X = b (capped at R).
// Its expected work is E(W(b)) = R - b, since C <= b almost surely.
func (p *Preemptible) Pessimistic() Solution {
	x := math.Min(p.b, p.R)
	return Solution{
		X:            x,
		ExpectedWork: p.ExpectedWork(x),
		Method:       "pessimistic",
		Interior:     false,
	}
}

// Gain returns the ratio of the optimal expected work to the pessimistic
// expected work — the headline metric of Section 3 (e.g. Figure 1(a),
// where the pessimistic strategy reaches only ~80% of the optimum).
func (p *Preemptible) Gain() float64 {
	opt := p.OptimalX().ExpectedWork
	pes := p.Pessimistic().ExpectedWork
	if pes <= 0 {
		if opt <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return opt / pes
}

// Curve samples E(W(X)) at n+1 evenly spaced points of [a, R], the
// series plotted in Figures 1-4 of the paper.
func (p *Preemptible) Curve(n int) (xs, ys []float64) {
	if n < 1 {
		n = 1
	}
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		x := p.a + (p.R-p.a)*float64(i)/float64(n)
		xs[i] = x
		ys[i] = p.ExpectedWork(x)
	}
	return xs, ys
}

// MisspecificationLoss quantifies the cost of planning with the wrong
// checkpoint law: it returns the fraction of the truly optimal expected
// work that is achieved when X is chosen optimally under `assumed` but
// the world follows `truth` (both problems must share R). A return of 1
// means the misspecification was harmless; 0 means everything is lost.
// This is the metric that justifies the trace-learning loop: it tells
// you how accurate the fitted D_C needs to be.
func MisspecificationLoss(truth, assumed *Preemptible) float64 {
	if truth.R != assumed.R {
		panic(fmt.Sprintf("core: MisspecificationLoss: mismatched reservations %g vs %g", truth.R, assumed.R))
	}
	best := truth.OptimalX().ExpectedWork
	if best <= 0 {
		return 1
	}
	got := truth.ExpectedWork(assumed.OptimalX().X)
	return got / best
}
