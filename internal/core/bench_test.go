package core

import (
	"math"
	"testing"

	"reskit/internal/dist"
)

// Solver micro-benchmarks: the per-call cost of each analysis, which is
// what a scheduler integrating this library would pay online.

func BenchmarkOptimalXUniform(b *testing.B) {
	p := NewPreemptible(10, dist.NewUniform(1, 7.5))
	for i := 0; i < b.N; i++ {
		_ = p.OptimalX()
	}
}

func BenchmarkOptimalXExponentialLambertW(b *testing.B) {
	p := NewPreemptible(10, dist.Truncate(dist.NewExponential(0.5), 1, 5))
	for i := 0; i < b.N; i++ {
		_ = p.OptimalX()
	}
}

func BenchmarkOptimalXNormalStationarity(b *testing.B) {
	p := NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5, 1), 1, 6))
	for i := 0; i < b.N; i++ {
		_ = p.OptimalX()
	}
}

func BenchmarkOptimalXNumericFallback(b *testing.B) {
	p := NewPreemptible(10, dist.Truncate(dist.NewWeibull(1.5, 3), 1, 6))
	for i := 0; i < b.N; i++ {
		_ = p.OptimalX()
	}
}

func BenchmarkStaticOptimizeNormal(b *testing.B) {
	s := NewStatic(30, dist.NewNormal(3, 0.5), paperCkpt(5, 0.4))
	for i := 0; i < b.N; i++ {
		_ = s.Optimize()
	}
}

func BenchmarkStaticOptimizePoisson(b *testing.B) {
	s := NewStaticDiscrete(29, dist.NewPoisson(3), paperCkpt(5, 0.4))
	for i := 0; i < b.N; i++ {
		_ = s.Optimize()
	}
}

func BenchmarkDynamicDecision(b *testing.B) {
	d := NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4))
	for i := 0; i < b.N; i++ {
		_ = d.ShouldCheckpoint(15)
	}
}

func BenchmarkDynamicIntersection(b *testing.B) {
	d := NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4))
	for i := 0; i < b.N; i++ {
		if _, err := d.Intersection(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPSolve2048(b *testing.B) {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkpt(5, 0.4)
	for i := 0; i < b.N; i++ {
		_ = NewDP(29, task, ckpt, 2048).Solve()
	}
}

func BenchmarkHeterogeneousDecision(b *testing.B) {
	h := Homogeneous(29, 20, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4))
	for i := 0; i < b.N; i++ {
		if _, err := h.ShouldCheckpoint(5, 15, 15); err != nil {
			b.Fatal(err)
		}
	}
}
