package core

import (
	"errors"
	"math"
	"testing"

	"reskit/internal/dist"
)

func TestHeterogeneousCollapsesToIIDRule(t *testing.T) {
	// With identical laws on every task, the general rule must agree
	// with the Section 4.3 rule at every state (away from ties).
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkpt(5, 0.4)
	d := NewDynamic(29, task, ckpt)
	h := Homogeneous(29, 50, task, ckpt)

	for _, w := range []float64{3, 9, 15, 18, 20, 21, 24, 27} {
		iid := d.ShouldCheckpointAt(w, w)
		gen, err := h.ShouldCheckpoint(4, w, w) // mid-chain, next task exists
		if err != nil {
			t.Fatal(err)
		}
		if iid != gen {
			ec := h.ExpectedWorkCheckpoint(4, w, w)
			e1 := h.ExpectedWorkContinue(4, w, w)
			if math.Abs(ec-e1) > 1e-6 {
				t.Errorf("w=%g: IID rule %v, general rule %v (EC=%g, E1=%g)", w, iid, gen, ec, e1)
			}
		}
	}
}

func TestHeterogeneousExpectationsMatchDynamic(t *testing.T) {
	task := dist.NewGamma(1, 0.5)
	ckpt := paperCkpt(2, 0.4)
	d := NewDynamic(10, task, ckpt)
	h := Homogeneous(10, 30, task, ckpt)
	for _, w := range []float64{0.5, 2, 5, 8} {
		ec := h.ExpectedWorkCheckpoint(3, w, w)
		if math.Abs(ec-d.ExpectedWorkCheckpoint(w)) > 1e-12 {
			t.Errorf("EC mismatch at w=%g: %g vs %g", w, ec, d.ExpectedWorkCheckpoint(w))
		}
		e1 := h.ExpectedWorkContinue(3, w, w)
		if math.Abs(e1-d.ExpectedWorkContinue(w)) > 1e-9 {
			t.Errorf("E+1 mismatch at w=%g: %g vs %g", w, e1, d.ExpectedWorkContinue(w))
		}
	}
}

func TestHeterogeneousLastTaskAlwaysCheckpoints(t *testing.T) {
	task := dist.NewGamma(1, 0.5)
	ckpt := paperCkpt(2, 0.4)
	h := Homogeneous(10, 3, task, ckpt)
	ok, err := h.ShouldCheckpoint(2, 1.5, 1.5)
	if err != nil || !ok {
		t.Errorf("last task must checkpoint: %v %v", ok, err)
	}
	_, err = h.ShouldCheckpoint(3, 1, 1)
	if !errors.Is(err, ErrChainExhausted) {
		t.Errorf("want ErrChainExhausted, got %v", err)
	}
}

func TestHeterogeneousStageAwareDecision(t *testing.T) {
	// A pipeline whose NEXT task is enormous should checkpoint earlier
	// than one whose next task is small, all else equal.
	ckpt := paperCkpt(2, 0.3)
	small := dist.Truncate(dist.NewNormal(1, 0.2), 0, math.Inf(1))
	big := dist.Truncate(dist.NewNormal(12, 1), 0, math.Inf(1))

	mkChain := func(next dist.Continuous) *Heterogeneous {
		return NewHeterogeneous(20, []TaskSpec{
			{Duration: small, Ckpt: ckpt},
			{Duration: next, Ckpt: ckpt},
			{Duration: small, Ckpt: ckpt},
		})
	}
	w, elapsed := 14.0, 14.0
	ckSmall, err := mkChain(small).ShouldCheckpoint(0, w, elapsed)
	if err != nil {
		t.Fatal(err)
	}
	ckBig, err := mkChain(big).ShouldCheckpoint(0, w, elapsed)
	if err != nil {
		t.Fatal(err)
	}
	if ckSmall {
		t.Errorf("with a small next task and 6 units left, continuing should win")
	}
	if !ckBig {
		t.Errorf("with a 12-unit next task and 6 units left, checkpointing should win")
	}
}

func TestHeterogeneousPerStageCheckpointLaws(t *testing.T) {
	// A stage with a huge checkpoint footprint (slow checkpoint) makes
	// checkpointing there unattractive relative to one more task that
	// leads to a cheap-checkpoint stage.
	taskLaw := dist.Truncate(dist.NewNormal(2, 0.3), 0, math.Inf(1))
	slowCkpt := paperCkpt(7, 0.5)
	fastCkpt := paperCkpt(0.5, 0.1)
	h := NewHeterogeneous(20, []TaskSpec{
		{Duration: taskLaw, Ckpt: slowCkpt},
		{Duration: taskLaw, Ckpt: fastCkpt},
		{Duration: taskLaw, Ckpt: fastCkpt},
	})
	// At the end of task 0 with 13 elapsed: checkpointing now needs ~7
	// units (tight), while one more ~2-unit task leads to a 0.5-unit
	// checkpoint.
	ok, err := h.ShouldCheckpoint(0, 13, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("should prefer continuing toward the cheap checkpoint")
	}
}

func TestStaticHeteroHeuristicUniformChain(t *testing.T) {
	// On an IID chain the heuristic must agree with the exact static
	// solver's n_opt (Fig 5 instance, Normal tasks).
	task := dist.NewNormal(3, 0.5)
	ckpt := paperCkpt(5, 0.4)
	exact := NewStatic(30, task, ckpt).Optimize()
	h := Homogeneous(30, 15, dist.Truncate(task, 0, math.Inf(1)), ckpt)
	n, v := StaticHeteroHeuristic(h)
	if n != exact.NOpt {
		t.Errorf("heuristic n=%d, exact n_opt=%d", n, exact.NOpt)
	}
	if math.Abs(v-exact.ENOpt) > 0.2 {
		t.Errorf("heuristic value %g vs exact %g", v, exact.ENOpt)
	}
}

func TestStaticHeteroHeuristicRampChain(t *testing.T) {
	// Growing task durations: the heuristic should stop before the sum
	// outruns the reservation.
	ckpt := paperCkpt(1, 0.1)
	var specs []TaskSpec
	for i := 0; i < 10; i++ {
		mu := 1.0 + float64(i) // tasks get longer and longer
		specs = append(specs, TaskSpec{
			Duration: dist.Truncate(dist.NewNormal(mu, 0.1), 0, math.Inf(1)),
			Ckpt:     ckpt,
		})
	}
	h := NewHeterogeneous(16, specs)
	n, v := StaticHeteroHeuristic(h)
	// Cumulative means: 1, 3, 6, 10, 15, 21... with ~1 unit checkpoint,
	// n = 4 (sum 10) leaves 6 for the checkpoint; n = 5 (sum 15) leaves
	// only 1 ~ muC, risky. The heuristic should pick 4 or 5.
	if n < 4 || n > 5 {
		t.Errorf("heuristic picked n=%d (value %g)", n, v)
	}
	if v <= 0 {
		t.Errorf("value %g", v)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	task := dist.NewGamma(1, 1)
	ckpt := paperCkpt(1, 0.1)
	cases := []func(){
		func() { NewHeterogeneous(-1, []TaskSpec{{task, ckpt}}) },
		func() { NewHeterogeneous(10, nil) },
		func() { NewHeterogeneous(10, []TaskSpec{{nil, ckpt}}) },
		func() { NewHeterogeneous(10, []TaskSpec{{task, nil}}) },
		func() { NewHeterogeneous(10, []TaskSpec{{dist.NewNormal(0, 1), ckpt}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
