package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"reskit/internal/dist"
	"reskit/internal/quad"
)

func TestDynamicNormalFig8(t *testing.T) {
	// Figure 8: mu=3, sigma=0.5, muC=5, sigmaC=0.4, R=29.
	// Paper: intersection W_int ~ 20.3.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	d := NewDynamic(29, task, paperCkpt(5, 0.4))
	w, err := d.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-20.3) > 0.3 {
		t.Errorf("W_int = %g, paper ~20.3", w)
	}
	// Below the intersection: continue; above: checkpoint.
	if d.ShouldCheckpoint(w - 1) {
		t.Errorf("should continue below W_int")
	}
	if !d.ShouldCheckpoint(w + 1) {
		t.Errorf("should checkpoint above W_int")
	}
}

func TestDynamicGammaFig9(t *testing.T) {
	// Figure 9: k=1, theta=0.5, muC=2, sigmaC=0.4, R=10.
	// Paper: W_int ~ 6.4.
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	w, err := d.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-6.4) > 0.3 {
		t.Errorf("W_int = %g, paper ~6.4", w)
	}
}

func TestDynamicPoissonFig10(t *testing.T) {
	// Figure 10: lambda=3, muC=5, sigmaC=0.4, R=29.
	// Paper: W_int ~ 18.9.
	d := NewDynamicDiscrete(29, dist.NewPoisson(3), paperCkpt(5, 0.4))
	w, err := d.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-18.9) > 0.4 {
		t.Errorf("W_int = %g, paper ~18.9", w)
	}
}

func TestDynamicExpectedWorkCheckpointFormula(t *testing.T) {
	// E(W_C) = W_n * [Phi((R-W_n-muC)/sigmaC) - Phi(-muC/sigmaC)] /
	//                 [1 - Phi(-muC/sigmaC)]  (Section 4.3).
	ckpt := paperCkpt(5, 0.4)
	d := NewDynamic(29, dist.NewGamma(1, 1), ckpt)
	for _, w := range []float64{1, 10, 20, 23.9, 28.9} {
		want := w * ckpt.CDF(29-w)
		if got := d.ExpectedWorkCheckpoint(w); math.Abs(got-want) > 1e-12 {
			t.Errorf("E(W_C)(%g) = %g want %g", w, got, want)
		}
	}
	if d.ExpectedWorkCheckpoint(0) != 0 || d.ExpectedWorkCheckpoint(-1) != 0 {
		t.Errorf("non-positive work must give 0")
	}
	// No time left for even the fastest checkpoint.
	if d.ExpectedWorkCheckpoint(29) != 0 {
		t.Errorf("E(W_C)(R) must be 0")
	}
}

func TestDynamicContinueVanishesAtR(t *testing.T) {
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	if d.ExpectedWorkContinue(10) != 0 || d.ExpectedWorkContinue(11) != 0 {
		t.Errorf("no budget: E(W_+1) must be 0")
	}
	if v := d.ExpectedWorkContinue(0); v <= 0 {
		t.Errorf("E(W_+1)(0) = %g, want > 0", v)
	}
}

func TestDynamicDecisionMonotone(t *testing.T) {
	// Once checkpointing wins it keeps winning for larger W_n (scan).
	d := NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4))
	flipped := false
	for i := 0; i <= 200; i++ {
		w := 29 * float64(i) / 200
		c := d.ShouldCheckpoint(w)
		if flipped && !c && w < 23 {
			// Allow the far-right region where both expectations are ~0;
			// below R - muC the rule must stay monotone.
			t.Fatalf("decision flipped back at w=%g", w)
		}
		if c && w > 1 {
			flipped = true
		}
	}
	if !flipped {
		t.Fatalf("never decided to checkpoint")
	}
}

func TestDynamicNoIntersection(t *testing.T) {
	// A reservation so short that no task ever fits: with W_n near 0 the
	// checkpoint expectation always dominates, so no sign change from
	// negative to positive exists.
	d := NewDynamic(1.0, dist.Truncate(dist.NewNormal(5, 0.5), 0, math.Inf(1)),
		paperCkpt(0.2, 0.05))
	_, err := d.Intersection()
	if !errors.Is(err, ErrNoIntersection) {
		t.Errorf("want ErrNoIntersection, got %v", err)
	}
}

func TestDynamicCurves(t *testing.T) {
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	ws, ck, cont := d.Curves(50)
	if len(ws) != 51 || len(ck) != 51 || len(cont) != 51 {
		t.Fatalf("curve sizes")
	}
	if ws[0] != 0 || ws[50] != 10 {
		t.Errorf("w range [%g, %g]", ws[0], ws[50])
	}
	// The two curves cross near the analytical intersection.
	wInt, err := d.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	var crossed float64 = -1
	for i := 1; i < len(ws); i++ {
		if ck[i-1] < cont[i-1] && ck[i] >= cont[i] {
			crossed = ws[i]
			break
		}
	}
	if crossed < 0 || math.Abs(crossed-wInt) > 0.5 {
		t.Errorf("curve crossing %g vs Intersection %g", crossed, wInt)
	}
}

func TestDynamicConstructorValidation(t *testing.T) {
	ckpt := paperCkpt(5, 0.4)
	cases := []func(){
		func() { NewDynamic(-1, dist.NewGamma(1, 1), ckpt) },
		func() { NewDynamic(10, nil, ckpt) },
		func() { NewDynamic(10, dist.NewGamma(1, 1), nil) },
		func() { NewDynamic(10, dist.NewNormal(3, 0.5), ckpt) }, // task support < 0
		func() { NewDynamicDiscrete(10, nil, ckpt) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCoefficientTableMatchesExactRule(t *testing.T) {
	// The table-interpolated decision must agree with the exact
	// expectation comparison everywhere except within tolerance of the
	// indifference line (where both options have equal value anyway).
	cases := []*Dynamic{
		NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4)),
		NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4)),
		NewDynamicDiscrete(29, dist.NewPoisson(3), paperCkpt(5, 0.4)),
	}
	for _, d := range cases {
		for i := 1; i < 40; i++ {
			elapsed := d.R * float64(i) / 41
			for j := 1; j < 20; j++ {
				work := elapsed * float64(j) / 20
				budget := d.R - elapsed
				ecExact := work * d.ckptProb(budget)
				e1Exact := d.expectedContinue(work, budget)
				exact := ecExact >= e1Exact
				fast := d.ShouldCheckpointAt(work, elapsed)
				if fast != exact && math.Abs(ecExact-e1Exact) > 1e-3*(1+e1Exact) {
					t.Fatalf("R=%g: mismatch at work=%.3f elapsed=%.3f (EC=%g E1=%g)",
						d.R, work, elapsed, ecExact, e1Exact)
				}
			}
		}
	}
}

func TestExpectedContinueBatchedMatchesScalarQuadrature(t *testing.T) {
	// The batched kernel must reproduce the scalar integrand it replaced:
	// integrate (x+work)*P(C<=budget-x)*f_X(x) with the plain scalar
	// Kronrod path and compare.
	cases := []*Dynamic{
		NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4)),
		NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4)),
		NewDynamic(12, dist.NewLogNormal(0.5, 0.4), dist.NewExponential(1.5)),
	}
	for _, d := range cases {
		for _, work := range []float64{0, 2, 7} {
			for _, budget := range []float64{0.5, 3, d.R / 2, d.R} {
				scalar := quad.Kronrod(func(x float64) float64 {
					return (x + work) * d.ckptProb(budget-x) * d.Task.PDF(x)
				}, 0, budget, 1e-12, 1e-10).Value
				got := d.expectedContinue(work, budget)
				if math.Abs(got-scalar) > 1e-12*(1+math.Abs(scalar)) {
					t.Errorf("R=%g work=%g budget=%g: batched %g vs scalar %g",
						d.R, work, budget, got, scalar)
				}
			}
		}
	}
}

func TestBuildTableParallelDeterministic(t *testing.T) {
	// Two independently built coefficient tables must be bit-identical:
	// parallel construction writes each grid index exactly once.
	mk := func() *Dynamic {
		return NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4))
	}
	d1, d2 := mk(), mk()
	if err := d1.Prebuild(context.Background()); err != nil {
		t.Fatalf("Prebuild d1: %v", err)
	}
	if err := d2.Prebuild(context.Background()); err != nil {
		t.Fatalf("Prebuild d2: %v", err)
	}
	if len(d1.tableA) != len(d2.tableA) {
		t.Fatalf("table sizes differ")
	}
	for i := range d1.tableA {
		if d1.tableA[i] != d2.tableA[i] || d1.tableB[i] != d2.tableB[i] {
			t.Fatalf("tables differ at %d: A %g vs %g, B %g vs %g",
				i, d1.tableA[i], d2.tableA[i], d1.tableB[i], d2.tableB[i])
		}
	}
}

func TestCurvesParallelDeterministic(t *testing.T) {
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	ws1, ck1, ct1 := d.Curves(64)
	ws2, ck2, ct2 := d.Curves(64)
	for i := range ws1 {
		if ws1[i] != ws2[i] || ck1[i] != ck2[i] || ct1[i] != ct2[i] {
			t.Fatalf("Curves not deterministic at %d", i)
		}
	}
}

func TestCoefficientsLinearity(t *testing.T) {
	// E(W_C)-E(W_+1) must equal work*A - B for the exact coefficients.
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	for _, budget := range []float64{2, 5, 8} {
		a, b := d.exactCoefficients(budget)
		if a < -1e-12 || b < -1e-12 {
			t.Errorf("budget %g: negative coefficients A=%g B=%g", budget, a, b)
		}
		for _, work := range []float64{0.5, 3, 7} {
			lhs := work*d.ckptProb(budget) - d.expectedContinue(work, budget)
			rhs := work*a - b
			if math.Abs(lhs-rhs) > 1e-8*(1+math.Abs(lhs)) {
				t.Errorf("budget %g work %g: %g vs %g", budget, work, lhs, rhs)
			}
		}
	}
}

func TestTableExtractInstallBitIdentical(t *testing.T) {
	// A Dynamic with an installed table must decide exactly like the
	// Dynamic the table was extracted from — this is the contract the
	// advisor service's content-addressed artifacts rely on.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	built := NewDynamic(29, task, paperCkpt(5, 0.4))
	tbl, err := built.Table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.A) != GridSize+1 || len(tbl.B) != GridSize+1 {
		t.Fatalf("table size %dx%d, want %d", len(tbl.A), len(tbl.B), GridSize+1)
	}

	warm := NewDynamic(29, task, paperCkpt(5, 0.4))
	if err := warm.InstallTable(tbl); err != nil {
		t.Fatal(err)
	}
	for i := range warm.tableA {
		if warm.tableA[i] != built.tableA[i] || warm.tableB[i] != built.tableB[i] {
			t.Fatalf("installed table differs at %d", i)
		}
	}
	for work := 0.0; work <= 29; work += 0.37 {
		for elapsed := work; elapsed <= 29; elapsed += 2.9 {
			if got, want := warm.ShouldCheckpointAt(work, elapsed), built.ShouldCheckpointAt(work, elapsed); got != want {
				t.Fatalf("decision at work=%g elapsed=%g: installed %v, built %v", work, elapsed, got, want)
			}
		}
	}
}

func TestTableCopiesAreIsolated(t *testing.T) {
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	tbl, err := d.Table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a0 := d.tableA[7]
	tbl.A[7] = math.Inf(1) // mutating the extract must not leak in
	if d.tableA[7] != a0 {
		t.Fatal("Table returned an aliased slice")
	}
	d2 := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	tbl.A[7] = a0
	if err := d2.InstallTable(tbl); err != nil {
		t.Fatal(err)
	}
	tbl.B[3] = math.NaN() // mutating after install must not leak in
	if math.IsNaN(d2.tableB[3]) {
		t.Fatal("InstallTable aliased the caller's slice")
	}
}

func TestInstallTableRejectsMismatch(t *testing.T) {
	d := NewDynamic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	if err := d.InstallTable(CoeffTable{R: 11, A: make([]float64, GridSize+1), B: make([]float64, GridSize+1)}); err == nil {
		t.Error("wrong R accepted")
	}
	if err := d.InstallTable(CoeffTable{R: 10, A: make([]float64, 3), B: make([]float64, 3)}); err == nil {
		t.Error("truncated grid accepted")
	}
}
