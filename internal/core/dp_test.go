package core

import (
	"math"
	"testing"

	"reskit/internal/dist"
)

func TestDPValueBounds(t *testing.T) {
	// The DP optimum on the Figure 8 instance must dominate both the
	// myopic dynamic rule's threshold policy value and the static value,
	// and stay below the oracle bound R - E[C].
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkpt(5, 0.4)
	sol := NewDP(29, task, ckpt, 4096).Solve()

	static := NewStatic(29, dist.NewNormal(3, 0.5), ckpt).Optimize()
	if sol.Value < static.ENOpt-0.05 {
		t.Errorf("DP value %g below static %g", sol.Value, static.ENOpt)
	}
	oracle := 29 - ckpt.Mean()
	if sol.Value > oracle {
		t.Errorf("DP value %g exceeds oracle bound %g", sol.Value, oracle)
	}
}

func TestDPThresholdNearMyopicIntersection(t *testing.T) {
	// The DP threshold and the paper's W_int should be close (the myopic
	// rule is near-optimal on this instance) but need not coincide.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkpt(5, 0.4)
	dyn := NewDynamic(29, task, ckpt)
	wInt, err := dyn.Intersection()
	if err != nil {
		t.Fatal(err)
	}
	sol := NewDP(29, task, ckpt, 4096).Solve()
	if math.Abs(sol.Threshold-wInt) > 1.5 {
		t.Errorf("DP threshold %g far from W_int %g", sol.Threshold, wInt)
	}
}

func TestDPValueMonotoneDecreasingInW(t *testing.T) {
	// Less time left can never increase the optimal expected saved work
	// beyond the direct w gain: V is not monotone in general, but the
	// continuation region's value must exceed the checkpoint value and V
	// must vanish at w = R.
	task := dist.NewGamma(1, 0.5)
	ckpt := paperCkpt(2, 0.4)
	sol := NewDP(10, task, ckpt, 2048).Solve()
	n := len(sol.V) - 1
	if sol.V[n] != 0 {
		t.Errorf("V(R) = %g", sol.V[n])
	}
	if sol.V[0] <= 0 {
		t.Errorf("V(0) = %g", sol.V[0])
	}
	// Near w = R the value collapses.
	if sol.V[n-1] > 0.5 {
		t.Errorf("V near R too large: %g", sol.V[n-1])
	}
}

func TestDPGridRefinementConverges(t *testing.T) {
	task := dist.NewGamma(1, 0.5)
	ckpt := paperCkpt(2, 0.4)
	coarse := NewDP(10, task, ckpt, 512).Solve()
	fine := NewDP(10, task, ckpt, 4096).Solve()
	if math.Abs(coarse.Value-fine.Value) > 0.05 {
		t.Errorf("grid sensitivity: %g vs %g", coarse.Value, fine.Value)
	}
}

func TestDPThresholdPolicySimulates(t *testing.T) {
	// The DP checkpoint region must be an up-set (threshold structure):
	// once optimal to checkpoint, always optimal for larger w. Allow the
	// trivial exception at w=0.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkpt(5, 0.4)
	sol := NewDP(29, task, ckpt, 2048).Solve()
	flipped := false
	for i := 1; i < len(sol.CkptBest); i++ {
		if sol.CkptBest[i] {
			flipped = true
		} else if flipped && sol.Grid[i] < 28 {
			t.Fatalf("checkpoint region not an up-set at w=%g", sol.Grid[i])
		}
	}
	if !flipped {
		t.Fatalf("DP never checkpoints")
	}
}

func TestDPValidation(t *testing.T) {
	task := dist.NewGamma(1, 1)
	ckpt := paperCkpt(1, 0.1)
	cases := []func(){
		func() { NewDP(-1, task, ckpt, 100) },
		func() { NewDP(10, nil, ckpt, 100) },
		func() { NewDP(10, task, nil, 100) },
		func() { NewDP(10, dist.NewNormal(0, 1), ckpt, 100) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	// Tiny steps get clamped to a sane default.
	sol := NewDP(10, task, ckpt, 1).Solve()
	if len(sol.Grid) < 17 {
		t.Errorf("steps clamp failed: %d", len(sol.Grid))
	}
}
