package core

import (
	"math"
	"testing"

	"reskit/internal/dist"
)

// paperCkpt returns the paper's canonical checkpoint law: a Normal
// truncated to [0, inf).
func paperCkpt(mu, sigma float64) dist.Continuous {
	return dist.Truncate(dist.NewNormal(mu, sigma), 0, math.Inf(1))
}

func TestStaticNormalFig5(t *testing.T) {
	// Figure 5: mu=3, sigma=0.5, muC=5, sigmaC=0.4, R=30.
	// Paper: y_opt ~ 7.4, f(7) ~ 20.9, f(8) ~ 17.6, n_opt = 7.
	s := NewStatic(30, dist.NewNormal(3, 0.5), paperCkpt(5, 0.4))
	f7 := s.ExpectedWork(7)
	f8 := s.ExpectedWork(8)
	if math.Abs(f7-20.9) > 0.3 {
		t.Errorf("f(7) = %g, paper ~20.9", f7)
	}
	if math.Abs(f8-17.6) > 0.3 {
		t.Errorf("f(8) = %g, paper ~17.6", f8)
	}
	sol := s.Optimize()
	if math.Abs(sol.YOpt-7.4) > 0.2 {
		t.Errorf("y_opt = %g, paper ~7.4", sol.YOpt)
	}
	if sol.NOpt != 7 {
		t.Errorf("n_opt = %d, paper 7", sol.NOpt)
	}
	if math.Abs(sol.ENOpt-f7) > 1e-9 {
		t.Errorf("E(n_opt) = %g vs f(7) = %g", sol.ENOpt, f7)
	}
}

func TestStaticGammaFig6(t *testing.T) {
	// Figure 6: k=1, theta=0.5, muC=2, sigmaC=0.4, R=10.
	// Paper: y_opt ~ 11.8, g(11) ~ 4.77, g(12) ~ 4.82, n_opt = 12.
	s := NewStatic(10, dist.NewGamma(1, 0.5), paperCkpt(2, 0.4))
	g11 := s.ExpectedWork(11)
	g12 := s.ExpectedWork(12)
	if math.Abs(g11-4.77) > 0.1 {
		t.Errorf("g(11) = %g, paper ~4.77", g11)
	}
	if math.Abs(g12-4.82) > 0.1 {
		t.Errorf("g(12) = %g, paper ~4.82", g12)
	}
	if g12 <= g11 {
		t.Errorf("paper has g(12) > g(11): got %g <= %g", g12, g11)
	}
	sol := s.Optimize()
	if math.Abs(sol.YOpt-11.8) > 0.3 {
		t.Errorf("y_opt = %g, paper ~11.8", sol.YOpt)
	}
	if sol.NOpt != 12 {
		t.Errorf("n_opt = %d, paper 12", sol.NOpt)
	}
}

func TestStaticPoissonFig7(t *testing.T) {
	// Figure 7: lambda=3, muC=5, sigmaC=0.4, R=29.
	// Paper: y_opt ~ 5.98, h(5) ~ 14.6, h(6) ~ 15.8, n_opt = 6.
	s := NewStaticDiscrete(29, dist.NewPoisson(3), paperCkpt(5, 0.4))
	h5 := s.ExpectedWork(5)
	h6 := s.ExpectedWork(6)
	if math.Abs(h5-14.6) > 0.3 {
		t.Errorf("h(5) = %g, paper ~14.6", h5)
	}
	if math.Abs(h6-15.8) > 0.3 {
		t.Errorf("h(6) = %g, paper ~15.8", h6)
	}
	sol := s.Optimize()
	if math.Abs(sol.YOpt-5.98) > 0.2 {
		t.Errorf("y_opt = %g, paper ~5.98", sol.YOpt)
	}
	if sol.NOpt != 6 {
		t.Errorf("n_opt = %d, paper 6", sol.NOpt)
	}
}

func TestStaticExpectedWorkVanishes(t *testing.T) {
	s := NewStatic(30, dist.NewNormal(3, 0.5), paperCkpt(5, 0.4))
	if s.ExpectedWork(0) != 0 || s.ExpectedWork(-1) != 0 {
		t.Errorf("non-positive y must give 0")
	}
	// Far too many tasks: the sum exceeds R almost surely.
	if v := s.ExpectedWork(50); v > 1e-6 {
		t.Errorf("E(50) = %g, want ~0", v)
	}
}

func TestStaticGammaEquivalentToExponentialSum(t *testing.T) {
	// Gamma(1, theta) tasks are Exponential(1/theta) tasks; using the
	// Exponential law through its SumIID must give identical E(y).
	ckpt := paperCkpt(2, 0.4)
	sGamma := NewStatic(10, dist.NewGamma(1, 0.5), ckpt)
	sExp := NewStatic(10, dist.NewExponential(2), ckpt)
	for _, y := range []float64{1, 3.5, 7, 11.8, 20} {
		a, b := sGamma.ExpectedWork(y), sExp.ExpectedWork(y)
		if math.Abs(a-b) > 1e-8*(1+math.Abs(a)) {
			t.Errorf("y=%g: Gamma %g vs Exponential %g", y, a, b)
		}
	}
}

func TestStaticCurve(t *testing.T) {
	s := NewStatic(30, dist.NewNormal(3, 0.5), paperCkpt(5, 0.4))
	ys, vals := s.Curve(12, 60)
	if len(ys) != 61 || len(vals) != 61 {
		t.Fatalf("curve size")
	}
	best, bestY := -1.0, 0.0
	for i, v := range vals {
		if v > best {
			best, bestY = v, ys[i]
		}
	}
	if math.Abs(bestY-7.4) > 0.5 {
		t.Errorf("curve max at y=%g, want ~7.4", bestY)
	}
}

func TestStaticDeterministicTasksMatchPreemptibleIntuition(t *testing.T) {
	// With deterministic task durations d and a tight checkpoint law,
	// n_opt = floor((R - muC)/d): 6 tasks = 18 units leave 2 units, which
	// fit a ~1.5-unit checkpoint almost surely; 7 tasks exceed R.
	ckpt := paperCkpt(1.5, 0.05)
	s := NewStatic(20, dist.NewDeterministic(3), ckpt)
	sol := s.Optimize()
	if sol.NOpt != 6 {
		t.Errorf("n_opt = %d, want 6", sol.NOpt)
	}
	if math.Abs(sol.ENOpt-18) > 1e-6 {
		t.Errorf("E(6) = %g, want ~18", sol.ENOpt)
	}
}

func TestStaticConstructorValidation(t *testing.T) {
	ckpt := paperCkpt(5, 0.4)
	cases := []func(){
		func() { NewStatic(-1, dist.NewNormal(3, 0.5), ckpt) },
		func() { NewStatic(10, nil, ckpt) },
		func() { NewStatic(10, dist.NewNormal(3, 0.5), nil) },
		func() { NewStaticDiscrete(10, nil, ckpt) },
		func() { NewStatic(10, dist.NewNormal(3, 0.5), dist.NewNormal(5, 0.4)) }, // ckpt support < 0
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
