package core

import (
	"runtime"
	"sync"
)

// parallelFor runs body(i) for every i in [lo, hi], striped across
// runtime.GOMAXPROCS(0) goroutines, and waits for completion. Iterations
// must be independent; each index is executed exactly once, so results
// written by index are deterministic regardless of the worker count.
func parallelFor(lo, hi int, body func(i int)) {
	n := hi - lo + 1
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := lo; i <= hi; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := lo + w; i <= hi; i += workers {
				body(i)
			}
		}(w)
	}
	wg.Wait()
}
