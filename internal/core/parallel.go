package core

import (
	"context"
	"runtime"
	"sync"
)

// parallelFor runs body(i) for every i in [lo, hi], striped across
// runtime.GOMAXPROCS(0) goroutines, and waits for completion. Iterations
// must be independent; each index is executed exactly once, so results
// written by index are deterministic regardless of the worker count.
func parallelFor(lo, hi int, body func(i int)) {
	parallelForCtx(context.Background(), lo, hi, body) //nolint:errcheck // background ctx never cancels
}

// parallelForCtx is parallelFor with cooperative cancellation: once ctx
// is done, workers finish their current iteration and skip the rest, and
// the ctx error is returned. Indices that did run were each executed
// exactly once, so the caller can safely discard or retry the partial
// result. A background context compiles to the zero-overhead fast path
// (Done() is nil).
func parallelForCtx(ctx context.Context, lo, hi int, body func(i int)) error {
	n := hi - lo + 1
	if n <= 0 {
		return ctx.Err()
	}
	done := ctx.Done()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := lo; i <= hi; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			body(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := lo + w; i <= hi; i += workers {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				body(i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
