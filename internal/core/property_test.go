package core

import (
	"math"
	"testing"
	"testing/quick"

	"reskit/internal/dist"
)

// TestGainNeverBelowOneProperty: the optimal policy can always fall back
// to X=b, so E(W(X_opt)) >= E(W(b)) on every instance.
func TestGainNeverBelowOneProperty(t *testing.T) {
	prop := func(uMu, uSigma, uA, uB, uR float64) bool {
		mu := 1 + math.Abs(math.Mod(uMu, 8))
		sigma := 0.1 + math.Abs(math.Mod(uSigma, 3))
		a := 0.5 + math.Abs(math.Mod(uA, 2))
		b := a + 0.5 + math.Abs(math.Mod(uB, 6))
		r := b + 0.1 + math.Abs(math.Mod(uR, 15))
		p := NewPreemptible(r, dist.Truncate(dist.NewNormal(mu, sigma), a, b))
		return p.Gain() >= 1-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestUniformXOptMonotoneInRProperty: for the Uniform law the optimal
// lead time min((R+a)/2, b) never decreases as the reservation grows.
func TestUniformXOptMonotoneInRProperty(t *testing.T) {
	prop := func(uA, uB, uR1, uR2 float64) bool {
		a := 0.5 + math.Abs(math.Mod(uA, 3))
		b := a + 0.5 + math.Abs(math.Mod(uB, 6))
		r1 := a + 0.1 + math.Abs(math.Mod(uR1, 20))
		r2 := r1 + math.Abs(math.Mod(uR2, 20))
		x1 := NewPreemptible(r1, dist.NewUniform(a, b)).OptimalX().X
		x2 := NewPreemptible(r2, dist.NewUniform(a, b)).OptimalX().X
		return x2 >= x1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestExpectedWorkBoundedProperty: 0 <= E(W(X)) <= R - a everywhere.
func TestExpectedWorkBoundedProperty(t *testing.T) {
	p := NewPreemptible(12, dist.Truncate(dist.NewLogNormal(0.8, 0.6), 1, 7))
	prop := func(uX float64) bool {
		x := math.Abs(math.Mod(uX, 15))
		v := p.ExpectedWork(x)
		return v >= 0 && v <= 12-1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestExpectedWorkMatchesDefinitionProperty: E(W(X)) = P(C<=X)*(R-X) on
// [a, b] for every law, straight from the definition.
func TestExpectedWorkMatchesDefinitionProperty(t *testing.T) {
	laws := []dist.Continuous{
		dist.NewUniform(1, 6),
		dist.Truncate(dist.NewExponential(0.4), 1, 6),
		dist.Truncate(dist.NewWeibull(1.3, 3), 1, 6),
		dist.Truncate(dist.NewGamma(2, 1.5), 1, 6),
	}
	for _, c := range laws {
		p := NewPreemptible(11, c)
		prop := func(uX float64) bool {
			x := 1 + math.Abs(math.Mod(uX, 5)) // in [1, 6]
			want := c.CDF(x) * (11 - x)
			return math.Abs(p.ExpectedWork(x)-want) <= 1e-12*(1+want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// TestStaticOptimizeBeatsNeighborsProperty: n_opt beats n_opt±1 (allow
// ties within solver tolerance) on randomized Gamma instances.
func TestStaticOptimizeBeatsNeighborsProperty(t *testing.T) {
	prop := func(uK, uTheta, uR float64) bool {
		k := 0.5 + math.Abs(math.Mod(uK, 3))
		theta := 0.2 + math.Abs(math.Mod(uTheta, 1.5))
		r := 6 + math.Abs(math.Mod(uR, 25))
		s := NewStatic(r, dist.NewGamma(k, theta), paperCkpt(2, 0.4))
		sol := s.Optimize()
		en := sol.ENOpt
		lo := s.ExpectedWork(float64(sol.NOpt - 1))
		hi := s.ExpectedWork(float64(sol.NOpt + 1))
		return en >= lo-1e-6 && en >= hi-1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicCheckpointMoreLikelyWhenLessTimeProperty: with the same
// uncommitted work, a later clock (less budget) can only push the
// decision toward checkpointing.
func TestDynamicCheckpointMoreLikelyWhenLessTimeProperty(t *testing.T) {
	d := NewDynamic(29, dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)), paperCkpt(5, 0.4))
	prop := func(uW, uE1, uE2 float64) bool {
		w := 1 + math.Abs(math.Mod(uW, 20))
		e1 := w + math.Abs(math.Mod(uE1, 8))
		e2 := e1 + math.Abs(math.Mod(uE2, 8))
		// If we'd checkpoint with MORE time (e1), we must also
		// checkpoint with less (e2).
		if d.ShouldCheckpointAt(w, e1) && !d.ShouldCheckpointAt(w, e2) {
			// Tolerate knife-edge numerical ties.
			budget := 29 - e2
			ec := w * d.ckptProb(budget)
			e1v := d.expectedContinue(w, budget)
			return math.Abs(ec-e1v) < 1e-9
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectionInsideReservationProperty: W_int, when it exists, lies
// strictly inside (0, R).
func TestIntersectionInsideReservationProperty(t *testing.T) {
	prop := func(uMuC, uR float64) bool {
		muC := 0.5 + math.Abs(math.Mod(uMuC, 4))
		r := muC + 5 + math.Abs(math.Mod(uR, 25))
		d := NewDynamic(r, dist.NewGamma(1.5, 1), paperCkpt(muC, 0.3))
		w, err := d.Intersection()
		if err != nil {
			return true // no crossing is legitimate for extreme setups
		}
		return w > 0 && w < r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
