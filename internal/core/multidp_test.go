package core

import (
	"math"
	"testing"

	"reskit/internal/dist"
)

func TestMultiDPDominatesSingleCheckpointDP(t *testing.T) {
	// Allowing repeated commits can only help: V_multi(0,0) >= V_single.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := paperCkpt(5, 0.4)
	single := NewDP(29, task, ckpt, 2048).Solve().Value
	multi := NewMultiDP(29, task, ckpt, 512).Solve().Value
	if multi < single-0.1 {
		t.Errorf("multi-checkpoint %g below single-checkpoint %g", multi, single)
	}
	// With a 5-unit checkpoint and R=29, a second commit rarely pays; the
	// two should be close.
	if multi > single+2 {
		t.Errorf("multi %g implausibly above single %g for expensive checkpoints", multi, single)
	}
}

func TestMultiDPCheapCheckpointsCommitMore(t *testing.T) {
	// Intermediate commits are insurance against a single task
	// overshooting the commit window. With low-variance tasks the
	// end-only plan is already nearly riskless (gap ~0.1); with
	// heavy-tailed (Exponential) tasks and cheap checkpoints the
	// multi-checkpoint optimum clearly pulls ahead.
	cheap := paperCkpt(1, 0.15)

	lowVar := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	singleLow := NewDP(60, lowVar, cheap, 2048).Solve().Value
	multiLow := NewMultiDP(60, lowVar, cheap, 512).Solve().Value
	if multiLow < singleLow-0.1 || multiLow > singleLow+1 {
		t.Errorf("low variance: multi %g should be within [single, single+1] of %g", multiLow, singleLow)
	}

	heavy := dist.NewGamma(1, 3)
	singleHeavy := NewDP(60, heavy, cheap, 2048).Solve().Value
	multiHeavy := NewMultiDP(60, heavy, cheap, 512).Solve().Value
	if multiHeavy <= singleHeavy+2 {
		t.Errorf("heavy tails: multi %g should clearly beat single %g", multiHeavy, singleHeavy)
	}
	if multiHeavy > 60 {
		t.Errorf("multi %g exceeds the reservation", multiHeavy)
	}
}

func TestMultiDPGridConvergence(t *testing.T) {
	task := dist.NewGamma(1, 0.5)
	ckpt := paperCkpt(2, 0.4)
	coarse := NewMultiDP(10, task, ckpt, 128).Solve().Value
	fine := NewMultiDP(10, task, ckpt, 384).Solve().Value
	if math.Abs(coarse-fine) > 0.15*(1+fine) {
		t.Errorf("grid sensitivity: %g vs %g", coarse, fine)
	}
}

func TestMultiDPUpperBoundsSimulatedContinuation(t *testing.T) {
	// The DP optimum must dominate what the dynamic policy achieves in
	// the §4.4 ContinueExecution mode. (Checked against the recorded
	// simulation value of BenchmarkAfterCheckpoint: cont_saved ~ 55.4 for
	// R=60 with N(2,0.3)+ checkpoints and N(3,0.5)+ tasks.)
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(2, 0.3), 0, math.Inf(1))
	multi := NewMultiDP(60, task, ckpt, 512).Solve().Value
	if multi < 55.0 {
		t.Errorf("multi-checkpoint optimum %g below the simulated heuristic ~55.4", multi)
	}
	if multi > 60 {
		t.Errorf("optimum %g exceeds R", multi)
	}
}

func TestMultiDPValidation(t *testing.T) {
	task := dist.NewGamma(1, 1)
	ckpt := paperCkpt(1, 0.1)
	cases := []func(){
		func() { NewMultiDP(-1, task, ckpt, 128) },
		func() { NewMultiDP(10, nil, ckpt, 128) },
		func() { NewMultiDP(10, task, nil, 128) },
		func() { NewMultiDP(10, dist.NewNormal(0, 1), ckpt, 128) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	if sol := NewMultiDP(10, task, ckpt, 1).Solve(); sol.Steps < 16 {
		t.Errorf("steps clamp failed: %d", sol.Steps)
	}
}
