package core

import (
	"errors"
	"math"

	"reskit/internal/dist"
	"reskit/internal/quad"
)

// ErrChainExhausted is returned when a decision is requested past the end
// of a finite heterogeneous chain.
var ErrChainExhausted = errors.New("core: no tasks left in the heterogeneous chain")

// TaskSpec describes one task of the general instance of Section 4.1: a
// task-duration law D_X^(i) and the checkpoint-duration law D_C^(i) that
// applies to a checkpoint taken at this task's end.
type TaskSpec struct {
	Duration dist.Continuous // D_X^(i), support within [0, inf)
	Ckpt     dist.Continuous // D_C^(i), support within [0, inf)
}

// Heterogeneous is the general instance the paper's conclusion sketches:
// a finite chain T_1 -> T_2 -> ... -> T_m where every task has its own
// independent duration and checkpoint laws. The dynamic rule of Section
// 4.3 carries over unchanged — the only requirement is independence —
// by comparing, at the end of task i,
//
//	E(W_C)  = W * P(C_i <= R - elapsed)
//	E(W_+1) = Integral_0^{R-elapsed} (x + W) P(C_{i+1} <= R - elapsed - x) f_{X_{i+1}}(x) dx
//
// (at the end of the chain only the checkpoint branch remains).
type Heterogeneous struct {
	R     float64
	Tasks []TaskSpec
}

// NewHeterogeneous builds the general instance. Every task needs both
// laws, with nonnegative supports.
func NewHeterogeneous(r float64, tasks []TaskSpec) *Heterogeneous {
	h, err := TryNewHeterogeneous(r, tasks)
	if err != nil {
		panic(err.Error())
	}
	return h
}

// Len returns the number of tasks in the chain.
func (h *Heterogeneous) Len() int { return len(h.Tasks) }

// ckptProbAt returns P(C_i <= w) for the checkpoint after task i
// (0-based), zero for w <= 0.
func (h *Heterogeneous) ckptProbAt(i int, w float64) float64 {
	if w <= 0 {
		return 0
	}
	return h.Tasks[i].Ckpt.CDF(w)
}

// ExpectedWorkCheckpoint returns E(W_C) when checkpointing right after
// task i (0-based) with accumulated work `work` and elapsed time
// `elapsed`.
func (h *Heterogeneous) ExpectedWorkCheckpoint(i int, work, elapsed float64) float64 {
	if i < 0 || i >= len(h.Tasks) || work <= 0 {
		return 0
	}
	return work * h.ckptProbAt(i, h.R-elapsed)
}

// ExpectedWorkContinue returns E(W_+1) when running task i+1 before
// checkpointing at its end, from the state right after task i.
// It returns 0 when no task i+1 exists.
func (h *Heterogeneous) ExpectedWorkContinue(i int, work, elapsed float64) float64 {
	next := i + 1
	if next >= len(h.Tasks) {
		return 0
	}
	budget := h.R - elapsed
	if budget <= 0 {
		return 0
	}
	spec := h.Tasks[next]
	integrand := func(x float64) float64 {
		return (x + work) * h.ckptProbAt(next, budget-x) * spec.Duration.PDF(x)
	}
	return quad.Kronrod(integrand, 0, budget, 1e-12, 1e-10).Value
}

// ShouldCheckpoint applies the dynamic rule at the end of task i
// (0-based): checkpoint iff E(W_C) >= E(W_+1). It returns
// ErrChainExhausted past the end of the chain; at the last task it
// always answers true (there is nothing left to run).
func (h *Heterogeneous) ShouldCheckpoint(i int, work, elapsed float64) (bool, error) {
	if i < 0 || i >= len(h.Tasks) {
		return false, ErrChainExhausted
	}
	if i == len(h.Tasks)-1 {
		return true, nil
	}
	ec := h.ExpectedWorkCheckpoint(i, work, elapsed)
	return ec >= h.ExpectedWorkContinue(i, work, elapsed), nil
}

// Homogeneous converts an IID instance into the heterogeneous form with
// m identical tasks — useful for testing that the general rule collapses
// to the Section 4.3 rule.
func Homogeneous(r float64, m int, task, ckpt dist.Continuous) *Heterogeneous {
	specs := make([]TaskSpec, m)
	for i := range specs {
		specs[i] = TaskSpec{Duration: task, Ckpt: ckpt}
	}
	return NewHeterogeneous(r, specs)
}

// StaticHeteroHeuristic approximates the static problem for the general
// instance — which the paper's conclusion says is out of reach exactly —
// with a moment-matching heuristic: the partial sum S_n of independent
// (but not identically distributed) task durations is approximated by a
// Normal law with the summed means and variances (Lyapunov CLT), and
// Equation (3) is evaluated under that approximation for every feasible
// n. It returns the n (1-based count of tasks to run before the first
// checkpoint) maximizing the approximate expected saved work, along with
// that value.
func StaticHeteroHeuristic(h *Heterogeneous) (nOpt int, expWork float64) {
	var mean, varSum float64
	best, bestN := 0.0, 1
	for n := 1; n <= len(h.Tasks); n++ {
		spec := h.Tasks[n-1]
		mean += spec.Duration.Mean()
		varSum += spec.Duration.Variance()
		v := staticHeteroValue(h, n, mean, varSum)
		if v > best {
			best, bestN = v, n
		}
	}
	return bestN, best
}

// staticHeteroValue evaluates the Equation (3) analogue for checkpoint
// law D_C^(n) under the Normal approximation of S_n.
func staticHeteroValue(h *Heterogeneous, n int, mean, varSum float64) float64 {
	sd := math.Sqrt(varSum)
	ck := func(w float64) float64 { return h.ckptProbAt(n-1, w) }
	if sd == 0 {
		// Deterministic partial sum.
		return mean * ck(h.R-mean)
	}
	sn := dist.NewNormal(mean, sd)
	lo := sn.Quantile(1e-12)
	hi := math.Min(h.R, sn.Quantile(1-1e-12))
	if lo >= hi {
		return 0
	}
	integrand := func(x float64) float64 {
		return x * ck(h.R-x) * sn.PDF(x)
	}
	return quad.Kronrod(integrand, lo, hi, 1e-11, 1e-9).Value
}
