// Package plot renders the figure series produced by internal/figures as
// standalone SVG files, terminal ASCII charts and CSV tables, using only
// the standard library. It intentionally implements just what the
// paper's figures need: multi-series line plots with axes, tick labels,
// a legend and vertical marker lines (for X_opt and W_int annotations).
package plot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// VLine is a vertical marker (e.g. the optimal checkpoint instant).
type VLine struct {
	X     float64
	Label string
}

// Plot is a multi-series line chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	VLines []VLine
}

// palette holds the stroke colors assigned to series in order.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// bounds returns the data range over all series and markers.
func (p *Plot) bounds() (xMin, xMax, yMin, yMax float64, ok bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	for _, v := range p.VLines {
		xMin = math.Min(xMin, v.X)
		xMax = math.Max(xMax, v.X)
	}
	if xMin > xMax || yMin > yMax {
		return 0, 0, 0, 0, false
	}
	if xMin == xMax {
		xMin, xMax = xMin-1, xMax+1
	}
	if yMin == yMax {
		yMin, yMax = yMin-1, yMax+1
	}
	return xMin, xMax, yMin, yMax, true
}

// SVG writes the chart as a standalone SVG document.
func (p *Plot) SVG(w io.Writer, width, height int) error {
	if width < 160 {
		width = 640
	}
	if height < 120 {
		height = 420
	}
	xMin, xMax, yMin, yMax, ok := p.bounds()
	if !ok {
		return fmt.Errorf("plot: no data to render")
	}
	// Pad the y range slightly so curves do not hug the frame.
	pad := 0.05 * (yMax - yMin)
	yMin -= pad
	yMax += pad

	const marginL, marginR, marginT, marginB = 62, 16, 34, 46
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return float64(marginL) + plotW*(x-xMin)/(xMax-xMin) }
	py := func(y float64) float64 { return float64(marginT) + plotH*(1-(y-yMin)/(yMax-yMin)) }

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(bw, `<text x="%d" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, escape(p.Title))

	// Frame.
	fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// Ticks: 6 on each axis.
	for i := 0; i <= 5; i++ {
		x := xMin + (xMax-xMin)*float64(i)/5
		y := yMin + (yMax-yMin)*float64(i)/5
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n",
			px(x), float64(marginT)+plotH, px(x), float64(marginT)+plotH+4)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(x), float64(marginT)+plotH+16, fmtTick(x))
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%d" y2="%.1f" stroke="#444"/>`+"\n",
			float64(marginL)-4, py(y), marginL, py(y))
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-7, py(y)+3, fmtTick(y))
	}
	// Axis labels.
	fmt.Fprintf(bw, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-8, escape(p.XLabel))
	fmt.Fprintf(bw, `<text x="14" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), escape(p.YLabel))

	// Vertical markers.
	for _, v := range p.VLines {
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
			px(v.X), marginT, px(v.X), float64(marginT)+plotH)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#666">%s</text>`+"\n",
			px(v.X)+3, float64(marginT)+12, escape(v.Label))
	}

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		var sb strings.Builder
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.2f,%.2f", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(bw, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n", sb.String(), color)
		// Legend row.
		ly := marginT + 14 + 16*si
		fmt.Fprintf(bw, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+8, ly, marginL+30, ly, color)
		fmt.Fprintf(bw, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+36, ly+4, escape(s.Name))
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// ASCII renders the chart as a text grid (width x height characters).
func (p *Plot) ASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 72
	}
	if height < 6 {
		height = 20
	}
	xMin, xMax, yMin, yMax, ok := p.bounds()
	if !ok {
		return fmt.Errorf("plot: no data to render")
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte("*o+x#@")
	for si, s := range p.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int(float64(width-1) * (s.X[i] - xMin) / (xMax - xMin))
			cy := height - 1 - int(float64(height-1)*(s.Y[i]-yMin)/(yMax-yMin))
			if cx >= 0 && cx < width && cy >= 0 && cy < height {
				grid[cy][cx] = mark
			}
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", p.Title)
	for _, row := range grid {
		fmt.Fprintf(bw, "|%s|\n", string(row))
	}
	fmt.Fprintf(bw, "x: [%s, %s] %s | y: [%s, %s] %s\n",
		fmtTick(xMin), fmtTick(xMax), p.XLabel, fmtTick(yMin), fmtTick(yMax), p.YLabel)
	for si, s := range p.Series {
		fmt.Fprintf(bw, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return bw.Flush()
}

// CSV writes the series as columns x,<series1>,<series2>,... assuming all
// series share the x grid of the first; series on different grids are
// emitted as separate blocks.
func (p *Plot) CSV(w io.Writer) error {
	if len(p.Series) == 0 {
		return fmt.Errorf("plot: no data to render")
	}
	bw := bufio.NewWriter(w)
	shared := true
	first := p.Series[0]
	for _, s := range p.Series[1:] {
		if len(s.X) != len(first.X) {
			shared = false
			break
		}
		for i := range s.X {
			if s.X[i] != first.X[i] {
				shared = false
				break
			}
		}
	}
	if shared {
		fmt.Fprintf(bw, "x")
		for _, s := range p.Series {
			fmt.Fprintf(bw, ",%s", csvName(s.Name))
		}
		fmt.Fprintln(bw)
		for i := range first.X {
			fmt.Fprintf(bw, "%.10g", first.X[i])
			for _, s := range p.Series {
				fmt.Fprintf(bw, ",%.10g", s.Y[i])
			}
			fmt.Fprintln(bw)
		}
	} else {
		for _, s := range p.Series {
			fmt.Fprintf(bw, "# series: %s\nx,y\n", s.Name)
			for i := range s.X {
				fmt.Fprintf(bw, "%.10g,%.10g\n", s.X[i], s.Y[i])
			}
		}
	}
	return bw.Flush()
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// csvName strips commas from series names for CSV headers.
func csvName(s string) string { return strings.ReplaceAll(s, ",", ";") }

// fmtTick formats an axis tick compactly.
func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a != 0 && (a < 0.01 || a >= 1e5):
		return fmt.Sprintf("%.2g", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
