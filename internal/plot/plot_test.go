package plot

import (
	"bytes"
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:  "test <plot>",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "quadratic", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 4, 9}},
		},
		VLines: []VLine{{X: 1.5, Label: "marker"}},
	}
}

func TestSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := samplePlot().SVG(&buf, 640, 420); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "test &lt;plot&gt;", "marker",
		"linear", "quadratic", "stroke-dasharray",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(s, "<polyline") != 2 {
		t.Errorf("expected 2 polylines")
	}
}

func TestSVGDefaultsAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := samplePlot().SVG(&buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	empty := &Plot{Title: "empty"}
	if err := empty.SVG(&buf, 640, 420); err == nil {
		t.Errorf("empty plot should error")
	}
}

func TestASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := samplePlot().ASCII(&buf, 60, 15); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("ASCII missing series marks:\n%s", s)
	}
	if !strings.Contains(s, "linear") {
		t.Errorf("ASCII missing legend")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + 15 grid rows + 1 range row + 2 legend rows
	if len(lines) != 19 {
		t.Errorf("line count %d", len(lines))
	}
}

func TestCSVSharedGrid(t *testing.T) {
	var buf bytes.Buffer
	if err := samplePlot().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,linear,quadratic" {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("row count %d", len(lines))
	}
	if lines[3] != "2,2,4" {
		t.Errorf("row %q", lines[3])
	}
}

func TestCSVSeparateGrids(t *testing.T) {
	p := &Plot{
		Series: []Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{5, 6}},
			{Name: "b", X: []float64{0, 0.5, 1}, Y: []float64{1, 2, 3}},
		},
	}
	var buf bytes.Buffer
	if err := p.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "# series:") != 2 {
		t.Errorf("expected two blocks:\n%s", s)
	}
}

func TestDegenerateRanges(t *testing.T) {
	p := &Plot{
		Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{3, 3}}},
	}
	var buf bytes.Buffer
	if err := p.SVG(&buf, 300, 200); err != nil {
		t.Fatal(err) // constant y must not divide by zero
	}
	if err := p.ASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.5:    "0.5",
		123:    "123",
		1e-5:   "1e-05",
		123456: "1.2e+05",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", v, got, want)
		}
	}
}
