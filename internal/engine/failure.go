package engine

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"reskit/internal/rng"
)

// Failure is the engine's failure policy: what happens when a job
// errors or overruns instead of completing. The zero value is the
// historical behavior — no retries, no deadline, first failure cancels
// the run — and costs nothing on the hot path.
type Failure struct {
	// Retries is the per-job retry budget: a job may run up to
	// Retries+1 times before its failure becomes permanent. Transient
	// errors and per-job timeouts are retryable; run cancellation and
	// fabricated context errors are not.
	Retries int

	// Backoff is the base delay before the first retry (default 100ms
	// when Retries > 0). Retry k waits Backoff·2^(k-1), capped at
	// MaxBackoff, then jittered into [d/2, d) by a dedicated rng
	// substream — the jitter never touches a job's own substream, so
	// retried runs stay bit-identical to undisturbed ones.
	Backoff time.Duration

	// MaxBackoff caps the exponential growth (default 64×Backoff).
	MaxBackoff time.Duration

	// JobTimeout bounds each attempt with context.WithTimeout around
	// Job.Run (0 = no deadline). An attempt cut short by its own
	// deadline while the run is live classifies as retryable.
	JobTimeout time.Duration

	// KeepGoing records a job's permanent failure in the Result (a nil
	// payload slot plus a JobError in Result.Failed) and keeps running
	// the remaining jobs, instead of cancelling the run. Failed jobs
	// are absent from the snapshot, so a later resume retries exactly
	// them.
	KeepGoing bool
}

// active reports whether the policy changes anything over the zero
// value.
func (f Failure) active() bool {
	return f.Retries > 0 || f.JobTimeout > 0 || f.KeepGoing
}

// validate rejects nonsensical policies up front, so a bad spec fails
// the run before any job does.
func (f Failure) validate() error {
	switch {
	case f.Retries < 0:
		return fmt.Errorf("engine: negative retry budget %d", f.Retries)
	case f.Retries > maxRetries:
		return fmt.Errorf("engine: retry budget %d exceeds the %d cap", f.Retries, maxRetries)
	case f.Backoff < 0:
		return fmt.Errorf("engine: negative backoff %v", f.Backoff)
	case f.MaxBackoff < 0:
		return fmt.Errorf("engine: negative max backoff %v", f.MaxBackoff)
	case f.MaxBackoff > 0 && f.Backoff > f.MaxBackoff:
		return fmt.Errorf("engine: backoff %v exceeds max backoff %v", f.Backoff, f.MaxBackoff)
	case f.JobTimeout < 0:
		return fmt.Errorf("engine: negative job timeout %v", f.JobTimeout)
	}
	return nil
}

// maxRetries bounds the retry budget; a budget beyond this is a spec
// typo, not a plan.
const maxRetries = 1 << 16

// defaultBackoff seeds the exponential schedule when the spec sets
// retries without a base delay.
const defaultBackoff = 100 * time.Millisecond

// failureJitterSalt separates the backoff-jitter substreams from every
// substream the jobs themselves draw (job payloads use spec.Seed
// unsalted), so jitter can never perturb a payload.
const failureJitterSalt = 0x9c2ff3a7b51d04e9

// backoff returns the deterministic delay before retry `attempt`
// (1-based) of job index `job`: exponential growth from the base,
// capped, then jittered into [d/2, d) by the dedicated substream. jit
// is caller-provided scratch so the retry path allocates nothing.
func (f Failure) backoff(seed uint64, job, attempt int, jit *rng.Source) time.Duration {
	base := f.Backoff
	if base <= 0 {
		base = defaultBackoff
	}
	max := f.MaxBackoff
	if max <= 0 {
		max = 64 * base
	}
	d := base
	for k := 1; k < attempt && d < max; k++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// One substream per (job, attempt): deterministic regardless of
	// how attempts interleave across workers. Collisions between
	// distinct (job, attempt) pairs would only correlate delays, never
	// payloads, but the odd multiplier keeps them unlikely anyway.
	jit.Reinit(seed^failureJitterSalt, uint64(job)*0x9e3779b97f4a7c15+uint64(attempt))
	half := d / 2
	return half + time.Duration(jit.Float64()*float64(half))
}

// String renders the policy as the canonical spec ParseFailure accepts:
// fields in fixed order, defaults omitted. The zero policy renders
// empty.
func (f Failure) String() string {
	var parts []string
	if f.Retries != 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", f.Retries))
	}
	if f.Backoff != 0 {
		parts = append(parts, "backoff="+f.Backoff.String())
	}
	if f.MaxBackoff != 0 {
		parts = append(parts, "max-backoff="+f.MaxBackoff.String())
	}
	if f.JobTimeout != 0 {
		parts = append(parts, "timeout="+f.JobTimeout.String())
	}
	if f.KeepGoing {
		parts = append(parts, "keep-going")
	}
	return strings.Join(parts, ",")
}

// ParseFailure parses a compact failure-policy spec — comma-separated
// key=value pairs plus the bare keep-going flag:
//
//	retries=3,backoff=50ms,max-backoff=5s,timeout=1m,keep-going
//
// Keys may appear in any order but at most once; unknown keys and
// invalid values are errors, and the assembled policy is validated
// (e.g. backoff must not exceed max-backoff). The empty string parses
// to the zero policy.
func ParseFailure(s string) (Failure, error) {
	var f Failure
	s = strings.TrimSpace(s)
	if s == "" {
		return f, nil
	}
	seen := make(map[string]bool, 5)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return Failure{}, errors.New("engine: empty field in failure spec")
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		if seen[key] {
			return Failure{}, fmt.Errorf("engine: duplicate %q in failure spec", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "keep-going":
			if hasVal {
				return Failure{}, errors.New("engine: keep-going takes no value")
			}
			f.KeepGoing = true
			continue
		case "retries":
			f.Retries, err = strconv.Atoi(strings.TrimSpace(val))
		case "backoff":
			f.Backoff, err = parseSpecDuration(val)
		case "max-backoff":
			f.MaxBackoff, err = parseSpecDuration(val)
		case "timeout":
			f.JobTimeout, err = parseSpecDuration(val)
		default:
			return Failure{}, fmt.Errorf("engine: unknown key %q in failure spec (known: %s)",
				key, strings.Join(failureSpecKeys(), ", "))
		}
		if !hasVal && key != "keep-going" {
			return Failure{}, fmt.Errorf("engine: %s needs a value in failure spec", key)
		}
		if err != nil {
			return Failure{}, fmt.Errorf("engine: bad %s in failure spec: %w", key, err)
		}
	}
	if err := f.validate(); err != nil {
		return Failure{}, err
	}
	return f, nil
}

// parseSpecDuration parses a duration field, rejecting the negative and
// non-finite shapes time.ParseDuration happily accepts.
func parseSpecDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return d, nil
}

// failureSpecKeys lists the accepted spec keys, sorted, for error
// messages.
func failureSpecKeys() []string {
	keys := []string{"retries", "backoff", "max-backoff", "timeout", "keep-going"}
	sort.Strings(keys)
	return keys
}

// JobError records one job's permanent failure in a keep-going run: the
// job index and name, how many attempts its retry budget bought, and
// the final error.
type JobError struct {
	Job      int
	Name     string
	Attempts int
	Err      error
}

// Error formats the failure with its job identity, so the joined
// multi-error of a degraded run reads as a per-job report.
func (e *JobError) Error() string {
	return fmt.Sprintf("engine: job %d (%s) failed permanently after %d attempt(s): %v",
		e.Job, e.Name, e.Attempts, e.Err)
}

// Unwrap exposes the job's final error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// SnapshotError marks a run whose durable state could not be persisted:
// the in-memory result is still valid, but the on-disk snapshot is
// stale, missing, or unverifiable — a later resume may redo work or
// find nothing. Callers that advertise "rerun with -resume" must check
// for it first.
type SnapshotError struct{ Err error }

// Error names the condition the wrapped error caused.
func (e *SnapshotError) Error() string {
	return fmt.Sprintf("engine: run state is not durable: %v", e.Err)
}

// Unwrap exposes the underlying disk error.
func (e *SnapshotError) Unwrap() error { return e.Err }
