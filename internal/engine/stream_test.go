package engine

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"reskit/internal/rng"
)

// countingSource yields jobs 0..n-1 (or forever when n < 0) whose
// payload is the first Uint64 of the job's rng substream — a pure
// function of (seed, stream), like every real payload.
func countingSource(n int) JobSource {
	next := 0
	return SourceFunc(func() (Job, bool) {
		if n >= 0 && next >= n {
			return Job{}, false
		}
		i := next
		next++
		return Job{
			Name:   fmt.Sprintf("job%d", i),
			Stream: uint64(i),
			Run: func(ctx context.Context, src *rng.Source) (JobResult, error) {
				return JobResult{Payload: binary.LittleEndian.AppendUint64(nil, src.Uint64())}, nil
			},
		}, true
	})
}

// foldSink is a StreamSink folding payloads into an order-sensitive
// running digest, stopping (optionally) at a fixed frontier. Any
// order-dependence in the engine's commit sequence changes the digest.
type foldSink struct {
	digest  uint64
	commits int
	stopAt  int // stop after this many commits (0: never)
}

func (s *foldSink) Commit(i int, payload []byte) (bool, error) {
	if len(payload) != 8 {
		return false, fmt.Errorf("payload %d bytes, want 8", len(payload))
	}
	v := binary.LittleEndian.Uint64(payload)
	s.digest = s.digest*0x100000001b3 + v + uint64(i)
	s.commits++
	return s.stopAt > 0 && s.commits >= s.stopAt, nil
}

func (s *foldSink) State() ([]byte, error) {
	b := binary.LittleEndian.AppendUint64(nil, s.digest)
	return binary.LittleEndian.AppendUint64(b, uint64(s.commits)), nil
}

func (s *foldSink) Restore(state []byte) error {
	if len(state) != 16 {
		return fmt.Errorf("state %d bytes, want 16", len(state))
	}
	s.digest = binary.LittleEndian.Uint64(state)
	s.commits = int(binary.LittleEndian.Uint64(state[8:]))
	return nil
}

// TestRunStreamWorkerInvariance: a bounded stream drained with 1, 4 and
// 8 workers must exhaust at the same frontier with the identical
// order-sensitive digest.
func TestRunStreamWorkerInvariance(t *testing.T) {
	const n = 64
	var want *foldSink
	for _, w := range []int{1, 4, 8} {
		sink := &foldSink{}
		res, err := RunStream(context.Background(), StreamSpec{
			Source: countingSource(n), Sink: sink, Seed: 42, Workers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Committed != n || !res.Exhausted || res.Stopped {
			t.Fatalf("workers=%d: result %+v, want %d committed exhausted", w, res, n)
		}
		if want == nil {
			want = sink
		} else if *sink != *want {
			t.Errorf("workers=%d: sink %+v differs from workers=1 %+v", w, sink, want)
		}
	}
}

// TestRunStreamStopFrontierDeterministic: the sink's stop decision must
// land on the same frontier for any worker count, even with an
// unbounded source racing far ahead.
func TestRunStreamStopFrontierDeterministic(t *testing.T) {
	const stopAt = 37
	var want *foldSink
	for _, w := range []int{1, 3, 8} {
		sink := &foldSink{stopAt: stopAt}
		res, err := RunStream(context.Background(), StreamSpec{
			Source: countingSource(-1), Sink: sink, Seed: 42, Workers: w, Window: 16,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Stopped || res.Committed != stopAt {
			t.Fatalf("workers=%d: result %+v, want stopped at %d", w, res, stopAt)
		}
		if want == nil {
			want = sink
		} else if *sink != *want {
			t.Errorf("workers=%d: sink %+v differs from first run %+v", w, sink, want)
		}
	}
}

// TestRunStreamMaxJobs: the job cap bounds an unbounded source and
// reports exhaustion, not a stop.
func TestRunStreamMaxJobs(t *testing.T) {
	sink := &foldSink{}
	res, err := RunStream(context.Background(), StreamSpec{
		Source: countingSource(-1), Sink: sink, Seed: 42, Workers: 4, MaxJobs: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 21 || !res.Exhausted || res.Stopped {
		t.Fatalf("result %+v, want 21 committed via MaxJobs", res)
	}
}

// TestRunStreamKillResume: cancel a checkpointed stream mid-run, resume
// it, and require the final sink state bit-identical to an
// uninterrupted run — the core frontier-snapshot contract.
func TestRunStreamKillResume(t *testing.T) {
	const stopAt = 48
	ref := &foldSink{stopAt: stopAt}
	if _, err := RunStream(context.Background(), StreamSpec{
		Source: countingSource(-1), Sink: ref, Seed: 42, Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "stream.ckpt")
	// Phase 1: cancel as soon as a few commits landed; interval 0 means
	// every commit snapshots, so a frontier is on disk when we cancel.
	ctx, cancel := context.WithCancel(context.Background())
	gate := &foldSink{stopAt: stopAt}
	var fired atomic.Bool
	src := countingSource(-1)
	counted := SourceFunc(func() (Job, bool) {
		if gate.commits >= 9 && !fired.Load() {
			fired.Store(true)
			cancel()
		}
		return src.Next()
	})
	res1, err := RunStream(ctx, StreamSpec{
		Source: counted, Sink: gate, Seed: 42, Workers: 2,
		Checkpoint: Checkpoint{Path: path},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if res1.Committed == 0 {
		t.Fatal("interrupted run committed nothing; cannot exercise resume")
	}
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("no snapshot after interrupted run: %v", serr)
	}

	// Phase 2: resume with a different worker count.
	var log bytes.Buffer
	resumed := &foldSink{stopAt: stopAt}
	res2, err := RunStream(context.Background(), StreamSpec{
		Source: countingSource(-1), Sink: resumed, Seed: 42, Workers: 7,
		Checkpoint: Checkpoint{Path: path, Resume: true}, Log: &log,
	})
	if err != nil {
		t.Fatalf("resumed run: %v (log %q)", err, log.String())
	}
	if res2.Restored == 0 || !strings.Contains(log.String(), "resume: restoring stream frontier") {
		t.Fatalf("resume restored nothing (res %+v, log %q)", res2, log.String())
	}
	if !res2.Stopped || res2.Committed != stopAt {
		t.Fatalf("resumed run: result %+v, want stopped at %d", res2, stopAt)
	}
	if *resumed != *ref {
		t.Errorf("resumed sink %+v differs from uninterrupted %+v", resumed, ref)
	}
	// A run that reached its stop removes its snapshot generations.
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Errorf("stopped run left its snapshot behind (stat err %v)", serr)
	}
}

// TestRunStreamValidation: nil source/sink and keep-going are rejected
// up front.
func TestRunStreamValidation(t *testing.T) {
	if _, err := RunStream(context.Background(), StreamSpec{}); err == nil {
		t.Error("nil source/sink accepted")
	}
	_, err := RunStream(context.Background(), StreamSpec{
		Source: countingSource(1), Sink: &foldSink{},
		Failure: Failure{KeepGoing: true},
	})
	if err == nil || !strings.Contains(err.Error(), "keep-going") {
		t.Errorf("keep-going accepted in streaming: %v", err)
	}
}

// TestRunStreamJobFailureAborts: a job out of retry budget fails the
// run with the engine's standard error shape, and commits stop at the
// frontier before it.
func TestRunStreamJobFailureAborts(t *testing.T) {
	boom := errors.New("boom")
	next := 0
	src := SourceFunc(func() (Job, bool) {
		i := next
		next++
		return Job{
			Name:   fmt.Sprintf("job%d", i),
			Stream: uint64(i),
			Run: func(ctx context.Context, src *rng.Source) (JobResult, error) {
				if i == 5 {
					return JobResult{}, boom
				}
				return JobResult{Payload: binary.LittleEndian.AppendUint64(nil, src.Uint64())}, nil
			},
		}, true
	})
	sink := &foldSink{}
	res, err := RunStream(context.Background(), StreamSpec{
		Source: src, Sink: sink, Seed: 42, Workers: 3,
	})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "job 5") {
		t.Fatalf("err = %v, want wrapped job 5 failure", err)
	}
	if res.Committed > 5 {
		t.Errorf("committed %d jobs past the failed one", res.Committed)
	}
}

// TestRunStreamSinkErrorAborts: a sink rejecting a payload aborts the
// run rather than skipping the block.
func TestRunStreamSinkErrorAborts(t *testing.T) {
	sink := &rejectingSink{}
	_, err := RunStream(context.Background(), StreamSpec{
		Source: countingSource(8), Sink: sink, Seed: 42, Workers: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "stream sink rejected job 3") {
		t.Fatalf("err = %v, want sink rejection", err)
	}
}

type rejectingSink struct{ commits int }

func (s *rejectingSink) Commit(i int, payload []byte) (bool, error) {
	if i == 3 {
		return false, errors.New("indigestible")
	}
	s.commits++
	return false, nil
}
func (s *rejectingSink) State() ([]byte, error)     { return []byte{0}, nil }
func (s *rejectingSink) Restore(state []byte) error { return nil }

// TestSliceSource: the fixed-grid adapter drains in order and stays
// exhausted.
func TestSliceSource(t *testing.T) {
	jobs := []Job{{Name: "a"}, {Name: "b"}}
	s := NewSliceSource(jobs)
	for i, want := range []string{"a", "b"} {
		j, ok := s.Next()
		if !ok || j.Name != want {
			t.Fatalf("Next %d = %q,%v want %q,true", i, j.Name, ok, want)
		}
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Next(); ok {
			t.Fatal("exhausted source yielded a job")
		}
	}
}
