package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"reskit/internal/ckpt"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

func TestParseFailure(t *testing.T) {
	cases := []struct {
		spec string
		want Failure
		ok   bool
	}{
		{"", Failure{}, true},
		{"retries=3", Failure{Retries: 3}, true},
		{"retries=3,backoff=50ms,max-backoff=5s,timeout=1m,keep-going",
			Failure{Retries: 3, Backoff: 50 * time.Millisecond, MaxBackoff: 5 * time.Second, JobTimeout: time.Minute, KeepGoing: true}, true},
		{" keep-going , retries=1 ", Failure{Retries: 1, KeepGoing: true}, true},
		{"retries=-1", Failure{}, false},
		{"retries=99999999", Failure{}, false},
		{"retries=1,retries=2", Failure{}, false},
		{"backoff=-5ms", Failure{}, false},
		{"backoff=10s,max-backoff=1s", Failure{}, false},
		{"keep-going=yes", Failure{}, false},
		{"retries", Failure{}, false},
		{"turbo=1", Failure{}, false},
		{"retries=,", Failure{}, false},
		{",", Failure{}, false},
	}
	for _, tc := range cases {
		got, err := ParseFailure(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParseFailure(%q) err = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseFailure(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestFailureStringRoundTrip(t *testing.T) {
	for _, f := range []Failure{
		{},
		{Retries: 4},
		{Retries: 2, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond},
		{JobTimeout: 30 * time.Second, KeepGoing: true},
		{Retries: 1, Backoff: 250 * time.Millisecond, JobTimeout: time.Second, KeepGoing: true},
	} {
		back, err := ParseFailure(f.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if back != f {
			t.Fatalf("round trip %+v -> %q -> %+v", f, f.String(), back)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	pol := Failure{Retries: 10, Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	var jit rng.Source
	prevMid := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := pol.backoff(42, 7, attempt, &jit)
		d2 := pol.backoff(42, 7, attempt, &jit)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		// Jitter keeps the delay in [d/2, d) of the capped exponential.
		if d1 > pol.MaxBackoff {
			t.Fatalf("attempt %d: %v exceeds cap %v", attempt, d1, pol.MaxBackoff)
		}
		if d1 < pol.Backoff/2 {
			t.Fatalf("attempt %d: %v below half the base", attempt, d1)
		}
		if attempt <= 3 && d1 < prevMid {
			// expected growth in the uncapped region (loose: compare to
			// the previous draw's half-point).
			t.Logf("attempt %d: %v (prev %v)", attempt, d1, prevMid)
		}
		prevMid = d1 / 2
		if other := pol.backoff(42, 8, attempt, &jit); other == d1 {
			t.Fatalf("attempt %d: jobs 7 and 8 drew identical jitter %v", attempt, d1)
		}
	}
}

func TestRunRetriesTransientErrors(t *testing.T) {
	ref, err := Run(context.Background(), hashSpec(12, 2))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	spec := hashSpec(12, 2)
	spec.Reg = reg
	spec.Failure = Failure{Retries: 3, Backoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
	var calls atomic.Int64
	inner := spec.Jobs[5].Run
	spec.Jobs[5].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		if calls.Add(1) <= 2 {
			return JobResult{}, errors.New("flaky sink")
		}
		return inner(ctx, src)
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run with retries: %v", err)
	}
	for i := range ref.Payloads {
		if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
			t.Fatalf("payload %d differs from undisturbed run", i)
		}
	}
	if got := reg.Snapshot().Counters["engine.job_retries"]; got != 2 {
		t.Fatalf("engine.job_retries = %d, want 2", got)
	}
}

func TestRunJobTimeoutRetries(t *testing.T) {
	ref, err := Run(context.Background(), hashSpec(6, 2))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	spec := hashSpec(6, 2)
	spec.Reg = reg
	spec.Failure = Failure{Retries: 2, Backoff: time.Microsecond, JobTimeout: 30 * time.Millisecond}
	var calls atomic.Int64
	inner := spec.Jobs[3].Run
	spec.Jobs[3].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang until the attempt deadline collects it
			return JobResult{}, ctx.Err()
		}
		return inner(ctx, src)
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run with job timeout: %v", err)
	}
	for i := range ref.Payloads {
		if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
			t.Fatalf("payload %d differs from undisturbed run", i)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine.job_timeouts"]; got != 1 {
		t.Fatalf("engine.job_timeouts = %d, want 1", got)
	}
	if got := snap.Counters["engine.job_retries"]; got != 1 {
		t.Fatalf("engine.job_retries = %d, want 1", got)
	}
}

func TestRunRetryBudgetExhausted(t *testing.T) {
	spec := hashSpec(4, 2)
	spec.Failure = Failure{Retries: 2, Backoff: time.Microsecond}
	boom := errors.New("dead sink")
	spec.Jobs[1].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		return JobResult{}, boom
	}
	_, err := Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want attempt count", err)
	}
}

func TestRunKeepGoingRecordsFailuresAndStaysResumable(t *testing.T) {
	ref, err := Run(context.Background(), hashSpec(10, 2))
	if err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "run.ckpt")
	reg := obs.NewRegistry()
	spec := hashSpec(10, 3)
	spec.Reg = reg
	spec.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond}
	spec.Failure = Failure{Retries: 1, Backoff: time.Microsecond, KeepGoing: true}
	boom := errors.New("permanently broken")
	spec.Jobs[4].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		return JobResult{}, boom
	}
	res, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("keep-going run with a permanent failure must return the multi-error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Job != 4 || je.Attempts != 2 {
		t.Fatalf("err = %v, want JobError{Job: 4, Attempts: 2}", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(res.Failed) != 1 || res.Failed[0].Job != 4 {
		t.Fatalf("res.Failed = %v, want job 4", res.Failed)
	}
	if res.Payloads[4] != nil {
		t.Fatal("failed job must keep a nil payload slot")
	}
	if res.Fresh != 9 {
		t.Fatalf("fresh = %d, want 9 (the run kept going)", res.Fresh)
	}
	if got := reg.Snapshot().Counters["engine.jobs_failed"]; got != 1 {
		t.Fatalf("engine.jobs_failed = %d, want 1", got)
	}
	if _, serr := os.Stat(snap); serr != nil {
		t.Fatalf("snapshot must survive a degraded run: %v", serr)
	}

	// Resume with the job fixed: only the failed job reruns, and the
	// final payloads match the undisturbed run bit for bit.
	spec2 := hashSpec(10, 2)
	spec2.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond, Resume: true}
	res2, err := Run(context.Background(), spec2)
	if err != nil {
		t.Fatalf("resume after degraded run: %v", err)
	}
	if res2.Restored != 9 || res2.Fresh != 1 {
		t.Fatalf("resume restored=%d fresh=%d, want 9/1", res2.Restored, res2.Fresh)
	}
	for i := range ref.Payloads {
		if !bytes.Equal(res2.Payloads[i], ref.Payloads[i]) {
			t.Fatalf("payload %d differs after degraded run + resume", i)
		}
	}
	if _, serr := os.Stat(snap); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("snapshot should be removed after completion: %v", serr)
	}
	if _, serr := os.Stat(ckpt.PrevGeneration(snap)); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("previous generation should be removed after completion: %v", serr)
	}
}

func TestRunSnapshotGenerationFallback(t *testing.T) {
	ref, err := Run(context.Background(), hashSpec(16, 2))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed run late enough that at least two
	// snapshot generations exist.
	snap := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	spec := hashSpec(16, 2)
	spec.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond}
	completed := make(chan struct{}, 16)
	for i := range spec.Jobs {
		inner := spec.Jobs[i].Run
		spec.Jobs[i].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
			jr, err := inner(ctx, src)
			if err == nil {
				completed <- struct{}{}
			}
			return jr, err
		}
	}
	go func() {
		for i := 0; i < 8; i++ {
			<-completed
		}
		cancel()
	}()
	if _, err := Run(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v", err)
	}
	if _, err := os.Stat(ckpt.PrevGeneration(snap)); err != nil {
		t.Fatalf("previous generation missing: %v", err)
	}

	// Corrupt the head snapshot; resume must fall back to the previous
	// generation and still finish bit-identically.
	if err := os.WriteFile(snap, []byte("scribbled over by a dying disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	spec2 := hashSpec(16, 4)
	spec2.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond, Resume: true}
	spec2.Log = &log
	res, err := Run(context.Background(), spec2)
	if err != nil {
		t.Fatalf("resume from previous generation: %v", err)
	}
	if res.Restored == 0 {
		t.Fatalf("nothing restored; log = %q", log.String())
	}
	if !strings.Contains(log.String(), "snapshot unusable at "+snap) {
		t.Fatalf("log must report the corrupt head: %q", log.String())
	}
	if !strings.Contains(log.String(), ckpt.PrevGeneration(snap)) {
		t.Fatalf("log must name the fallback generation: %q", log.String())
	}
	for i := range ref.Payloads {
		if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
			t.Fatalf("payload %d differs after generation fallback", i)
		}
	}
}

// A drained interruption on a dead disk must not masquerade as a
// resumable exit: the engine surfaces a SnapshotError instead of a bare
// ctx.Err().
func TestRunInterruptedWithDeadDiskReportsSnapshotLoss(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "no", "such", "dir", "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	spec := hashSpec(8, 2)
	spec.Checkpoint = Checkpoint{Path: snap, Interval: time.Hour} // only the final flush writes
	completed := make(chan struct{}, 8)
	for i := range spec.Jobs {
		inner := spec.Jobs[i].Run
		spec.Jobs[i].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
			jr, err := inner(ctx, src)
			if err == nil {
				completed <- struct{}{}
			}
			return jr, err
		}
	}
	go func() {
		<-completed
		cancel()
	}()
	_, err := Run(ctx, spec)
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want SnapshotError", err)
	}
}

func TestRunKeepGoingFlushesSnapshotEvenWithFailures(t *testing.T) {
	// With a long interval, the only snapshot write is the final flush;
	// a degraded run must still perform it.
	snap := filepath.Join(t.TempDir(), "run.ckpt")
	spec := hashSpec(6, 2)
	spec.Checkpoint = Checkpoint{Path: snap, Interval: time.Hour}
	spec.Failure = Failure{KeepGoing: true}
	spec.Jobs[2].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		return JobResult{}, errors.New("permanent")
	}
	res, err := Run(context.Background(), spec)
	if err == nil || len(res.Failed) != 1 {
		t.Fatalf("err=%v failed=%v", err, res.Failed)
	}
	st, lerr := ckpt.Load(snap)
	if lerr != nil {
		t.Fatalf("degraded run must flush its snapshot: %v", lerr)
	}
	if st.Done() != 5 {
		t.Fatalf("snapshot holds %d jobs, want 5 completed", st.Done())
	}
}

func TestRunRejectsInvalidPolicy(t *testing.T) {
	spec := hashSpec(2, 1)
	spec.Failure = Failure{Retries: -1}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("negative retry budget must be rejected")
	}
	spec = hashSpec(2, 1)
	spec.Failure = Failure{Backoff: time.Second, MaxBackoff: time.Millisecond}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("backoff above max-backoff must be rejected")
	}
}

func TestJobErrorFormatting(t *testing.T) {
	je := &JobError{Job: 3, Name: "mtbf=50/block3", Attempts: 4, Err: errors.New("boom")}
	msg := je.Error()
	for _, want := range []string{"job 3", "mtbf=50/block3", "4 attempt", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("JobError = %q, want %q", msg, want)
		}
	}
	if got := fmt.Sprintf("%v", errors.Unwrap(je)); got != "boom" {
		t.Fatalf("Unwrap = %q", got)
	}
}
