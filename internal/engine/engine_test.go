package engine

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reskit/internal/ckpt"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

// hashJob builds a deterministic job whose payload is a pure function
// of its rng substream: 8 bytes of the stream's first draw.
func hashJob(i int) Job {
	return Job{
		Name:   fmt.Sprintf("job%d", i),
		Stream: uint64(i),
		Run: func(ctx context.Context, src *rng.Source) (JobResult, error) {
			if err := ctx.Err(); err != nil {
				return JobResult{}, err
			}
			return JobResult{Payload: binary.LittleEndian.AppendUint64(nil, src.Uint64())}, nil
		},
	}
}

func hashSpec(n int, workers int) Spec {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = hashJob(i)
	}
	return Spec{Jobs: jobs, Seed: 42, Fingerprint: 7, Workers: workers}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Run(context.Background(), hashSpec(23, 1))
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if ref.Done() != 23 || ref.Fresh != 23 || ref.Restored != 0 {
		t.Fatalf("workers=1: done=%d fresh=%d restored=%d", ref.Done(), ref.Fresh, ref.Restored)
	}
	for _, w := range []int{2, 4, 8, 0} {
		res, err := Run(context.Background(), hashSpec(23, w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range ref.Payloads {
			if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
				t.Fatalf("workers=%d: payload %d differs", w, i)
			}
		}
	}
}

func TestRunEmptySpec(t *testing.T) {
	res, err := Run(context.Background(), Spec{})
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if res.Total() != 0 || res.Done() != 0 {
		t.Fatalf("empty spec: total=%d done=%d", res.Total(), res.Done())
	}
}

func TestRunWritesArtifactsAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out", "a.txt")
	spec := Spec{
		Seed: 1,
		Jobs: []Job{{
			Name: "artifact",
			Run: func(ctx context.Context, src *rng.Source) (JobResult, error) {
				return JobResult{
					Payload:   []byte("p"),
					Artifacts: []Artifact{{Path: path, Data: []byte("hello")}},
				}, nil
			},
		}},
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("artifact = %q, %v", got, err)
	}
}

func TestRunJobFailureAborts(t *testing.T) {
	boom := errors.New("boom")
	spec := hashSpec(40, 4)
	spec.Jobs[17].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		return JobResult{}, boom
	}
	_, err := Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job 17 (job17)") {
		t.Fatalf("err = %v, want job index and name", err)
	}
}

// A job that fabricates a context error while the run is live must be
// treated as a failure, not silently dropped as an interruption.
func TestRunFabricatedContextErrorIsFailure(t *testing.T) {
	spec := hashSpec(8, 2)
	spec.Jobs[3].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
		return JobResult{}, context.Canceled
	}
	_, err := Run(context.Background(), spec)
	if err == nil || !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("err = %v, want job 3 failure", err)
	}
}

func TestRunCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	spec := Spec{Seed: 9, Workers: 4}
	for i := 0; i < 64; i++ {
		i := i
		spec.Jobs = append(spec.Jobs, Job{
			Name:   fmt.Sprintf("slow%d", i),
			Stream: uint64(i),
			Run: func(ctx context.Context, src *rng.Source) (JobResult, error) {
				started <- struct{}{}
				select {
				case <-ctx.Done():
					return JobResult{}, ctx.Err()
				case <-time.After(5 * time.Millisecond):
				}
				return JobResult{Payload: []byte{byte(i)}}, nil
			},
		})
	}
	go func() {
		<-started
		cancel()
	}()
	res, err := Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Done() == res.Total() {
		t.Fatal("expected an interrupted run, all jobs completed")
	}
}

func TestRunCheckpointResumeBitIdentical(t *testing.T) {
	ref, err := Run(context.Background(), hashSpec(30, 3))
	if err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "run.ckpt")
	// First pass: cancel once roughly half the jobs have committed.
	ctx, cancel := context.WithCancel(context.Background())
	var log bytes.Buffer
	spec := hashSpec(30, 3)
	spec.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond}
	spec.Log = &log
	completed := make(chan struct{}, 30)
	for i := range spec.Jobs {
		run := spec.Jobs[i].Run
		spec.Jobs[i].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
			jr, err := run(ctx, src)
			if err == nil {
				completed <- struct{}{}
			}
			return jr, err
		}
	}
	go func() {
		for i := 0; i < 12; i++ {
			<-completed
		}
		cancel()
	}()
	first, err := Run(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first pass err = %v, want context.Canceled", err)
	}
	if first.Done() == 0 || first.Done() == 30 {
		t.Fatalf("first pass done = %d, want a genuine partial", first.Done())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing after interruption: %v", err)
	}

	// Second pass: resume must restore the committed jobs, recompute the
	// rest, and reproduce the uninterrupted payloads bit-identically.
	spec2 := hashSpec(30, 5)
	spec2.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond, Resume: true}
	spec2.Log = &log
	spec2.Check = func(job int, payload []byte) error {
		if len(payload) != 8 {
			return fmt.Errorf("payload %d bytes", len(payload))
		}
		return nil
	}
	second, err := Run(context.Background(), spec2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if second.Restored == 0 || second.Restored+second.Fresh != 30 {
		t.Fatalf("resume: restored=%d fresh=%d", second.Restored, second.Fresh)
	}
	for i := range ref.Payloads {
		if !bytes.Equal(second.Payloads[i], ref.Payloads[i]) {
			t.Fatalf("resumed payload %d differs from uninterrupted run", i)
		}
	}
	if !strings.Contains(log.String(), "resume: restoring") {
		t.Fatalf("log = %q, want restore notice", log.String())
	}
	if _, err := os.Stat(snap); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot should be removed after completion, stat err = %v", err)
	}
}

func TestRunResumeFallbacks(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing snapshot", func(t *testing.T) {
		var log bytes.Buffer
		spec := hashSpec(4, 2)
		spec.Checkpoint = Checkpoint{Path: filepath.Join(dir, "none.ckpt"), Resume: true}
		spec.Log = &log
		if _, err := Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(log.String(), "no usable snapshot") {
			t.Fatalf("log = %q", log.String())
		}
	})

	t.Run("garbage snapshot", func(t *testing.T) {
		path := filepath.Join(dir, "garbage.ckpt")
		if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		spec := hashSpec(4, 2)
		spec.Checkpoint = Checkpoint{Path: path, Resume: true}
		spec.Log = &log
		if _, err := Run(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(log.String(), "snapshot unusable") {
			t.Fatalf("log = %q", log.String())
		}
	})

	t.Run("mismatched snapshot", func(t *testing.T) {
		path := filepath.Join(dir, "mismatch.ckpt")
		other := ckpt.New(ckpt.KindJobs, 999, 42, 4, 1)
		other.Blocks[0] = []byte{1}
		if err := other.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		spec := hashSpec(4, 2)
		spec.Checkpoint = Checkpoint{Path: path, Resume: true}
		spec.Log = &log
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Restored != 0 {
			t.Fatalf("restored = %d from a mismatched snapshot", res.Restored)
		}
		if !strings.Contains(log.String(), "does not match this run") {
			t.Fatalf("log = %q", log.String())
		}
	})
}

func TestRunRestoreCheckFailureAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	st := ckpt.New(ckpt.KindJobs, 7, 42, 4, 1)
	st.Blocks[1] = []byte{0xde, 0xad}
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	spec := hashSpec(4, 2)
	spec.Checkpoint = Checkpoint{Path: path, Resume: true}
	spec.Check = func(job int, payload []byte) error {
		if len(payload) != 8 {
			return fmt.Errorf("payload %d bytes, want 8", len(payload))
		}
		return nil
	}
	_, err := Run(context.Background(), spec)
	if err == nil || !strings.Contains(err.Error(), "restoring job 1") {
		t.Fatalf("err = %v, want restore validation failure", err)
	}
}

func TestRunInstrumentsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	spec := hashSpec(6, 2)
	spec.Reg = reg
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["engine.jobs_total"]; got != 6 {
		t.Fatalf("engine.jobs_total = %v", got)
	}
	if got := snap.Counters["engine.jobs_done"]; got != 6 {
		t.Fatalf("engine.jobs_done = %v", got)
	}
}

func TestRunTicksProgress(t *testing.T) {
	p := obs.NewProgress(nil, "jobs", 6, time.Second)
	spec := hashSpec(6, 2)
	spec.Progress = p
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if p.Done() != 6 {
		t.Fatalf("progress done = %d, want 6", p.Done())
	}
}
