package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"reskit/internal/rng"
)

// TestRunResumeInterleavedFailures drives the degraded-run contract at
// its least convenient shape: permanent failures interleaved with
// completed jobs across the whole index range (including the first and
// last job), not one failure in the middle. The keep-going run must
// commit every completed job around the holes, and -resume must
// re-execute exactly the failed set — no completed job reruns, no
// failed job is forgotten — converging to the undisturbed payloads bit
// for bit.
func TestRunResumeInterleavedFailures(t *testing.T) {
	const n = 12
	poisoned := map[int]bool{0: true, 3: true, 4: true, 8: true, 11: true}

	ref, err := Run(context.Background(), hashSpec(n, 2))
	if err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "run.ckpt")
	boom := errors.New("interleaved breakage")
	spec := hashSpec(n, 3)
	spec.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond}
	spec.Failure = Failure{Retries: 1, Backoff: time.Microsecond, KeepGoing: true}
	for i := range spec.Jobs {
		if poisoned[i] {
			spec.Jobs[i].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
				return JobResult{}, boom
			}
		}
	}
	res, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("keep-going run with permanent failures must return the multi-error")
	}
	if len(res.Failed) != len(poisoned) {
		t.Fatalf("res.Failed has %d entries, want %d: %v", len(res.Failed), len(poisoned), res.Failed)
	}
	for _, fe := range res.Failed {
		if !poisoned[fe.Job] {
			t.Errorf("job %d reported failed but was not poisoned", fe.Job)
		}
		if !errors.Is(fe.Err, boom) {
			t.Errorf("job %d failed with %v, want the poison", fe.Job, fe.Err)
		}
	}
	for i := 0; i < n; i++ {
		if poisoned[i] {
			if res.Payloads[i] != nil {
				t.Errorf("failed job %d has a payload", i)
			}
		} else if !bytes.Equal(res.Payloads[i], ref.Payloads[i]) {
			t.Errorf("completed job %d diverges from the undisturbed run", i)
		}
	}
	if res.Fresh != n-len(poisoned) {
		t.Fatalf("fresh = %d, want %d", res.Fresh, n-len(poisoned))
	}

	// Resume with every job healthy, counting executions per index: the
	// snapshot must feed the completed set back and dispatch only the
	// holes.
	var execs [n]atomic.Int64
	spec2 := hashSpec(n, 2)
	for i := range spec2.Jobs {
		inner := spec2.Jobs[i].Run
		spec2.Jobs[i].Run = func(ctx context.Context, src *rng.Source) (JobResult, error) {
			execs[i].Add(1)
			return inner(ctx, src)
		}
	}
	spec2.Checkpoint = Checkpoint{Path: snap, Interval: time.Nanosecond, Resume: true}
	res2, err := Run(context.Background(), spec2)
	if err != nil {
		t.Fatalf("resume after interleaved degraded run: %v", err)
	}
	if res2.Restored != n-len(poisoned) || res2.Fresh != len(poisoned) {
		t.Fatalf("resume restored=%d fresh=%d, want %d/%d",
			res2.Restored, res2.Fresh, n-len(poisoned), len(poisoned))
	}
	for i := 0; i < n; i++ {
		want := int64(0)
		if poisoned[i] {
			want = 1
		}
		if got := execs[i].Load(); got != want {
			t.Errorf("resume executed job %d %d times, want %d", i, got, want)
		}
	}
	for i := range ref.Payloads {
		if !bytes.Equal(res2.Payloads[i], ref.Payloads[i]) {
			t.Errorf("payload %d differs after degraded run + resume", i)
		}
	}
	if _, serr := os.Stat(snap); !errors.Is(serr, os.ErrNotExist) {
		t.Errorf("snapshot should be removed after full completion: %v", serr)
	}
}
