// Package engine is the single execution path shared by every
// experiment mode of the toolchain: a run is a list of deterministic
// Jobs (one Monte-Carlo block, one sweep cell, one figure), and the
// engine owns everything around them — worker sharding, per-job rng
// substreams, cooperative cancellation with a graceful drain, durable
// snapshot/restore at job granularity (internal/ckpt), atomic artifact
// writing (internal/atomicio), and obs instrumentation.
//
// The determinism contract mirrors the sharded Monte-Carlo runners the
// engine generalizes: a Job must depend only on the spec configuration
// and the rng substream it is handed, so its payload bytes are a pure
// function of (config, seed, stream). Payloads are merged by the caller
// in job order, which makes the final result bit-identical for any
// worker count — and makes a completed job a resumable unit: restoring
// committed payloads from a snapshot and recomputing only the missing
// jobs reproduces an uninterrupted run exactly.
//
// Run executes a fixed job grid. RunStream generalizes it to a lazy,
// possibly unbounded JobSource drained into an ordered StreamSink —
// same worker pool, same attempt loop, same failure policy — with the
// commit frontier persisted as an open-ended snapshot (ckpt.KindStream)
// instead of a per-job payload map. See stream.go for the ordering and
// determinism argument.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/ckpt"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

// Artifact is one output file produced by a job. The engine writes it
// via write-temp-fsync-rename after the job returns, so a crash can
// never leave a truncated artifact at the destination path.
type Artifact struct {
	Path string
	Data []byte
	Perm os.FileMode // 0 means 0o644
}

// JobResult carries a job's outputs back to the engine: an opaque
// payload (persisted in snapshots, merged by the caller in job order)
// and any artifacts to write atomically.
type JobResult struct {
	Payload   []byte
	Artifacts []Artifact
}

// Job is one deterministic unit of a run.
type Job struct {
	// Name labels the job in errors and progress ("mtbf=50/block3").
	Name string
	// Stream selects the rng substream: Run receives
	// rng.NewStream(spec.Seed, Stream). Distinct jobs may share a
	// stream value (e.g. block b of every strategy in a comparison
	// draws stream b, exactly as a standalone run of that strategy
	// would) — determinism only requires that the mapping is fixed.
	Stream uint64
	// Run executes the job. It must return ctx.Err() when cancelled
	// mid-job: the engine treats context errors as interruption (the
	// job is simply not recorded and can be re-run on resume), and any
	// other error as a run-aborting failure.
	Run func(ctx context.Context, src *rng.Source) (JobResult, error)
}

// Checkpoint configures durable run state.
type Checkpoint struct {
	Path     string        // snapshot file ("" disables the layer)
	Interval time.Duration // min interval between snapshots (<= 0: 10s)
	Resume   bool          // restore completed jobs from Path first
}

// Spec describes a run: the job list, the reproducibility contract
// (seed and config fingerprint), and the operational knobs.
type Spec struct {
	Jobs        []Job
	Seed        uint64
	Fingerprint uint64 // hash of every configuration facet shaping payloads
	Workers     int    // parallel workers (<= 0: all CPUs)

	Checkpoint Checkpoint

	// Failure is the failure policy: per-job retry budgets with
	// deterministic backoff+jitter, per-attempt deadlines, and the
	// keep-going degraded mode. The zero value keeps the historical
	// fail-fast behavior at zero cost.
	Failure Failure

	// Check, when set, validates each restored payload before the run
	// trusts it. A failure aborts the run with an error: a payload that
	// passed the snapshot CRC but does not parse means the snapshot
	// belongs to an incompatible build, and silently re-running the job
	// could mask real corruption.
	Check func(job int, payload []byte) error

	// Log receives resume fallbacks and checkpoint warnings (nil
	// discards them).
	Log io.Writer

	// Reg, when non-nil, binds the engine's instruments — the
	// "engine.jobs_total" and "engine.jobs_per_sec" gauges, the
	// "engine.jobs_done" and "engine.jobs_restored" counters, the
	// "engine.ns_per_job" quantile sketch (p50/p90/p99 of per-job wall
	// time) — plus the checkpoint writer's "ckpt.*" set. These are the
	// same numbers -metrics and -benchjson report: one source of truth
	// for per-mode throughput.
	Reg *obs.Registry

	// Progress, when non-nil, is ticked once per job; restored jobs
	// tick immediately on resume.
	Progress *obs.Progress
}

// Result reports a run.
type Result struct {
	// Payloads holds one entry per job, in job order; nil marks a job
	// that did not run (interrupted or failed before completing).
	Payloads [][]byte
	Restored int // jobs restored from the snapshot
	Fresh    int // jobs completed by this run

	// Failed lists the jobs a keep-going run gave up on, in job order:
	// their payload slots are nil, they are absent from the snapshot,
	// and a later resume retries exactly them. Empty unless
	// Failure.KeepGoing was set and jobs exhausted their retry budget.
	Failed []*JobError
}

// Done returns the number of jobs with a recorded payload.
func (r *Result) Done() int { return r.Restored + r.Fresh }

// Total returns the number of jobs in the spec.
func (r *Result) Total() int { return len(r.Payloads) }

// Run executes the spec: it restores completed jobs from the snapshot
// (validating them first, falling back to the previous snapshot
// generation when the head is unusable), dispatches the remaining jobs
// to a worker pool with one rng substream each, retries failing
// attempts within the spec's Failure policy, commits every completed
// payload, writes artifacts atomically, and on cancellation drains
// workers at the next job boundary. A final snapshot is flushed on
// every path — success, interruption, failure — so completed work is
// never discarded. The returned error is ctx.Err() after an
// interruption — the partial Result is valid and the snapshot resumable
// — a joined multi-error of JobError values after a degraded keep-going
// run, a SnapshotError when the final snapshot could not be persisted,
// or the first real failure (job error past its retry budget, unusable
// restored payload, artifact write error).
func Run(ctx context.Context, spec Spec) (*Result, error) {
	n := len(spec.Jobs)
	res := &Result{Payloads: make([][]byte, n)}
	if err := spec.Failure.validate(); err != nil {
		return res, err
	}
	if n == 0 {
		return res, ctx.Err()
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	logw := spec.Log
	if logw == nil {
		logw = io.Discard
	}
	spec.Reg.Gauge("engine.jobs_total").Set(float64(n))
	doneCtr := spec.Reg.Counter("engine.jobs_done")

	var writer *ckpt.Writer
	skip := make([]bool, n)
	if spec.Checkpoint.Path != "" {
		st := ckpt.New(ckpt.KindJobs, spec.Fingerprint, spec.Seed, int64(n), 1)
		if spec.Checkpoint.Resume {
			if loaded := loadResumable(logw, spec.Checkpoint.Path, spec.Fingerprint, spec.Seed, int64(n)); loaded != nil {
				st = loaded
			}
		}
		writer = ckpt.NewWriter(spec.Checkpoint.Path, spec.Checkpoint.Interval, st)
		writer.Instrument(spec.Reg)
		writer.LogTo(logw)
		restoredCtr := spec.Reg.Counter("engine.jobs_restored")
		for i := 0; i < n; i++ {
			payload := writer.Restore(i)
			if payload == nil {
				continue
			}
			if spec.Check != nil {
				if err := spec.Check(i, payload); err != nil {
					return res, fmt.Errorf("engine: restoring job %d (%s): %w", i, spec.Jobs[i].Name, err)
				}
			}
			res.Payloads[i] = payload
			skip[i] = true
			res.Restored++
			restoredCtr.Inc()
			spec.Progress.Add(1)
		}
	}

	// A real job failure cancels the run; the first one wins. Context
	// errors are interruption, not failure — unless the job invented
	// one while the run context is still live, which would otherwise
	// silently drop the job.
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failOnce sync.Once
		jobErr   error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			jobErr = err
			cancel()
		})
	}

	// The executor owns the per-attempt machinery (substream reinit,
	// deadlines, retry/backoff, the ns_per_job sketch) shared with the
	// streaming runner; the timing calls are skipped entirely when
	// spec.Reg is nil so the uninstrumented path stays clock-free.
	ex := newExecutor(spec.Seed, spec.Failure, spec.Reg)
	runStart := time.Now()

	pol := spec.Failure
	failedCtr := spec.Reg.Counter("engine.jobs_failed")
	// Permanent keep-going failures are recorded off the hot path; the
	// slice is sorted into job order once the workers are done.
	var (
		failedMu sync.Mutex
		failed   []*JobError
	)

	var fresh atomic.Int64
	jobs := make(chan int)
	done := jobCtx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Source per worker, reinitialized per job (and per
			// attempt) — state identical to a fresh NewStream, with no
			// per-job allocation. jit is backoff-jitter scratch; it
			// never touches the job substream.
			var src, jit rng.Source
			for i := range jobs {
				job := spec.Jobs[i]
				jr, attempts, verdict, jerr := ex.runJob(jobCtx, i, &job, &src, &jit)
				switch verdict {
				case jobDrained:
					return // drained cleanly at a job boundary
				case jobFailed:
					if pol.KeepGoing {
						failedCtr.Inc()
						failedMu.Lock()
						failed = append(failed, &JobError{Job: i, Name: job.Name, Attempts: attempts, Err: jerr})
						failedMu.Unlock()
						continue // payload slot stays nil; the run keeps going
					}
					fail(wrapJobErr(i, job.Name, attempts, jerr))
					return
				case jobFabricated:
					// Never kept-going: a fabricated context error is a
					// programming bug, not a transient fault.
					fail(wrapJobErr(i, job.Name, attempts, jerr))
					return
				}
				res.Payloads[i] = jr.Payload // distinct index per job: no races
				if writer != nil {
					writer.Commit(i, jr.Payload)
				}
				fresh.Add(1)
				doneCtr.Inc()
				spec.Progress.Add(1)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		if skip[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	res.Fresh = int(fresh.Load())
	if spec.Reg != nil {
		if elapsed := time.Since(runStart).Seconds(); elapsed > 0 {
			spec.Reg.Gauge("engine.jobs_per_sec").Set(float64(res.Fresh) / elapsed)
		}
	}

	// A degraded keep-going run reports every permanent failure as one
	// structured multi-error; the failed jobs stay out of the snapshot,
	// so a later resume retries exactly them.
	if len(failed) > 0 {
		sort.Slice(failed, func(a, b int) bool { return failed[a].Job < failed[b].Job })
		res.Failed = failed
		if jobErr == nil {
			errs := make([]error, len(failed))
			for i, fe := range failed {
				errs[i] = fe
			}
			jobErr = errors.Join(errs...)
		}
	}

	if writer != nil {
		// The final snapshot is flushed on every path — interrupted,
		// degraded, even failed — because whatever jobs did commit are
		// worth keeping; and the writer's verdict is surfaced on every
		// path too, so an exit that advertises a resumable state cannot
		// be hiding a dead disk.
		if ferr := writer.Flush(); ferr != nil {
			serr := &SnapshotError{Err: ferr}
			if jobErr == nil {
				jobErr = serr
			} else {
				jobErr = errors.Join(jobErr, serr)
			}
		}
		if jobErr == nil && ctx.Err() == nil && res.Done() == n {
			// The run completed: the snapshots have served their purpose,
			// and leaving them around would only invite a stale resume
			// later.
			if rerr := ckpt.RemoveGenerations(spec.Checkpoint.Path); rerr != nil {
				fmt.Fprintf(logw, "checkpoint: completed but could not remove %s: %v\n", spec.Checkpoint.Path, rerr)
			}
		}
	}
	if jobErr != nil {
		return res, jobErr
	}
	return res, ctx.Err()
}

// ResumableState returns the newest usable KindJobs snapshot generation
// for a run with the given identity — the head, or the rotated previous
// generation when the head is missing, corrupt, or belongs to a
// different run — logging every fallback to logw. nil means no
// generation is usable and the run must start fresh. It is the same
// logic Run applies under Checkpoint.Resume, exported so alternative
// executors of a job grid (the distributed coordinator) share one
// resume policy with the local engine — including snapshot
// interchangeability: either side resumes the other's file.
func ResumableState(logw io.Writer, path string, fingerprint, seed uint64, n int64) *ckpt.State {
	if logw == nil {
		logw = io.Discard
	}
	return loadResumable(logw, path, fingerprint, seed, n)
}

// loadResumable returns the newest usable snapshot generation for this
// run — the head, or the rotated previous generation when the head is
// missing, corrupt, or belongs to a different run — logging every
// fallback. nil means no generation is usable and the run starts fresh.
func loadResumable(logw io.Writer, path string, fingerprint, seed uint64, n int64) *ckpt.State {
	for _, p := range []string{path, ckpt.PrevGeneration(path)} {
		loaded, lerr := ckpt.Load(p)
		switch {
		case errors.Is(lerr, os.ErrNotExist):
			continue
		case lerr != nil:
			fmt.Fprintf(logw, "resume: snapshot unusable at %s (%v)\n", p, lerr)
			continue
		}
		if cerr := loaded.Check(ckpt.KindJobs, fingerprint, seed, n, 1); cerr != nil {
			fmt.Fprintf(logw, "resume: snapshot at %s does not match this run (%v)\n", p, cerr)
			continue
		}
		fmt.Fprintf(logw, "resume: restoring %d/%d jobs from %s\n", loaded.Done(), loaded.NumBlocks, p)
		return loaded
	}
	fmt.Fprintf(logw, "resume: no usable snapshot at %s; starting fresh\n", path)
	return nil
}

// runAttempt executes one attempt of a job under the per-attempt
// deadline, including its artifact writes — an artifact that fails to
// land is a failed attempt: re-running the job rewrites it, and
// atomicio guarantees no partial file ever reaches the destination. On
// success the result is stored in *out. timedOut reports an attempt cut
// short by its own deadline while the run context was still live — the
// retryable flavor of context error.
func runAttempt(ctx context.Context, job *Job, src *rng.Source, timeout time.Duration, out *JobResult) (err error, timedOut bool) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	jr, err := job.Run(actx, src)
	if err == nil {
		if aerr := writeArtifacts(jr.Artifacts); aerr != nil {
			err = aerr
		}
	}
	if err == nil {
		*out = jr
		return nil, false
	}
	if timeout > 0 && isContextErr(err) {
		timedOut = errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
	}
	return err, timedOut
}

// sleepBackoff waits the policy's deterministic jittered delay before
// retry `attempt` of job `job`, returning false when the run was
// cancelled mid-wait (the worker should drain, leaving the job
// unrecorded and resumable).
func sleepBackoff(ctx context.Context, pol Failure, seed uint64, job, attempt int, jit *rng.Source) bool {
	d := pol.backoff(seed, job, attempt, jit)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// isContextErr classifies cancellation and deadline errors.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// writeArtifacts persists a job's artifacts, each atomically.
func writeArtifacts(arts []Artifact) error {
	for _, a := range arts {
		perm := a.Perm
		if perm == 0 {
			perm = 0o644
		}
		if err := atomicio.WriteFile(a.Path, a.Data, perm); err != nil {
			return fmt.Errorf("artifact %s: %w", a.Path, err)
		}
	}
	return nil
}
