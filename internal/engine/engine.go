// Package engine is the single execution path shared by every
// experiment mode of the toolchain: a run is a list of deterministic
// Jobs (one Monte-Carlo block, one sweep cell, one figure), and the
// engine owns everything around them — worker sharding, per-job rng
// substreams, cooperative cancellation with a graceful drain, durable
// snapshot/restore at job granularity (internal/ckpt), atomic artifact
// writing (internal/atomicio), and obs instrumentation.
//
// The determinism contract mirrors the sharded Monte-Carlo runners the
// engine generalizes: a Job must depend only on the spec configuration
// and the rng substream it is handed, so its payload bytes are a pure
// function of (config, seed, stream). Payloads are merged by the caller
// in job order, which makes the final result bit-identical for any
// worker count — and makes a completed job a resumable unit: restoring
// committed payloads from a snapshot and recomputing only the missing
// jobs reproduces an uninterrupted run exactly.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/ckpt"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

// Artifact is one output file produced by a job. The engine writes it
// via write-temp-fsync-rename after the job returns, so a crash can
// never leave a truncated artifact at the destination path.
type Artifact struct {
	Path string
	Data []byte
	Perm os.FileMode // 0 means 0o644
}

// JobResult carries a job's outputs back to the engine: an opaque
// payload (persisted in snapshots, merged by the caller in job order)
// and any artifacts to write atomically.
type JobResult struct {
	Payload   []byte
	Artifacts []Artifact
}

// Job is one deterministic unit of a run.
type Job struct {
	// Name labels the job in errors and progress ("mtbf=50/block3").
	Name string
	// Stream selects the rng substream: Run receives
	// rng.NewStream(spec.Seed, Stream). Distinct jobs may share a
	// stream value (e.g. block b of every strategy in a comparison
	// draws stream b, exactly as a standalone run of that strategy
	// would) — determinism only requires that the mapping is fixed.
	Stream uint64
	// Run executes the job. It must return ctx.Err() when cancelled
	// mid-job: the engine treats context errors as interruption (the
	// job is simply not recorded and can be re-run on resume), and any
	// other error as a run-aborting failure.
	Run func(ctx context.Context, src *rng.Source) (JobResult, error)
}

// Checkpoint configures durable run state.
type Checkpoint struct {
	Path     string        // snapshot file ("" disables the layer)
	Interval time.Duration // min interval between snapshots (<= 0: 10s)
	Resume   bool          // restore completed jobs from Path first
}

// Spec describes a run: the job list, the reproducibility contract
// (seed and config fingerprint), and the operational knobs.
type Spec struct {
	Jobs        []Job
	Seed        uint64
	Fingerprint uint64 // hash of every configuration facet shaping payloads
	Workers     int    // parallel workers (<= 0: all CPUs)

	Checkpoint Checkpoint

	// Check, when set, validates each restored payload before the run
	// trusts it. A failure aborts the run with an error: a payload that
	// passed the snapshot CRC but does not parse means the snapshot
	// belongs to an incompatible build, and silently re-running the job
	// could mask real corruption.
	Check func(job int, payload []byte) error

	// Log receives resume fallbacks and checkpoint warnings (nil
	// discards them).
	Log io.Writer

	// Reg, when non-nil, binds the engine's instruments — the
	// "engine.jobs_total" and "engine.jobs_per_sec" gauges, the
	// "engine.jobs_done" and "engine.jobs_restored" counters, the
	// "engine.ns_per_job" quantile sketch (p50/p90/p99 of per-job wall
	// time) — plus the checkpoint writer's "ckpt.*" set. These are the
	// same numbers -metrics and -benchjson report: one source of truth
	// for per-mode throughput.
	Reg *obs.Registry

	// Progress, when non-nil, is ticked once per job; restored jobs
	// tick immediately on resume.
	Progress *obs.Progress
}

// Result reports a run.
type Result struct {
	// Payloads holds one entry per job, in job order; nil marks a job
	// that did not run (interrupted or failed before completing).
	Payloads [][]byte
	Restored int // jobs restored from the snapshot
	Fresh    int // jobs completed by this run
}

// Done returns the number of jobs with a recorded payload.
func (r *Result) Done() int { return r.Restored + r.Fresh }

// Total returns the number of jobs in the spec.
func (r *Result) Total() int { return len(r.Payloads) }

// Run executes the spec: it restores completed jobs from the snapshot
// (validating them first), dispatches the remaining jobs to a worker
// pool with one rng substream each, commits every completed payload,
// writes artifacts atomically, and on cancellation drains workers at the
// next job boundary and flushes a final snapshot. The returned error is
// ctx.Err() after an interruption — the partial Result is valid and the
// snapshot resumable — or the first real failure (job error, unusable
// restored payload, artifact or snapshot write error).
func Run(ctx context.Context, spec Spec) (*Result, error) {
	n := len(spec.Jobs)
	res := &Result{Payloads: make([][]byte, n)}
	if n == 0 {
		return res, ctx.Err()
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	logw := spec.Log
	if logw == nil {
		logw = io.Discard
	}
	spec.Reg.Gauge("engine.jobs_total").Set(float64(n))
	doneCtr := spec.Reg.Counter("engine.jobs_done")

	var writer *ckpt.Writer
	skip := make([]bool, n)
	if spec.Checkpoint.Path != "" {
		st := ckpt.New(ckpt.KindJobs, spec.Fingerprint, spec.Seed, int64(n), 1)
		if spec.Checkpoint.Resume {
			loaded, lerr := ckpt.Load(spec.Checkpoint.Path)
			switch {
			case errors.Is(lerr, os.ErrNotExist):
				fmt.Fprintf(logw, "resume: no snapshot at %s; starting fresh\n", spec.Checkpoint.Path)
			case lerr != nil:
				fmt.Fprintf(logw, "resume: snapshot unusable (%v); starting fresh\n", lerr)
			default:
				if cerr := loaded.Check(ckpt.KindJobs, spec.Fingerprint, spec.Seed, int64(n), 1); cerr != nil {
					fmt.Fprintf(logw, "resume: snapshot does not match this run (%v); starting fresh\n", cerr)
				} else {
					st = loaded
					fmt.Fprintf(logw, "resume: restoring %d/%d jobs from %s\n", st.Done(), st.NumBlocks, spec.Checkpoint.Path)
				}
			}
		}
		writer = ckpt.NewWriter(spec.Checkpoint.Path, spec.Checkpoint.Interval, st)
		writer.Instrument(spec.Reg)
		restoredCtr := spec.Reg.Counter("engine.jobs_restored")
		for i := 0; i < n; i++ {
			payload := writer.Restore(i)
			if payload == nil {
				continue
			}
			if spec.Check != nil {
				if err := spec.Check(i, payload); err != nil {
					return res, fmt.Errorf("engine: restoring job %d (%s): %w", i, spec.Jobs[i].Name, err)
				}
			}
			res.Payloads[i] = payload
			skip[i] = true
			res.Restored++
			restoredCtr.Inc()
			spec.Progress.Add(1)
		}
	}

	// A real job failure cancels the run; the first one wins. Context
	// errors are interruption, not failure — unless the job invented
	// one while the run context is still live, which would otherwise
	// silently drop the job.
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failOnce sync.Once
		jobErr   error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			jobErr = err
			cancel()
		})
	}

	// Per-job wall time feeds the ns_per_job quantile sketch; the
	// instrument is nil exactly when spec.Reg is nil, and the timing
	// calls are skipped entirely in that case so the uninstrumented
	// path stays clock-free.
	nsPerJob := spec.Reg.Quantiles("engine.ns_per_job")
	runStart := time.Now()

	var fresh atomic.Int64
	jobs := make(chan int)
	done := jobCtx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Source per worker, reinitialized per job — state
			// identical to a fresh NewStream, with no per-job
			// allocation.
			var src rng.Source
			for i := range jobs {
				job := spec.Jobs[i]
				src.Reinit(spec.Seed, job.Stream)
				var jobStart time.Time
				if nsPerJob != nil {
					jobStart = time.Now()
				}
				jr, err := job.Run(jobCtx, &src)
				if nsPerJob != nil {
					nsPerJob.Observe(float64(time.Since(jobStart)))
				}
				if err != nil {
					if isContextErr(err) && jobCtx.Err() != nil {
						return // drained cleanly at the job boundary
					}
					fail(fmt.Errorf("engine: job %d (%s): %w", i, job.Name, err))
					return
				}
				if err := writeArtifacts(jr.Artifacts); err != nil {
					fail(fmt.Errorf("engine: job %d (%s): %w", i, job.Name, err))
					return
				}
				res.Payloads[i] = jr.Payload // distinct index per job: no races
				if writer != nil {
					writer.Commit(i, jr.Payload)
				}
				fresh.Add(1)
				doneCtr.Inc()
				spec.Progress.Add(1)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		if skip[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	res.Fresh = int(fresh.Load())
	if spec.Reg != nil {
		if elapsed := time.Since(runStart).Seconds(); elapsed > 0 {
			spec.Reg.Gauge("engine.jobs_per_sec").Set(float64(res.Fresh) / elapsed)
		}
	}

	if writer != nil {
		if jobErr == nil {
			if ferr := writer.Flush(); ferr != nil {
				jobErr = fmt.Errorf("engine: writing final snapshot: %w", ferr)
			}
		}
		if jobErr == nil && ctx.Err() == nil && res.Done() == n {
			// The run completed: the snapshot has served its purpose, and
			// leaving it around would only invite a stale resume later.
			if rerr := os.Remove(spec.Checkpoint.Path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				fmt.Fprintf(logw, "checkpoint: completed but could not remove %s: %v\n", spec.Checkpoint.Path, rerr)
			}
		}
	}
	if jobErr != nil {
		return res, jobErr
	}
	return res, ctx.Err()
}

// isContextErr classifies cancellation and deadline errors.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// writeArtifacts persists a job's artifacts, each atomically.
func writeArtifacts(arts []Artifact) error {
	for _, a := range arts {
		perm := a.Perm
		if perm == 0 {
			perm = 0o644
		}
		if err := atomicio.WriteFile(a.Path, a.Data, perm); err != nil {
			return fmt.Errorf("artifact %s: %w", a.Path, err)
		}
	}
	return nil
}
