package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"reskit/internal/ckpt"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

// StreamSink folds committed payloads into a running aggregate, in
// strict index order. The engine calls every method from a single
// goroutine.
//
// Because Commit(i) is always preceded by Commit(0..i-1), the sink
// state after job i is a pure function of the payload prefix — and
// payloads are pure functions of (config, seed, stream) — so both the
// stop decision and the frontier snapshots are independent of the
// worker count and of how out-of-order the results arrived.
type StreamSink interface {
	// Commit folds job i's payload. Returning stop=true asks the engine
	// to finish the run at this frontier (results of jobs beyond i are
	// discarded, never folded); an error aborts the run.
	Commit(i int, payload []byte) (stop bool, err error)
	// State returns the serialized sink at the current frontier, for
	// frontier snapshots. It must capture everything Commit mutates:
	// Restore(State()) followed by the same Commit sequence must be
	// bit-identical to never having been interrupted.
	State() ([]byte, error)
	// Restore resets the sink to a state previously returned by State.
	Restore(state []byte) error
}

// StreamSpec describes a streaming run: a lazy job source drained into
// an ordered sink by the same bounded worker pool, attempt loop and
// failure policy as the fixed-grid Run.
type StreamSpec struct {
	Source JobSource
	Sink   StreamSink

	Seed        uint64
	Fingerprint uint64 // hash of every configuration facet shaping payloads
	Workers     int    // parallel workers (<= 0: all CPUs)

	// MaxJobs caps the number of jobs committed (0: unbounded). The cap
	// counts from job 0 — restored jobs included — so a resumed run
	// stops at the same frontier an uninterrupted one would.
	MaxJobs int

	// Window bounds how far dispatch may run ahead of the commit
	// frontier: at most Window job indices are in flight or parked
	// out-of-order at any moment, which bounds memory however unbounded
	// the source is (0: 4x workers).
	Window int

	Checkpoint Checkpoint

	// Failure is the per-job retry policy. KeepGoing is rejected up
	// front: a permanently failed job would block the commit frontier
	// forever.
	Failure Failure

	// Log receives resume fallbacks and checkpoint warnings (nil
	// discards them).
	Log io.Writer

	// Reg, when non-nil, binds the engine instruments plus the
	// streaming extras: the "engine.stream_frontier" gauge tracks the
	// commit frontier live.
	Reg *obs.Registry

	// Progress, when non-nil, is ticked once per committed job;
	// restored jobs tick immediately on resume.
	Progress *obs.Progress
}

// StreamResult reports a streaming run.
type StreamResult struct {
	// Committed is the final frontier: jobs [0, Committed) are folded
	// into the sink.
	Committed int
	// Restored counts the committed jobs replayed from the frontier
	// snapshot rather than executed.
	Restored int
	// Stopped reports that the sink requested the stop.
	Stopped bool
	// Exhausted reports that the source ran dry (or MaxJobs was hit)
	// before the sink asked to stop.
	Exhausted bool
}

// Fresh returns the number of jobs this run executed and committed.
func (r *StreamResult) Fresh() int { return r.Committed - r.Restored }

// RunStream drains the source into the sink: jobs are dispatched to the
// worker pool as indices stream off the source, results are parked
// until their index is next at the commit frontier, and the sink folds
// them in strict order — evaluating its stop rule after every fold.
// The frontier (plus the sink state) is snapshotted on the checkpoint
// interval, so a killed run resumes by restoring the sink, replaying
// the source past the frontier, and continuing bit-identically. The
// returned error follows Run's contract: ctx.Err() after interruption
// (resumable), a SnapshotError when the final snapshot could not be
// persisted, or the first real failure.
func RunStream(ctx context.Context, spec StreamSpec) (*StreamResult, error) {
	res := &StreamResult{}
	if spec.Source == nil || spec.Sink == nil {
		return res, errors.New("engine: stream spec needs a source and a sink")
	}
	if err := spec.Failure.validate(); err != nil {
		return res, err
	}
	if spec.Failure.KeepGoing {
		return res, errors.New("engine: keep-going is incompatible with streaming (a permanently failed job would block the commit frontier forever)")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := spec.Window
	if window <= 0 {
		window = 4 * workers
	}
	if window < workers {
		window = workers
	}
	logw := spec.Log
	if logw == nil {
		logw = io.Discard
	}
	doneCtr := spec.Reg.Counter("engine.jobs_done")
	frontierGauge := spec.Reg.Gauge("engine.stream_frontier")

	// Frontier snapshot: restore the sink state and fast-forward the
	// source past the committed prefix.
	var writer *ckpt.Writer
	frontier := 0
	if spec.Checkpoint.Path != "" {
		st := ckpt.NewStream(spec.Fingerprint, spec.Seed)
		if spec.Checkpoint.Resume {
			if loaded := loadResumableStream(logw, spec.Checkpoint.Path, spec.Fingerprint, spec.Seed); loaded != nil {
				if err := spec.Sink.Restore(loaded.StreamState()); err != nil {
					return res, fmt.Errorf("engine: restoring stream sink at frontier %d: %w", loaded.Frontier(), err)
				}
				frontier = int(loaded.Frontier())
				st = loaded
			}
		}
		writer = ckpt.NewWriter(spec.Checkpoint.Path, spec.Checkpoint.Interval, st)
		writer.Instrument(spec.Reg)
		writer.LogTo(logw)
		if frontier > 0 {
			// The source is deterministic, so jobs [0, frontier) are
			// exactly the ones the restored sink already folded: skip
			// them without executing.
			for i := 0; i < frontier; i++ {
				if _, ok := spec.Source.Next(); !ok {
					return res, fmt.Errorf("engine: stream source exhausted at job %d while replaying a frontier of %d", i, frontier)
				}
			}
			res.Restored = frontier
			res.Committed = frontier
			spec.Reg.Counter("engine.jobs_restored").Add(int64(frontier))
			frontierGauge.Set(float64(frontier))
			spec.Progress.Add(int64(frontier))
		}
	}

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	ex := newExecutor(spec.Seed, spec.Failure, spec.Reg)
	runStart := time.Now()

	type dispatched struct {
		i   int
		job Job
	}
	type outcome struct {
		i        int
		name     string
		jr       JobResult
		verdict  jobVerdict
		attempts int
		err      error
	}
	// resCh holds every possible in-flight outcome (in-flight jobs never
	// exceed the window), so workers never block delivering one and the
	// coordinator can never deadlock against a full pool.
	jobsCh := make(chan dispatched)
	resCh := make(chan outcome, window)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Source per worker, reinitialized per attempt; jit is
			// backoff-jitter scratch that never touches job substreams.
			var src, jit rng.Source
			for d := range jobsCh {
				jr, attempts, verdict, jerr := ex.runJob(jobCtx, d.i, &d.job, &src, &jit)
				resCh <- outcome{i: d.i, name: d.job.Name, jr: jr, verdict: verdict, attempts: attempts, err: jerr}
			}
		}()
	}

	// Single-goroutine coordinator: pulls jobs off the source, keeps at
	// most `window` indices between the commit frontier and the dispatch
	// head, and folds results into the sink in strict index order via
	// the pending park.
	var (
		next     = frontier // next index to dispatch
		inflight = 0
		pending  = make(map[int][]byte, window)
		stopped  = false
		jobErr   error
		fresh    = 0
	)
	fail := func(err error) {
		if jobErr == nil {
			jobErr = err
			cancel()
		}
	}
	// snapshot persists the frontier; the sink state is materialized
	// only when the writer would actually write (it must be re-encoded
	// at every frontier it is persisted at, unlike block payloads).
	snapshot := func(final bool) {
		if writer == nil || frontier == 0 {
			return
		}
		if !final && !writer.Due() {
			return
		}
		state, serr := spec.Sink.State()
		if serr != nil {
			fail(fmt.Errorf("engine: serializing stream sink at frontier %d: %w", frontier, serr))
			return
		}
		writer.CommitStream(int64(frontier), state)
	}
	commit := func(o *outcome) {
		pending[o.i] = o.jr.Payload
		// Fold the contiguous prefix. The stop rule is evaluated after
		// every fold, so the run stops at the exact frontier the sink
		// asked for, regardless of arrival order.
		for !stopped && jobErr == nil {
			payload, ok := pending[frontier]
			if !ok {
				break
			}
			delete(pending, frontier)
			stop, serr := spec.Sink.Commit(frontier, payload)
			if serr != nil {
				fail(fmt.Errorf("engine: stream sink rejected job %d: %w", frontier, serr))
				return
			}
			frontier++
			fresh++
			doneCtr.Inc()
			frontierGauge.Set(float64(frontier))
			spec.Progress.Add(1)
			if stop {
				stopped = true
				cancel() // abandon in-flight work; those results are discarded
				return
			}
			snapshot(false)
		}
	}
	handle := func(o *outcome) {
		inflight--
		switch o.verdict {
		case jobDrained:
			// Cancelled at a job boundary: unrecorded, resumable.
		case jobDone:
			if jobErr == nil && !stopped {
				commit(o)
			}
		default: // jobFailed, jobFabricated — streaming has no keep-going
			fail(wrapJobErr(o.i, o.name, o.attempts, o.err))
		}
	}

	exhausted := false
	var staged *dispatched
	for {
		if jobCtx.Err() != nil {
			staged = nil // never dispatch into a cancelled run
		}
		if staged == nil && !stopped && !exhausted && jobErr == nil && jobCtx.Err() == nil && next-frontier < window {
			if spec.MaxJobs > 0 && next >= spec.MaxJobs {
				exhausted = true
			} else if job, ok := spec.Source.Next(); ok {
				staged = &dispatched{i: next, job: job}
			} else {
				exhausted = true
			}
		}
		if staged != nil {
			select {
			case jobsCh <- *staged:
				staged = nil
				next++
				inflight++
			case o := <-resCh:
				handle(&o)
			case <-jobCtx.Done():
				// Loop around; the staged job is dropped above.
			}
			continue
		}
		if inflight == 0 {
			break
		}
		o := <-resCh
		handle(&o)
	}
	close(jobsCh)
	wg.Wait()

	res.Committed = frontier
	res.Stopped = stopped
	res.Exhausted = exhausted && !stopped && jobErr == nil && ctx.Err() == nil
	if spec.Reg != nil {
		if elapsed := time.Since(runStart).Seconds(); elapsed > 0 {
			spec.Reg.Gauge("engine.jobs_per_sec").Set(float64(fresh) / elapsed)
		}
	}

	if writer != nil {
		// The final snapshot is flushed on every path — interrupted,
		// stopped, even failed — because the committed prefix is worth
		// keeping; and the writer's verdict is surfaced on every path,
		// so an exit advertising a resumable state cannot be hiding a
		// dead disk.
		snapshot(true)
		if ferr := writer.Flush(); ferr != nil {
			serr := &SnapshotError{Err: ferr}
			if jobErr == nil {
				jobErr = serr
			} else {
				jobErr = errors.Join(jobErr, serr)
			}
		}
		if jobErr == nil && ctx.Err() == nil && (stopped || res.Exhausted) {
			// The run reached its natural end: the snapshots have served
			// their purpose, and leaving them around would only invite a
			// stale resume later.
			if rerr := ckpt.RemoveGenerations(spec.Checkpoint.Path); rerr != nil {
				fmt.Fprintf(logw, "checkpoint: completed but could not remove %s: %v\n", spec.Checkpoint.Path, rerr)
			}
		}
	}
	if jobErr != nil {
		return res, jobErr
	}
	return res, ctx.Err()
}

// loadResumableStream returns the newest usable stream snapshot
// generation for this run — the head, or the rotated previous
// generation when the head is missing, corrupt, or belongs to a
// different run — logging every fallback. nil means no generation is
// usable and the run starts fresh.
func loadResumableStream(logw io.Writer, path string, fingerprint, seed uint64) *ckpt.State {
	for _, p := range []string{path, ckpt.PrevGeneration(path)} {
		loaded, lerr := ckpt.Load(p)
		switch {
		case errors.Is(lerr, os.ErrNotExist):
			continue
		case lerr != nil:
			fmt.Fprintf(logw, "resume: snapshot unusable at %s (%v)\n", p, lerr)
			continue
		}
		if cerr := loaded.CheckStream(fingerprint, seed); cerr != nil {
			fmt.Fprintf(logw, "resume: snapshot at %s does not match this run (%v)\n", p, cerr)
			continue
		}
		fmt.Fprintf(logw, "resume: restoring stream frontier %d from %s\n", loaded.Frontier(), p)
		return loaded
	}
	fmt.Fprintf(logw, "resume: no usable snapshot at %s; starting fresh\n", path)
	return nil
}
