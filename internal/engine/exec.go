package engine

import (
	"context"
	"fmt"
	"time"

	"reskit/internal/obs"
	"reskit/internal/rng"
)

// jobVerdict classifies how one job left the attempt loop.
type jobVerdict int

const (
	// jobDone: the attempt succeeded and the result is valid.
	jobDone jobVerdict = iota
	// jobDrained: the run was cancelled at a job or backoff boundary;
	// the job is unrecorded and resumable.
	jobDrained
	// jobFailed: the retry budget is exhausted. Run's keep-going mode
	// may record it and continue; every other path aborts the run.
	jobFailed
	// jobFabricated: the job invented a context error while both the
	// run and its own deadline were live — a programming bug, not a
	// transient fault. Never retried, never kept-going.
	jobFabricated
)

// executor bundles the per-run pieces every worker shares — the
// reproducibility contract (seed), the failure policy, and the attempt
// instruments — so the fixed-grid Run and the streaming RunStream drive
// jobs through one identical attempt loop.
type executor struct {
	seed       uint64
	pol        Failure
	nsPerJob   *obs.Quantiles
	retryCtr   *obs.Counter
	timeoutCtr *obs.Counter
}

// newExecutor binds an executor for the run's policy on reg (nil reg
// leaves the instruments disabled).
func newExecutor(seed uint64, pol Failure, reg *obs.Registry) *executor {
	return &executor{
		seed:       seed,
		pol:        pol,
		nsPerJob:   reg.Quantiles("engine.ns_per_job"),
		retryCtr:   reg.Counter("engine.job_retries"),
		timeoutCtr: reg.Counter("engine.job_timeouts"),
	}
}

// runJob drives one job to its policy verdict on a worker's scratch
// sources: every attempt restarts the job substream from scratch (so a
// retried job's payload is the same pure function of (seed, stream) as
// an undisturbed one), attempts run under the per-attempt deadline, and
// retries wait the deterministic jittered backoff. attempts is the
// attempt count at the verdict; err is the terminal job error for the
// failed verdicts.
func (e *executor) runJob(ctx context.Context, i int, job *Job, src, jit *rng.Source) (jr JobResult, attempts int, verdict jobVerdict, err error) {
	for attempt := 1; ; attempt++ {
		src.Reinit(e.seed, job.Stream)
		var jobStart time.Time
		if e.nsPerJob != nil {
			jobStart = time.Now()
		}
		jerr, timedOut := runAttempt(ctx, job, src, e.pol.JobTimeout, &jr)
		if e.nsPerJob != nil {
			e.nsPerJob.Observe(float64(time.Since(jobStart)))
		}
		if jerr == nil {
			return jr, attempt, jobDone, nil
		}
		if isContextErr(jerr) && ctx.Err() != nil {
			return jr, attempt, jobDrained, nil
		}
		if timedOut {
			e.timeoutCtr.Inc()
			jerr = fmt.Errorf("attempt deadline %v exceeded: %w", e.pol.JobTimeout, jerr)
		}
		fabricated := isContextErr(jerr) && !timedOut
		if !fabricated && attempt <= e.pol.Retries {
			e.retryCtr.Inc()
			if !sleepBackoff(ctx, e.pol, e.seed, i, attempt, jit) {
				return jr, attempt, jobDrained, nil
			}
			continue
		}
		if fabricated {
			return jr, attempt, jobFabricated, jerr
		}
		return jr, attempt, jobFailed, jerr
	}
}

// wrapJobErr renders a permanent job failure the way the engine reports
// it: the attempt count when retries were spent, then the job identity.
func wrapJobErr(i int, name string, attempts int, err error) error {
	if attempts > 1 {
		err = fmt.Errorf("after %d attempts: %w", attempts, err)
	}
	return fmt.Errorf("engine: job %d (%s): %w", i, name, err)
}
