package engine

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"reskit/internal/ckpt"
	"reskit/internal/rng"
)

// FuzzResumeSnapshot feeds arbitrary bytes to the engine's resume path
// as the on-disk snapshot. Whatever the file contains — garbage, a
// truncated snapshot, a forged one with hostile geometry or payloads —
// the engine must not panic, must fall back to a fresh run (or abort
// with a validation error) rather than trust bad payloads, and any run
// that does complete must reproduce the reference payloads exactly.
func FuzzResumeSnapshot(f *testing.F) {
	const n = 4
	ref := make([][]byte, n)
	for i := range ref {
		ref[i] = binary.LittleEndian.AppendUint64(nil, rng.NewStream(42, uint64(i)).Uint64())
	}

	f.Add([]byte{})
	f.Add([]byte("not a snapshot"))
	good := ckpt.New(ckpt.KindJobs, 7, 42, n, 1)
	good.Blocks[0] = ref[0]
	good.Blocks[2] = ref[2]
	f.Add(good.Encode())
	forged := ckpt.New(ckpt.KindJobs, 7, 42, n, 1)
	forged.Blocks[1] = []byte("wrong size payload")
	f.Add(forged.Encode())
	wrongKind := ckpt.New(ckpt.KindCampaign, 7, 42, n, 1)
	f.Add(wrongKind.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		spec := Spec{Seed: 42, Fingerprint: 7, Workers: 2}
		for i := 0; i < n; i++ {
			i := i
			spec.Jobs = append(spec.Jobs, Job{
				Name:   fmt.Sprintf("job%d", i),
				Stream: uint64(i),
				Run: func(ctx context.Context, src *rng.Source) (JobResult, error) {
					return JobResult{Payload: binary.LittleEndian.AppendUint64(nil, src.Uint64())}, nil
				},
			})
		}
		spec.Checkpoint = Checkpoint{Path: path, Resume: true}
		spec.Check = func(job int, payload []byte) error {
			if len(payload) != 8 {
				return fmt.Errorf("payload %d bytes, want 8", len(payload))
			}
			return nil
		}
		res, err := Run(context.Background(), spec)
		if err != nil {
			// The only acceptable failure is restore validation refusing a
			// forged payload; the engine never runs jobs before that.
			if res.Fresh != 0 {
				t.Fatalf("jobs ran despite restore failure: %v", err)
			}
			return
		}
		if res.Done() != n {
			t.Fatalf("clean run finished %d/%d jobs", res.Done(), n)
		}
		for i := range ref {
			if !bytes.Equal(res.Payloads[i], ref[i]) {
				t.Fatalf("payload %d differs after resume from fuzzed snapshot", i)
			}
		}
	})
}

// FuzzParseFailure hammers the retry/backoff policy parser with
// arbitrary specs: it must never panic, every accepted spec must
// validate, and the canonical String rendering must reparse to the same
// policy (a stable round trip keeps flag echoing and config files
// honest).
func FuzzParseFailure(f *testing.F) {
	f.Add("")
	f.Add("retries=3")
	f.Add("retries=3,backoff=50ms,max-backoff=5s,timeout=1m,keep-going")
	f.Add("keep-going,retries=0")
	f.Add("retries=-1")
	f.Add("backoff=10s,max-backoff=1s")
	f.Add("retries=1,retries=2")
	f.Add("timeout=,")
	f.Add("  keep-going  ,  retries=7  ")

	f.Fuzz(func(t *testing.T, spec string) {
		pol, err := ParseFailure(spec)
		if err != nil {
			return
		}
		if verr := pol.validate(); verr != nil {
			t.Fatalf("ParseFailure(%q) accepted an invalid policy %+v: %v", spec, pol, verr)
		}
		rendered := pol.String()
		back, err := ParseFailure(rendered)
		if err != nil {
			t.Fatalf("String round trip: ParseFailure(%q) = %v", rendered, err)
		}
		if back != pol {
			t.Fatalf("round trip drift: %q -> %+v -> %q -> %+v", spec, pol, rendered, back)
		}
	})
}
