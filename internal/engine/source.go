package engine

// JobSource is a lazy, possibly unbounded stream of jobs — the
// generalization of Spec.Jobs that RunStream drains. The engine calls
// Next from a single goroutine, in commit-index order (the i-th value
// returned is job i), so implementations need no locking and may derive
// each job from an internal counter. A source must be deterministic:
// resuming a run replays it from the start and expects the same jobs in
// the same order.
type JobSource interface {
	// Next returns the next job and true, or a zero Job and false once
	// the source is exhausted. After returning false, every later call
	// must return false too.
	Next() (Job, bool)
}

// SliceSource adapts a fixed job slice to a JobSource — the batch grid
// as a special case of the stream.
type SliceSource struct {
	jobs []Job
	next int
}

// NewSliceSource returns a source draining jobs in slice order.
func NewSliceSource(jobs []Job) *SliceSource { return &SliceSource{jobs: jobs} }

// Next implements JobSource.
func (s *SliceSource) Next() (Job, bool) {
	if s.next >= len(s.jobs) {
		return Job{}, false
	}
	j := s.jobs[s.next]
	s.next++
	return j, true
}

// SourceFunc adapts a function to a JobSource.
type SourceFunc func() (Job, bool)

// Next implements JobSource.
func (f SourceFunc) Next() (Job, bool) { return f() }
