// Package rng provides the deterministic pseudo-random machinery used by
// the Monte-Carlo side of the reservation-checkpointing library: a
// xoshiro256++ generator seeded through SplitMix64, cheap independent
// substreams for parallel simulation workers, and from-scratch samplers
// for the Normal, Exponential, Gamma and Poisson laws (stdlib-only, no
// gonum).
//
// Every simulation in this repository is reproducible: the same
// (seed, stream) pair always yields the same variate sequence, and
// parallel Monte-Carlo runs partition work by stream so the aggregate
// result does not depend on scheduling.
package rng

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256++ pseudo-random generator. It is NOT safe for
// concurrent use; give each goroutine its own Source via NewStream.
type Source struct {
	s [4]uint64

	// spare caches the second variate of the polar Normal method.
	spare    float64
	hasSpare bool
}

// splitMix64 advances the SplitMix64 state and returns the next value.
// It is used only for seeding, per Blackman & Vigna's recommendation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		src.s[i] = splitMix64(&state)
	}
	// A xoshiro state of all zeros is invalid; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// NewStream returns the stream-th independent substream of the given
// seed. It is the supported way to hand one generator to each of many
// parallel simulation workers.
func NewStream(seed, stream uint64) *Source {
	var src Source
	src.Reinit(seed, stream)
	return &src
}

// Reinit resets r in place to the exact state NewStream(seed, stream)
// would return, clearing the cached polar-method variate. Workers that
// process many blocks reuse one Source this way instead of allocating a
// fresh generator per block.
func (r *Source) Reinit(seed, stream uint64) {
	// Mix the stream index into the seed with a distinct SplitMix64 pass
	// so streams of the same seed are decorrelated.
	state := seed ^ (stream+1)*0xd1342543de82ef95
	mixed := splitMix64(&state)
	for i := range r.s {
		r.s[i] = splitMix64(&mixed)
	}
	// A xoshiro state of all zeros is invalid; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.spare = 0
	r.hasSpare = false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in the open interval (0, 1),
// suitable for inverse-CDF transforms that reject the endpoints.
func (r *Source) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a variate from N(0, 1) via the Marsaglia polar method,
// caching the paired variate.
func (r *Source) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		factor := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * factor
		r.hasSpare = true
		return u * factor
	}
}

// NormalMS returns a variate from N(mu, sigma^2).
func (r *Source) NormalMS(mu, sigma float64) float64 {
	return mu + sigma*r.Normal()
}

// Exponential returns a variate from the Exponential law with rate
// lambda > 0 (mean 1/lambda), via inversion.
func (r *Source) Exponential(lambda float64) float64 {
	return -math.Log(r.Float64Open()) / lambda
}

// Gamma returns a variate from Gamma(shape k, scale theta) using the
// Marsaglia–Tsang squeeze method, with the standard k<1 boosting step.
func (r *Source) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
		u := r.Float64Open()
		return r.Gamma(k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Poisson returns a variate from the Poisson law with mean lambda >= 0.
// Small means use Knuth multiplication; large means use Atkinson's
// logistic-envelope rejection, which has bounded expected cost for any
// lambda.
func (r *Source) Poisson(lambda float64) int {
	switch {
	case lambda < 0 || math.IsNaN(lambda):
		panic("rng: Poisson requires lambda >= 0")
	case lambda == 0:
		return 0
	case lambda < 30:
		return r.poissonKnuth(lambda)
	default:
		return r.poissonAtkinson(lambda)
	}
}

func (r *Source) poissonKnuth(lambda float64) int {
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

func (r *Source) poissonAtkinson(lambda float64) int {
	c := 0.767 - 3.36/lambda
	beta := math.Pi / math.Sqrt(3*lambda)
	alpha := beta * lambda
	k := math.Log(c) - lambda - math.Log(beta)
	for {
		u := r.Float64Open()
		x := (alpha - math.Log((1-u)/u)) / beta
		n := int(math.Floor(x + 0.5))
		if n < 0 {
			continue
		}
		v := r.Float64Open()
		y := alpha - beta*x
		onePlus := 1 + math.Exp(y)
		lhs := y + math.Log(v/(onePlus*onePlus))
		lg, _ := math.Lgamma(float64(n) + 1)
		rhs := k + float64(n)*math.Log(lambda) - lg
		if lhs <= rhs {
			return n
		}
	}
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalMS(mu, sigma))
}

// Weibull returns a variate from the Weibull law with shape k and scale
// lambda, via inversion.
func (r *Source) Weibull(k, lambda float64) float64 {
	return lambda * math.Pow(-math.Log(r.Float64Open()), 1/k)
}
