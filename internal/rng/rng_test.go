package rng

import (
	"math"
	"testing"
)

// moments computes the sample mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var m, m2 float64
	for i := 1; i <= n; i++ {
		x := draw()
		d := x - m
		m += d / float64(i)
		m2 += d * (x - m)
	}
	return m, m2 / float64(n-1)
}

func TestDeterminismAndStreams(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d", same)
	}
	s0 := NewStream(7, 0)
	s1 := NewStream(7, 1)
	if s0.Uint64() == s1.Uint64() {
		t.Fatalf("substreams identical")
	}
	// Streams are themselves reproducible.
	x := NewStream(7, 3).Uint64()
	y := NewStream(7, 3).Uint64()
	if x != y {
		t.Fatalf("substream not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", u)
		}
	}
	for i := 0; i < 100000; i++ {
		u := r.Float64Open()
		if u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %g", u)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(2)
	mean, v := moments(200000, func() float64 { return r.Uniform(2, 5) })
	if math.Abs(mean-3.5) > 0.01 {
		t.Errorf("uniform mean %g", mean)
	}
	if math.Abs(v-9.0/12) > 0.02 {
		t.Errorf("uniform variance %g", v)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(3)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 9 dof; P(chi2 > 27.9) ~ 0.001.
	if chi2 > 27.9 {
		t.Errorf("Intn chi2 = %g too large; counts %v", chi2, counts)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	mean, v := moments(400000, r.Normal)
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %g", mean)
	}
	if math.Abs(v-1) > 0.02 {
		t.Errorf("normal variance %g", v)
	}
	// Skewness must be near zero; kurtosis near 3. Use simpler check:
	// P(|Z|<1.96) ~ 0.95.
	r = New(5)
	in := 0
	const nDraw = 200000
	for i := 0; i < nDraw; i++ {
		if math.Abs(r.Normal()) < 1.959963984540054 {
			in++
		}
	}
	p := float64(in) / nDraw
	if math.Abs(p-0.95) > 0.005 {
		t.Errorf("normal coverage %g", p)
	}
}

func TestNormalMSMoments(t *testing.T) {
	r := New(6)
	mean, v := moments(300000, func() float64 { return r.NormalMS(10, 2) })
	if math.Abs(mean-10) > 0.02 || math.Abs(v-4) > 0.1 {
		t.Errorf("NormalMS moments: mean %g var %g", mean, v)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(7)
	lambda := 0.5
	mean, v := moments(300000, func() float64 { return r.Exponential(lambda) })
	if math.Abs(mean-2) > 0.03 {
		t.Errorf("exp mean %g", mean)
	}
	if math.Abs(v-4) > 0.15 {
		t.Errorf("exp variance %g", v)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ k, theta float64 }{
		{0.5, 1}, {1, 0.5}, {2.5, 2}, {9, 0.5}, {30, 1},
	}
	for _, c := range cases {
		r := New(8)
		mean, v := moments(300000, func() float64 { return r.Gamma(c.k, c.theta) })
		wantMean := c.k * c.theta
		wantVar := c.k * c.theta * c.theta
		if math.Abs(mean-wantMean) > 0.02*(1+wantMean) {
			t.Errorf("Gamma(%g,%g) mean %g want %g", c.k, c.theta, mean, wantMean)
		}
		if math.Abs(v-wantVar) > 0.05*(1+wantVar) {
			t.Errorf("Gamma(%g,%g) var %g want %g", c.k, c.theta, v, wantVar)
		}
	}
}

func TestGammaPositivity(t *testing.T) {
	r := New(9)
	for i := 0; i < 100000; i++ {
		if r.Gamma(0.3, 2) <= 0 {
			t.Fatalf("gamma variate not positive")
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.3, 3, 12, 29.9, 30, 45, 300} {
		r := New(10)
		mean, v := moments(200000, func() float64 { return float64(r.Poisson(lambda)) })
		if math.Abs(mean-lambda) > 0.03*(1+lambda) {
			t.Errorf("Poisson(%g) mean %g", lambda, mean)
		}
		if math.Abs(v-lambda) > 0.06*(1+lambda) {
			t.Errorf("Poisson(%g) var %g", lambda, v)
		}
	}
	r := New(11)
	if r.Poisson(0) != 0 {
		t.Errorf("Poisson(0) must be 0")
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(12)
	mu, sigma := 0.5, 0.4
	mean, _ := moments(300000, func() float64 { return r.LogNormal(mu, sigma) })
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(mean-want) > 0.02*want {
		t.Errorf("lognormal mean %g want %g", mean, want)
	}
}

func TestWeibullMoments(t *testing.T) {
	r := New(13)
	k, lambda := 2.0, 3.0
	mean, _ := moments(300000, func() float64 { return r.Weibull(k, lambda) })
	want := lambda * math.Gamma(1+1/k)
	if math.Abs(mean-want) > 0.02*want {
		t.Errorf("weibull mean %g want %g", mean, want)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(14)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate after shuffle: %v", xs)
		}
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal()
	}
	_ = sink
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Gamma(2.5, 1.5)
	}
	_ = sink
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(300)
	}
	_ = sink
}

// TestReinitMatchesNewStream pins the zero-alloc reuse path: a recycled
// Source reinitialized in place must replay exactly the sequence of a
// freshly allocated substream, including after the polar Normal cache
// has been primed.
func TestReinitMatchesNewStream(t *testing.T) {
	recycled := New(987)
	recycled.Normal() // prime hasSpare so Reinit must clear it
	for stream := uint64(0); stream < 8; stream++ {
		fresh := NewStream(42, stream)
		recycled.Reinit(42, stream)
		for i := 0; i < 64; i++ {
			a, b := fresh.Uint64(), recycled.Uint64()
			if a != b {
				t.Fatalf("stream %d draw %d: fresh %x, reinit %x", stream, i, a, b)
			}
		}
		// Interleave Normal draws so spare-cache state is exercised too.
		if fresh.Normal() != recycled.Normal() || fresh.Normal() != recycled.Normal() {
			t.Fatalf("stream %d: Normal sequences diverge after Reinit", stream)
		}
	}
}
