package planner

import (
	"math"
	"testing"

	"reskit/internal/dist"
)

func plannerLaws() (task, ckpt dist.Continuous) {
	return dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)),
		dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
}

func TestPlanReturnsSortedFrontier(t *testing.T) {
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork:  300,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Candidates: []float64{15, 30, 60, 120},
		Trials:     50,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 4 {
		t.Fatalf("got %d options", len(opts))
	}
	for i := 1; i < len(opts); i++ {
		if opts[i-1].WorkPerCost < opts[i].WorkPerCost {
			t.Errorf("not sorted by score: %g then %g", opts[i-1].WorkPerCost, opts[i].WorkPerCost)
		}
	}
	for _, o := range opts {
		if !o.Completed {
			t.Errorf("R=%g: campaign incomplete", o.R)
		}
		if o.Utilization <= 0 || o.Utilization > 1 {
			t.Errorf("R=%g: utilization %g", o.R, o.Utilization)
		}
		if o.Cost <= 0 || o.Reservations < 1 {
			t.Errorf("R=%g: cost %g reservations %g", o.R, o.Cost, o.Reservations)
		}
	}
}

func TestPlanLongerReservationsAmortizeFixedCosts(t *testing.T) {
	// With a large per-reservation cost, longer reservations must win.
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork:  300,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Cost:       CostModel{PerReservation: 100},
		Candidates: []float64{15, 120},
		Trials:     50,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].R != 120 {
		t.Errorf("R=120 should win under heavy per-reservation cost; frontier: %+v", opts)
	}
}

func TestPlanShortReservationsLoseToOverheads(t *testing.T) {
	// A reservation barely longer than recovery + one task + checkpoint
	// must score worse than a comfortable one even with no wait cost.
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork:  200,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Candidates: []float64{11, 60},
		Trials:     50,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].R != 60 {
		t.Errorf("R=60 should beat R=11: %+v", opts)
	}
}

func TestPlanDefaultSweep(t *testing.T) {
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork: 100,
		Task:      task,
		Ckpt:      ckpt,
		Trials:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4x..64x mean(3): 12, 24, 48, 96, 192.
	if len(opts) != 5 {
		t.Errorf("default sweep size %d", len(opts))
	}
}

func TestPlanPayPerUse(t *testing.T) {
	task, ckpt := plannerLaws()
	base := Config{
		TotalWork:  150,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{60},
		Trials:     40,
		Seed:       9,
	}
	perRes, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	payUse := base
	payUse.Cost = CostModel{PayPerUse: true}
	ppu, err := Plan(payUse)
	if err != nil {
		t.Fatal(err)
	}
	// Billing only the time used can never cost more than billing the
	// whole reservation.
	if ppu[0].Cost > perRes[0].Cost+1e-9 {
		t.Errorf("pay-per-use %g > pay-per-reservation %g", ppu[0].Cost, perRes[0].Cost)
	}
}

func TestPlanDeterminism(t *testing.T) {
	task, ckpt := plannerLaws()
	cfg := Config{
		TotalWork:  100,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{30, 60},
		Trials:     30,
		Seed:       11,
	}
	a, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("option %d differs across identical runs", i)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	task, ckpt := plannerLaws()
	cases := []Config{
		{TotalWork: 0, Task: task, Ckpt: ckpt},
		{TotalWork: 10, Ckpt: ckpt},
		{TotalWork: 10, Task: task},
		{TotalWork: 10, Task: task, Ckpt: ckpt, Recovery: -1},
		{TotalWork: 10, Task: task, Ckpt: ckpt, Recovery: 5, Candidates: []float64{4}},
	}
	for i, cfg := range cases {
		if _, err := Plan(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
