package planner

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"reskit/internal/dist"
	"reskit/internal/obs"
	"reskit/internal/sim"
)

func plannerLaws() (task, ckpt dist.Continuous) {
	return dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)),
		dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
}

func TestPlanReturnsSortedFrontier(t *testing.T) {
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork:  300,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Candidates: []float64{15, 30, 60, 120},
		Trials:     50,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 4 {
		t.Fatalf("got %d options", len(opts))
	}
	for i := 1; i < len(opts); i++ {
		if opts[i-1].WorkPerCost < opts[i].WorkPerCost {
			t.Errorf("not sorted by score: %g then %g", opts[i-1].WorkPerCost, opts[i].WorkPerCost)
		}
	}
	for _, o := range opts {
		if !o.Completed {
			t.Errorf("R=%g: campaign incomplete", o.R)
		}
		if o.Utilization <= 0 || o.Utilization > 1 {
			t.Errorf("R=%g: utilization %g", o.R, o.Utilization)
		}
		if o.Cost <= 0 || o.Reservations < 1 {
			t.Errorf("R=%g: cost %g reservations %g", o.R, o.Cost, o.Reservations)
		}
	}
}

func TestPlanLongerReservationsAmortizeFixedCosts(t *testing.T) {
	// With a large per-reservation cost, longer reservations must win.
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork:  300,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Cost:       CostModel{PerReservation: 100},
		Candidates: []float64{15, 120},
		Trials:     50,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].R != 120 {
		t.Errorf("R=120 should win under heavy per-reservation cost; frontier: %+v", opts)
	}
}

func TestPlanShortReservationsLoseToOverheads(t *testing.T) {
	// A reservation barely longer than recovery + one task + checkpoint
	// must score worse than a comfortable one even with no wait cost.
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork:  200,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Candidates: []float64{11, 60},
		Trials:     50,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].R != 60 {
		t.Errorf("R=60 should beat R=11: %+v", opts)
	}
}

func TestPlanDefaultSweep(t *testing.T) {
	task, ckpt := plannerLaws()
	opts, err := Plan(Config{
		TotalWork: 100,
		Task:      task,
		Ckpt:      ckpt,
		Trials:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4x..64x mean(3): 12, 24, 48, 96, 192.
	if len(opts) != 5 {
		t.Errorf("default sweep size %d", len(opts))
	}
}

func TestPlanPayPerUse(t *testing.T) {
	task, ckpt := plannerLaws()
	base := Config{
		TotalWork:  150,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{60},
		Trials:     40,
		Seed:       9,
	}
	perRes, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	payUse := base
	payUse.Cost = CostModel{PayPerUse: true}
	ppu, err := Plan(payUse)
	if err != nil {
		t.Fatal(err)
	}
	// Billing only the time used can never cost more than billing the
	// whole reservation.
	if ppu[0].Cost > perRes[0].Cost+1e-9 {
		t.Errorf("pay-per-use %g > pay-per-reservation %g", ppu[0].Cost, perRes[0].Cost)
	}
}

func TestPlanDeterminism(t *testing.T) {
	task, ckpt := plannerLaws()
	cfg := Config{
		TotalWork:  100,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{30, 60},
		Trials:     30,
		Seed:       11,
	}
	a, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("option %d differs across identical runs", i)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	task, ckpt := plannerLaws()
	cases := []Config{
		{TotalWork: 0, Task: task, Ckpt: ckpt},
		{TotalWork: 10, Ckpt: ckpt},
		{TotalWork: 10, Task: task},
		{TotalWork: 10, Task: task, Ckpt: ckpt, Recovery: -1},
		{TotalWork: 10, Task: task, Ckpt: ckpt, Recovery: 5, Candidates: []float64{4}},
	}
	for i, cfg := range cases {
		if _, err := Plan(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestPlanWorkerCountInvariance is the engine-routing contract: the
// frontier must be bit-identical whether the trials run on one worker
// or many.
func TestPlanWorkerCountInvariance(t *testing.T) {
	task, ckpt := plannerLaws()
	cfg := Config{
		TotalWork:  120,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Candidates: []float64{20, 45, 90},
		Trials:     40,
		Seed:       13,
	}
	var frontiers [][]Option
	for _, workers := range []int{1, 2, 7} {
		c := cfg
		c.Workers = workers
		opts, err := Plan(c)
		if err != nil {
			t.Fatal(err)
		}
		frontiers = append(frontiers, opts)
	}
	for w := 1; w < len(frontiers); w++ {
		for i := range frontiers[0] {
			if frontiers[w][i] != frontiers[0][i] {
				t.Errorf("option %d differs between 1 worker and variant %d:\n%+v\n%+v",
					i, w, frontiers[0][i], frontiers[w][i])
			}
		}
	}
}

// TestPlanSeedZeroIsARealSeed pins the fix for the silent 0 -> 1 remap:
// seeds 0 and 1 must produce different plans.
func TestPlanSeedZeroIsARealSeed(t *testing.T) {
	task, ckpt := plannerLaws()
	cfg := Config{
		TotalWork:  100,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{30},
		Trials:     40,
	}
	zero := cfg
	zero.Seed = 0
	one := cfg
	one.Seed = 1
	a, err := Plan(zero)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(one)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == b[0] {
		t.Errorf("seed 0 and seed 1 produced identical options: %+v", a[0])
	}
	// And seed 0 is itself reproducible.
	c, err := Plan(zero)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != c[0] {
		t.Errorf("seed 0 not deterministic: %+v vs %+v", a[0], c[0])
	}
}

// TestPlanContextCancellation: an already-cancelled context must stop
// the sweep with ctx.Err, not run it to completion.
func TestPlanContextCancellation(t *testing.T) {
	task, ckpt := plannerLaws()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PlanContext(ctx, Config{
		TotalWork:  500,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{30, 60, 90},
		Trials:     200,
		Seed:       1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled plan returned %v, want context.Canceled", err)
	}
}

// TestPlanSubstreamsAreSalted: with the old seed+i*1000 arithmetic,
// candidate i of a seed-S plan reused the generator states of candidate
// i-1 of a seed-(S+1000) plan. Distinct (candidate, trial) pairs now
// map to distinct substreams of one seed, so the two sweeps share
// nothing.
func TestPlanSubstreamsAreSalted(t *testing.T) {
	task, ckpt := plannerLaws()
	base := Config{
		TotalWork:  100,
		Task:       task,
		Ckpt:       ckpt,
		Candidates: []float64{30, 30}, // identical candidates...
		Trials:     40,
		Seed:       21,
	}
	opts, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	// ...must still draw independent trials: identical R evaluated on
	// different substreams gives (almost surely) different sample means.
	if opts[0].Cost == opts[1].Cost && opts[0].Utilization == opts[1].Utilization {
		t.Errorf("two copies of the same candidate returned identical Monte-Carlo means %+v — substreams are colliding", opts[0])
	}
}

func TestTrialPayloadRoundTrip(t *testing.T) {
	res := sim.CampaignResult{Reservations: 7, Completed: true, TimeReserved: 210, TimeUsed: 180}
	p := encodeTrial(123.5, res)
	cost, reservations, util, completed, err := decodeTrial(p)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 123.5 || reservations != 7 || util != res.Utilization() || !completed {
		t.Fatalf("round trip: %v %v %v %v", cost, reservations, util, completed)
	}
	if _, _, _, _, err := decodeTrial(p[:10]); err == nil {
		t.Error("short payload accepted")
	}
}

// TestPlanInstrumentation: a registry plugged into the sweep records
// the aggregation counters, the progress sink ticks once per job, and
// the winning candidate lands in the gauges.
func TestPlanInstrumentation(t *testing.T) {
	task, ckpt := plannerLaws()
	reg := obs.NewRegistry()
	prog := obs.NewProgress(io.Discard, "trials", 3*20, time.Hour)
	opts, err := Plan(Config{
		TotalWork:  300,
		Task:       task,
		Ckpt:       ckpt,
		Recovery:   1.5,
		Candidates: []float64{15, 30, 60},
		Trials:     20,
		Seed:       7,
		Reg:        reg,
		Progress:   prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("planner.candidates").Value(); got != 3 {
		t.Errorf("planner.candidates = %d, want 3", got)
	}
	if got := reg.Counter("planner.trials").Value(); got != 60 {
		t.Errorf("planner.trials = %d, want 60", got)
	}
	if got := prog.Done(); got != 60 {
		t.Errorf("progress ticks = %d, want 60", got)
	}
	if got := reg.Gauge("planner.best_r").Value(); got != opts[0].R {
		t.Errorf("planner.best_r = %g, want %g", got, opts[0].R)
	}
	// The engine instruments ride along on the same registry.
	if got := reg.Counter("engine.jobs_done").Value(); got != 60 {
		t.Errorf("engine.jobs_done = %d, want 60", got)
	}
}
