// Package planner answers the question one level above the paper: given
// the task and checkpoint laws, the recovery cost and the platform's
// constraints, which reservation length R should the user request in the
// first place? The paper treats R as fixed ("R depends upon many
// parameters provided both by the user … and the resource provider",
// Section 2); planner makes that trade-off quantitative by sweeping
// candidate lengths, running a deterministic Monte-Carlo campaign for
// each, and scoring them under a configurable cost model.
//
// Longer reservations amortize the recovery and the final checkpoint
// over more work but are typically harder to schedule (modeled as a
// per-reservation wait cost) and riskier to lose; shorter ones bound the
// loss but pay the fixed costs more often. The planner exposes the whole
// frontier so the trade-off is visible, not just the winner.
package planner

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/engine"
	"reskit/internal/obs"
	"reskit/internal/rng"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

// CostModel prices a campaign.
type CostModel struct {
	// PerReservation is the fixed cost of obtaining one reservation
	// (queue wait, scheduling overhead), in the same unit as machine
	// time.
	PerReservation float64
	// PayPerUse, when true, bills TimeUsed instead of TimeReserved.
	PayPerUse bool
}

// Cost prices one campaign result.
func (m CostModel) Cost(c sim.CampaignResult) float64 {
	base := c.TimeReserved
	if m.PayPerUse {
		base = c.TimeUsed
	}
	return base + m.PerReservation*float64(c.Reservations)
}

// Config describes a planning problem.
type Config struct {
	TotalWork float64         // work the application must commit
	Task      dist.Continuous // IID task-duration law
	Ckpt      dist.Continuous // checkpoint-duration law
	Recovery  float64         // recovery cost per reservation after the first
	Cost      CostModel       // campaign pricing

	// Candidates are the reservation lengths to evaluate. Empty selects
	// a geometric sweep between 4x and 64x the mean task duration.
	Candidates []float64

	// Trials is the Monte-Carlo campaigns per candidate (default 200).
	Trials int
	// Seed fixes the experiment. Every value — including 0 — is a
	// distinct seed, matching the sim/engine convention; trial t of
	// candidate i draws the salted substream (i<<32 | t), so no two
	// trials anywhere in the sweep share a generator state.
	Seed uint64
	// Workers bounds the evaluation parallelism (<= 0: all CPUs).
	// Results are bit-identical for any worker count.
	Workers int

	// Reg, when non-nil, binds the sweep's engine.* instruments plus
	// the planner.* aggregation counters and gauges (candidates
	// evaluated, trials decoded, incomplete trials, and the winning
	// candidate). A nil registry costs nothing.
	Reg *obs.Registry

	// Progress, when non-nil, is ticked once per (candidate, trial)
	// job as the sweep executes.
	Progress *obs.Progress
}

// Option is one evaluated candidate reservation length.
type Option struct {
	R            float64 // candidate reservation length
	Cost         float64 // mean campaign cost under the cost model
	Reservations float64 // mean reservations to completion
	Utilization  float64 // mean committed work / reserved time
	WorkPerCost  float64 // TotalWork / Cost — the planner's score
	Completed    bool    // every trial completed
}

// Plan evaluates all candidates and returns them sorted by descending
// WorkPerCost (best first). The dynamic strategy of Section 4.3 is used
// inside every reservation. Plan is PlanContext without cancellation.
func Plan(cfg Config) ([]Option, error) {
	return PlanContext(context.Background(), cfg)
}

// PlanContext evaluates all candidates through the run engine: every
// (candidate, trial) pair is one deterministic job on its own salted
// rng substream, dispatched to a worker pool and aggregated in job
// order — so the plan is bit-identical for any worker count, and ctx
// cancels the sweep at the next trial boundary.
func PlanContext(ctx context.Context, cfg Config) ([]Option, error) {
	if !(cfg.TotalWork > 0) {
		return nil, fmt.Errorf("planner: TotalWork must be positive, got %g", cfg.TotalWork)
	}
	if cfg.Task == nil || cfg.Ckpt == nil {
		return nil, fmt.Errorf("planner: Task and Ckpt laws are required")
	}
	if cfg.Recovery < 0 {
		return nil, fmt.Errorf("planner: Recovery must be >= 0, got %g", cfg.Recovery)
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 200
	}
	if trials > maxTrialsPerCandidate {
		return nil, fmt.Errorf("planner: %d trials exceeds the %d per-candidate limit", trials, maxTrialsPerCandidate)
	}
	candidates := cfg.Candidates
	if len(candidates) == 0 {
		mean := cfg.Task.Mean()
		if !(mean > 0) || math.IsInf(mean, 0) {
			return nil, fmt.Errorf("planner: task law must have a positive finite mean for the default sweep")
		}
		for f := 4.0; f <= 64; f *= 2 {
			candidates = append(candidates, f*mean)
		}
	}
	if len(candidates) > maxCandidates {
		return nil, fmt.Errorf("planner: %d candidates exceeds the %d limit", len(candidates), maxCandidates)
	}

	// One job per (candidate, trial). The strategy value is stateless
	// and the Dynamic table build is internally synchronized, so one
	// campaign config per candidate serves every worker.
	jobs := make([]engine.Job, 0, len(candidates)*trials)
	for i, r := range candidates {
		if !(r > cfg.Recovery) {
			return nil, fmt.Errorf("planner: candidate R=%g does not exceed the recovery %g", r, cfg.Recovery)
		}
		dyn := core.NewDynamic(r, cfg.Task, cfg.Ckpt)
		campaign := sim.CampaignConfig{
			Reservation: sim.Config{
				R:        r,
				Recovery: cfg.Recovery,
				Task:     cfg.Task,
				Ckpt:     cfg.Ckpt,
				Strategy: strategy.NewDynamic(dyn),
			},
			TotalWork: cfg.TotalWork,
		}
		for t := 0; t < trials; t++ {
			jobs = append(jobs, engine.Job{
				Name:   fmt.Sprintf("R=%g/trial%d", r, t),
				Stream: uint64(i)<<32 | uint64(t),
				Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
					if err := ctx.Err(); err != nil {
						return engine.JobResult{}, err
					}
					res := sim.RunCampaign(campaign, src)
					return engine.JobResult{Payload: encodeTrial(cfg.Cost.Cost(res), res)}, nil
				},
			})
		}
	}

	eres, err := engine.Run(ctx, engine.Spec{
		Jobs:     jobs,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
		Reg:      cfg.Reg,
		Progress: cfg.Progress,
	})
	if err != nil {
		return nil, err
	}

	// Aggregate payloads in job order: the summation order is fixed, so
	// the means are bit-identical however the jobs were scheduled.
	cfg.Reg.Counter("planner.candidates").Add(int64(len(candidates)))
	incomplete := cfg.Reg.Counter("planner.trials_incomplete")
	opts := make([]Option, 0, len(candidates))
	for i, r := range candidates {
		opt := Option{R: r, Completed: true}
		var sumCost, sumRes, sumUtil float64
		for t := 0; t < trials; t++ {
			cost, reservations, util, completed, derr := decodeTrial(eres.Payloads[i*trials+t])
			if derr != nil {
				return nil, fmt.Errorf("planner: candidate R=%g trial %d: %w", r, t, derr)
			}
			sumCost += cost
			sumRes += reservations
			sumUtil += util
			if !completed {
				opt.Completed = false
				incomplete.Inc()
			}
		}
		opt.Cost = sumCost / float64(trials)
		opt.Reservations = sumRes / float64(trials)
		opt.Utilization = sumUtil / float64(trials)
		if opt.Cost > 0 {
			opt.WorkPerCost = cfg.TotalWork / opt.Cost
		}
		opts = append(opts, opt)
	}
	sort.Slice(opts, func(i, j int) bool { return opts[i].WorkPerCost > opts[j].WorkPerCost })
	cfg.Reg.Counter("planner.trials").Add(int64(len(candidates) * trials))
	if len(opts) > 0 {
		cfg.Reg.Gauge("planner.best_r").Set(opts[0].R)
		cfg.Reg.Gauge("planner.best_work_per_cost").Set(opts[0].WorkPerCost)
	}
	return opts, nil
}

// Substream packing uses 32 bits per axis; the limits keep the packing
// collision-free (and a sweep this large would be absurd anyway).
const (
	maxCandidates         = 1 << 31
	maxTrialsPerCandidate = 1 << 32
)

// trialPayloadLen is three float64 fields plus the completed flag.
const trialPayloadLen = 3*8 + 1

// encodeTrial packs one trial's outcome into an engine payload.
func encodeTrial(cost float64, res sim.CampaignResult) []byte {
	p := make([]byte, 0, trialPayloadLen)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(cost))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(float64(res.Reservations)))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(res.Utilization()))
	if res.Completed {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	return p
}

// decodeTrial unpacks one trial payload.
func decodeTrial(p []byte) (cost, reservations, util float64, completed bool, err error) {
	if len(p) != trialPayloadLen {
		return 0, 0, 0, false, fmt.Errorf("trial payload is %d bytes, want %d", len(p), trialPayloadLen)
	}
	cost = math.Float64frombits(binary.LittleEndian.Uint64(p[0:]))
	reservations = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	util = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
	return cost, reservations, util, p[24] != 0, nil
}
