// Package planner answers the question one level above the paper: given
// the task and checkpoint laws, the recovery cost and the platform's
// constraints, which reservation length R should the user request in the
// first place? The paper treats R as fixed ("R depends upon many
// parameters provided both by the user … and the resource provider",
// Section 2); planner makes that trade-off quantitative by sweeping
// candidate lengths, running a deterministic Monte-Carlo campaign for
// each, and scoring them under a configurable cost model.
//
// Longer reservations amortize the recovery and the final checkpoint
// over more work but are typically harder to schedule (modeled as a
// per-reservation wait cost) and riskier to lose; shorter ones bound the
// loss but pay the fixed costs more often. The planner exposes the whole
// frontier so the trade-off is visible, not just the winner.
package planner

import (
	"fmt"
	"math"
	"sort"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/rng"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

// CostModel prices a campaign.
type CostModel struct {
	// PerReservation is the fixed cost of obtaining one reservation
	// (queue wait, scheduling overhead), in the same unit as machine
	// time.
	PerReservation float64
	// PayPerUse, when true, bills TimeUsed instead of TimeReserved.
	PayPerUse bool
}

// Cost prices one campaign result.
func (m CostModel) Cost(c sim.CampaignResult) float64 {
	base := c.TimeReserved
	if m.PayPerUse {
		base = c.TimeUsed
	}
	return base + m.PerReservation*float64(c.Reservations)
}

// Config describes a planning problem.
type Config struct {
	TotalWork float64         // work the application must commit
	Task      dist.Continuous // IID task-duration law
	Ckpt      dist.Continuous // checkpoint-duration law
	Recovery  float64         // recovery cost per reservation after the first
	Cost      CostModel       // campaign pricing

	// Candidates are the reservation lengths to evaluate. Empty selects
	// a geometric sweep between 4x and 64x the mean task duration.
	Candidates []float64

	// Trials is the Monte-Carlo campaigns per candidate (default 200).
	Trials int
	// Seed fixes the experiment (default 1).
	Seed uint64
}

// Option is one evaluated candidate reservation length.
type Option struct {
	R            float64 // candidate reservation length
	Cost         float64 // mean campaign cost under the cost model
	Reservations float64 // mean reservations to completion
	Utilization  float64 // mean committed work / reserved time
	WorkPerCost  float64 // TotalWork / Cost — the planner's score
	Completed    bool    // every trial completed
}

// Plan evaluates all candidates and returns them sorted by descending
// WorkPerCost (best first). The dynamic strategy of Section 4.3 is used
// inside every reservation.
func Plan(cfg Config) ([]Option, error) {
	if !(cfg.TotalWork > 0) {
		return nil, fmt.Errorf("planner: TotalWork must be positive, got %g", cfg.TotalWork)
	}
	if cfg.Task == nil || cfg.Ckpt == nil {
		return nil, fmt.Errorf("planner: Task and Ckpt laws are required")
	}
	if cfg.Recovery < 0 {
		return nil, fmt.Errorf("planner: Recovery must be >= 0, got %g", cfg.Recovery)
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 200
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	candidates := cfg.Candidates
	if len(candidates) == 0 {
		mean := cfg.Task.Mean()
		if !(mean > 0) || math.IsInf(mean, 0) {
			return nil, fmt.Errorf("planner: task law must have a positive finite mean for the default sweep")
		}
		for f := 4.0; f <= 64; f *= 2 {
			candidates = append(candidates, f*mean)
		}
	}

	opts := make([]Option, 0, len(candidates))
	for i, r := range candidates {
		if !(r > cfg.Recovery) {
			return nil, fmt.Errorf("planner: candidate R=%g does not exceed the recovery %g", r, cfg.Recovery)
		}
		opt, err := evaluate(cfg, r, trials, seed+uint64(i)*1000)
		if err != nil {
			return nil, err
		}
		opts = append(opts, opt)
	}
	sort.Slice(opts, func(i, j int) bool { return opts[i].WorkPerCost > opts[j].WorkPerCost })
	return opts, nil
}

// evaluate runs the Monte-Carlo campaign for one candidate length.
func evaluate(cfg Config, r float64, trials int, seed uint64) (Option, error) {
	dyn := core.NewDynamic(r, cfg.Task, cfg.Ckpt)
	resCfg := sim.Config{
		R:        r,
		Recovery: cfg.Recovery,
		Task:     cfg.Task,
		Ckpt:     cfg.Ckpt,
		Strategy: strategy.NewDynamic(dyn),
	}
	campaign := sim.CampaignConfig{Reservation: resCfg, TotalWork: cfg.TotalWork}

	opt := Option{R: r, Completed: true}
	var sumCost, sumRes, sumUtil float64
	for t := 0; t < trials; t++ {
		res := sim.RunCampaign(campaign, rng.NewStream(seed, uint64(t)))
		sumCost += cfg.Cost.Cost(res)
		sumRes += float64(res.Reservations)
		sumUtil += res.Utilization()
		if !res.Completed {
			opt.Completed = false
		}
	}
	opt.Cost = sumCost / float64(trials)
	opt.Reservations = sumRes / float64(trials)
	opt.Utilization = sumUtil / float64(trials)
	if opt.Cost > 0 {
		opt.WorkPerCost = cfg.TotalWork / opt.Cost
	}
	return opt, nil
}
