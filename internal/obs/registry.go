package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry names and owns a set of instruments. Lookup is get-or-create
// and idempotent: asking twice for the same name returns the same
// instrument, so independent subsystems can bind the same counter.
// Lookups take a mutex (they happen once, at setup); the instruments
// themselves are lock-free. All methods on a nil *Registry return nil
// instruments, which are themselves no-ops — a nil registry disables a
// whole instrumentation tree at zero cost.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	quants   map[string]*Quantiles
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		quants:   make(map[string]*Quantiles),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RemoveGauge drops the named gauge from the registry. Dynamically
// named gauges (one per remote worker, say) must be removed when their
// subject goes away, or registry memory and the exported metric set
// grow without bound. Removing an absent name is a no-op; a previously
// returned instrument keeps working but is no longer exported.
func (r *Registry) RemoveGauge(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gauges, name)
}

// Hist returns the named histogram, creating it with the given layout on
// first use. The layout of an existing histogram is not changed, and
// asking for a different layout under the same name panics — two
// subsystems disagreeing about a metric's shape is a programming error.
func (r *Registry) Hist(name string, lo, hi float64, buckets int) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHist(lo, hi, buckets)
		r.hists[name] = h
		return h
	}
	if h.lo != lo || h.hi != hi || len(h.buckets) != buckets {
		panic(fmt.Sprintf("obs: histogram %q re-registered with layout [%g, %g] x %d (have [%g, %g] x %d)",
			name, lo, hi, buckets, h.lo, h.hi, len(h.buckets)))
	}
	return h
}

// Quantiles returns the named quantile sketch, creating it on first
// use. Unlike Hist there is no layout to agree on: the sketch adapts to
// the observed range.
func (r *Registry) Quantiles(name string) *Quantiles {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.quants[name]
	if !ok {
		q = &Quantiles{}
		r.quants[name] = q
	}
	return q
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for JSON encoding (stable key order comes from the maps being
// marshalled with sorted keys by encoding/json).
type Snapshot struct {
	Counters  map[string]int64             `json:"counters,omitempty"`
	Gauges    map[string]float64           `json:"gauges,omitempty"`
	Hists     map[string]HistSnapshot      `json:"histograms,omitempty"`
	Quantiles map[string]QuantilesSnapshot `json:"quantiles,omitempty"`
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Hists[n] = h.Snapshot()
		}
	}
	if len(r.quants) > 0 {
		s.Quantiles = make(map[string]QuantilesSnapshot, len(r.quants))
		for n, q := range r.quants {
			s.Quantiles[n] = q.Snapshot()
		}
	}
	return s
}

// Names returns the sorted names of all registered instruments — handy
// for tests and debug dumps.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.quants))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.quants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes an indented JSON snapshot to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ExpvarFunc adapts the registry to expvar.Func: publish it with
//
//	expvar.Publish("reskit", expvar.Func(reg.ExpvarFunc()))
//
// so GET /debug/vars serves a live snapshot. The indirection keeps obs
// free of an expvar import (and of expvar's irrevocable global
// registration) — the caller owns the publication.
func (r *Registry) ExpvarFunc() func() interface{} {
	return func() interface{} { return r.Snapshot() }
}
