package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes bytes.Buffer safe for the reporter goroutine + test
// goroutine pair.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressRender(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "campaign", 1000, time.Second)
	base := time.Unix(100, 0)
	p.started = base // as if Start had run at the base instant
	p.Add(250)
	p.now = func() time.Time { return base.Add(10 * time.Second) } // 25 trials/s
	line := p.Render()
	for _, want := range []string{"campaign:", "250/1000", "25.0%", "25 trials/s", "ETA 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}
}

func TestProgressRenderUnknownTotal(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "mc", 0, time.Second)
	p.Add(5)
	if line := p.Render(); !strings.Contains(line, "5 trials") || strings.Contains(line, "%") {
		t.Errorf("unexpected render for unknown total: %q", line)
	}
}

func TestProgressStopWritesFinalLine(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "campaign", 10, 10*time.Millisecond)
	p.Start(context.Background())
	p.Add(10)
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "10/10") {
		t.Errorf("final line missing completion: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final line not newline-terminated: %q", out)
	}
}

func TestProgressRenderCampaignLevel(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "campaign", 1000, time.Second)
	base := time.Unix(100, 0)
	p.started = base
	p.now = func() time.Time { return base.Add(10 * time.Second) }
	p.Add(250)
	// Before any AddWork, the campaign-level fields stay out of the line.
	if line := p.Render(); strings.Contains(line, "res") {
		t.Errorf("render shows reservations before any were reported: %q", line)
	}
	p.AddWork(7, 101.5)
	p.AddWork(3, 28.5)
	if got, want := p.Reservations(), int64(10); got != want {
		t.Errorf("Reservations() = %d, want %d", got, want)
	}
	if got := p.Work(); got != 130 {
		t.Errorf("Work() = %g, want 130", got)
	}
	line := p.Render()
	for _, want := range []string{"10 res", "130 work", "ETA"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}
}

func TestProgressAddWorkNil(t *testing.T) {
	var p *Progress
	p.AddWork(3, 1.5) // must not panic
	if p.Reservations() != 0 || p.Work() != 0 {
		t.Error("nil progress should report zero campaign-level progress")
	}
}

func TestProgressCancellationStopsReporter(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "campaign", 100, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	p.Start(ctx)
	p.Add(1)
	cancel()
	p.Stop() // must not hang on the cancelled reporter
}
