package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes bytes.Buffer safe for the reporter goroutine + test
// goroutine pair.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressRender(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "campaign", 1000, time.Second)
	base := time.Unix(100, 0)
	p.started = base // as if Start had run at the base instant
	p.Add(250)
	p.now = func() time.Time { return base.Add(10 * time.Second) } // 25 trials/s
	line := p.Render()
	for _, want := range []string{"campaign:", "250/1000", "25.0%", "25 trials/s", "ETA 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}
}

// TestProgressRenderUnknownTotal: with total <= 0 the line carries the
// count and sustained rate but must not invent a percentage or an ETA —
// there is no total to extrapolate toward.
func TestProgressRenderUnknownTotal(t *testing.T) {
	for _, total := range []int64{0, -1} {
		p := NewProgress(&bytes.Buffer{}, "mc", total, time.Second)
		base := time.Unix(100, 0)
		p.started = base
		p.Add(250)
		p.now = func() time.Time { return base.Add(10 * time.Second) } // 25 trials/s
		line := p.Render()
		for _, want := range []string{"mc:", "250 trials", "25 trials/s"} {
			if !strings.Contains(line, want) {
				t.Errorf("total=%d: render %q missing %q", total, line, want)
			}
		}
		for _, forbid := range []string{"%", "ETA", "250/"} {
			if strings.Contains(line, forbid) {
				t.Errorf("total=%d: render %q carries %q despite unknown total", total, line, forbid)
			}
		}
	}
	// Before any time elapses the rate renders as a plain 0.
	p := NewProgress(&bytes.Buffer{}, "mc", 0, time.Second)
	p.Add(5)
	if line := p.Render(); !strings.Contains(line, "5 trials, 0 trials/s") {
		t.Errorf("zero-elapsed render: %q", line)
	}
}

// TestProgressPrecision: the ±half-width readout appears only once a
// streaming run published one, in both the known- and unknown-total
// branches, and tracks the latest value.
func TestProgressPrecision(t *testing.T) {
	for _, total := range []int64{0, 1000} {
		p := NewProgress(&bytes.Buffer{}, "stream", total, time.Second)
		base := time.Unix(100, 0)
		p.started = base
		p.now = func() time.Time { return base.Add(10 * time.Second) }
		p.Add(250)
		if _, ok := p.Precision(); ok {
			t.Errorf("total=%d: precision reported before any was set", total)
		}
		if line := p.Render(); strings.Contains(line, "±") {
			t.Errorf("total=%d: render %q shows precision before any was set", total, line)
		}
		p.SetPrecision(0.0421)
		hw, ok := p.Precision()
		if !ok || hw != 0.0421 {
			t.Errorf("total=%d: Precision() = %g,%v after SetPrecision", total, hw, ok)
		}
		if line := p.Render(); !strings.Contains(line, "±0.0421") {
			t.Errorf("total=%d: render %q missing the precision readout", total, line)
		}
		// The readout tracks the converging estimate, not its first value.
		p.SetPrecision(0.013)
		if line := p.Render(); !strings.Contains(line, "±0.013") || strings.Contains(line, "0.0421") {
			t.Errorf("total=%d: render %q did not track the latest precision", total, line)
		}
	}
	// Nil receiver: no-op set, zero get.
	var nilP *Progress
	nilP.SetPrecision(1)
	if hw, ok := nilP.Precision(); hw != 0 || ok {
		t.Error("nil progress should report no precision")
	}
}

func TestProgressStopWritesFinalLine(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "campaign", 10, 10*time.Millisecond)
	p.Start(context.Background())
	p.Add(10)
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "10/10") {
		t.Errorf("final line missing completion: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final line not newline-terminated: %q", out)
	}
}

func TestProgressRenderCampaignLevel(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "campaign", 1000, time.Second)
	base := time.Unix(100, 0)
	p.started = base
	p.now = func() time.Time { return base.Add(10 * time.Second) }
	p.Add(250)
	// Before any AddWork, the campaign-level fields stay out of the line.
	if line := p.Render(); strings.Contains(line, "res") {
		t.Errorf("render shows reservations before any were reported: %q", line)
	}
	p.AddWork(7, 101.5)
	p.AddWork(3, 28.5)
	if got, want := p.Reservations(), int64(10); got != want {
		t.Errorf("Reservations() = %d, want %d", got, want)
	}
	if got := p.Work(); got != 130 {
		t.Errorf("Work() = %g, want 130", got)
	}
	line := p.Render()
	for _, want := range []string{"10 res", "130 work", "ETA"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}
}

func TestProgressAddWorkNil(t *testing.T) {
	var p *Progress
	p.AddWork(3, 1.5) // must not panic
	if p.Reservations() != 0 || p.Work() != 0 {
		t.Error("nil progress should report zero campaign-level progress")
	}
}

func TestProgressCancellationStopsReporter(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "campaign", 100, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	p.Start(ctx)
	p.Add(1)
	cancel()
	p.Stop() // must not hang on the cancelled reporter
}
