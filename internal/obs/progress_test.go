package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes bytes.Buffer safe for the reporter goroutine + test
// goroutine pair.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressRender(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "campaign", 1000, time.Second)
	base := time.Unix(100, 0)
	p.started = base // as if Start had run at the base instant
	p.Add(250)
	p.now = func() time.Time { return base.Add(10 * time.Second) } // 25 trials/s
	line := p.Render()
	for _, want := range []string{"campaign:", "250/1000", "25.0%", "25 trials/s", "ETA 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}
}

func TestProgressRenderUnknownTotal(t *testing.T) {
	p := NewProgress(&bytes.Buffer{}, "mc", 0, time.Second)
	p.Add(5)
	if line := p.Render(); !strings.Contains(line, "5 trials") || strings.Contains(line, "%") {
		t.Errorf("unexpected render for unknown total: %q", line)
	}
}

func TestProgressStopWritesFinalLine(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "campaign", 10, 10*time.Millisecond)
	p.Start(context.Background())
	p.Add(10)
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "10/10") {
		t.Errorf("final line missing completion: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final line not newline-terminated: %q", out)
	}
}

func TestProgressCancellationStopsReporter(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, "campaign", 100, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	p.Start(ctx)
	p.Add(1)
	cancel()
	p.Stop() // must not hang on the cancelled reporter
}
