package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// The disabled path is a nil receiver everywhere; none of these may
	// panic, and reads must return zeros.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(2)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Hist
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil hist counted")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Hist("x", 0, 1, 4) != nil {
		t.Error("nil registry returned a live instrument")
	}
	r.Counter("x").Inc() // the chained no-op the hot paths rely on
	if len(r.Names()) != 0 {
		t.Error("nil registry has names")
	}
	var p *Progress
	p.Add(3)
	p.Start(nil) //nolint:staticcheck // nil ctx must be tolerated by the nil receiver
	p.Stop()
	if p.Done() != 0 || p.Render() != "" {
		t.Error("nil progress reported state")
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if want := float64(workers*per) * 0.5; g.Value() != want {
		t.Errorf("gauge = %g, want %g", g.Value(), want)
	}
}

func TestHistBucketing(t *testing.T) {
	h := NewHist(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.999, -0.1, 10, 11, math.NaN()} {
		h.Observe(x)
	}
	s := h.Snapshot()
	if want := []int64{2, 1, 1, 0, 1}; !equalInt64(s.Counts, want) {
		t.Errorf("counts = %v, want %v", s.Counts, want)
	}
	if s.Under != 1 || s.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", s.Under, s.Over)
	}
	if s.NaN != 1 {
		t.Errorf("nan = %d, want 1", s.NaN)
	}
	if s.Count != 8 { // NaN is rejected, everything else counts
		t.Errorf("count = %d, want 8", s.Count)
	}
}

func TestHistConcurrentTotal(t *testing.T) {
	h := NewHist(0, 1, 8)
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum+s.Under+s.Over != workers*per || s.Count != workers*per {
		t.Errorf("lost observations: buckets %d, count %d, want %d", sum, s.Count, workers*per)
	}
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name returned distinct counters")
	}
	r.Counter("a").Add(3)
	r.Gauge("g").Set(1.5)
	r.Hist("h", 0, 4, 2).Observe(1)
	if got := r.Names(); strings.Join(got, ",") != "a,g,h" {
		t.Errorf("names = %v", got)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a"] != 3 || snap.Gauges["g"] != 1.5 || snap.Hists["h"].Count != 1 {
		t.Errorf("snapshot lost values: %+v", snap)
	}

	defer func() {
		if recover() == nil {
			t.Error("conflicting histogram layout did not panic")
		}
	}()
	r.Hist("h", 0, 8, 2)
}

func TestRegistryRemoveGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1)
	r.RemoveGauge("g")
	r.RemoveGauge("absent") // no-op
	if got := r.Names(); len(got) != 0 {
		t.Errorf("names after removal = %v, want none", got)
	}
	g.Set(2) // the handed-out instrument keeps working, just unexported
	if r.Gauge("g") == g {
		t.Error("re-registering a removed name returned the old instrument")
	}
	var nilReg *Registry
	nilReg.RemoveGauge("g") // nil registry is a no-op, not a panic
}

func TestSampledIsDeterministicModulo(t *testing.T) {
	for trial := int64(0); trial < 100; trial++ {
		if got, want := Sampled(trial, 10), trial%10 == 0; got != want {
			t.Fatalf("Sampled(%d, 10) = %v", trial, got)
		}
		if !Sampled(trial, 0) || !Sampled(trial, 1) {
			t.Fatalf("every <= 1 must select trial %d", trial)
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Event(Event{Trial: 7, Kind: EvCkptCommit, Time: 12.5, Value: 20})
	s.Event(Event{Trial: 8, Kind: EvCrash, Time: 3, Value: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var e struct {
		Trial int64   `json:"trial"`
		Kind  string  `json:"kind"`
		Time  float64 `json:"t"`
		Value float64 `json:"v"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Trial != 7 || e.Kind != "ckpt_commit" || e.Time != 12.5 || e.Value != 20 {
		t.Errorf("decoded %+v", e)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Event(Event{Kind: EvTaskEnd})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 400 || len(c.Events()) != 400 {
		t.Errorf("collected %d events, want 400", c.Len())
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
