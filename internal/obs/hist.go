package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Hist is a lock-free streaming histogram over equal-width buckets on
// [Lo, Hi): every Observe is a handful of atomic adds, so many workers
// can feed one histogram without serializing. Observations below Lo and
// at-or-above Hi land in dedicated underflow/overflow buckets, NaN in its
// own reject bucket; the sum (for the running mean) excludes NaN only.
// A nil *Hist is a no-op.
type Hist struct {
	lo, hi  float64
	invW    float64 // buckets / (hi - lo), hoisted out of the hot path
	buckets []atomic.Int64
	under   atomic.Int64
	over    atomic.Int64
	nan     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum via CAS
}

// NewHist returns a streaming histogram with the given bounds and bucket
// count. It panics unless lo < hi and buckets >= 1.
func NewHist(lo, hi float64, buckets int) *Hist {
	if !(lo < hi) || buckets < 1 {
		panic(fmt.Sprintf("obs: invalid histogram [%g, %g] x %d", lo, hi, buckets))
	}
	return &Hist{
		lo:      lo,
		hi:      hi,
		invW:    float64(buckets) / (hi - lo),
		buckets: make([]atomic.Int64, buckets),
	}
}

// Observe folds one observation into the histogram.
func (h *Hist) Observe(x float64) {
	if h == nil {
		return
	}
	switch {
	case math.IsNaN(x):
		h.nan.Add(1)
		return
	case x < h.lo:
		h.under.Add(1)
	case x >= h.hi:
		h.over.Add(1)
	default:
		i := int((x - h.lo) * h.invW)
		if i >= len(h.buckets) { // rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a Hist, JSON-ready.
type HistSnapshot struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under"`
	Over   int64   `json:"over"`
	NaN    int64   `json:"nan,omitempty"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
}

// Snapshot copies the current state. Concurrent Observes may straddle the
// copy; each individual bucket value is still consistent.
func (h *Hist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Lo:     h.lo,
		Hi:     h.hi,
		Counts: make([]int64, len(h.buckets)),
		Under:  h.under.Load(),
		Over:   h.over.Load(),
		NaN:    h.nan.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Mean = math.Float64frombits(h.sumBits.Load()) / float64(s.Count)
	}
	return s
}
