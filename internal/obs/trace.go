package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind classifies one trace event inside a simulated reservation.
type EventKind uint8

// Trace event kinds emitted by internal/sim.
const (
	EvTaskEnd    EventKind = iota + 1 // a task completed (Value = task duration)
	EvCkptStart                       // a checkpoint attempt started (Value = uncommitted work)
	EvCkptCommit                      // a checkpoint committed (Value = work committed)
	EvCkptFault                       // a completed attempt failed to commit (Value = work retained)
	EvCrash                           // a fail-stop error struck (Value = work wiped)
	EvRevocation                      // the reservation was revoked early (Value = effective horizon)
	EvRunEnd                          // the reservation ended (Value = work saved)
)

// String returns the event-kind name used in JSONL traces.
func (k EventKind) String() string {
	switch k {
	case EvTaskEnd:
		return "task_end"
	case EvCkptStart:
		return "ckpt_start"
	case EvCkptCommit:
		return "ckpt_commit"
	case EvCkptFault:
		return "ckpt_fault"
	case EvCrash:
		return "crash"
	case EvRevocation:
		return "revocation"
	case EvRunEnd:
		return "run_end"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one timestamped occurrence inside a simulated reservation.
// Time is simulation time within the reservation (not wall clock), so
// traces are bit-reproducible across machines.
type Event struct {
	Trial int64     // global trial index within the Monte-Carlo experiment
	Kind  EventKind // what happened
	Time  float64   // simulation time inside the reservation
	Value float64   // event-specific payload (see the kind constants)
}

// TraceSink receives simulation events. Implementations must be safe for
// concurrent use: parallel Monte-Carlo workers share one sink.
type TraceSink interface {
	Event(Event)
}

// FuncSink adapts a function to TraceSink.
type FuncSink func(Event)

// Event implements TraceSink.
func (f FuncSink) Event(e Event) { f(e) }

// Sampled reports whether the given trial is selected by a 1-in-every
// deterministic sampling policy. every <= 1 selects every trial. The
// policy depends only on the trial index — never on randomness or
// scheduling — so the sampled trial set is identical across runs and
// worker counts, and full tracing of a million-trial campaign stays
// affordable by construction.
func Sampled(trial, every int64) bool {
	return every <= 1 || trial%every == 0
}

// Collector is a TraceSink that retains every event, for tests.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Event implements TraceSink.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// jsonEvent is the JSONL wire format of an event.
type jsonEvent struct {
	Trial int64   `json:"trial"`
	Kind  string  `json:"kind"`
	Time  float64 `json:"t"`
	Value float64 `json:"v"`
}

// JSONLSink streams events as one JSON object per line, buffered. Safe
// for concurrent use; call Flush (or Close) before reading the output.
type JSONLSink struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  io.Closer
}

// NewJSONLSink wraps w in a buffered JSONL event writer. If w is also an
// io.Closer, Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Event implements TraceSink. Encoding errors are silently dropped here
// and surfaced by Flush/Close — a tracing sink must never interrupt the
// experiment it observes.
func (s *JSONLSink) Event(e Event) {
	data, err := json.Marshal(jsonEvent{Trial: e.Trial, Kind: e.Kind.String(), Time: e.Time, Value: e.Value})
	if err != nil {
		return
	}
	s.mu.Lock()
	s.bw.Write(data)
	s.bw.WriteByte('\n')
	s.mu.Unlock()
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close flushes and, when the underlying writer is a Closer, closes it.
func (s *JSONLSink) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}
