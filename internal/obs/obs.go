// Package obs is the dependency-free observability layer of reskit: it
// provides the atomic counters, gauges and lock-free streaming histograms
// that instrument the Monte-Carlo hot paths, a per-run event-tracing hook
// with deterministic sampling, and a live progress reporter for long
// campaigns.
//
// The package is built around one invariant: *disabled observability is
// free and enabled observability is invisible to the experiment*. Every
// metric type treats a nil receiver as a no-op, so an un-instrumented
// configuration pays exactly one nil check per increment site, and no
// instrument ever consumes randomness or changes control flow — campaign
// aggregates are bit-identical with observability on or off, for any
// worker count (proved by the equivalence tests in internal/sim).
//
// Instruments are created through a Registry, which names them, serves
// them to expvar, and snapshots them to JSON:
//
//	reg := obs.NewRegistry()
//	trials := reg.Counter("sim.trials")
//	...
//	trials.Inc()                   // hot path: one atomic add
//	reg.WriteJSON(os.Stdout)       // snapshot for -metrics
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe for concurrent use, and all methods on a nil *Counter are no-ops —
// the nil check is the entire cost of disabled instrumentation.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways (e.g. trials/sec,
// queue depth). Stored as IEEE-754 bits behind an atomic uint64; Add uses
// a CAS loop. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
