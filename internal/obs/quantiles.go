package obs

import (
	"sync"

	"reskit/internal/stats"
)

// Quantiles tracks the distribution of a metric without a fixed layout:
// it wraps a stats.QSketch behind a mutex, so parallel workers can
// observe into it and a snapshot can be cut at any time. Unlike Hist it
// needs no a-priori [lo, hi) range — the sketch adapts to whatever the
// samples are — at the price of approximate (but tail-accurate)
// quantiles and a lock per observation. All methods are no-ops on a nil
// *Quantiles, matching the other instruments.
type Quantiles struct {
	mu sync.Mutex
	sk stats.QSketch
}

// Observe absorbs one sample.
func (q *Quantiles) Observe(x float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.sk.Add(x)
	q.mu.Unlock()
}

// QuantilesSnapshot is a point-in-time summary of a Quantiles
// instrument, shaped for JSON. An empty instrument reports zeros (not
// NaN, which JSON cannot carry).
type QuantilesSnapshot struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot cuts the current summary.
func (q *Quantiles) Snapshot() QuantilesSnapshot {
	if q == nil {
		return QuantilesSnapshot{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if s := &q.sk; s.Count() > 0 {
		return QuantilesSnapshot{
			Count: s.Count(),
			Min:   s.Min(),
			Max:   s.Max(),
			P50:   s.Quantile(0.50),
			P90:   s.Quantile(0.90),
			P99:   s.Quantile(0.99),
		}
	}
	return QuantilesSnapshot{}
}
