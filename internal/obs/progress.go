package obs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live progress reporter for long Monte-Carlo campaigns:
// workers call Add (one atomic add) as trials complete, and a single
// reporter goroutine periodically renders "done/total, trials/sec, ETA"
// to a writer. It is cancellation-aware — the reporter stops on Stop or
// when the context given to Start is cancelled, always emitting a final
// line so interrupted campaigns still report how far they got.
//
// A nil *Progress is a no-op on every method, so the instrumented hot
// path pays one nil check when progress reporting is off.
type Progress struct {
	done  Counter
	total int64

	// Campaign-level progress behind the trial ticks: reservations
	// completed and work committed so far. Rendered only when reported.
	res  Counter
	work Gauge

	// Live precision of a converging estimate (CI half-width), published
	// by streaming runs via SetPrecision. Rendered only once set — the
	// natural counterpart of the ETA for runs whose total is unknown.
	prec   Gauge
	precOn atomic.Bool

	w        io.Writer
	label    string
	interval time.Duration
	now      func() time.Time // injectable clock for tests

	mu      sync.Mutex
	started time.Time
	cancel  context.CancelFunc
	waitCh  chan struct{}
	stopped bool
}

// NewProgress returns a reporter writing to w every interval (default
// 1s) while running. total <= 0 means the total is unknown: rendered
// lines omit the percentage and ETA.
func NewProgress(w io.Writer, label string, total int64, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{w: w, label: label, total: total, interval: interval, now: time.Now}
}

// Add records n completed trials. Safe for concurrent use.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// Done returns the number of trials recorded so far.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Value()
}

// AddWork records campaign-level progress behind the trial ticks:
// reservations completed and work committed. Safe for concurrent use;
// a line rendered between the two adds may lag by one reservation,
// which is harmless for a live display.
func (p *Progress) AddWork(reservations int64, committed float64) {
	if p == nil {
		return
	}
	p.res.Add(reservations)
	p.work.Add(committed)
}

// Reservations returns the reservations recorded by AddWork so far.
func (p *Progress) Reservations() int64 {
	if p == nil {
		return 0
	}
	return p.res.Value()
}

// Work returns the committed work recorded by AddWork so far.
func (p *Progress) Work() float64 {
	if p == nil {
		return 0
	}
	return p.work.Value()
}

// SetPrecision publishes the current precision of a converging estimate
// — the CI half-width a sequential-stopping run is driving down. Once
// set, rendered lines carry a "±hw" readout. Safe for concurrent use.
func (p *Progress) SetPrecision(halfwidth float64) {
	if p == nil {
		return
	}
	p.prec.Set(halfwidth)
	p.precOn.Store(true)
}

// Precision returns the last published half-width and whether one was
// ever published.
func (p *Progress) Precision() (float64, bool) {
	if p == nil {
		return 0, false
	}
	return p.prec.Value(), p.precOn.Load()
}

// Start launches the reporter goroutine. It returns immediately; the
// goroutine renders a line every interval until Stop is called or ctx is
// cancelled. Starting a nil or already-started reporter is a no-op.
func (p *Progress) Start(ctx context.Context) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.waitCh != nil || p.stopped {
		return
	}
	p.started = p.now()
	ctx, p.cancel = context.WithCancel(ctx)
	p.waitCh = make(chan struct{})
	go p.loop(ctx, p.waitCh)
}

func (p *Progress) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			fmt.Fprintf(p.w, "\r%s", p.Render())
		}
	}
}

// Stop halts the reporter and writes the final line. Idempotent; safe on
// a reporter that was never started.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	cancel, wait := p.cancel, p.waitCh
	alreadyStopped := p.stopped
	p.stopped = true
	p.cancel, p.waitCh = nil, nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-wait
	}
	if !alreadyStopped && wait != nil {
		fmt.Fprintf(p.w, "\r%s\n", p.Render())
	}
}

// Render formats the current progress line: trials done, completion
// percentage, sustained trials/sec and the ETA extrapolated from them.
func (p *Progress) Render() string {
	if p == nil {
		return ""
	}
	done := p.done.Value()
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	var rate float64
	if elapsed := p.now().Sub(started).Seconds(); elapsed > 0 && !started.IsZero() {
		rate = float64(done) / elapsed
	}
	// Campaign-level progress (reservations completed, work committed)
	// appears once something reported it via AddWork.
	var campaign string
	if res := p.res.Value(); res > 0 {
		campaign = fmt.Sprintf(", %d res, %.4g work", res, p.work.Value())
	}
	// Precision readout (CI half-width) appears once a streaming run
	// published it via SetPrecision.
	var prec string
	if p.precOn.Load() {
		prec = fmt.Sprintf(", ±%.3g", p.prec.Value())
	}
	if p.total > 0 {
		pct := 100 * float64(done) / float64(p.total)
		eta := "?"
		if rate > 0 && done < p.total {
			eta = (time.Duration(float64(p.total-done) / rate * float64(time.Second))).Round(time.Second).String()
		} else if done >= p.total {
			eta = "0s"
		}
		return fmt.Sprintf("%s: %d/%d trials (%.1f%%), %.0f trials/s%s%s, ETA %s",
			p.label, done, p.total, pct, rate, campaign, prec, eta)
	}
	return fmt.Sprintf("%s: %d trials, %.0f trials/s%s%s", p.label, done, rate, campaign, prec)
}
