package obs

import (
	"errors"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one exposition sample: name{labels} value. The
// format also allows timestamps; we never emit them.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? \S+$`)

// checkExposition validates every line of a rendered exposition: TYPE
// comments announce a known type, every sample line parses, and every
// sample's base name was announced by a preceding TYPE line.
func checkExposition(t *testing.T, out string) map[string]string {
	t.Helper()
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok {
				if _, announced := types[b]; announced {
					base = b
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no TYPE announcement", name)
		}
		value := line[strings.LastIndex(line, " ")+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("sample %q has unparseable value %q", line, value)
		}
	}
	return types
}

func TestWritePromAllInstrumentKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.trials").Add(42)
	r.Gauge("engine.jobs_per_sec").Set(123.5)
	h := r.Hist("sim.saved_work", 0, 10, 4)
	for _, x := range []float64{-1, 0.5, 2.5, 9.9, 15, math.NaN()} {
		h.Observe(x)
	}
	q := r.Quantiles("engine.ns_per_job")
	for i := 0; i < 100; i++ {
		q.Observe(float64(i))
	}

	var b strings.Builder
	if err := r.WriteProm(&b, "reskit"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	types := checkExposition(t, out)

	for name, want := range map[string]string{
		"reskit_sim_trials":          "counter",
		"reskit_engine_jobs_per_sec": "gauge",
		"reskit_sim_saved_work":      "histogram",
		"reskit_engine_ns_per_job":   "summary",
	} {
		if types[name] != want {
			t.Errorf("%s announced as %q, want %q", name, types[name], want)
		}
	}
	for _, want := range []string{
		"reskit_sim_trials 42",
		"reskit_engine_jobs_per_sec 123.5",
		// 5 non-NaN observations: under=1, in-range 3, over=1.
		`reskit_sim_saved_work_bucket{le="+Inf"} 5`,
		"reskit_sim_saved_work_count 5",
		"reskit_sim_saved_work_nan 1",
		`reskit_engine_ns_per_job{quantile="0.5"}`,
		"reskit_engine_ns_per_job_count 100",
		"reskit_engine_ns_per_job_min 0",
		"reskit_engine_ns_per_job_max 99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("m", 0, 4, 4)
	for _, x := range []float64{-3, 0.5, 1.5, 1.6, 3.9, 100} {
		h.Observe(x)
	}
	var b strings.Builder
	if err := r.WriteProm(&b, ""); err != nil {
		t.Fatal(err)
	}
	// under=1 seeds every bucket; over=1 only reaches +Inf.
	for _, want := range []string{
		`m_bucket{le="1"} 2`,
		`m_bucket{le="2"} 4`,
		`m_bucket{le="3"} 4`,
		`m_bucket{le="4"} 5`,
		`m_bucket{le="+Inf"} 6`,
		"m_count 6",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
	checkExposition(t, b.String())
}

func TestWritePromNameSanitization(t *testing.T) {
	if got := promName("reskit", "engine.ns_per_job.p50"); got != "reskit_engine_ns_per_job_p50" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("", "9lives"); got != "_9lives" {
		t.Errorf("leading digit: %q", got)
	}
	if got := promName("", "a-b/c d"); got != "a_b_c_d" {
		t.Errorf("punctuation: %q", got)
	}
}

func TestWritePromEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WriteProm(&b, "reskit"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty registry rendered %q", b.String())
	}
	// And the nil registry is a no-op like every other obs entry point.
	var r *Registry
	if err := r.WriteProm(&b, "reskit"); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWritePromPropagatesWriteError(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	if err := r.WriteProm(failWriter{}, "x"); err == nil {
		t.Fatal("write error swallowed")
	}
}
