package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) next to the expvar
// JSON snapshot: the same registry serves both, so any instrument wired
// for -metrics is scrapeable for free. The mapping is mechanical:
//
//	Counter   -> counter
//	Gauge     -> gauge
//	Hist      -> histogram (cumulative le-buckets, _sum, _count;
//	             underflow counts into every bucket, overflow only
//	             into +Inf, NaN rejects into <name>_nan)
//	Quantiles -> summary (quantile-labelled samples plus _count) with
//	             <name>_min / <name>_max gauges alongside
//
// Instrument names use dots ("engine.jobs_done"); Prometheus metric
// names cannot, so every byte outside [a-zA-Z0-9_:] becomes '_' and the
// configured namespace is prefixed ("reskit_engine_jobs_done").

// WriteProm renders a point-in-time snapshot of the registry in
// Prometheus text exposition format. namespace prefixes every metric
// name ("" omits the prefix).
func (r *Registry) WriteProm(w io.Writer, namespace string) error {
	return WriteProm(w, namespace, r.Snapshot())
}

// WriteProm renders an already-cut snapshot in Prometheus text
// exposition format. Metrics are emitted in sorted name order, so the
// output is deterministic for a given snapshot.
func WriteProm(w io.Writer, namespace string, s Snapshot) error {
	ew := &errWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		n := promName(namespace, name)
		fmt.Fprintf(ew, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(namespace, name)
		fmt.Fprintf(ew, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Hists) {
		writePromHist(ew, promName(namespace, name), s.Hists[name])
	}
	for _, name := range sortedKeys(s.Quantiles) {
		writePromQuantiles(ew, promName(namespace, name), s.Quantiles[name])
	}
	return ew.err
}

// writePromHist renders one fixed-layout histogram. The Prometheus
// bucket contract is "observations <= le, cumulative": underflow
// observations (x < lo) are below every edge, so they seed the running
// count; overflow observations (x >= hi) appear only in +Inf.
func writePromHist(w io.Writer, n string, h HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", n)
	cum := h.Under
	buckets := len(h.Counts)
	if buckets > 0 {
		width := (h.Hi - h.Lo) / float64(buckets)
		for i, c := range h.Counts {
			cum += c
			edge := h.Lo + float64(i+1)*width
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, promFloat(edge), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(h.Mean*float64(h.Count)))
	fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	if h.NaN > 0 {
		fmt.Fprintf(w, "# TYPE %s_nan counter\n%s_nan %d\n", n, n, h.NaN)
	}
}

// writePromQuantiles renders one quantile sketch as a summary. The
// sketch keeps no running sum, so only _count is emitted; min/max ride
// along as gauges because tails are what the sketch is for.
func writePromQuantiles(w io.Writer, n string, q QuantilesSnapshot) {
	fmt.Fprintf(w, "# TYPE %s summary\n", n)
	fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", n, promFloat(q.P50))
	fmt.Fprintf(w, "%s{quantile=\"0.9\"} %s\n", n, promFloat(q.P90))
	fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", n, promFloat(q.P99))
	fmt.Fprintf(w, "%s_count %d\n", n, q.Count)
	fmt.Fprintf(w, "# TYPE %s_min gauge\n%s_min %s\n", n, n, promFloat(q.Min))
	fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %s\n", n, n, promFloat(q.Max))
}

// promName prefixes the namespace and replaces every byte Prometheus
// rejects in a metric name with '_'. A leading digit is also escaped,
// though no instrument in this repository starts with one.
func promName(namespace, name string) string {
	out := make([]byte, 0, len(namespace)+1+len(name))
	if namespace != "" {
		out = append(out, namespace...)
		out = append(out, '_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if len(out) == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat formats a float the way the exposition format expects;
// strconv renders ±Inf as "+Inf"/"-Inf" and NaN as "NaN", both valid.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so the render loop needs no
// per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// sortedKeys returns the sorted keys of any string-keyed map.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
