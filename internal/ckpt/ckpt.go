// Package ckpt makes long Monte-Carlo runs durable: it applies the
// paper's own medicine — periodic checkpointing — to the simulator
// itself. A sharded Monte-Carlo run is a set of fixed-size trial blocks,
// each bound to its own rng substream, so a *completed block* is a
// deterministic, resumable unit: persisting the encoded partial
// aggregate of every finished block is enough to restart an interrupted
// run and re-execute only the missing blocks, with a final aggregate
// bit-identical to an uninterrupted run for any worker count.
//
// The on-disk snapshot is a single small binary file (see State.Encode
// for the exact layout) carrying a magic number, a format version, a
// CRC32 of the payload, the configuration fingerprint, the seed and
// trial/block geometry, and the per-block payloads. Every write goes
// through internal/atomicio (write-temp-fsync-rename), so a crash while
// snapshotting can never leave a truncated file — the previous snapshot
// survives. Every load verifies the CRC, the version, and (via
// State.Check) the fingerprint and geometry, returning structured errors
// for corrupt or mismatched snapshots — never panicking, never silently
// resuming the wrong run.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"sort"

	"reskit/internal/atomicio"
)

// Kind distinguishes the sharded run shapes: the payload encodings
// differ, so resuming a run of one kind with a snapshot of another is a
// config mismatch.
type Kind uint8

// Snapshot kinds.
const (
	KindMonteCarlo Kind = 1 // per-reservation Monte-Carlo (sim.MonteCarlo*)
	KindCampaign   Kind = 2 // multi-reservation campaign (sim.MonteCarloCampaign*)
	KindJobs       Kind = 3 // grid of engine jobs (internal/engine), one payload per job
	KindStream     Kind = 4 // open-ended stream of engine jobs: frontier + sink state
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindMonteCarlo:
		return "montecarlo"
	case KindCampaign:
		return "campaign"
	case KindJobs:
		return "jobs"
	case KindStream:
		return "stream"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Version is the current snapshot format version. Decoders accept only
// this version; bumping it invalidates older snapshots explicitly
// instead of misreading them.
const Version = 1

// magic identifies a reskit run snapshot.
var magic = [4]byte{'R', 'K', 'C', 'P'}

// Structured decode/validation failures. Errors returned by Decode, Load
// and State.Check wrap one of these sentinels, so callers can classify
// with errors.Is and fall back to a fresh run.
var (
	// ErrNotSnapshot marks a file that is not a reskit snapshot at all
	// (wrong magic or shorter than the fixed header).
	ErrNotSnapshot = errors.New("ckpt: not a reskit run snapshot")
	// ErrVersion marks a snapshot from an incompatible format version.
	ErrVersion = errors.New("ckpt: unsupported snapshot version")
	// ErrCorrupt marks a snapshot that fails the CRC or whose structure
	// is internally inconsistent (truncated payloads, out-of-range block
	// indices, duplicate blocks).
	ErrCorrupt = errors.New("ckpt: snapshot corrupt")
	// ErrMismatch marks a well-formed snapshot of a *different* run:
	// fingerprint, seed, trial count, block size or kind disagree with
	// the run being resumed.
	ErrMismatch = errors.New("ckpt: snapshot does not match this run")
)

// State is the durable image of a sharded Monte-Carlo run: which blocks
// have completed, and the encoded partial aggregate of each. It is not
// safe for concurrent use; Writer provides the synchronized, throttled
// layer the simulation workers talk to.
type State struct {
	Kind        Kind
	Fingerprint uint64 // caller-computed hash of the run configuration
	Seed        uint64
	Trials      int64
	BlockSize   int64
	NumBlocks   int64
	Blocks      map[int][]byte // completed block index -> encoded partial aggregate
}

// New returns an empty run state with the geometry derived from trials
// and blockSize.
func New(kind Kind, fingerprint, seed uint64, trials, blockSize int64) *State {
	return &State{
		Kind:        kind,
		Fingerprint: fingerprint,
		Seed:        seed,
		Trials:      trials,
		BlockSize:   blockSize,
		NumBlocks:   (trials + blockSize - 1) / blockSize,
		Blocks:      make(map[int][]byte),
	}
}

// Done returns the number of completed blocks recorded in the state.
func (s *State) Done() int { return len(s.Blocks) }

// NewStream returns an empty frontier state for an open-ended streaming
// run. Stream snapshots reuse the fixed-slice wire format with the
// geometry re-read as a frontier: Trials and NumBlocks both hold the
// highest contiguous committed job index (jobs [0, frontier) are folded
// into the sink), BlockSize is 1, and the single payload at block 0 is
// the opaque sink state at that frontier. Because sink commits are
// strictly ordered, that state is a pure function of the committed
// prefix — restoring it and replaying the source past the frontier is
// bit-identical to never having stopped.
func NewStream(fingerprint, seed uint64) *State {
	return &State{
		Kind:        KindStream,
		Fingerprint: fingerprint,
		Seed:        seed,
		BlockSize:   1,
		Blocks:      make(map[int][]byte),
	}
}

// SetStream records the sink state at a new frontier. frontier must be
// positive: a zero frontier has nothing worth persisting (and would not
// survive the geometry validation on decode).
func (s *State) SetStream(frontier int64, state []byte) {
	s.Trials = frontier
	s.NumBlocks = frontier
	s.BlockSize = 1
	s.Blocks[0] = state
}

// Frontier returns the committed-job frontier of a stream snapshot, or
// 0 for any other kind.
func (s *State) Frontier() int64 {
	if s.Kind != KindStream {
		return 0
	}
	return s.Trials
}

// StreamState returns the sink state blob of a stream snapshot (nil for
// other kinds or an empty state).
func (s *State) StreamState() []byte { return s.Blocks[0] }

// CheckStream validates that a stream snapshot belongs to the run
// described by the arguments. Unlike Check it does not compare the
// geometry — the frontier is progress, not configuration — and it
// rejects a stream snapshot with no recorded sink state.
func (s *State) CheckStream(fingerprint, seed uint64) error {
	switch {
	case s.Kind != KindStream:
		return fmt.Errorf("%w: snapshot kind %v, run kind %v", ErrMismatch, s.Kind, KindStream)
	case s.Fingerprint != fingerprint:
		return fmt.Errorf("%w: config fingerprint %016x, run fingerprint %016x", ErrMismatch, s.Fingerprint, fingerprint)
	case s.Seed != seed:
		return fmt.Errorf("%w: snapshot seed %d, run seed %d", ErrMismatch, s.Seed, seed)
	case s.Trials <= 0 || len(s.Blocks[0]) == 0:
		return fmt.Errorf("%w: stream snapshot has no sink state", ErrCorrupt)
	}
	return nil
}

// Check validates that the snapshot belongs to the run described by the
// arguments. Any disagreement returns an error wrapping ErrMismatch that
// names the offending field.
func (s *State) Check(kind Kind, fingerprint, seed uint64, trials, blockSize int64) error {
	switch {
	case s.Kind != kind:
		return fmt.Errorf("%w: snapshot kind %v, run kind %v", ErrMismatch, s.Kind, kind)
	case s.Fingerprint != fingerprint:
		return fmt.Errorf("%w: config fingerprint %016x, run fingerprint %016x", ErrMismatch, s.Fingerprint, fingerprint)
	case s.Seed != seed:
		return fmt.Errorf("%w: snapshot seed %d, run seed %d", ErrMismatch, s.Seed, seed)
	case s.Trials != trials:
		return fmt.Errorf("%w: snapshot trials %d, run trials %d", ErrMismatch, s.Trials, trials)
	case s.BlockSize != blockSize:
		return fmt.Errorf("%w: snapshot block size %d, run block size %d", ErrMismatch, s.BlockSize, blockSize)
	}
	return nil
}

// headerSize is the fixed prefix: magic, version, crc, kind, and the
// five geometry fields.
const headerSize = 4 + 4 + 4 + 1 + 5*8

// maxPayload bounds one block's encoded partial aggregate. Real payloads
// are a few hundred bytes; the bound keeps a corrupt length field from
// driving a huge allocation before the CRC check would catch it.
const maxPayload = 1 << 20

// Encode serializes the state. Layout (all integers little-endian):
//
//	[0:4)   magic "RKCP"
//	[4:8)   format version (uint32)
//	[8:12)  CRC32 (IEEE) of every byte after this field
//	[12]    kind (uint8)
//	[13:21) config fingerprint (uint64)
//	[21:29) seed (uint64)
//	[29:37) trials (int64)
//	[37:45) block size (int64)
//	[45:53) number of blocks (int64)
//	[53:57) number of completed blocks (uint32)
//	then, for each completed block in ascending index order:
//	  block index (uint32), payload length (uint32), payload bytes
//
// Ascending block order makes the encoding canonical: two states with
// the same completed blocks produce identical bytes.
func (s *State) Encode() []byte {
	idx := make([]int, 0, len(s.Blocks))
	size := headerSize + 4
	for b, p := range s.Blocks {
		idx = append(idx, b)
		size += 8 + len(p)
	}
	sort.Ints(idx)

	out := make([]byte, 12, size)
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint32(out[4:8], Version)
	// out[8:12] is the CRC, filled last.
	out = append(out, byte(s.Kind))
	out = binary.LittleEndian.AppendUint64(out, s.Fingerprint)
	out = binary.LittleEndian.AppendUint64(out, s.Seed)
	out = binary.LittleEndian.AppendUint64(out, uint64(s.Trials))
	out = binary.LittleEndian.AppendUint64(out, uint64(s.BlockSize))
	out = binary.LittleEndian.AppendUint64(out, uint64(s.NumBlocks))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(idx)))
	for _, b := range idx {
		out = binary.LittleEndian.AppendUint32(out, uint32(b))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Blocks[b])))
		out = append(out, s.Blocks[b]...)
	}
	binary.LittleEndian.PutUint32(out[8:12], crc32.ChecksumIEEE(out[12:]))
	return out
}

// Decode parses and validates a snapshot image. Corrupt, truncated or
// version-skewed inputs return structured errors (wrapping ErrNotSnapshot,
// ErrVersion or ErrCorrupt) — never a panic, and a CRC mismatch is never
// accepted.
func Decode(data []byte) (*State, error) {
	if len(data) < headerSize+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrNotSnapshot, len(data), headerSize+4)
	}
	if [4]byte(data[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotSnapshot, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads version %d", ErrVersion, v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:12])
	if got := crc32.ChecksumIEEE(data[12:]); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC32 %08x, header says %08x", ErrCorrupt, got, wantCRC)
	}

	s := &State{
		Kind:        Kind(data[12]),
		Fingerprint: binary.LittleEndian.Uint64(data[13:21]),
		Seed:        binary.LittleEndian.Uint64(data[21:29]),
		Trials:      int64(binary.LittleEndian.Uint64(data[29:37])),
		BlockSize:   int64(binary.LittleEndian.Uint64(data[37:45])),
		NumBlocks:   int64(binary.LittleEndian.Uint64(data[45:53])),
	}
	if s.Kind != KindMonteCarlo && s.Kind != KindCampaign && s.Kind != KindJobs && s.Kind != KindStream {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(s.Kind))
	}
	if s.Trials <= 0 || s.BlockSize <= 0 || s.NumBlocks <= 0 {
		return nil, fmt.Errorf("%w: non-positive geometry (trials=%d, block=%d, blocks=%d)",
			ErrCorrupt, s.Trials, s.BlockSize, s.NumBlocks)
	}
	if want := (s.Trials + s.BlockSize - 1) / s.BlockSize; s.NumBlocks != want {
		return nil, fmt.Errorf("%w: %d blocks inconsistent with %d trials of block size %d (want %d)",
			ErrCorrupt, s.NumBlocks, s.Trials, s.BlockSize, want)
	}

	nDone := binary.LittleEndian.Uint32(data[53:57])
	if int64(nDone) > s.NumBlocks {
		return nil, fmt.Errorf("%w: %d completed blocks of %d total", ErrCorrupt, nDone, s.NumBlocks)
	}
	s.Blocks = make(map[int][]byte, nDone)
	off := headerSize + 4
	prev := -1
	for i := uint32(0); i < nDone; i++ {
		if len(data)-off < 8 {
			return nil, fmt.Errorf("%w: truncated at block record %d", ErrCorrupt, i)
		}
		b := int(binary.LittleEndian.Uint32(data[off : off+4]))
		plen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		off += 8
		if int64(b) >= s.NumBlocks {
			return nil, fmt.Errorf("%w: block index %d out of %d", ErrCorrupt, b, s.NumBlocks)
		}
		if b <= prev {
			return nil, fmt.Errorf("%w: block indices not strictly ascending at %d", ErrCorrupt, b)
		}
		prev = b
		if plen > maxPayload || plen > len(data)-off {
			return nil, fmt.Errorf("%w: block %d payload of %d bytes overruns the file", ErrCorrupt, b, plen)
		}
		payload := make([]byte, plen)
		copy(payload, data[off:off+plen])
		s.Blocks[b] = payload
		off += plen
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last block", ErrCorrupt, len(data)-off)
	}
	return s, nil
}

// Load reads and decodes the snapshot at path.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFile atomically persists the state to path via
// write-temp-fsync-rename: a crash mid-snapshot leaves the previous
// snapshot intact, never a truncated file.
func (s *State) WriteFile(path string) error {
	return atomicio.WriteFile(path, s.Encode(), 0o644)
}

// Fingerprint hashes an ordered list of configuration facets (flag
// values, law specs, strategy names ...) into the 64-bit config
// fingerprint stored in snapshots. FNV-1a with a separator byte between
// parts, so ("ab","c") and ("a","bc") differ.
func Fingerprint(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
