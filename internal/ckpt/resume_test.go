package ckpt_test

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"reskit/internal/ckpt"
	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/sim"
	"reskit/internal/strategy"
)

func testCampaignConfig() sim.CampaignConfig {
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckptLaw := dist.Truncate(dist.NewNormal(5, 0.4), 0, math.Inf(1))
	dyn := core.NewDynamic(29, task, ckptLaw)
	return sim.CampaignConfig{
		Reservation: sim.Config{
			R:        29,
			Recovery: 1.5,
			Task:     task,
			Ckpt:     ckptLaw,
			Strategy: strategy.NewDynamic(dyn),
		},
		TotalWork: 150,
	}
}

// killer wraps a Writer and cancels the run after n block commits,
// simulating a kill at an arbitrary block boundary while the real
// on-disk snapshot machinery runs underneath.
type killer struct {
	*ckpt.Writer
	mu      sync.Mutex
	left    int
	cancel  context.CancelFunc
	commits int
}

func (k *killer) Commit(b int, payload []byte) {
	k.Writer.Commit(b, payload)
	k.mu.Lock()
	defer k.mu.Unlock()
	k.commits++
	if k.commits == k.left {
		k.cancel()
	}
}

// TestDiskKillAndResumeBitIdentical is the full acceptance loop through
// the disk: run, kill at a block boundary, flush the final snapshot,
// load + validate it from disk, resume only the missing blocks, and
// require the final aggregate bit-identical to an uninterrupted run —
// across worker counts 1, 4 and 8 (run under -race in CI).
func TestDiskKillAndResumeBitIdentical(t *testing.T) {
	cfg := testCampaignConfig()
	const trials = 4*sim.CampaignBlockSize + 9
	const seed = 77
	fp := ckpt.Fingerprint("test-campaign", "R=29", "totalwork=150")
	want := sim.MonteCarloCampaign(cfg, trials, seed, 0)

	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(t.TempDir(), "run.ckpt")

		// Interrupted leg: snapshot on every commit (interval elapses
		// immediately), cancel after two committed blocks.
		st := ckpt.New(ckpt.KindCampaign, fp, seed, trials, sim.CampaignBlockSize)
		w := ckpt.NewWriter(path, time.Nanosecond, st)
		ctx, cancel := context.WithCancel(context.Background())
		k := &killer{Writer: w, left: 2, cancel: cancel}
		_, _ = sim.MonteCarloCampaignCheckpointed(ctx, cfg, trials, seed, workers, k)
		cancel()
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		// Resume leg: load + validate the snapshot from disk, then run
		// only the missing blocks.
		loaded, err := ckpt.Load(path)
		if err != nil {
			t.Fatalf("workers=%d: loading snapshot: %v", workers, err)
		}
		if err := loaded.Check(ckpt.KindCampaign, fp, seed, trials, sim.CampaignBlockSize); err != nil {
			t.Fatalf("workers=%d: snapshot mismatch: %v", workers, err)
		}
		if loaded.Done() == 0 {
			t.Fatalf("workers=%d: snapshot recorded no blocks", workers)
		}
		w2 := ckpt.NewWriter(path, time.Minute, loaded)
		got, err := sim.MonteCarloCampaignCheckpointed(context.Background(), cfg, trials, seed, workers, w2)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: resumed aggregate differs:\n got %+v\nwant %+v", workers, got, want)
		}
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}
		if final, err := ckpt.Load(path); err != nil || int64(final.Done()) != final.NumBlocks {
			t.Errorf("workers=%d: final snapshot incomplete (done=%v, err=%v)", workers, final.Done(), err)
		}
	}
}

// TestResumeRejectsForeignSnapshot checks the config-fingerprint gate:
// a snapshot of a different configuration must be refused with a
// structured mismatch error before any block is trusted.
func TestResumeRejectsForeignSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := ckpt.New(ckpt.KindCampaign, ckpt.Fingerprint("totalwork=150"), 1, 135, sim.CampaignBlockSize)
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	err = loaded.Check(ckpt.KindCampaign, ckpt.Fingerprint("totalwork=500"), 1, 135, sim.CampaignBlockSize)
	if !errors.Is(err, ckpt.ErrMismatch) {
		t.Errorf("foreign snapshot: err = %v, want ErrMismatch", err)
	}
}

// TestLoadCorruptSnapshotFile checks the disk path end to end: a
// truncated snapshot file yields a structured error, never a panic.
func TestLoadCorruptSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := ckpt.New(ckpt.KindMonteCarlo, 9, 1, 4096, sim.MonteCarloBlockSize)
	st.Blocks[0] = make([]byte, 312)
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Load(path); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("truncated file: err = %v, want ErrCorrupt", err)
	}
}
