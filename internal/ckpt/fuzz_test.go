package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode hammers the snapshot decoder with arbitrary
// bytes: truncations, bit flips, version skew, hostile length fields.
// The contract under fuzz is strict — Decode must never panic, must
// never accept an image whose CRC does not match, and anything it does
// accept must re-encode to the exact same canonical bytes.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with valid images of both kinds, plus targeted mutants, so
	// coverage starts beyond the magic/version gate.
	mc := New(KindMonteCarlo, 0xabad1dea, 7, 100000, 2048)
	mc.Blocks[0] = bytes.Repeat([]byte{0x42}, 312)
	mc.Blocks[5] = bytes.Repeat([]byte{0x17}, 312)
	f.Add(mc.Encode())

	camp := New(KindCampaign, 0xfeedface, 42, 1000, 32)
	camp.Blocks[3] = []byte("partial")
	f.Add(camp.Encode())
	f.Add(New(KindCampaign, 0, 0, 1, 1).Encode())

	flipped := camp.Encode()
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	truncated := mc.Encode()
	f.Add(truncated[:len(truncated)/2])
	f.Add([]byte("RKCP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data) // must not panic
		if err != nil {
			return
		}
		// Accepted images must be canonical: re-encoding reproduces the
		// input bit for bit, so there is exactly one on-disk form per
		// state and a decode-edit-encode cycle cannot drift.
		if !bytes.Equal(s.Encode(), data) {
			t.Fatalf("accepted non-canonical image:\n in: %x\nout: %x", data, s.Encode())
		}
	})
}
