package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStreamStateRoundTrip: a frontier snapshot survives the wire
// format with its geometry re-read as frontier + sink state.
func TestStreamStateRoundTrip(t *testing.T) {
	s := NewStream(0xfeed, 7)
	if s.Frontier() != 0 {
		t.Errorf("fresh stream frontier = %d, want 0", s.Frontier())
	}
	s.SetStream(42, []byte("sink-state"))
	if s.Frontier() != 42 {
		t.Errorf("frontier = %d, want 42", s.Frontier())
	}
	if !bytes.Equal(s.StreamState(), []byte("sink-state")) {
		t.Errorf("sink state = %q", s.StreamState())
	}
	// A later frontier replaces, never accumulates.
	s.SetStream(50, []byte("later"))
	if s.Frontier() != 50 || len(s.Blocks) != 1 {
		t.Errorf("after second SetStream: frontier %d, %d blocks", s.Frontier(), len(s.Blocks))
	}

	path := filepath.Join(t.TempDir(), "stream.ckpt")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckStream(0xfeed, 7); err != nil {
		t.Fatalf("CheckStream on own snapshot: %v", err)
	}
	if got.Frontier() != 50 || !bytes.Equal(got.StreamState(), []byte("later")) {
		t.Errorf("loaded frontier %d state %q, want 50 %q", got.Frontier(), got.StreamState(), "later")
	}
}

// TestFrontierOtherKinds: Frontier is meaningful only for stream
// snapshots; any other kind reports 0 regardless of its trial count.
func TestFrontierOtherKinds(t *testing.T) {
	s := New(KindCampaign, 1, 2, 4096, 32)
	if s.Frontier() != 0 {
		t.Errorf("campaign snapshot frontier = %d, want 0", s.Frontier())
	}
}

// TestCheckStreamMismatches: every identity disagreement wraps
// ErrMismatch, and a stream snapshot without a sink state is corrupt.
func TestCheckStreamMismatches(t *testing.T) {
	good := func() *State {
		s := NewStream(0xfeed, 7)
		s.SetStream(10, []byte("x"))
		return s
	}
	cases := []struct {
		name string
		s    *State
		want error
	}{
		{"wrong kind", New(KindCampaign, 0xfeed, 7, 10, 1), ErrMismatch},
		{"wrong fingerprint", func() *State { s := good(); s.Fingerprint = 0xdead; return s }(), ErrMismatch},
		{"wrong seed", func() *State { s := good(); s.Seed = 8; return s }(), ErrMismatch},
		{"zero frontier", NewStream(0xfeed, 7), ErrCorrupt},
		{"empty sink state", func() *State { s := good(); s.Blocks[0] = nil; return s }(), ErrCorrupt},
	}
	for _, tc := range cases {
		if err := tc.s.CheckStream(0xfeed, 7); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if err := good().CheckStream(0xfeed, 7); err != nil {
		t.Errorf("matching snapshot rejected: %v", err)
	}
}

// TestWriterCommitStreamThrottles: CommitStream obeys the same write
// throttle as Commit, and Due mirrors it so streaming engines can skip
// materializing sink state for commits that would not be persisted.
func TestWriterCommitStreamThrottles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.ckpt")
	w := NewWriter(path, time.Minute, NewStream(0xfeed, 7))
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }
	w.last = clock // pretend a snapshot just happened: writes are throttled

	if w.Due() {
		t.Fatal("Due inside the interval")
	}
	w.CommitStream(3, []byte("s3"))
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("commit inside the interval must not write")
	}

	clock = clock.Add(2 * time.Minute)
	if !w.Due() {
		t.Fatal("Due after the interval elapsed")
	}
	w.CommitStream(9, []byte("s9"))
	st, err := Load(path)
	if err != nil {
		t.Fatalf("interval elapsed but no valid snapshot: %v", err)
	}
	if st.Frontier() != 9 || !bytes.Equal(st.StreamState(), []byte("s9")) {
		t.Errorf("snapshot frontier %d state %q, want 9 %q", st.Frontier(), st.StreamState(), "s9")
	}

	// A final flush persists the last frontier even inside the throttle.
	w.CommitStream(11, []byte("s11"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frontier() != 11 {
		t.Errorf("flushed frontier = %d, want 11", st.Frontier())
	}
	if err := st.CheckStream(0xfeed, 7); err != nil {
		t.Errorf("flushed snapshot fails its own check: %v", err)
	}
}
