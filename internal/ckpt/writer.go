package ckpt

import (
	"sync"
	"time"

	"reskit/internal/obs"
)

// Writer is the durable checkpoint hook handed to the sharded
// Monte-Carlo runners (it satisfies sim.Checkpointer): workers call
// Commit as blocks complete, and the writer folds each payload into the
// run State, snapshotting the whole state to disk at most once per
// interval — the Young/Daly trade-off in miniature: frequent snapshots
// bound the re-computation lost to a crash, sparse ones bound the I/O
// overhead. Flush forces a final snapshot (interruption, normal exit).
//
// All methods are safe for concurrent use. Disk errors never interrupt
// the simulation: the first one is retained and surfaced by Flush/Err.
type Writer struct {
	path     string
	interval time.Duration
	now      func() time.Time // injectable clock for tests

	mu    sync.Mutex
	state *State
	last  time.Time
	dirty bool
	err   error

	// Optional instruments, bound by Instrument: snapshot writes, blocks
	// committed, and the wall-clock second of the last durable snapshot.
	snapshots *obs.Counter
	blocks    *obs.Counter
	lastUnix  *obs.Gauge
}

// NewWriter returns a writer persisting state to path at most once per
// interval (default 10s when interval <= 0). The state may come from New
// (fresh run) or Load (resume).
func NewWriter(path string, interval time.Duration, state *State) *Writer {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Writer{path: path, interval: interval, now: time.Now, state: state}
}

// Instrument binds the writer's instruments on reg: the "ckpt.snapshots"
// and "ckpt.blocks_committed" counters and the "ckpt.last_snapshot_unix"
// gauge. A nil registry leaves them disabled at zero cost.
func (w *Writer) Instrument(reg *obs.Registry) {
	w.snapshots = reg.Counter("ckpt.snapshots")
	w.blocks = reg.Counter("ckpt.blocks_committed")
	w.lastUnix = reg.Gauge("ckpt.last_snapshot_unix")
}

// Restore returns the encoded partial aggregate of block b from the
// loaded snapshot, or nil when the block must be (re)computed. It
// implements the resume half of sim.Checkpointer.
func (w *Writer) Restore(b int) []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Blocks[b]
}

// Commit records the encoded partial aggregate of a freshly completed
// block and snapshots the state to disk when the interval has elapsed.
// It implements the commit half of sim.Checkpointer.
func (w *Writer) Commit(b int, payload []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.state.Blocks[b] = payload
	w.dirty = true
	w.blocks.Inc()
	if w.now().Sub(w.last) >= w.interval {
		w.writeLocked()
	}
}

// Flush forces a snapshot of the current state (if anything changed
// since the last write) and returns the first disk error encountered
// over the writer's lifetime.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dirty {
		w.writeLocked()
	}
	return w.err
}

// Err returns the first disk error encountered, without forcing a write.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// State returns the writer's run state. Callers must not mutate it while
// workers are committing.
func (w *Writer) State() *State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// writeLocked snapshots the state to disk; w.mu must be held.
func (w *Writer) writeLocked() {
	w.last = w.now()
	if err := w.state.WriteFile(w.path); err != nil {
		if w.err == nil {
			w.err = err
		}
		return
	}
	w.dirty = false
	w.snapshots.Inc()
	w.lastUnix.Set(float64(w.now().Unix()))
}
