package ckpt

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"reskit/internal/obs"
)

// PrevGeneration returns the rotated previous-generation path of a
// snapshot: before each new snapshot lands, the last good one is moved
// to path+".1", so a failed or corrupted head write never costs every
// generation at once. Resume logic (internal/engine) falls back to this
// path when the head snapshot is unusable.
func PrevGeneration(path string) string { return path + ".1" }

// Writer is the durable checkpoint hook handed to the sharded
// Monte-Carlo runners (it satisfies sim.Checkpointer): workers call
// Commit as blocks complete, and the writer folds each payload into the
// run State, snapshotting the whole state to disk at most once per
// interval — the Young/Daly trade-off in miniature: frequent snapshots
// bound the re-computation lost to a crash, sparse ones bound the I/O
// overhead. Flush forces a final snapshot (interruption, normal exit).
//
// Every snapshot write rotates the previous good snapshot to
// PrevGeneration(path) first and is verified by reading the new head
// back (decode + identity check); an unverifiable head is removed so a
// resume finds the rotated generation instead of garbage. Disk errors
// never interrupt the simulation: each one bumps the "ckpt.write_errors"
// counter, the first is logged immediately via LogTo and retained for
// Err, and the state stays dirty so the next Commit or Flush retries
// the write.
//
// All methods are safe for concurrent use.
type Writer struct {
	path     string
	interval time.Duration
	now      func() time.Time // injectable clock for tests

	mu      sync.Mutex
	state   *State
	last    time.Time
	dirty   bool
	err     error     // first disk error over the writer's lifetime
	lastErr error     // error of the most recent write attempt (nil: it stuck)
	log     io.Writer // immediate first-error surfacing (nil: discard)
	logged  bool

	// Optional instruments, bound by Instrument: snapshot writes, blocks
	// committed, write failures, and the wall-clock second of the last
	// durable snapshot.
	snapshots *obs.Counter
	blocks    *obs.Counter
	writeErrs *obs.Counter
	lastUnix  *obs.Gauge
}

// NewWriter returns a writer persisting state to path at most once per
// interval (default 10s when interval <= 0). The state may come from New
// (fresh run) or Load (resume).
func NewWriter(path string, interval time.Duration, state *State) *Writer {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Writer{path: path, interval: interval, now: time.Now, state: state}
}

// Instrument binds the writer's instruments on reg: the "ckpt.snapshots",
// "ckpt.blocks_committed" and "ckpt.write_errors" counters and the
// "ckpt.last_snapshot_unix" gauge. A nil registry leaves them disabled
// at zero cost.
func (w *Writer) Instrument(reg *obs.Registry) {
	w.snapshots = reg.Counter("ckpt.snapshots")
	w.blocks = reg.Counter("ckpt.blocks_committed")
	w.writeErrs = reg.Counter("ckpt.write_errors")
	w.lastUnix = reg.Gauge("ckpt.last_snapshot_unix")
}

// LogTo directs the writer's immediate error surfacing to out (the
// engine Log): the first failed snapshot write is reported there the
// moment it happens, instead of sitting silently in Err until the run
// ends. A nil writer discards the report.
func (w *Writer) LogTo(out io.Writer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.log = out
}

// Restore returns the encoded partial aggregate of block b from the
// loaded snapshot, or nil when the block must be (re)computed. It
// implements the resume half of sim.Checkpointer.
func (w *Writer) Restore(b int) []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Blocks[b]
}

// Commit records the encoded partial aggregate of a freshly completed
// block and snapshots the state to disk when the interval has elapsed.
// It implements the commit half of sim.Checkpointer.
func (w *Writer) Commit(b int, payload []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.state.Blocks[b] = payload
	w.dirty = true
	w.blocks.Inc()
	if w.now().Sub(w.last) >= w.interval {
		w.writeLocked()
	}
}

// CommitStream records the sink state of a streaming run at a new
// frontier (see ckpt.NewStream for the geometry) and snapshots when the
// interval has elapsed. frontier must be positive.
func (w *Writer) CommitStream(frontier int64, state []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.state.SetStream(frontier, state)
	w.dirty = true
	w.blocks.Inc()
	if w.now().Sub(w.last) >= w.interval {
		w.writeLocked()
	}
}

// Due reports whether the throttle interval has elapsed since the last
// write attempt. Streaming engines use it to skip materializing the sink
// state for a commit that would not be written anyway — unlike block
// payloads, the sink state must be re-encoded at every frontier it is
// persisted at.
func (w *Writer) Due() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now().Sub(w.last) >= w.interval
}

// Flush forces a snapshot of the current state (if anything changed
// since the last successful write) and reports whether the on-disk head
// snapshot now matches the in-memory state: nil means the final write
// stuck and verified, even if earlier writes failed mid-run (those stay
// visible through Err and the ckpt.write_errors counter). A non-nil
// error means the state on disk is stale — the run is not (fully)
// resumable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dirty {
		w.writeLocked()
	}
	if w.dirty {
		return w.lastErr
	}
	return nil
}

// Err returns the first disk error encountered over the writer's
// lifetime, without forcing a write. It keeps reporting that error even
// after a later retry succeeded; use Flush to learn whether the current
// state is durable.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// State returns the writer's run state. Callers must not mutate it while
// workers are committing.
func (w *Writer) State() *State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// writeLocked attempts a verified snapshot write; w.mu must be held.
// On failure the state stays dirty (the next Commit or Flush retries),
// the error is counted and retained, and the first one is logged
// immediately.
func (w *Writer) writeLocked() {
	w.last = w.now()
	err := w.writeVerified()
	w.lastErr = err
	if err != nil {
		w.writeErrs.Inc()
		if w.err == nil {
			w.err = err
		}
		if !w.logged && w.log != nil {
			fmt.Fprintf(w.log, "checkpoint: snapshot write failed (state kept in memory, will retry): %v\n", err)
			w.logged = true
		}
		return
	}
	w.dirty = false
	w.snapshots.Inc()
	w.lastUnix.Set(float64(w.now().Unix()))
}

// writeVerified rotates the last good snapshot to the previous
// generation, writes the new head, and reads the head back to verify it
// decodes to the state just written. An unverifiable head is removed so
// resume falls back to the rotated generation rather than trusting a
// file this writer could not read.
func (w *Writer) writeVerified() error {
	if _, serr := os.Stat(w.path); serr == nil {
		if rerr := os.Rename(w.path, PrevGeneration(w.path)); rerr != nil {
			return fmt.Errorf("rotating last good snapshot: %w", rerr)
		}
	}
	if err := w.state.WriteFile(w.path); err != nil {
		return err
	}
	loaded, err := Load(w.path)
	if err == nil {
		err = loaded.Check(w.state.Kind, w.state.Fingerprint, w.state.Seed, w.state.Trials, w.state.BlockSize)
	}
	if err == nil && loaded.Done() != w.state.Done() {
		err = fmt.Errorf("%w: readback holds %d blocks, wrote %d", ErrCorrupt, loaded.Done(), w.state.Done())
	}
	if err != nil {
		os.Remove(w.path) // fall back to the rotated generation on resume
		return fmt.Errorf("verify after write: %w", err)
	}
	return nil
}

// RemoveGenerations deletes the snapshot at path and its rotated
// previous generation, returning the first unexpected error (a missing
// file is not an error). Engines call it when a run completes and the
// snapshots have served their purpose.
func RemoveGenerations(path string) error {
	var first error
	for _, p := range []string{path, PrevGeneration(path)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}
