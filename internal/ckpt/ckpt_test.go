package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"reskit/internal/obs"
)

func sampleState() *State {
	s := New(KindCampaign, 0xfeedface, 42, 1000, 32)
	s.Blocks[0] = []byte("block-zero-partial")
	s.Blocks[3] = []byte("block-three-partial")
	s.Blocks[17] = []byte{0, 1, 2, 3, 255}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleState()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != s.Kind || got.Fingerprint != s.Fingerprint || got.Seed != s.Seed ||
		got.Trials != s.Trials || got.BlockSize != s.BlockSize || got.NumBlocks != s.NumBlocks {
		t.Errorf("header round trip: got %+v, want %+v", got, s)
	}
	if len(got.Blocks) != len(s.Blocks) {
		t.Fatalf("got %d blocks, want %d", len(got.Blocks), len(s.Blocks))
	}
	for b, p := range s.Blocks {
		if !bytes.Equal(got.Blocks[b], p) {
			t.Errorf("block %d payload = %q, want %q", b, got.Blocks[b], p)
		}
	}
}

func TestEncodeIsCanonical(t *testing.T) {
	// Same completed blocks, different insertion order -> same bytes.
	a := New(KindMonteCarlo, 1, 2, 10000, 2048)
	b := New(KindMonteCarlo, 1, 2, 10000, 2048)
	a.Blocks[0], a.Blocks[2], a.Blocks[4] = []byte("x"), []byte("y"), []byte("z")
	b.Blocks[4], b.Blocks[0], b.Blocks[2] = []byte("z"), []byte("x"), []byte("y")
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("encoding depends on insertion order")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := sampleState().Encode()
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrNotSnapshot},
		{"short header", func(d []byte) []byte { return d[:20] }, ErrNotSnapshot},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, ErrNotSnapshot},
		{"future version", func(d []byte) []byte { d[4] = 99; return d }, ErrVersion},
		{"flipped payload bit", func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }, ErrCorrupt},
		{"flipped header bit", func(d []byte) []byte { d[13] ^= 0x80; return d }, ErrCorrupt},
		{"truncated tail", func(d []byte) []byte { return d[:len(d)-3] }, ErrCorrupt},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0xab) }, ErrCorrupt},
	}
	for _, tc := range cases {
		d := append([]byte(nil), good...)
		_, err := Decode(tc.mut(d))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not wrap %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRejectsCRCMaskedInconsistency(t *testing.T) {
	// A structurally inconsistent state whose CRC is *valid* (the
	// attacker recomputed it) must still be rejected on the structural
	// checks: here NumBlocks disagreeing with trials/blockSize.
	s := sampleState()
	s.NumBlocks = 7 // truth is ceil(1000/32) = 32
	if _, err := Decode(s.Encode()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("inconsistent geometry accepted (err=%v)", err)
	}

	s2 := sampleState()
	s2.Blocks[99] = []byte("beyond numblocks") // 99 >= 32
	if _, err := Decode(s2.Encode()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-range block accepted (err=%v)", err)
	}
}

func TestCheckMismatches(t *testing.T) {
	s := New(KindCampaign, 10, 20, 1000, 32)
	if err := s.Check(KindCampaign, 10, 20, 1000, 32); err != nil {
		t.Fatalf("matching state rejected: %v", err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"kind", s.Check(KindMonteCarlo, 10, 20, 1000, 32)},
		{"fingerprint", s.Check(KindCampaign, 11, 20, 1000, 32)},
		{"seed", s.Check(KindCampaign, 10, 21, 1000, 32)},
		{"trials", s.Check(KindCampaign, 10, 20, 999, 32)},
		{"blocksize", s.Check(KindCampaign, 10, 20, 1000, 64)},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrMismatch) {
			t.Errorf("%s mismatch: error %v does not wrap ErrMismatch", tc.name, tc.err)
		}
	}
}

func TestLoadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	s := sampleState()
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Done() != s.Done() || got.Fingerprint != s.Fingerprint {
		t.Errorf("loaded state differs: %+v vs %+v", got, s)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestFingerprint(t *testing.T) {
	if Fingerprint("a", "bc") == Fingerprint("ab", "c") {
		t.Error("fingerprint ignores part boundaries")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint("x") == Fingerprint("y") {
		t.Error("fingerprint collision on trivial input")
	}
}

func TestWriterThrottlesAndFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w := NewWriter(path, time.Minute, New(KindMonteCarlo, 1, 2, 4096, 2048))
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }
	w.last = clock // pretend a snapshot just happened: writes are throttled

	w.Commit(0, []byte("p0"))
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("commit inside the interval must not write")
	}

	clock = clock.Add(2 * time.Minute)
	w.Commit(1, []byte("p1"))
	st, err := Load(path)
	if err != nil {
		t.Fatalf("interval elapsed but no valid snapshot: %v", err)
	}
	if st.Done() != 2 {
		t.Errorf("snapshot has %d blocks, want 2", st.Done())
	}

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Restore(0) == nil || w.Restore(99) != nil {
		t.Error("Restore: committed block missing or phantom block present")
	}
}

func TestWriterFinalFlushWritesPendingState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w := NewWriter(path, time.Hour, New(KindCampaign, 1, 2, 64, 32))
	w.Commit(1, []byte("pending"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Blocks[1], []byte("pending")) {
		t.Errorf("final flush lost the pending block: %+v", st.Blocks)
	}
}

func TestWriterInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w := NewWriter(path, time.Hour, New(KindCampaign, 1, 2, 64, 32))
	w.Instrument(reg)
	w.Commit(0, []byte("a"))
	w.Commit(1, []byte("b"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ckpt.blocks_committed"]; got != 2 {
		t.Errorf("ckpt.blocks_committed = %d, want 2", got)
	}
	if got := snap.Counters["ckpt.snapshots"]; got < 1 {
		t.Errorf("ckpt.snapshots = %d, want >= 1", got)
	}
	if got := snap.Gauges["ckpt.last_snapshot_unix"]; !(got > 0) {
		t.Errorf("ckpt.last_snapshot_unix = %g, want > 0", got)
	}
}

func TestWriterSurfacesDiskErrors(t *testing.T) {
	// Unwritable destination directory: Commit must not panic or block
	// the run; Flush reports the failure.
	w := NewWriter(filepath.Join(t.TempDir(), "no", "dir", "run.ckpt"), 0, New(KindCampaign, 1, 2, 64, 32))
	w.last = time.Time{} // interval elapsed immediately
	w.Commit(0, []byte("a"))
	if err := w.Flush(); err == nil {
		t.Error("Flush should surface the write error")
	}
}
