package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"reskit/internal/atomicio"
	"reskit/internal/obs"
)

// flakyInjector fails the first `failures` OpWrite consultations on
// paths under prefix, then heals.
type flakyInjector struct {
	prefix   string
	failures int
}

func (f *flakyInjector) Fault(op atomicio.Op, path string, n int) (int, error) {
	if op != atomicio.OpWrite || !strings.HasPrefix(path, f.prefix) {
		return 0, nil
	}
	if f.failures > 0 {
		f.failures--
		return 0, syscall.ENOSPC
	}
	return 0, nil
}

func TestWriterRotatesGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w := NewWriter(path, time.Hour, New(KindCampaign, 1, 2, 64, 32))

	w.Commit(0, []byte("a"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PrevGeneration(path)); !os.IsNotExist(err) {
		t.Fatal("first snapshot must not create a previous generation")
	}

	w.Commit(1, []byte("b"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	head, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Load(PrevGeneration(path))
	if err != nil {
		t.Fatalf("rotated generation unreadable: %v", err)
	}
	if head.Done() != 2 || prev.Done() != 1 {
		t.Fatalf("head holds %d blocks, prev %d; want 2 and 1", head.Done(), prev.Done())
	}
	if !bytes.Equal(prev.Blocks[0], []byte("a")) || prev.Blocks[1] != nil {
		t.Fatalf("previous generation is not the pre-rotation state: %+v", prev.Blocks)
	}
}

// The dirty-retry contract: a failed snapshot write keeps the state in
// memory, counts on ckpt.write_errors, logs the first failure once, and
// the next write retries — so a healed disk yields a durable final
// snapshot while Err still reports the mid-run failure.
func TestWriterDirtyRetryAfterWriteFailure(t *testing.T) {
	defer atomicio.SetInjector(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	atomicio.SetInjector(&flakyInjector{prefix: dir, failures: 2})

	reg := obs.NewRegistry()
	var log bytes.Buffer
	w := NewWriter(path, 0, New(KindCampaign, 1, 2, 64, 32))
	w.last = time.Time{} // interval elapsed: every Commit attempts a write
	w.Instrument(reg)
	w.LogTo(&log)

	w.Commit(0, []byte("a")) // write fails, state dirty
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write left a head snapshot behind")
	}
	if w.Err() == nil {
		t.Fatal("Err must report the failed write immediately")
	}
	firstErr := w.Err()
	if got := log.String(); strings.Count(got, "snapshot write failed") != 1 {
		t.Fatalf("first failure not logged exactly once: %q", got)
	}

	w.last = time.Time{}     // defeat the throttle: attempt another write now
	w.Commit(1, []byte("b")) // second failure: counted, not re-logged
	if got := log.String(); strings.Count(got, "snapshot write failed") != 1 {
		t.Fatalf("later failures must not spam the log: %q", got)
	}
	if got := reg.Snapshot().Counters["ckpt.write_errors"]; got != 2 {
		t.Fatalf("ckpt.write_errors = %d, want 2", got)
	}

	// Disk heals: the retry on the next commit writes everything that
	// accumulated in memory, and Flush reports a durable state.
	w.last = time.Time{}
	w.Commit(0, []byte("a2"))
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Blocks[0], []byte("a2")) || !bytes.Equal(st.Blocks[1], []byte("b")) {
		t.Fatalf("healed snapshot lost state: %+v", st.Blocks)
	}
	// Err keeps the first lifetime error even after recovery.
	if w.Err() != firstErr {
		t.Fatalf("Err = %v, want the first error retained (%v)", w.Err(), firstErr)
	}
}

func TestWriterFlushReportsStaleStateWhileDiskDead(t *testing.T) {
	defer atomicio.SetInjector(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	atomicio.SetInjector(&flakyInjector{prefix: dir, failures: 1 << 30})

	w := NewWriter(path, time.Hour, New(KindCampaign, 1, 2, 64, 32))
	w.Commit(0, []byte("a"))
	if err := w.Flush(); err == nil {
		t.Fatal("Flush must fail while the state cannot reach disk")
	}
	if w.Err() == nil {
		t.Fatal("Err must report the failure")
	}
}

// A write failure mid-sequence must leave the rotated previous
// generation as the best on-disk state, which Load can still use.
func TestWriterFailedWriteFallsBackToRotatedGeneration(t *testing.T) {
	defer atomicio.SetInjector(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	w := NewWriter(path, 0, New(KindCampaign, 1, 2, 64, 32))
	w.last = time.Time{}
	w.Commit(0, []byte("good"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Now the disk dies: the head write fails after the last good
	// snapshot was rotated aside.
	atomicio.SetInjector(&flakyInjector{prefix: dir, failures: 1 << 30})
	w.last = time.Time{}
	w.Commit(1, []byte("lost"))
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("dead-disk write left a head snapshot")
	}
	prev, err := Load(PrevGeneration(path))
	if err != nil {
		t.Fatalf("previous generation must survive the failed head write: %v", err)
	}
	if !bytes.Equal(prev.Blocks[0], []byte("good")) {
		t.Fatalf("previous generation corrupted: %+v", prev.Blocks)
	}
}

func TestRemoveGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := os.WriteFile(path, []byte("h"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(PrevGeneration(path), []byte("p"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RemoveGenerations(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("head not removed")
	}
	if _, err := os.Stat(PrevGeneration(path)); !os.IsNotExist(err) {
		t.Fatal("previous generation not removed")
	}
	// Idempotent on missing files.
	if err := RemoveGenerations(path); err != nil {
		t.Fatal(err)
	}
}
