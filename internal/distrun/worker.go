package distrun

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"reskit/internal/engine"
	"reskit/internal/httpd"
	"reskit/internal/obs"
)

// maxProtocolFailures is the number of consecutive failed protocol
// exchanges (lease or result, each already retried by the HTTP client)
// a worker tolerates before concluding the coordinator is gone.
const maxProtocolFailures = 5

// WorkerConfig describes one worker process. The worker must be built
// from the same configuration as the coordinator: Job(i) must construct
// the identical i-th job of the shared grid (same Stream, same Run
// closure over the same config), and the identity triple must match or
// the coordinator refuses every message with 409.
type WorkerConfig struct {
	// URL is the coordinator's base URL ("http://host:port").
	URL string

	// Name labels the worker in leases and metrics ("" derives
	// host:pid).
	Name string

	NumJobs     int
	Seed        uint64
	Fingerprint uint64

	// Job builds the i-th job of the shared grid.
	Job func(i int) engine.Job

	// Failure is the worker-local retry policy applied to each leased
	// batch. KeepGoing is forced on: a job that exhausts its local
	// budget is reported to the coordinator as a permanent failure —
	// the coordinator's own budget decides whether to try the job on
	// another worker — instead of killing this worker.
	Failure engine.Failure

	// Workers is the local parallelism within a leased batch
	// (engine.Spec.Workers semantics; <= 0 means all CPUs).
	Workers int

	// Client is the HTTP client ("" builds httpd.NewClient). The soak
	// tests install a chaos network plane through its transport seam.
	Client *httpd.Client

	Log io.Writer     // lease lifecycle lines (nil discards)
	Reg *obs.Registry // binds the worker's engine.* instruments
}

// RunWorker joins the run at cfg.URL and executes leases until the
// coordinator declares the run done (nil), the context is cancelled
// (ctx.Err(); the in-flight lease is abandoned and will expire and be
// requeued), the coordinator stays unreachable past the protocol
// failure budget, or a lease hits a non-retryable fault.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.URL == "" {
		return errors.New("distrun: worker needs a coordinator URL")
	}
	if cfg.NumJobs <= 0 {
		return fmt.Errorf("distrun: NumJobs must be positive, got %d", cfg.NumJobs)
	}
	if cfg.Job == nil {
		return errors.New("distrun: worker needs a Job factory")
	}
	if cfg.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Client == nil {
		cfg.Client = httpd.NewClient()
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	id := RunID{Fingerprint: Hex64(cfg.Fingerprint), Seed: Hex64(cfg.Seed), NumJobs: cfg.NumJobs}

	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		err := cfg.Client.PostJSON(ctx, cfg.URL+PathLease, LeaseRequest{RunID: id, Worker: cfg.Name}, &lr)
		if err != nil {
			if fails = protocolFailure(ctx, fails, err); fails < 0 {
				return fmt.Errorf("distrun: worker %s: leasing: %w", cfg.Name, err)
			}
			continue
		}
		fails = 0
		switch lr.Status {
		case StatusDone:
			fmt.Fprintf(logw, "distrun: worker %s: run done\n", cfg.Name)
			return nil
		case StatusWait:
			retry := time.Duration(lr.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = DefaultWaitRetry
			}
			if !sleepCtx(ctx, retry) {
				return ctx.Err()
			}
		case StatusLease:
			done, err := executeLease(ctx, cfg, id, &lr, logw)
			if err != nil {
				if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
					return ctx.Err()
				}
				if fails = protocolFailure(ctx, fails, err); fails < 0 {
					return fmt.Errorf("distrun: worker %s: %w", cfg.Name, err)
				}
				continue
			}
			if done {
				// The submission resolved the last open job: exit now
				// instead of racing the coordinator's shutdown for one
				// more lease request.
				fmt.Fprintf(logw, "distrun: worker %s: run done\n", cfg.Name)
				return nil
			}
		default:
			return fmt.Errorf("distrun: worker %s: unknown lease status %q", cfg.Name, lr.Status)
		}
	}
}

// protocolFailure books one failed exchange: it returns the new
// consecutive-failure count, or -1 when the budget is exhausted (or the
// context died) and the worker should give up. Between attempts it
// pauses with a linearly growing backoff.
func protocolFailure(ctx context.Context, fails int, err error) int {
	// A 409 means this worker belongs to a different run than the
	// coordinator: no retry can fix a configuration mismatch.
	var serr *httpd.StatusError
	if errors.As(err, &serr) && serr.Status == 409 {
		return -1
	}
	fails++
	if fails >= maxProtocolFailures || ctx.Err() != nil {
		return -1
	}
	if !sleepCtx(ctx, time.Duration(fails)*200*time.Millisecond) {
		return -1
	}
	return fails
}

// executeLease runs one leased batch through the engine — the same
// per-job substreams as a local run, because each job keeps its global
// Stream value — while a background goroutine heartbeats the lease,
// then submits payloads and permanent failures in one result request.
// done reports the coordinator's verdict that the run is over.
func executeLease(ctx context.Context, cfg WorkerConfig, id RunID, lr *LeaseResponse, logw io.Writer) (done bool, err error) {
	fmt.Fprintf(logw, "distrun: worker %s: lease %d (%d jobs)\n", cfg.Name, lr.Lease, len(lr.Jobs))

	ttl := time.Duration(lr.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbCtx, stopHeartbeats := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		heartbeatLoop(hbCtx, cfg, lr.Lease, ttl/3)
	}()

	jobs := make([]engine.Job, len(lr.Jobs))
	for k, gi := range lr.Jobs {
		jobs[k] = cfg.Job(gi)
	}
	pol := cfg.Failure
	pol.KeepGoing = true
	res, runErr := engine.Run(ctx, engine.Spec{
		Jobs:        jobs,
		Seed:        cfg.Seed,
		Fingerprint: cfg.Fingerprint,
		Workers:     cfg.Workers,
		Failure:     pol,
		Reg:         cfg.Reg,
	})
	stopHeartbeats()
	<-hbDone

	if ctx.Err() != nil {
		// Killed mid-lease: abandon without submitting. The lease
		// expires and the coordinator requeues the jobs; anything this
		// engine run completed is simply recomputed elsewhere —
		// identical bytes by construction.
		return false, ctx.Err()
	}
	// With KeepGoing forced and no snapshot layer, the only error
	// engine.Run returns here is the joined permanent-failure report,
	// mirrored in res.Failed. Anything else (a job fabricating a
	// context error) is a programming bug worth surfacing — but the
	// completed payloads are still submitted first.
	fatal := runErr
	if len(res.Failed) > 0 {
		fatal = nil
	}

	req := ResultRequest{RunID: id, Worker: cfg.Name, Lease: lr.Lease}
	for k, gi := range lr.Jobs {
		if p := res.Payloads[k]; p != nil {
			req.Results = append(req.Results, JobResultWire{Job: gi, Payload: p})
		}
	}
	for _, fe := range res.Failed {
		req.Failed = append(req.Failed, JobFailureWire{
			Job:      lr.Jobs[fe.Job],
			Attempts: fe.Attempts,
			Error:    fe.Err.Error(),
		})
	}
	var rr ResultResponse
	if err := cfg.Client.PostJSON(ctx, cfg.URL+PathResult, req, &rr); err != nil {
		// The submission may or may not have landed (a dropped response
		// still delivered the request). Either way the ledger stays
		// consistent: the lease expires, unresolved jobs are requeued,
		// and a duplicate of anything that did land is absorbed.
		return false, fmt.Errorf("submitting lease %d: %w", lr.Lease, err)
	}
	fmt.Fprintf(logw, "distrun: worker %s: lease %d submitted (%d accepted, %d duplicate)\n",
		cfg.Name, lr.Lease, rr.Accepted, rr.Duplicate)
	if fatal != nil {
		return rr.Done, fmt.Errorf("lease %d: %w", lr.Lease, fatal)
	}
	return rr.Done, nil
}

// heartbeatLoop extends the lease every interval until cancelled. Every
// beat is best-effort: a lost or rejected heartbeat must not interrupt
// the computation, because even after the lease expires a late result
// is accepted idempotently.
func heartbeatLoop(ctx context.Context, cfg WorkerConfig, leaseID uint64, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			bctx, cancel := context.WithTimeout(ctx, interval)
			var hr HeartbeatResponse
			//nolint:errcheck // best-effort by design; see above
			cfg.Client.PostJSON(bctx, cfg.URL+PathHeartbeat, HeartbeatRequest{Worker: cfg.Name, Lease: leaseID}, &hr)
			cancel()
		}
	}
}

// sleepCtx pauses for d unless the context dies first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
