package distrun

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"reskit/internal/ckpt"
	"reskit/internal/engine"
	"reskit/internal/obs"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is the heartbeat deadline: a lease with no
	// heartbeat or result for this long is presumed lost and requeued.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultTargetLease is the wall time a lease should roughly take;
	// batch sizes are fitted to it from the observed per-job latency.
	DefaultTargetLease = 2 * time.Second
	// DefaultMaxLease caps a batch regardless of how fast jobs look.
	DefaultMaxLease = 256
	// DefaultJobAttempts is the coordinator-side budget of permanent
	// failure reports per job before the job is given up (each report
	// already represents a full worker-side retry budget).
	DefaultJobAttempts = 3
	// DefaultWaitRetry is the pause StatusWait asks an idle worker for.
	DefaultWaitRetry = 200 * time.Millisecond
)

// CoordinatorConfig describes the run the coordinator owns. It is the
// distributed twin of engine.Spec: same identity triple (fingerprint,
// seed, job count), same checkpoint layer, same restore validation —
// the two sides share snapshot files interchangeably.
type CoordinatorConfig struct {
	NumJobs     int
	Seed        uint64
	Fingerprint uint64

	// Checkpoint configures the coordinator's durable ledger
	// (internal/ckpt, KindJobs — the exact format engine.Run writes, so
	// a local run can resume a distributed snapshot and vice versa).
	Checkpoint engine.Checkpoint

	// Check, when set, validates every payload before the ledger trusts
	// it — restored payloads at startup (a failure aborts construction,
	// as in engine.Run) and submitted payloads at arrival (a failure
	// counts as a failure report against the job, never poisons the
	// ledger).
	Check func(job int, payload []byte) error

	// JobName labels a job in errors (nil: "job<i>").
	JobName func(job int) string

	// JobAttempts is the permanent-failure budget per job: a job
	// reported permanently failed by workers this many times is given
	// up (KeepGoing decides how). Lease expiries never count — a missed
	// heartbeat is not proof of death, and requeue is free.
	JobAttempts int

	// KeepGoing records given-up jobs in the result (engine.JobError,
	// nil payload slot, absent from the snapshot so a resume retries
	// exactly them) instead of failing the run — the engine's degraded
	// mode, stretched across machines.
	KeepGoing bool

	LeaseTTL    time.Duration // heartbeat deadline (default DefaultLeaseTTL)
	TargetLease time.Duration // batch-sizing target (default DefaultTargetLease)
	MinLease    int           // batch floor (default 1)
	MaxLease    int           // batch cap (default DefaultMaxLease)
	WaitRetry   time.Duration // StatusWait pause (default DefaultWaitRetry)

	Log      io.Writer     // resume fallbacks and warnings (nil discards)
	Reg      *obs.Registry // binds the "distrun.*" instruments (nil disables)
	Progress *obs.Progress // ticked once per resolved job
}

// jobState is one slot of the coordinator's ledger.
type jobState uint8

const (
	statePending jobState = iota // waiting in the queue
	stateLeased                  // handed to a live lease
	stateDone                    // payload committed
	stateFailed                  // given up (keep-going)
)

// lease is one outstanding batch.
type lease struct {
	id       uint64
	worker   string
	jobs     []int
	issued   time.Time
	deadline time.Time
}

// Coordinator owns the job ledger of one distributed run: it grants
// leases, tracks heartbeats, requeues what expires, deduplicates what
// arrives twice, commits payloads to the durable snapshot, and declares
// the run over. All HTTP handlers and Wait share one mutex — the
// protocol messages are small and the payload work happens on the
// workers, so the ledger is never the bottleneck.
type Coordinator struct {
	cfg  CoordinatorConfig
	logw io.Writer

	mu          sync.Mutex
	state       []jobState
	payloads    [][]byte
	failReports []int
	failed      map[int]*engine.JobError
	queue       []int
	leases      map[uint64]*lease
	nextLease   uint64
	workers     map[string]time.Time
	ewmaNS      float64
	done        int
	restored    int
	fatal       error
	stopped     bool

	finishOnce sync.Once
	finished   chan struct{}

	writer *ckpt.Writer

	leasesIssued, leasesExpired, jobsRequeued, jobsRetried *obs.Counter
	jobsCompleted, jobsRestoredC, dupResults               *obs.Counter
	failureReports, jobsFailed, jobsUnfailed, heartbeats   *obs.Counter
	workersLive, leaseBatch, jobNSEwma                     *obs.Gauge
}

// NewCoordinator builds the ledger, restoring completed jobs from the
// snapshot when Checkpoint.Resume is set (with the same head-then-
// previous-generation fallback and payload validation as engine.Run).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.NumJobs <= 0 {
		return nil, fmt.Errorf("distrun: NumJobs must be positive, got %d", cfg.NumJobs)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.TargetLease <= 0 {
		cfg.TargetLease = DefaultTargetLease
	}
	if cfg.MinLease < 1 {
		cfg.MinLease = 1
	}
	if cfg.MaxLease < cfg.MinLease {
		cfg.MaxLease = DefaultMaxLease
		if cfg.MaxLease < cfg.MinLease {
			cfg.MaxLease = cfg.MinLease
		}
	}
	if cfg.JobAttempts <= 0 {
		cfg.JobAttempts = DefaultJobAttempts
	}
	if cfg.WaitRetry <= 0 {
		cfg.WaitRetry = DefaultWaitRetry
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}

	n := cfg.NumJobs
	c := &Coordinator{
		cfg:         cfg,
		logw:        logw,
		state:       make([]jobState, n),
		payloads:    make([][]byte, n),
		failReports: make([]int, n),
		failed:      make(map[int]*engine.JobError),
		leases:      make(map[uint64]*lease),
		workers:     make(map[string]time.Time),
		finished:    make(chan struct{}),

		leasesIssued:   cfg.Reg.Counter("distrun.leases_issued"),
		leasesExpired:  cfg.Reg.Counter("distrun.leases_expired"),
		jobsRequeued:   cfg.Reg.Counter("distrun.jobs_requeued"),
		jobsRetried:    cfg.Reg.Counter("distrun.jobs_retried"),
		jobsCompleted:  cfg.Reg.Counter("distrun.jobs_completed"),
		jobsRestoredC:  cfg.Reg.Counter("distrun.jobs_restored"),
		dupResults:     cfg.Reg.Counter("distrun.results_duplicate"),
		failureReports: cfg.Reg.Counter("distrun.failure_reports"),
		jobsFailed:     cfg.Reg.Counter("distrun.jobs_failed"),
		jobsUnfailed:   cfg.Reg.Counter("distrun.jobs_unfailed"),
		heartbeats:     cfg.Reg.Counter("distrun.heartbeats"),
		workersLive:    cfg.Reg.Gauge("distrun.workers_live"),
		leaseBatch:     cfg.Reg.Gauge("distrun.lease_batch"),
		jobNSEwma:      cfg.Reg.Gauge("distrun.job_ns_ewma"),
	}
	cfg.Reg.Gauge("distrun.jobs_total").Set(float64(n))

	if cfg.Checkpoint.Path != "" {
		st := ckpt.New(ckpt.KindJobs, cfg.Fingerprint, cfg.Seed, int64(n), 1)
		if cfg.Checkpoint.Resume {
			if loaded := engine.ResumableState(logw, cfg.Checkpoint.Path, cfg.Fingerprint, cfg.Seed, int64(n)); loaded != nil {
				st = loaded
			}
		}
		c.writer = ckpt.NewWriter(cfg.Checkpoint.Path, cfg.Checkpoint.Interval, st)
		c.writer.Instrument(cfg.Reg)
		c.writer.LogTo(logw)
		for i := 0; i < n; i++ {
			payload := c.writer.Restore(i)
			if payload == nil {
				continue
			}
			if cfg.Check != nil {
				if err := cfg.Check(i, payload); err != nil {
					return nil, fmt.Errorf("distrun: restoring job %d (%s): %w", i, c.jobName(i), err)
				}
			}
			c.payloads[i] = payload
			c.state[i] = stateDone
			c.done++
			c.restored++
			c.jobsRestoredC.Inc()
			cfg.Progress.Add(1)
		}
	}

	c.queue = make([]int, 0, n-c.done)
	for i := 0; i < n; i++ {
		if c.state[i] == statePending {
			c.queue = append(c.queue, i)
		}
	}
	return c, nil
}

// jobName labels job i for errors.
func (c *Coordinator) jobName(i int) string {
	if c.cfg.JobName != nil {
		return c.cfg.JobName(i)
	}
	return fmt.Sprintf("job%d", i)
}

// Stats is a point-in-time ledger summary.
type Stats struct {
	Done     int // jobs with a committed payload (restored included)
	Restored int
	Failed   int // jobs given up under keep-going
	Pending  int // queued, waiting for a lease
	Leased   int // out on live leases
	Workers  int // workers heard from at least once
}

// Stats snapshots the ledger.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Done: c.done, Restored: c.restored, Failed: len(c.failed), Workers: len(c.workers)}
	for _, st := range c.state {
		switch st {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		}
	}
	return s
}

// Handler returns the coordinator's protocol mux (lease, heartbeat,
// result, healthz). The caller mounts it on a hardened listener
// (internal/httpd) and may add /metrics beside it.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathResult, c.handleResult)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// checkID guards the ledger against a worker from a different run.
func (c *Coordinator) checkID(id RunID) error {
	switch {
	case uint64(id.Fingerprint) != c.cfg.Fingerprint:
		return fmt.Errorf("distrun: worker fingerprint %016x, run fingerprint %016x",
			uint64(id.Fingerprint), c.cfg.Fingerprint)
	case uint64(id.Seed) != c.cfg.Seed:
		return fmt.Errorf("distrun: worker seed %016x, run seed %016x", uint64(id.Seed), c.cfg.Seed)
	case id.NumJobs != c.cfg.NumJobs:
		return fmt.Errorf("distrun: worker has %d jobs, run has %d", id.NumJobs, c.cfg.NumJobs)
	}
	return nil
}

// runOverLocked reports whether no further leases should be granted.
// The >= is a backstop: done and failed are kept disjoint (a late
// success evicts the job from the failed set), so equality is the
// expected trigger, but a counting bug must never leave Wait hanging.
func (c *Coordinator) runOverLocked() bool {
	return c.stopped || c.fatal != nil || c.done+len(c.failed) >= c.cfg.NumJobs
}

// maybeFinishLocked wakes Wait when the run is over.
func (c *Coordinator) maybeFinishLocked() {
	if c.fatal != nil || c.done+len(c.failed) >= c.cfg.NumJobs {
		c.finishOnce.Do(func() { close(c.finished) })
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := c.checkID(req.RunID); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.workers[req.Worker] = now
	if c.runOverLocked() {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusDone})
		return
	}
	batch := leaseSize(c.ewmaNS, c.cfg.TargetLease, c.cfg.MinLease, c.cfg.MaxLease)
	c.leaseBatch.Set(float64(batch))
	jobs := c.popPendingLocked(batch)
	if len(jobs) == 0 {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusWait, RetryMS: c.cfg.WaitRetry.Milliseconds()})
		return
	}
	c.nextLease++
	l := &lease{id: c.nextLease, worker: req.Worker, jobs: jobs, issued: now, deadline: now.Add(c.cfg.LeaseTTL)}
	c.leases[l.id] = l
	c.leasesIssued.Inc()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, LeaseResponse{
		Status: StatusLease, Lease: l.id, Jobs: jobs, TTLMS: c.cfg.LeaseTTL.Milliseconds(),
	})
}

// popPendingLocked dequeues up to n jobs that are still pending —
// stale queue entries (jobs resolved by a late result while requeued)
// are skipped and dropped.
func (c *Coordinator) popPendingLocked(n int) []int {
	var jobs []int
	for len(jobs) < n && len(c.queue) > 0 {
		j := c.queue[0]
		c.queue = c.queue[1:]
		if c.state[j] != statePending {
			continue
		}
		c.state[j] = stateLeased
		jobs = append(jobs, j)
	}
	return jobs
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.workers[req.Worker] = now
	c.heartbeats.Inc()
	l, ok := c.leases[req.Lease]
	if ok {
		l.deadline = now.Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: ok, TTLMS: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if err := c.checkID(req.RunID); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	for _, jr := range req.Results {
		if jr.Job < 0 || jr.Job >= c.cfg.NumJobs {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("distrun: job index %d out of %d", jr.Job, c.cfg.NumJobs)})
			return
		}
	}
	for _, jf := range req.Failed {
		if jf.Job < 0 || jf.Job >= c.cfg.NumJobs {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("distrun: job index %d out of %d", jf.Job, c.cfg.NumJobs)})
			return
		}
	}

	now := time.Now()
	c.mu.Lock()
	c.workers[req.Worker] = now
	var resp ResultResponse
	for _, jr := range req.Results {
		if c.state[jr.Job] == stateDone {
			// A requeued job finished twice, or a retried submission
			// landed twice: the payloads are identical by construction,
			// the ledger keeps the first.
			resp.Duplicate++
			c.dupResults.Inc()
			continue
		}
		if c.stopped {
			// Wait has returned and the final snapshot is flushed (or
			// flushing): accepting now would mutate a result the caller
			// already holds. The job stays incomplete; a resumed
			// coordinator will re-issue it.
			continue
		}
		if c.cfg.Check != nil {
			if err := c.cfg.Check(jr.Job, jr.Payload); err != nil {
				// A given-up job stays given up — another failure report
				// would re-enter recordFailureLocked's terminal branch
				// and double-book the job.
				if c.state[jr.Job] != stateFailed {
					c.recordFailureLocked(jr.Job, 1, fmt.Errorf("payload rejected: %w", err))
				}
				continue
			}
		}
		if c.state[jr.Job] == stateFailed {
			// Reachable under at-least-once delivery: late failure
			// reports from expired leases exhausted the budget while a
			// requeued copy was still leased to a healthy worker that
			// then succeeded. The payload wins — evict the job from the
			// failed set so done and failed stay disjoint and the run
			// can still finish exactly.
			delete(c.failed, jr.Job)
			c.jobsUnfailed.Inc()
			fmt.Fprintf(c.logw, "distrun: job %d (%s) succeeded after being given up; failure withdrawn\n",
				jr.Job, c.jobName(jr.Job))
		}
		c.acceptLocked(jr.Job, jr.Payload)
		resp.Accepted++
	}
	for _, jf := range req.Failed {
		if c.stopped || c.state[jf.Job] == stateDone || c.state[jf.Job] == stateFailed {
			continue
		}
		c.recordFailureLocked(jf.Job, jf.Attempts, errors.New(jf.Error))
	}
	if l, ok := c.leases[req.Lease]; ok {
		c.observeLeaseLocked(l, now)
		// Whatever the submission did not resolve goes back to the
		// queue — a worker that drained early still returns its lease.
		for _, j := range l.jobs {
			if c.state[j] == stateLeased {
				c.state[j] = statePending
				c.queue = append(c.queue, j)
				c.jobsRequeued.Inc()
			}
		}
		delete(c.leases, req.Lease)
	}
	resp.Done = c.runOverLocked()
	c.maybeFinishLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// acceptLocked commits one fresh payload to the ledger and the durable
// snapshot.
func (c *Coordinator) acceptLocked(job int, payload []byte) {
	c.payloads[job] = payload
	c.state[job] = stateDone
	c.done++
	c.jobsCompleted.Inc()
	c.cfg.Progress.Add(1)
	if c.writer != nil {
		c.writer.Commit(job, payload)
	}
}

// recordFailureLocked books one permanent-failure report against a job:
// below the budget the job is requeued for another worker, at the
// budget it is given up — into Result.Failed under KeepGoing, into a
// fatal run error otherwise.
func (c *Coordinator) recordFailureLocked(job, attempts int, err error) {
	c.failureReports.Inc()
	c.failReports[job]++
	if c.failReports[job] < c.cfg.JobAttempts {
		if c.state[job] == stateLeased {
			c.state[job] = statePending
			c.queue = append(c.queue, job)
		}
		c.jobsRetried.Inc()
		return
	}
	c.state[job] = stateFailed
	c.jobsFailed.Inc()
	je := &engine.JobError{Job: job, Name: c.jobName(job), Attempts: c.failReports[job] * maxInt(attempts, 1), Err: err}
	if c.cfg.KeepGoing {
		c.failed[job] = je
		return
	}
	if c.fatal == nil {
		c.fatal = fmt.Errorf("distrun: giving up after %d permanent worker reports: %w", c.failReports[job], je)
	}
}

// observeLeaseLocked feeds the cost model: the lease's wall time per
// job updates the EWMA that sizes future batches, and the per-worker
// throughput gauge.
func (c *Coordinator) observeLeaseLocked(l *lease, now time.Time) {
	elapsed := now.Sub(l.issued)
	if elapsed <= 0 || len(l.jobs) == 0 {
		return
	}
	per := float64(elapsed.Nanoseconds()) / float64(len(l.jobs))
	if c.ewmaNS == 0 {
		c.ewmaNS = per
	} else {
		c.ewmaNS = ewmaAlpha*per + (1-ewmaAlpha)*c.ewmaNS
	}
	c.jobNSEwma.Set(c.ewmaNS)
	if secs := elapsed.Seconds(); secs > 0 {
		c.cfg.Reg.Gauge(workerRateGauge(l.worker)).Set(float64(len(l.jobs)) / secs)
	}
}

// workerRateGauge names the per-worker throughput gauge. The worker
// segment is remote-supplied, so every registration must be paired with
// the removal in reapLocked — otherwise worker churn grows the registry
// without bound.
func workerRateGauge(worker string) string {
	return "distrun.worker_jobs_per_sec." + worker
}

// ewmaAlpha weights the newest lease observation in the latency EWMA.
const ewmaAlpha = 0.3

// leaseSize fits a batch to the target lease wall time from the
// per-job latency estimate; with no estimate yet it starts at the
// floor, so the first observation arrives quickly.
func leaseSize(ewmaNS float64, target time.Duration, min, max int) int {
	if ewmaNS <= 0 {
		return min
	}
	n := int(float64(target.Nanoseconds()) / ewmaNS)
	if n < min {
		return min
	}
	if n > max {
		return max
	}
	return n
}

// reapLocked expires overdue leases (requeueing their unresolved jobs)
// and refreshes the worker-liveness gauge.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		for _, j := range l.jobs {
			if c.state[j] == stateLeased {
				c.state[j] = statePending
				c.queue = append(c.queue, j)
				c.jobsRequeued.Inc()
			}
		}
		delete(c.leases, id)
		c.leasesExpired.Inc()
		fmt.Fprintf(c.logw, "distrun: lease %d (worker %s) expired; %d jobs requeued\n", id, l.worker, len(l.jobs))
	}
	live := 0
	for w, t := range c.workers {
		age := now.Sub(t)
		switch {
		case age <= 2*c.cfg.LeaseTTL:
			live++
		case age > 10*c.cfg.LeaseTTL:
			delete(c.workers, w)
			c.cfg.Reg.RemoveGauge(workerRateGauge(w))
		}
	}
	c.workersLive.Set(float64(live))
}

// Wait blocks until every job is resolved, a job exhausts its budget
// without KeepGoing, or ctx is cancelled, then flushes the final
// snapshot and assembles the result. The contract mirrors engine.Run:
// ctx.Err() after an interruption (the partial result is valid and the
// snapshot resumable), a joined multi-error of engine.JobError values
// after a degraded keep-going run, an engine.SnapshotError joined in
// when the final snapshot could not be persisted, the fatal job error
// otherwise. After Wait returns, lease requests answer StatusDone, so
// surviving workers drain and exit cleanly.
func (c *Coordinator) Wait(ctx context.Context) (*engine.Result, error) {
	reap := c.cfg.LeaseTTL / 4
	if reap > 250*time.Millisecond {
		reap = 250 * time.Millisecond
	}
	if reap < 5*time.Millisecond {
		reap = 5 * time.Millisecond
	}
	tick := time.NewTicker(reap)
	defer tick.Stop()
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-c.finished:
			break loop
		case <-tick.C:
			c.mu.Lock()
			c.reapLocked(time.Now())
			c.maybeFinishLocked()
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	c.stopped = true
	res := &engine.Result{
		Payloads: c.payloads,
		Restored: c.restored,
		Fresh:    c.done - c.restored,
	}
	runErr := c.fatal
	if len(c.failed) > 0 {
		failed := make([]*engine.JobError, 0, len(c.failed))
		for _, je := range c.failed {
			failed = append(failed, je)
		}
		sort.Slice(failed, func(a, b int) bool { return failed[a].Job < failed[b].Job })
		res.Failed = failed
		if runErr == nil {
			errs := make([]error, len(failed))
			for i, fe := range failed {
				errs[i] = fe
			}
			runErr = errors.Join(errs...)
		}
	}
	complete := c.done == c.cfg.NumJobs
	c.mu.Unlock()

	if c.writer != nil {
		if ferr := c.writer.Flush(); ferr != nil {
			serr := &engine.SnapshotError{Err: ferr}
			if runErr == nil {
				runErr = serr
			} else {
				runErr = errors.Join(runErr, serr)
			}
		}
		if runErr == nil && ctx.Err() == nil && complete {
			if rerr := ckpt.RemoveGenerations(c.cfg.Checkpoint.Path); rerr != nil {
				fmt.Fprintf(c.logw, "checkpoint: completed but could not remove %s: %v\n", c.cfg.Checkpoint.Path, rerr)
			}
		}
	}
	if runErr != nil {
		return res, runErr
	}
	return res, ctx.Err()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- HTTP plumbing ----------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

// decodeInto enforces POST + size limits and decodes the JSON body.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return false
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("distrun: bad request JSON: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}
