package distrun_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"reskit/internal/chaos"
	"reskit/internal/distrun"
	"reskit/internal/engine"
	"reskit/internal/httpd"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

// chaoticJob wraps the shared test grid with a deterministic job fault
// plane (transient errors and hangs) and a pacing delay that keeps the
// run mid-flight long enough to kill things. The payload bytes are
// untouched.
func chaoticJob(jp *chaos.JobPlane, pace time.Duration) func(int) engine.Job {
	return func(i int) engine.Job {
		j := testJob(i)
		inner := j.Run
		j.Run = func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
			switch jp.Next(i) {
			case chaos.FateErr:
				return engine.JobResult{}, jp.Errf(i)
			case chaos.FateHang:
				<-ctx.Done()
				return engine.JobResult{}, ctx.Err()
			}
			if pace > 0 {
				select {
				case <-ctx.Done():
					return engine.JobResult{}, ctx.Err()
				case <-time.After(pace):
				}
			}
			return inner(ctx, src)
		}
		return j
	}
}

// soakWorker builds a worker whose every protocol exchange flows
// through a chaos network plane, and whose jobs flow through the job
// fault plane. The returned plane exposes what was injected.
func soakWorker(url, name string, n int, netSeed uint64, job func(int) engine.Job) (distrun.WorkerConfig, *chaos.NetPlane) {
	cl := httpd.NewClient()
	cl.SetRetry(3, 10*time.Millisecond)
	plane := chaos.NewNetPlane(chaos.NetFaults{
		Seed:       netSeed,
		DropReq:    0.05,
		DropResp:   0.05,
		DupReq:     0.04,
		PathPrefix: "/v1/",
	}, cl.Transport())
	cl.SetTransport(plane)
	return distrun.WorkerConfig{
		URL: url, Name: name, NumJobs: n,
		Seed: testSeed, Fingerprint: testFP,
		Job:     job,
		Workers: 2,
		Failure: engine.Failure{Retries: 5, Backoff: time.Millisecond, JobTimeout: 100 * time.Millisecond},
		Client:  cl,
	}, plane
}

// TestDistSoak is the distributed chaos gate: worker fleets of 1, 4 and
// 8 execute the grid while the network drops, duplicates and delays
// protocol messages (≥5% of them), jobs fail and hang transiently, one
// worker is killed mid-run and replaced, and the coordinator itself is
// killed mid-run and resumed from its snapshot. The finished run must
// be bit-identical to an undisturbed single-process run.
func TestDistSoak(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("short soak: reduced grid")
	}
	n := 150
	if testing.Short() {
		n = 60
	}
	want := localReference(t, n)
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			soakRun(t, n, workers, want)
		})
	}
}

func soakRun(t *testing.T, n, workers int, want [][]byte) {
	path := filepath.Join(t.TempDir(), "soak.ckpt")
	reg := obs.NewRegistry()
	var faultedNet int64
	var faultedJobs int64

	// --- Phase 1: chaos until a third of the grid is committed, then
	// the coordinator is killed.
	cfg := fastCoordinator(n)
	cfg.LeaseTTL = 250 * time.Millisecond
	cfg.Checkpoint = engine.Checkpoint{Path: path, Interval: time.Millisecond}
	cfg.Reg = reg
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	h := startHarness(t, runCtx, cfg)

	jp1 := chaos.NewJobPlane(chaos.JobFaults{Seed: testSeed + uint64(workers), ErrRate: 0.05, HangRate: 0.02}, n)
	job1 := chaoticJob(jp1, 2*time.Millisecond)

	wctx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	victimCtx, killVictim := context.WithCancel(wctx)
	defer killVictim()
	var wg sync.WaitGroup
	var planeMu sync.Mutex
	var planes []*chaos.NetPlane
	start := func(ctx context.Context, name string, netSeed uint64, job func(int) engine.Job) {
		wcfg, plane := soakWorker(h.url, name, n, netSeed, job)
		planeMu.Lock()
		planes = append(planes, plane)
		planeMu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Errors are expected here: the victim is killed, and the
			// rest lose their coordinator mid-run.
			distrun.RunWorker(ctx, wcfg) //nolint:errcheck
		}()
	}
	start(victimCtx, "victim", testSeed^1, job1)
	for w := 1; w < workers; w++ {
		start(wctx, fmt.Sprintf("w%d", w), testSeed^uint64(w+1), job1)
	}

	waitDone := func(target int, what string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for h.co.Stats().Done < target {
			if time.Now().After(deadline) {
				t.Fatalf("%s: stalled at %d/%d jobs", what, h.co.Stats().Done, target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Kill one worker early — likely mid-lease, so its lease expires and
	// the jobs are requeued — and replace it.
	waitDone(n/6, "phase 1 pre-kill")
	killVictim()
	start(wctx, "replacement", testSeed^0x77, job1)

	waitDone(n/3, "phase 1")
	cancelRun()
	res1, err1 := h.wait(t)
	if err1 != nil && !errors.Is(err1, context.Canceled) {
		t.Fatalf("phase 1 Wait: %v", err1)
	}
	cancelWorkers()
	wg.Wait()
	h.srv.Shutdown(time.Second)
	committed := res1.Done()
	for _, p := range planes {
		faultedNet += p.Stats().Injected()
	}
	e, hg := jp1.Injected()
	faultedJobs += e + hg

	// --- Phase 2: resumed coordinator, fresh fleet, chaos stays on.
	cfg2 := fastCoordinator(n)
	cfg2.LeaseTTL = 250 * time.Millisecond
	cfg2.Checkpoint = engine.Checkpoint{Path: path, Interval: time.Millisecond, Resume: true}
	cfg2.Reg = reg
	ctx2 := context.Background()
	h2 := startHarness(t, ctx2, cfg2)
	if got := h2.co.Stats().Restored; got != committed {
		t.Fatalf("resume restored %d jobs, phase 1 committed %d", got, committed)
	}

	jp2 := chaos.NewJobPlane(chaos.JobFaults{Seed: testSeed + 0x5a5a + uint64(workers), ErrRate: 0.05, HangRate: 0.02}, n)
	job2 := chaoticJob(jp2, 0)
	var wg2 sync.WaitGroup
	var planes2 []*chaos.NetPlane
	werrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wcfg, plane := soakWorker(h2.url, fmt.Sprintf("p2w%d", w), n, testSeed^uint64(0x100+w), job2)
		planes2 = append(planes2, plane)
		wg2.Add(1)
		go func(w int) {
			defer wg2.Done()
			werrs[w] = distrun.RunWorker(ctx2, wcfg)
		}(w)
	}
	wg2.Wait()
	for w, werr := range werrs {
		if werr != nil {
			t.Errorf("phase 2 worker %d: %v", w, werr)
		}
	}
	res2, err2 := h2.wait(t)
	if err2 != nil {
		t.Fatalf("phase 2 Wait: %v", err2)
	}
	if res2.Done() != n {
		t.Fatalf("phase 2 finished %d/%d jobs", res2.Done(), n)
	}
	for _, p := range planes2 {
		faultedNet += p.Stats().Injected()
	}
	e2, hg2 := jp2.Injected()
	faultedJobs += e2 + hg2

	// Bit-identity against the undisturbed local run — the whole point.
	for i := range want {
		if !bytes.Equal(res2.Payloads[i], want[i]) {
			t.Fatalf("job %d payload differs from undisturbed local run", i)
		}
	}

	// Non-vacuity: the chaos actually bit, on both planes.
	if faultedNet == 0 {
		t.Fatalf("soak injected no network faults")
	}
	if faultedJobs == 0 {
		t.Fatalf("soak injected no job faults")
	}
	if v := reg.Counter("distrun.leases_issued").Value(); v == 0 {
		t.Fatalf("no leases issued?")
	}
	t.Logf("workers=%d: net faults=%d job faults=%d leases=%d expired=%d requeued=%d dup=%d",
		workers, faultedNet, faultedJobs,
		reg.Counter("distrun.leases_issued").Value(),
		reg.Counter("distrun.leases_expired").Value(),
		reg.Counter("distrun.jobs_requeued").Value(),
		reg.Counter("distrun.results_duplicate").Value())
}
