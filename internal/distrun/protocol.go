// Package distrun distributes a grid of engine jobs across machines: a
// coordinator owns the job ledger and the durable snapshot, workers
// lease batches over HTTP, execute them through internal/engine — the
// same per-job rng substreams, the same failure policy — and return the
// payload bytes, which the coordinator merges in job order. The final
// result is bit-identical to a single-process engine.Run of the same
// Spec and seed *by construction*: a job's payload is a pure function
// of (config, seed, stream), so it does not matter which machine
// computed it, how many times it was computed, or in what order the
// results arrived.
//
// Robustness is the point of the package, and it leans on the same
// insight as the paper's prediction-window relatives (Aupy/Robert/
// Vivien): the coordinator acts on *unreliable* signals of worker loss.
// A missed heartbeat is not proof of death — it expires the lease and
// requeues the jobs, but a slow worker's late result for a requeued job
// is still accepted, exactly once, deduplicated by job index (any two
// results for a job are identical bytes, so "exactly once" is a ledger
// property, not a correctness requirement). And because the engine's
// durable snapshots make restarts free (Sodre's restart-vs-checkpoint
// observation), worker loss always resolves to a cheap requeue: no
// work already committed to the coordinator's snapshot is ever redone,
// and a killed coordinator resumes from its own snapshot with only the
// incomplete leases re-issued.
package distrun

import (
	"fmt"
	"strconv"
)

// Protocol endpoints served by the coordinator (Coordinator.Handler).
const (
	PathLease     = "/v1/lease"
	PathHeartbeat = "/v1/heartbeat"
	PathResult    = "/v1/result"
)

// Lease response statuses.
const (
	// StatusLease carries a batch of job indices to execute.
	StatusLease = "lease"
	// StatusWait means every remaining job is currently leased to
	// someone: ask again after RetryMS (an expiry may requeue work).
	StatusWait = "wait"
	// StatusDone means the run is over — completed, failed, or stopped —
	// and the worker should exit.
	StatusDone = "done"
)

// Hex64 is a uint64 that marshals as a 16-digit hex JSON string: run
// fingerprints and seeds must survive JSON consumers that parse numbers
// as float64.
type Hex64 uint64

// MarshalJSON renders the value as "%016x".
func (h Hex64) MarshalJSON() ([]byte, error) {
	return []byte(`"` + fmt.Sprintf("%016x", uint64(h)) + `"`), nil
}

// UnmarshalJSON accepts the hex-string form.
func (h *Hex64) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("distrun: hex64 must be a hex string, got %s", data)
	}
	v, err := strconv.ParseUint(string(data[1:len(data)-1]), 16, 64)
	if err != nil {
		return fmt.Errorf("distrun: bad hex64: %w", err)
	}
	*h = Hex64(v)
	return nil
}

// RunID identifies the run a message belongs to. The coordinator
// rejects any message whose identity disagrees with its own (409), so a
// worker built from different flags — different laws, trial count, or
// seed — can never contribute payloads to the wrong ledger.
type RunID struct {
	Fingerprint Hex64 `json:"fingerprint"`
	Seed        Hex64 `json:"seed"`
	NumJobs     int   `json:"num_jobs"`
}

// LeaseRequest asks for a batch of jobs.
type LeaseRequest struct {
	RunID
	Worker string `json:"worker"`
}

// LeaseResponse answers a lease request; the meaning of the fields
// depends on Status.
type LeaseResponse struct {
	Status string `json:"status"`
	// Lease identifies the granted lease for heartbeats and results.
	Lease uint64 `json:"lease,omitempty"`
	// Jobs are the leased job indices into the shared job grid.
	Jobs []int `json:"jobs,omitempty"`
	// TTLMS is the lease deadline: without a heartbeat or a result
	// within this many milliseconds the lease expires and the jobs are
	// requeued.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// RetryMS (StatusWait) is how long to pause before asking again.
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// HeartbeatResponse acknowledges a heartbeat. OK false means the lease
// is gone — expired and requeued, or never existed. The worker may keep
// computing and still submit: a late result is accepted idempotently.
type HeartbeatResponse struct {
	OK    bool  `json:"ok"`
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// JobResultWire carries one completed job's payload (base64 over JSON).
type JobResultWire struct {
	Job     int    `json:"job"`
	Payload []byte `json:"payload"`
}

// JobFailureWire reports one job the worker gave up on after its local
// retry budget.
type JobFailureWire struct {
	Job      int    `json:"job"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// ResultRequest returns a lease's outcome: completed payloads and
// permanent local failures. A request whose lease has already expired
// is still processed — completed jobs the ledger does not yet hold are
// accepted, jobs that were requeued and finished elsewhere count as
// duplicates.
type ResultRequest struct {
	RunID
	Worker  string           `json:"worker"`
	Lease   uint64           `json:"lease"`
	Results []JobResultWire  `json:"results,omitempty"`
	Failed  []JobFailureWire `json:"failed,omitempty"`
}

// ResultResponse summarizes what the ledger did with a result
// submission.
type ResultResponse struct {
	Accepted  int  `json:"accepted"`
	Duplicate int  `json:"duplicate"`
	Done      bool `json:"done"`
}

// maxRequestBytes bounds a protocol request body. Payloads are a few
// hundred bytes each and batches are capped, so this is generous.
const maxRequestBytes = 64 << 20
