package distrun

import (
	"testing"
	"time"
)

// TestLeaseSize: the cost model starts at the floor (no estimate), fits
// the batch to the target wall time once an estimate exists, and clamps
// at both ends.
func TestLeaseSize(t *testing.T) {
	cases := []struct {
		name   string
		ewmaNS float64
		target time.Duration
		min    int
		max    int
		want   int
	}{
		{"no estimate starts at floor", 0, 2 * time.Second, 1, 256, 1},
		{"fits target", float64(10 * time.Millisecond), 2 * time.Second, 1, 256, 200},
		{"clamps at cap", float64(time.Microsecond), 2 * time.Second, 1, 256, 256},
		{"clamps at floor", float64(10 * time.Second), 2 * time.Second, 4, 256, 4},
		{"exact fit", float64(500 * time.Millisecond), 2 * time.Second, 1, 256, 4},
	}
	for _, tc := range cases {
		if got := leaseSize(tc.ewmaNS, tc.target, tc.min, tc.max); got != tc.want {
			t.Errorf("%s: leaseSize(%v, %v, %d, %d) = %d, want %d",
				tc.name, tc.ewmaNS, tc.target, tc.min, tc.max, got, tc.want)
		}
	}
}
