package distrun_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"reskit/internal/distrun"
	"reskit/internal/engine"
	"reskit/internal/httpd"
	"reskit/internal/obs"
	"reskit/internal/rng"
)

const (
	testSeed = uint64(0xfeedbeef12345678)
	testFP   = uint64(0x00d15742d15742aa)
)

// testJob builds job i of the shared test grid: a deterministic mix of
// 32 substream draws, so the payload is a pure function of (seed, i).
func testJob(i int) engine.Job {
	return engine.Job{
		Name:   fmt.Sprintf("job%d", i),
		Stream: uint64(i),
		Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
			var h uint64 = 1469598103934665603
			for k := 0; k < 32; k++ {
				h = (h ^ src.Uint64()) * 1099511628211
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, h)
			return engine.JobResult{Payload: payload}, nil
		},
	}
}

// slowJob wraps the test grid with a per-job pause so a test can catch
// the run mid-flight; the payload is untouched, so reference payloads
// from the plain grid still apply.
func slowJob(d time.Duration) func(int) engine.Job {
	return func(i int) engine.Job {
		j := testJob(i)
		inner := j.Run
		j.Run = func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
			select {
			case <-ctx.Done():
				return engine.JobResult{}, ctx.Err()
			case <-time.After(d):
			}
			return inner(ctx, src)
		}
		return j
	}
}

// localReference runs the same grid through the local engine.
func localReference(t *testing.T, n int) [][]byte {
	t.Helper()
	jobs := make([]engine.Job, n)
	for i := range jobs {
		jobs[i] = testJob(i)
	}
	res, err := engine.Run(context.Background(), engine.Spec{
		Jobs: jobs, Seed: testSeed, Fingerprint: testFP,
	})
	if err != nil {
		t.Fatalf("local reference run: %v", err)
	}
	return res.Payloads
}

// harness wires one coordinator behind a real HTTP listener and runs
// Wait in the background.
type harness struct {
	co  *distrun.Coordinator
	srv *httpd.Server
	url string

	res  *engine.Result
	err  error
	done chan struct{}
}

func startHarness(t *testing.T, ctx context.Context, cfg distrun.CoordinatorConfig) *harness {
	t.Helper()
	co, err := distrun.NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv, err := httpd.Listen("127.0.0.1:0", co.Handler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	h := &harness{co: co, srv: srv, url: "http://" + srv.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.res, h.err = co.Wait(ctx)
	}()
	t.Cleanup(func() { srv.Shutdown(time.Second) })
	return h
}

// wait blocks for the coordinator's verdict.
func (h *harness) wait(t *testing.T) (*engine.Result, error) {
	t.Helper()
	select {
	case <-h.done:
		return h.res, h.err
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator did not finish")
		return nil, nil
	}
}

// fastCoordinator returns a config tuned for test latencies.
func fastCoordinator(n int) distrun.CoordinatorConfig {
	return distrun.CoordinatorConfig{
		NumJobs:     n,
		Seed:        testSeed,
		Fingerprint: testFP,
		LeaseTTL:    300 * time.Millisecond,
		TargetLease: 20 * time.Millisecond,
		MaxLease:    8,
		WaitRetry:   10 * time.Millisecond,
	}
}

func fastWorker(url, name string, n int) distrun.WorkerConfig {
	cl := httpd.NewClient()
	cl.SetRetry(2, 20*time.Millisecond)
	return distrun.WorkerConfig{
		URL: url, Name: name, NumJobs: n,
		Seed: testSeed, Fingerprint: testFP,
		Job: testJob, Workers: 2, Client: cl,
	}
}

// runWorkers runs count workers to completion and returns their errors.
func runWorkers(ctx context.Context, url string, n, count int) []error {
	errs := make([]error, count)
	var wg sync.WaitGroup
	for w := 0; w < count; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = distrun.RunWorker(ctx, fastWorker(url, fmt.Sprintf("w%d", w), n))
		}(w)
	}
	wg.Wait()
	return errs
}

// TestDistBitIdentity: a distributed run with any worker count yields
// payloads bit-identical to a single-process engine run of the same
// grid.
func TestDistBitIdentity(t *testing.T) {
	const n = 40
	want := localReference(t, n)
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx := context.Background()
			h := startHarness(t, ctx, fastCoordinator(n))
			for _, werr := range runWorkers(ctx, h.url, n, workers) {
				if werr != nil {
					t.Errorf("worker: %v", werr)
				}
			}
			res, err := h.wait(t)
			if err != nil {
				t.Fatalf("Wait: %v", err)
			}
			if res.Done() != n || res.Fresh != n {
				t.Fatalf("Done=%d Fresh=%d, want %d fresh", res.Done(), res.Fresh, n)
			}
			for i := range want {
				if !bytes.Equal(res.Payloads[i], want[i]) {
					t.Fatalf("job %d payload differs from local run", i)
				}
			}
		})
	}
}

// TestDistLeaseExpiryRequeueAndLateDedup: a leaseholder that never
// heartbeats loses its lease to the reaper, the jobs are requeued and
// completed by a live worker, and the stalled holder's late submission
// is absorbed as duplicates without corrupting the ledger.
func TestDistLeaseExpiryRequeueAndLateDedup(t *testing.T) {
	const n = 12
	want := localReference(t, n)
	ctx := context.Background()
	reg := obs.NewRegistry()
	cfg := fastCoordinator(n)
	cfg.LeaseTTL = 150 * time.Millisecond
	cfg.MinLease = n // the stalled client grabs the whole grid
	cfg.Reg = reg
	h := startHarness(t, ctx, cfg)

	id := distrun.RunID{Fingerprint: distrun.Hex64(testFP), Seed: distrun.Hex64(testSeed), NumJobs: n}
	cl := httpd.NewClient()
	var lr distrun.LeaseResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathLease, distrun.LeaseRequest{RunID: id, Worker: "stalled"}, &lr); err != nil {
		t.Fatalf("stalled lease: %v", err)
	}
	if lr.Status != distrun.StatusLease || len(lr.Jobs) != n {
		t.Fatalf("stalled lease got status %q with %d jobs, want the full grid", lr.Status, len(lr.Jobs))
	}

	// No heartbeat: the reaper expires the lease and a live worker
	// finishes the requeued jobs.
	if errs := runWorkers(ctx, h.url, n, 1); errs[0] != nil {
		t.Fatalf("live worker: %v", errs[0])
	}
	res, err := h.wait(t)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}

	// The stalled holder finally "finishes" and submits everything.
	req := distrun.ResultRequest{RunID: id, Worker: "stalled", Lease: lr.Lease}
	for _, gi := range lr.Jobs {
		src := rng.NewStream(testSeed, uint64(gi))
		jr, jerr := testJob(gi).Run(ctx, src)
		if jerr != nil {
			t.Fatalf("stalled compute: %v", jerr)
		}
		req.Results = append(req.Results, distrun.JobResultWire{Job: gi, Payload: jr.Payload})
	}
	var rr distrun.ResultResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathResult, req, &rr); err != nil {
		t.Fatalf("late submit: %v", err)
	}
	if rr.Accepted != 0 || rr.Duplicate != n || !rr.Done {
		t.Fatalf("late submit: accepted=%d duplicate=%d done=%v, want 0/%d/true", rr.Accepted, rr.Duplicate, rr.Done, n)
	}
	for i := range want {
		if !bytes.Equal(res.Payloads[i], want[i]) {
			t.Fatalf("job %d payload differs after expiry+requeue", i)
		}
	}
	if got := reg.Counter("distrun.leases_expired").Value(); got < 1 {
		t.Fatalf("leases_expired = %d, want >= 1", got)
	}
	if got := reg.Counter("distrun.jobs_requeued").Value(); got < int64(n) {
		t.Fatalf("jobs_requeued = %d, want >= %d", got, n)
	}
	if got := reg.Counter("distrun.results_duplicate").Value(); got != int64(n) {
		t.Fatalf("results_duplicate = %d, want %d", got, n)
	}
}

// TestDistLateSuccessAfterGiveUp: a job exhausts its failure budget via
// reports from one worker while a requeued copy is still out on another
// worker that then succeeds. The success must win — evicted from the
// failed set, counted done exactly once — and the run must still
// terminate (done+failed overshooting NumJobs used to hang Wait
// forever).
func TestDistLateSuccessAfterGiveUp(t *testing.T) {
	const n = 2
	want := localReference(t, n)
	ctx := context.Background()
	reg := obs.NewRegistry()
	cfg := fastCoordinator(n)
	cfg.KeepGoing = true
	cfg.JobAttempts = 1
	cfg.MinLease = n
	cfg.Reg = reg
	h := startHarness(t, ctx, cfg)

	id := distrun.RunID{Fingerprint: distrun.Hex64(testFP), Seed: distrun.Hex64(testSeed), NumJobs: n}
	cl := httpd.NewClient()
	var lr distrun.LeaseResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathLease, distrun.LeaseRequest{RunID: id, Worker: "flaky"}, &lr); err != nil {
		t.Fatalf("flaky lease: %v", err)
	}
	if lr.Status != distrun.StatusLease || len(lr.Jobs) != n {
		t.Fatalf("flaky lease got status %q with %d jobs, want the full grid", lr.Status, len(lr.Jobs))
	}

	// The flaky worker burns job 0's whole failure budget; job 1 goes
	// back to the queue with the returned lease.
	fail := distrun.ResultRequest{
		RunID: id, Worker: "flaky", Lease: lr.Lease,
		Failed: []distrun.JobFailureWire{{Job: 0, Attempts: 1, Error: "synthetic permanent failure"}},
	}
	var fr distrun.ResultResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathResult, fail, &fr); err != nil {
		t.Fatalf("failure report: %v", err)
	}
	if fr.Done {
		t.Fatalf("run declared over with job 1 unresolved")
	}

	// A healthy worker picks up the requeue and — as under at-least-once
	// delivery with an earlier requeue of job 0 — submits successes for
	// both jobs, including the one already given up.
	var lr2 distrun.LeaseResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathLease, distrun.LeaseRequest{RunID: id, Worker: "healthy"}, &lr2); err != nil {
		t.Fatalf("healthy lease: %v", err)
	}
	good := distrun.ResultRequest{RunID: id, Worker: "healthy", Lease: lr2.Lease}
	for gi := 0; gi < n; gi++ {
		src := rng.NewStream(testSeed, uint64(gi))
		jr, jerr := testJob(gi).Run(ctx, src)
		if jerr != nil {
			t.Fatalf("healthy compute: %v", jerr)
		}
		good.Results = append(good.Results, distrun.JobResultWire{Job: gi, Payload: jr.Payload})
	}
	var gr distrun.ResultResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathResult, good, &gr); err != nil {
		t.Fatalf("late success submit: %v", err)
	}
	if gr.Accepted != n || gr.Duplicate != 0 || !gr.Done {
		t.Fatalf("late success: accepted=%d duplicate=%d done=%v, want %d/0/true", gr.Accepted, gr.Duplicate, gr.Done, n)
	}

	res, err := h.wait(t)
	if err != nil {
		t.Fatalf("Wait: %v (the withdrawn failure must not degrade the run)", err)
	}
	if res.Done() != n || len(res.Failed) != 0 {
		t.Fatalf("Done=%d Failed=%v, want %d done and no failures", res.Done(), res.Failed, n)
	}
	for i := range want {
		if !bytes.Equal(res.Payloads[i], want[i]) {
			t.Fatalf("job %d payload differs after failure withdrawal", i)
		}
	}
	if got := reg.Counter("distrun.jobs_unfailed").Value(); got != 1 {
		t.Fatalf("jobs_unfailed = %d, want 1", got)
	}
	if got := reg.Counter("distrun.jobs_failed").Value(); got != 1 {
		t.Fatalf("jobs_failed = %d, want 1", got)
	}
}

// TestDistDuplicateSubmission: the same result request delivered twice
// (a retransmission) is accepted once and absorbed once.
func TestDistDuplicateSubmission(t *testing.T) {
	const n = 6
	ctx := context.Background()
	cfg := fastCoordinator(n)
	cfg.MinLease = n
	h := startHarness(t, ctx, cfg)

	id := distrun.RunID{Fingerprint: distrun.Hex64(testFP), Seed: distrun.Hex64(testSeed), NumJobs: n}
	cl := httpd.NewClient()
	var lr distrun.LeaseResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathLease, distrun.LeaseRequest{RunID: id, Worker: "dup"}, &lr); err != nil {
		t.Fatalf("lease: %v", err)
	}
	req := distrun.ResultRequest{RunID: id, Worker: "dup", Lease: lr.Lease}
	for _, gi := range lr.Jobs {
		src := rng.NewStream(testSeed, uint64(gi))
		jr, _ := testJob(gi).Run(ctx, src)
		req.Results = append(req.Results, distrun.JobResultWire{Job: gi, Payload: jr.Payload})
	}
	var first, second distrun.ResultResponse
	if err := cl.PostJSON(ctx, h.url+distrun.PathResult, req, &first); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := cl.PostJSON(ctx, h.url+distrun.PathResult, req, &second); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if first.Accepted != n || first.Duplicate != 0 {
		t.Fatalf("first submit: accepted=%d duplicate=%d, want %d/0", first.Accepted, first.Duplicate, n)
	}
	if second.Accepted != 0 || second.Duplicate != n {
		t.Fatalf("second submit: accepted=%d duplicate=%d, want 0/%d", second.Accepted, second.Duplicate, n)
	}
	if res, err := h.wait(t); err != nil || res.Done() != n {
		t.Fatalf("Wait: res.Done=%d err=%v", res.Done(), err)
	}
}

// TestDistCoordinatorResume: killing the coordinator mid-run loses no
// committed work — a new coordinator over the same snapshot restores
// the completed jobs and the finished run is bit-identical.
func TestDistCoordinatorResume(t *testing.T) {
	const n = 60
	want := localReference(t, n)
	path := filepath.Join(t.TempDir(), "dist.ckpt")

	cfg := fastCoordinator(n)
	cfg.Checkpoint = engine.Checkpoint{Path: path, Interval: time.Millisecond}
	runCtx, cancelRun := context.WithCancel(context.Background())
	h := startHarness(t, runCtx, cfg)

	// One worker chews on the grid until a third is done, then the
	// coordinator is killed.
	wctx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		wcfg := fastWorker(h.url, "w0", n)
		wcfg.Job = slowJob(5 * time.Millisecond)
		distrun.RunWorker(wctx, wcfg) //nolint:errcheck // killed below
	}()
	deadline := time.Now().Add(20 * time.Second)
	for h.co.Stats().Done < n/3 {
		if time.Now().After(deadline) {
			t.Fatalf("run never reached %d jobs", n/3)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelRun()
	res1, err1 := h.wait(t)
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("interrupted Wait returned %v, want context.Canceled", err1)
	}
	doneAtKill := res1.Restored + res1.Fresh
	cancelWorkers()
	wwg.Wait()
	h.srv.Shutdown(time.Second)

	// Resurrected coordinator: only incomplete work is re-issued.
	cfg2 := fastCoordinator(n)
	cfg2.Checkpoint = engine.Checkpoint{Path: path, Interval: time.Millisecond, Resume: true}
	ctx := context.Background()
	h2 := startHarness(t, ctx, cfg2)
	if got := h2.co.Stats().Restored; got != doneAtKill {
		t.Fatalf("restored %d jobs, %d were committed at kill", got, doneAtKill)
	}
	for _, werr := range runWorkers(ctx, h2.url, n, 2) {
		if werr != nil {
			t.Errorf("worker: %v", werr)
		}
	}
	res2, err2 := h2.wait(t)
	if err2 != nil {
		t.Fatalf("resumed Wait: %v", err2)
	}
	if res2.Restored != doneAtKill || res2.Done() != n {
		t.Fatalf("resumed run: restored=%d done=%d, want %d restored and %d done", res2.Restored, res2.Done(), doneAtKill, n)
	}
	for i := range want {
		if !bytes.Equal(res2.Payloads[i], want[i]) {
			t.Fatalf("job %d payload differs after coordinator kill+resume", i)
		}
	}
}

// TestDistRunIDMismatch: a worker built from different flags is turned
// away with 409 and gives up instead of polluting the ledger.
func TestDistRunIDMismatch(t *testing.T) {
	const n = 4
	ctx := context.Background()
	h := startHarness(t, ctx, fastCoordinator(n))

	wcfg := fastWorker(h.url, "alien", n)
	wcfg.Seed = testSeed + 1 // a different run
	err := distrun.RunWorker(ctx, wcfg)
	if err == nil {
		t.Fatalf("mismatched worker joined the run")
	}
	var serr *httpd.StatusError
	if !errors.As(err, &serr) || serr.Status != 409 {
		t.Fatalf("mismatched worker error = %v, want a 409 StatusError", err)
	}
	if h.co.Stats().Done != 0 {
		t.Fatalf("mismatched worker completed jobs")
	}
}

// TestDistKeepGoingBudget: a job that fails permanently on every worker
// exhausts the coordinator's report budget; under KeepGoing the run
// degrades exactly like a local keep-going run — every other payload
// present and correct, the poisoned job in Result.Failed.
func TestDistKeepGoingBudget(t *testing.T) {
	const n, bad = 14, 7
	want := localReference(t, n)
	poisoned := func(i int) engine.Job {
		j := testJob(i)
		if i == bad {
			j.Run = func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
				return engine.JobResult{}, errors.New("synthetic permanent failure")
			}
		}
		return j
	}

	ctx := context.Background()
	reg := obs.NewRegistry()
	cfg := fastCoordinator(n)
	cfg.KeepGoing = true
	cfg.JobAttempts = 2
	cfg.Reg = reg
	h := startHarness(t, ctx, cfg)

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcfg := fastWorker(h.url, fmt.Sprintf("w%d", w), n)
			wcfg.Job = poisoned
			if werr := distrun.RunWorker(ctx, wcfg); werr != nil {
				t.Errorf("worker: %v", werr)
			}
		}(w)
	}
	wg.Wait()
	res, err := h.wait(t)
	if err == nil || !strings.Contains(err.Error(), "synthetic permanent failure") {
		t.Fatalf("degraded Wait error = %v, want the joined job failure", err)
	}
	var je *engine.JobError
	if !errors.As(err, &je) || je.Job != bad {
		t.Fatalf("degraded Wait error %v does not carry JobError for job %d", err, bad)
	}
	if len(res.Failed) != 1 || res.Failed[0].Job != bad {
		t.Fatalf("Failed = %+v, want exactly job %d", res.Failed, bad)
	}
	if res.Done() != n-1 {
		t.Fatalf("Done = %d, want %d", res.Done(), n-1)
	}
	for i := range want {
		if i == bad {
			if res.Payloads[i] != nil {
				t.Fatalf("poisoned job %d has a payload", i)
			}
			continue
		}
		if !bytes.Equal(res.Payloads[i], want[i]) {
			t.Fatalf("job %d payload differs in degraded run", i)
		}
	}
	if got := reg.Counter("distrun.failure_reports").Value(); got < 2 {
		t.Fatalf("failure_reports = %d, want >= 2", got)
	}
	if got := reg.Counter("distrun.jobs_failed").Value(); got != 1 {
		t.Fatalf("jobs_failed = %d, want 1", got)
	}

	// Without KeepGoing the same poison is fatal to the run.
	cfg2 := fastCoordinator(n)
	cfg2.JobAttempts = 1
	h2 := startHarness(t, ctx, cfg2)
	wcfg := fastWorker(h2.url, "w0", n)
	wcfg.Job = poisoned
	distrun.RunWorker(ctx, wcfg) //nolint:errcheck // run outcome checked via Wait
	if _, err := h2.wait(t); err == nil || !strings.Contains(err.Error(), "giving up after") {
		t.Fatalf("fail-fast Wait error = %v, want a fatal give-up", err)
	}
}
