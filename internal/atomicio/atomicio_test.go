package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte(`{"a":1}` + "\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("read back %q, want %q", got, want)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Errorf("read back %q, want new", got)
	}
}

func TestWriteFileLeavesNoTempBehind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.txt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only out.txt", names)
	}
}

func TestAbortPreservesPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-writ")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous" {
		t.Errorf("abort clobbered the destination: %q", got)
	}
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("abort left temp file %s", e.Name())
		}
	}
}

func TestCreateStreamsAndCommitsOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("line\n")); err != nil {
			t.Fatal(err)
		}
	}
	// Destination must not exist before commit.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("destination exists before Close (err=%v)", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "line\nline\nline\n" {
		t.Errorf("read back %q", got)
	}
	f.Abort() // no-op after Close; must not remove the committed file
	if _, err := os.Stat(path); err != nil {
		t.Errorf("abort after close removed the committed file: %v", err)
	}
}

func TestWriteFileBadDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
