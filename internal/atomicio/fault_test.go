package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// scriptedInjector fails exactly the scripted operations, in order of
// consultation, and passes everything else through.
type scriptedInjector struct {
	fail  map[Op]bool
	short int // bytes still written on a faulted OpWrite
	seen  []Op
}

func (s *scriptedInjector) Fault(op Op, path string, n int) (int, error) {
	s.seen = append(s.seen, op)
	if !s.fail[op] {
		return 0, nil
	}
	switch op {
	case OpWrite:
		return s.short, syscall.ENOSPC
	default:
		return 0, syscall.EIO
	}
}

// assertIntact checks the destination still holds want (or is missing
// when want is nil) and that no temporary litter survived the failure.
func assertIntact(t *testing.T, dir, path string, want []byte) {
	t.Helper()
	got, err := os.ReadFile(path)
	if want == nil {
		if !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("destination should not exist, read = %q, %v", got, err)
		}
	} else {
		if err != nil || string(got) != string(want) {
			t.Fatalf("destination = %q, %v; want %q intact", got, err, want)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temporary litter left behind: %s", e.Name())
		}
	}
}

func TestWriteFileInjectedFaults(t *testing.T) {
	cases := []struct {
		name  string
		fail  Op
		short int
	}{
		{"short write ENOSPC", OpWrite, 3},
		{"zero-byte write ENOSPC", OpWrite, 0},
		{"fsync EIO", OpSync, 0},
		{"rename EIO", OpRename, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/fresh destination", func(t *testing.T) {
			defer SetInjector(nil)
			dir := t.TempDir()
			path := filepath.Join(dir, "out.bin")
			SetInjector(&scriptedInjector{fail: map[Op]bool{tc.fail: true}, short: tc.short})
			err := WriteFile(path, []byte("payload!"), 0o644)
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			// A missing destination must stay missing — never a
			// truncated prefix of the new data.
			assertIntact(t, dir, path, nil)
		})
		t.Run(tc.name+"/existing destination", func(t *testing.T) {
			defer SetInjector(nil)
			dir := t.TempDir()
			path := filepath.Join(dir, "out.bin")
			if err := os.WriteFile(path, []byte("last good"), 0o644); err != nil {
				t.Fatal(err)
			}
			SetInjector(&scriptedInjector{fail: map[Op]bool{tc.fail: true}, short: tc.short})
			err := WriteFile(path, []byte("payload!"), 0o644)
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			// The previous contents survive untouched.
			assertIntact(t, dir, path, []byte("last good"))
		})
	}
}

func TestWriteFileFaultErrnoSurfaces(t *testing.T) {
	defer SetInjector(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	SetInjector(&scriptedInjector{fail: map[Op]bool{OpWrite: true}, short: 2})
	if err := WriteFile(path, []byte("abcdef"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC to surface through WriteFile", err)
	}
	SetInjector(&scriptedInjector{fail: map[Op]bool{OpRename: true}})
	if err := WriteFile(path, []byte("abcdef"), 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO to surface through WriteFile", err)
	}
}

func TestWriteFileConsultsAllOps(t *testing.T) {
	defer SetInjector(nil)
	dir := t.TempDir()
	inj := &scriptedInjector{fail: map[Op]bool{}}
	SetInjector(inj)
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpWrite, OpSync, OpRename}
	if len(inj.seen) != len(want) {
		t.Fatalf("consulted %v, want %v", inj.seen, want)
	}
	for i := range want {
		if inj.seen[i] != want[i] {
			t.Fatalf("consulted %v, want %v", inj.seen, want)
		}
	}
}

func TestCreateCloseInjectedSyncFault(t *testing.T) {
	defer SetInjector(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "streamed.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	SetInjector(&scriptedInjector{fail: map[Op]bool{OpSync: true}})
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("new contents")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close = %v, want injected EIO", err)
	}
	assertIntact(t, dir, path, []byte("old"))
}

func TestInjectorRemovedRestoresCleanWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	SetInjector(&scriptedInjector{fail: map[Op]bool{OpWrite: true}})
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("fault expected while injector installed")
	}
	SetInjector(nil)
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("write after removing injector: %v", err)
	}
}
