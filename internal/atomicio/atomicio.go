// Package atomicio provides crash-safe file output: every artifact is
// written to a temporary file in the destination directory, fsynced, and
// renamed into place. A reader therefore observes either the previous
// complete file or the new complete file — never a truncated or
// interleaved one — no matter when the writing process dies.
//
// Two shapes are offered: WriteFile for artifacts materialized in memory
// (JSON snapshots, checkpoint images), and Create for artifacts streamed
// incrementally (JSONL traces), which commit on Close and vanish on
// Abort.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces the file at path with data: the bytes go
// to a temporary sibling first, are fsynced, and the temporary is renamed
// over path. On any error the destination is left untouched and the
// temporary is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := create(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Close()
}

// File is an in-flight atomic write. Write streams into the temporary
// file; Close fsyncs and renames it over the destination; Abort discards
// it, leaving any previous destination file intact.
type File struct {
	tmp  *os.File
	path string
	done bool
}

// Create starts an atomic write of path. The destination is not touched
// until Close succeeds.
func Create(path string) (*File, error) {
	return create(path, 0o644)
}

func create(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write implements io.Writer on the temporary file.
func (f *File) Write(p []byte) (int, error) {
	return f.tmp.Write(p)
}

// Close fsyncs the temporary file and renames it over the destination,
// then best-effort syncs the directory so the rename itself is durable.
// Closing twice is an error on the second call's temp file only; the
// committed destination is never disturbed.
func (f *File) Close() error {
	if f.done {
		return fmt.Errorf("atomicio: %s already closed", f.path)
	}
	f.done = true
	if err := f.tmp.Sync(); err != nil {
		f.tmp.Close()
		os.Remove(f.tmp.Name())
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	syncDir(filepath.Dir(f.path))
	return nil
}

// Abort discards the temporary file without touching the destination.
// Safe after Close (a no-op then), so `defer f.Abort()` pairs naturally
// with an explicit Close on the success path.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// syncDir makes a completed rename durable. Errors are ignored: some
// filesystems (and all of Windows) reject directory fsync, and the rename
// has already provided atomicity — durability of the directory entry is
// best-effort hardening.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}
