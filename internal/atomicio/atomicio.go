// Package atomicio provides crash-safe file output: every artifact is
// written to a temporary file in the destination directory, fsynced, and
// renamed into place. A reader therefore observes either the previous
// complete file or the new complete file — never a truncated or
// interleaved one — no matter when the writing process dies.
//
// Two shapes are offered: WriteFile for artifacts materialized in memory
// (JSON snapshots, checkpoint images), and Create for artifacts streamed
// incrementally (JSONL traces), which commit on Close and vanish on
// Abort.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Op identifies one primitive step of an atomic write, for fault
// injection (see Injector).
type Op uint8

// Primitive operations an Injector may intercept.
const (
	OpWrite  Op = iota + 1 // writing data into the temporary file
	OpSync                 // fsyncing the temporary file before the rename
	OpRename               // renaming the temporary file over the destination
)

// String returns the operation name.
func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Injector is a fault plane over the primitive operations of an atomic
// write, used by the chaos tests to attack the durability stack with the
// disk faults it claims to survive. Fault is consulted once per
// operation with the *destination* path (never the temporary name) and,
// for OpWrite, the number of bytes about to be written. Returning a
// non-nil error fails the operation; for OpWrite, `short` bytes of the
// data (clamped to [0, n]) are still written first, modeling an
// ENOSPC-style short write that leaves a truncated temporary behind.
// Latency injection needs no special support: Fault may simply sleep
// before returning. Implementations must be safe for concurrent use.
type Injector interface {
	Fault(op Op, path string, n int) (short int, err error)
}

// injector is the process-wide fault plane; nil (the default) costs one
// atomic pointer load per primitive operation.
var injector atomic.Pointer[Injector]

// SetInjector installs inj as the process-wide fault plane, or removes
// it when inj is nil. It exists for chaos and robustness tests; nothing
// in production wiring calls it.
func SetInjector(inj Injector) {
	if inj == nil {
		injector.Store(nil)
		return
	}
	injector.Store(&inj)
}

// faultFor consults the installed injector, if any.
func faultFor(op Op, path string, n int) (int, error) {
	p := injector.Load()
	if p == nil {
		return 0, nil
	}
	return (*p).Fault(op, path, n)
}

// WriteFile atomically replaces the file at path with data: the bytes go
// to a temporary sibling first, are fsynced, and the temporary is renamed
// over path. On any error the destination is left untouched and the
// temporary is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := create(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Close()
}

// File is an in-flight atomic write. Write streams into the temporary
// file; Close fsyncs and renames it over the destination; Abort discards
// it, leaving any previous destination file intact.
type File struct {
	tmp  *os.File
	path string
	done bool
}

// Create starts an atomic write of path. The destination is not touched
// until Close succeeds.
func Create(path string) (*File, error) {
	return create(path, 0o644)
}

func create(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write implements io.Writer on the temporary file.
func (f *File) Write(p []byte) (int, error) {
	if short, err := faultFor(OpWrite, f.path, len(p)); err != nil {
		if short < 0 {
			short = 0
		}
		if short > len(p) {
			short = len(p)
		}
		// Model the short write faithfully: the prefix really lands in
		// the temporary file, so a buggy caller that ignored the error
		// would commit a truncated artifact.
		f.tmp.Write(p[:short]) //nolint:errcheck // the injected error wins
		return short, err
	}
	return f.tmp.Write(p)
}

// Close fsyncs the temporary file and renames it over the destination,
// then best-effort syncs the directory so the rename itself is durable.
// Closing twice is an error on the second call's temp file only; the
// committed destination is never disturbed.
func (f *File) Close() error {
	if f.done {
		return fmt.Errorf("atomicio: %s already closed", f.path)
	}
	f.done = true
	if _, err := faultFor(OpSync, f.path, 0); err != nil {
		f.tmp.Close()
		os.Remove(f.tmp.Name())
		return err
	}
	if err := f.tmp.Sync(); err != nil {
		f.tmp.Close()
		os.Remove(f.tmp.Name())
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	if _, err := faultFor(OpRename, f.path, 0); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	syncDir(filepath.Dir(f.path))
	return nil
}

// Abort discards the temporary file without touching the destination.
// Safe after Close (a no-op then), so `defer f.Abort()` pairs naturally
// with an explicit Close on the success path.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// syncDir makes a completed rename durable. Errors are ignored: some
// filesystems (and all of Windows) reject directory fsync, and the rename
// has already provided atomicity — durability of the directory entry is
// best-effort hardening.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}
