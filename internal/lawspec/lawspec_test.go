package lawspec

import (
	"math"
	"testing"

	"reskit/internal/dist"
)

func TestParseValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		mean float64
		tol  float64
	}{
		{"uniform:1,7.5", 4.25, 1e-12},
		{"exp:0.5", 2, 1e-12},
		{"norm:3,0.5", 3, 1e-12},
		{"lognorm:0,0.5", math.Exp(0.125), 1e-12},
		{"gamma:2,1.5", 3, 1e-12},
		{"weibull:1,2", 2, 1e-12},
		{"det:4.2", 4.2, 1e-12},
		{"norm:5,0.4@[0,inf]", 5, 1e-6},
		{"exp:0.5@[1,5]", 2.374, 0.01},
	}
	for _, c := range cases {
		d, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if math.Abs(d.Mean()-c.mean) > c.tol {
			t.Errorf("%q: mean %g, want %g", c.spec, d.Mean(), c.mean)
		}
	}
}

func TestParseTruncationBounds(t *testing.T) {
	d, err := Parse("exp:0.5@[1,5]")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Support()
	if lo != 1 || hi != 5 {
		t.Errorf("support [%g, %g]", lo, hi)
	}
	d, err = Parse("norm:5,0.4@[0, inf]")
	if err != nil {
		t.Fatal(err)
	}
	_, hi = d.Support()
	if !math.IsInf(hi, 1) {
		t.Errorf("hi %g, want +inf", hi)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"nolaw",
		"mystery:1,2",
		"uniform:1",         // wrong arity
		"uniform:1,2,3",     // wrong arity
		"norm:a,b",          // not numbers
		"exp:-1",            // invalid parameter
		"uniform:2,1",       // a >= b
		"exp:0.5@1,5",       // missing brackets
		"exp:0.5@[1]",       // missing comma
		"exp:0.5@[x,5]",     // bad bound
		"exp:0.5@[5,1]",     // reversed bounds
		"uniform:0,1@[5,6]", // zero mass
		"poisson:3",         // discrete in continuous position
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestParseDiscrete(t *testing.T) {
	d, err := ParseDiscrete("poisson:3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(dist.Poisson); !ok || d.Mean() != 3 {
		t.Errorf("got %v", d)
	}
	for _, spec := range []string{"poisson:0", "poisson:1,2", "norm:0,1", "poisson"} {
		if _, err := ParseDiscrete(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestParseExtraLaws(t *testing.T) {
	d, err := Parse("tri:1,4,7.5")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-(1+4+7.5)/3) > 1e-12 {
		t.Errorf("tri mean %g", d.Mean())
	}
	d, err = Parse("pareto:2,3.5@[2,9]")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Support()
	if lo != 2 || hi != 9 {
		t.Errorf("truncated pareto support [%g, %g]", lo, hi)
	}
	for _, bad := range []string{"tri:1,2", "tri:3,2,4", "pareto:0,1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}
