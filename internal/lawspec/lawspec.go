// Package lawspec parses the compact distribution syntax shared by the
// command-line tools:
//
//	uniform:A,B            uniform on [A, B]
//	exp:RATE               Exponential with the given rate (mean 1/RATE)
//	norm:MU,SIGMA          Normal
//	lognorm:MU,SIGMA       LogNormal (underlying Normal parameters)
//	gamma:K,THETA          Gamma with shape K and scale THETA
//	weibull:K,LAMBDA       Weibull
//	pareto:XM,ALPHA        Pareto type I (heavy tail)
//	tri:A,M,B              triangular with mode M on [A, B]
//	beta:ALPHA,BETA        Beta on [0, 1] (rescale via @[LO,HI]-style Affine in code)
//	det:V                  point mass at V
//	poisson:LAMBDA         Poisson (discrete)
//
// Any continuous law may carry a truncation suffix "@[LO,HI]"; HI may be
// "inf". Examples:
//
//	exp:0.5@[1,5]          the paper's Figure 2(a) checkpoint law
//	norm:5,0.4@[0,inf]     the Section 4 checkpoint law
package lawspec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"reskit/internal/dist"
)

// Parse parses a continuous law spec.
func Parse(spec string) (dist.Continuous, error) {
	body, trunc, hasTrunc := strings.Cut(spec, "@")
	base, err := parseBase(body)
	if err != nil {
		return nil, err
	}
	if !hasTrunc {
		return base, nil
	}
	lo, hi, err := parseBounds(trunc)
	if err != nil {
		return nil, fmt.Errorf("lawspec: %q: %w", spec, err)
	}
	var t dist.Continuous
	err = capturePanic(func() { t = dist.Truncate(base, lo, hi) })
	if err != nil {
		return nil, fmt.Errorf("lawspec: %q: %w", spec, err)
	}
	return t, nil
}

// ParseDiscrete parses a discrete law spec (currently poisson:LAMBDA).
func ParseDiscrete(spec string) (dist.Discrete, error) {
	name, argStr, ok := strings.Cut(spec, ":")
	if !ok || name != "poisson" {
		return nil, fmt.Errorf("lawspec: %q: only poisson:LAMBDA is a discrete law", spec)
	}
	args, err := parseArgs(argStr, 1)
	if err != nil {
		return nil, fmt.Errorf("lawspec: %q: %w", spec, err)
	}
	var p dist.Poisson
	if err := capturePanic(func() { p = dist.NewPoisson(args[0]) }); err != nil {
		return nil, fmt.Errorf("lawspec: %q: %w", spec, err)
	}
	return p, nil
}

func parseBase(body string) (dist.Continuous, error) {
	name, argStr, ok := strings.Cut(body, ":")
	if !ok {
		return nil, fmt.Errorf("lawspec: %q: expected NAME:ARGS", body)
	}
	var want int
	switch name {
	case "exp", "det":
		want = 1
	case "uniform", "norm", "lognorm", "gamma", "weibull", "pareto":
		want = 2
	case "tri":
		want = 3
	case "beta":
		want = 2
	case "poisson":
		return nil, fmt.Errorf("lawspec: poisson is discrete; use it only where a discrete law is accepted")
	default:
		return nil, fmt.Errorf("lawspec: unknown law %q", name)
	}
	args, err := parseArgs(argStr, want)
	if err != nil {
		return nil, fmt.Errorf("lawspec: %q: %w", body, err)
	}
	var d dist.Continuous
	err = capturePanic(func() {
		switch name {
		case "uniform":
			d = dist.NewUniform(args[0], args[1])
		case "exp":
			d = dist.NewExponential(args[0])
		case "norm":
			d = dist.NewNormal(args[0], args[1])
		case "lognorm":
			d = dist.NewLogNormal(args[0], args[1])
		case "gamma":
			d = dist.NewGamma(args[0], args[1])
		case "weibull":
			d = dist.NewWeibull(args[0], args[1])
		case "pareto":
			d = dist.NewPareto(args[0], args[1])
		case "tri":
			d = dist.NewTriangular(args[0], args[1], args[2])
		case "beta":
			d = dist.NewBeta(args[0], args[1])
		case "det":
			d = dist.NewDeterministic(args[0])
		}
	})
	if err != nil {
		return nil, fmt.Errorf("lawspec: %q: %w", body, err)
	}
	return d, nil
}

func parseArgs(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("expected %d arguments, got %d", want, len(parts))
	}
	args := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		args[i] = v
	}
	return args, nil
}

func parseBounds(s string) (lo, hi float64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("truncation must look like [LO,HI]")
	}
	inner := s[1 : len(s)-1]
	loStr, hiStr, ok := strings.Cut(inner, ",")
	if !ok {
		return 0, 0, fmt.Errorf("truncation must look like [LO,HI]")
	}
	lo, err = strconv.ParseFloat(strings.TrimSpace(loStr), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad lower bound: %w", err)
	}
	hiStr = strings.TrimSpace(hiStr)
	if hiStr == "inf" || hiStr == "+inf" {
		return lo, math.Inf(1), nil
	}
	hi, err = strconv.ParseFloat(hiStr, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad upper bound: %w", err)
	}
	return lo, hi, nil
}

// capturePanic runs f and converts a panic (the dist constructors panic
// on invalid parameters) into an error, which is the right shape for a
// CLI boundary.
func capturePanic(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}
