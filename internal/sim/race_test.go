//go:build race

package sim

// raceEnabled reports that the race detector is active; sync.Pool
// deliberately drops cached items under -race, so steady-state
// allocation assertions do not hold there.
const raceEnabled = true
