package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"reskit/internal/engine"
	"reskit/internal/fault"
	"reskit/internal/rng"
	"reskit/internal/stats"
	"reskit/internal/strategy"
)

// streamTestConfig is a small, fault-free campaign the stream tests can
// run thousands of trials of cheaply.
func streamTestConfig() CampaignConfig {
	return CampaignConfig{
		Reservation: Config{
			R:        29,
			Recovery: 1.5,
			Task:     paperTask(),
			Ckpt:     paperCkpt(5, 0.4),
			Strategy: strategy.NewWorkThreshold(20),
		},
		TotalWork: 100,
	}
}

// streamPayloads runs the first n stream blocks exactly as the engine
// would: block b on rng substream b of seed.
func streamPayloads(t *testing.T, cfg CampaignConfig, seed uint64, n int) [][]byte {
	t.Helper()
	cs, err := NewCampaignStream(cfg, stats.StopSpec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	src := cs.Source()
	payloads := make([][]byte, 0, n)
	for b := 0; b < n; b++ {
		job, ok := src.Next()
		if !ok {
			t.Fatalf("stream source dried up at block %d", b)
		}
		res, err := job.Run(context.Background(), rng.NewStream(seed, job.Stream))
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, res.Payload)
	}
	return payloads
}

// TestCampaignStreamMatchesFixedGrid: for a whole-block trial count, the
// streamed aggregate must be bit-identical to the fixed-grid campaign of
// the same trials — same blocks, same substreams, same trials, only the
// drain differs.
func TestCampaignStreamMatchesFixedGrid(t *testing.T) {
	cfg := streamTestConfig()
	const seed, blocks = 11, 4
	trials := blocks * StreamBlockTrials

	cs, err := NewCampaignStream(cfg, stats.StopSpec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range streamPayloads(t, cfg, seed, blocks) {
		if err := CheckCampaignStreamPayload(p); err != nil {
			t.Fatalf("block %d payload: %v", i, err)
		}
		if _, err := cs.Commit(i, p); err != nil {
			t.Fatal(err)
		}
	}

	fixed := make([][]byte, blocks)
	for b := range fixed {
		p, err := CampaignBlockPayload(context.Background(), cfg, trials, b, rng.NewStream(seed, uint64(b)))
		if err != nil {
			t.Fatal(err)
		}
		fixed[b] = p
	}
	want, err := MergeCampaignPayloads(fixed)
	if err != nil {
		t.Fatal(err)
	}
	got := cs.Aggregate()
	if got != want {
		t.Errorf("streamed aggregate %+v differs from fixed grid %+v", got, want)
	}
	if cs.Trials() != trials {
		t.Errorf("Trials() = %d, want %d", cs.Trials(), trials)
	}
}

// TestCampaignStreamRestoreMidway: snapshotting the sink after k blocks
// and restoring into a fresh sink must reproduce the uninterrupted final
// state bit for bit — stop decisions included.
func TestCampaignStreamRestoreMidway(t *testing.T) {
	cfg := streamTestConfig()
	spec := stats.StopSpec{Rel: 0.001, MinN: 64, QuantTol: 0.05}
	const seed, blocks, cut = 11, 8, 3
	payloads := streamPayloads(t, cfg, seed, blocks)

	mk := func() *CampaignStream {
		cs, err := NewCampaignStream(cfg, spec, "util")
		if err != nil {
			t.Fatal(err)
		}
		return cs
	}
	full := mk()
	var fullStops []bool
	for i, p := range payloads {
		stop, err := full.Commit(i, p)
		if err != nil {
			t.Fatal(err)
		}
		fullStops = append(fullStops, stop)
	}

	part := mk()
	var partStops []bool
	for i, p := range payloads {
		stop, err := part.Commit(i, p)
		if err != nil {
			t.Fatal(err)
		}
		partStops = append(partStops, stop)
		if i == cut {
			state, serr := part.State()
			if serr != nil {
				t.Fatal(serr)
			}
			part = mk()
			if rerr := part.Restore(state); rerr != nil {
				t.Fatal(rerr)
			}
			if part.Trials() != (cut+1)*StreamBlockTrials {
				t.Fatalf("restored Trials() = %d", part.Trials())
			}
		}
	}
	for i := range fullStops {
		if fullStops[i] != partStops[i] {
			t.Fatalf("stop decision %d diverged across restore", i)
		}
	}
	s1, _ := full.State()
	s2, _ := part.State()
	if !bytes.Equal(s1, s2) {
		t.Error("final sink state differs after mid-stream restore")
	}
	if full.Aggregate() != part.Aggregate() {
		t.Error("final aggregate differs after mid-stream restore")
	}
}

// TestCampaignStreamPayloadCodec: decode(encode(p)) re-encodes to the
// identical bytes, and corrupt payloads are rejected.
func TestCampaignStreamPayloadCodec(t *testing.T) {
	cfg := streamTestConfig()
	p := streamPayloads(t, cfg, 3, 1)[0]
	var dec campaignStreamPartial
	if err := decodeCampaignStreamPartial(p, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.sums.trials != StreamBlockTrials {
		t.Errorf("decoded trials %d, want %d", dec.sums.trials, StreamBlockTrials)
	}
	if got := encodeCampaignStreamPartial(&dec); !bytes.Equal(got, p) {
		t.Error("re-encode differs from the original payload")
	}
	if err := CheckCampaignStreamPayload(p[:campaignStreamFixedSize-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if err := CheckCampaignStreamPayload(append(append([]byte(nil), p...), 0)); err == nil {
		t.Error("payload with trailing garbage accepted")
	}
}

// TestNewCampaignStreamValidation: bad configs, bad stop rules and
// unknown targets are rejected up front; the empty target defaults.
func TestNewCampaignStreamValidation(t *testing.T) {
	good := streamTestConfig()
	if _, err := NewCampaignStream(CampaignConfig{}, stats.StopSpec{}, ""); err == nil {
		t.Error("invalid campaign config accepted")
	}
	if _, err := NewCampaignStream(good, stats.StopSpec{Rel: -1}, ""); err == nil {
		t.Error("invalid stop spec accepted")
	}
	_, err := NewCampaignStream(good, stats.StopSpec{}, "latency")
	if err == nil || !strings.Contains(err.Error(), `unknown stream target "latency"`) {
		t.Errorf("unknown target: err = %v", err)
	}
	cs, err := NewCampaignStream(good, stats.StopSpec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Target() != "util" {
		t.Errorf("default target = %q, want util", cs.Target())
	}
	for _, target := range StreamTargets {
		if _, err := NewCampaignStream(good, stats.StopSpec{}, target); err != nil {
			t.Errorf("target %q rejected: %v", target, err)
		}
	}
}

// TestCampaignStreamStopsViaEngine: the full stack — lazy source,
// bounded engine drain, ordered sink — honors the stopping rule at the
// same frontier for different worker counts.
func TestCampaignStreamStopsViaEngine(t *testing.T) {
	cfg := streamTestConfig()
	spec := stats.StopSpec{Rel: 0.05, MinN: 2 * int64(StreamBlockTrials)}
	var want []byte
	for _, workers := range []int{1, 4} {
		cs, err := NewCampaignStream(cfg, spec, "util")
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.RunStream(context.Background(), engine.StreamSpec{
			Source: cs.Source(), Sink: cs, Seed: 11, Workers: workers, MaxJobs: 64,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Stopped {
			t.Fatalf("workers=%d: rule never fired (committed %d)", workers, res.Committed)
		}
		state, _ := cs.State()
		if want == nil {
			want = state
		} else if !bytes.Equal(state, want) {
			t.Errorf("workers=%d: sink state differs from workers=1", workers)
		}
	}
}

func TestStreamBlocks(t *testing.T) {
	cases := []struct{ trials, want int }{
		{0, 0},
		{-5, 0},
		{1, 1},
		{StreamBlockTrials, 1},
		{StreamBlockTrials + 1, 2},
		{10 * StreamBlockTrials, 10},
	}
	for _, tc := range cases {
		if got := StreamBlocks(tc.trials); got != tc.want {
			t.Errorf("StreamBlocks(%d) = %d, want %d", tc.trials, got, tc.want)
		}
	}
}

func TestParseFaultSweep(t *testing.T) {
	mtbfs, err := ParseFaultSweep("25, 50,100")
	if err != nil {
		t.Fatal(err)
	}
	if len(mtbfs) != 3 || mtbfs[0] != 25 || mtbfs[1] != 50 || mtbfs[2] != 100 {
		t.Errorf("mtbfs = %v", mtbfs)
	}
	for _, bad := range []string{"", "abc", "25,,50", "25,-3", "0"} {
		if _, err := ParseFaultSweep(bad); err == nil {
			t.Errorf("ParseFaultSweep(%q) accepted", bad)
		}
	}
}

// TestFaultSweepConfigs: each row swaps only the crash model; every
// other fault knob of the base plan is preserved, and the base config is
// not aliased.
func TestFaultSweepConfigs(t *testing.T) {
	cfg := streamTestConfig()
	cfg.Reservation.Faults = &fault.Plan{Ckpt: fault.CkptBernoulli{P: 0.25}}

	mtbfs, cfgs, err := FaultSweepConfigs(cfg, "30,60")
	if err != nil {
		t.Fatal(err)
	}
	if len(mtbfs) != 2 || len(cfgs) != 2 {
		t.Fatalf("got %d mtbfs, %d configs", len(mtbfs), len(cfgs))
	}
	for i, c := range cfgs {
		p := c.Reservation.Faults
		if p == cfg.Reservation.Faults {
			t.Fatalf("row %d aliases the base plan", i)
		}
		crash, ok := p.Crash.(fault.ExpArrival)
		if !ok || crash.Rate != 1/mtbfs[i] {
			t.Errorf("row %d crash model %+v, want ExpArrival rate 1/%g", i, p.Crash, mtbfs[i])
		}
		if b, ok := p.Ckpt.(fault.CkptBernoulli); !ok || b.P != 0.25 {
			t.Errorf("row %d lost the base ckpt fault model: %+v", i, p.Ckpt)
		}
	}
	if cfg.Reservation.Faults.Crash != nil {
		t.Error("sweep mutated the base config's plan")
	}
	if _, _, err := FaultSweepConfigs(cfg, "30,zero"); err == nil {
		t.Error("bad sweep accepted")
	}
}

func TestFaultSweepJobName(t *testing.T) {
	mtbfs := []float64{30, 60}
	cases := []struct {
		i    int
		want string
	}{
		{0, "mtbf=30/block0"},
		{4, "mtbf=30/block4"},
		{5, "mtbf=60/block0"},
		{9, "mtbf=60/block4"},
	}
	for _, tc := range cases {
		if got := FaultSweepJobName(mtbfs, 5, tc.i); got != tc.want {
			t.Errorf("job %d = %q, want %q", tc.i, got, tc.want)
		}
	}
}
