// Package sim executes the reservation model of Barbut et al. (FTXS'23):
// single fixed-length reservations running either a preemptible
// application (Section 3) or a chain of IID stochastic tasks with
// boundary-only checkpoints (Section 4), under any strategy from
// internal/strategy, plus multi-reservation campaigns with recovery cost
// (Section 2 and Section 4.4) and a parallel Monte-Carlo harness.
//
// The simulator is the experimental companion the paper's conclusion
// calls for: every analytical expectation in internal/core is validated
// here against sampled trajectories.
//
// Beyond the paper's failure-free model, Config.Faults plugs in the
// composable fault models of internal/fault — fail-stop crashes,
// checkpoint-commit failures, and spot-style reservation revocation —
// with per-trajectory deterministic sampling, so every experiment
// (including sharded Monte-Carlo) stays bit-identical for a fixed seed.
package sim

import (
	"fmt"
	"math"
	"sync"

	"reskit/internal/dist"
	"reskit/internal/fault"
	"reskit/internal/obs"
	"reskit/internal/rng"
	"reskit/internal/strategy"
)

// AfterPolicy selects what to do with leftover reservation time after a
// successful checkpoint (Section 4.4 of the paper).
type AfterPolicy int

const (
	// DropReservation releases the machine immediately after the first
	// successful checkpoint — the right choice when the platform charges
	// for time actually used.
	DropReservation AfterPolicy = iota
	// ContinueExecution keeps running tasks and checkpointing until the
	// reservation is exhausted — squeezing the most work out of a
	// pay-per-reservation allocation.
	ContinueExecution
)

// String returns the policy name.
func (a AfterPolicy) String() string {
	switch a {
	case DropReservation:
		return "drop"
	case ContinueExecution:
		return "continue"
	default:
		return fmt.Sprintf("AfterPolicy(%d)", int(a))
	}
}

// Config describes one workflow-reservation experiment.
type Config struct {
	R        float64           // reservation length
	Recovery float64           // fixed recovery time consumed at reservation start
	Task     dist.Continuous   // continuous task law (exclusive with TaskDisc)
	TaskDisc dist.Discrete     // discrete task law
	Ckpt     dist.Continuous   // checkpoint-duration law
	Strategy strategy.Strategy // decision policy at task boundaries
	After    AfterPolicy       // what to do after a successful checkpoint
	MaxTasks int               // safety cap on tasks per reservation (0 = auto)

	// RecoveryLaw, when set, replaces the fixed Recovery with a
	// stochastic recovery duration sampled at reservation start — like
	// the checkpoint itself, restoring state takes a variable time.
	RecoveryLaw dist.Continuous

	// FailureRate, when positive, injects fail-stop errors inside the
	// reservation with exponential inter-arrival times of this rate —
	// the paper's Section 5 future-work direction. A failure wipes the
	// uncommitted work; the job then pays a recovery (Recovery or
	// RecoveryLaw) to reload its last committed checkpoint and continues
	// inside the same reservation. Zero keeps the paper's failure-free
	// model. Exclusive with Faults.Crash, which generalizes it.
	FailureRate float64

	// Faults, when non-nil, injects the bundled fault models of
	// internal/fault: crash arrivals (generalizing FailureRate to
	// Weibull gaps), per-attempt checkpoint failures that consume time
	// but commit nothing, and early reservation revocation. Strategies
	// are never told the revocation instant — they observe the nominal R.
	Faults *fault.Plan

	// Obs, when non-nil, streams per-run counters, sampled trace events
	// and progress ticks to the observability layer (see Observer). The
	// default nil costs one pointer check per run, and an attached
	// observer never consumes randomness — aggregates are bit-identical
	// with observation on or off.
	Obs *Observer

	// trial is the global Monte-Carlo trial index of this run, set by
	// the parallel runners so trace sampling (Observer.TraceEvery) is
	// deterministic by index regardless of worker scheduling.
	trial int64
}

// Validate checks the configuration and returns a descriptive error for
// non-finite or out-of-range parameters, missing laws, or conflicting
// fault settings. Run panics on invalid configurations; call Validate
// first when the configuration comes from untrusted input (CLI flags,
// config files).
func (c *Config) Validate() error {
	if !(c.R > 0) || math.IsInf(c.R, 0) { // !(NaN > 0) is true
		return fmt.Errorf("sim: R must be positive and finite, got %g", c.R)
	}
	if !(c.Recovery >= 0) || math.IsInf(c.Recovery, 0) {
		return fmt.Errorf("sim: Recovery must be finite and >= 0, got %g", c.Recovery)
	}
	if c.RecoveryLaw != nil {
		if lo, _ := c.RecoveryLaw.Support(); lo < 0 {
			return fmt.Errorf("sim: RecoveryLaw support must start at >= 0, got %g", lo)
		}
	}
	if !(c.FailureRate >= 0) || math.IsInf(c.FailureRate, 0) {
		return fmt.Errorf("sim: FailureRate must be finite and >= 0, got %g", c.FailureRate)
	}
	if (c.Task == nil) == (c.TaskDisc == nil) {
		return fmt.Errorf("sim: exactly one of Task and TaskDisc must be set")
	}
	if c.Ckpt == nil {
		return fmt.Errorf("sim: Ckpt must be set")
	}
	if c.Strategy == nil {
		return fmt.Errorf("sim: Strategy must be set")
	}
	if c.MaxTasks < 0 {
		return fmt.Errorf("sim: MaxTasks must be >= 0, got %d", c.MaxTasks)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.FailureRate > 0 && c.Faults.Active() && c.Faults.Crash != nil {
		return fmt.Errorf("sim: FailureRate and Faults.Crash are exclusive crash processes; set one")
	}
	return nil
}

// validate panics on structurally invalid configurations.
func (c *Config) validate() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
}

// sampleRecovery returns the recovery time for one reservation.
func (c *Config) sampleRecovery(r *rng.Source) float64 {
	if c.RecoveryLaw != nil {
		return c.RecoveryLaw.Sample(r)
	}
	return c.Recovery
}

// sampleTask draws one task duration.
func (c *Config) sampleTask(r *rng.Source) float64 {
	if c.TaskDisc != nil {
		return float64(c.TaskDisc.Sample(r))
	}
	return c.Task.Sample(r)
}

// taskMean returns the mean task duration.
func (c *Config) taskMean() float64 {
	if c.TaskDisc != nil {
		return c.TaskDisc.Mean()
	}
	return c.Task.Mean()
}

// maxTasks resolves the per-run task cap.
func (c *Config) maxTasks() int {
	if c.MaxTasks > 0 {
		return c.MaxTasks
	}
	mean := c.taskMean()
	if mean <= 0 {
		return 100000
	}
	n := int(20*c.R/mean) + 1000
	return n
}

// RunResult reports one simulated reservation.
type RunResult struct {
	Saved       float64 // work committed by successful checkpoints
	Lost        float64 // uncommitted work wiped at the reservation end
	Tasks       int     // tasks completed
	Checkpoints int     // successful checkpoints
	FailedCkpts int     // checkpoints cut short by the reservation end
	CkptFaults  int     // checkpoint attempts that ran to completion but failed to commit (injected faults)
	Failures    int     // fail-stop errors that struck during the run
	Revoked     bool    // the reservation was revoked before its nominal end
	TimeUsed    float64 // machine time consumed (<= R)
	CapHit      bool    // the MaxTasks safety cap stopped the run
}

// Run simulates one reservation under the configured strategy. The
// returned RunResult is exact for the sampled trajectory: work is saved
// only by checkpoints that complete strictly within the reservation (and,
// under Config.Faults, survive the checkpoint-failure model).
//
// Fault sampling order per reservation (see the fault package's
// determinism contract): recovery, revocation horizon, first crash gap;
// then one crash gap after each crash and one checkpoint-failure variate
// per completed checkpoint attempt.
func Run(cfg Config, r *rng.Source) RunResult {
	res := runOne(cfg, r)
	if cfg.Obs != nil {
		cfg.Obs.record(res)
		if tr := cfg.Obs.tracer(cfg.trial); tr != nil {
			tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvRunEnd, Time: res.TimeUsed, Value: res.Saved})
		}
	}
	return res
}

// runOne is the uninstrumented body of Run, emitting trace events to the
// trial's sampled sink (nil when tracing is off).
func runOne(cfg Config, r *rng.Source) RunResult {
	cfg.validate()
	tr := cfg.Obs.tracer(cfg.trial)
	var res RunResult

	// horizon is the effective reservation end: the nominal R, unless a
	// revocation model truncates it. Strategies still observe R.
	horizon := cfg.R
	var plan *fault.Plan
	if cfg.Faults.Active() {
		plan = cfg.Faults
	}

	elapsed := cfg.sampleRecovery(r)
	if plan != nil && plan.Revoke != nil {
		horizon = plan.Revoke.Horizon(cfg.R, r)
		res.Revoked = horizon < cfg.R
		if res.Revoked && tr != nil {
			tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvRevocation, Time: 0, Value: horizon})
		}
	}
	if elapsed >= horizon {
		// The recovery ate the whole (possibly revoked) reservation.
		res.TimeUsed = horizon
		return res
	}
	var work float64 // uncommitted work
	tasksSinceCkpt := 0
	attemptsSinceCommit := 0 // failed checkpoint attempts since the last commit
	taskCap := cfg.maxTasks()
	ckptAttempts := 0 // total checkpoint attempts, capped like tasks

	// Pre-sample the next fail-stop instant (infinity when crash-free).
	nextFail := math.Inf(1)
	if cfg.FailureRate > 0 {
		nextFail = elapsed + r.Exponential(cfg.FailureRate)
	} else if plan != nil && plan.Crash != nil {
		nextFail = elapsed + plan.Crash.Next(r)
	}
	// fail handles one fail-stop error at time t: the uncommitted work
	// is wiped and the job restarts from its last committed checkpoint
	// after a recovery. It returns false when the reservation is over.
	fail := func(t float64) bool {
		res.Failures++
		if tr != nil {
			tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvCrash, Time: t, Value: work})
		}
		res.Lost += work
		work = 0
		tasksSinceCkpt = 0
		attemptsSinceCommit = 0
		elapsed = t + cfg.sampleRecovery(r)
		if cfg.FailureRate > 0 {
			nextFail = elapsed + r.Exponential(cfg.FailureRate)
		} else if plan != nil && plan.Crash != nil {
			nextFail = elapsed + plan.Crash.Next(r)
		}
		return elapsed < horizon
	}

	for {
		if res.Tasks >= taskCap || ckptAttempts >= taskCap {
			res.CapHit = true
			res.Lost += work
			res.TimeUsed = elapsed
			return res
		}
		st := strategy.State{
			R:              cfg.R,
			Elapsed:        elapsed,
			Work:           work,
			TasksDone:      tasksSinceCkpt,
			Committed:      res.Saved,
			Checkpoint:     res.Checkpoints,
			FailedAttempts: attemptsSinceCommit,
		}
		switch act := cfg.Strategy.Decide(st); act {
		case strategy.Continue:
			x := cfg.sampleTask(r)
			if nextFail <= elapsed+x && nextFail < horizon {
				// A fail-stop error strikes mid-task.
				if !fail(nextFail) {
					res.TimeUsed = horizon
					return res
				}
				continue
			}
			if elapsed+x > horizon {
				// The reservation ends mid-task: everything uncommitted
				// is lost.
				res.Lost += work
				res.TimeUsed = horizon
				return res
			}
			elapsed += x
			work += x
			res.Tasks++
			tasksSinceCkpt++
			if tr != nil {
				tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvTaskEnd, Time: elapsed, Value: x})
			}

		case strategy.Checkpoint:
			if work == 0 {
				// Nothing to commit; treat as a drop.
				res.TimeUsed = elapsed
				return res
			}
			c := cfg.Ckpt.Sample(r)
			ckptAttempts++
			if tr != nil {
				tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvCkptStart, Time: elapsed, Value: work})
			}
			if nextFail <= elapsed+c && nextFail < horizon {
				// A fail-stop error strikes mid-checkpoint: nothing was
				// committed.
				res.FailedCkpts++
				if !fail(nextFail) {
					res.TimeUsed = horizon
					return res
				}
				continue
			}
			if elapsed+c > horizon {
				// The reservation ends mid-checkpoint.
				res.FailedCkpts++
				res.Lost += work
				res.TimeUsed = horizon
				return res
			}
			if plan != nil && plan.Ckpt != nil && plan.Ckpt.Fails(c, r) {
				// The attempt ran to completion but the commit failed:
				// the time is gone, the in-memory state (and thus the
				// uncommitted work) survives. The strategy decides again
				// with FailedAttempts incremented.
				elapsed += c
				res.CkptFaults++
				attemptsSinceCommit++
				if tr != nil {
					tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvCkptFault, Time: elapsed, Value: work})
				}
				continue
			}
			elapsed += c
			if tr != nil {
				tr.Event(obs.Event{Trial: cfg.trial, Kind: obs.EvCkptCommit, Time: elapsed, Value: work})
			}
			res.Saved += work
			work = 0
			tasksSinceCkpt = 0
			attemptsSinceCommit = 0
			res.Checkpoints++
			if cfg.After == DropReservation {
				res.TimeUsed = elapsed
				return res
			}

		case strategy.Stop:
			res.Lost += work
			res.TimeUsed = elapsed
			return res

		default:
			panic(fmt.Sprintf("sim: unknown action %v", act))
		}
	}
}

// RunOracle simulates a clairvoyant scheduler for the same trajectory
// model (failure-free: FailureRate and Faults are ignored, keeping the
// oracle an upper bound for the paper's model): it pre-samples the task
// durations and, for every boundary, the checkpoint duration that a
// checkpoint started there would take, then commits at the boundary
// maximizing the saved work. It upper-bounds every realizable
// single-checkpoint strategy.
func RunOracle(cfg Config, r *rng.Source) RunResult {
	res := runOracleOne(cfg, r)
	cfg.Obs.record(res)
	return res
}

// oracleScratch holds the trajectory buffers of runOracleOne, pooled so
// large Monte-Carlo oracle runs do not allocate two slices per trial.
type oracleScratch struct {
	sums, cs []float64
}

var oraclePool = sync.Pool{New: func() interface{} { return new(oracleScratch) }}

// runOracleOne is the uninstrumented body of RunOracle. The oracle makes
// its decision retrospectively, so no mid-run trace events are emitted.
func runOracleOne(cfg Config, r *rng.Source) RunResult {
	cfg.validate()
	var res RunResult

	start := cfg.sampleRecovery(r)
	if start >= cfg.R {
		res.TimeUsed = cfg.R
		return res
	}

	// Generate the trajectory up to the reservation end.
	scratch := oraclePool.Get().(*oracleScratch)
	defer oraclePool.Put(scratch)
	sums := scratch.sums[:0] // S_n for n = 1, 2, ...
	cs := scratch.cs[:0]     // checkpoint duration at boundary n
	defer func() { scratch.sums, scratch.cs = sums, cs }()
	elapsed := start
	taskCap := cfg.maxTasks()
	for len(sums) < taskCap {
		x := cfg.sampleTask(r)
		if elapsed+x > cfg.R {
			break
		}
		elapsed += x
		sums = append(sums, elapsed-start)
		cs = append(cs, cfg.Ckpt.Sample(r))
	}
	res.Tasks = len(sums)
	res.CapHit = len(sums) == taskCap

	// Choose the best boundary.
	best := -1
	for i, s := range sums {
		if start+s+cs[i] <= cfg.R && (best < 0 || s > sums[best]) {
			best = i
		}
	}
	if best < 0 {
		res.Lost = 0
		if len(sums) > 0 {
			res.Lost = sums[len(sums)-1]
		}
		res.TimeUsed = cfg.R
		return res
	}
	res.Saved = sums[best]
	res.Checkpoints = 1
	res.TimeUsed = start + sums[best] + cs[best]
	res.Lost = sums[len(sums)-1] - sums[best]
	return res
}
