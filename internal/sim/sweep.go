package sim

import (
	"fmt"
	"strconv"
	"strings"

	"reskit/internal/fault"
)

// Fault-sweep campaign grid, shared by cmd/simulate's -faultsweep and
// cmd/distrun's distributed flavor: both must derive the identical
// per-row configurations, job layout and names from the same sweep
// string, or their payloads (and fingerprints) would silently diverge.

// ParseFaultSweep parses a comma-separated MTBF grid such as "25,50,100".
func ParseFaultSweep(sweep string) ([]float64, error) {
	var mtbfs []float64
	for _, f := range strings.Split(sweep, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("sim: bad sweep MTBF %q: %w", f, err)
		}
		if !(v > 0) {
			return nil, fmt.Errorf("sim: sweep MTBF must be positive, got %g", v)
		}
		mtbfs = append(mtbfs, v)
	}
	return mtbfs, nil
}

// FaultSweepConfigs parses the sweep grid and builds one campaign
// configuration per row: the base campaign with its crash model swapped
// for an exponential arrival at rate 1/MTBF, every other configured
// fault model kept. The configs are fixed up front so every job closure
// over them is pure.
func FaultSweepConfigs(cfg CampaignConfig, sweep string) ([]float64, []CampaignConfig, error) {
	mtbfs, err := ParseFaultSweep(sweep)
	if err != nil {
		return nil, nil, err
	}
	cfgs := make([]CampaignConfig, len(mtbfs))
	for i, m := range mtbfs {
		c := cfg
		p := &fault.Plan{}
		if cfg.Reservation.Faults != nil {
			*p = *cfg.Reservation.Faults
		}
		crash, cerr := fault.NewExpArrival(1 / m)
		if cerr != nil {
			return nil, nil, cerr
		}
		p.Crash = crash
		c.Reservation.Faults = p
		cfgs[i] = c
	}
	return mtbfs, cfgs, nil
}

// FaultSweepJobName renders the canonical name of sweep job i — row-major
// over (MTBF row, block) — shared by both CLIs so ledgers, leases and
// logs agree on what job i is.
func FaultSweepJobName(mtbfs []float64, numBlocks, i int) string {
	return fmt.Sprintf("mtbf=%g/block%d", mtbfs[i/numBlocks], i%numBlocks)
}
