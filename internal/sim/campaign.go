package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"reskit/internal/rng"
)

// CampaignConfig describes a multi-reservation execution of an iterative
// application with a known total amount of work, the setting motivating
// the paper (Sections 1 and 2): the application is too long for a single
// reservation, so it runs as a series of fixed-length reservations, each
// starting with a recovery of the last committed checkpoint and ending
// with a checkpoint decided by the configured strategy.
type CampaignConfig struct {
	Reservation     Config  // per-reservation setup; Recovery applies from the 2nd reservation on
	TotalWork       float64 // work needed to complete the application
	MaxReservations int     // safety cap (0 = auto)
}

// Validate checks the campaign parameters and the embedded reservation
// configuration, returning a descriptive error instead of the silent
// infinite or NaN campaign that non-finite or non-positive inputs used
// to produce. RunCampaign panics on invalid configurations; call
// Validate first when the configuration comes from untrusted input.
func (c *CampaignConfig) Validate() error {
	if !(c.TotalWork > 0) || math.IsInf(c.TotalWork, 0) { // !(NaN > 0) is true
		return fmt.Errorf("sim: campaign TotalWork must be positive and finite, got %g", c.TotalWork)
	}
	if c.MaxReservations < 0 {
		return fmt.Errorf("sim: campaign MaxReservations must be >= 0, got %d", c.MaxReservations)
	}
	return c.Reservation.Validate()
}

// validate panics on structurally invalid configurations.
func (c *CampaignConfig) validate() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
}

// CampaignResult reports a full multi-reservation campaign.
type CampaignResult struct {
	Completed     bool    // the application committed TotalWork
	Reservations  int     // reservations consumed
	Committed     float64 // total committed work
	TimeReserved  float64 // Reservations * R
	TimeUsed      float64 // total machine time actually used
	LostWork      float64 // work executed but never committed
	FailedCkpts   int     // checkpoints cut by reservation ends
	CkptFaults    int     // checkpoint attempts that completed but failed to commit (injected faults)
	Crashes       int     // fail-stop errors across all reservations
	RevokedRes    int     // reservations revoked before their nominal end
	StalledRounds int     // reservations that committed no work
}

// Utilization returns committed work divided by reserved time — the
// fraction of the paid-for allocation converted into saved progress.
func (c CampaignResult) Utilization() float64 {
	if c.TimeReserved == 0 {
		return 0
	}
	return c.Committed / c.TimeReserved
}

// RunCampaign simulates the whole campaign with the given generator.
func RunCampaign(cfg CampaignConfig, r *rng.Source) CampaignResult {
	res, _ := runCampaign(cfg, r, nil)
	return res
}

// runCampaign is RunCampaign with an optional cancellation channel: when
// done is closed, the campaign stops cleanly at the next reservation
// boundary and reports interrupted = true. The partial result is
// well-formed (all sums cover exactly the reservations that ran).
func runCampaign(cfg CampaignConfig, r *rng.Source, done <-chan struct{}) (res CampaignResult, interrupted bool) {
	cfg.validate()

	maxRes := cfg.MaxReservations
	if maxRes <= 0 {
		// Auto cap: generous multiple of the zero-overhead lower bound.
		perRes := cfg.Reservation.R - cfg.Reservation.Recovery
		if perRes <= 0 {
			perRes = cfg.Reservation.R
		}
		maxRes = int(20*cfg.TotalWork/perRes) + 100
	}

	for res.Reservations < maxRes && res.Committed < cfg.TotalWork {
		if done != nil {
			select {
			case <-done:
				return res, true
			default:
			}
		}
		rc := cfg.Reservation
		if res.Reservations == 0 {
			// Nothing to recover at the very first reservation.
			rc.Recovery = 0
			rc.RecoveryLaw = nil
		}
		run := Run(rc, r)
		res.Reservations++
		res.TimeReserved += rc.R
		res.TimeUsed += run.TimeUsed
		res.Committed += run.Saved
		res.LostWork += run.Lost
		res.FailedCkpts += run.FailedCkpts
		res.CkptFaults += run.CkptFaults
		res.Crashes += run.Failures
		if run.Revoked {
			res.RevokedRes++
		}
		if run.Saved == 0 {
			res.StalledRounds++
		}
	}
	res.Completed = res.Committed >= cfg.TotalWork
	return res, false
}

// CampaignAggregate averages the headline metrics of a Monte-Carlo
// campaign experiment.
type CampaignAggregate struct {
	Reservations   float64 // mean reservations to completion
	Utilization    float64 // mean utilization
	LostWork       float64 // mean lost work
	CkptFaults     float64 // mean failed checkpoint commits (injected faults)
	Crashes        float64 // mean fail-stop errors
	RevokedRes     float64 // mean revoked reservations
	CompletionRate float64 // fraction of trials that committed TotalWork
	CompletedAll   bool    // every trial completed
	Trials         int     // trials accounted (fewer than requested after cancellation)
}

// campaignBlockSize is the number of campaign trials bound to one rng
// substream. A campaign is one or two orders of magnitude heavier than a
// single reservation, so blocks are much smaller than the per-run
// mcBlockSize; as there, fixed blocks (block b always draws from stream
// b, partial sums merged in block order) make the aggregate bit-identical
// for any worker count.
const campaignBlockSize = 32

// campaignPartial accumulates one block's running sums.
type campaignPartial struct {
	res, util, lost     float64
	ckptFaults, crashes float64
	revoked             float64
	completed           int
	trials              int
}

// MonteCarloCampaign runs `trials` independent campaigns of cfg across
// `workers` goroutines (Workers() when workers <= 0) and averages the
// headline metrics. Trials are partitioned into fixed-size blocks, each
// drawing from its own rng substream of seed, and block sums are reduced
// in deterministic order — the aggregate depends only on (cfg, trials,
// seed), never on the worker count or goroutine scheduling.
func MonteCarloCampaign(cfg CampaignConfig, trials int, seed uint64, workers int) CampaignAggregate {
	agg, _ := MonteCarloCampaignContext(context.Background(), cfg, trials, seed, workers)
	return agg
}

// MonteCarloCampaignContext is MonteCarloCampaign with cooperative
// cancellation: when ctx is cancelled (or its deadline passes), workers
// stop at the next reservation boundary — within milliseconds — and the
// call returns the well-formed aggregate of every fully completed trial
// alongside ctx.Err(). Trials interrupted mid-campaign are discarded so
// the averages stay exact. Without cancellation the result is
// bit-identical to MonteCarloCampaign and the error is nil.
func MonteCarloCampaignContext(ctx context.Context, cfg CampaignConfig, trials int, seed uint64, workers int) (CampaignAggregate, error) {
	return monteCarloCampaignRunner(ctx, cfg, trials, seed, workers, nil)
}

func monteCarloCampaignRunner(ctx context.Context, cfg CampaignConfig, trials int, seed uint64, workers int, ck Checkpointer) (CampaignAggregate, error) {
	cfg.validate()
	if trials <= 0 {
		return CampaignAggregate{}, ctx.Err()
	}
	if workers <= 0 {
		workers = Workers()
	}

	numBlocks := (trials + campaignBlockSize - 1) / campaignBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	done := ctx.Done()
	ob := cfg.Reservation.Obs
	parts := make([]campaignPartial, numBlocks)
	// Blocks persisted by a previous interrupted run are restored into
	// parts and never dispatched; only the missing blocks are simulated.
	restored, rerr := restoreBlocks(ck, numBlocks, func(b int, data []byte) error {
		return decodeCampaignPartial(data, &parts[b])
	})
	if rerr != nil {
		return CampaignAggregate{}, rerr
	}
	blocks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Source per worker, reinitialized per block — state
			// identical to a fresh NewStream, with no per-block
			// allocation.
			var src rng.Source
			for b := range blocks {
				src.Reinit(seed, uint64(b))
				p, complete := runCampaignBlock(cfg, trials, b, &src, done)
				parts[b] = p
				// Interrupted blocks keep their partial sums in the
				// returned aggregate but are never committed: a resume
				// re-runs the whole block on its own rng substream.
				if complete && ck != nil {
					ck.Commit(b, encodeCampaignPartial(&p))
				}
				ob.tickBlock()
			}
		}()
	}
dispatch:
	for b := 0; b < numBlocks; b++ {
		if restored != nil && restored[b] {
			continue
		}
		select {
		case blocks <- b:
		case <-done:
			break dispatch
		}
	}
	close(blocks)
	wg.Wait()

	var agg CampaignAggregate
	var sum campaignPartial
	for _, p := range parts {
		sum.add(p)
	}
	agg.Trials = sum.trials
	if sum.trials > 0 {
		finalizeCampaignAggregate(&agg, &sum)
	}
	return agg, ctx.Err()
}

// runCampaignBlock simulates the campaign trials of block b
// ([b*campaignBlockSize, ...)) on src and returns the block's running
// sums. cfg is received by value, so the per-trial index stamp for
// deterministic trace sampling never races other workers. complete is
// false when done fired mid-campaign — such a block must never be
// committed as durable state.
func runCampaignBlock(cfg CampaignConfig, trials, b int, src *rng.Source, done <-chan struct{}) (p campaignPartial, complete bool) {
	lo := b * campaignBlockSize
	hi := lo + campaignBlockSize
	if hi > trials {
		hi = trials
	}
	ob := cfg.Reservation.Obs
	tracing := ob != nil && ob.Trace != nil
	for i := lo; i < hi; i++ {
		if tracing {
			cfg.Reservation.trial = int64(i)
		}
		r, interrupted := runCampaign(cfg, src, done)
		if interrupted {
			return p, false
		}
		ob.tickCampaign()
		ob.tickProgress(1)
		ob.tickProgressWork(int64(r.Reservations), r.Committed)
		p.res += float64(r.Reservations)
		p.util += r.Utilization()
		p.lost += r.LostWork
		p.ckptFaults += float64(r.CkptFaults)
		p.crashes += float64(r.Crashes)
		p.revoked += float64(r.RevokedRes)
		if r.Completed {
			p.completed++
		}
		p.trials++
	}
	return p, true
}

// add folds another block's running sums into p.
func (p *campaignPartial) add(o campaignPartial) {
	p.res += o.res
	p.util += o.util
	p.lost += o.lost
	p.ckptFaults += o.ckptFaults
	p.crashes += o.crashes
	p.revoked += o.revoked
	p.completed += o.completed
	p.trials += o.trials
}

// finalizeCampaignAggregate turns summed block partials into the mean
// aggregate; sum.trials must be positive.
func finalizeCampaignAggregate(agg *CampaignAggregate, sum *campaignPartial) {
	n := float64(sum.trials)
	agg.Reservations = sum.res / n
	agg.Utilization = sum.util / n
	agg.LostWork = sum.lost / n
	agg.CkptFaults = sum.ckptFaults / n
	agg.Crashes = sum.crashes / n
	agg.RevokedRes = sum.revoked / n
	agg.CompletionRate = float64(sum.completed) / n
	agg.CompletedAll = sum.completed == sum.trials
}
