package sim

import (
	"fmt"
	"math"
	"sync"

	"reskit/internal/rng"
)

// CampaignConfig describes a multi-reservation execution of an iterative
// application with a known total amount of work, the setting motivating
// the paper (Sections 1 and 2): the application is too long for a single
// reservation, so it runs as a series of fixed-length reservations, each
// starting with a recovery of the last committed checkpoint and ending
// with a checkpoint decided by the configured strategy.
type CampaignConfig struct {
	Reservation     Config  // per-reservation setup; Recovery applies from the 2nd reservation on
	TotalWork       float64 // work needed to complete the application
	MaxReservations int     // safety cap (0 = auto)
}

// CampaignResult reports a full multi-reservation campaign.
type CampaignResult struct {
	Completed     bool    // the application committed TotalWork
	Reservations  int     // reservations consumed
	Committed     float64 // total committed work
	TimeReserved  float64 // Reservations * R
	TimeUsed      float64 // total machine time actually used
	LostWork      float64 // work executed but never committed
	FailedCkpts   int     // checkpoints cut by reservation ends
	StalledRounds int     // reservations that committed no work
}

// Utilization returns committed work divided by reserved time — the
// fraction of the paid-for allocation converted into saved progress.
func (c CampaignResult) Utilization() float64 {
	if c.TimeReserved == 0 {
		return 0
	}
	return c.Committed / c.TimeReserved
}

// RunCampaign simulates the whole campaign with the given generator.
func RunCampaign(cfg CampaignConfig, r *rng.Source) CampaignResult {
	if !(cfg.TotalWork > 0) || math.IsNaN(cfg.TotalWork) || math.IsInf(cfg.TotalWork, 0) {
		panic(fmt.Sprintf("sim: campaign TotalWork must be positive and finite, got %g", cfg.TotalWork))
	}
	cfg.Reservation.validate()

	maxRes := cfg.MaxReservations
	if maxRes <= 0 {
		// Auto cap: generous multiple of the zero-overhead lower bound.
		perRes := cfg.Reservation.R - cfg.Reservation.Recovery
		if perRes <= 0 {
			perRes = cfg.Reservation.R
		}
		maxRes = int(20*cfg.TotalWork/perRes) + 100
	}

	var res CampaignResult
	for res.Reservations < maxRes && res.Committed < cfg.TotalWork {
		rc := cfg.Reservation
		if res.Reservations == 0 {
			// Nothing to recover at the very first reservation.
			rc.Recovery = 0
			rc.RecoveryLaw = nil
		}
		run := Run(rc, r)
		res.Reservations++
		res.TimeReserved += rc.R
		res.TimeUsed += run.TimeUsed
		res.Committed += run.Saved
		res.LostWork += run.Lost
		res.FailedCkpts += run.FailedCkpts
		if run.Saved == 0 {
			res.StalledRounds++
		}
	}
	res.Completed = res.Committed >= cfg.TotalWork
	return res
}

// CampaignAggregate averages the headline metrics of a Monte-Carlo
// campaign experiment.
type CampaignAggregate struct {
	Reservations float64 // mean reservations to completion
	Utilization  float64 // mean utilization
	LostWork     float64 // mean lost work
	CompletedAll bool    // every trial completed
	Trials       int
}

// campaignBlockSize is the number of campaign trials bound to one rng
// substream. A campaign is one or two orders of magnitude heavier than a
// single reservation, so blocks are much smaller than the per-run
// mcBlockSize; as there, fixed blocks (block b always draws from stream
// b, partial sums merged in block order) make the aggregate bit-identical
// for any worker count.
const campaignBlockSize = 32

// campaignPartial accumulates one block's running sums.
type campaignPartial struct {
	res, util, lost float64
	trials          int
	allCompleted    bool
}

// MonteCarloCampaign runs `trials` independent campaigns of cfg across
// `workers` goroutines (Workers() when workers <= 0) and averages the
// headline metrics. Trials are partitioned into fixed-size blocks, each
// drawing from its own rng substream of seed, and block sums are reduced
// in deterministic order — the aggregate depends only on (cfg, trials,
// seed), never on the worker count or goroutine scheduling.
func MonteCarloCampaign(cfg CampaignConfig, trials int, seed uint64, workers int) CampaignAggregate {
	if trials <= 0 {
		return CampaignAggregate{}
	}
	if workers <= 0 {
		workers = Workers()
	}

	numBlocks := (trials + campaignBlockSize - 1) / campaignBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	parts := make([]campaignPartial, numBlocks)
	blocks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range blocks {
				lo := b * campaignBlockSize
				hi := lo + campaignBlockSize
				if hi > trials {
					hi = trials
				}
				src := rng.NewStream(seed, uint64(b))
				p := campaignPartial{allCompleted: true}
				for i := lo; i < hi; i++ {
					r := RunCampaign(cfg, src)
					p.res += float64(r.Reservations)
					p.util += r.Utilization()
					p.lost += r.LostWork
					p.trials++
					if !r.Completed {
						p.allCompleted = false
					}
				}
				parts[b] = p
			}
		}()
	}
	for b := 0; b < numBlocks; b++ {
		blocks <- b
	}
	close(blocks)
	wg.Wait()

	agg := CampaignAggregate{CompletedAll: true, Trials: trials}
	var sumRes, sumUtil, sumLost float64
	for _, p := range parts {
		sumRes += p.res
		sumUtil += p.util
		sumLost += p.lost
		if !p.allCompleted {
			agg.CompletedAll = false
		}
	}
	agg.Reservations = sumRes / float64(trials)
	agg.Utilization = sumUtil / float64(trials)
	agg.LostWork = sumLost / float64(trials)
	return agg
}
