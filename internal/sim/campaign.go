package sim

import (
	"fmt"
	"math"

	"reskit/internal/rng"
)

// CampaignConfig describes a multi-reservation execution of an iterative
// application with a known total amount of work, the setting motivating
// the paper (Sections 1 and 2): the application is too long for a single
// reservation, so it runs as a series of fixed-length reservations, each
// starting with a recovery of the last committed checkpoint and ending
// with a checkpoint decided by the configured strategy.
type CampaignConfig struct {
	Reservation     Config  // per-reservation setup; Recovery applies from the 2nd reservation on
	TotalWork       float64 // work needed to complete the application
	MaxReservations int     // safety cap (0 = auto)
}

// CampaignResult reports a full multi-reservation campaign.
type CampaignResult struct {
	Completed     bool    // the application committed TotalWork
	Reservations  int     // reservations consumed
	Committed     float64 // total committed work
	TimeReserved  float64 // Reservations * R
	TimeUsed      float64 // total machine time actually used
	LostWork      float64 // work executed but never committed
	FailedCkpts   int     // checkpoints cut by reservation ends
	StalledRounds int     // reservations that committed no work
}

// Utilization returns committed work divided by reserved time — the
// fraction of the paid-for allocation converted into saved progress.
func (c CampaignResult) Utilization() float64 {
	if c.TimeReserved == 0 {
		return 0
	}
	return c.Committed / c.TimeReserved
}

// RunCampaign simulates the whole campaign with the given generator.
func RunCampaign(cfg CampaignConfig, r *rng.Source) CampaignResult {
	if !(cfg.TotalWork > 0) || math.IsNaN(cfg.TotalWork) || math.IsInf(cfg.TotalWork, 0) {
		panic(fmt.Sprintf("sim: campaign TotalWork must be positive and finite, got %g", cfg.TotalWork))
	}
	cfg.Reservation.validate()

	maxRes := cfg.MaxReservations
	if maxRes <= 0 {
		// Auto cap: generous multiple of the zero-overhead lower bound.
		perRes := cfg.Reservation.R - cfg.Reservation.Recovery
		if perRes <= 0 {
			perRes = cfg.Reservation.R
		}
		maxRes = int(20*cfg.TotalWork/perRes) + 100
	}

	var res CampaignResult
	for res.Reservations < maxRes && res.Committed < cfg.TotalWork {
		rc := cfg.Reservation
		if res.Reservations == 0 {
			// Nothing to recover at the very first reservation.
			rc.Recovery = 0
			rc.RecoveryLaw = nil
		}
		run := Run(rc, r)
		res.Reservations++
		res.TimeReserved += rc.R
		res.TimeUsed += run.TimeUsed
		res.Committed += run.Saved
		res.LostWork += run.Lost
		res.FailedCkpts += run.FailedCkpts
		if run.Saved == 0 {
			res.StalledRounds++
		}
	}
	res.Completed = res.Committed >= cfg.TotalWork
	return res
}

// MonteCarloCampaign runs `trials` independent campaigns and averages
// the headline metrics. Campaign trials are sequential within a worker
// substream, parallel across workers.
type CampaignAggregate struct {
	Reservations float64 // mean reservations to completion
	Utilization  float64 // mean utilization
	LostWork     float64 // mean lost work
	CompletedAll bool    // every trial completed
	Trials       int
}

// MonteCarloCampaign estimates campaign metrics by simulation.
func MonteCarloCampaign(cfg CampaignConfig, trials int, seed uint64) CampaignAggregate {
	agg := CampaignAggregate{CompletedAll: true, Trials: trials}
	if trials <= 0 {
		return CampaignAggregate{}
	}
	src := rng.NewStream(seed, 0)
	var sumRes, sumUtil, sumLost float64
	for i := 0; i < trials; i++ {
		r := RunCampaign(cfg, src)
		sumRes += float64(r.Reservations)
		sumUtil += r.Utilization()
		sumLost += r.LostWork
		if !r.Completed {
			agg.CompletedAll = false
		}
	}
	agg.Reservations = sumRes / float64(trials)
	agg.Utilization = sumUtil / float64(trials)
	agg.LostWork = sumLost / float64(trials)
	return agg
}
