package sim

import (
	"context"
	"encoding/binary"
	"fmt"

	"reskit/internal/core"
	"reskit/internal/rng"
	"reskit/internal/stats"
)

// Block-granular access to the sharded Monte-Carlo runners, shaped for
// the job engine (internal/engine): a run of `trials` trials is a fixed
// grid of blocks, block b always simulates trials [b*blockSize, ...)
// on rng substream b, and each *BlockPayload function runs exactly one
// block on a caller-provided source, returning the block's partial
// aggregate as bit-exact opaque bytes. Merging payloads in block order
// (Merge*Payloads) reproduces the corresponding MonteCarlo* aggregate
// bit-identically — for any schedule, any worker count, and any mix of
// restored and recomputed blocks.

// NumMonteCarloBlocks returns the block-grid size of the
// per-reservation runners (MonteCarlo*, MonteCarloPreemptible*).
func NumMonteCarloBlocks(trials int) int {
	if trials <= 0 {
		return 0
	}
	return (trials + mcBlockSize - 1) / mcBlockSize
}

// NumCampaignBlocks returns the block-grid size of the campaign
// runners (MonteCarloCampaign*).
func NumCampaignBlocks(trials int) int {
	if trials <= 0 {
		return 0
	}
	return (trials + campaignBlockSize - 1) / campaignBlockSize
}

// MonteCarloBlockPayload runs block `block` of a per-reservation
// Monte-Carlo (RunOracle when oracle is set, Run otherwise) on src —
// which must be rng.NewStream(seed, block) for the canonical result —
// and returns the encoded block aggregate. When ctx is cancelled
// mid-block the partial tallies are discarded and ctx.Err() returned:
// a block is all-or-nothing, so it can be re-run on resume.
func MonteCarloBlockPayload(ctx context.Context, cfg Config, trials, block int, oracle bool, src *rng.Source) ([]byte, error) {
	cfg.validate()
	if err := checkBlock(trials, block, NumMonteCarloBlocks(trials)); err != nil {
		return nil, err
	}
	run := Run
	if oracle {
		run = RunOracle
	}
	agg, complete := runMCBlock(cfg, trials, block, src, run, ctx.Done())
	if !complete {
		return nil, interruptErr(ctx)
	}
	cfg.Obs.tickBlock()
	return encodeAggregate(&agg), nil
}

// MergeMonteCarloPayloads folds block payloads, in block order, into
// the aggregate. Nil entries (blocks that never ran) are skipped, so a
// partial run merges to the exact aggregate of its completed blocks.
func MergeMonteCarloPayloads(payloads [][]byte) (Aggregate, error) {
	var total Aggregate
	for b, data := range payloads {
		if data == nil {
			continue
		}
		var a Aggregate
		if err := decodeAggregate(data, &a); err != nil {
			return Aggregate{}, fmt.Errorf("sim: block %d: %w", b, err)
		}
		total.merge(a)
	}
	return total, nil
}

// CheckMonteCarloPayload reports whether data parses as a Monte-Carlo
// block payload, without keeping the result.
func CheckMonteCarloPayload(data []byte) error {
	var a Aggregate
	return decodeAggregate(data, &a)
}

// CampaignBlockPayload runs block `block` of a campaign Monte-Carlo on
// src (rng.NewStream(seed, block) for the canonical result) and returns
// the encoded block sums, under the same all-or-nothing cancellation
// contract as MonteCarloBlockPayload.
func CampaignBlockPayload(ctx context.Context, cfg CampaignConfig, trials, block int, src *rng.Source) ([]byte, error) {
	cfg.validate()
	if err := checkBlock(trials, block, NumCampaignBlocks(trials)); err != nil {
		return nil, err
	}
	p, complete := runCampaignBlock(cfg, trials, block, src, ctx.Done())
	if !complete {
		return nil, interruptErr(ctx)
	}
	cfg.Reservation.Obs.tickBlock()
	return encodeCampaignPartial(&p), nil
}

// MergeCampaignPayloads folds campaign block payloads, in block order,
// into the mean aggregate; nil entries are skipped.
func MergeCampaignPayloads(payloads [][]byte) (CampaignAggregate, error) {
	var sum campaignPartial
	for b, data := range payloads {
		if data == nil {
			continue
		}
		var p campaignPartial
		if err := decodeCampaignPartial(data, &p); err != nil {
			return CampaignAggregate{}, fmt.Errorf("sim: block %d: %w", b, err)
		}
		sum.add(p)
	}
	var agg CampaignAggregate
	agg.Trials = sum.trials
	if sum.trials > 0 {
		finalizeCampaignAggregate(&agg, &sum)
	}
	return agg, nil
}

// CheckCampaignPayload reports whether data parses as a campaign block
// payload, without keeping the result.
func CheckCampaignPayload(data []byte) error {
	var p campaignPartial
	return decodeCampaignPartial(data, &p)
}

// PreemptibleBlockPayload runs block `block` of a preemptible-scenario
// Monte-Carlo — the fixed lead-time x policy, or the clairvoyant one
// when oracle is set — on src (rng.NewStream(seed, block) for the
// canonical result), under the same all-or-nothing cancellation
// contract as MonteCarloBlockPayload.
func PreemptibleBlockPayload(ctx context.Context, p *core.Preemptible, x float64, oracle bool, trials, block int, src *rng.Source) ([]byte, error) {
	if err := checkBlock(trials, block, NumMonteCarloBlocks(trials)); err != nil {
		return nil, err
	}
	part, complete := runPreemptBlock(preemptTrial(p, x, oracle), trials, block, src, ctx.Done())
	if !complete {
		return nil, interruptErr(ctx)
	}
	return encodePreemptPartial(&part), nil
}

// MergePreemptiblePayloads folds preemptible block payloads, in block
// order, into the aggregate; nil entries are skipped.
func MergePreemptiblePayloads(payloads [][]byte) (PreemptibleAggregate, error) {
	var agg PreemptibleAggregate
	for b, data := range payloads {
		if data == nil {
			continue
		}
		var p preemptPartial
		if err := decodePreemptPartial(data, &p); err != nil {
			return PreemptibleAggregate{}, fmt.Errorf("sim: block %d: %w", b, err)
		}
		agg.Work.Merge(p.work)
		agg.Successes += p.successes
		agg.Trials += p.trials
	}
	return agg, nil
}

// CheckPreemptiblePayload reports whether data parses as a preemptible
// block payload, without keeping the result.
func CheckPreemptiblePayload(data []byte) error {
	var p preemptPartial
	return decodePreemptPartial(data, &p)
}

// preemptPartialWireSize is the exact encoded size of a preemptPartial:
// one summary plus two int64 counts.
const preemptPartialWireSize = stats.SummaryWireSize + 2*8

// encodePreemptPartial serializes one block's preemptible sums
// bit-exactly.
func encodePreemptPartial(p *preemptPartial) []byte {
	b := make([]byte, 0, preemptPartialWireSize)
	b = p.work.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.successes))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.trials))
	return b
}

// decodePreemptPartial restores one block's preemptible sums.
func decodePreemptPartial(data []byte, p *preemptPartial) error {
	if len(data) != preemptPartialWireSize {
		return fmt.Errorf("sim: preemptible payload is %d bytes, want %d", len(data), preemptPartialWireSize)
	}
	if err := p.work.UnmarshalBinary(data[:stats.SummaryWireSize]); err != nil {
		return err
	}
	p.successes = int64(binary.LittleEndian.Uint64(data[stats.SummaryWireSize:]))
	p.trials = int64(binary.LittleEndian.Uint64(data[stats.SummaryWireSize+8:]))
	if p.successes < 0 || p.trials < 0 || p.successes > p.trials {
		return fmt.Errorf("sim: preemptible payload counts inconsistent (successes=%d, trials=%d)", p.successes, p.trials)
	}
	return nil
}

// checkBlock validates the block index against the run geometry.
func checkBlock(trials, block, numBlocks int) error {
	if trials <= 0 {
		return fmt.Errorf("sim: block run needs positive trials, got %d", trials)
	}
	if block < 0 || block >= numBlocks {
		return fmt.Errorf("sim: block %d out of %d", block, numBlocks)
	}
	return nil
}

// interruptErr returns ctx's error, or context.Canceled when a block
// stopped without the context recording a cause.
func interruptErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}
