package sim

import (
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"reskit/internal/fault"
	"reskit/internal/obs"
	"reskit/internal/rng"
	"reskit/internal/strategy"
)

// fullObserver returns an Observer with every instrument live: all
// counters bound, the saved-work histogram, a collecting trace sink
// sampling one trial in `every`, and a progress reporter (not started —
// the counter still ticks). The heaviest possible observation, used to
// prove observability cannot perturb results.
func fullObserver(reg *obs.Registry, every int64, total int64) (*Observer, *obs.Collector) {
	col := &obs.Collector{}
	o := NewObserver(reg, 30)
	o.Trace = col
	o.TraceEvery = every
	o.Progress = obs.NewProgress(io.Discard, "test", total, time.Hour)
	return o, col
}

func TestObserverDoesNotPerturbMonteCarlo(t *testing.T) {
	// The determinism contract: attaching full observability (counters,
	// histogram, tracing of every trial, progress) must leave the
	// aggregate bit-identical to the bare run, for any worker count —
	// observation never consumes randomness or alters control flow.
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	cfg.Faults = &fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.05},
		Ckpt:   fault.CkptBernoulli{P: 0.1},
		Revoke: fault.UniformRevocation{P: 0.05},
	}
	const trials = 10000
	bare := MonteCarlo(cfg, trials, 17, 1)

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		observed := cfg
		ob, _ := fullObserver(obs.NewRegistry(), 1, trials)
		observed.Obs = ob
		got := MonteCarlo(observed, trials, 17, workers)
		if got != bare {
			t.Errorf("aggregate with observation differs at %d workers:\n got  %+v\n want %+v", workers, got, bare)
		}
	}
}

func TestObserverDoesNotPerturbCampaign(t *testing.T) {
	cfg := faultyCampaignConfig(&fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.02},
		Ckpt:   fault.CkptBernoulli{P: 0.2},
		Revoke: fault.UniformRevocation{P: 0.1},
	})
	const trials = 300
	bare := MonteCarloCampaign(cfg, trials, 7, 1)

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		observed := cfg
		ob, _ := fullObserver(obs.NewRegistry(), 1, trials)
		observed.Reservation.Obs = ob
		got := MonteCarloCampaign(observed, trials, 7, workers)
		if got != bare {
			t.Errorf("campaign aggregate with observation differs at %d workers:\n got  %+v\n want %+v", workers, got, bare)
		}
	}
}

func TestRunObservedBitIdenticalPerStream(t *testing.T) {
	// Per-run equivalence across 50 independent streams: the observed run
	// must consume exactly the same variates as the bare run.
	bare := fig8Config(strategy.NewWorkThreshold(20))
	bare.Faults = &fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.05},
		Ckpt:   fault.CkptHazard{Rate: 0.1},
		Revoke: fault.ExpRevocation{Rate: 0.01},
	}
	observed := bare
	ob, _ := fullObserver(obs.NewRegistry(), 1, 50)
	observed.Obs = ob
	for stream := uint64(0); stream < 50; stream++ {
		a := Run(bare, rng.NewStream(9, stream))
		b := Run(observed, rng.NewStream(9, stream))
		if a != b {
			t.Fatalf("stream %d: bare run %+v != observed run %+v", stream, a, b)
		}
	}
}

func TestObserverCountersMatchAggregate(t *testing.T) {
	// The streaming counters must agree exactly with the aggregate the
	// runner returns — same trials, same tallies, no drops or doubles.
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	cfg.Faults = &fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.05},
		Ckpt:   fault.CkptBernoulli{P: 0.1},
		Revoke: fault.UniformRevocation{P: 0.05},
	}
	const trials = 5000
	reg := obs.NewRegistry()
	ob, _ := fullObserver(reg, 0, trials)
	cfg.Obs = ob
	agg := MonteCarlo(cfg, trials, 23, 0)

	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"sim.trials", ob.Trials.Value(), agg.Trials},
		{"sim.tasks", ob.Tasks.Value(), int64(agg.Tasks.Mean()*float64(agg.Trials) + 0.5)},
		{"sim.checkpoints", ob.Checkpoints.Value(), int64(agg.Checkpoints.Mean()*float64(agg.Trials) + 0.5)},
		{"sim.crashes", ob.Crashes.Value(), int64(agg.Failures.Mean()*float64(agg.Trials) + 0.5)},
		{"sim.revocations", ob.Revocations.Value(), agg.RevokedRuns},
		{"sim.zero_runs", ob.ZeroRuns.Value(), agg.ZeroRuns},
		{"progress", ob.Progress.Done(), agg.Trials},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	wantBlocks := int64((trials + mcBlockSize - 1) / mcBlockSize)
	if ob.Blocks.Value() != wantBlocks {
		t.Errorf("sim.blocks = %d, want %d", ob.Blocks.Value(), wantBlocks)
	}
	if n := ob.SavedWork.Snapshot().Count; n != agg.Trials {
		t.Errorf("saved-work histogram observed %d values, want %d", n, agg.Trials)
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	cfg.Faults = &fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.05},
		Ckpt:   fault.CkptBernoulli{P: 0.2},
		Revoke: fault.UniformRevocation{P: 0.1},
	}
	const trials, every = 2000, 7
	ob, col := fullObserver(nil, every, trials)
	cfg.Obs = ob
	agg := MonteCarlo(cfg, trials, 31, 0)

	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no trace events collected")
	}
	runEnds := 0
	perTrialKinds := map[int64]bool{}
	for _, ev := range events {
		if ev.Trial < 0 || ev.Trial >= trials {
			t.Fatalf("event trial %d out of range", ev.Trial)
		}
		if !obs.Sampled(ev.Trial, every) {
			t.Fatalf("event from unsampled trial %d (every=%d)", ev.Trial, every)
		}
		switch ev.Kind {
		case obs.EvTaskEnd, obs.EvCkptStart, obs.EvCkptCommit, obs.EvCkptFault,
			obs.EvCrash, obs.EvRevocation, obs.EvRunEnd:
		default:
			t.Fatalf("unknown event kind %v", ev.Kind)
		}
		if ev.Kind == obs.EvRunEnd {
			runEnds++
			perTrialKinds[ev.Trial] = true
		}
		if ev.Time < 0 || ev.Value < 0 {
			t.Fatalf("negative timestamp or value in %+v", ev)
		}
	}
	wantSampled := 0
	for i := int64(0); i < trials; i++ {
		if obs.Sampled(i, every) {
			wantSampled++
		}
	}
	if runEnds != wantSampled {
		t.Errorf("run_end events = %d, want one per sampled trial = %d", runEnds, wantSampled)
	}
	if len(perTrialKinds) != wantSampled {
		t.Errorf("distinct traced trials = %d, want %d", len(perTrialKinds), wantSampled)
	}
	_ = agg
}

func TestMonteCarloCancellationMergesOnlyCompletedTrials(t *testing.T) {
	// The cancellation contract: the aggregate covers exactly the trials
	// that completed — every per-metric summary holds one sample per
	// accounted trial, never a partial or duplicated one.
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	agg, err := MonteCarloContext(ctx, cfg, 50_000_000, 41, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if agg.Trials == 0 || agg.Trials >= 50_000_000 {
		t.Fatalf("cancellation accounted %d trials; want a mid-campaign partial", agg.Trials)
	}
	for _, s := range []struct {
		name string
		n    int64
	}{
		{"Saved", agg.Saved.N()},
		{"Lost", agg.Lost.N()},
		{"Tasks", agg.Tasks.N()},
		{"Checkpoints", agg.Checkpoints.N()},
		{"Failures", agg.Failures.N()},
		{"CkptFaults", agg.CkptFaults.N()},
		{"TimeUsed", agg.TimeUsed.N()},
	} {
		if s.n != agg.Trials {
			t.Errorf("%s summary holds %d samples, want Trials = %d", s.name, s.n, agg.Trials)
		}
	}
}
