package sim

import (
	"reskit/internal/obs"
)

// Observer streams per-run tallies, sampled trace events, and progress
// ticks from the simulator to the observability layer of internal/obs.
// Attach one to Config.Obs; a nil Observer (the default) is free — the
// simulator pays one pointer check per run — and an attached Observer
// never consumes randomness or alters control flow, so aggregates are
// bit-identical with observation on or off (see TestObserverDoesNotPerturb*).
//
// All fields are optional: unbound counters are nil and no-ops. Bind the
// canonical set with NewObserver, or populate fields by hand for custom
// wiring.
type Observer struct {
	Trials      *obs.Counter // simulated reservations (oracle runs included)
	Blocks      *obs.Counter // Monte-Carlo blocks completed (one rng substream each)
	Tasks       *obs.Counter // tasks completed across all runs
	Checkpoints *obs.Counter // successful checkpoint commits
	CkptFaults  *obs.Counter // completed attempts that failed to commit (injected faults)
	FailedCkpts *obs.Counter // checkpoints cut by the reservation end
	Crashes     *obs.Counter // fail-stop errors injected
	Revocations *obs.Counter // reservations revoked before their nominal end
	ZeroRuns    *obs.Counter // runs that saved no work
	Campaigns   *obs.Counter // completed campaign trials (campaign Monte-Carlo only)

	// SavedQ sketches the distribution of per-reservation saved work
	// without a fixed layout (quantiles adapt to the observed range).
	SavedQ *obs.Quantiles
	// SavedWork is the legacy fixed-layout [0, savedMax) histogram of
	// the same metric, kept one release behind the -hist flag; SavedQ is
	// the supported distribution instrument.
	SavedWork *obs.Hist

	// Trace, when non-nil, receives the event stream of sampled trials:
	// task-end, checkpoint-start, commit, fault and revocation events
	// with simulation timestamps. TraceEvery selects one trial in every
	// TraceEvery by trial index (obs.Sampled) — deterministic, so the
	// traced subset is identical across runs and worker counts; <= 1
	// traces every trial.
	Trace      obs.TraceSink
	TraceEvery int64

	// Progress, when non-nil, is ticked once per completed Monte-Carlo
	// trial (per reservation in MonteCarlo*, per campaign in
	// MonteCarloCampaign*).
	Progress *obs.Progress
}

// NewObserver binds the canonical instrument set on reg under the "sim."
// prefix. The saved-work distribution is always tracked by the
// "sim.saved_work" quantile sketch; the legacy fixed-layout histogram of
// the same name is additionally bound only when savedMax > 0 (the CLI
// maps the -hist flag onto it). A nil registry yields an Observer whose
// instruments are all nil (still usable, still free); callers wanting
// tracing or progress set those fields afterwards.
func NewObserver(reg *obs.Registry, savedMax float64) *Observer {
	o := &Observer{
		Trials:      reg.Counter("sim.trials"),
		Blocks:      reg.Counter("sim.blocks"),
		Tasks:       reg.Counter("sim.tasks"),
		Checkpoints: reg.Counter("sim.checkpoints"),
		CkptFaults:  reg.Counter("sim.ckpt_faults"),
		FailedCkpts: reg.Counter("sim.failed_ckpts"),
		Crashes:     reg.Counter("sim.crashes"),
		Revocations: reg.Counter("sim.revocations"),
		ZeroRuns:    reg.Counter("sim.zero_runs"),
		Campaigns:   reg.Counter("sim.campaigns"),
	}
	if reg != nil {
		o.SavedQ = reg.Quantiles("sim.saved_work")
	}
	if reg != nil && savedMax > 0 {
		o.SavedWork = reg.Hist("sim.saved_work", 0, savedMax, 20)
	}
	return o
}

// record folds one finished run into the counters. Called once per
// simulated reservation, so the cost is a handful of atomic adds even
// when instrumentation is on.
func (o *Observer) record(res RunResult) {
	if o == nil {
		return
	}
	o.Trials.Inc()
	o.Tasks.Add(int64(res.Tasks))
	o.Checkpoints.Add(int64(res.Checkpoints))
	o.CkptFaults.Add(int64(res.CkptFaults))
	o.FailedCkpts.Add(int64(res.FailedCkpts))
	o.Crashes.Add(int64(res.Failures))
	if res.Revoked {
		o.Revocations.Inc()
	}
	if res.Saved == 0 {
		o.ZeroRuns.Inc()
	}
	o.SavedQ.Observe(res.Saved)
	o.SavedWork.Observe(res.Saved)
}

// tracer returns the sink receiving this trial's events, or nil when the
// trial is not sampled (or tracing is off). The decision depends only on
// the trial index, never on randomness.
func (o *Observer) tracer(trial int64) obs.TraceSink {
	if o == nil || o.Trace == nil || !obs.Sampled(trial, o.TraceEvery) {
		return nil
	}
	return o.Trace
}

// tickProgress records n completed Monte-Carlo trials.
func (o *Observer) tickProgress(n int64) {
	if o == nil {
		return
	}
	o.Progress.Add(n)
}

// tickProgressWork records campaign-level progress behind the trial
// ticks: completed reservations and committed work. Like every observer
// hook it consumes no randomness and never alters control flow.
func (o *Observer) tickProgressWork(reservations int64, committed float64) {
	if o == nil {
		return
	}
	o.Progress.AddWork(reservations, committed)
}

// tickPrecision publishes the current CI half-width of a streaming
// run's stop target to the progress readout.
func (o *Observer) tickPrecision(halfwidth float64) {
	if o == nil {
		return
	}
	o.Progress.SetPrecision(halfwidth)
}

// tickBlock records one completed Monte-Carlo block.
func (o *Observer) tickBlock() {
	if o == nil {
		return
	}
	o.Blocks.Inc()
}

// tickCampaign records one completed campaign trial.
func (o *Observer) tickCampaign() {
	if o == nil {
		return
	}
	o.Campaigns.Inc()
}
