package sim

import (
	"math"
	"testing"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/rng"
	"reskit/internal/strategy"
)

// The benchmarks below measure one worker processing blocks in steady
// state — exactly the per-block loop of the Monte-Carlo runners, with
// the per-worker Source reinitialized in place. They run with
// b.ReportAllocs so allocation regressions on the block path are
// visible in plain `go test -bench . -benchmem` output; the companion
// TestZeroSteadyStateAllocsPerBlock pins the zero-alloc property.

var benchAggSink Aggregate
var benchPreemptSink preemptPartial
var benchCampSink campaignPartial

func benchPreemptTrialFn() func(*rng.Source) (float64, bool) {
	p := core.NewPreemptible(3600, dist.Truncate(dist.NewNormal(300, 30), 60, 600))
	return preemptTrial(p, 360, false)
}

func BenchmarkPreemptBlock(b *testing.B) {
	trial := benchPreemptTrialFn()
	var src rng.Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reinit(7, uint64(i))
		benchPreemptSink, _ = runPreemptBlock(trial, mcBlockSize, 0, &src, nil)
	}
	b.ReportMetric(mcBlockSize, "trials/op")
}

func BenchmarkMCBlockStatic(b *testing.B) {
	cfg := fig8Config(strategy.NewStatic(7))
	var src rng.Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reinit(7, uint64(i))
		benchAggSink, _ = runMCBlock(cfg, mcBlockSize, 0, &src, Run, nil)
	}
	b.ReportMetric(mcBlockSize, "trials/op")
}

func BenchmarkMCBlockDynamic(b *testing.B) {
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	cfg := fig8Config(strategy.NewDynamic(dyn))
	var src rng.Source
	src.Reinit(7, 0)
	// Build the coefficient table outside the timed region.
	benchAggSink, _ = runMCBlock(cfg, mcBlockSize, 0, &src, Run, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reinit(7, uint64(i))
		benchAggSink, _ = runMCBlock(cfg, mcBlockSize, 0, &src, Run, nil)
	}
	b.ReportMetric(mcBlockSize, "trials/op")
}

func BenchmarkMCBlockOracle(b *testing.B) {
	cfg := fig8Config(strategy.Never{})
	var src rng.Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reinit(7, uint64(i))
		benchAggSink, _ = runMCBlock(cfg, mcBlockSize, 0, &src, RunOracle, nil)
	}
	b.ReportMetric(mcBlockSize, "trials/op")
}

func benchCampaignConfig(task, ckpt dist.Continuous, dynR float64) CampaignConfig {
	dyn := core.NewDynamic(dynR, task, ckpt)
	return CampaignConfig{
		Reservation: Config{
			R:        dynR,
			Task:     task,
			Ckpt:     ckpt,
			Recovery: 2,
			Strategy: strategy.NewDynamic(dyn),
		},
		TotalWork: 40,
	}
}

func BenchmarkCampaignBlockDynamicNorm(b *testing.B) {
	cfg := benchCampaignConfig(paperTask(), paperCkpt(5, 0.4), 29)
	var src rng.Source
	src.Reinit(7, 0)
	benchCampSink, _ = runCampaignBlock(cfg, campaignBlockSize, 0, &src, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reinit(7, uint64(i))
		benchCampSink, _ = runCampaignBlock(cfg, campaignBlockSize, 0, &src, nil)
	}
	b.ReportMetric(campaignBlockSize, "trials/op")
}

func BenchmarkCampaignBlockDynamicGamma(b *testing.B) {
	task := dist.Truncate(dist.NewGamma(6, 0.5), 0, math.Inf(1))
	cfg := benchCampaignConfig(task, paperCkpt(5, 0.4), 29)
	var src rng.Source
	src.Reinit(7, 0)
	benchCampSink, _ = runCampaignBlock(cfg, campaignBlockSize, 0, &src, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reinit(7, uint64(i))
		benchCampSink, _ = runCampaignBlock(cfg, campaignBlockSize, 0, &src, nil)
	}
	b.ReportMetric(campaignBlockSize, "trials/op")
}

// TestZeroSteadyStateAllocsPerBlock pins the acceptance criterion that
// the preempt and workflow (strategy-driven reservation) block paths
// allocate nothing per block once warm. The sync.Pool-backed oracle
// scratch can be dropped by a GC between runs, so the thresholds allow
// a fractional average rather than demanding a literal zero.
func TestZeroSteadyStateAllocsPerBlock(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short runners")
	}
	if raceEnabled {
		t.Skip("sync.Pool drops cached items under -race; steady-state alloc counts do not hold")
	}
	var src rng.Source

	trial := benchPreemptTrialFn()
	src.Reinit(7, 0)
	runPreemptBlock(trial, mcBlockSize, 0, &src, nil)
	preemptAllocs := testing.AllocsPerRun(10, func() {
		src.Reinit(7, 0)
		runPreemptBlock(trial, mcBlockSize, 0, &src, nil)
	})
	if preemptAllocs > 0.5 {
		t.Errorf("preempt block: %.1f allocs/block in steady state, want 0", preemptAllocs)
	}

	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	cfg := fig8Config(strategy.NewDynamic(dyn))
	src.Reinit(7, 0)
	runMCBlock(cfg, mcBlockSize, 0, &src, Run, nil)
	mcAllocs := testing.AllocsPerRun(10, func() {
		src.Reinit(7, 0)
		runMCBlock(cfg, mcBlockSize, 0, &src, Run, nil)
	})
	if mcAllocs > 0.5 {
		t.Errorf("dynamic MC block: %.1f allocs/block in steady state, want 0", mcAllocs)
	}

	src.Reinit(7, 0)
	runMCBlock(cfg, mcBlockSize, 0, &src, RunOracle, nil)
	oracleAllocs := testing.AllocsPerRun(10, func() {
		src.Reinit(7, 0)
		runMCBlock(cfg, mcBlockSize, 0, &src, RunOracle, nil)
	})
	// 2048 trials/block, two pooled slices per trial before pooling;
	// a handful of pool refills per block is still a ~1000x reduction.
	if oracleAllocs > 64 {
		t.Errorf("oracle MC block: %.1f allocs/block in steady state, want ~0", oracleAllocs)
	}
}
