package sim

import (
	"context"
	"strings"
	"sync"
	"testing"

	"reskit/internal/core"
	"reskit/internal/strategy"
)

// memCkpt is an in-memory Checkpointer that optionally cancels the run
// after a given number of block commits — simulating a kill at an
// arbitrary block boundary.
type memCkpt struct {
	mu          sync.Mutex
	blocks      map[int][]byte
	commits     int
	cancelAfter int
	cancel      context.CancelFunc
}

func newMemCkpt() *memCkpt { return &memCkpt{blocks: make(map[int][]byte)} }

func (m *memCkpt) Restore(b int) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocks[b]
}

func (m *memCkpt) Commit(b int, payload []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks[b] = append([]byte(nil), payload...)
	m.commits++
	if m.cancelAfter > 0 && m.commits == m.cancelAfter && m.cancel != nil {
		m.cancel()
	}
}

func (m *memCkpt) done() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

func ckptCampaignConfig() CampaignConfig {
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	return CampaignConfig{
		Reservation: Config{
			R:        29,
			Recovery: 1.5,
			Task:     paperTask(),
			Ckpt:     paperCkpt(5, 0.4),
			Strategy: strategy.NewDynamic(dyn),
		},
		TotalWork: 150,
	}
}

// TestMonteCarloKillAndResumeBitIdentical is the acceptance property of
// the checkpoint layer for the per-reservation runner: interrupt at an
// arbitrary block boundary, resume from the persisted blocks, and the
// final aggregate is bit-identical to an uninterrupted run — for any
// worker count on either side of the interruption.
func TestMonteCarloKillAndResumeBitIdentical(t *testing.T) {
	cfg := fig8Config(strategy.NewStatic(4))
	const trials = 5*mcBlockSize + 123 // 6 blocks, last one ragged
	const seed = 11
	want := MonteCarlo(cfg, trials, seed, 0)

	for _, workers := range []int{1, 4, 8} {
		for _, killAfter := range []int{1, 3, 5} {
			ck := newMemCkpt()
			ctx, cancel := context.WithCancel(context.Background())
			ck.cancelAfter, ck.cancel = killAfter, cancel
			_, err := MonteCarloCheckpointed(ctx, cfg, trials, seed, workers, ck)
			cancel()
			if err == nil && ck.done() < 6 {
				t.Fatalf("workers=%d kill=%d: interrupted run reported no error with %d blocks", workers, killAfter, ck.done())
			}
			if ck.done() >= 6 {
				// The whole run finished before the cancel landed; the
				// resume below still must reproduce the reference.
				t.Logf("workers=%d kill=%d: run completed before interruption", workers, killAfter)
			}

			for _, resumeWorkers := range []int{1, 4, 8} {
				ck.cancelAfter = 0
				got, err := MonteCarloCheckpointed(context.Background(), cfg, trials, seed, resumeWorkers, ck)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if got != want {
					t.Errorf("workers=%d kill=%d resumeWorkers=%d: resumed aggregate differs:\n got %+v\nwant %+v",
						workers, killAfter, resumeWorkers, got, want)
				}
			}
		}
	}
}

// TestCampaignKillAndResumeBitIdentical is the same acceptance property
// for the campaign runner.
func TestCampaignKillAndResumeBitIdentical(t *testing.T) {
	cfg := ckptCampaignConfig()
	const trials = 4*campaignBlockSize + 7 // 5 blocks, last one ragged
	const seed = 23
	want := MonteCarloCampaign(cfg, trials, seed, 0)

	for _, workers := range []int{1, 4, 8} {
		ck := newMemCkpt()
		ctx, cancel := context.WithCancel(context.Background())
		ck.cancelAfter, ck.cancel = 2, cancel
		_, _ = MonteCarloCampaignCheckpointed(ctx, cfg, trials, seed, workers, ck)
		cancel()

		ck.cancelAfter = 0
		got, err := MonteCarloCampaignCheckpointed(context.Background(), cfg, trials, seed, workers, ck)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if got != want {
			t.Errorf("workers=%d: resumed campaign aggregate differs:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestCheckpointedCompleteRunMatchesPlain checks the zero-interruption
// path: running with a checkpointer from scratch commits every block and
// changes nothing about the result.
func TestCheckpointedCompleteRunMatchesPlain(t *testing.T) {
	cfg := fig8Config(strategy.NewStatic(4))
	const trials = 2*mcBlockSize + 10
	ck := newMemCkpt()
	got, err := MonteCarloCheckpointed(context.Background(), cfg, trials, 5, 0, ck)
	if err != nil {
		t.Fatal(err)
	}
	if want := MonteCarlo(cfg, trials, 5, 0); got != want {
		t.Errorf("checkpointed run differs from plain run:\n got %+v\nwant %+v", got, want)
	}
	if ck.done() != 3 {
		t.Errorf("committed %d blocks, want 3", ck.done())
	}
}

// TestRestoreRejectsMalformedPayload checks that a payload of the wrong
// shape aborts the run with a structured error instead of panicking or
// silently producing wrong numbers.
func TestRestoreRejectsMalformedPayload(t *testing.T) {
	cfg := fig8Config(strategy.NewStatic(4))
	ck := newMemCkpt()
	ck.blocks[0] = []byte("not an aggregate")
	_, err := MonteCarloCheckpointed(context.Background(), cfg, mcBlockSize*2, 5, 1, ck)
	if err == nil || !strings.Contains(err.Error(), "block 0") {
		t.Fatalf("malformed payload: err = %v, want block-0 decode error", err)
	}

	camp := ckptCampaignConfig()
	ck2 := newMemCkpt()
	ck2.blocks[1] = make([]byte, campaignPartialWireSize-1)
	_, err = MonteCarloCampaignCheckpointed(context.Background(), camp, campaignBlockSize*2, 5, 1, ck2)
	if err == nil || !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("malformed campaign payload: err = %v, want block-1 decode error", err)
	}
}

// TestAggregateWireRoundTrip pins the bit-exactness of the block payload
// codecs themselves.
func TestAggregateWireRoundTrip(t *testing.T) {
	cfg := fig8Config(strategy.NewStatic(4))
	agg := MonteCarlo(cfg, 500, 3, 0)
	agg.FailedRuns, agg.RevokedRuns = 7, 1 // exercise the int tallies

	var got Aggregate
	if err := decodeAggregate(encodeAggregate(&agg), &got); err != nil {
		t.Fatal(err)
	}
	if got != agg {
		t.Errorf("aggregate round trip differs:\n got %+v\nwant %+v", got, agg)
	}
	if err := decodeAggregate(make([]byte, aggregateWireSize+1), &got); err == nil {
		t.Error("oversized aggregate payload accepted")
	}

	p := campaignPartial{res: 1.5, util: 0.25, lost: 3.75, ckptFaults: 2, crashes: 1, revoked: 4, completed: 30, trials: 32}
	var gp campaignPartial
	if err := decodeCampaignPartial(encodeCampaignPartial(&p), &gp); err != nil {
		t.Fatal(err)
	}
	if gp != p {
		t.Errorf("campaign partial round trip differs: got %+v, want %+v", gp, p)
	}
	bad := encodeCampaignPartial(&campaignPartial{completed: 5, trials: 3})
	if err := decodeCampaignPartial(bad, &gp); err == nil {
		t.Error("completed > trials accepted")
	}
}
