package sim

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"reskit/internal/dist"
	"reskit/internal/fault"
	"reskit/internal/rng"
	"reskit/internal/strategy"
)

// faultyCampaignConfig is the Figure 8 instance run as a threshold-policy
// campaign, the shared fixture of the fault regression tests.
func faultyCampaignConfig(p *fault.Plan) CampaignConfig {
	return CampaignConfig{
		Reservation: Config{
			R:        29,
			Recovery: 1.5,
			Task:     paperTask(),
			Ckpt:     paperCkpt(5, 0.4),
			Strategy: strategy.NewWorkThreshold(20),
			Faults:   p,
		},
		TotalWork: 200,
	}
}

func TestRunLegacyFailureRateMatchesCrashPlan(t *testing.T) {
	// The legacy FailureRate path and an ExpArrival crash plan draw the
	// same variates at the same trajectory points, so for a fixed stream
	// the two runs must be bit-identical — the fault layer generalizes
	// FailureRate without disturbing it.
	legacy := fig8Config(strategy.NewWorkThreshold(20))
	legacy.FailureRate = 0.05
	planned := fig8Config(strategy.NewWorkThreshold(20))
	planned.Faults = &fault.Plan{Crash: fault.ExpArrival{Rate: 0.05}}
	for stream := uint64(0); stream < 50; stream++ {
		a := Run(legacy, rng.NewStream(9, stream))
		b := Run(planned, rng.NewStream(9, stream))
		if a != b {
			t.Fatalf("stream %d: FailureRate run %+v != crash-plan run %+v", stream, a, b)
		}
	}
}

func TestRunCkptFailureNeverCommits(t *testing.T) {
	// With every commit failing, no work is ever saved; the attempts
	// consume time and are counted in CkptFaults.
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	cfg.Faults = &fault.Plan{Ckpt: fault.CkptBernoulli{P: 1}}
	r := rng.New(21)
	sawFault := false
	for i := 0; i < 200; i++ {
		res := Run(cfg, r)
		if res.Saved != 0 || res.Checkpoints != 0 {
			t.Fatalf("run %d committed work despite p=1 commit failures: %+v", i, res)
		}
		if res.CkptFaults > 0 {
			sawFault = true
			if res.Lost == 0 {
				t.Fatalf("run %d had %d failed commits but lost no work: %+v", i, res.CkptFaults, res)
			}
		}
	}
	if !sawFault {
		t.Fatal("no run recorded a checkpoint fault")
	}
}

func TestRunRevocationTruncatesHorizon(t *testing.T) {
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	cfg.Faults = &fault.Plan{Revoke: fault.UniformRevocation{P: 1}}
	r := rng.New(13)
	for i := 0; i < 200; i++ {
		res := Run(cfg, r)
		if !res.Revoked {
			t.Fatalf("run %d not flagged revoked under p=1 revocation: %+v", i, res)
		}
		if !(res.TimeUsed < cfg.R) {
			t.Fatalf("run %d used %g >= nominal R %g despite revocation", i, res.TimeUsed, cfg.R)
		}
	}
}

func TestCampaignFaultGoldenRegression(t *testing.T) {
	// Seeded golden values, one per fault model plus their composition:
	// any change to the documented fault sampling order (recovery, then
	// revocation horizon, then first crash gap; one gap per crash, one
	// commit variate per completed attempt) breaks these exact numbers.
	golden := map[string]struct {
		plan *fault.Plan
		want CampaignResult
	}{
		"crash": {
			plan: &fault.Plan{Crash: fault.ExpArrival{Rate: 0.02}},
			want: CampaignResult{Reservations: 16, Committed: 210.854894109997, LostWork: 134.13343169175508, Crashes: 5, Completed: true},
		},
		"ckptfail": {
			plan: &fault.Plan{Ckpt: fault.CkptBernoulli{P: 0.3}},
			want: CampaignResult{Reservations: 17, Committed: 212.4887309758422, LostWork: 151.9579358775373, CkptFaults: 5, Completed: true},
		},
		"revoke": {
			plan: &fault.Plan{Revoke: fault.UniformRevocation{P: 0.3}},
			want: CampaignResult{Reservations: 13, Committed: 215.27968044603423, LostWork: 28.080759830095957, RevokedRes: 4, Completed: true},
		},
		"all": {
			plan: &fault.Plan{Crash: fault.ExpArrival{Rate: 0.02}, Ckpt: fault.CkptBernoulli{P: 0.3}, Revoke: fault.UniformRevocation{P: 0.3}},
			want: CampaignResult{Reservations: 45, Committed: 215.08826634667318, LostWork: 632.111114554945, CkptFaults: 12, Crashes: 12, RevokedRes: 10, Completed: true},
		},
	}
	for name, g := range golden {
		got := RunCampaign(faultyCampaignConfig(g.plan), rng.NewStream(42, 0))
		if got.Reservations != g.want.Reservations ||
			got.Committed != g.want.Committed ||
			got.LostWork != g.want.LostWork ||
			got.CkptFaults != g.want.CkptFaults ||
			got.Crashes != g.want.Crashes ||
			got.RevokedRes != g.want.RevokedRes ||
			got.Completed != g.want.Completed {
			t.Errorf("%s: campaign drifted from golden values:\n got  %+v\n want %+v", name, got, g.want)
		}
	}
}

func TestFaultyCampaignBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := faultyCampaignConfig(&fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.02},
		Ckpt:   fault.CkptBernoulli{P: 0.2},
		Revoke: fault.UniformRevocation{P: 0.1},
	})
	const trials = 500
	ref := MonteCarloCampaign(cfg, trials, 7, 1)
	for _, workers := range []int{2, runtime.NumCPU()} {
		if got := MonteCarloCampaign(cfg, trials, 7, workers); got != ref {
			t.Errorf("faulty campaign aggregate differs at %d workers:\n got  %+v\n want %+v", workers, got, ref)
		}
	}
}

func TestFaultyMonteCarloBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	cfg.Faults = &fault.Plan{
		Crash:  fault.ExpArrival{Rate: 0.05},
		Ckpt:   fault.CkptHazard{Rate: 0.1},
		Revoke: fault.ExpRevocation{Rate: 0.01},
	}
	const trials = 20000
	ref := MonteCarlo(cfg, trials, 3, 1)
	for _, workers := range []int{2, runtime.NumCPU()} {
		if got := MonteCarlo(cfg, trials, 3, workers); got != ref {
			t.Errorf("faulty reservation aggregate differs at %d workers", workers)
		}
	}
}

func TestMonteCarloCampaignContextUncancelledMatches(t *testing.T) {
	cfg := faultyCampaignConfig(&fault.Plan{Crash: fault.ExpArrival{Rate: 0.02}})
	const trials = 200
	want := MonteCarloCampaign(cfg, trials, 5, 0)
	got, err := MonteCarloCampaignContext(context.Background(), cfg, trials, 5, 0)
	if err != nil {
		t.Fatalf("uncancelled context run errored: %v", err)
	}
	if got != want {
		t.Errorf("uncancelled context aggregate differs:\n got  %+v\n want %+v", got, want)
	}
	if got.Trials != trials {
		t.Errorf("accounted %d trials, want %d", got.Trials, trials)
	}
}

func TestMonteCarloCampaignContextCancellation(t *testing.T) {
	// Acceptance criterion: cancelling the campaign Monte-Carlo returns
	// within 100ms with a well-formed partial aggregate.
	cfg := faultyCampaignConfig(&fault.Plan{Crash: fault.ExpArrival{Rate: 0.02}})
	cfg.TotalWork = 5000 // long campaigns, so cancellation strikes mid-flight

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	const trials = 200000 // hours of campaigning — cannot finish before the cancel
	start := time.Now()
	agg, err := MonteCarloCampaignContext(ctx, cfg, trials, 11, 0)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 120*time.Millisecond {
		t.Errorf("cancellation took %v, want <= 100ms after the cancel signal", elapsed)
	}
	if agg.Trials < 0 || agg.Trials >= trials {
		t.Errorf("partial aggregate accounted %d trials", agg.Trials)
	}
	if agg.Trials > 0 {
		if math.IsNaN(agg.Utilization) || agg.Utilization < 0 || agg.Utilization > 1 {
			t.Errorf("partial utilization %g malformed", agg.Utilization)
		}
		if agg.Reservations <= 0 {
			t.Errorf("partial mean reservations %g malformed", agg.Reservations)
		}
	}
}

func TestMonteCarloContextCancellation(t *testing.T) {
	cfg := fig8Config(strategy.NewWorkThreshold(20))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	agg, err := MonteCarloContext(ctx, cfg, 50_000_000, 1, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 120*time.Millisecond {
		t.Errorf("cancellation took %v, want <= 100ms after the cancel signal", elapsed)
	}
	if agg.Trials > 0 && (math.IsNaN(agg.Saved.Mean()) || agg.Saved.Mean() < 0) {
		t.Errorf("partial mean saved work %g malformed", agg.Saved.Mean())
	}
}

func TestConfigValidateErrors(t *testing.T) {
	valid := fig8Config(strategy.NewWorkThreshold(20))
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.R = 0 },
		func(c *Config) { c.R = math.NaN() },
		func(c *Config) { c.R = math.Inf(1) },
		func(c *Config) { c.Recovery = -1 },
		func(c *Config) { c.Recovery = math.NaN() },
		func(c *Config) { c.FailureRate = -0.5 },
		func(c *Config) { c.FailureRate = math.Inf(1) },
		func(c *Config) { c.Task = nil },
		func(c *Config) { c.TaskDisc = dist.NewPoisson(3) }, // both task laws set
		func(c *Config) { c.Ckpt = nil },
		func(c *Config) { c.Strategy = nil },
		func(c *Config) { c.MaxTasks = -1 },
		func(c *Config) { c.Faults = &fault.Plan{Ckpt: fault.CkptBernoulli{P: 2}} },
		func(c *Config) {
			c.FailureRate = 0.1
			c.Faults = &fault.Plan{Crash: fault.ExpArrival{Rate: 0.1}}
		},
	}
	for i, m := range mutate {
		c := fig8Config(strategy.NewWorkThreshold(20))
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted an invalid config", i)
		}
	}
}

func TestCampaignConfigValidateErrors(t *testing.T) {
	valid := faultyCampaignConfig(nil)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid campaign config rejected: %v", err)
	}
	for i, m := range []func(*CampaignConfig){
		func(c *CampaignConfig) { c.TotalWork = 0 },
		func(c *CampaignConfig) { c.TotalWork = -5 },
		func(c *CampaignConfig) { c.TotalWork = math.NaN() },
		func(c *CampaignConfig) { c.TotalWork = math.Inf(1) },
		func(c *CampaignConfig) { c.MaxReservations = -1 },
		func(c *CampaignConfig) { c.Reservation.R = math.NaN() },
	} {
		c := faultyCampaignConfig(nil)
		m(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted an invalid campaign config", i)
		}
	}
}
