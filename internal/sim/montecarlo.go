package sim

import (
	"context"
	"runtime"
	"sync"

	"reskit/internal/rng"
	"reskit/internal/stats"
)

// Aggregate accumulates the distributions of the per-run metrics over a
// Monte-Carlo experiment.
type Aggregate struct {
	Saved       stats.Summary // committed work per reservation
	Lost        stats.Summary // lost work per reservation
	Tasks       stats.Summary // tasks completed per reservation
	Checkpoints stats.Summary // successful checkpoints per reservation
	Failures    stats.Summary // fail-stop errors per reservation
	CkptFaults  stats.Summary // failed checkpoint commits per reservation (injected faults)
	TimeUsed    stats.Summary // machine time consumed per reservation
	FailedRuns  int64         // runs with at least one failed checkpoint
	RevokedRuns int64         // runs whose reservation was revoked early
	ZeroRuns    int64         // runs that saved no work at all
	Trials      int64
}

// merge folds another aggregate into a.
func (a *Aggregate) merge(o Aggregate) {
	a.Saved.Merge(o.Saved)
	a.Lost.Merge(o.Lost)
	a.Tasks.Merge(o.Tasks)
	a.Checkpoints.Merge(o.Checkpoints)
	a.Failures.Merge(o.Failures)
	a.CkptFaults.Merge(o.CkptFaults)
	a.TimeUsed.Merge(o.TimeUsed)
	a.FailedRuns += o.FailedRuns
	a.RevokedRuns += o.RevokedRuns
	a.ZeroRuns += o.ZeroRuns
	a.Trials += o.Trials
}

// add folds one run into the aggregate.
func (a *Aggregate) add(r RunResult) {
	a.Saved.Add(r.Saved)
	a.Lost.Add(r.Lost)
	a.Tasks.Add(float64(r.Tasks))
	a.Checkpoints.Add(float64(r.Checkpoints))
	a.Failures.Add(float64(r.Failures))
	a.CkptFaults.Add(float64(r.CkptFaults))
	a.TimeUsed.Add(r.TimeUsed)
	if r.FailedCkpts > 0 {
		a.FailedRuns++
	}
	if r.Revoked {
		a.RevokedRuns++
	}
	if r.Saved == 0 {
		a.ZeroRuns++
	}
	a.Trials++
}

// Workers returns a sensible default worker count for Monte-Carlo runs.
// runtime.GOMAXPROCS(0) is documented to be at least 1, so no floor is
// needed.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// mcBlockSize is the number of trials bound to one rng substream. Work
// is partitioned into fixed blocks rather than per-worker shares so the
// result is bit-identical for any worker count: block b always uses
// stream b, and block aggregates are merged in block order.
const mcBlockSize = 2048

// MonteCarlo runs `trials` independent reservations of cfg across
// `workers` goroutines (Workers() when workers <= 0) and merges the
// results. Trials are partitioned into fixed-size blocks, each drawing
// from its own rng substream of seed, and block results are reduced in
// deterministic order — the aggregate depends only on (cfg, trials,
// seed), never on the worker count or goroutine scheduling.
func MonteCarlo(cfg Config, trials int, seed uint64, workers int) Aggregate {
	agg, _ := monteCarloRunner(context.Background(), cfg, trials, seed, workers, Run, nil)
	return agg
}

// MonteCarloContext is MonteCarlo with cooperative cancellation: when ctx
// is cancelled (or its deadline passes), workers stop at the next trial
// boundary and the call returns the well-formed aggregate of every
// completed trial alongside ctx.Err(). Without cancellation the result
// is bit-identical to MonteCarlo and the error is nil.
func MonteCarloContext(ctx context.Context, cfg Config, trials int, seed uint64, workers int) (Aggregate, error) {
	return monteCarloRunner(ctx, cfg, trials, seed, workers, Run, nil)
}

// MonteCarloOracle is MonteCarlo with the clairvoyant scheduler.
func MonteCarloOracle(cfg Config, trials int, seed uint64, workers int) Aggregate {
	agg, _ := monteCarloRunner(context.Background(), cfg, trials, seed, workers, RunOracle, nil)
	return agg
}

func monteCarloRunner(ctx context.Context, cfg Config, trials int, seed uint64, workers int,
	run func(Config, *rng.Source) RunResult, ck Checkpointer) (Aggregate, error) {

	cfg.validate()
	if trials <= 0 {
		return Aggregate{}, ctx.Err()
	}
	if workers <= 0 {
		workers = Workers()
	}

	numBlocks := (trials + mcBlockSize - 1) / mcBlockSize
	if workers > numBlocks {
		workers = numBlocks
	}
	done := ctx.Done()
	parts := make([]Aggregate, numBlocks)
	// Blocks persisted by a previous interrupted run are restored into
	// parts and never dispatched; only the missing blocks are simulated.
	restored, rerr := restoreBlocks(ck, numBlocks, func(b int, data []byte) error {
		return decodeAggregate(data, &parts[b])
	})
	if rerr != nil {
		return Aggregate{}, rerr
	}
	blocks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Source per worker, reinitialized per block: the state
			// is identical to a fresh NewStream, without the per-block
			// allocation.
			var src rng.Source
			for b := range blocks {
				src.Reinit(seed, uint64(b))
				agg, complete := runMCBlock(cfg, trials, b, &src, run, done)
				parts[b] = agg
				if !complete {
					// The block is incomplete: its partial tallies stay in
					// the returned aggregate but are never committed — a
					// resume re-runs it from scratch.
					return
				}
				if ck != nil {
					ck.Commit(b, encodeAggregate(&parts[b]))
				}
				cfg.Obs.tickBlock()
			}
		}()
	}
dispatch:
	for b := 0; b < numBlocks; b++ {
		if restored != nil && restored[b] {
			continue
		}
		select {
		case blocks <- b:
		case <-done:
			break dispatch
		}
	}
	close(blocks)
	wg.Wait()

	var total Aggregate
	for _, p := range parts {
		total.merge(p)
	}
	return total, ctx.Err()
}

// runMCBlock simulates the trials of block b ([b*mcBlockSize, ...)) on
// src and returns the block aggregate. cfg is received by value, so the
// per-trial index stamp for deterministic trace sampling never races
// other workers. complete is false when done fired mid-block — the
// partial tallies are still returned, but such a block must never be
// committed as durable state.
func runMCBlock(cfg Config, trials, b int, src *rng.Source,
	run func(Config, *rng.Source) RunResult, done <-chan struct{}) (agg Aggregate, complete bool) {

	lo := b * mcBlockSize
	hi := lo + mcBlockSize
	if hi > trials {
		hi = trials
	}
	tracing := cfg.Obs != nil && cfg.Obs.Trace != nil
	for i := lo; i < hi; i++ {
		if done != nil {
			select {
			case <-done:
				return agg, false
			default:
			}
		}
		if tracing {
			cfg.trial = int64(i)
		}
		rr := run(cfg, src)
		agg.add(rr)
		cfg.Obs.tickProgress(1)
		cfg.Obs.tickProgressWork(1, rr.Saved)
	}
	return agg, true
}
