package sim

import (
	"math"
	"testing"

	"reskit/internal/core"
	"reskit/internal/dist"
	"reskit/internal/rng"
	"reskit/internal/strategy"
)

func paperCkpt(mu, sigma float64) dist.Continuous {
	return dist.Truncate(dist.NewNormal(mu, sigma), 0, math.Inf(1))
}

func paperTask() dist.Continuous {
	return dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
}

// fig8Config is the paper's Figure 8 instance as a simulation config.
func fig8Config(s strategy.Strategy) Config {
	return Config{
		R:        29,
		Task:     paperTask(),
		Ckpt:     paperCkpt(5, 0.4),
		Strategy: s,
	}
}

func TestRunStaticStrategyMatchesAnalyticalExpectation(t *testing.T) {
	// Figure 5 instance: static n=7 must yield mean saved work ~ f(7).
	st := core.NewStatic(30, dist.NewNormal(3, 0.5), paperCkpt(5, 0.4))
	want := st.ExpectedWork(7)

	cfg := Config{
		R:        30,
		Task:     paperTask(),
		Ckpt:     paperCkpt(5, 0.4),
		Strategy: strategy.NewStatic(7),
	}
	agg := MonteCarlo(cfg, 200000, 1, 0)
	got := agg.Saved.Mean()
	if math.Abs(got-want) > 4*agg.Saved.StdErr()+0.05 {
		t.Errorf("simulated E = %g ± %g, analytical %g", got, agg.Saved.CI95(), want)
	}
}

func TestRunStaticPoissonMatchesAnalytical(t *testing.T) {
	// Figure 7 instance: static n=6 with Poisson(3) tasks, R=29.
	st := core.NewStaticDiscrete(29, dist.NewPoisson(3), paperCkpt(5, 0.4))
	want := st.ExpectedWork(6)

	cfg := Config{
		R:        29,
		TaskDisc: dist.NewPoisson(3),
		Ckpt:     paperCkpt(5, 0.4),
		Strategy: strategy.NewStatic(6),
	}
	agg := MonteCarlo(cfg, 200000, 2, 0)
	got := agg.Saved.Mean()
	if math.Abs(got-want) > 4*agg.Saved.StdErr()+0.05 {
		t.Errorf("simulated E = %g ± %g, analytical %g", got, agg.Saved.CI95(), want)
	}
}

func TestStrategyOrdering(t *testing.T) {
	// Expected-work ordering on the Figure 8 instance:
	// oracle >= dynamic >= static(n_opt) >= pessimistic.
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	stt := core.NewStatic(29, dist.NewNormal(3, 0.5), paperCkpt(5, 0.4))
	nOpt := stt.Optimize().NOpt

	const trials = 100000
	oracle := MonteCarloOracle(fig8Config(strategy.Never{}), trials, 3, 0).Saved.Mean()
	dynMean := MonteCarlo(fig8Config(strategy.NewDynamic(dyn)), trials, 3, 0).Saved.Mean()
	statMean := MonteCarlo(fig8Config(strategy.NewStatic(nOpt)), trials, 3, 0).Saved.Mean()
	// Pessimistic bounds: 0.9999 quantiles.
	xMax := paperTask().Quantile(0.9999)
	cMax := paperCkpt(5, 0.4).Quantile(0.9999)
	pessMean := MonteCarlo(fig8Config(strategy.NewPessimistic(xMax, cMax)), trials, 3, 0).Saved.Mean()
	neverMean := MonteCarlo(fig8Config(strategy.Never{}), trials, 3, 0).Saved.Mean()

	const slack = 0.1
	if !(oracle+slack >= dynMean) {
		t.Errorf("oracle %g < dynamic %g", oracle, dynMean)
	}
	if !(dynMean+slack >= statMean) {
		t.Errorf("dynamic %g < static %g", dynMean, statMean)
	}
	if !(statMean+slack >= pessMean) {
		t.Errorf("static %g < pessimistic %g", statMean, pessMean)
	}
	if neverMean != 0 {
		t.Errorf("never strategy saved %g", neverMean)
	}
	if pessMean <= 0 {
		t.Errorf("pessimistic saved nothing: %g", pessMean)
	}
}

func TestDynamicBeatsStaticWithHighVariance(t *testing.T) {
	// Section 4.3: the dynamic strategy shines when task durations have a
	// large standard deviation.
	task := dist.NewGamma(1, 3) // exponential-like, sd = mean = 3
	ckpt := paperCkpt(5, 0.4)
	dyn := core.NewDynamic(29, task, ckpt)
	stt := core.NewStatic(29, dist.NewGamma(1, 3), ckpt)
	nOpt := stt.Optimize().NOpt

	cfgDyn := Config{R: 29, Task: task, Ckpt: ckpt, Strategy: strategy.NewDynamic(dyn)}
	cfgStat := Config{R: 29, Task: task, Ckpt: ckpt, Strategy: strategy.NewStatic(nOpt)}
	const trials = 150000
	dynMean := MonteCarlo(cfgDyn, trials, 4, 0).Saved.Mean()
	statMean := MonteCarlo(cfgStat, trials, 4, 0).Saved.Mean()
	if dynMean <= statMean {
		t.Errorf("dynamic %g should beat static %g for high-variance tasks", dynMean, statMean)
	}
}

func TestMonteCarloDeterminismAcrossWorkers(t *testing.T) {
	cfg := fig8Config(strategy.NewStatic(7))
	a := MonteCarlo(cfg, 10000, 42, 1)
	b := MonteCarlo(cfg, 10000, 42, 4)
	if a.Saved.Mean() != b.Saved.Mean() || a.Saved.Variance() != b.Saved.Variance() {
		t.Errorf("worker count changed the result: %v vs %v", a.Saved.Mean(), b.Saved.Mean())
	}
	c := MonteCarlo(cfg, 10000, 43, 4)
	if a.Saved.Mean() == c.Saved.Mean() {
		t.Errorf("different seeds gave identical means")
	}
}

func TestRunAccounting(t *testing.T) {
	// Deterministic everything: 3-unit tasks, 2-unit checkpoint law with
	// tiny variance, R=20, static n=5 -> saved 15, elapsed ~17.
	cfg := Config{
		R:        20,
		Task:     dist.Truncate(dist.NewNormal(3, 1e-6), 0, math.Inf(1)),
		Ckpt:     dist.Truncate(dist.NewNormal(2, 1e-6), 0, math.Inf(1)),
		Strategy: strategy.NewStatic(5),
	}
	r := rng.New(1)
	res := Run(cfg, r)
	if math.Abs(res.Saved-15) > 1e-3 {
		t.Errorf("saved %g", res.Saved)
	}
	if res.Tasks != 5 || res.Checkpoints != 1 || res.FailedCkpts != 0 {
		t.Errorf("accounting: %+v", res)
	}
	if math.Abs(res.TimeUsed-17) > 1e-3 {
		t.Errorf("time used %g", res.TimeUsed)
	}
	if res.Lost != 0 {
		t.Errorf("lost %g", res.Lost)
	}
}

func TestRunCheckpointFailure(t *testing.T) {
	// Checkpoint cannot fit: 3-unit tasks, n=6 (18 units), 5-unit
	// checkpoint, R=20 -> failure, everything lost.
	cfg := Config{
		R:        20,
		Task:     dist.Truncate(dist.NewNormal(3, 1e-6), 0, math.Inf(1)),
		Ckpt:     dist.Truncate(dist.NewNormal(5, 1e-6), 0, math.Inf(1)),
		Strategy: strategy.NewStatic(6),
	}
	res := Run(cfg, rng.New(1))
	if res.Saved != 0 || res.FailedCkpts != 1 {
		t.Errorf("expected failed checkpoint: %+v", res)
	}
	if math.Abs(res.Lost-18) > 1e-3 {
		t.Errorf("lost %g, want 18", res.Lost)
	}
	if res.TimeUsed != 20 {
		t.Errorf("failed run must consume the whole reservation, used %g", res.TimeUsed)
	}
}

func TestRunRecoveryConsumesTime(t *testing.T) {
	cfg := Config{
		R:        20,
		Recovery: 19.5,
		Task:     dist.Truncate(dist.NewNormal(3, 1e-6), 0, math.Inf(1)),
		Ckpt:     dist.Truncate(dist.NewNormal(2, 1e-6), 0, math.Inf(1)),
		Strategy: strategy.NewStatic(1),
	}
	res := Run(cfg, rng.New(1))
	if res.Saved != 0 || res.Tasks != 0 {
		t.Errorf("no task fits after recovery: %+v", res)
	}
	// Recovery swallowing everything.
	cfg.Recovery = 25
	res = Run(cfg, rng.New(1))
	if res.Saved != 0 || res.TimeUsed != 20 {
		t.Errorf("recovery > R: %+v", res)
	}
}

func TestRunContinueExecutionCheckpointsRepeatedly(t *testing.T) {
	// After-checkpoint continuation (§4.4): with deterministic 3-unit
	// tasks, 1-unit checkpoints and R=30, static n=3 commits more than
	// one batch.
	cfg := Config{
		R:        30,
		Task:     dist.Truncate(dist.NewNormal(3, 1e-6), 0, math.Inf(1)),
		Ckpt:     dist.Truncate(dist.NewNormal(1, 1e-6), 0, math.Inf(1)),
		Strategy: strategy.NewStatic(3),
		After:    ContinueExecution,
	}
	res := Run(cfg, rng.New(1))
	if res.Checkpoints < 2 {
		t.Errorf("expected repeated checkpoints, got %+v", res)
	}
	if res.Saved < 18 {
		t.Errorf("saved %g, want >= 18", res.Saved)
	}
}

func TestRunOracleUpperBound(t *testing.T) {
	cfg := fig8Config(strategy.NewStatic(7))
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	cfgDyn := fig8Config(strategy.NewDynamic(dyn))
	const trials = 50000
	oracle := MonteCarloOracle(cfg, trials, 9, 0).Saved.Mean()
	static := MonteCarlo(cfg, trials, 9, 0).Saved.Mean()
	dynamic := MonteCarlo(cfgDyn, trials, 9, 0).Saved.Mean()
	if oracle < static || oracle < dynamic {
		t.Errorf("oracle %g below static %g or dynamic %g", oracle, static, dynamic)
	}
}

func TestMonteCarloPreemptibleMatchesAnalytical(t *testing.T) {
	// Figures 1a, 2a: the simulated mean saved work at several X must
	// match E(W(X)) within Monte-Carlo error.
	instances := []*core.Preemptible{
		core.NewPreemptible(10, dist.NewUniform(1, 7.5)),
		core.NewPreemptible(10, dist.Truncate(dist.NewExponential(0.5), 1, 5)),
		core.NewPreemptible(10, dist.Truncate(dist.NewNormal(3.5, 1), 1, 6)),
		core.NewPreemptible(10, dist.Truncate(dist.NewLogNormal(1, 0.5), 1, 6)),
	}
	for _, p := range instances {
		a, _ := p.Bounds()
		for _, x := range []float64{a + 0.5, 0.5 * (a + 10), p.OptimalX().X} {
			agg := MonteCarloPreemptible(p, x, 120000, 7, 0)
			want := p.ExpectedWork(x)
			if math.Abs(agg.Work.Mean()-want) > 4*agg.Work.StdErr()+1e-9 {
				t.Errorf("%v at X=%g: simulated %g ± %g, analytical %g",
					p.C, x, agg.Work.Mean(), agg.Work.CI95(), want)
			}
			// Success rate equals the truncated CDF at X.
			if math.Abs(agg.SuccessRate()-p.C.CDF(x)) > 0.01 {
				t.Errorf("%v at X=%g: success %g vs CDF %g",
					p.C, x, agg.SuccessRate(), p.C.CDF(x))
			}
		}
	}
}

func TestMonteCarloPreemptibleOracleDominates(t *testing.T) {
	p := core.NewPreemptible(10, dist.NewUniform(1, 7.5))
	opt := p.OptimalX()
	oracle := MonteCarloPreemptibleOracle(p, 100000, 11, 0)
	best := MonteCarloPreemptible(p, opt.X, 100000, 11, 0)
	if oracle.Work.Mean() < best.Work.Mean() {
		t.Errorf("oracle %g below optimal-X %g", oracle.Work.Mean(), best.Work.Mean())
	}
	// Oracle expected work = R - E[C].
	want := p.R - p.C.Mean()
	if math.Abs(oracle.Work.Mean()-want) > 4*oracle.Work.StdErr()+1e-9 {
		t.Errorf("oracle mean %g, want %g", oracle.Work.Mean(), want)
	}
	if oracle.SuccessRate() != 1 {
		t.Errorf("oracle success rate %g", oracle.SuccessRate())
	}
}

func TestCampaign(t *testing.T) {
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	cfg := CampaignConfig{
		Reservation: Config{
			R:        29,
			Recovery: 1.5,
			Task:     paperTask(),
			Ckpt:     paperCkpt(5, 0.4),
			Strategy: strategy.NewDynamic(dyn),
		},
		TotalWork: 200,
	}
	res := RunCampaign(cfg, rng.New(21))
	if !res.Completed {
		t.Fatalf("campaign did not complete: %+v", res)
	}
	if res.Committed < 200 {
		t.Errorf("committed %g < 200", res.Committed)
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %g", u)
	}
	if res.TimeUsed > res.TimeReserved {
		t.Errorf("used %g > reserved %g", res.TimeUsed, res.TimeReserved)
	}
	// ~20 units commit per reservation -> about 10-12 reservations.
	if res.Reservations < 8 || res.Reservations > 20 {
		t.Errorf("reservations %d out of plausible range", res.Reservations)
	}
}

func TestMonteCarloCampaign(t *testing.T) {
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	cfg := CampaignConfig{
		Reservation: Config{
			R:        29,
			Recovery: 1.5,
			Task:     paperTask(),
			Ckpt:     paperCkpt(5, 0.4),
			Strategy: strategy.NewDynamic(dyn),
		},
		TotalWork: 100,
	}
	agg := MonteCarloCampaign(cfg, 200, 5, 0)
	if !agg.CompletedAll {
		t.Errorf("some campaigns failed")
	}
	if agg.Utilization <= 0.3 || agg.Utilization > 1 {
		t.Errorf("mean utilization %g", agg.Utilization)
	}
	if agg.Trials != 200 || agg.Reservations <= 0 || agg.LostWork < 0 {
		t.Errorf("aggregate fields implausible: %+v", agg)
	}
}

func TestMonteCarloCampaignDeterminismAcrossWorkers(t *testing.T) {
	dyn := core.NewDynamic(29, paperTask(), paperCkpt(5, 0.4))
	cfg := CampaignConfig{
		Reservation: Config{
			R:        29,
			Recovery: 1.5,
			Task:     paperTask(),
			Ckpt:     paperCkpt(5, 0.4),
			Strategy: strategy.NewDynamic(dyn),
		},
		TotalWork: 100,
	}
	const trials = 150 // spans several blocks
	a := MonteCarloCampaign(cfg, trials, 42, 1)
	b := MonteCarloCampaign(cfg, trials, 42, 2)
	c := MonteCarloCampaign(cfg, trials, 42, Workers())
	if a != b || a != c {
		t.Errorf("worker count changed the campaign aggregate:\n1: %+v\n2: %+v\n%d: %+v",
			a, b, Workers(), c)
	}
	d := MonteCarloCampaign(cfg, trials, 43, 2)
	if a.Utilization == d.Utilization && a.Reservations == d.Reservations {
		t.Errorf("different seeds gave identical aggregates")
	}
}

func TestConfigValidation(t *testing.T) {
	good := fig8Config(strategy.NewStatic(7))
	cases := []func(){
		func() { c := good; c.R = -1; Run(c, rng.New(1)) },
		func() { c := good; c.Task = nil; Run(c, rng.New(1)) },
		func() { c := good; c.TaskDisc = dist.NewPoisson(3); Run(c, rng.New(1)) }, // both set
		func() { c := good; c.Ckpt = nil; Run(c, rng.New(1)) },
		func() { c := good; c.Strategy = nil; Run(c, rng.New(1)) },
		func() { c := good; c.Recovery = -1; Run(c, rng.New(1)) },
		func() {
			RunCampaign(CampaignConfig{Reservation: good, TotalWork: -1}, rng.New(1))
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMaxTasksCap(t *testing.T) {
	cfg := Config{
		R:        1e6,
		Task:     dist.Truncate(dist.NewNormal(1, 0.1), 0, math.Inf(1)),
		Ckpt:     paperCkpt(5, 0.4),
		Strategy: strategy.Never{},
		MaxTasks: 50,
	}
	res := Run(cfg, rng.New(1))
	if !res.CapHit || res.Tasks != 50 {
		t.Errorf("cap not enforced: %+v", res)
	}
}

func TestStochasticRecovery(t *testing.T) {
	// A stochastic recovery law replaces the fixed recovery; with a
	// recovery that sometimes eats the whole reservation, some runs save
	// nothing.
	cfg := Config{
		R:           10,
		RecoveryLaw: dist.NewUniform(0, 12),
		Task:        dist.Truncate(dist.NewNormal(1, 1e-6), 0, math.Inf(1)),
		Ckpt:        dist.Truncate(dist.NewNormal(0.5, 1e-6), 0, math.Inf(1)),
		Strategy:    strategy.NewStatic(1),
	}
	agg := MonteCarlo(cfg, 20000, 8, 0)
	if agg.ZeroRuns == 0 {
		t.Errorf("no run lost to recovery despite recovery > R sometimes")
	}
	if agg.Saved.Mean() <= 0 {
		t.Errorf("all runs lost")
	}
	// Negative-support recovery laws are rejected.
	bad := cfg
	bad.RecoveryLaw = dist.NewNormal(1, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("negative-support recovery law must panic")
		}
	}()
	Run(bad, rng.New(1))
}

func TestStochasticRecoveryMatchesFixedWhenDegenerate(t *testing.T) {
	task := dist.Truncate(dist.NewNormal(3, 1e-9), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(2, 1e-9), 0, math.Inf(1))
	fixed := Config{R: 20, Recovery: 1.5, Task: task, Ckpt: ckpt, Strategy: strategy.NewStatic(5)}
	stoch := fixed
	stoch.Recovery = 0
	stoch.RecoveryLaw = dist.NewDeterministic(1.5)
	a := Run(fixed, rng.New(9))
	b := Run(stoch, rng.New(9))
	if math.Abs(a.Saved-b.Saved) > 1e-6 || a.Tasks != b.Tasks {
		t.Errorf("deterministic recovery law diverged: %+v vs %+v", a, b)
	}
}

func TestFailureInjection(t *testing.T) {
	// High failure rate: runs must record failures and lose work.
	cfg := Config{
		R:           100,
		Task:        dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1)),
		Ckpt:        dist.Truncate(dist.NewNormal(2, 0.3), 0, math.Inf(1)),
		Strategy:    strategy.NewPeriodic(15),
		After:       ContinueExecution,
		Recovery:    0.5,
		FailureRate: 1.0 / 20, // MTBF 20
	}
	agg := MonteCarlo(cfg, 20000, 12, 0)
	if agg.Saved.Mean() <= 0 {
		t.Fatalf("periodic strategy saved nothing under failures")
	}
	// Failure-free baseline must save strictly more.
	noFail := cfg
	noFail.FailureRate = 0
	aggNF := MonteCarlo(noFail, 20000, 12, 0)
	if aggNF.Saved.Mean() <= agg.Saved.Mean() {
		t.Errorf("failures should reduce saved work: %g vs %g",
			aggNF.Saved.Mean(), agg.Saved.Mean())
	}
	// Failures were actually recorded.
	one := Run(cfg, rng.New(5))
	total := 0
	for i := 0; i < 200; i++ {
		total += Run(cfg, rng.NewStream(13, uint64(i))).Failures
	}
	if total == 0 {
		t.Errorf("no failures recorded at MTBF 20 over 200 runs: %+v", one)
	}
}

func TestYoungDalyBeatsEndOnlyUnderFailures(t *testing.T) {
	// With frequent failures, periodic Young/Daly checkpointing inside
	// the reservation must beat the single end-of-reservation dynamic
	// checkpoint; without failures the ordering flips.
	task := dist.Truncate(dist.NewNormal(3, 0.5), 0, math.Inf(1))
	ckpt := dist.Truncate(dist.NewNormal(2, 0.3), 0, math.Inf(1))
	const mtbf = 25.0
	base := Config{
		R: 100, Task: task, Ckpt: ckpt,
		After:    ContinueExecution,
		Recovery: 0.5,
	}
	dyn := core.NewDynamic(100, task, ckpt)

	mk := func(s strategy.Strategy, failRate float64) Config {
		c := base
		c.Strategy = s
		c.FailureRate = failRate
		return c
	}
	yd := strategy.NewYoungDaly(mtbf, ckpt.Mean())
	const trials = 8000
	withFailYD := MonteCarlo(mk(yd, 1/mtbf), trials, 14, 0).Saved.Mean()
	withFailDyn := MonteCarlo(mk(strategy.NewDynamic(dyn), 1/mtbf), trials, 14, 0).Saved.Mean()
	if withFailYD <= withFailDyn {
		t.Errorf("under failures Young/Daly %g should beat end-only dynamic %g",
			withFailYD, withFailDyn)
	}
	noFailYD := MonteCarlo(mk(yd, 0), trials, 14, 0).Saved.Mean()
	noFailDyn := MonteCarlo(mk(strategy.NewDynamic(dyn), 0), trials, 14, 0).Saved.Mean()
	if noFailDyn <= noFailYD {
		t.Errorf("failure-free end-only dynamic %g should beat Young/Daly %g",
			noFailDyn, noFailYD)
	}
}

func TestRunInvariantsProperty(t *testing.T) {
	// Per-run conservation laws over randomized configurations:
	// TimeUsed <= R; Saved, Lost >= 0; Saved+Lost <= TimeUsed (work
	// cannot exceed machine time); Saved > 0 implies a checkpoint.
	strategies := []strategy.Strategy{
		strategy.NewStatic(3),
		strategy.NewPeriodic(8),
		strategy.Never{},
	}
	src := rng.New(77)
	for trial := 0; trial < 400; trial++ {
		r := 10 + src.Float64()*50
		cfg := Config{
			R:        r,
			Recovery: src.Float64() * 3,
			Task:     dist.NewGamma(0.5+src.Float64()*3, 0.3+src.Float64()),
			Ckpt:     dist.Truncate(dist.NewNormal(1+src.Float64()*4, 0.2+src.Float64()), 0, math.Inf(1)),
			Strategy: strategies[trial%len(strategies)],
			After:    AfterPolicy(trial % 2),
		}
		if trial%4 == 0 {
			cfg.FailureRate = 0.05
		}
		res := Run(cfg, src)
		if res.TimeUsed > cfg.R+1e-9 {
			t.Fatalf("trial %d: TimeUsed %g > R %g", trial, res.TimeUsed, cfg.R)
		}
		if res.Saved < 0 || res.Lost < 0 {
			t.Fatalf("trial %d: negative accounting %+v", trial, res)
		}
		if res.Saved+res.Lost > res.TimeUsed+1e-9 {
			t.Fatalf("trial %d: work %g exceeds machine time %g",
				trial, res.Saved+res.Lost, res.TimeUsed)
		}
		if res.Saved > 0 && res.Checkpoints == 0 {
			t.Fatalf("trial %d: saved %g without checkpoints", trial, res.Saved)
		}
		if res.Checkpoints > 0 && res.Saved == 0 {
			t.Fatalf("trial %d: checkpointed but saved nothing", trial)
		}
	}
}
