package sim

import (
	"context"
	"fmt"
	"math"

	"reskit/internal/engine"
	"reskit/internal/rng"
	"reskit/internal/stats"
)

// Streaming campaigns: instead of a fixed trial grid, the campaign runs
// as an open-ended stream of full blocks — block b always simulates
// trials [b*CampaignBlockSize, (b+1)*CampaignBlockSize) on rng
// substream b, exactly as the fixed grid would — drained by
// engine.RunStream until a sequential stopping rule (stats.StopSpec)
// fires or a trial budget runs out. Each block payload carries, besides
// the campaignPartial running sums, the second moments of the stop
// targets (utilization, lost work, reservations as stats.Summary) and a
// QSketch of per-trial utilization, so the sink can evaluate CI
// half-widths and quantile stability at every ordered block boundary.

// campaignStreamPartial is one streamed block's extended sums.
type campaignStreamPartial struct {
	sums             campaignPartial
	util, lost, rsum stats.Summary
	sketch           stats.QSketch // per-trial utilization
}

// runCampaignStreamBlock simulates the full block b on src. Unlike
// runCampaignBlock there is no trial-count clamp: streamed blocks are
// always complete, the stream's end is the stopping rule's business.
func runCampaignStreamBlock(cfg CampaignConfig, b int, src *rng.Source, done <-chan struct{}) (p campaignStreamPartial, complete bool) {
	lo := b * campaignBlockSize
	hi := lo + campaignBlockSize
	ob := cfg.Reservation.Obs
	tracing := ob != nil && ob.Trace != nil
	for i := lo; i < hi; i++ {
		if tracing {
			cfg.Reservation.trial = int64(i)
		}
		r, interrupted := runCampaign(cfg, src, done)
		if interrupted {
			return p, false
		}
		ob.tickCampaign()
		ob.tickProgress(1)
		ob.tickProgressWork(int64(r.Reservations), r.Committed)
		u := r.Utilization()
		p.sums.res += float64(r.Reservations)
		p.sums.util += u
		p.sums.lost += r.LostWork
		p.sums.ckptFaults += float64(r.CkptFaults)
		p.sums.crashes += float64(r.Crashes)
		p.sums.revoked += float64(r.RevokedRes)
		if r.Completed {
			p.sums.completed++
		}
		p.sums.trials++
		p.util.Add(u)
		p.lost.Add(r.LostWork)
		p.rsum.Add(float64(r.Reservations))
		p.sketch.Add(u)
	}
	return p, true
}

// campaignStreamFixedSize is the fixed prefix of a stream payload (and
// of the sink state, which swaps the trailing per-block summaries for
// the stopper state before the sketch).
const campaignStreamFixedSize = campaignPartialWireSize + 3*stats.SummaryWireSize

// encodeCampaignStreamPartial serializes one streamed block's sums
// bit-exactly; the variable-size sketch is the trailing field.
func encodeCampaignStreamPartial(p *campaignStreamPartial) []byte {
	b := make([]byte, 0, campaignStreamFixedSize+1024)
	b = append(b, encodeCampaignPartial(&p.sums)...)
	b = p.util.AppendBinary(b)
	b = p.lost.AppendBinary(b)
	b = p.rsum.AppendBinary(b)
	b = p.sketch.AppendBinary(b)
	return b
}

// decodeCampaignStreamPartial restores one streamed block's sums.
func decodeCampaignStreamPartial(data []byte, p *campaignStreamPartial) error {
	if len(data) < campaignStreamFixedSize {
		return fmt.Errorf("sim: stream payload is %d bytes, want at least %d", len(data), campaignStreamFixedSize)
	}
	if err := decodeCampaignPartial(data[:campaignPartialWireSize], &p.sums); err != nil {
		return err
	}
	off := campaignPartialWireSize
	for _, s := range []*stats.Summary{&p.util, &p.lost, &p.rsum} {
		if err := s.UnmarshalBinary(data[off : off+stats.SummaryWireSize]); err != nil {
			return err
		}
		off += stats.SummaryWireSize
	}
	return p.sketch.UnmarshalBinary(data[off:])
}

// CheckCampaignStreamPayload reports whether data parses as a streamed
// campaign block payload, without keeping the result.
func CheckCampaignStreamPayload(data []byte) error {
	var p campaignStreamPartial
	return decodeCampaignStreamPartial(data, &p)
}

// StreamTargets names the metrics a stopping rule may target.
var StreamTargets = []string{"lost", "res", "util"}

// CampaignStream is a streaming campaign: a lazy engine.JobSource of
// full trial blocks plus the ordered engine.StreamSink folding them and
// evaluating the stopping rule. Every sink method runs on the engine's
// single commit goroutine, so the aggregate — and the stop decision —
// is a pure function of the committed block prefix: identical for any
// worker count, and (because State/Restore round-trip every mutable
// field bit-exactly, the stopper's epoch memory included) identical
// across kill-and-resume.
type CampaignStream struct {
	cfg    CampaignConfig
	stop   stats.Stopper
	target string

	sums             campaignPartial
	util, lost, rsum stats.Summary
	sketch           stats.QSketch
}

// NewCampaignStream validates cfg and the stopping rule. target selects
// the summary the CI criterion watches — "util" (mean utilization, the
// default for an empty string), "lost" (mean lost work) or "res" (mean
// reservations). An inactive (zero) stop spec is allowed: the stream
// then runs until its trial budget.
func NewCampaignStream(cfg CampaignConfig, stop stats.StopSpec, target string) (*CampaignStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Only the zero spec may skip validation: a non-zero spec that still
	// cannot fire (rel=-1, or conf set without rel/abs) is a mistake the
	// user should hear about, not a silent never-stopping run.
	if stop != (stats.StopSpec{}) {
		if err := stop.Validate(); err != nil {
			return nil, err
		}
	}
	switch target {
	case "":
		target = "util"
	case "util", "lost", "res":
	default:
		return nil, fmt.Errorf("sim: unknown stream target %q (known: lost, res, util)", target)
	}
	return &CampaignStream{cfg: cfg, stop: stats.Stopper{Spec: stop}, target: target}, nil
}

// Source returns the lazy block source: job b runs the full block b on
// substream b. The source is unbounded — bound it with the engine's
// MaxJobs (StreamBlocks converts a trial budget).
func (cs *CampaignStream) Source() engine.JobSource {
	next := 0
	cfg := cs.cfg
	return engine.SourceFunc(func() (engine.Job, bool) {
		b := next
		next++
		return engine.Job{
			Name:   fmt.Sprintf("block%d", b),
			Stream: uint64(b),
			Run: func(ctx context.Context, src *rng.Source) (engine.JobResult, error) {
				p, complete := runCampaignStreamBlock(cfg, b, src, ctx.Done())
				if !complete {
					return engine.JobResult{}, interruptErr(ctx)
				}
				cfg.Reservation.Obs.tickBlock()
				return engine.JobResult{Payload: encodeCampaignStreamPartial(&p)}, nil
			},
		}, true
	})
}

// StreamBlocks converts a trial budget into the job cap for
// engine.StreamSpec.MaxJobs, rounding up to whole blocks (streamed
// blocks are all-or-nothing).
func StreamBlocks(trials int) int {
	if trials <= 0 {
		return 0
	}
	return (trials + campaignBlockSize - 1) / campaignBlockSize
}

// StreamBlockTrials is the number of trials in one streamed block —
// the granularity budgets round up to and frontiers advance by.
const StreamBlockTrials = campaignBlockSize

// Commit folds block i and evaluates the stopping rule — the
// engine.StreamSink contract.
func (cs *CampaignStream) Commit(i int, payload []byte) (bool, error) {
	var p campaignStreamPartial
	if err := decodeCampaignStreamPartial(payload, &p); err != nil {
		return false, err
	}
	cs.sums.add(p.sums)
	cs.util.Merge(p.util)
	cs.lost.Merge(p.lost)
	cs.rsum.Merge(p.rsum)
	cs.sketch.Merge(&p.sketch)
	stop := cs.stop.Step(cs.TargetSummary(), &cs.sketch)
	if hw := cs.HalfWidth(); !math.IsNaN(hw) && !math.IsInf(hw, 0) {
		cs.cfg.Reservation.Obs.tickPrecision(hw)
	}
	return stop, nil
}

// State serializes the sink at the current frontier: the running sums,
// the three target summaries, the stopper's epoch memory, and the
// utilization sketch (trailing, variable size). Everything Commit
// mutates, bit for bit.
func (cs *CampaignStream) State() ([]byte, error) {
	b := make([]byte, 0, campaignStreamFixedSize+stats.StopperWireSize+4096)
	b = append(b, encodeCampaignPartial(&cs.sums)...)
	b = cs.util.AppendBinary(b)
	b = cs.lost.AppendBinary(b)
	b = cs.rsum.AppendBinary(b)
	b = cs.stop.AppendBinary(b)
	b = cs.sketch.AppendBinary(b)
	return b, nil
}

// Restore resets the sink to a state produced by State.
func (cs *CampaignStream) Restore(state []byte) error {
	const fixed = campaignStreamFixedSize + stats.StopperWireSize
	if len(state) < fixed {
		return fmt.Errorf("sim: stream sink state is %d bytes, want at least %d", len(state), fixed)
	}
	if err := decodeCampaignPartial(state[:campaignPartialWireSize], &cs.sums); err != nil {
		return err
	}
	off := campaignPartialWireSize
	for _, s := range []*stats.Summary{&cs.util, &cs.lost, &cs.rsum} {
		if err := s.UnmarshalBinary(state[off : off+stats.SummaryWireSize]); err != nil {
			return err
		}
		off += stats.SummaryWireSize
	}
	if err := cs.stop.UnmarshalBinary(state[off : off+stats.StopperWireSize]); err != nil {
		return err
	}
	off += stats.StopperWireSize
	return cs.sketch.UnmarshalBinary(state[off:])
}

// Trials returns the number of trials folded so far.
func (cs *CampaignStream) Trials() int { return cs.sums.trials }

// Aggregate returns the campaign aggregate of the folded trials.
func (cs *CampaignStream) Aggregate() CampaignAggregate {
	var agg CampaignAggregate
	agg.Trials = cs.sums.trials
	if cs.sums.trials > 0 {
		finalizeCampaignAggregate(&agg, &cs.sums)
	}
	return agg
}

// Target returns the effective stop-target name.
func (cs *CampaignStream) Target() string { return cs.target }

// TargetSummary returns the running summary of the stop target.
func (cs *CampaignStream) TargetSummary() stats.Summary {
	switch cs.target {
	case "lost":
		return cs.lost
	case "res":
		return cs.rsum
	default:
		return cs.util
	}
}

// Summaries returns the running summaries of every stream target, for
// reporting: utilization, lost work, reservations.
func (cs *CampaignStream) Summaries() (util, lost, res stats.Summary) {
	return cs.util, cs.lost, cs.rsum
}

// HalfWidth returns the current CI half-width of the stop target at the
// rule's confidence level (+Inf with fewer than two trials).
func (cs *CampaignStream) HalfWidth() float64 {
	return cs.stop.Spec.HalfWidth(cs.TargetSummary())
}

// UtilizationQuantile estimates a quantile of the per-trial utilization
// distribution from the stream's sketch.
func (cs *CampaignStream) UtilizationQuantile(q float64) float64 {
	return cs.sketch.Quantile(q)
}
